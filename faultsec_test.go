package faultsec_test

import (
	"context"
	"strings"
	"testing"

	"faultsec"
)

func TestFacadeQuickCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	s, err := faultsec.NewStudy()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.Campaign(context.Background(), s.SSHD, "Client1",
		faultsec.SchemeX86, faultsec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, o := range []faultsec.Outcome{
		faultsec.OutcomeNA, faultsec.OutcomeNM, faultsec.OutcomeSD,
		faultsec.OutcomeFSV, faultsec.OutcomeBRK,
	} {
		total += stats.Counts[o]
	}
	if total != stats.Total {
		t.Errorf("outcomes sum to %d, total %d", total, stats.Total)
	}
	table := faultsec.RenderTable1([]*faultsec.Stats{stats})
	if !strings.Contains(table, "SSH Client1") {
		t.Errorf("table missing header:\n%s", table)
	}
}

func TestFacadeRenderers(t *testing.T) {
	if !strings.Contains(faultsec.RenderTable2(), "2BC") {
		t.Error("Table2 broken")
	}
	if !strings.Contains(faultsec.RenderTable4(), "JNE") {
		t.Error("Table4 broken")
	}
	h := faultsec.NewHistogram([]uint64{1, 50, 20000})
	if h.Total != 3 || h.Max != 20000 {
		t.Errorf("histogram: %+v", h)
	}
	if !strings.Contains(faultsec.RenderFigure4(h), "crashes=3") {
		t.Error("Figure4 broken")
	}
}
