module faultsec

go 1.22
