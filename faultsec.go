// Package faultsec reproduces "An Experimental Study of Security
// Vulnerabilities Caused by Errors" (Xu, Chen, Kalbarczyk, Iyer; DSN
// 2001): single-bit error injection into the branch instructions of the
// authentication sections of an FTP and an SSH server, outcome
// classification (NA/NM/SD/FSV/BRK), transient- and permanent-window
// analysis, and the evaluation of a parity-based branch re-encoding that
// raises the minimum Hamming distance between conditional branch opcodes
// to two.
//
// The package is a facade over the internal implementation; see DESIGN.md
// for the architecture and EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	study, err := faultsec.NewStudy()
//	if err != nil { ... }
//	table1, stats, err := study.Table1(context.Background(), faultsec.Options{})
//	fmt.Print(table1)
package faultsec

import (
	"faultsec/internal/classify"
	"faultsec/internal/core"
	"faultsec/internal/encoding"
	"faultsec/internal/faultmodel"
	"faultsec/internal/inject"
	"faultsec/internal/report"
	"faultsec/internal/target"
)

// Re-exported study types. Aliases keep the internal packages as the
// single source of truth while exposing a stable public surface.
type (
	// Study bundles the built target applications and runs campaigns.
	Study = core.Study
	// Options tune campaign execution.
	Options = core.Options
	// App is a target application bundle (image + scenarios).
	App = target.App
	// Scenario is one client access pattern.
	Scenario = target.Scenario
	// Stats aggregates one campaign.
	Stats = inject.Stats
	// Experiment identifies one single-bit injection.
	Experiment = inject.Experiment
	// Result is one classified injection run.
	Result = inject.Result
	// Outcome is the five-way result category (NA/NM/SD/FSV/BRK).
	Outcome = classify.Outcome
	// Location is the Table 2 error-location category.
	Location = classify.Location
	// Scheme selects the instruction encoding (stock x86 or parity).
	Scheme = encoding.Scheme
	// Histogram is the Figure 4 crash-latency histogram.
	Histogram = report.Histogram
	// PersistentWindowResult demonstrates the permanent vulnerability
	// window.
	PersistentWindowResult = core.PersistentWindowResult
	// LoadImpactResult quantifies manifestation probability vs load
	// diversity.
	LoadImpactResult = core.LoadImpactResult
	// WatchdogResult compares a campaign with and without the
	// control-flow watchdog.
	WatchdogResult = core.WatchdogResult
	// TransientWindow summarizes network activity inside crash windows.
	TransientWindow = inject.TransientWindow
)

// Outcome constants.
const (
	OutcomeNA  = classify.OutcomeNA
	OutcomeNM  = classify.OutcomeNM
	OutcomeSD  = classify.OutcomeSD
	OutcomeFSV = classify.OutcomeFSV
	OutcomeBRK = classify.OutcomeBRK
)

// Registered hardening schemes. SchemeX86 and SchemeParity are the
// paper's pair; SchemeDupCompare and SchemeEncodedBranch are the
// cc-emitted branch countermeasures of arXiv 1803.08359.
var (
	SchemeX86           = encoding.SchemeX86
	SchemeParity        = encoding.SchemeParity
	SchemeDupCompare    = encoding.SchemeDupCompare
	SchemeEncodedBranch = encoding.SchemeEncodedBranch
)

// NewStudy compiles and links the target servers (ftpd, sshd, and the
// session-cookie httpd).
func NewStudy() (*Study, error) { return core.NewStudy() }

// TargetApps lists the registered target-application names (the registry
// wire names accepted by campaignd submits and the CLI -app flags).
func TargetApps() []string { return target.Names() }

// RenderTable1 renders campaign stats in the paper's Table 1 layout.
func RenderTable1(stats []*Stats) string { return report.Table1(stats) }

// RenderTable2 renders the error-location legend (paper Table 2).
func RenderTable2() string { return report.Table2() }

// RenderTable3 renders the BRK+FSV location breakdown (paper Table 3).
func RenderTable3(stats []*Stats) string { return report.Table3(stats) }

// RenderTable4 renders the derived branch re-encoding map (paper Table 4).
func RenderTable4() string { return report.Table4() }

// RenderTable5 renders new-encoding stats with reduction rows (Table 5).
func RenderTable5(old, new_ []*Stats) string { return report.Table5(old, new_) }

// RenderFigure4 renders the crash-latency histogram (paper Figure 4).
func RenderFigure4(h *Histogram) string { return report.Figure4(h) }

// RenderModelMatrix renders the per-(fault model × target × location)
// BRK/SD/FSV matrix for campaigns run under different fault models (see
// Study.FaultModelMatrix and internal/faultmodel).
func RenderModelMatrix(stats []*Stats) string { return report.ModelMatrix(stats) }

// FaultModels lists the registered fault-model names.
func FaultModels() []string { return faultmodel.Names() }

// RenderSchemeMatrix renders the per-(hardening scheme × fault model ×
// target) BRK/SD/FSV reduction matrix (internal/report.SchemeMatrix).
func RenderSchemeMatrix(stats []*Stats) string { return report.SchemeMatrix(stats) }

// Schemes lists the registered hardening-scheme names.
func Schemes() []string { return encoding.Names() }

// ParseScheme resolves a hardening scheme by its registered name ("" is
// the x86 baseline).
func ParseScheme(name string) (Scheme, error) { return encoding.Parse(name) }

// NewHistogram bins crash latencies on the Figure 4 log-2 scale.
func NewHistogram(latencies []uint64) *Histogram {
	return report.NewHistogram(latencies)
}

// MarshalStats renders campaign results as indented JSON for analysis
// outside this repository.
func MarshalStats(stats []*Stats) ([]byte, error) {
	return report.MarshalStats(stats)
}
