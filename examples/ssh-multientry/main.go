// ssh-multientry reproduces the paper's Figure 2 / §5.3 analysis: sshd
// authenticates through several mechanisms (rhosts, RSA, password), so a
// control-flow error in ANY of them can admit an intruder. The example
// corrupts the branch on auth_rhosts()'s return value in
// do_authentication() (the paper's Figure 2 je->jne) and then compares the
// measured break-in rates of single-entry ftpd vs multi-entry sshd.
package main

import (
	"context"
	"fmt"
	"log"

	"faultsec"
	"faultsec/internal/classify"
	"faultsec/internal/disasm"
	"faultsec/internal/encoding"
	"faultsec/internal/inject"
	"faultsec/internal/x86"
)

func main() {
	study, err := faultsec.NewStudy()
	if err != nil {
		log.Fatal(err)
	}
	app := study.SSHD
	sc, _ := app.Scenario("Client1")
	golden, err := inject.GoldenRun(app, sc, 0)
	if err != nil {
		log.Fatal(err)
	}
	targets, err := inject.Targets(app)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 2: the branch in do_authentication() that tests
	// auth_rhosts()'s return value. It is the first conditional branch of
	// the function that follows the call. Reverse it with one bit.
	fmt.Println("Figure 2: reversing do_authentication()'s rhosts decision branch")
	brk := 0
	for _, t := range targets {
		if t.Func != "do_authentication" || t.Inst.Op != x86.OpJcc {
			continue
		}
		ex := inject.Experiment{Target: t, ByteIdx: 0, Bit: 0, Scheme: encoding.SchemeX86}
		res, err := inject.RunOne(app, sc, golden, ex, 0)
		if err != nil {
			log.Fatal(err)
		}
		if res.Outcome == classify.OutcomeBRK {
			brk++
			fmt.Printf("  BREAK-IN via %s at %#x (flip bit 0: condition negated)\n",
				disasm.Format(&t.Inst, t.Addr), t.Addr)
		}
	}
	fmt.Printf("  %d single-bit reversals in do_authentication() admit the attacker\n\n", brk)

	// §5.3: multiple points of entry raise the break-in probability.
	ctx := context.Background()
	fmt.Println("Break-in rate, single entry point (ftpd) vs multiple (sshd):")
	for _, app := range []*faultsec.App{study.FTPD, study.SSHD} {
		stats, err := study.Campaign(ctx, app, "Client1", faultsec.SchemeX86, faultsec.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s Client1: BRK %d of %d activated (%.2f%%)\n",
			app.Name, stats.Counts[faultsec.OutcomeBRK], stats.Activated(),
			stats.PctOfActivated(faultsec.OutcomeBRK))
	}
	fmt.Println("\nAs in the paper, the multi-entry sshd shows the higher break-in")
	fmt.Println("rate: an error in any of its entry checks can admit the client.")
}
