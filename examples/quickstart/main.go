// Quickstart: build the study, run one injection campaign (every bit of
// every branch instruction in ftpd's authentication section, attacked by
// the paper's Client1 pattern), and print the outcome distribution.
package main

import (
	"context"
	"fmt"
	"log"

	"faultsec"
)

func main() {
	study, err := faultsec.NewStudy()
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	stats, err := study.Campaign(ctx, study.FTPD, "Client1", faultsec.SchemeX86,
		faultsec.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ftpd / Client1 (existing user, wrong password): %d injections\n", stats.Total)
	fmt.Printf("  NA  (not activated)          %5d\n", stats.Counts[faultsec.OutcomeNA])
	fmt.Printf("  NM  (no manifestation)       %5d  (%.1f%% of activated)\n",
		stats.Counts[faultsec.OutcomeNM], stats.PctOfActivated(faultsec.OutcomeNM))
	fmt.Printf("  SD  (server crash)           %5d  (%.1f%%)\n",
		stats.Counts[faultsec.OutcomeSD], stats.PctOfActivated(faultsec.OutcomeSD))
	fmt.Printf("  FSV (fail silence violation) %5d  (%.1f%%)\n",
		stats.Counts[faultsec.OutcomeFSV], stats.PctOfActivated(faultsec.OutcomeFSV))
	fmt.Printf("  BRK (security break-in!)     %5d  (%.2f%%)\n",
		stats.Counts[faultsec.OutcomeBRK], stats.PctOfActivated(faultsec.OutcomeBRK))

	fmt.Println("\nEvery BRK case means: one flipped bit let a client with a wrong")
	fmt.Println("password log in and retrieve files — the paper's headline result.")
}
