// newencoding walks through the paper's Section 6: why continuous opcode
// encoding makes single-bit branch reversals possible, the parity-based
// re-encoding (Table 4), and a measured before/after comparison of
// break-ins and fail-silence violations (Table 5's reduction rows).
package main

import (
	"context"
	"fmt"
	"log"

	"faultsec"
	"faultsec/internal/encoding"
	"faultsec/internal/x86"
)

func main() {
	// The root cause, stated with bytes.
	fmt.Println("Stock x86 conditional branches are continuously encoded:")
	fmt.Printf("  je = %#02x, jne = %#02x, Hamming distance %d\n",
		0x74, 0x75, x86.HammingDistance(0x74, 0x75))
	fmt.Printf("  min pairwise distance across 0x70..0x7F: %d\n\n",
		x86.MinPairwiseHamming(x86.Jcc8Opcodes()))

	fmt.Println("The parity re-encoding (paper Table 4):")
	fmt.Println(faultsec.RenderTable4())
	d2, d6 := encoding.MinHammingWithinBranchBlocks()
	fmt.Printf("minimum pairwise Hamming distance after re-encoding: %d (2-byte), %d (6-byte)\n\n", d2, d6)

	// Measured effect on the attack scenario of both servers.
	study, err := faultsec.NewStudy()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	for _, app := range []*faultsec.App{study.FTPD, study.SSHD} {
		var brk, fsv [2]int
		for i, scheme := range []faultsec.Scheme{faultsec.SchemeX86, faultsec.SchemeParity} {
			stats, err := study.Campaign(ctx, app, "Client1", scheme, faultsec.Options{})
			if err != nil {
				log.Fatal(err)
			}
			brk[i] = stats.Counts[faultsec.OutcomeBRK]
			fsv[i] = stats.Counts[faultsec.OutcomeFSV]
		}
		fmt.Printf("%s Client1:  BRK %d -> %d", app.Name, brk[0], brk[1])
		if brk[0] > 0 {
			fmt.Printf("  (%.0f%% reduction)", 100*float64(brk[0]-brk[1])/float64(brk[0]))
		}
		fmt.Printf("\n              FSV %d -> %d", fsv[0], fsv[1])
		if fsv[0] > 0 {
			fmt.Printf("  (%.0f%% reduction)", 100*float64(fsv[0]-fsv[1])/float64(fsv[0]))
		}
		fmt.Println()
	}
	fmt.Println("\nUnder the new encoding no single-bit error can turn one conditional")
	fmt.Println("branch into another; surviving break-ins come from branch *offset*")
	fmt.Println("corruption, which encoding cannot fix.")
}
