// transientwindow reproduces two of the paper's time-dimension results:
//
//  1. Figure 4 — the distribution of the number of instructions a crashing
//     server executes between error activation and the crash. Most crashes
//     are nearly immediate, but a heavy tail executes thousands to tens of
//     thousands of instructions — a transient window during which the
//     corrupted server keeps talking to the network.
//
//  2. Example 3 (Figure 3) — a single-bit error in the buffer-size
//     immediate of a read call turns a bounded read into a stack smash:
//     a malicious client overwrites the return address and hijacks the
//     server's control flow.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"

	"faultsec"
	"faultsec/internal/disasm"
	"faultsec/internal/kernel"
	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

func main() {
	study, err := faultsec.NewStudy()
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: Figure 4.
	fmt.Println("Part 1 — transient window of vulnerability (Figure 4)")
	h, err := study.Figure4(context.Background(), faultsec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(faultsec.RenderFigure4(h))

	// Part 2: Example 3 — buffer-size corruption enables a stack smash.
	fmt.Println("Part 2 — Example 3: corrupting a read-size immediate (Figure 3)")
	if err := bufferOverflowDemo(study); err != nil {
		log.Fatal(err)
	}
}

// exploitClient drives the SSH protocol and delivers an oversized LOGIN
// line whose bytes 260..263 (the position of main's saved return address
// relative to the line[256] stack buffer) hold a recognizable marker.
type exploitClient struct {
	payload string
	done    bool
	sent    bool
}

func (c *exploitClient) OnServerLine(line string) []string {
	switch {
	case strings.HasPrefix(line, "SSH-"):
		return []string{"SSH-1.5-exploitclient"}
	case strings.HasPrefix(line, "WELCOME"):
		c.sent = true
		return []string{c.payload}
	case strings.HasPrefix(line, "AUTH_FAILED"):
		// Authentication fails; we hang up and wait for the smashed
		// return address to take effect.
		c.done = true
	}
	return nil
}

func (c *exploitClient) Done() bool { return c.done && c.sent }

func bufferOverflowDemo(study *faultsec.Study) error {
	app := study.SSHD
	img := app.Image
	mainFn, ok := img.FuncByName("main")
	if !ok {
		return errors.New("no main in sshd image")
	}

	// Locate the read-size immediates: "mov eax, 256" feeding
	// read_line(line, 256) in main (the paper's "push $0x2000" analog).
	var sites []uint32
	for _, e := range disasm.Sweep(img.Text, img.TextBase,
		mainFn.Start-img.TextBase, mainFn.End-img.TextBase) {
		if e.Bad {
			continue
		}
		if e.Inst.Op == x86.OpMov && e.Inst.Form == x86.FormRegImm && e.Inst.Imm == 256 {
			sites = append(sites, e.Addr)
		}
	}
	if len(sites) < 2 {
		return fmt.Errorf("expected >=2 read-size immediates in main, found %d", len(sites))
	}
	site := sites[1] // the LOGIN-line read
	fmt.Printf("read-size immediate at %#x: mov eax, 256 (bytes b8 00 01 00 00)\n", site)
	fmt.Printf("flipping bit 9 of the immediate: 256 -> 768 — the read now\n")
	fmt.Printf("overruns the 256-byte stack buffer, like Figure 3's packet_read.\n\n")

	corrupted := make([]byte, len(img.Text))
	copy(corrupted, img.Text)
	corrupted[site-img.TextBase+2] ^= 0x02 // imm byte 1: 0x01 -> 0x03 (256 -> 768)

	// Marker the hijacked EIP will land on.
	const marker = 0x41414141
	payload := "LOGIN " + strings.Repeat("A", 260-6)
	payload = payload[:260] + "\x41\x41\x41\x41" + strings.Repeat("B", 20)

	// Pristine server: the long line is truncated harmlessly.
	for _, tc := range []struct {
		name string
		text []byte
	}{
		{"pristine server", nil},
		{"corrupted server", corrupted},
	} {
		client := &exploitClient{payload: payload}
		k := kernel.New(client)
		ld, err := img.Load(k, tc.text)
		if err != nil {
			return err
		}
		runErr := ld.Machine.Run()
		fmt.Printf("%s: %v\n", tc.name, runErr)
		var fault *vm.Fault
		if errors.As(runErr, &fault) && fault.Addr == marker {
			fmt.Printf("  -> control-flow HIJACKED: the server jumped to the\n")
			fmt.Printf("     attacker-supplied address %#x from the network payload\n", marker)
		}
	}
	return nil
}
