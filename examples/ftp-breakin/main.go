// ftp-breakin reproduces the paper's Figure 1 / Example 1: in ftpd's
// pass(), single-bit corruptions of the conditional branches around the
// strcmp() password check reverse the deny/grant decision, so a client
// with an existing user name and a *wrong password* is let in — a
// permanent security hole until the text page is reloaded.
package main

import (
	"context"
	"fmt"
	"log"

	"faultsec"
	"faultsec/internal/classify"
	"faultsec/internal/disasm"
	"faultsec/internal/encoding"
	"faultsec/internal/inject"
	"faultsec/internal/x86"
)

func main() {
	study, err := faultsec.NewStudy()
	if err != nil {
		log.Fatal(err)
	}
	app := study.FTPD

	// Enumerate the branch instructions of pass() and try the paper's
	// exact corruption: flipping the low opcode bit of a jcc, turning the
	// condition into its negation (je <-> jne at Hamming distance 1).
	targets, err := inject.Targets(app)
	if err != nil {
		log.Fatal(err)
	}
	sc, _ := app.Scenario("Client1")
	golden, err := inject.GoldenRun(app, sc, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Scanning pass() for single-bit branch reversals that grant access")
	fmt.Println("to a client logging in with a wrong password...")
	fmt.Println()
	found := 0
	for _, t := range targets {
		if t.Func != "pass" || t.Inst.Op != x86.OpJcc {
			continue
		}
		// The negation bit: bit 0 of the opcode byte (je=0x74 vs jne=0x75).
		ex := inject.Experiment{Target: t, ByteIdx: 0, Bit: 0, Scheme: encoding.SchemeX86}
		res, err := inject.RunOne(app, sc, golden, ex, 0)
		if err != nil {
			log.Fatal(err)
		}
		if res.Outcome != classify.OutcomeBRK {
			continue
		}
		found++
		fmt.Printf("BREAK-IN: %s at %#x\n", disasm.Format(&t.Inst, t.Addr), t.Addr)
		fmt.Printf("  pristine:  % x  (%s)\n", t.Raw, disasm.Format(&t.Inst, t.Addr))
		corr := ex.CorruptedBytes()
		if in, derr := x86.Decode(corr); derr == nil {
			fmt.Printf("  corrupted: % x  (%s)  — one bit flipped\n",
				corr, disasm.Format(&in, t.Addr))
		}
		fmt.Println()
	}
	if found == 0 {
		fmt.Println("no branch-reversal break-in found (unexpected)")
		return
	}
	fmt.Printf("%d single-bit branch reversals in pass() compromise the server.\n\n", found)

	// Demonstrate the *permanent* window: the corrupted page stays in
	// memory, so every subsequent attack connection succeeds until the
	// page is reloaded.
	fmt.Println("Permanent window of vulnerability (5 consecutive connections):")
	res, err := study.PersistentWindow(context.Background(), app, 5, faultsec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for i, g := range res.GrantedPerConnection {
		fmt.Printf("  connection %d: wrong-password login granted = %v\n", i+1, g)
	}
	fmt.Printf("  after page reload:                     granted = %v\n", res.GrantedAfterReload)
}
