// Command asmtool assembles MiniC or assembly sources and disassembles
// linked images — the toolchain's command-line face.
//
// Usage:
//
//	asmtool -cc prog.c            # compile MiniC to assembly (stdout)
//	asmtool -asm prog.s           # assemble + link, print section map
//	asmtool -dis prog.c           # compile, link, disassemble .text
//	asmtool -app ftpd -dis-func pass   # disassemble a built-in server fn
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"faultsec/internal/asm"
	"faultsec/internal/cc"
	"faultsec/internal/disasm"
	"faultsec/internal/image"
	"faultsec/internal/rt"
	"faultsec/internal/target"

	// Register the built-in target applications.
	_ "faultsec/internal/ftpd"
	_ "faultsec/internal/httpd"
	_ "faultsec/internal/sshd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asmtool:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		ccFile  = flag.String("cc", "", "compile a MiniC file to assembly")
		asmFile = flag.String("asm", "", "assemble an assembly file and print the section map")
		disFile = flag.String("dis", "", "compile+link a MiniC file and disassemble .text")
		appName = flag.String("app", "", "built-in app for -dis-func (registry name)")
		disFunc = flag.String("dis-func", "", "disassemble one function of the built-in app")
	)
	flag.Parse()

	switch {
	case *ccFile != "":
		src, err := os.ReadFile(*ccFile)
		if err != nil {
			return err
		}
		out, err := cc.Compile(string(src))
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil

	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			return err
		}
		obj, err := asm.Assemble(string(src))
		if err != nil {
			return err
		}
		for name, sec := range obj.Sections {
			fmt.Printf("section %-8s %6d bytes, %d relocations\n",
				name, len(sec.Bytes), len(sec.Relocs))
		}
		for _, f := range obj.Funcs {
			fmt.Printf("func %-24s [%#x, %#x)\n", f.Name, f.Start, f.End)
		}
		return nil

	case *disFile != "":
		src, err := os.ReadFile(*disFile)
		if err != nil {
			return err
		}
		img, err := rt.BuildImage(string(src))
		if err != nil {
			return err
		}
		return disassembleImage(img, "")

	case *disFunc != "":
		if *appName == "" {
			return fmt.Errorf("-dis-func needs -app (one of %s)", strings.Join(target.Names(), ", "))
		}
		app, err := target.Build(*appName)
		if err != nil {
			return err
		}
		return disassembleImage(app.Image, *disFunc)
	}

	flag.Usage()
	return nil
}

func disassembleImage(img *image.Image, funcName string) error {
	start, end := uint32(0), uint32(len(img.Text))
	if funcName != "" {
		f, ok := img.FuncByName(funcName)
		if !ok {
			return fmt.Errorf("no function %q", funcName)
		}
		start, end = f.Start-img.TextBase, f.End-img.TextBase
	}
	// Reverse symbol map for labels.
	symAt := make(map[uint32]string)
	for name, addr := range img.Symbols {
		symAt[addr] = name
	}
	for _, e := range disasm.Sweep(img.Text, img.TextBase, start, end) {
		if name, ok := symAt[e.Addr]; ok {
			fmt.Printf("%s:\n", name)
		}
		fmt.Printf("  %#08x:  %-22x %s\n", e.Addr, e.Raw, e.Text())
	}
	return nil
}
