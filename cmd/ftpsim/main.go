// Command ftpsim runs the study's miniature wu-ftpd. By default it plays
// one of the paper's scripted client patterns against the server and
// prints the transcript; with -listen it serves real TCP connections
// (one at a time, inetd-style), so you can log in with any FTP-speaking
// client or netcat.
//
// Usage:
//
//	ftpsim -scenario Client2            # scripted session + transcript
//	ftpsim -corrupt pass:13:0:0         # single-bit corrupted server
//	ftpsim -listen :2121                # serve real TCP clients
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"

	"faultsec/internal/encoding"
	"faultsec/internal/ftpd"
	"faultsec/internal/inject"
	"faultsec/internal/kernel"
	"faultsec/internal/target"
	"faultsec/internal/vm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftpsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario = flag.String("scenario", "Client1", "scripted client pattern (Client1..Client4)")
		listen   = flag.String("listen", "", "serve real TCP connections on this address instead")
		corrupt  = flag.String("corrupt", "", "apply a persistent single-bit corruption: func:index:byte:bit")
	)
	flag.Parse()

	app, err := ftpd.Build()
	if err != nil {
		return err
	}
	text, err := corruptedText(app, *corrupt)
	if err != nil {
		return err
	}
	if *listen != "" {
		return serveTCP(app, text, *listen)
	}

	sc, ok := app.Scenario(*scenario)
	if !ok {
		return fmt.Errorf("no scenario %q", *scenario)
	}
	client := sc.New()
	k := kernel.New(client)
	ld, err := app.Image.Load(k, text)
	if err != nil {
		return err
	}
	runErr := ld.Machine.Run()
	fmt.Print(k.Transcript.String())
	fmt.Printf("granted=%v, termination: %v, %d instructions\n",
		client.Granted(), runErr, ld.Machine.Steps)
	var exit *vm.ExitStatus
	if !errors.As(runErr, &exit) {
		return nil // abnormal end already reported
	}
	return nil
}

// corruptedText parses "func:index:byte:bit" and returns a corrupted copy
// of the text segment (nil when spec is empty).
func corruptedText(app *target.App, spec string) ([]byte, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 4 {
		return nil, fmt.Errorf("corrupt spec %q: want func:index:byte:bit", spec)
	}
	idx, err1 := strconv.Atoi(parts[1])
	byteIdx, err2 := strconv.Atoi(parts[2])
	bit, err3 := strconv.Atoi(parts[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("corrupt spec %q: bad numbers", spec)
	}
	targets, err := inject.Targets(app)
	if err != nil {
		return nil, err
	}
	var inFunc []inject.Target
	for _, t := range targets {
		if t.Func == parts[0] {
			inFunc = append(inFunc, t)
		}
	}
	if idx < 0 || idx >= len(inFunc) {
		return nil, fmt.Errorf("corrupt spec: index %d out of range (%d targets in %s)",
			idx, len(inFunc), parts[0])
	}
	tgt := inFunc[idx]
	ex := inject.Experiment{Target: tgt, ByteIdx: byteIdx, Bit: bit, Scheme: encoding.SchemeX86}
	text := make([]byte, len(app.Image.Text))
	copy(text, app.Image.Text)
	copy(text[tgt.Addr-app.Image.TextBase:], ex.CorruptedBytes())
	fmt.Fprintf(os.Stderr, "corrupted %s at %#x: % x -> % x\n",
		tgt.Func, tgt.Addr, tgt.Raw, ex.CorruptedBytes())
	return text, nil
}

// serveTCP accepts connections one at a time and runs a fresh server
// instance per connection (the inetd model).
func serveTCP(app *target.App, text []byte, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := ln.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "ftpsim: close listener:", cerr)
		}
	}()
	fmt.Fprintf(os.Stderr, "ftpsim: serving on %s (one connection at a time)\n", addr)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		k := kernel.NewStream(conn)
		ld, err := app.Image.Load(k, text)
		if err != nil {
			return err
		}
		ld.Machine.Fuel = 50_000_000 // interactive sessions are long
		runErr := ld.Machine.Run()
		fmt.Fprintf(os.Stderr, "ftpsim: session ended: %v\n", runErr)
		if cerr := conn.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "ftpsim: close conn:", cerr)
		}
	}
}
