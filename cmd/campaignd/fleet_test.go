package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"
)

// TestServiceHealthz: /healthz answers 200 while serving and 503 once the
// daemon drains, so fleet coordinators stop leasing shards to a worker
// that is about to go away.
func TestServiceHealthz(t *testing.T) {
	ts, srv := newTestServiceIn(t, t.TempDir())

	var body map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("GET /healthz: status %d", code)
	}
	if body["status"] != "ok" {
		t.Fatalf("healthz body %v, want status ok", body)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz while draining: status %d, want 503", code)
	}
	if body["status"] != "draining" {
		t.Fatalf("draining healthz body %v", body)
	}
}

// TestServiceFleetLoopback: a fleet campaign over two in-process workers
// finishes with the same final summary as the plain in-process engine,
// and /metrics exposes its shard table.
func TestServiceFleetLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	ts, _ := newTestServiceIn(t, t.TempDir())

	ref := postCampaign(t, ts, `{"app":"ftpd","scenario":"Client1"}`)
	refDone := waitDone(t, ts, ref.ID)
	if refDone.State != stateDone {
		t.Fatalf("reference campaign ended %q: %s", refDone.State, refDone.Error)
	}

	v := postCampaign(t, ts,
		`{"app":"ftpd","scenario":"Client1","workers":["loopback","loopback"],"shardRuns":64}`)
	done := waitDone(t, ts, v.ID)
	if done.State != stateDone {
		t.Fatalf("fleet campaign ended %q: %s", done.State, done.Error)
	}
	if !reflect.DeepEqual(refDone.Final, done.Final) {
		t.Errorf("fleet final summary differs from engine:\nengine %+v\nfleet  %+v",
			refDone.Final, done.Final)
	}

	var m metricsView
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	fm, ok := m.Fleet[v.ID]
	if !ok {
		t.Fatalf("metrics have no fleet entry for %s: %+v", v.ID, m.Fleet)
	}
	if fm.ShardsTotal < 2 || fm.ShardsDone != fm.ShardsTotal {
		t.Errorf("fleet shards %d/%d, want all of >=2", fm.ShardsDone, fm.ShardsTotal)
	}
	if fm.RunsTotal != int64(done.Final.Total) {
		t.Errorf("fleet runs %d, want %d", fm.RunsTotal, done.Final.Total)
	}
}

// TestServiceRejectsBadFleetRequests covers fleet-specific validation.
func TestServiceRejectsBadFleetRequests(t *testing.T) {
	ts, _ := newTestServiceIn(t, t.TempDir())
	for name, body := range map[string]string{
		"shardRuns without workers": `{"app":"ftpd","scenario":"Client1","shardRuns":64}`,
		"bogus worker spec":         `{"app":"ftpd","scenario":"Client1","workers":["ssh://nope"]}`,
	} {
		if code := postStatus(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
}

// TestWorkerHelperProcess is not a test: it is the worker process body
// for TestServiceFleetWorkerKilled, re-executing this test binary. It
// serves a full campaignd (worker mode included) on a loopback port,
// prints the address, and blocks until its stdin closes or it is killed.
func TestWorkerHelperProcess(t *testing.T) {
	if os.Getenv("CAMPAIGND_WORKER_HELPER") != "1" {
		t.Skip("helper process body, not a test")
	}
	srv, err := newServer("")
	if err != nil {
		fmt.Printf("HELPER_ERR=%v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("HELPER_ERR=%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR=%s\n", ln.Addr())
	go func() { _ = http.Serve(ln, srv) }()
	_, _ = io.Copy(io.Discard, os.Stdin) // parent closes stdin (or kills us)
	os.Exit(0)
}

// startWorkerProcess launches this test binary as a campaignd worker
// process and returns its base URL.
func startWorkerProcess(t *testing.T) (*exec.Cmd, string, io.WriteCloser) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestWorkerHelperProcess$")
	cmd.Env = append(os.Environ(), "CAMPAIGND_WORKER_HELPER=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if addr, ok := strings.CutPrefix(line, "ADDR="); ok {
			go func() { _, _ = io.Copy(io.Discard, stdout) }() // drain test chatter
			return cmd, "http://" + addr, stdin
		}
		if msg, ok := strings.CutPrefix(line, "HELPER_ERR="); ok {
			t.Fatalf("worker helper failed to start: %s", msg)
		}
	}
	t.Fatalf("worker helper exited before printing ADDR (scan err: %v)", sc.Err())
	return nil, "", nil
}

// TestServiceFleetWorkerKilled is the crash-recovery acceptance test at
// the service level: a campaign sharded across two real worker PROCESSES,
// one of which is SIGKILLed mid-campaign. The coordinator must retry the
// lost shards on the survivor and finish with the same final summary as
// the single-process engine, with at least one retry on record.
func TestServiceFleetWorkerKilled(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process campaign is not short")
	}
	ts, _ := newTestServiceIn(t, t.TempDir())

	ref := postCampaign(t, ts, `{"app":"ftpd","scenario":"Client1"}`)
	refDone := waitDone(t, ts, ref.ID)
	if refDone.State != stateDone {
		t.Fatalf("reference campaign ended %q: %s", refDone.State, refDone.Error)
	}

	w1, url1, stdin1 := startWorkerProcess(t)
	defer func() {
		_ = stdin1.Close()
		_ = w1.Process.Kill()
		_, _ = w1.Process.Wait()
	}()
	w2, url2, stdin2 := startWorkerProcess(t)
	defer func() {
		_ = stdin2.Close()
		_ = w2.Process.Kill()
		_, _ = w2.Process.Wait()
	}()

	v := postCampaign(t, ts, fmt.Sprintf(
		`{"app":"ftpd","scenario":"Client1","workers":[%q,%q],"shardRuns":64}`, url1, url2))

	// Let the campaign get well underway, then SIGKILL one worker: any
	// shard it is streaming truncates, and the coordinator must re-lease.
	waitProgress(t, ts, v.ID, 100)
	if err := w1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = w1.Process.Wait()

	done := waitDone(t, ts, v.ID)
	if done.State != stateDone {
		t.Fatalf("fleet campaign ended %q after worker kill: %s", done.State, done.Error)
	}
	if !reflect.DeepEqual(refDone.Final, done.Final) {
		t.Errorf("post-kill fleet summary differs from single-process engine:\nengine %+v\nfleet  %+v",
			refDone.Final, done.Final)
	}

	var m metricsView
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	fm := m.Fleet[v.ID]
	if fm.Retries < 1 {
		t.Errorf("retries = %d, want >= 1 after killing a worker mid-campaign", fm.Retries)
	}
	var survivor, dead int64
	for _, ws := range fm.Workers {
		switch ws.Name {
		case url1:
			dead = ws.Runs
		case url2:
			survivor = ws.Runs
		}
	}
	if survivor == 0 {
		t.Error("surviving worker executed no runs")
	}
	if survivor+dead < fm.RunsTotal {
		t.Errorf("worker runs %d+%d do not cover %d accepted runs", dead, survivor, fm.RunsTotal)
	}
}
