package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// updateMetricsFixture regenerates the GET /metrics wire fixture under
// testdata. The fixture was captured before the scheme registry refactor;
// regenerate only when the wire format changes deliberately.
var updateMetricsFixture = flag.Bool("update-metrics-fixture", false,
	"rewrite the testdata GET /metrics fixture from the current service")

// TestMetricsWireCompat pins the GET /metrics response shape and counter
// values to a fixture captured before the pluggable-scheme refactor. Two
// sequential journaled campaigns (x86 then parity, FTP Client1, one
// worker so every engine counter is deterministic) are driven to
// completion, then the metrics body is normalized — the two wall-clock
// derived rates are zeroed, everything else is byte-compared.
func TestMetricsWireCompat(t *testing.T) {
	if testing.Short() {
		t.Skip("two full campaigns are not short")
	}
	ts, _ := newTestServiceIn(t, t.TempDir())
	for _, scheme := range []string{"x86", "parity"} {
		v := postCampaign(t, ts,
			`{"app":"ftpd","scenario":"Client1","scheme":"`+scheme+`","parallelism":1,"journal":true}`)
		if got := waitDone(t, ts, v.ID); got.State != "done" {
			t.Fatalf("campaign %s (%s): state %s, error %q", v.ID, scheme, got.State, got.Error)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	// Zero the wall-clock derived rates; every other field is a
	// deterministic counter under parallelism 1.
	if campaigns, ok := raw["campaigns"].(map[string]any); ok {
		for _, c := range campaigns {
			if m, ok := c.(map[string]any); ok {
				m["runsPerSec"] = 0
				m["workerUtilization"] = 0
			}
		}
	}
	got, err := json.MarshalIndent(raw, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	fixture := filepath.Join("testdata", "metrics-x86-parity.json")
	if *updateMetricsFixture {
		if err := os.MkdirAll(filepath.Dir(fixture), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixture, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", fixture, len(got))
		return
	}
	want, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatalf("read fixture (run with -update-metrics-fixture to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("GET /metrics differs from pre-refactor fixture:\n got: %s\nwant: %s", got, want)
	}
}
