// Command campaignd serves injection campaigns over HTTP.
//
//	campaignd -addr :8080 -journals /var/lib/campaignd
//
// API:
//
//	POST   /campaigns        submit {"app","scenario","scheme",...};
//	                         returns {"id",...} immediately and runs the
//	                         campaign on the engine in the background
//	GET    /campaigns        list all campaigns
//	GET    /campaigns/{id}   progress, outcome counts, ETA; once finished,
//	                         the final Table-1-shaped counts
//	DELETE /campaigns/{id}   cancel a running campaign; it drains, writes
//	                         a final journal checkpoint, and reports the
//	                         terminal state "canceled"
//	GET    /metrics          engine counters across campaigns: runs/sec,
//	                         snapshot hit rate, worker utilization
//
// Campaigns submitted with "journal": true are written to a JSONL journal
// under -journals and survive daemon crashes: resubmitting the same
// app/scenario/scheme resumes from the journal instead of starting over.
// Only one campaign may write a given journal at a time; a duplicate
// submission while one runs is refused with 409.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops accepting
// requests, cancels in-flight campaigns, and waits (up to -drain) for each
// engine to write its final journal checkpoint, so a restarted daemon
// resumes exactly where this one stopped.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	journals := flag.String("journals", "", "directory for campaign journals (\"\" = journaling disabled)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for draining campaigns and connections")
	flag.Parse()

	if *journals != "" {
		if err := os.MkdirAll(*journals, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "campaignd:", err)
			os.Exit(1)
		}
	}
	srv, err := newServer(*journals)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("campaignd: listening on %s", *addr)

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure here (shutdown races go
		// through the signal path below).
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	log.Printf("campaignd: signal received, draining (budget %s)", *drain)

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("campaignd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		// Campaigns did not drain in time; journals may miss their final
		// checkpoint (Resume still recovers everything up to the last
		// flushed run record).
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
	log.Printf("campaignd: drained cleanly")
}
