// Command campaignd serves injection campaigns over HTTP.
//
//	campaignd -addr :8080 -journals /var/lib/campaignd
//
// API:
//
//	POST /campaigns          submit {"app","scenario","scheme",...};
//	                         returns {"id",...} immediately and runs the
//	                         campaign on the engine in the background
//	GET  /campaigns          list all campaigns
//	GET  /campaigns/{id}     progress, outcome counts, ETA; once finished,
//	                         the final Table-1-shaped counts
//	GET  /metrics            engine counters across campaigns: runs/sec,
//	                         snapshot hit rate, worker utilization
//
// Campaigns submitted with "journal": true are written to a JSONL journal
// under -journals and survive daemon crashes: resubmitting the same
// app/scenario/scheme resumes from the journal instead of starting over.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	journals := flag.String("journals", "", "directory for campaign journals (\"\" = journaling disabled)")
	flag.Parse()

	if *journals != "" {
		if err := os.MkdirAll(*journals, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "campaignd:", err)
			os.Exit(1)
		}
	}
	srv, err := newServer(*journals)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
	log.Printf("campaignd: listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
}
