package main

import (
	"fmt"
	"sort"
	"strings"
)

// renderPrometheus renders the metrics view in the Prometheus text
// exposition format (version 0.0.4): the service-wide aggregates as
// `# TYPE`-annotated counters/gauges, plus per-campaign and per-fleet
// series labeled by campaign id. Families and label values are emitted in
// sorted order so the output is deterministic for a given view.
//
// The JSON view stays the wire format of record (and byte-identical to
// the wirecompat fixtures); this rendering exists so a stock Prometheus
// scrape of GET /metrics?format=prometheus works without a sidecar
// exporter.
func renderPrometheus(v *metricsView) string {
	var b strings.Builder

	counter := func(name, help string, val int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, val)
	}
	gauge := func(name, help string, val int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, val)
	}

	gauge("campaignd_campaigns_running", "Campaigns currently executing.", int64(v.Running))
	counter("campaignd_runs_total", "Fresh injection runs completed across all campaigns.", v.TotalRuns)
	counter("campaignd_icache_hits_total", "Predecoded instruction cache hits.", v.ICacheHits)
	counter("campaignd_icache_misses_total", "Predecoded instruction cache misses.", v.ICacheMisses)
	counter("campaignd_trace_hits_total", "Superblock trace dispatches.", v.TraceHits)
	counter("campaignd_trace_exits_total", "Superblock trace side exits.", v.TraceExits)
	counter("campaignd_dirty_bytes_copied_total", "Bytes copied by O(dirty) snapshot restores.", v.DirtyBytesCopied)
	counter("campaignd_full_restores_total", "Whole-image snapshot restores.", v.FullRestores)
	counter("campaignd_cache_hits_total", "Content-addressed result store hits.", v.CacheHits)
	counter("campaignd_cache_misses_total", "Content-addressed result store misses.", v.CacheMisses)
	counter("campaignd_cache_writes_total", "Content-addressed result store entries written.", v.CacheWrites)
	counter("campaignd_cache_invalid_total", "Content-addressed result store entries rejected as corrupt.", v.CacheInvalid)
	counter("campaignd_worker_shards_served_total", "Shards this daemon executed as a fleet worker.", v.WorkerShardsServed)
	counter("campaignd_worker_runs_served_total", "Runs this daemon streamed as a fleet worker.", v.WorkerRunsServed)

	// Per-campaign engine series.
	ids := make([]string, 0, len(v.Campaigns))
	for id := range v.Campaigns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if len(ids) > 0 {
		fmt.Fprintf(&b, "# HELP campaignd_campaign_runs_total Fresh runs completed by one campaign engine.\n")
		fmt.Fprintf(&b, "# TYPE campaignd_campaign_runs_total counter\n")
		for _, id := range ids {
			fmt.Fprintf(&b, "campaignd_campaign_runs_total{campaign=%q} %d\n", id, v.Campaigns[id].RunsTotal)
		}
		fmt.Fprintf(&b, "# HELP campaignd_campaign_groups_done Target-address groups fully executed by one campaign engine.\n")
		fmt.Fprintf(&b, "# TYPE campaignd_campaign_groups_done gauge\n")
		for _, id := range ids {
			fmt.Fprintf(&b, "campaignd_campaign_groups_done{campaign=%q} %d\n", id, v.Campaigns[id].GroupsDone)
		}
	}

	// Per-fleet-campaign coordinator series.
	fids := make([]string, 0, len(v.Fleet))
	for id := range v.Fleet {
		fids = append(fids, id)
	}
	sort.Strings(fids)
	if len(fids) > 0 {
		fmt.Fprintf(&b, "# HELP campaignd_fleet_shards_done Shards settled by one fleet coordinator.\n")
		fmt.Fprintf(&b, "# TYPE campaignd_fleet_shards_done gauge\n")
		for _, id := range fids {
			fmt.Fprintf(&b, "campaignd_fleet_shards_done{campaign=%q} %d\n", id, int64(v.Fleet[id].ShardsDone))
		}
		fmt.Fprintf(&b, "# HELP campaignd_fleet_retries_total Shard lease retries by one fleet coordinator.\n")
		fmt.Fprintf(&b, "# TYPE campaignd_fleet_retries_total counter\n")
		for _, id := range fids {
			fmt.Fprintf(&b, "campaignd_fleet_retries_total{campaign=%q} %d\n", id, v.Fleet[id].Retries)
		}
	}
	return b.String()
}
