package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMetricsPrometheusFormat drives the alternate exposition end to end:
// submit an httpd campaign (exercising the registry-backed lazy build on
// the submit path), then scrape GET /metrics?format=prometheus and check
// the text format — media type, HELP/TYPE annotations, aggregate counters
// consistent with the JSON view, and the per-campaign series labeled with
// the campaign id.
func TestMetricsPrometheusFormat(t *testing.T) {
	ts, _ := newTestService(t)
	v := postCampaign(t, ts, `{"app":"httpd","scenario":"Client3"}`)
	waitDone(t, ts, v.ID)

	var m metricsView
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics?format=prometheus: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q, want the Prometheus text exposition type", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, want := range []string{
		"# TYPE campaignd_campaigns_running gauge",
		"# TYPE campaignd_runs_total counter",
		"# HELP campaignd_runs_total ",
		fmt.Sprintf("campaignd_runs_total %d\n", m.TotalRuns),
		fmt.Sprintf("campaignd_campaign_runs_total{campaign=%q} %d\n",
			v.ID, m.Campaigns[v.ID].RunsTotal),
		fmt.Sprintf("campaignd_campaign_groups_done{campaign=%q} ", v.ID),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, text)
		}
	}
	// Every non-comment line is `name[{labels}] value` — no stray JSON.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 || !strings.HasPrefix(fields[0], "campaignd_") {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// An unknown format is refused, and the bare endpoint still speaks JSON.
	bad, err := http.Get(ts.URL + "/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close() //nolint:errcheck // test
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /metrics?format=xml: status %d, want 400", bad.StatusCode)
	}
	var viaParam metricsView
	if code := getJSON(t, ts.URL+"/metrics?format=json", &viaParam); code != http.StatusOK {
		t.Errorf("GET /metrics?format=json: status %d", code)
	}
}
