package main

import (
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"faultsec/internal/faultmodel"
	"faultsec/internal/ftpd"
	"faultsec/internal/inject"
)

// TestSubmitUnknownFaultModel: an unregistered model name is refused at
// submit time with 400 — before a campaign exists — not discovered later
// by a failing engine.
func TestSubmitUnknownFaultModel(t *testing.T) {
	ts, _ := newTestService(t)
	code := postStatus(t, ts, `{"app":"ftpd","scenario":"Client1","faultModel":"nosuch"}`)
	if code != http.StatusBadRequest {
		t.Errorf("unknown faultModel: status %d, want 400", code)
	}
}

// TestSubmitFaultModelEcho: the campaign view reports the canonical model
// name — the explicit one when submitted, "bitflip" when the field is
// omitted (legacy submissions).
func TestSubmitFaultModelEcho(t *testing.T) {
	ts, _ := newTestService(t)
	v := postCampaign(t, ts, `{"app":"ftpd","scenario":"Client1","faultModel":"instskip"}`)
	if v.Model != "instskip" {
		t.Errorf("explicit model echoes %q, want instskip", v.Model)
	}
	legacy := postCampaign(t, ts, `{"app":"ftpd","scenario":"Client2"}`)
	if legacy.Model != "bitflip" {
		t.Errorf("omitted model echoes %q, want bitflip", legacy.Model)
	}
	waitDone(t, ts, v.ID)
	waitDone(t, ts, legacy.ID)
}

// TestFaultModelMatrixSmoke drives a tiny campaign for every registered
// fault model through the daemon end to end: submit, run to completion on
// the engine, and check the final summary sized exactly to the model's
// deterministic enumeration. This is the CI matrix job's entry point.
func TestFaultModelMatrixSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("a campaign per model is not short")
	}
	app, err := ftpd.Build()
	if err != nil {
		t.Fatal(err)
	}
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}

	ts, _ := newTestService(t)
	for _, name := range faultmodel.Names() {
		t.Run(name, func(t *testing.T) {
			m, err := faultmodel.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			body := fmt.Sprintf(`{"app":"ftpd","scenario":"Client1","faultModel":%q}`, name)
			v := postCampaign(t, ts, body)
			if v.Model != name {
				t.Errorf("view model %q, want %q", v.Model, name)
			}
			final := waitDone(t, ts, v.ID)
			if final.State != stateDone {
				t.Fatalf("campaign ended %q (%s), want done", final.State, final.Error)
			}
			if final.Final == nil {
				t.Fatal("done campaign has no final summary")
			}
			if want := faultmodel.Total(targets, m); final.Final.Total != want {
				t.Errorf("final total %d, want the %s enumeration size %d",
					final.Final.Total, name, want)
			}
		})
	}
}

// TestJournalFilenameCarriesModel: journaled campaigns of different
// models must not collide on one journal file — bitflip keeps the
// historical name (so pre-fault-model journals still resume), other
// models get a distinct suffix and therefore a distinct resume identity.
func TestJournalFilenameCarriesModel(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newTestServiceIn(t, dir)
	v1 := postCampaign(t, ts, `{"app":"ftpd","scenario":"Client1","faultModel":"instskip","journal":true}`)
	v2 := postCampaign(t, ts, `{"app":"ftpd","scenario":"Client1","journal":true}`)
	if v1.ID == v2.ID {
		t.Fatal("model-distinct journaled campaigns collided")
	}
	waitDone(t, ts, v1.ID)
	waitDone(t, ts, v2.ID)

	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var sawModel, sawLegacy bool
	for _, p := range paths {
		switch {
		case strings.HasSuffix(p, "ftpd-Client1-x86-instskip.jsonl"):
			sawModel = true
		case strings.HasSuffix(p, "ftpd-Client1-x86.jsonl"):
			sawLegacy = true
		}
	}
	if !sawModel || !sawLegacy {
		t.Errorf("journal files %v: want both the legacy bitflip name and the -instskip suffix", paths)
	}
}
