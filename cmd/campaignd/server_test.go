package main

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync"

	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newTestService(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	ts, _ := newTestServiceIn(t, t.TempDir())
	return ts, ""
}

// newTestServiceIn starts a campaignd instance over an existing journal
// directory, so tests can simulate a daemon restart by starting a second
// instance on the same directory.
func newTestServiceIn(t *testing.T, dir string) (*httptest.Server, *server) {
	t.Helper()
	srv, err := newServer(dir)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

func postCampaign(t *testing.T, ts *httptest.Server, body string) campaignView {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /campaigns: status %d", resp.StatusCode)
	}
	var v campaignView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

// postStatus submits a campaign body and returns the response status.
func postStatus(t *testing.T, ts *httptest.Server, body string) int {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck // test
	return resp.StatusCode
}

// deleteCampaign issues DELETE /campaigns/{id} and returns the status.
func deleteCampaign(t *testing.T, ts *httptest.Server, id string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck // test
	return resp.StatusCode
}

// waitProgress polls the campaign until at least n runs completed (so a
// following DELETE provably lands mid-campaign, not before the first run).
func waitProgress(t *testing.T, ts *httptest.Server, id string, n int) campaignView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var v campaignView
		if code := getJSON(t, ts.URL+"/campaigns/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET /campaigns/%s: status %d", id, code)
		}
		if v.Progress.Done >= n || v.State != "running" {
			return v
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %d runs", id, n)
	return campaignView{}
}

// waitDone polls the campaign until it leaves the running state, checking
// that progress counters only ever move forward.
func waitDone(t *testing.T, ts *httptest.Server, id string) campaignView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	lastDone := -1
	for time.Now().Before(deadline) {
		var v campaignView
		if code := getJSON(t, ts.URL+"/campaigns/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET /campaigns/%s: status %d", id, code)
		}
		if v.Progress.Done < lastDone {
			t.Fatalf("progress went backwards: %d -> %d", lastDone, v.Progress.Done)
		}
		lastDone = v.Progress.Done
		if v.State != "running" {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish", id)
	return campaignView{}
}

// TestServiceEndToEnd drives campaignd the way a client would: submit the
// FTP Client1 campaign, watch progress advance monotonically, and check
// the finished campaign reports Table-1-shaped counts and engine metrics.
func TestServiceEndToEnd(t *testing.T) {
	ts, _ := newTestService(t)

	v := postCampaign(t, ts, `{"app":"ftpd","scenario":"Client1","scheme":"x86"}`)
	if v.ID == "" || v.State != "running" {
		t.Fatalf("submit returned %+v", v)
	}

	final := waitDone(t, ts, v.ID)
	if final.State != "done" {
		t.Fatalf("campaign ended %q (error %q)", final.State, final.Error)
	}
	if final.Final == nil {
		t.Fatal("finished campaign has no final summary")
	}
	if final.Final.Total == 0 || final.Progress.Done != final.Final.Total {
		t.Fatalf("final progress %d/%d", final.Progress.Done, final.Final.Total)
	}
	sum := 0
	for _, k := range []string{"NA", "NM", "SD", "FSV", "BRK"} {
		sum += final.Final.Counts[k]
	}
	if sum != final.Final.Total {
		t.Fatalf("outcome counts %v sum to %d, want %d", final.Final.Counts, sum, final.Final.Total)
	}
	if final.Final.Counts["BRK"] == 0 {
		t.Error("stock-x86 FTP campaign reported no break-ins")
	}

	var m metricsView
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	em, ok := m.Campaigns[v.ID]
	if !ok {
		t.Fatalf("metrics missing campaign %s: %+v", v.ID, m)
	}
	if em.RunsTotal == 0 || em.SnapshotRuns == 0 {
		t.Errorf("metrics show no snapshot work: %+v", em)
	}
	if em.SnapshotHitRate <= 0 || em.SnapshotHitRate > 1 {
		t.Errorf("snapshot hit rate %v out of range", em.SnapshotHitRate)
	}
	if m.TotalRuns < em.RunsTotal {
		t.Errorf("aggregate runs %d < campaign runs %d", m.TotalRuns, em.RunsTotal)
	}
	if em.ICacheHits == 0 {
		t.Errorf("metrics show no icache hits after a completed campaign: %+v", em)
	}
	if em.ICacheHitRate <= 0 || em.ICacheHitRate > 1 {
		t.Errorf("icache hit rate %v out of range", em.ICacheHitRate)
	}
	if m.ICacheHits < em.ICacheHits {
		t.Errorf("aggregate icache hits %d < campaign hits %d", m.ICacheHits, em.ICacheHits)
	}

	var list struct {
		Campaigns []campaignView `json:"campaigns"`
	}
	if code := getJSON(t, ts.URL+"/campaigns", &list); code != http.StatusOK {
		t.Fatalf("GET /campaigns: status %d", code)
	}
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != v.ID {
		t.Fatalf("campaign list %+v", list)
	}
}

// TestServiceJournalResume submits the same journaled campaign twice; the
// second submission must resume (here: adopt every journaled run) rather
// than re-execute.
func TestServiceJournalResume(t *testing.T) {
	ts, _ := newTestService(t)

	body := `{"app":"ftpd","scenario":"Client1","journal":true}`
	first := postCampaign(t, ts, body)
	if got := waitDone(t, ts, first.ID); got.State != "done" {
		t.Fatalf("first run ended %q (error %q)", got.State, got.Error)
	}

	second := postCampaign(t, ts, body)
	if !second.Resumed {
		t.Fatal("resubmission did not resume the journal")
	}
	final := waitDone(t, ts, second.ID)
	if final.State != "done" {
		t.Fatalf("resumed run ended %q (error %q)", final.State, final.Error)
	}

	var m metricsView
	getJSON(t, ts.URL+"/metrics", &m)
	em := m.Campaigns[second.ID]
	if em.JournalAdopted != int64(final.Final.Total) {
		t.Errorf("resumed campaign adopted %d of %d runs", em.JournalAdopted, final.Final.Total)
	}
	if em.RunsTotal != 0 {
		t.Errorf("resumed campaign re-executed %d runs", em.RunsTotal)
	}
}

// TestServiceRejectsBadRequests pins the API's error contract.
func TestServiceRejectsBadRequests(t *testing.T) {
	ts, _ := newTestService(t)
	cases := []struct {
		body string
		want int
	}{
		{`{"app":"nope","scenario":"Client1"}`, http.StatusBadRequest},
		{`{"app":"ftpd","scenario":"NoSuch"}`, http.StatusBadRequest},
		{`{"app":"ftpd","scenario":"Client1","scheme":"trinary"}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		// A typo'd knob must fail loudly, not silently run the wrong
		// ablation (DisallowUnknownFields).
		{`{"app":"ftpd","scenario":"Client1","noICash":true}`, http.StatusBadRequest},
		{`{"app":"ftpd","scenario":"Client1","jurnal":true}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewBufferString(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck // test
		if resp.StatusCode != c.want {
			t.Errorf("POST %s: status %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}

	var v map[string]any
	if code := getJSON(t, ts.URL+"/campaigns/c999", &v); code != http.StatusNotFound {
		t.Errorf("GET unknown campaign: status %d, want 404", code)
	}
}

// TestSubmitUnknownAppListsRegistry pins the submit-path registry error:
// an unknown app name is a 400 whose body names every registered target,
// so a client can self-correct without consulting the docs.
func TestSubmitUnknownAppListsRegistry(t *testing.T) {
	ts, _ := newTestService(t)
	resp, err := http.Post(ts.URL+"/campaigns", "application/json",
		bytes.NewBufferString(`{"app":"gopherd","scenario":"Client1"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST unknown app: status %d, want 400", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	msg, _ := body["error"].(string)
	for _, want := range []string{"gopherd", "ftpd", "httpd", "sshd"} {
		if !strings.Contains(msg, want) {
			t.Errorf("unknown-app 400 body %q does not mention %q", msg, want)
		}
	}
}

// TestServiceCampaignPathRouting pins the /campaigns/ sub-path contract:
// the empty id and nested sub-paths get clean 404s (no raw suffix echoed),
// and unknown methods get 405.
func TestServiceCampaignPathRouting(t *testing.T) {
	ts, _ := newTestService(t)

	var v map[string]any
	if code := getJSON(t, ts.URL+"/campaigns/", &v); code != http.StatusNotFound {
		t.Errorf("GET /campaigns/: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/campaigns/c1/x", &v); code != http.StatusNotFound {
		t.Errorf("GET /campaigns/c1/x: status %d, want 404", code)
	}
	if msg, _ := v["error"].(string); msg == "" || bytes.Contains([]byte(msg), []byte("c1/x")) {
		t.Errorf("sub-path 404 echoes the raw suffix: %q", msg)
	}
	if code := deleteCampaign(t, ts, "c999"); code != http.StatusNotFound {
		t.Errorf("DELETE unknown campaign: status %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/campaigns/c999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck // test
	// Method checks run after existence checks, so an unknown id is 404
	// regardless; use a real campaign for the 405.
	v2 := postCampaign(t, ts, `{"app":"ftpd","scenario":"Client1"}`)
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/campaigns/"+v2.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck // test
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /campaigns/%s: status %d, want 405", v2.ID, resp.StatusCode)
	}
	waitDone(t, ts, v2.ID)
}

// TestServiceCancelRestartResume is the lifecycle acceptance round-trip:
// cancel a journaled campaign mid-run via DELETE, observe the distinct
// "canceled" terminal state, restart the daemon (a second instance on the
// same journal directory), resubmit, and the resumed campaign's final
// summary must be identical to an uninterrupted run's.
func TestServiceCancelRestartResume(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newTestServiceIn(t, dir)

	// Reference: the same campaign, uninterrupted (not journaled, so it
	// does not touch the journal the canceled run will leave behind).
	ref := postCampaign(t, ts, `{"app":"ftpd","scenario":"Client1"}`)
	refFinal := waitDone(t, ts, ref.ID)
	if refFinal.State != "done" {
		t.Fatalf("reference run ended %q (error %q)", refFinal.State, refFinal.Error)
	}

	body := `{"app":"ftpd","scenario":"Client1","journal":true}`
	v := postCampaign(t, ts, body)
	mid := waitProgress(t, ts, v.ID, 1)
	if mid.State != "running" {
		t.Fatalf("campaign reached %q before it could be canceled", mid.State)
	}
	if code := deleteCampaign(t, ts, v.ID); code != http.StatusAccepted {
		t.Fatalf("DELETE running campaign: status %d, want 202", code)
	}
	canceled := waitDone(t, ts, v.ID)
	if canceled.State != "canceled" {
		t.Fatalf("canceled campaign ended %q (error %q)", canceled.State, canceled.Error)
	}
	if canceled.Progress.Done >= refFinal.Final.Total {
		t.Fatalf("campaign finished all %d runs before cancellation", canceled.Progress.Done)
	}
	if code := deleteCampaign(t, ts, v.ID); code != http.StatusConflict {
		t.Errorf("DELETE canceled campaign: status %d, want 409", code)
	}

	// "Restart the daemon": a fresh instance over the same journal dir.
	ts2, _ := newTestServiceIn(t, dir)
	resumedView := postCampaign(t, ts2, body)
	if !resumedView.Resumed {
		t.Fatal("post-restart resubmission did not resume the journal")
	}
	final := waitDone(t, ts2, resumedView.ID)
	if final.State != "done" {
		t.Fatalf("resumed campaign ended %q (error %q)", final.State, final.Error)
	}
	if !reflect.DeepEqual(final.Final, refFinal.Final) {
		t.Errorf("resumed final summary differs from uninterrupted run\nresumed: %+v\nreference: %+v",
			final.Final, refFinal.Final)
	}

	var m metricsView
	getJSON(t, ts2.URL+"/metrics", &m)
	em := m.Campaigns[resumedView.ID]
	if em.JournalAdopted == 0 {
		t.Error("resumed campaign adopted nothing from the journal")
	}
	if em.JournalAdopted+em.RunsTotal != int64(final.Final.Total) {
		t.Errorf("adopted %d + fresh %d != total %d", em.JournalAdopted, em.RunsTotal, final.Final.Total)
	}
}

// TestServiceDuplicateJournalSubmit pins the single-writer guarantee at
// the API: a second journaled submission of the same app/scenario/scheme
// while the first still runs is refused with 409 Conflict, and once the
// first finishes the journal is clean — a resubmission resumes it and
// adopts every run.
func TestServiceDuplicateJournalSubmit(t *testing.T) {
	ts, _ := newTestService(t)

	body := `{"app":"ftpd","scenario":"Client1","journal":true}`
	first := postCampaign(t, ts, body)
	if code := postStatus(t, ts, body); code != http.StatusConflict {
		t.Fatalf("duplicate journaled submit: status %d, want 409", code)
	}
	// A different scheme journals to a different path: allowed.
	other := postCampaign(t, ts, `{"app":"ftpd","scenario":"Client1","scheme":"parity","journal":true}`)

	got := waitDone(t, ts, first.ID)
	if got.State != "done" {
		t.Fatalf("first run ended %q (error %q)", got.State, got.Error)
	}
	waitDone(t, ts, other.ID)

	// The refused duplicate left no mark: the journal replays cleanly and
	// completely.
	second := postCampaign(t, ts, body)
	if !second.Resumed {
		t.Fatal("resubmission after completion did not resume the journal")
	}
	final := waitDone(t, ts, second.ID)
	if final.State != "done" {
		t.Fatalf("resumed run ended %q (error %q)", final.State, final.Error)
	}
	var m metricsView
	getJSON(t, ts.URL+"/metrics", &m)
	em := m.Campaigns[second.ID]
	if em.JournalAdopted != int64(final.Final.Total) || em.RunsTotal != 0 {
		t.Errorf("post-duplicate resume adopted %d and re-ran %d of %d runs",
			em.JournalAdopted, em.RunsTotal, final.Final.Total)
	}
}

// TestServiceShutdownDrains pins graceful shutdown: Shutdown cancels the
// in-flight campaign, waits for its final journal checkpoint, refuses new
// submissions with 503, and leaves a journal a restarted daemon resumes.
func TestServiceShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	ts, srv := newTestServiceIn(t, dir)

	body := `{"app":"ftpd","scenario":"Client1","journal":true}`
	v := postCampaign(t, ts, body)
	waitProgress(t, ts, v.ID, 1)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	final := waitDone(t, ts, v.ID) // handlers still respond; run is terminal
	if final.State != "canceled" && final.State != "done" {
		t.Fatalf("after shutdown campaign is %q (error %q)", final.State, final.Error)
	}
	if code := postStatus(t, ts, `{"app":"ftpd","scenario":"Client1"}`); code != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: status %d, want 503", code)
	}

	ts2, _ := newTestServiceIn(t, dir)
	resumed := postCampaign(t, ts2, body)
	if final.State == "canceled" && !resumed.Resumed {
		t.Fatal("journal of drained campaign did not resume")
	}
	got := waitDone(t, ts2, resumed.ID)
	if got.State != "done" {
		t.Fatalf("post-restart campaign ended %q (error %q)", got.State, got.Error)
	}
}

// TestServiceConcurrentLifecycle hammers submit/cancel/progress/metrics
// concurrently; run under -race it proves the lifecycle bookkeeping is
// data-race free. Journaled submissions race over one journal path on
// purpose: every response must be 202 or 409, never a corrupted journal.
func TestServiceConcurrentLifecycle(t *testing.T) {
	ts, _ := newTestService(t)

	var wg sync.WaitGroup
	ids := make(chan string, 64)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := `{"app":"ftpd","scenario":"Client1","journal":true}`
			if i%2 == 1 {
				body = `{"app":"ftpd","scenario":"Client1","scheme":"parity","journal":true}`
			}
			resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewBufferString(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close() //nolint:errcheck // test
			switch resp.StatusCode {
			case http.StatusAccepted:
				var v campaignView
				if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
					t.Error(err)
					return
				}
				ids <- v.ID
			case http.StatusConflict: // racing duplicate: expected
			default:
				t.Errorf("concurrent submit: status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(ids)

	var all []string
	for id := range ids {
		all = append(all, id)
	}
	if len(all) == 0 {
		t.Fatal("no campaign accepted")
	}

	// Readers poll list+detail+metrics while cancelers kill every run.
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var list struct {
					Campaigns []campaignView `json:"campaigns"`
				}
				getJSON(t, ts.URL+"/campaigns", &list)
				var m metricsView
				getJSON(t, ts.URL+"/metrics", &m)
				for _, id := range all {
					var v campaignView
					getJSON(t, ts.URL+"/campaigns/"+id, &v)
				}
			}
		}()
	}
	for _, id := range all {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if code := deleteCampaign(t, ts, id); code != http.StatusAccepted && code != http.StatusConflict {
				t.Errorf("concurrent DELETE %s: status %d", id, code)
			}
		}(id)
	}

	for _, id := range all {
		v := waitDone(t, ts, id)
		if v.State != "canceled" && v.State != "done" {
			t.Errorf("campaign %s ended %q (error %q)", id, v.State, v.Error)
		}
	}
	close(stop)
	wg.Wait()

	// The surviving journals are intact: resubmissions resume cleanly.
	for _, body := range []string{
		`{"app":"ftpd","scenario":"Client1","journal":true}`,
		`{"app":"ftpd","scenario":"Client1","scheme":"parity","journal":true}`,
	} {
		v := postCampaign(t, ts, body)
		if got := waitDone(t, ts, v.ID); got.State != "done" {
			t.Errorf("post-race resume of %s ended %q (error %q)", body, got.State, got.Error)
		}
	}
}
