package main

import (
	"bytes"
	"encoding/json"

	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newTestService(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	srv, err := newServer(dir)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, dir
}

func postCampaign(t *testing.T, ts *httptest.Server, body string) campaignView {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /campaigns: status %d", resp.StatusCode)
	}
	var v campaignView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

// waitDone polls the campaign until it leaves the running state, checking
// that progress counters only ever move forward.
func waitDone(t *testing.T, ts *httptest.Server, id string) campaignView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	lastDone := -1
	for time.Now().Before(deadline) {
		var v campaignView
		if code := getJSON(t, ts.URL+"/campaigns/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET /campaigns/%s: status %d", id, code)
		}
		if v.Progress.Done < lastDone {
			t.Fatalf("progress went backwards: %d -> %d", lastDone, v.Progress.Done)
		}
		lastDone = v.Progress.Done
		if v.State != "running" {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish", id)
	return campaignView{}
}

// TestServiceEndToEnd drives campaignd the way a client would: submit the
// FTP Client1 campaign, watch progress advance monotonically, and check
// the finished campaign reports Table-1-shaped counts and engine metrics.
func TestServiceEndToEnd(t *testing.T) {
	ts, _ := newTestService(t)

	v := postCampaign(t, ts, `{"app":"ftpd","scenario":"Client1","scheme":"x86"}`)
	if v.ID == "" || v.State != "running" {
		t.Fatalf("submit returned %+v", v)
	}

	final := waitDone(t, ts, v.ID)
	if final.State != "done" {
		t.Fatalf("campaign ended %q (error %q)", final.State, final.Error)
	}
	if final.Final == nil {
		t.Fatal("finished campaign has no final summary")
	}
	if final.Final.Total == 0 || final.Progress.Done != final.Final.Total {
		t.Fatalf("final progress %d/%d", final.Progress.Done, final.Final.Total)
	}
	sum := 0
	for _, k := range []string{"NA", "NM", "SD", "FSV", "BRK"} {
		sum += final.Final.Counts[k]
	}
	if sum != final.Final.Total {
		t.Fatalf("outcome counts %v sum to %d, want %d", final.Final.Counts, sum, final.Final.Total)
	}
	if final.Final.Counts["BRK"] == 0 {
		t.Error("stock-x86 FTP campaign reported no break-ins")
	}

	var m metricsView
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	em, ok := m.Campaigns[v.ID]
	if !ok {
		t.Fatalf("metrics missing campaign %s: %+v", v.ID, m)
	}
	if em.RunsTotal == 0 || em.SnapshotRuns == 0 {
		t.Errorf("metrics show no snapshot work: %+v", em)
	}
	if em.SnapshotHitRate <= 0 || em.SnapshotHitRate > 1 {
		t.Errorf("snapshot hit rate %v out of range", em.SnapshotHitRate)
	}
	if m.TotalRuns < em.RunsTotal {
		t.Errorf("aggregate runs %d < campaign runs %d", m.TotalRuns, em.RunsTotal)
	}
	if em.ICacheHits == 0 {
		t.Errorf("metrics show no icache hits after a completed campaign: %+v", em)
	}
	if em.ICacheHitRate <= 0 || em.ICacheHitRate > 1 {
		t.Errorf("icache hit rate %v out of range", em.ICacheHitRate)
	}
	if m.ICacheHits < em.ICacheHits {
		t.Errorf("aggregate icache hits %d < campaign hits %d", m.ICacheHits, em.ICacheHits)
	}

	var list struct {
		Campaigns []campaignView `json:"campaigns"`
	}
	if code := getJSON(t, ts.URL+"/campaigns", &list); code != http.StatusOK {
		t.Fatalf("GET /campaigns: status %d", code)
	}
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != v.ID {
		t.Fatalf("campaign list %+v", list)
	}
}

// TestServiceJournalResume submits the same journaled campaign twice; the
// second submission must resume (here: adopt every journaled run) rather
// than re-execute.
func TestServiceJournalResume(t *testing.T) {
	ts, _ := newTestService(t)

	body := `{"app":"ftpd","scenario":"Client1","journal":true}`
	first := postCampaign(t, ts, body)
	if got := waitDone(t, ts, first.ID); got.State != "done" {
		t.Fatalf("first run ended %q (error %q)", got.State, got.Error)
	}

	second := postCampaign(t, ts, body)
	if !second.Resumed {
		t.Fatal("resubmission did not resume the journal")
	}
	final := waitDone(t, ts, second.ID)
	if final.State != "done" {
		t.Fatalf("resumed run ended %q (error %q)", final.State, final.Error)
	}

	var m metricsView
	getJSON(t, ts.URL+"/metrics", &m)
	em := m.Campaigns[second.ID]
	if em.JournalAdopted != int64(final.Final.Total) {
		t.Errorf("resumed campaign adopted %d of %d runs", em.JournalAdopted, final.Final.Total)
	}
	if em.RunsTotal != 0 {
		t.Errorf("resumed campaign re-executed %d runs", em.RunsTotal)
	}
}

// TestServiceRejectsBadRequests pins the API's error contract.
func TestServiceRejectsBadRequests(t *testing.T) {
	ts, _ := newTestService(t)
	cases := []struct {
		body string
		want int
	}{
		{`{"app":"nope","scenario":"Client1"}`, http.StatusBadRequest},
		{`{"app":"ftpd","scenario":"NoSuch"}`, http.StatusBadRequest},
		{`{"app":"ftpd","scenario":"Client1","scheme":"trinary"}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewBufferString(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck // test
		if resp.StatusCode != c.want {
			t.Errorf("POST %s: status %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}

	var v map[string]any
	if code := getJSON(t, ts.URL+"/campaigns/c999", &v); code != http.StatusNotFound {
		t.Errorf("GET unknown campaign: status %d, want 404", code)
	}
}
