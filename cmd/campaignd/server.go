package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"faultsec/internal/campaign"
	"faultsec/internal/castore"
	"faultsec/internal/encoding"
	"faultsec/internal/faultmodel"
	"faultsec/internal/fleet"
	"faultsec/internal/inject"
	"faultsec/internal/target"

	// Register the built-in target applications; submits resolve them by
	// registry name and build them lazily.
	_ "faultsec/internal/ftpd"
	_ "faultsec/internal/httpd"
	_ "faultsec/internal/sshd"
)

// maxSubmitBytes bounds the POST /campaigns body; real submissions are a
// few hundred bytes, so anything near the limit is abuse, not a campaign.
const maxSubmitBytes = 1 << 20

// submitRequest is the POST /campaigns body. Unknown fields are rejected
// (DisallowUnknownFields), so a typo'd knob fails the submit loudly
// instead of silently running the wrong ablation.
type submitRequest struct {
	App      string `json:"app"`      // a target registry name ("ftpd", "sshd", "httpd")
	Scenario string `json:"scenario"` // e.g. "Client1"
	// Scheme selects the hardening scheme ("x86" when omitted); unknown
	// names are refused with 400 and the registered list.
	Scheme string `json:"scheme"`
	// FaultModel selects the injection's fault model ("bitflip" when
	// omitted); unknown names are refused with 400 and the registered list.
	FaultModel string `json:"faultModel,omitempty"`
	Fuel       uint64 `json:"fuel,omitempty"`
	Parallel   int    `json:"parallelism,omitempty"`
	Watchdog   bool   `json:"watchdog,omitempty"`
	// NoICache disables the VM's predecoded instruction cache for this
	// campaign (the perf-ablation knob; outcomes are identical either way).
	NoICache bool `json:"noICache,omitempty"`
	// NoUops routes execution through the VM's legacy interpreter switch
	// instead of bound micro-op handlers (the other perf-ablation knob;
	// outcomes are identical either way).
	NoUops bool `json:"noUops,omitempty"`
	// NoDirtyTracking forces full-image snapshot restores instead of
	// O(dirty) page copies (perf-ablation knob; outcomes are identical
	// either way).
	NoDirtyTracking bool `json:"noDirtyTracking,omitempty"`
	// NoTraces disables superblock trace fusion, dispatching every
	// instruction individually (perf-ablation knob; outcomes are identical
	// either way).
	NoTraces bool `json:"noTraces,omitempty"`
	// Journal enables crash-safe journaling (requires -journals). A
	// resubmission of the same app/scenario/scheme resumes the journal.
	Journal bool `json:"journal,omitempty"`
	// CheckpointSync fsyncs periodic journal checkpoints (the final
	// checkpoint is always synced). Costs one fsync per checkpoint
	// interval; buys bounded loss under power failure, not just crash.
	CheckpointSync bool `json:"checkpointSync,omitempty"`
	// CacheMode controls the content-addressed shard-result store
	// ("off"/"read"/"readwrite"; "" means off). Requires -journals: the
	// store lives under the journal directory. A resubmission of a rebuilt
	// target in "read" or "readwrite" mode re-executes only experiments
	// whose covering code section changed and adopts the rest from cache.
	CacheMode string `json:"cacheMode,omitempty"`
	// Workers runs the campaign across a fleet instead of the in-process
	// engine: each entry is a worker node's base URL (its /shards and
	// /healthz endpoints — any other campaignd qualifies), or the literal
	// "loopback" for an in-process worker. This daemon becomes the
	// coordinator: it owns the journal and the merged stats.
	Workers []string `json:"workers,omitempty"`
	// ShardRuns overrides the fleet's target shard size (runs per shard).
	ShardRuns int `json:"shardRuns,omitempty"`
}

// Terminal and non-terminal campaign states.
const (
	stateRunning  = "running"
	stateDone     = "done"
	stateFailed   = "failed"
	stateCanceled = "canceled"
)

// campaignView is the GET /campaigns/{id} response.
type campaignView struct {
	ID       string `json:"id"`
	App      string `json:"app"`
	Scenario string `json:"scenario"`
	Scheme   string `json:"scheme"`
	// Model is the canonical fault-model name ("bitflip", "instskip", ...).
	Model string `json:"model"`
	// State is "running", "done", "failed", or "canceled". A campaign
	// stays "running" from DELETE until the engine drains its in-flight
	// runs and writes the final journal checkpoint.
	State    string            `json:"state"`
	Error    string            `json:"error,omitempty"`
	Resumed  bool              `json:"resumed,omitempty"`
	Progress campaign.Progress `json:"progress"`
	// Final is the Table-1-shaped outcome summary, present once done.
	Final *finalSummary `json:"final,omitempty"`
}

// finalSummary is the completed-campaign digest: the paper's outcome
// distribution plus transient-window activity.
type finalSummary struct {
	Total     int                    `json:"total"`
	Activated int                    `json:"activated"`
	Counts    map[string]int         `json:"counts"`
	Window    inject.TransientWindow `json:"window"`
	Crashes   int                    `json:"crashes"`
}

// run is one submitted campaign. Exactly one of eng (in-process engine)
// or coord (fleet coordinator) executes it.
type run struct {
	id      string
	req     submitRequest
	resumed bool
	// cancel aborts the campaign's context (DELETE /campaigns/{id} and
	// server shutdown). Safe to call repeatedly and after completion.
	cancel context.CancelFunc

	mu    sync.Mutex
	eng   *campaign.Engine
	coord *fleet.Coordinator
	state string // stateRunning / stateDone / stateFailed / stateCanceled
	err   error
	stats *inject.Stats
}

// engine returns the run's current engine, nil for fleet campaigns (it
// is swapped if a resume falls back to a fresh run).
func (r *run) engine() *campaign.Engine {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eng
}

// coordinator returns the run's fleet coordinator, nil for in-process
// campaigns.
func (r *run) coordinator() *fleet.Coordinator {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.coord
}

// finish records the campaign's terminal state. Cancellation is a state
// of its own, not a failure: an operator canceling a run (or the daemon
// draining on SIGTERM) must be distinguishable from a campaign that blew
// up.
func (r *run) finish(stats *inject.Stats, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case err == nil:
		r.state, r.stats = stateDone, stats
	case errors.Is(err, context.Canceled):
		r.state, r.err = stateCanceled, err
	default:
		r.state, r.err = stateFailed, err
	}
}

// terminal reports whether the campaign has reached a terminal state.
func (r *run) terminal() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state != stateRunning
}

func (r *run) view() campaignView {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := campaignView{
		ID:       r.id,
		App:      r.req.App,
		Scenario: r.req.Scenario,
		Scheme:   r.req.Scheme,
		Model:    faultmodel.Canonical(r.req.FaultModel),
		State:    r.state,
		Resumed:  r.resumed,
	}
	if r.coord != nil {
		v.Progress = r.coord.Progress()
	} else {
		v.Progress = r.eng.Progress()
	}
	if r.err != nil {
		v.Error = r.err.Error()
	}
	if r.stats != nil {
		counts := make(map[string]int, len(r.stats.Counts))
		for o, n := range r.stats.Counts {
			counts[o.String()] = n
		}
		v.Final = &finalSummary{
			Total:     r.stats.Total,
			Activated: r.stats.Activated(),
			Counts:    counts,
			Window:    r.stats.Window,
			Crashes:   len(r.stats.CrashLatencies),
		}
	}
	return v
}

// server is the campaignd HTTP API. Campaign execution happens on
// background goroutines; handlers only read the engine's atomic
// progress/metrics counters and the run's terminal state.
type server struct {
	mux        *http.ServeMux
	journalDir string
	// cache is the content-addressed shard-result store under
	// journalDir/castore; nil when campaignd runs without -journals.
	cache *castore.Store
	// worker serves POST /shards, making this daemon leasable by fleet
	// coordinators (its counters feed GET /metrics).
	worker *fleet.WorkerServer

	// wg tracks campaign goroutines; Shutdown waits on it so the daemon
	// only exits after every canceled campaign has written its final
	// journal checkpoint.
	wg sync.WaitGroup

	mu      sync.Mutex
	nextID  int
	runs    map[string]*run
	order   []string // insertion order for listing
	closing bool     // set by Shutdown; rejects new submissions
	// journals maps an active journal path to the run id writing it. A
	// second journaled submit of the same app/scenario/scheme while the
	// first still runs is refused with 409: two writers on one JSONL file
	// would interleave records into corruption.
	journals map[string]string
}

func newServer(journalDir string) (*server, error) {
	// Apps are NOT built here: submits (and worker shard leases) resolve
	// them by registry name through target.Build, which memoizes per app —
	// the daemon starts instantly and compiles only what it is asked to
	// run.
	s := &server{
		journalDir: journalDir,
		runs:       make(map[string]*run),
		journals:   make(map[string]string),
	}
	if journalDir != "" {
		// The result store shares the journal directory's durability
		// domain: entries and journals live on the same filesystem, so a
		// crash cannot leave one without the other.
		var err error
		s.cache, err = castore.Open(filepath.Join(journalDir, "castore"))
		if err != nil {
			return nil, fmt.Errorf("campaignd: open result store: %w", err)
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/campaigns", s.handleCampaigns)
	s.mux.HandleFunc("/campaigns/", s.handleCampaign)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc(fleet.PathHealthz, s.handleHealthz)
	// Every campaignd doubles as a fleet worker: coordinators POST shard
	// leases here. The drain gate refuses new shards once shutdown began
	// (in-flight shards finish; a coordinator that loses one to our exit
	// sees a truncated stream and re-leases it elsewhere).
	s.worker = fleet.NewWorkerServerResolver(target.Build, s.drainGate)
	if s.cache != nil {
		s.worker.SetCache(s.cache)
	}
	s.mux.Handle(fleet.PathShards, s.worker)
	return s, nil
}

// drainGate refuses new work once Shutdown has begun.
func (s *server) drainGate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return errors.New("campaignd is draining")
	}
	return nil
}

// handleHealthz is the liveness probe fleet coordinators heartbeat: 200
// while serving, 503 once draining so coordinators stop leasing shards
// here before the listener goes away.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	if err := s.drainGate(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown cancels every running campaign and waits for their goroutines
// to drain — each engine finishes its in-flight runs, writes a final
// journal checkpoint, and closes its journal, so a restarted daemon
// resumes exactly where this one stopped. New submissions are refused
// with 503 once shutdown begins. The ctx bounds the wait.
func (s *server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	for _, rn := range s.runs {
		rn.cancel()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("campaignd: shutdown: %w", ctx.Err())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submit(w, r)
	case http.MethodGet:
		s.mu.Lock()
		views := make([]campaignView, 0, len(s.order))
		for _, id := range s.order {
			views = append(views, s.runs[id].view())
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"campaigns": views})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req submitRequest
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Lazy build through the registry: the first submit for an app compiles
	// it; unknown names are refused with the registered list.
	app, err := target.Build(req.App)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	sc, ok := app.Scenario(req.Scenario)
	if !ok {
		writeErr(w, http.StatusBadRequest, "app %s has no scenario %q", req.App, req.Scenario)
		return
	}
	scheme, err := encoding.Parse(req.Scheme)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown scheme %q (have %s)",
			req.Scheme, strings.Join(encoding.Names(), ", "))
		return
	}
	req.Scheme = scheme.Name()
	model, err := faultmodel.Get(req.FaultModel)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown fault model %q (have %s)",
			req.FaultModel, strings.Join(faultmodel.Names(), ", "))
		return
	}
	req.FaultModel = model.Name()
	if req.ShardRuns < 0 || (req.ShardRuns > 0 && len(req.Workers) == 0) {
		writeErr(w, http.StatusBadRequest, "shardRuns requires a fleet campaign (non-empty workers)")
		return
	}
	cacheMode, err := campaign.NormalizeCacheMode(req.CacheMode)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	req.CacheMode = cacheMode
	if cacheMode != campaign.CacheOff && s.cache == nil {
		writeErr(w, http.StatusBadRequest,
			"cacheMode %q requested but campaignd runs without -journals (the result store lives under the journal directory)", cacheMode)
		return
	}
	workers, err := s.buildWorkers(req.Workers)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: scheme, Model: req.FaultModel,
		Fuel: req.Fuel, Parallelism: req.Parallel, Watchdog: req.Watchdog,
		NoICache:        req.NoICache,
		NoUops:          req.NoUops,
		NoDirtyTracking: req.NoDirtyTracking,
		NoTraces:        req.NoTraces,
		CheckpointSync:  req.CheckpointSync,
	}
	if cacheMode != campaign.CacheOff {
		cfg.CacheMode = cacheMode
		cfg.Cache = s.cache
	}
	if req.Journal {
		if s.journalDir == "" {
			writeErr(w, http.StatusBadRequest, "journaling requested but campaignd runs without -journals")
			return
		}
		// Bitflip keeps its historical journal name (and with it, resume
		// compatibility for journals written before fault models existed);
		// other models get their own file per (app, scenario, scheme).
		name := fmt.Sprintf("%s-%s-%s.jsonl", req.App, req.Scenario, scheme)
		if wire := campaign.WireModel(req.FaultModel); wire != "" {
			name = fmt.Sprintf("%s-%s-%s-%s.jsonl", req.App, req.Scenario, scheme, wire)
		}
		cfg.Journal = filepath.Join(s.journalDir, name)
	}

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "campaignd is shutting down")
		return
	}
	resume := false
	if cfg.Journal != "" {
		if holder, busy := s.journals[cfg.Journal]; busy {
			s.mu.Unlock()
			writeErr(w, http.StatusConflict,
				"journal for %s/%s/%s model=%s is being written by campaign %s; cancel it or wait",
				req.App, req.Scenario, req.Scheme, req.FaultModel, holder)
			return
		}
		if _, err := os.Stat(cfg.Journal); err == nil {
			resume = true
		}
	}
	s.nextID++
	id := fmt.Sprintf("c%d", s.nextID)
	runCtx, cancel := context.WithCancel(context.Background())
	rn := &run{id: id, req: req, resumed: resume, state: stateRunning, cancel: cancel}
	fleetCfg := fleet.Config{Campaign: cfg, Workers: workers, ShardRuns: req.ShardRuns}
	if len(workers) > 0 {
		rn.coord = fleet.New(fleetCfg)
	} else {
		rn.eng = campaign.New(cfg)
	}
	s.runs[id] = rn
	s.order = append(s.order, id)
	if cfg.Journal != "" {
		s.journals[cfg.Journal] = id
	}
	s.wg.Add(1)
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		defer cancel()
		var stats *inject.Stats
		var err error
		// Defers run LIFO: the journal claim is released, then the
		// terminal state is recorded — so a client that observes "done"
		// or "canceled" can resubmit without hitting a stale 409.
		defer func() { rn.finish(stats, err) }()
		if cfg.Journal != "" {
			defer func() {
				s.mu.Lock()
				delete(s.journals, cfg.Journal)
				s.mu.Unlock()
			}()
		}
		// fresh swaps in a new executor for the resume-fallback path (so
		// metrics are not double-counted) and runs it from scratch.
		fresh := func() (*inject.Stats, error) {
			if len(workers) > 0 {
				co := fleet.New(fleetCfg)
				rn.mu.Lock()
				rn.coord, rn.resumed = co, false
				rn.mu.Unlock()
				return co.Run(runCtx)
			}
			e2 := campaign.New(cfg)
			rn.mu.Lock()
			rn.eng, rn.resumed = e2, false
			rn.mu.Unlock()
			return e2.Run(runCtx)
		}
		resumeOnce := func() (*inject.Stats, error) {
			if co := rn.coordinator(); co != nil {
				return co.Resume(runCtx)
			}
			return rn.engine().Resume(runCtx)
		}
		runOnce := func() (*inject.Stats, error) {
			if co := rn.coordinator(); co != nil {
				return co.Run(runCtx)
			}
			return rn.engine().Run(runCtx)
		}
		if resume {
			stats, err = resumeOnce()
			if err != nil && runCtx.Err() == nil && !errors.Is(err, campaign.ErrJournalBusy) {
				// A foreign or corrupt journal must not wedge the service:
				// fall back to a fresh run, which truncates the journal. A
				// canceled resume or a busy journal is NOT corruption —
				// falling back would truncate a journal we must preserve.
				var ferr error
				if stats, ferr = fresh(); ferr == nil {
					err = nil
				} else {
					err = errors.Join(err, ferr)
				}
			}
		} else {
			stats, err = runOnce()
		}
	}()

	writeJSON(w, http.StatusAccepted, rn.view())
}

// buildWorkers resolves the submit request's worker list: "loopback"
// becomes an in-process worker resolving apps through the target
// registry, anything else must be a worker base URL.
func (s *server) buildWorkers(specs []string) ([]fleet.Worker, error) {
	workers := make([]fleet.Worker, 0, len(specs))
	for i, spec := range specs {
		switch {
		case spec == "loopback":
			lb := fleet.NewLoopbackResolver(fmt.Sprintf("loopback%d", i), target.Build)
			if s.cache != nil {
				// Loopback workers share the daemon's result store, like
				// the HTTP worker endpoint does.
				lb.SetCache(s.cache)
			}
			workers = append(workers, lb)
		case strings.HasPrefix(spec, "http://") || strings.HasPrefix(spec, "https://"):
			workers = append(workers, fleet.NewHTTPWorker(spec, nil))
		default:
			return nil, fmt.Errorf("worker %q: want \"loopback\" or an http(s) base URL", spec)
		}
	}
	return workers, nil
}

func (s *server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/campaigns/")
	if id == "" {
		writeErr(w, http.StatusNotFound, "campaign id required (GET /campaigns lists campaigns)")
		return
	}
	if strings.Contains(id, "/") {
		writeErr(w, http.StatusNotFound, "no such resource")
		return
	}
	s.mu.Lock()
	rn, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no campaign %q", id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, rn.view())
	case http.MethodDelete:
		if rn.terminal() {
			writeErr(w, http.StatusConflict, "campaign %s already %s", id, rn.view().State)
			return
		}
		// Cancellation is asynchronous: the engine drains in-flight runs
		// and closes its journal with a final checkpoint, then the state
		// becomes "canceled". 202 reflects that.
		rn.cancel()
		writeJSON(w, http.StatusAccepted, rn.view())
	default:
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// metricsView is the GET /metrics response: per-campaign engine counters,
// per-fleet-campaign shard/retry counters, worker-mode counters, and
// service-wide aggregates.
type metricsView struct {
	Campaigns map[string]campaign.Metrics `json:"campaigns"`
	// Fleet holds coordinator metrics (shard lease states, retries,
	// speculative attempts, per-worker tallies) for fleet campaigns.
	Fleet map[string]fleet.Metrics `json:"fleet,omitempty"`
	// TotalRuns sums fresh runs across campaigns (engine and fleet).
	TotalRuns int64 `json:"totalRuns"`
	// ICacheHits and ICacheMisses sum the per-campaign predecoded
	// instruction cache counters.
	ICacheHits   int64 `json:"icacheHits"`
	ICacheMisses int64 `json:"icacheMisses"`
	// TraceHits and TraceExits sum the per-campaign superblock trace
	// counters; DirtyBytesCopied and FullRestores sum the per-campaign
	// snapshot-restore counters.
	TraceHits        int64 `json:"traceHits"`
	TraceExits       int64 `json:"traceExits"`
	DirtyBytesCopied int64 `json:"dirtyBytesCopied"`
	FullRestores     int64 `json:"fullRestores"`
	// CacheHits/CacheMisses/CacheWrites/CacheInvalid sum the per-campaign
	// content-addressed result-store counters (engine and fleet). Omitted
	// while zero so cache-less deployments keep the pre-cache wire shape.
	CacheHits    int64 `json:"cacheHits,omitempty"`
	CacheMisses  int64 `json:"cacheMisses,omitempty"`
	CacheWrites  int64 `json:"cacheWrites,omitempty"`
	CacheInvalid int64 `json:"cacheInvalid,omitempty"`
	// Running is the number of campaigns still executing.
	Running int `json:"running"`
	// WorkerShardsServed and WorkerRunsServed count work this daemon
	// executed as a fleet worker for remote coordinators.
	WorkerShardsServed int64 `json:"workerShardsServed"`
	WorkerRunsServed   int64 `json:"workerRunsServed"`
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	format := r.URL.Query().Get("format")
	if format != "" && format != "json" && format != "prometheus" {
		writeErr(w, http.StatusBadRequest, "unknown metrics format %q (have json, prometheus)", format)
		return
	}
	s.mu.Lock()
	v := metricsView{Campaigns: make(map[string]campaign.Metrics, len(s.runs))}
	for id, rn := range s.runs {
		if co := rn.coordinator(); co != nil {
			fm := co.Metrics()
			if v.Fleet == nil {
				v.Fleet = make(map[string]fleet.Metrics)
			}
			v.Fleet[id] = fm
			v.TotalRuns += fm.RunsTotal
			v.CacheHits += fm.CacheHits
			v.CacheMisses += fm.CacheMisses
			v.CacheWrites += fm.CacheWrites
			v.CacheInvalid += fm.CacheInvalid
		} else {
			m := rn.engine().Metrics()
			v.Campaigns[id] = m
			v.TotalRuns += m.RunsTotal
			v.ICacheHits += m.ICacheHits
			v.ICacheMisses += m.ICacheMisses
			v.TraceHits += m.TraceHits
			v.TraceExits += m.TraceExits
			v.DirtyBytesCopied += m.DirtyBytesCopied
			v.FullRestores += m.FullRestores
			v.CacheHits += m.CacheHits
			v.CacheMisses += m.CacheMisses
			v.CacheWrites += m.CacheWrites
			v.CacheInvalid += m.CacheInvalid
		}
		if !rn.terminal() {
			v.Running++
		}
	}
	s.mu.Unlock()
	v.WorkerShardsServed = s.worker.ShardsServed()
	v.WorkerRunsServed = s.worker.RunsServed()
	if format == "prometheus" {
		// The text exposition is an alternate rendering of the same view;
		// the default JSON shape stays byte-identical to the wirecompat
		// fixtures.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(renderPrometheus(&v)))
		return
	}
	writeJSON(w, http.StatusOK, v)
}
