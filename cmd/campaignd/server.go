package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"faultsec/internal/campaign"
	"faultsec/internal/encoding"
	"faultsec/internal/ftpd"
	"faultsec/internal/inject"
	"faultsec/internal/sshd"
	"faultsec/internal/target"
)

// submitRequest is the POST /campaigns body.
type submitRequest struct {
	App      string `json:"app"`      // "ftpd" or "sshd"
	Scenario string `json:"scenario"` // e.g. "Client1"
	Scheme   string `json:"scheme"`   // "x86" (default) or "parity"
	Fuel     uint64 `json:"fuel,omitempty"`
	Parallel int    `json:"parallelism,omitempty"`
	Watchdog bool   `json:"watchdog,omitempty"`
	// NoICache disables the VM's predecoded instruction cache for this
	// campaign (the perf-ablation knob; outcomes are identical either way).
	NoICache bool `json:"noICache,omitempty"`
	// NoUops routes execution through the VM's legacy interpreter switch
	// instead of bound micro-op handlers (the other perf-ablation knob;
	// outcomes are identical either way).
	NoUops bool `json:"noUops,omitempty"`
	// Journal enables crash-safe journaling (requires -journals). A
	// resubmission of the same app/scenario/scheme resumes the journal.
	Journal bool `json:"journal,omitempty"`
}

// campaignView is the GET /campaigns/{id} response.
type campaignView struct {
	ID       string `json:"id"`
	App      string `json:"app"`
	Scenario string `json:"scenario"`
	Scheme   string `json:"scheme"`
	// State is "running", "done", or "failed".
	State    string            `json:"state"`
	Error    string            `json:"error,omitempty"`
	Resumed  bool              `json:"resumed,omitempty"`
	Progress campaign.Progress `json:"progress"`
	// Final is the Table-1-shaped outcome summary, present once done.
	Final *finalSummary `json:"final,omitempty"`
}

// finalSummary is the completed-campaign digest: the paper's outcome
// distribution plus transient-window activity.
type finalSummary struct {
	Total     int                    `json:"total"`
	Activated int                    `json:"activated"`
	Counts    map[string]int         `json:"counts"`
	Window    inject.TransientWindow `json:"window"`
	Crashes   int                    `json:"crashes"`
}

// run is one submitted campaign.
type run struct {
	id      string
	req     submitRequest
	eng     *campaign.Engine
	resumed bool

	mu    sync.Mutex
	state string // "running", "done", "failed"
	err   error
	stats *inject.Stats
}

// engine returns the run's current engine (it is swapped if a resume
// falls back to a fresh run).
func (r *run) engine() *campaign.Engine {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eng
}

func (r *run) view() campaignView {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := campaignView{
		ID:       r.id,
		App:      r.req.App,
		Scenario: r.req.Scenario,
		Scheme:   r.req.Scheme,
		State:    r.state,
		Resumed:  r.resumed,
		Progress: r.eng.Progress(),
	}
	if r.err != nil {
		v.Error = r.err.Error()
	}
	if r.stats != nil {
		counts := make(map[string]int, len(r.stats.Counts))
		for o, n := range r.stats.Counts {
			counts[o.String()] = n
		}
		v.Final = &finalSummary{
			Total:     r.stats.Total,
			Activated: r.stats.Activated(),
			Counts:    counts,
			Window:    r.stats.Window,
			Crashes:   len(r.stats.CrashLatencies),
		}
	}
	return v
}

// server is the campaignd HTTP API. Campaign execution happens on
// background goroutines; handlers only read the engine's atomic
// progress/metrics counters and the run's terminal state.
type server struct {
	mux        *http.ServeMux
	journalDir string
	apps       map[string]*target.App

	mu     sync.Mutex
	nextID int
	runs   map[string]*run
	order  []string // insertion order for listing
}

func newServer(journalDir string) (*server, error) {
	fapp, err := ftpd.Build()
	if err != nil {
		return nil, err
	}
	sapp, err := sshd.Build()
	if err != nil {
		return nil, err
	}
	s := &server{
		journalDir: journalDir,
		apps:       map[string]*target.App{fapp.Name: fapp, sapp.Name: sapp},
		runs:       make(map[string]*run),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/campaigns", s.handleCampaigns)
	s.mux.HandleFunc("/campaigns/", s.handleCampaign)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func parseScheme(s string) (encoding.Scheme, error) {
	switch s {
	case "", "x86":
		return encoding.SchemeX86, nil
	case "parity":
		return encoding.SchemeParity, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want \"x86\" or \"parity\")", s)
}

func (s *server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submit(w, r)
	case http.MethodGet:
		s.mu.Lock()
		views := make([]campaignView, 0, len(s.order))
		for _, id := range s.order {
			views = append(views, s.runs[id].view())
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"campaigns": views})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	app, ok := s.apps[req.App]
	if !ok {
		names := make([]string, 0, len(s.apps))
		for n := range s.apps {
			names = append(names, n)
		}
		sort.Strings(names)
		writeErr(w, http.StatusBadRequest, "unknown app %q (have %s)", req.App, strings.Join(names, ", "))
		return
	}
	sc, ok := app.Scenario(req.Scenario)
	if !ok {
		writeErr(w, http.StatusBadRequest, "app %s has no scenario %q", req.App, req.Scenario)
		return
	}
	scheme, err := parseScheme(req.Scheme)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	req.Scheme = scheme.String()

	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: scheme,
		Fuel: req.Fuel, Parallelism: req.Parallel, Watchdog: req.Watchdog,
		NoICache: req.NoICache,
		NoUops:   req.NoUops,
	}
	resume := false
	if req.Journal {
		if s.journalDir == "" {
			writeErr(w, http.StatusBadRequest, "journaling requested but campaignd runs without -journals")
			return
		}
		cfg.Journal = filepath.Join(s.journalDir,
			fmt.Sprintf("%s-%s-%s.jsonl", req.App, req.Scenario, scheme))
		if _, err := os.Stat(cfg.Journal); err == nil {
			resume = true
		}
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("c%d", s.nextID)
	rn := &run{id: id, req: req, eng: campaign.New(cfg), resumed: resume, state: "running"}
	s.runs[id] = rn
	s.order = append(s.order, id)
	s.mu.Unlock()

	go func() {
		var stats *inject.Stats
		var err error
		if resume {
			stats, err = rn.engine().Resume(context.Background())
			if err != nil {
				// A foreign or corrupt journal must not wedge the service:
				// fall back to a fresh run (on a fresh engine, so metrics
				// are not double-counted), which truncates the journal.
				e2 := campaign.New(cfg)
				rn.mu.Lock()
				rn.eng, rn.resumed = e2, false
				rn.mu.Unlock()
				var ferr error
				if stats, ferr = e2.Run(context.Background()); ferr == nil {
					err = nil
				} else {
					err = errors.Join(err, ferr)
				}
			}
		} else {
			stats, err = rn.engine().Run(context.Background())
		}
		rn.mu.Lock()
		defer rn.mu.Unlock()
		if err != nil {
			rn.state, rn.err = "failed", err
			return
		}
		rn.state, rn.stats = "done", stats
	}()

	writeJSON(w, http.StatusAccepted, rn.view())
}

func (s *server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/campaigns/")
	s.mu.Lock()
	rn, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no campaign %q", id)
		return
	}
	writeJSON(w, http.StatusOK, rn.view())
}

// metricsView is the GET /metrics response: per-campaign engine counters
// plus service-wide aggregates.
type metricsView struct {
	Campaigns map[string]campaign.Metrics `json:"campaigns"`
	// TotalRuns sums fresh runs across campaigns.
	TotalRuns int64 `json:"totalRuns"`
	// ICacheHits and ICacheMisses sum the per-campaign predecoded
	// instruction cache counters.
	ICacheHits   int64 `json:"icacheHits"`
	ICacheMisses int64 `json:"icacheMisses"`
	// Running is the number of campaigns still executing.
	Running int `json:"running"`
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	s.mu.Lock()
	v := metricsView{Campaigns: make(map[string]campaign.Metrics, len(s.runs))}
	for id, rn := range s.runs {
		m := rn.engine().Metrics()
		v.Campaigns[id] = m
		v.TotalRuns += m.RunsTotal
		v.ICacheHits += m.ICacheHits
		v.ICacheMisses += m.ICacheMisses
		rn.mu.Lock()
		if rn.state == "running" {
			v.Running++
		}
		rn.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}
