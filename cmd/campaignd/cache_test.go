package main

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

// TestServiceCacheWarmResubmit drives the incremental-campaign loop the
// way an operator would: submit a cached campaign, let it finish, submit
// the identical campaign again, and watch the rerun adopt everything from
// the daemon's content-addressed store — with identical final counts and
// the hit counters surfaced in GET /metrics.
func TestServiceCacheWarmResubmit(t *testing.T) {
	if testing.Short() {
		t.Skip("two full campaigns are not short")
	}
	ts, _ := newTestServiceIn(t, t.TempDir())
	body := `{"app":"ftpd","scenario":"Client1","scheme":"x86","cacheMode":"readwrite"}`

	cold := postCampaign(t, ts, body)
	if got := waitDone(t, ts, cold.ID); got.State != "done" {
		t.Fatalf("cold campaign: state %s, error %q", got.State, got.Error)
	}
	warm := postCampaign(t, ts, body)
	wv := waitDone(t, ts, warm.ID)
	if wv.State != "done" {
		t.Fatalf("warm campaign: state %s, error %q", wv.State, wv.Error)
	}

	var coldDone, warmDone campaignView
	getJSON(t, ts.URL+"/campaigns/"+cold.ID, &coldDone)
	getJSON(t, ts.URL+"/campaigns/"+warm.ID, &warmDone)
	if !reflect.DeepEqual(coldDone.Progress.Counts, warmDone.Progress.Counts) {
		t.Errorf("warm resubmit counts %v differ from cold %v",
			warmDone.Progress.Counts, coldDone.Progress.Counts)
	}

	var m struct {
		CacheHits   int64 `json:"cacheHits"`
		CacheWrites int64 `json:"cacheWrites"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	if m.CacheHits == 0 {
		t.Error("GET /metrics reports no cache hits after a warm resubmit")
	}
	if m.CacheWrites == 0 {
		t.Error("GET /metrics reports no cache writes after a cold cached run")
	}
}

// TestServiceCacheModeValidation pins the two submit-time refusals: an
// unknown cacheMode, and any cache mode on a daemon running without a
// journal directory (there is nowhere to put the store).
func TestServiceCacheModeValidation(t *testing.T) {
	ts, _ := newTestServiceIn(t, t.TempDir())
	if code := postStatus(t, ts,
		`{"app":"ftpd","scenario":"Client1","scheme":"x86","cacheMode":"write"}`); code != http.StatusBadRequest {
		t.Errorf("unknown cacheMode: status %d, want 400", code)
	}
	// Valid mode on a journal-backed daemon is accepted.
	v := postCampaign(t, ts, `{"app":"ftpd","scenario":"Client1","scheme":"x86","cacheMode":"read"}`)
	if got := waitDone(t, ts, v.ID); got.State != "done" {
		t.Fatalf("read-mode campaign: state %s, error %q", got.State, got.Error)
	}

	srv, err := newServer("")
	if err != nil {
		t.Fatalf("newServer without journals: %v", err)
	}
	bare := httptest.NewServer(srv)
	defer bare.Close()
	if code := postStatus(t, bare,
		`{"app":"ftpd","scenario":"Client1","scheme":"x86","cacheMode":"readwrite"}`); code != http.StatusBadRequest {
		t.Errorf("cacheMode without -journals: status %d, want 400", code)
	}
}
