// Command encmap prints the branch re-encoding map (the paper's Table 4)
// and the Hamming-distance analysis motivating it.
package main

import (
	"fmt"

	"faultsec"
	"faultsec/internal/encoding"
	"faultsec/internal/x86"
)

func main() {
	fmt.Println("x86 Conditional Branch Instruction Encoding Mapping (paper Table 4)")
	fmt.Println()
	fmt.Print(faultsec.RenderTable4())
	fmt.Println()

	fmt.Println("Hamming analysis:")
	fmt.Printf("  stock 2-byte jcc opcodes (0x70..0x7F): min pairwise distance %d\n",
		x86.MinPairwiseHamming(x86.Jcc8Opcodes()))
	fmt.Printf("  stock 6-byte jcc 2nd opcode bytes (0x0F 0x80..0x8F): min pairwise distance %d\n",
		x86.MinPairwiseHamming(x86.Jcc32SecondOpcodes()))
	d2, d6 := encoding.MinHammingWithinBranchBlocks()
	fmt.Printf("  parity re-encoding: min distance %d (2-byte set), %d (6-byte set)\n", d2, d6)
	fmt.Println()

	fmt.Println("Dangerous single-bit pairs under the stock encoding (condition vs negation):")
	for cc := 0; cc < 16; cc += 2 {
		a := byte(x86.Jcc8Base + cc)
		b := byte(x86.Jcc8Base + cc + 1)
		fmt.Printf("  j%-3s (%#02x) <-> j%-3s (%#02x): one bit flip reverses the branch\n",
			x86.CondName(uint8(cc)), a, x86.CondName(uint8(cc+1)), b)
	}
}
