// Command encmap lists the registered hardening schemes and prints the
// branch re-encoding map (the paper's Table 4) and the Hamming-distance
// analysis motivating it for schemes that define a byte remap.
//
// Usage:
//
//	encmap             # list registered schemes, then render the parity map
//	encmap -scheme S   # render scheme S's encoding table (error if S has none)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"faultsec/internal/cc"
	"faultsec/internal/encoding"
	"faultsec/internal/x86"
)

func main() {
	scheme := flag.String("scheme", "parity",
		"hardening scheme whose encoding table to render")
	flag.Parse()
	if err := run(*scheme); err != nil {
		fmt.Fprintln(os.Stderr, "encmap:", err)
		os.Exit(1)
	}
}

func run(name string) error {
	fmt.Println("Registered hardening schemes:")
	for _, n := range encoding.Names() {
		s, err := encoding.Parse(n)
		if err != nil {
			return err
		}
		kind := "corruption-time"
		if s.CCOptions() != (cc.Options{}) {
			kind = "compile-time (cc options)"
		}
		remap := ""
		if _, ok := s.(encoding.Remapper); ok {
			remap = ", byte remap"
		}
		fmt.Printf("  %-10s %s%s\n", n, kind, remap)
	}
	fmt.Println()

	s, err := encoding.Parse(name)
	if err != nil {
		return err
	}
	r, ok := s.(encoding.Remapper)
	if !ok {
		return fmt.Errorf("scheme %q defines no byte remap — no encoding table to render (byte-remap schemes: %s)",
			name, strings.Join(remapperNames(), ", "))
	}

	fmt.Printf("%s Conditional Branch Instruction Encoding Mapping (paper Table 4)\n\n", name)
	fmt.Print(renderTable4(r))
	fmt.Println()

	fmt.Println("Hamming analysis:")
	fmt.Printf("  stock 2-byte jcc opcodes (0x70..0x7F): min pairwise distance %d\n",
		x86.MinPairwiseHamming(x86.Jcc8Opcodes()))
	fmt.Printf("  stock 6-byte jcc 2nd opcode bytes (0x0F 0x80..0x8F): min pairwise distance %d\n",
		x86.MinPairwiseHamming(x86.Jcc32SecondOpcodes()))
	d2, d6 := r.MinHammingWithinBranchBlocks()
	fmt.Printf("  %s re-encoding: min distance %d (2-byte set), %d (6-byte set)\n", name, d2, d6)
	fmt.Println()

	fmt.Println("Dangerous single-bit pairs under the stock encoding (condition vs negation):")
	for cc := 0; cc < 16; cc += 2 {
		a := byte(x86.Jcc8Base + cc)
		b := byte(x86.Jcc8Base + cc + 1)
		fmt.Printf("  j%-3s (%#02x) <-> j%-3s (%#02x): one bit flip reverses the branch\n",
			x86.CondName(uint8(cc)), a, x86.CondName(uint8(cc+1)), b)
	}
	return nil
}

// renderTable4 renders a remapper's encoding table in the paper's layout.
func renderTable4(r encoding.Remapper) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s  %-12s  %-12s\n", "Mnem", "2-byte", "6-byte (0F _)")
	for _, row := range r.Table4() {
		fmt.Fprintf(&b, "%-8s  %#02x -> %#02x  %#02x -> %#02x\n",
			row.Mnemonic, row.Old2, row.New2, row.Old6Byte2, row.New6Byte2)
	}
	return b.String()
}

func remapperNames() []string {
	var out []string
	for _, n := range encoding.Names() {
		if s, err := encoding.Parse(n); err == nil {
			if _, ok := s.(encoding.Remapper); ok {
				out = append(out, n)
			}
		}
	}
	return out
}
