// Command sshsim runs the study's miniature sshd against one of the
// paper's scripted client patterns (or arbitrary credentials) and prints
// the transcript; with -listen it serves the line-oriented protocol over
// real TCP.
//
// Usage:
//
//	sshsim -scenario Client1
//	sshsim -user bob -host bastion.example.com      # rhosts entry point
//	sshsim -listen :2222
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"faultsec/internal/kernel"
	"faultsec/internal/sshd"
	"faultsec/internal/target"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sshsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario = flag.String("scenario", "Client1", "scripted client pattern (Client1, Client2)")
		user     = flag.String("user", "", "override: user name")
		host     = flag.String("host", "client.example.net", "override: client host")
		password = flag.String("password", "", "override: password to try")
		listen   = flag.String("listen", "", "serve real TCP connections on this address instead")
	)
	flag.Parse()

	app, err := sshd.Build()
	if err != nil {
		return err
	}
	if *listen != "" {
		return serveTCP(app, *listen)
	}

	var client target.Client
	if *user != "" {
		var pws []string
		if *password != "" {
			pws = []string{*password}
		}
		client = sshd.NewClientForTest(*user, *host, pws)
	} else {
		sc, ok := app.Scenario(*scenario)
		if !ok {
			return fmt.Errorf("no scenario %q", *scenario)
		}
		client = sc.New()
	}

	k := kernel.New(client)
	ld, err := app.Image.Load(k, nil)
	if err != nil {
		return err
	}
	runErr := ld.Machine.Run()
	fmt.Print(k.Transcript.String())
	fmt.Printf("granted=%v, termination: %v, %d instructions\n",
		client.Granted(), runErr, ld.Machine.Steps)
	return nil
}

func serveTCP(app *target.App, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := ln.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "sshsim: close listener:", cerr)
		}
	}()
	fmt.Fprintf(os.Stderr, "sshsim: serving on %s (one connection at a time)\n", addr)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		k := kernel.NewStream(conn)
		ld, err := app.Image.Load(k, nil)
		if err != nil {
			return err
		}
		ld.Machine.Fuel = 50_000_000
		runErr := ld.Machine.Run()
		fmt.Fprintf(os.Stderr, "sshsim: session ended: %v\n", runErr)
		if cerr := conn.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "sshsim: close conn:", cerr)
		}
	}
}
