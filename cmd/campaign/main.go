// Command campaign runs the study's injection campaigns and prints the
// paper's tables and figure.
//
// Usage:
//
//	campaign -all                 # everything: Tables 1-5, Figure 4
//	campaign -table 1             # outcome distributions (stock x86)
//	campaign -table 3             # BRK+FSV by error location
//	campaign -table 4             # the branch re-encoding map
//	campaign -table 5             # distributions under the new encoding
//	campaign -figure 4            # crash-latency histogram
//	campaign -random 30000        # §7 random-injection testbed
//	campaign -persistent          # §5.4 permanent-window demonstration
//	campaign -loadimpact          # §5.4 load-diversity experiment
//	campaign -models              # fault-model matrix (bitflip, doublebit, byteflip, instskip, cmpskip, regflip)
//	campaign -schemes             # hardening-scheme reduction matrix (x86, parity, dupcmp, encbranch)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"faultsec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		tableN     = flag.Int("table", 0, "print table 1, 2, 3, 4 or 5")
		figureN    = flag.Int("figure", 0, "print figure 4")
		randomN    = flag.Int("random", 0, "run N random whole-text injections (§7 testbed)")
		seed       = flag.Int64("seed", 2001, "random testbed seed")
		persistent = flag.Bool("persistent", false, "demonstrate the permanent vulnerability window (§5.4)")
		watchdog   = flag.Bool("watchdog", false, "run the control-flow watchdog ablation")
		loadImpact = flag.Bool("loadimpact", false, "run the load-diversity experiment (§5.4)")
		models     = flag.Bool("models", false, "run every registered fault model over FTP, SSH, and HTTP Client1 and print the BRK/SD/FSV matrix")
		schemes    = flag.Bool("schemes", false, "run every registered hardening scheme x fault model over FTP, SSH, and HTTP Client1 and print the reduction matrix")
		all        = flag.Bool("all", false, "run everything")
		jsonOut    = flag.String("json", "", "also write campaign stats as JSON to this file")
		fuel       = flag.Uint64("fuel", 0, "per-run instruction budget (0 = default)")
		parallel   = flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()

	opts := faultsec.Options{Fuel: *fuel, Parallelism: *parallel}
	ctx := context.Background()

	study, err := faultsec.NewStudy()
	if err != nil {
		return err
	}

	if *all || *tableN == 2 {
		fmt.Println("== Table 2: Error Location Abbreviations ==")
		fmt.Println(faultsec.RenderTable2())
	}
	if *all || *tableN == 4 {
		fmt.Println("== Table 4: x86 Conditional Branch Instruction Encoding Mapping ==")
		fmt.Println(faultsec.RenderTable4())
	}

	var oldStats []*faultsec.Stats
	needOld := *all || *tableN == 1 || *tableN == 3 || *tableN == 5
	if needOld {
		start := time.Now()
		var table string
		table, oldStats, err = study.Table1(ctx, opts)
		if err != nil {
			return err
		}
		if *all || *tableN == 1 {
			fmt.Printf("== Table 1: FTP and SSH Result Distributions (stock x86, %.1fs) ==\n",
				time.Since(start).Seconds())
			fmt.Println(table)
		}
	}
	if *all || *tableN == 3 {
		fmt.Println("== Table 3: Break-ins and Fail Silence Violations by Location ==")
		fmt.Println(study.Table3(oldStats))
	}
	if *jsonOut != "" && oldStats != nil {
		data, err := faultsec.MarshalStats(oldStats)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "campaign: wrote %s\n", *jsonOut)
	}
	if *all || *tableN == 5 {
		start := time.Now()
		table, _, err := study.Table5(ctx, oldStats, opts)
		if err != nil {
			return err
		}
		fmt.Printf("== Table 5: FTP and SSH Results from New Encoding (%.1fs) ==\n",
			time.Since(start).Seconds())
		fmt.Println(table)
	}
	if *all || *figureN == 4 {
		stats, err := study.Campaign(ctx, study.FTPD, "Client1", faultsec.SchemeX86, opts)
		if err != nil {
			return err
		}
		h := faultsec.NewHistogram(stats.CrashLatencies)
		fmt.Println("== Figure 4: Number of Instructions between Error and Crash (FTP Client1) ==")
		fmt.Println(faultsec.RenderFigure4(h))
		w := stats.Window
		fmt.Printf("transient-window activity: %d crashes, %d beyond 100 instructions,\n", w.Crashes, w.LongLatency)
		fmt.Printf("%d sent network traffic inside the window (%d of those long-latency)\n\n",
			w.WroteInWindow, w.LongAndWrote)
	}
	if *randomN > 0 || *all {
		n := *randomN
		if n == 0 {
			n = 12000
		}
		start := time.Now()
		stats, err := study.RandomTestbed(ctx, n, *seed, opts)
		if err != nil {
			return err
		}
		brk := stats.Counts[faultsec.OutcomeBRK]
		fmt.Printf("== §7 random testbed: %d random single-bit errors, %d break-ins", n, brk)
		if brk > 0 {
			fmt.Printf(" (1 in %d)", n/brk)
		}
		fmt.Printf(" [%.1fs] ==\n\n", time.Since(start).Seconds())
	}
	if *persistent || *all {
		res, err := study.PersistentWindow(ctx, study.FTPD, 5, opts)
		if err != nil {
			return err
		}
		fmt.Println("== §5.4 permanent window of vulnerability (ftpd, Client1) ==")
		fmt.Printf("corruption: %s at %#x, byte %d bit %d (%#02x -> %#02x)\n",
			res.Experiment.Target.Func,
			res.Experiment.Target.Addr, res.Experiment.ByteIdx, res.Experiment.Bit,
			res.Experiment.Target.Raw[res.Experiment.ByteIdx],
			res.Experiment.CorruptedBytes()[res.Experiment.ByteIdx])
		for i, g := range res.GrantedPerConnection {
			fmt.Printf("connection %d: unauthorized login granted=%v\n", i+1, g)
		}
		fmt.Printf("after page reload: granted=%v (window closed)\n\n", res.GrantedAfterReload)
	}
	if *watchdog || *all {
		res, err := study.WatchdogAblation(ctx, study.FTPD, opts)
		if err != nil {
			return err
		}
		fmt.Println("== ablation: control-flow watchdog (related-work countermeasure) ==")
		fmt.Printf("detected %d of %d activated errors (%.0f%%)\n",
			res.Watched.WatchdogDetections, res.Watched.Activated(), 100*res.DetectionRate())
		fmt.Printf("break-ins: %d without watchdog -> %d with watchdog\n",
			res.Baseline.Counts[faultsec.OutcomeBRK], res.Watched.Counts[faultsec.OutcomeBRK])
		fmt.Println("(valid-but-wrong branches defeat signature checking; hence the encoding fix)")
		fmt.Println()
	}
	if *loadImpact || *all {
		res, err := study.LoadImpact(ctx, study.FTPD, opts)
		if err != nil {
			return err
		}
		fmt.Println("== §5.4 impact of load diversity on latent-error manifestation (ftpd) ==")
		for i := range res.MixSizes {
			fmt.Printf("client mix size %d: P(activated)=%.3f P(manifested)=%.3f\n",
				res.MixSizes[i], res.ActivatedProb[i], res.ManifestProb[i])
		}
		fmt.Println()
	}
	if *models || *all {
		start := time.Now()
		matrix, _, err := study.FaultModelMatrix(ctx, nil, opts)
		if err != nil {
			return err
		}
		fmt.Printf("== fault-model matrix: BRK/SD/FSV per (model x target x location) (%.1fs) ==\n",
			time.Since(start).Seconds())
		fmt.Println(matrix)
	}
	if *schemes || *all {
		start := time.Now()
		matrix, _, err := study.SchemeMatrix(ctx, nil, nil, opts)
		if err != nil {
			return err
		}
		fmt.Printf("== hardening-scheme matrix: BRK/SD/FSV reduction per (scheme x model x target) (%.1fs) ==\n",
			time.Since(start).Seconds())
		fmt.Println(matrix)
	}
	if !*all && *tableN == 0 && *figureN == 0 && *randomN == 0 && !*persistent && !*loadImpact && !*watchdog && !*models && !*schemes {
		flag.Usage()
	}
	return nil
}
