// Command inject runs a single error-injection experiment with full
// detail: the targeted instruction, the corrupted bytes, the session
// transcript, and the classified outcome. Useful for reproducing the
// paper's Figures 1-2 by hand.
//
// Usage:
//
//	inject -app ftpd -scenario Client1 -func pass -index 0 -byte 0 -bit 0
//	inject -app ftpd -scenario Client1 -list          # list branch targets
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"faultsec/internal/disasm"
	"faultsec/internal/encoding"
	"faultsec/internal/inject"
	"faultsec/internal/kernel"
	"faultsec/internal/target"
	"faultsec/internal/vm"
	"faultsec/internal/x86"

	// Register the built-in target applications.
	_ "faultsec/internal/ftpd"
	_ "faultsec/internal/httpd"
	_ "faultsec/internal/sshd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inject:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appName  = flag.String("app", "ftpd", "target application: "+strings.Join(target.Names(), ", "))
		scenario = flag.String("scenario", "Client1", "client access pattern")
		funcName = flag.String("func", "", "restrict to this auth function")
		index    = flag.Int("index", 0, "branch-instruction index within the target set")
		byteIdx  = flag.Int("byte", 0, "byte within the instruction")
		bit      = flag.Int("bit", 0, "bit within the byte")
		parity   = flag.Bool("parity", false, "use the new (parity) encoding")
		list     = flag.Bool("list", false, "list injection targets and exit")
		trace    = flag.Int("trace", 0, "print up to N instructions executed after activation")
	)
	flag.Parse()

	app, err := target.Build(*appName)
	if err != nil {
		return err
	}

	targets, err := inject.Targets(app)
	if err != nil {
		return err
	}
	if *funcName != "" {
		var filtered []inject.Target
		for _, t := range targets {
			if t.Func == *funcName {
				filtered = append(filtered, t)
			}
		}
		targets = filtered
	}
	if *list {
		for i, t := range targets {
			fmt.Printf("%3d  %-18s %#08x  % -24x %s\n", i, t.Func, t.Addr, t.Raw,
				disasm.Format(&t.Inst, t.Addr))
		}
		return nil
	}
	if *index < 0 || *index >= len(targets) {
		return fmt.Errorf("index %d out of range (0..%d)", *index, len(targets)-1)
	}
	tgt := targets[*index]

	sc, ok := app.Scenario(*scenario)
	if !ok {
		return fmt.Errorf("app %s has no scenario %q", app.Name, *scenario)
	}
	scheme := encoding.SchemeX86
	if *parity {
		scheme = encoding.SchemeParity
	}
	ex := inject.Experiment{Target: tgt, ByteIdx: *byteIdx, Bit: *bit, Scheme: scheme}

	fmt.Printf("target:    %s at %#x: %s  (bytes % x)\n", tgt.Func, tgt.Addr,
		disasm.Format(&tgt.Inst, tgt.Addr), tgt.Raw)
	corrupted := ex.CorruptedBytes()
	fmt.Printf("corrupted: % x", corrupted)
	if in, derr := x86.Decode(corrupted); derr == nil {
		fmt.Printf("  (%s)", disasm.Format(&in, tgt.Addr))
	} else {
		fmt.Printf("  (illegal instruction)")
	}
	fmt.Println()

	golden, err := inject.GoldenRun(app, sc, 0)
	if err != nil {
		return err
	}
	res, err := inject.RunOne(app, sc, golden, ex, 0)
	if err != nil {
		return err
	}
	fmt.Printf("scenario:  %s/%s (should grant: %v)\n", app.Name, sc.Name, sc.ShouldGrant)
	fmt.Printf("outcome:   %s  location=%s activated=%v granted=%v",
		res.Outcome, res.Location, res.Activated, res.Granted)
	if res.Crashed {
		fmt.Printf(" crash=%s latency=%d instructions", res.FaultKind, res.CrashLatency)
	}
	fmt.Println()

	// Re-run once more verbosely to show the transcript.
	fmt.Println("\ntranscript:")
	transcript, runErr := verboseRun(app, sc, ex)
	fmt.Print(transcript)
	fmt.Printf("termination: %v\n", runErr)

	if *trace > 0 {
		tr, terr := inject.TraceRun(app, sc, ex, 0, *trace)
		if terr != nil {
			return terr
		}
		fmt.Println("\nexecution after activation:")
		fmt.Print(tr.String())
	}
	return nil
}

func verboseRun(app *target.App, sc target.Scenario, ex inject.Experiment) (string, error) {
	client := sc.New()
	k := kernel.New(client)
	ld, err := app.Image.Load(k, nil)
	if err != nil {
		return "", err
	}
	m := ld.Machine
	m.SetBreakpoint(ex.Target.Addr)
	runErr := m.Run()
	var bp *vm.BreakpointHit
	if errors.As(runErr, &bp) {
		if err := m.Mem.Poke(ex.Target.Addr, ex.CorruptedBytes()); err != nil {
			return "", err
		}
		m.ClearBreakpoint(ex.Target.Addr)
		runErr = m.Run()
	}
	return k.Transcript.String(), runErr
}
