// Benchmarks that regenerate every table and figure of the paper. Each
// benchmark prints (via b.Log / ReportMetric) the headline numbers of the
// artifact it reproduces; run with
//
//	go test -bench=. -benchmem
//
// The campaign benchmarks execute the full selective-exhaustive injection
// sweep per iteration, so a single iteration takes seconds — expect b.N=1.
package faultsec_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"faultsec"
	"faultsec/internal/cc"
	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/ftpd"
	"faultsec/internal/inject"
	"faultsec/internal/rt"
	"faultsec/internal/sshd"
)

// studyOnce shares the built applications across benchmarks (the build —
// MiniC compile, assemble, link — is itself benchmarked separately).
var studyOnce = sync.OnceValues(faultsec.NewStudy)

func study(tb testing.TB) *faultsec.Study {
	tb.Helper()
	s, err := studyOnce()
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// BenchmarkTable1FTP regenerates the four FTP columns of Table 1 (outcome
// distribution under the stock encoding).
func BenchmarkTable1FTP(b *testing.B) {
	s := study(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		var stats []*faultsec.Stats
		for _, sc := range s.FTPD.Scenarios {
			st, err := s.Campaign(ctx, s.FTPD, sc.Name, faultsec.SchemeX86, faultsec.Options{})
			if err != nil {
				b.Fatal(err)
			}
			stats = append(stats, st)
		}
		if i == 0 {
			b.Log("\n" + faultsec.RenderTable1(stats))
		}
	}
}

// BenchmarkTable1SSH regenerates the two SSH columns of Table 1.
func BenchmarkTable1SSH(b *testing.B) {
	s := study(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		var stats []*faultsec.Stats
		for _, sc := range s.SSHD.Scenarios {
			st, err := s.Campaign(ctx, s.SSHD, sc.Name, faultsec.SchemeX86, faultsec.Options{})
			if err != nil {
				b.Fatal(err)
			}
			stats = append(stats, st)
		}
		if i == 0 {
			b.Log("\n" + faultsec.RenderTable1(stats))
		}
	}
}

// BenchmarkTable3Locations regenerates Table 3 (BRK+FSV by error location)
// for the two attack scenarios.
func BenchmarkTable3Locations(b *testing.B) {
	s := study(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		var stats []*faultsec.Stats
		for _, app := range []*faultsec.App{s.FTPD, s.SSHD} {
			st, err := s.Campaign(ctx, app, "Client1", faultsec.SchemeX86, faultsec.Options{})
			if err != nil {
				b.Fatal(err)
			}
			stats = append(stats, st)
		}
		if i == 0 {
			b.Log("\n" + faultsec.RenderTable3(stats))
		}
	}
}

// BenchmarkTable4Derivation regenerates Table 4 (the re-encoding map) from
// the odd-parity construction.
func BenchmarkTable4Derivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = faultsec.RenderTable4()
	}
}

// BenchmarkTable5NewEncoding regenerates Table 5: the six campaigns under
// the parity encoding plus the FSV/BRK reduction rows.
func BenchmarkTable5NewEncoding(b *testing.B) {
	s := study(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		old, err := s.AllCampaigns(ctx, faultsec.SchemeX86, faultsec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		table, _, err := s.Table5(ctx, old, faultsec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table)
		}
	}
}

// BenchmarkFigure4Histogram regenerates the crash-latency histogram for
// FTP Client1 and reports its headline statistics.
func BenchmarkFigure4Histogram(b *testing.B) {
	s := study(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		h, err := s.Figure4(ctx, faultsec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + faultsec.RenderFigure4(h))
			b.ReportMetric(h.PctWithin100(), "%within100")
			b.ReportMetric(float64(h.Max), "max-latency")
		}
	}
}

// BenchmarkRandomTestbed reproduces the §7 experiment: random single-bit
// errors over the whole ftpd text under attack load; the paper reports
// roughly 1 security violation per 3,000 errors.
func BenchmarkRandomTestbed(b *testing.B) {
	s := study(b)
	ctx := context.Background()
	const n = 3000
	for i := 0; i < b.N; i++ {
		stats, err := s.RandomTestbed(ctx, n, 2001+int64(i), faultsec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			brk := stats.Counts[faultsec.OutcomeBRK]
			b.ReportMetric(float64(brk), "break-ins/3000")
		}
	}
}

// BenchmarkPersistentWindow reproduces the §5.4 permanent-window
// demonstration (find a break-in bit, verify it persists across
// connections, verify reload closes it).
func BenchmarkPersistentWindow(b *testing.B) {
	s := study(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := s.PersistentWindow(ctx, s.FTPD, 3, faultsec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.GrantedAfterReload {
			b.Fatal("window did not close after reload")
		}
	}
}

// BenchmarkLoadImpact reproduces the §5.4 load-diversity experiment.
func BenchmarkLoadImpact(b *testing.B) {
	s := study(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := s.LoadImpact(ctx, s.FTPD, faultsec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.ManifestProb[0], "P(manifest|mix1)")
			b.ReportMetric(res.ManifestProb[len(res.ManifestProb)-1], "P(manifest|mix4)")
		}
	}
}

// BenchmarkAblationBuildImages measures the full toolchain (MiniC compile,
// assemble with branch relaxation, link) for both servers, bypassing the
// build cache.
func BenchmarkAblationBuildImages(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rt.BuildImage(ftpd.Source()); err != nil {
			b.Fatal(err)
		}
		if _, err := rt.BuildImage(sshd.Source()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGoldenRunFTP measures one fault-free Client1 session —
// the per-run floor cost of every campaign experiment.
func BenchmarkAblationGoldenRunFTP(b *testing.B) {
	s := study(b)
	sc, ok := s.FTPD.Scenario("Client1")
	if !ok {
		b.Fatal("no Client1")
	}
	b.ResetTimer()
	var steps uint64
	for i := 0; i < b.N; i++ {
		g, err := inject.GoldenRun(s.FTPD, sc, 0)
		if err != nil {
			b.Fatal(err)
		}
		steps = g.Steps
	}
	b.ReportMetric(float64(steps), "instructions/session")
}

// BenchmarkAblationCodegenStyle compares the two boolean-materialization
// codegen styles (branch-based vs setcc-based) on branch density and
// attack-campaign outcome — the compiler-level design choice DESIGN.md
// calls out: branchier code exposes more single-bit reversal sites.
func BenchmarkAblationCodegenStyle(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		for _, variant := range []struct {
			name string
			opts cc.Options
		}{
			{"branchy", cc.Options{}},
			{"setcc", cc.Options{SetccBooleans: true}},
		} {
			app, err := ftpd.BuildWithCodegen(variant.opts)
			if err != nil {
				b.Fatal(err)
			}
			targets, err := inject.Targets(app)
			if err != nil {
				b.Fatal(err)
			}
			sc, _ := app.Scenario("Client1")
			stats, err := inject.Run(ctx, inject.Config{
				App: app, Scenario: sc, Scheme: encoding.SchemeX86,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("%s: %d branch targets, %d bits, BRK=%d of %d activated",
					variant.name, len(targets), inject.TotalBits(targets),
					stats.Counts[classify.OutcomeBRK], stats.Activated())
			}
		}
		// The servers' auth code is if-dominated, so the two styles tie
		// there; on value-context-boolean code the difference is real:
		const valueHeavy = `
int valid(int a, int b, int c) {
	int in_range = a >= 0;
	int below = a < b;
	int flags = in_range + below * 2 + (b == c) * 4 + (a != c) * 8;
	return flags;
}
`
		for _, variant := range []struct {
			name string
			opts cc.Options
		}{
			{"branchy", cc.Options{}},
			{"setcc", cc.Options{SetccBooleans: true}},
		} {
			out, err := cc.CompileWithOptions(valueHeavy, variant.opts)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("value-heavy %s: %d conditional branches, %d setcc",
					variant.name, countJcc(out), countSetcc(out))
			}
		}
	}
}

func countJcc(asmText string) int {
	n := 0
	for _, line := range strings.Split(asmText, "\n") {
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		if _, ok := map[string]bool{
			"je": true, "jne": true, "jl": true, "jle": true, "jg": true,
			"jge": true, "jb": true, "jbe": true, "ja": true, "jae": true,
		}[f[0]]; ok {
			n++
		}
	}
	return n
}

func countSetcc(asmText string) int {
	n := 0
	for _, line := range strings.Split(asmText, "\n") {
		f := strings.Fields(line)
		if len(f) > 0 && strings.HasPrefix(f[0], "set") {
			n++
		}
	}
	return n
}

// BenchmarkAblationWatchdog measures the control-flow-watchdog comparison:
// detection coverage on the attack campaign and its (non-)effect on
// break-ins.
func BenchmarkAblationWatchdog(b *testing.B) {
	s := study(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := s.WatchdogAblation(ctx, s.FTPD, faultsec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*res.DetectionRate(), "%detected")
			b.ReportMetric(float64(res.Watched.Counts[faultsec.OutcomeBRK]), "BRK-with-watchdog")
		}
	}
}

// BenchmarkRandomTestbedParity measures the §7 field rate under the new
// encoding: how many of the same random single-bit errors still break in
// when the hypothetical re-encoded processor runs the server.
func BenchmarkRandomTestbedParity(b *testing.B) {
	s := study(b)
	ctx := context.Background()
	const n = 3000
	for i := 0; i < b.N; i++ {
		stats, err := s.RandomTestbedScheme(ctx, n, 2001+int64(i), faultsec.SchemeParity, faultsec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(stats.Counts[faultsec.OutcomeBRK]), "break-ins/3000")
		}
	}
}
