package vm

import "faultsec/internal/x86"

// Stack micro-op handlers.

func uPushReg(m *Machine, u *x86.Uop) error {
	if f := m.push(m.Regs[u.Reg]); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uPushImm(m *Machine, u *x86.Uop) error {
	if f := m.push(uint32(u.Imm)); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uPushRM(m *Machine, u *x86.Uop) error {
	v, f := m.rmRead(&u.RM, 4)
	if f != nil {
		return m.uopMemFault(f)
	}
	if f := m.push(v); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uPopReg(m *Machine, u *x86.Uop) error {
	v, f := m.pop()
	if f != nil {
		return m.uopMemFault(f)
	}
	m.Regs[u.Reg] = v
	return nil
}

func uPopRM(m *Machine, u *x86.Uop) error {
	v, f := m.pop()
	if f != nil {
		return m.uopMemFault(f)
	}
	if f := m.rmWrite(&u.RM, 4, v); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uPopDiscard(m *Machine, u *x86.Uop) error {
	// pop segment register: value discarded
	_, f := m.pop()
	if f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uPushA(m *Machine, u *x86.Uop) error {
	sp := m.Regs[x86.ESP]
	for _, r := range [...]uint8{x86.EAX, x86.ECX, x86.EDX, x86.EBX} {
		if f := m.push(m.Regs[r]); f != nil {
			return m.uopMemFault(f)
		}
	}
	if f := m.push(sp); f != nil {
		return m.uopMemFault(f)
	}
	for _, r := range [...]uint8{x86.EBP, x86.ESI, x86.EDI} {
		if f := m.push(m.Regs[r]); f != nil {
			return m.uopMemFault(f)
		}
	}
	return nil
}

func uPopA(m *Machine, u *x86.Uop) error {
	order := [...]uint8{x86.EDI, x86.ESI, x86.EBP, x86.ESP, x86.EBX, x86.EDX, x86.ECX, x86.EAX}
	for _, r := range order {
		v, f := m.pop()
		if f != nil {
			return m.uopMemFault(f)
		}
		if r != x86.ESP { // popa discards the saved ESP
			m.Regs[r] = v
		}
	}
	return nil
}

func uPushF(m *Machine, u *x86.Uop) error {
	if f := m.push(m.Flags | 0x2); f != nil { // bit 1 always set on x86
		return m.uopMemFault(f)
	}
	return nil
}

func uPopF(m *Machine, u *x86.Uop) error {
	v, f := m.pop()
	if f != nil {
		return m.uopMemFault(f)
	}
	const writable = x86.FlagCF | x86.FlagPF | x86.FlagAF | x86.FlagZF |
		x86.FlagSF | x86.FlagDF | x86.FlagOF
	m.Flags = v & writable
	return nil
}

func uLeave(m *Machine, u *x86.Uop) error {
	m.Regs[x86.ESP] = m.Regs[x86.EBP]
	v, f := m.pop()
	if f != nil {
		return m.uopMemFault(f)
	}
	m.Regs[x86.EBP] = v
	return nil
}

func uEnter(m *Machine, u *x86.Uop) error {
	if f := m.push(m.Regs[x86.EBP]); f != nil {
		return m.uopMemFault(f)
	}
	m.Regs[x86.EBP] = m.Regs[x86.ESP]
	m.Regs[x86.ESP] -= uint32(u.Imm)
	return nil
}
