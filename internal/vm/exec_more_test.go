package vm_test

import (
	"errors"
	"testing"
	"testing/quick"

	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

func TestCmpsWithRepe(t *testing.T) {
	// Compare two equal 8-byte blocks with repe cmpsb: ZF set at the end,
	// ECX exhausted.
	code := []byte{
		0xBE, 0x00, 0x80, 0, 0, // mov esi, 0x8000
		0xBF, 0x20, 0x80, 0, 0, // mov edi, 0x8020
		0xB9, 8, 0, 0, 0, // mov ecx, 8
		0xF3, 0xA6, // repe cmpsb
	}
	m := newMachine(t, code)
	for i := 0; i < 8; i++ {
		if f := m.Mem.Write8(0x8000+uint32(i), uint32('a'+i)); f != nil {
			t.Fatal(f)
		}
		if f := m.Mem.Write8(0x8020+uint32(i), uint32('a'+i)); f != nil {
			t.Fatal(f)
		}
	}
	for i := 0; i < 4; i++ {
		step(t, m)
	}
	if !m.GetFlag(x86.FlagZF) {
		t.Error("equal blocks: ZF clear")
	}
	if m.Regs[x86.ECX] != 0 {
		t.Errorf("ecx = %d", m.Regs[x86.ECX])
	}

	// Differ at index 3: repe stops there.
	m2 := newMachine(t, code)
	for i := 0; i < 8; i++ {
		_ = m2.Mem.Write8(0x8000+uint32(i), uint32('a'+i))
		_ = m2.Mem.Write8(0x8020+uint32(i), uint32('a'+i))
	}
	_ = m2.Mem.Write8(0x8023, 'Z')
	for i := 0; i < 4; i++ {
		step(t, m2)
	}
	if m2.GetFlag(x86.FlagZF) {
		t.Error("differing blocks: ZF set")
	}
	if m2.Regs[x86.ECX] != 4 { // stopped after consuming index 3
		t.Errorf("ecx = %d, want 4", m2.Regs[x86.ECX])
	}
}

func TestRepneScasFindsByte(t *testing.T) {
	// Classic strlen idiom: repne scasb.
	code := []byte{
		0xBF, 0x00, 0x80, 0, 0, // mov edi, 0x8000
		0x31, 0xC0, // xor eax, eax
		0xB9, 0xFF, 0, 0, 0, // mov ecx, 255
		0xF2, 0xAE, // repne scasb
	}
	m := newMachine(t, code)
	msg := "hello"
	for i := 0; i < len(msg); i++ {
		_ = m.Mem.Write8(0x8000+uint32(i), uint32(msg[i]))
	}
	for i := 0; i < 4; i++ {
		step(t, m)
	}
	// 255 - ecx - 1 = strlen
	if got := 255 - m.Regs[x86.ECX] - 1; got != 5 {
		t.Errorf("strlen via scasb = %d", got)
	}
}

func TestLodsAndDirectionFlag(t *testing.T) {
	code := []byte{
		0xBE, 0x04, 0x80, 0, 0, // mov esi, 0x8004
		0xFD, // std
		0xAD, // lodsd (backwards)
		0xFC, // cld
	}
	m := newMachine(t, code)
	if f := m.Mem.Write32(0x8004, 0xCAFEBABE); f != nil {
		t.Fatal(f)
	}
	for i := 0; i < 4; i++ {
		step(t, m)
	}
	if m.Regs[x86.EAX] != 0xCAFEBABE {
		t.Errorf("eax = %#x", m.Regs[x86.EAX])
	}
	if m.Regs[x86.ESI] != 0x8000 {
		t.Errorf("esi = %#x, want 0x8000 (DF decrement)", m.Regs[x86.ESI])
	}
}

func TestBtFamilyRegisterForm(t *testing.T) {
	code := []byte{
		0xB8, 0b1010, 0, 0, 0, // mov eax, 0b1010
		0xB9, 1, 0, 0, 0, // mov ecx, 1
		0x0F, 0xA3, 0xC8, // bt eax, ecx  -> CF = bit1 = 1
		0x0F, 0xAB, 0xC8, // bts eax, ecx (no change, already set)
		0xB9, 2, 0, 0, 0, // mov ecx, 2
		0x0F, 0xB3, 0xC8, // btr eax, ecx (bit2 was 0; stays 0)
		0x0F, 0xBB, 0xC8, // btc eax, ecx (toggle bit2 on)
	}
	m := newMachine(t, code)
	step(t, m)
	step(t, m)
	step(t, m)
	if !m.GetFlag(x86.FlagCF) {
		t.Error("bt: CF clear for set bit")
	}
	step(t, m)
	step(t, m)
	step(t, m)
	if m.GetFlag(x86.FlagCF) {
		t.Error("btr: CF set for clear bit")
	}
	step(t, m)
	if m.Regs[x86.EAX] != 0b1110 {
		t.Errorf("eax = %#b", m.Regs[x86.EAX])
	}
}

func TestBtMemoryFormBitString(t *testing.T) {
	// bt [0x8000], ecx with ecx=37: tests bit 5 of the dword at 0x8004.
	code := []byte{
		0xB9, 37, 0, 0, 0, // mov ecx, 37
		0x0F, 0xA3, 0x0D, 0x00, 0x80, 0x00, 0x00, // bt [0x8000], ecx
	}
	m := newMachine(t, code)
	if f := m.Mem.Write32(0x8004, 1<<5); f != nil {
		t.Fatal(f)
	}
	step(t, m)
	step(t, m)
	if !m.GetFlag(x86.FlagCF) {
		t.Error("bt memory bit-string form failed")
	}
}

func TestCmpxchg(t *testing.T) {
	// Success case: eax == [mem], so [mem] <- ecx.
	code := []byte{
		0xB8, 5, 0, 0, 0, // mov eax, 5
		0xB9, 9, 0, 0, 0, // mov ecx, 9
		0x0F, 0xB1, 0x0D, 0x00, 0x80, 0x00, 0x00, // cmpxchg [0x8000], ecx
	}
	m := newMachine(t, code)
	if f := m.Mem.Write32(0x8000, 5); f != nil {
		t.Fatal(f)
	}
	for i := 0; i < 3; i++ {
		step(t, m)
	}
	v, _ := m.Mem.Read32(0x8000)
	if v != 9 || !m.GetFlag(x86.FlagZF) {
		t.Errorf("cmpxchg success: mem=%d ZF=%v", v, m.GetFlag(x86.FlagZF))
	}
	// Failure case: eax != [mem], so eax <- [mem].
	m2 := newMachine(t, code)
	if f := m2.Mem.Write32(0x8000, 7); f != nil {
		t.Fatal(f)
	}
	for i := 0; i < 3; i++ {
		step(t, m2)
	}
	if m2.Regs[x86.EAX] != 7 || m2.GetFlag(x86.FlagZF) {
		t.Errorf("cmpxchg failure: eax=%d ZF=%v", m2.Regs[x86.EAX], m2.GetFlag(x86.FlagZF))
	}
}

func TestXadd(t *testing.T) {
	code := []byte{
		0xB8, 3, 0, 0, 0, // mov eax, 3
		0xB9, 4, 0, 0, 0, // mov ecx, 4
		0x0F, 0xC1, 0xC8, // xadd eax, ecx
	}
	m := runALU(t, code, 3)
	if m.Regs[x86.EAX] != 7 || m.Regs[x86.ECX] != 3 {
		t.Errorf("xadd: eax=%d ecx=%d, want 7/3", m.Regs[x86.EAX], m.Regs[x86.ECX])
	}
}

func TestShldShrd(t *testing.T) {
	// shld r/m, reg, imm: 0F A4 /r ib — eax is r/m, ecx provides the
	// incoming bits.
	code := []byte{
		0xB8, 0x01, 0x00, 0x00, 0x00, // mov eax, 1
		0xB9, 0x00, 0x00, 0x00, 0x80, // mov ecx, 0x80000000
		0x0F, 0xA4, 0xC8, 1, // shld eax, ecx, 1
	}
	m := runALU(t, code, 3)
	if m.Regs[x86.EAX] != 0x3 { // 1<<1 | top bit of ecx
		t.Errorf("shld: eax = %#x, want 3", m.Regs[x86.EAX])
	}
	code = []byte{
		0xB8, 0x00, 0x00, 0x00, 0x80, // mov eax, 0x80000000
		0xB9, 0x01, 0x00, 0x00, 0x00, // mov ecx, 1
		0x0F, 0xAC, 0xC8, 1, // shrd eax, ecx, 1
	}
	m = runALU(t, code, 3)
	if m.Regs[x86.EAX] != 0xC0000000 {
		t.Errorf("shrd: eax = %#x, want 0xC0000000", m.Regs[x86.EAX])
	}
}

func TestPushfPopfRoundTrip(t *testing.T) {
	code := []byte{
		0xF9, // stc
		0x9C, // pushf
		0xF8, // clc
		0x9D, // popf
	}
	m := runALU(t, code, 4)
	if !m.GetFlag(x86.FlagCF) {
		t.Error("popf did not restore CF")
	}
}

func TestMoffsForms(t *testing.T) {
	code := []byte{
		0xB8, 0x44, 0x33, 0x22, 0x11, // mov eax, 0x11223344
		0xA3, 0x00, 0x80, 0x00, 0x00, // mov [0x8000], eax
		0x31, 0xC0, // xor eax, eax
		0xA1, 0x00, 0x80, 0x00, 0x00, // mov eax, [0x8000]
	}
	m := runALU(t, code, 4)
	if m.Regs[x86.EAX] != 0x11223344 {
		t.Errorf("moffs round trip: %#x", m.Regs[x86.EAX])
	}
}

func TestXlat(t *testing.T) {
	code := []byte{
		0xBB, 0x00, 0x80, 0, 0, // mov ebx, 0x8000
		0xB0, 3, // mov al, 3
		0xD7, // xlat
	}
	m := newMachine(t, code)
	for i := 0; i < 8; i++ {
		_ = m.Mem.Write8(0x8000+uint32(i), uint32(0x40+i))
	}
	for i := 0; i < 3; i++ {
		step(t, m)
	}
	if m.Regs[x86.EAX]&0xFF != 0x43 {
		t.Errorf("xlat: al = %#x", m.Regs[x86.EAX]&0xFF)
	}
}

func TestJecxzAndLoop(t *testing.T) {
	// mov ecx, 3 ; L: dec-free loop body ; loop L ; -> loops 3 times
	code := []byte{
		0xB9, 3, 0, 0, 0, // mov ecx, 3
		0x40,       // L: inc eax
		0xE2, 0xFD, // loop L
		0xE3, 0x01, // jecxz +1 (taken: ecx==0)
		0x48, // dec eax (skipped)
		0x90, // nop
	}
	m := newMachine(t, code)
	for m.EIP != 0x1000+11 {
		step(t, m)
		if m.Steps > 50 {
			t.Fatal("runaway")
		}
	}
	if m.Regs[x86.EAX] != 3 {
		t.Errorf("loop count: eax = %d", m.Regs[x86.EAX])
	}
}

// Property: shl/shr by k equals Go's shifts for counts 0..31.
func TestShiftsMatchGo(t *testing.T) {
	f := func(v uint32, count uint8) bool {
		c := uint32(count) & 0x1F
		// mov eax, v ; mov ecx, c ; shl eax, cl
		shl := []byte{0xB8, 0, 0, 0, 0, 0xB9, 0, 0, 0, 0, 0xD3, 0xE0}
		putLE(shl[1:], v)
		putLE(shl[6:], c)
		m := runALU(t, shl, 3)
		want := v
		if c != 0 {
			want = v << c
		}
		if m.Regs[x86.EAX] != want {
			return false
		}
		shr := []byte{0xB8, 0, 0, 0, 0, 0xB9, 0, 0, 0, 0, 0xD3, 0xE8}
		putLE(shr[1:], v)
		putLE(shr[6:], c)
		m = runALU(t, shr, 3)
		want = v
		if c != 0 {
			want = v >> c
		}
		if m.Regs[x86.EAX] != want {
			return false
		}
		sar := []byte{0xB8, 0, 0, 0, 0, 0xB9, 0, 0, 0, 0, 0xD3, 0xF8}
		putLE(sar[1:], v)
		putLE(sar[6:], c)
		m = runALU(t, sar, 3)
		want = v
		if c != 0 {
			want = uint32(int32(v) >> c)
		}
		return m.Regs[x86.EAX] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestCFEWatchdogCatchesWildJump(t *testing.T) {
	// jmp into the middle of an instruction: off the known boundaries.
	code := []byte{
		0xEB, 0x01, // jmp +1 -> lands inside the next instruction
		0xB8, 0x90, 0x90, 0x90, 0x90, // mov eax, imm (byte 1 is a nop-like)
		0xC3,
	}
	m := newMachine(t, code)
	m.CFValid = map[uint32]struct{}{
		0x1000: {}, 0x1002: {}, 0x1007: {},
	}
	err := m.Run()
	var fault *vm.Fault
	if !errors.As(err, &fault) || fault.Kind != vm.FaultCFE {
		t.Errorf("run = %v, want CFE detection", err)
	}
	if fault.Addr != 0x1003 {
		t.Errorf("CFE at %#x, want 0x1003", fault.Addr)
	}
}

func TestCFEWatchdogAllowsValidPaths(t *testing.T) {
	code := []byte{
		0x31, 0xC0, // xor eax, eax
		0x74, 0x01, // je +1
		0x90,             // (skipped)
		0xB8, 1, 0, 0, 0, // mov eax, 1 (exit)
		0x31, 0xDB, // xor ebx, ebx
		0xCD, 0x80, // int 0x80
	}
	m := newMachine(t, code)
	m.CFValid = map[uint32]struct{}{
		0x1000: {}, 0x1002: {}, 0x1004: {}, 0x1005: {}, 0x100A: {}, 0x100C: {},
	}
	err := m.Run()
	var exit *vm.ExitStatus
	if !errors.As(err, &exit) {
		t.Errorf("watchdog broke a valid run: %v", err)
	}
}
