package vm

import (
	"errors"
	"testing"

	"faultsec/internal/x86"
)

// buildCounter assembles a tiny hand-encoded program:
//
//	mov ecx, 0          ; b9 00 00 00 00
//	loop: inc ecx       ; 41
//	cmp ecx, 10         ; 83 f9 0a
//	jne loop            ; 75 fa
//	mov [0x2000], ecx   ; 89 0d 00 20 00 00
//	int 0x80 exit       ; b8 01 00 00 00  (eax=1) / 31 db (ebx: xor) / cd 80
func buildCounter(t *testing.T) *Machine {
	t.Helper()
	code := []byte{
		0xb9, 0x00, 0x00, 0x00, 0x00,
		0x41,
		0x83, 0xf9, 0x0a,
		0x75, 0xfa,
		0x89, 0x0d, 0x00, 0x20, 0x00, 0x00,
		0xb8, 0x01, 0x00, 0x00, 0x00,
		0x31, 0xdb,
		0xcd, 0x80,
	}
	mem := NewMemory()
	if err := mem.Map(&Region{Name: "text", Base: 0x1000, Perm: PermRead | PermExec, Data: code}); err != nil {
		t.Fatal(err)
	}
	if err := mem.Map(&Region{Name: "data", Base: 0x2000, Perm: PermRead | PermWrite, Data: make([]byte, 64)}); err != nil {
		t.Fatal(err)
	}
	if err := mem.Map(&Region{Name: "stack", Base: 0x3000, Perm: PermRead | PermWrite, Data: make([]byte, 256)}); err != nil {
		t.Fatal(err)
	}
	m := New(mem, exitKernel{})
	m.EIP = 0x1000
	m.Regs[x86.ESP] = 0x3000 + 256
	return m
}

type exitKernel struct{}

func (exitKernel) Syscall(m *Machine) error {
	return &ExitStatus{Code: int(int32(m.Regs[x86.EBX]))}
}

func runToExit(t *testing.T, m *Machine) *ExitStatus {
	t.Helper()
	err := m.Run()
	var exit *ExitStatus
	if !errors.As(err, &exit) {
		t.Fatalf("run ended with %v, want exit", err)
	}
	return exit
}

// TestSnapshotRestoreResumesIdentically stops a run at a breakpoint,
// snapshots, lets the original run to completion, then replays the suffix
// from the snapshot twice and checks every observable matches.
func TestSnapshotRestoreResumesIdentically(t *testing.T) {
	m := buildCounter(t)
	bp := uint32(0x100b) // the mov [0x2000], ecx after the loop
	m.SetBreakpoint(bp)
	var hit *BreakpointHit
	if err := m.Run(); !errors.As(err, &hit) {
		t.Fatalf("run ended with %v, want breakpoint", err)
	}
	snap := m.Snapshot()
	if snap.EIP() != bp {
		t.Fatalf("snapshot EIP=%#x, want %#x", snap.EIP(), bp)
	}
	m.ClearBreakpoint(bp)
	runToExit(t, m)
	wantSteps := m.Steps
	data := m.Mem.FindByName("data")
	wantCounter := uint32(data.Data[0]) | uint32(data.Data[1])<<8

	for i := 0; i < 2; i++ {
		m2 := snap.NewMachine(exitKernel{})
		if m2.Steps != snap.Steps() {
			t.Fatalf("restored Steps=%d, want %d", m2.Steps, snap.Steps())
		}
		m2.ClearBreakpoint(bp)
		runToExit(t, m2)
		if m2.Steps != wantSteps {
			t.Errorf("replay %d: Steps=%d, want %d", i, m2.Steps, wantSteps)
		}
		d2 := m2.Mem.FindByName("data")
		got := uint32(d2.Data[0]) | uint32(d2.Data[1])<<8
		if got != wantCounter || got != 10 {
			t.Errorf("replay %d: counter=%d, want %d", i, got, wantCounter)
		}
	}
}

// TestSnapshotIsolation checks that machines restored from one snapshot do
// not share mutable memory: a poke in one replay must not leak into the
// next.
func TestSnapshotIsolation(t *testing.T) {
	m := buildCounter(t)
	m.SetBreakpoint(0x100b)
	var hit *BreakpointHit
	if err := m.Run(); !errors.As(err, &hit) {
		t.Fatalf("run ended with %v, want breakpoint", err)
	}
	snap := m.Snapshot()

	m2 := snap.NewMachine(exitKernel{})
	m2.ClearBreakpoint(0x100b)
	// Corrupt the store instruction into a self-fault (undefined byte).
	if err := m2.Mem.Poke(0x100b, []byte{0xF1}); err != nil {
		t.Fatal(err)
	}
	_ = m2.Run() // outcome irrelevant; only isolation matters

	m3 := snap.NewMachine(exitKernel{})
	m3.ClearBreakpoint(0x100b)
	b, err := m3.Mem.Peek(0x100b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x89 {
		t.Fatalf("poke leaked across restores: text byte %#x, want 0x89", b[0])
	}
	runToExit(t, m3)
}

// TestRestoreInPlace checks the allocation-free path: restoring into a
// machine that already has the snapshot's region layout rewinds it.
func TestRestoreInPlace(t *testing.T) {
	m := buildCounter(t)
	m.SetBreakpoint(0x100b)
	var hit *BreakpointHit
	if err := m.Run(); !errors.As(err, &hit) {
		t.Fatalf("run ended with %v, want breakpoint", err)
	}
	snap := m.Snapshot()

	worker := snap.NewMachine(exitKernel{})
	for i := 0; i < 3; i++ {
		if err := worker.Restore(snap); err != nil {
			t.Fatal(err)
		}
		worker.ClearBreakpoint(0x100b)
		if err := worker.Mem.Poke(0x100b, []byte{0xF1}); err != nil {
			t.Fatal(err)
		}
		var fault *Fault
		if err := worker.Run(); !errors.As(err, &fault) {
			t.Fatalf("iteration %d: corrupted run ended with %v, want fault", i, err)
		}
	}
	// A final clean restore must still complete normally.
	if err := worker.Restore(snap); err != nil {
		t.Fatal(err)
	}
	worker.ClearBreakpoint(0x100b)
	runToExit(t, worker)
}

// TestRestoreLayoutMismatch checks that restoring into a foreign address
// space is refused rather than silently corrupting state.
func TestRestoreLayoutMismatch(t *testing.T) {
	m := buildCounter(t)
	snap := m.Snapshot()

	other := New(NewMemory(), exitKernel{})
	if err := other.Mem.Map(&Region{Name: "blob", Base: 0x9000, Perm: PermRead, Data: make([]byte, 16)}); err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Fatal("restore into mismatched layout succeeded, want error")
	}
}
