package vm

import "faultsec/internal/x86"

// uopFn is a bound micro-op handler. By the time a handler runs, Step has
// already stashed the instruction address in m.pc and advanced m.EIP past
// the instruction (the legacy switch's `next`), so handlers only perform
// the operation and report faults against m.pc.
type uopFn func(*Machine, *x86.Uop) error

// uopTableSize pads the dispatch table to a power of two so Step can index
// it with a mask instead of a bounds check. The blank array below fails to
// compile if NumUopHandlers ever outgrows it.
const uopTableSize = 128

var _ [uopTableSize - x86.NumUopHandlers]struct{}

func init() {
	// Padding slots (and any future unregistered index) dispatch to #UD,
	// never through a nil entry.
	for i := range uopTable {
		if uopTable[i] == nil {
			uopTable[i] = uUD
		}
	}
}

// uopTable is the dense dispatch table indexed by Uop.H. Every index in
// [0, NumUopHandlers) is populated — UInvalid defensively aliases the #UD
// handler so a zero-valued (unbound) micro-op can never dispatch through a
// nil entry — and the completeness test asserts this stays true as ops are
// added.
var uopTable = [uopTableSize]uopFn{
	x86.UInvalid: uUD,

	x86.UAddRMReg:  uAddRMReg,
	x86.UAddRegRM:  uAddRegRM,
	x86.UAddRMImm:  uAddRMImm,
	x86.UOrRMReg:   uOrRMReg,
	x86.UOrRegRM:   uOrRegRM,
	x86.UOrRMImm:   uOrRMImm,
	x86.UAdcRMReg:  uAdcRMReg,
	x86.UAdcRegRM:  uAdcRegRM,
	x86.UAdcRMImm:  uAdcRMImm,
	x86.USbbRMReg:  uSbbRMReg,
	x86.USbbRegRM:  uSbbRegRM,
	x86.USbbRMImm:  uSbbRMImm,
	x86.UAndRMReg:  uAndRMReg,
	x86.UAndRegRM:  uAndRegRM,
	x86.UAndRMImm:  uAndRMImm,
	x86.USubRMReg:  uSubRMReg,
	x86.USubRegRM:  uSubRegRM,
	x86.USubRMImm:  uSubRMImm,
	x86.UXorRMReg:  uXorRMReg,
	x86.UXorRegRM:  uXorRegRM,
	x86.UXorRMImm:  uXorRMImm,
	x86.UCmpRMReg:  uCmpRMReg,
	x86.UCmpRegRM:  uCmpRegRM,
	x86.UCmpRMImm:  uCmpRMImm,
	x86.UTestRMReg: uTestRMReg,
	x86.UTestRegRM: uTestRegRM,
	x86.UTestRMImm: uTestRMImm,

	x86.UIncReg:     uIncReg,
	x86.UIncRM:      uIncRM,
	x86.UDecReg:     uDecReg,
	x86.UDecRM:      uDecRM,
	x86.UNot:        uNot,
	x86.UNeg:        uNeg,
	x86.UShiftImm:   uShiftImm,
	x86.UShiftCL:    uShiftCL,
	x86.UShldImm:    uShldImm,
	x86.UShldCL:     uShldCL,
	x86.UShrdImm:    uShrdImm,
	x86.UShrdCL:     uShrdCL,
	x86.UBitTestReg: uBitTestReg,
	x86.UBitTestImm: uBitTestImm,
	x86.UXadd:       uXadd,
	x86.UCmpxchg:    uCmpxchg,

	x86.UMovRMReg:       uMovRMReg,
	x86.UMovRegRM:       uMovRegRM,
	x86.UMovRMImm:       uMovRMImm,
	x86.UMovRegImm:      uMovRegImm,
	x86.UMovMoffsLoad:   uMovMoffsLoad,
	x86.UMovMoffsStore:  uMovMoffsStore,
	x86.UMovZX:          uMovZX,
	x86.UMovSX8:         uMovSX8,
	x86.UMovSX16:        uMovSX16,
	x86.ULea:            uLea,
	x86.UXchgAcc:        uXchgAcc,
	x86.UXchgRM:         uXchgRM,
	x86.UBswap:          uBswap,
	x86.USetcc:          uSetcc,
	x86.UCMov:           uCMov,
	x86.UMovFromSeg:     uMovFromSeg,
	x86.UMovToSeg:       uMovToSeg,

	x86.UPushReg:    uPushReg,
	x86.UPushImm:    uPushImm,
	x86.UPushRM:     uPushRM,
	x86.UPopReg:     uPopReg,
	x86.UPopRM:      uPopRM,
	x86.UPopDiscard: uPopDiscard,
	x86.UPushA:      uPushA,
	x86.UPopA:       uPopA,
	x86.UPushF:      uPushF,
	x86.UPopF:       uPopF,
	x86.ULeave:      uLeave,
	x86.UEnter:      uEnter,

	x86.UJcc:     uJcc,
	x86.UJmpRel:  uJmpRel,
	x86.UJmpRM:   uJmpRM,
	x86.UJCXZ:    uJCXZ,
	x86.ULoop:    uLoop,
	x86.ULoopE:   uLoopE,
	x86.ULoopNE:  uLoopNE,
	x86.UCallRel: uCallRel,
	x86.UCallRM:  uCallRM,
	x86.URet:     uRet,
	x86.UInt3:    uInt3,
	x86.UInto:    uInto,
	x86.USyscall: uSyscall,
	x86.UBadInt:  uBadInt,
	x86.UBound:   uBound,

	x86.UMul:     uMul,
	x86.UIMulRM:  uIMulRM,
	x86.UIMulReg: uIMulReg,
	x86.UIMulImm: uIMulImm,
	x86.UDiv:     uDiv,
	x86.UIDiv:    uIDiv,

	x86.UNop:        uNop,
	x86.UCbw:        uCbw,
	x86.UCwde:       uCwde,
	x86.UCwd:        uCwd,
	x86.UCdq:        uCdq,
	x86.UClc:        uClc,
	x86.UStc:        uStc,
	x86.UCmc:        uCmc,
	x86.UCld:        uCld,
	x86.UStd:        uStd,
	x86.USahf:       uSahf,
	x86.ULahf:       uLahf,
	x86.USalc:       uSalc,
	x86.UXlat:       uXlat,
	x86.UString:     uString,
	x86.URdtsc:      uRdtsc,
	x86.UCpuid:      uCpuid,
	x86.UPrivileged: uPrivileged,
	x86.UUD:         uUD,
}

// uopFault builds a fault at the current instruction (m.pc).
func (m *Machine) uopFault(k FaultKind, addr uint32) error {
	return &Fault{Kind: k, Addr: addr, PC: m.pc}
}

// uopMemFault stamps a memory-layer fault with the current instruction
// address.
func (m *Machine) uopMemFault(f *Fault) error {
	f.PC = m.pc
	return f
}
