package vm

import "fmt"

// FaultKind classifies a processor fault.
type FaultKind int

// Fault kinds, with the POSIX signal a Linux process would receive.
const (
	FaultUndefined  FaultKind = iota + 1 // #UD: illegal instruction (SIGILL)
	FaultMemory                          // bad data access (SIGSEGV)
	FaultFetch                           // bad instruction fetch (SIGSEGV)
	FaultDivide                          // #DE: divide error (SIGFPE)
	FaultPrivileged                      // #GP: privileged instruction (SIGSEGV)
	FaultBreak                           // int3/into/bound (SIGTRAP)
	FaultSyscall                         // unsupported software interrupt (SIGSEGV)
	// FaultCFE is raised by the optional control-flow watchdog (a
	// PECOS/BSSC-style checker; see the paper's related work) when EIP
	// leaves the program's known instruction boundaries. It is a
	// *detection*, modeled as a SIGKILL-style termination.
	FaultCFE
)

// Signal returns the name of the POSIX signal this fault delivers to a
// Linux process.
func (k FaultKind) Signal() string {
	switch k {
	case FaultUndefined:
		return "SIGILL"
	case FaultMemory, FaultFetch, FaultPrivileged, FaultSyscall:
		return "SIGSEGV"
	case FaultDivide:
		return "SIGFPE"
	case FaultBreak:
		return "SIGTRAP"
	case FaultCFE:
		return "CFE"
	}
	return "SIG?"
}

// String returns a short description of the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultUndefined:
		return "illegal instruction"
	case FaultMemory:
		return "segmentation violation"
	case FaultFetch:
		return "instruction fetch violation"
	case FaultDivide:
		return "divide error"
	case FaultPrivileged:
		return "privileged instruction"
	case FaultBreak:
		return "trap"
	case FaultSyscall:
		return "bad system call"
	case FaultCFE:
		return "control-flow error detected by watchdog"
	}
	return "unknown fault"
}

// Fault is a precise processor exception. It terminates the run: the study
// classifies it as a crash (the paper's "system detection", SD).
type Fault struct {
	Kind FaultKind
	Addr uint32 // faulting data/fetch address, if applicable
	PC   uint32 // EIP of the faulting instruction
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("%s (%s) at pc=%#x addr=%#x", f.Kind, f.Kind.Signal(), f.PC, f.Addr)
}

// ExitStatus is returned (as an error) when the program invokes the exit
// system call.
type ExitStatus struct {
	Code int
}

// Error implements the error interface.
func (e *ExitStatus) Error() string {
	return fmt.Sprintf("process exited with status %d", e.Code)
}

// BreakpointHit is returned by Run when EIP reaches an armed breakpoint.
// The instruction at the breakpoint has not been executed yet.
type BreakpointHit struct {
	Addr uint32
}

// Error implements the error interface.
func (b *BreakpointHit) Error() string {
	return fmt.Sprintf("breakpoint at %#x", b.Addr)
}

// OutOfFuel is returned when the retired-instruction budget is exhausted;
// the study treats it as a hung process (the client observes a hang).
type OutOfFuel struct {
	Steps uint64
}

// Error implements the error interface.
func (o *OutOfFuel) Error() string {
	return fmt.Sprintf("out of fuel after %d instructions", o.Steps)
}
