// Package vm implements a deterministic 32-bit x86-subset interpreter used
// as the study's hardware substrate. It models user-mode execution under a
// Linux-like personality: protected memory regions, precise faults
// (translated to the usual POSIX signals), a breakpoint facility for the
// NFTAPE-style injector, and a retired-instruction counter used to measure
// the paper's transient windows of vulnerability (Figure 4).
package vm

import (
	"bytes"
	"fmt"
	"math/bits"
	"sort"
)

// Perm is a bit set of region permissions.
type Perm uint8

// Region permissions.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// String renders the permission set in ls -l style ("r-x").
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Dirty-page geometry: writes are tracked at 64-byte granularity, one bit
// per page, 64 pages per bitmap word. Coarse enough that a word of bitmap
// covers 4 KiB of region, fine enough that a run touching a few stack and
// data cells restores a few hundred bytes instead of the whole image.
const (
	dirtyPageShift = 6 // log2(page size)
	dirtyPageSize  = 1 << dirtyPageShift
)

// Region is a contiguous mapped range of the 32-bit address space.
type Region struct {
	Name string
	Base uint32
	Perm Perm
	Data []byte

	// dirty, when non-nil, is the write-tracking bitmap: bit p set means
	// page p (bytes [p*64, p*64+64) of Data) was written since the bitmap
	// was last cleared. Armed by Restore when dirty tracking is on;
	// maintained by every guest store and by Poke. nil means untracked.
	dirty []uint64
}

// armDirty allocates the region's dirty bitmap, or clears it in place when
// already sized for the region.
func (r *Region) armDirty() {
	pages := (len(r.Data) + dirtyPageSize - 1) >> dirtyPageShift
	words := (pages + 63) >> 6
	if len(r.dirty) == words {
		for i := range r.dirty {
			r.dirty[i] = 0
		}
		return
	}
	r.dirty = make([]uint64, words)
}

// markDirty records an n-byte write at offset off into the bitmap. The
// caller has already bounds-checked the write; n >= 1.
func (r *Region) markDirty(off uint32, n int) {
	lo := off >> dirtyPageShift
	hi := (off + uint32(n) - 1) >> dirtyPageShift
	// Almost every store fits one page; mark it without loop setup.
	r.dirty[lo>>6] |= 1 << (lo & 63)
	for p := lo + 1; p <= hi; p++ {
		r.dirty[p>>6] |= 1 << (p & 63)
	}
}

// copyDirtyFrom copies the dirty pages of the region back from src (the
// snapshot's pristine bytes, same length as Data), clearing the bitmap as
// it goes, and returns the number of bytes copied.
func (r *Region) copyDirtyFrom(src []byte) int {
	n := 0
	for wi, w := range r.dirty {
		if w == 0 {
			continue
		}
		r.dirty[wi] = 0
		base := uint32(wi) << (dirtyPageShift + 6)
		for w != 0 {
			b := uint32(bits.TrailingZeros64(w))
			w &^= 1 << b
			lo := base + b<<dirtyPageShift
			hi := lo + dirtyPageSize
			if hi > uint32(len(r.Data)) {
				hi = uint32(len(r.Data))
			}
			n += copy(r.Data[lo:hi], src[lo:hi])
		}
	}
	return n
}

// dirtyPageCount returns the number of pages currently marked dirty.
func (r *Region) dirtyPageCount() int {
	n := 0
	for _, w := range r.dirty {
		n += bits.OnesCount64(w)
	}
	return n
}

// End returns the first address past the region.
func (r *Region) End() uint32 { return r.Base + uint32(len(r.Data)) }

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint32) bool {
	return addr >= r.Base && addr < r.End()
}

// Memory is a sparse 32-bit address space made of non-overlapping regions.
type Memory struct {
	regions []*Region // sorted by Base

	// icache is the lazily built predecoded instruction cache (see
	// icache.go); nil until the machine first decodes an instruction.
	icache *ICache

	// invalGen counts icache invalidations. A fused trace (trace.go) reads
	// it before executing each micro-op: a change mid-trace means a store
	// just landed in an executable region, so the rest of the trace may
	// have been decoded from bytes that no longer exist — the trace aborts
	// and execution resumes through the per-step path.
	invalGen uint64

	// hot is the region that served the last access: a search hint, never
	// consulted without revalidation. Cleared whenever the region set is
	// replaced (fresh-mapping Restore).
	hot *Region
}

// NewMemory returns an empty address space.
func NewMemory() *Memory { return &Memory{} }

// Map adds a region. It returns an error if the region overlaps an existing
// mapping or wraps around the address space.
func (m *Memory) Map(r *Region) error {
	if len(r.Data) == 0 {
		return fmt.Errorf("vm: map %q: empty region", r.Name)
	}
	if r.Base+uint32(len(r.Data)) < r.Base {
		return fmt.Errorf("vm: map %q: region wraps address space", r.Name)
	}
	for _, ex := range m.regions {
		if r.Base < ex.End() && ex.Base < r.End() {
			return fmt.Errorf("vm: map %q: overlaps region %q", r.Name, ex.Name)
		}
	}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool {
		return m.regions[i].Base < m.regions[j].Base
	})
	return nil
}

// Regions returns the mapped regions in address order. The caller must not
// mutate the returned slice.
func (m *Memory) Regions() []*Region { return m.regions }

// Find returns the region containing addr, or nil.
func (m *Memory) Find(addr uint32) *Region {
	// Linear scan: region count is tiny (text/rodata/data/bss/stack).
	for _, r := range m.regions {
		if r.Contains(addr) {
			return r
		}
	}
	return nil
}

// FindByName returns the region with the given name, or nil.
func (m *Memory) FindByName(name string) *Region {
	for _, r := range m.regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// access validates an n-byte access at addr with permission p and returns
// the backing slice. This is the VM's hottest memory path (every load,
// store, push and pop), so the region resolution is inlined — unsigned
// wrap folds the two range compares into one — and the last region served
// is tried first: guest accesses run in bursts against one region (stack
// frames, buffer fills), and the hot-region probe skips the scan for
// them. The cache is only a search hint; every hit revalidates bounds and
// permissions.
func (m *Memory) access(addr uint32, n int, p Perm) ([]byte, *Fault) {
	r := m.hot
	if r != nil {
		if off := addr - r.Base; off < uint32(len(r.Data)) {
			return m.accessIn(r, addr, off, n, p)
		}
	}
	for _, r := range m.regions {
		off := addr - r.Base
		if off >= uint32(len(r.Data)) {
			continue
		}
		m.hot = r
		return m.accessIn(r, addr, off, n, p)
	}
	return nil, &Fault{Kind: faultKindForPerm(p), Addr: addr}
}

// accessIn validates and serves an access known to start inside r.
func (m *Memory) accessIn(r *Region, addr, off uint32, n int, p Perm) ([]byte, *Fault) {
	if r.Perm&p != p {
		return nil, &Fault{Kind: faultKindForPerm(p), Addr: addr}
	}
	if int(off)+n > len(r.Data) {
		// Access straddles the end of the region: fault at first bad byte.
		return nil, &Fault{Kind: faultKindForPerm(p), Addr: r.End()}
	}
	if p&PermWrite != 0 {
		if r.dirty != nil {
			r.markDirty(off, n)
		}
		if r.Perm&PermExec != 0 {
			// Self-modifying code: a successful store into an executable
			// region voids the covering predecoded cache lines.
			m.icacheInvalidate(addr, n)
		}
	}
	return r.Data[off : off+uint32(n)], nil
}

func faultKindForPerm(p Perm) FaultKind {
	if p&PermExec != 0 {
		return FaultFetch
	}
	return FaultMemory
}

// Read returns n bytes starting at addr, checking read permission.
func (m *Memory) Read(addr uint32, n int) ([]byte, *Fault) {
	return m.access(addr, n, PermRead)
}

// The width-specific Read/Write methods below open-code the hot-region
// probe before falling back to access: loads and stores are the VM's
// dominant operation and the extra call layers measurably cost. The fast
// path serves only plain in-bounds accesses against the hinted region
// with exactly the permissions required — writes additionally require the
// region non-executable (so self-modifying stores always take the slow
// path and invalidate the icache) — and performs the same dirty marking.

// Read8 reads one byte.
func (m *Memory) Read8(addr uint32) (uint32, *Fault) {
	if r := m.hot; r != nil && r.Perm&PermRead != 0 {
		if off := addr - r.Base; off < uint32(len(r.Data)) {
			return uint32(r.Data[off]), nil
		}
	}
	b, f := m.access(addr, 1, PermRead)
	if f != nil {
		return 0, f
	}
	return uint32(b[0]), nil
}

// Read16 reads a little-endian 16-bit value.
func (m *Memory) Read16(addr uint32) (uint32, *Fault) {
	b, f := m.access(addr, 2, PermRead)
	if f != nil {
		return 0, f
	}
	return uint32(b[0]) | uint32(b[1])<<8, nil
}

// Read32 reads a little-endian 32-bit value.
func (m *Memory) Read32(addr uint32) (uint32, *Fault) {
	if r := m.hot; r != nil && r.Perm&PermRead != 0 {
		if off := addr - r.Base; off < uint32(len(r.Data)) && int(off)+4 <= len(r.Data) {
			b := r.Data[off : off+4 : off+4]
			return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
		}
	}
	b, f := m.access(addr, 4, PermRead)
	if f != nil {
		return 0, f
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// ReadW reads a w-byte little-endian value (w in {1,2,4}).
func (m *Memory) ReadW(addr uint32, w uint8) (uint32, *Fault) {
	switch w {
	case 1:
		return m.Read8(addr)
	case 2:
		return m.Read16(addr)
	default:
		return m.Read32(addr)
	}
}

// Write8 writes one byte, checking write permission.
func (m *Memory) Write8(addr uint32, v uint32) *Fault {
	if r := m.hot; r != nil && r.Perm&(PermWrite|PermExec) == PermWrite {
		if off := addr - r.Base; off < uint32(len(r.Data)) {
			if r.dirty != nil {
				r.markDirty(off, 1)
			}
			r.Data[off] = byte(v)
			return nil
		}
	}
	b, f := m.access(addr, 1, PermWrite)
	if f != nil {
		return f
	}
	b[0] = byte(v)
	return nil
}

// Write16 writes a little-endian 16-bit value.
func (m *Memory) Write16(addr uint32, v uint32) *Fault {
	b, f := m.access(addr, 2, PermWrite)
	if f != nil {
		return f
	}
	b[0], b[1] = byte(v), byte(v>>8)
	return nil
}

// Write32 writes a little-endian 32-bit value.
func (m *Memory) Write32(addr uint32, v uint32) *Fault {
	if r := m.hot; r != nil && r.Perm&(PermWrite|PermExec) == PermWrite {
		if off := addr - r.Base; off < uint32(len(r.Data)) && int(off)+4 <= len(r.Data) {
			if r.dirty != nil {
				r.markDirty(off, 4)
			}
			b := r.Data[off : off+4 : off+4]
			b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			return nil
		}
	}
	b, f := m.access(addr, 4, PermWrite)
	if f != nil {
		return f
	}
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}

// WriteW writes a w-byte little-endian value (w in {1,2,4}).
func (m *Memory) WriteW(addr uint32, v uint32, w uint8) *Fault {
	switch w {
	case 1:
		return m.Write8(addr, v)
	case 2:
		return m.Write16(addr, v)
	default:
		return m.Write32(addr, v)
	}
}

// Fetch returns up to n instruction bytes at addr, checking execute
// permission. Fewer bytes are returned when the region ends before n; the
// decoder reports truncation, which becomes a fetch fault.
func (m *Memory) Fetch(addr uint32, n int) ([]byte, *Fault) {
	r := m.Find(addr)
	if r == nil || r.Perm&PermExec == 0 {
		return nil, &Fault{Kind: FaultFetch, Addr: addr}
	}
	off := addr - r.Base
	end := off + uint32(n)
	if end > uint32(len(r.Data)) {
		end = uint32(len(r.Data))
	}
	return r.Data[off:end], nil
}

// Poke writes bytes at addr ignoring permissions. It is the injector's
// (debugger's) memory access: ptrace POKETEXT can modify read-only text.
// Predecoded cache lines covering the poked bytes are invalidated, so the
// next fetch decodes the corrupted encoding.
func (m *Memory) Poke(addr uint32, data []byte) error {
	r := m.Find(addr)
	if r == nil || int(addr-r.Base)+len(data) > len(r.Data) {
		return fmt.Errorf("vm: poke at %#x: not mapped", addr)
	}
	copy(r.Data[addr-r.Base:], data)
	if r.dirty != nil && len(data) > 0 {
		r.markDirty(addr-r.Base, len(data))
	}
	m.icacheInvalidate(addr, len(data))
	return nil
}

// Peek reads bytes at addr ignoring permissions (debugger read).
func (m *Memory) Peek(addr uint32, n int) ([]byte, error) {
	r := m.Find(addr)
	if r == nil || int(addr-r.Base)+n > len(r.Data) {
		return nil, fmt.Errorf("vm: peek at %#x: not mapped", addr)
	}
	out := make([]byte, n)
	copy(out, r.Data[addr-r.Base:])
	return out, nil
}

// CString reads a NUL-terminated string at addr with a length cap,
// checking read permission. Used by the kernel for diagnostics. The
// region is resolved once and its backing slice scanned directly (the
// naive per-byte Read8 loop cost one full region lookup per character);
// fault semantics are unchanged: running past the last readable byte
// faults at the first unreadable address, and a string may span
// contiguously mapped regions.
func (m *Memory) CString(addr uint32, maxLen int) (string, *Fault) {
	out := make([]byte, 0, 32)
	for maxLen > 0 {
		r := m.Find(addr)
		if r == nil || r.Perm&PermRead == 0 {
			return "", &Fault{Kind: FaultMemory, Addr: addr}
		}
		data := r.Data[addr-r.Base:]
		if len(data) > maxLen {
			data = data[:maxLen]
		}
		if i := bytes.IndexByte(data, 0); i >= 0 {
			return string(append(out, data[:i]...)), nil
		}
		out = append(out, data...)
		maxLen -= len(data)
		addr += uint32(len(data))
	}
	return string(out), nil
}
