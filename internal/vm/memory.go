// Package vm implements a deterministic 32-bit x86-subset interpreter used
// as the study's hardware substrate. It models user-mode execution under a
// Linux-like personality: protected memory regions, precise faults
// (translated to the usual POSIX signals), a breakpoint facility for the
// NFTAPE-style injector, and a retired-instruction counter used to measure
// the paper's transient windows of vulnerability (Figure 4).
package vm

import (
	"bytes"
	"fmt"
	"sort"
)

// Perm is a bit set of region permissions.
type Perm uint8

// Region permissions.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// String renders the permission set in ls -l style ("r-x").
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Region is a contiguous mapped range of the 32-bit address space.
type Region struct {
	Name string
	Base uint32
	Perm Perm
	Data []byte
}

// End returns the first address past the region.
func (r *Region) End() uint32 { return r.Base + uint32(len(r.Data)) }

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint32) bool {
	return addr >= r.Base && addr < r.End()
}

// Memory is a sparse 32-bit address space made of non-overlapping regions.
type Memory struct {
	regions []*Region // sorted by Base

	// icache is the lazily built predecoded instruction cache (see
	// icache.go); nil until the machine first decodes an instruction.
	icache *ICache
}

// NewMemory returns an empty address space.
func NewMemory() *Memory { return &Memory{} }

// Map adds a region. It returns an error if the region overlaps an existing
// mapping or wraps around the address space.
func (m *Memory) Map(r *Region) error {
	if len(r.Data) == 0 {
		return fmt.Errorf("vm: map %q: empty region", r.Name)
	}
	if r.Base+uint32(len(r.Data)) < r.Base {
		return fmt.Errorf("vm: map %q: region wraps address space", r.Name)
	}
	for _, ex := range m.regions {
		if r.Base < ex.End() && ex.Base < r.End() {
			return fmt.Errorf("vm: map %q: overlaps region %q", r.Name, ex.Name)
		}
	}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool {
		return m.regions[i].Base < m.regions[j].Base
	})
	return nil
}

// Regions returns the mapped regions in address order. The caller must not
// mutate the returned slice.
func (m *Memory) Regions() []*Region { return m.regions }

// Find returns the region containing addr, or nil.
func (m *Memory) Find(addr uint32) *Region {
	// Linear scan: region count is tiny (text/rodata/data/bss/stack).
	for _, r := range m.regions {
		if r.Contains(addr) {
			return r
		}
	}
	return nil
}

// FindByName returns the region with the given name, or nil.
func (m *Memory) FindByName(name string) *Region {
	for _, r := range m.regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// access validates an n-byte access at addr with permission p and returns
// the backing slice.
func (m *Memory) access(addr uint32, n int, p Perm) ([]byte, *Fault) {
	r := m.Find(addr)
	if r == nil || r.Perm&p != p {
		return nil, &Fault{Kind: faultKindForPerm(p), Addr: addr}
	}
	off := addr - r.Base
	if int(off)+n > len(r.Data) {
		// Access straddles the end of the region: fault at first bad byte.
		return nil, &Fault{Kind: faultKindForPerm(p), Addr: r.End()}
	}
	if p&PermWrite != 0 && r.Perm&PermExec != 0 {
		// Self-modifying code: a successful store into an executable
		// region voids the covering predecoded cache lines.
		m.icacheInvalidate(addr, n)
	}
	return r.Data[off : off+uint32(n)], nil
}

func faultKindForPerm(p Perm) FaultKind {
	if p&PermExec != 0 {
		return FaultFetch
	}
	return FaultMemory
}

// Read returns n bytes starting at addr, checking read permission.
func (m *Memory) Read(addr uint32, n int) ([]byte, *Fault) {
	return m.access(addr, n, PermRead)
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint32) (uint32, *Fault) {
	b, f := m.access(addr, 1, PermRead)
	if f != nil {
		return 0, f
	}
	return uint32(b[0]), nil
}

// Read16 reads a little-endian 16-bit value.
func (m *Memory) Read16(addr uint32) (uint32, *Fault) {
	b, f := m.access(addr, 2, PermRead)
	if f != nil {
		return 0, f
	}
	return uint32(b[0]) | uint32(b[1])<<8, nil
}

// Read32 reads a little-endian 32-bit value.
func (m *Memory) Read32(addr uint32) (uint32, *Fault) {
	b, f := m.access(addr, 4, PermRead)
	if f != nil {
		return 0, f
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// ReadW reads a w-byte little-endian value (w in {1,2,4}).
func (m *Memory) ReadW(addr uint32, w uint8) (uint32, *Fault) {
	switch w {
	case 1:
		return m.Read8(addr)
	case 2:
		return m.Read16(addr)
	default:
		return m.Read32(addr)
	}
}

// Write8 writes one byte, checking write permission.
func (m *Memory) Write8(addr uint32, v uint32) *Fault {
	b, f := m.access(addr, 1, PermWrite)
	if f != nil {
		return f
	}
	b[0] = byte(v)
	return nil
}

// Write16 writes a little-endian 16-bit value.
func (m *Memory) Write16(addr uint32, v uint32) *Fault {
	b, f := m.access(addr, 2, PermWrite)
	if f != nil {
		return f
	}
	b[0], b[1] = byte(v), byte(v>>8)
	return nil
}

// Write32 writes a little-endian 32-bit value.
func (m *Memory) Write32(addr uint32, v uint32) *Fault {
	b, f := m.access(addr, 4, PermWrite)
	if f != nil {
		return f
	}
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}

// WriteW writes a w-byte little-endian value (w in {1,2,4}).
func (m *Memory) WriteW(addr uint32, v uint32, w uint8) *Fault {
	switch w {
	case 1:
		return m.Write8(addr, v)
	case 2:
		return m.Write16(addr, v)
	default:
		return m.Write32(addr, v)
	}
}

// Fetch returns up to n instruction bytes at addr, checking execute
// permission. Fewer bytes are returned when the region ends before n; the
// decoder reports truncation, which becomes a fetch fault.
func (m *Memory) Fetch(addr uint32, n int) ([]byte, *Fault) {
	r := m.Find(addr)
	if r == nil || r.Perm&PermExec == 0 {
		return nil, &Fault{Kind: FaultFetch, Addr: addr}
	}
	off := addr - r.Base
	end := off + uint32(n)
	if end > uint32(len(r.Data)) {
		end = uint32(len(r.Data))
	}
	return r.Data[off:end], nil
}

// Poke writes bytes at addr ignoring permissions. It is the injector's
// (debugger's) memory access: ptrace POKETEXT can modify read-only text.
// Predecoded cache lines covering the poked bytes are invalidated, so the
// next fetch decodes the corrupted encoding.
func (m *Memory) Poke(addr uint32, data []byte) error {
	r := m.Find(addr)
	if r == nil || int(addr-r.Base)+len(data) > len(r.Data) {
		return fmt.Errorf("vm: poke at %#x: not mapped", addr)
	}
	copy(r.Data[addr-r.Base:], data)
	m.icacheInvalidate(addr, len(data))
	return nil
}

// Peek reads bytes at addr ignoring permissions (debugger read).
func (m *Memory) Peek(addr uint32, n int) ([]byte, error) {
	r := m.Find(addr)
	if r == nil || int(addr-r.Base)+n > len(r.Data) {
		return nil, fmt.Errorf("vm: peek at %#x: not mapped", addr)
	}
	out := make([]byte, n)
	copy(out, r.Data[addr-r.Base:])
	return out, nil
}

// CString reads a NUL-terminated string at addr with a length cap,
// checking read permission. Used by the kernel for diagnostics. The
// region is resolved once and its backing slice scanned directly (the
// naive per-byte Read8 loop cost one full region lookup per character);
// fault semantics are unchanged: running past the last readable byte
// faults at the first unreadable address, and a string may span
// contiguously mapped regions.
func (m *Memory) CString(addr uint32, maxLen int) (string, *Fault) {
	out := make([]byte, 0, 32)
	for maxLen > 0 {
		r := m.Find(addr)
		if r == nil || r.Perm&PermRead == 0 {
			return "", &Fault{Kind: FaultMemory, Addr: addr}
		}
		data := r.Data[addr-r.Base:]
		if len(data) > maxLen {
			data = data[:maxLen]
		}
		if i := bytes.IndexByte(data, 0); i >= 0 {
			return string(append(out, data[:i]...)), nil
		}
		out = append(out, data...)
		maxLen -= len(data)
		addr += uint32(len(data))
	}
	return string(out), nil
}
