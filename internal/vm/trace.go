package vm

import "faultsec/internal/x86"

// This file implements superblock trace fusion: straight-line runs of
// predecoded micro-ops are fused, once, into a trace that Machine.Run's
// fused step executes end to end without per-instruction dispatch — no
// per-step icache lookup, no fuel/watchdog/breakpoint probing, no Run-loop
// round-trip. (Machine.Step keeps its one-instruction-per-call contract
// and never runs traces.) A trace extends from its head instruction to the first
// control-flow instruction (included, as the final op), the containing
// region's edge, an unfuseable op, or the size caps, whichever comes
// first.
//
// Correctness invariants:
//
//   - Traces fuse only micro-ops whose EIP effect is plain fall-through
//     (control flow terminates the trace), so the pre-advanced EIP each op
//     sees is exactly what the per-step path would have set.
//   - Per-op bookkeeping (m.pc, m.EIP, Steps, TSC) is identical to Step's,
//     so a fault, exit or kernel error raised mid-trace observes the same
//     machine state as single-stepping would.
//   - Run only enters a trace when no per-step check can fire: fuel is
//     pre-checked for the whole trace (otherwise it single-steps to the
//     OutOfFuel point), and traces are gated off entirely while
//     breakpoints are armed or the control-flow watchdog is on.
//   - Self-modifying writes: Memory.invalGen is polled after every fused
//     op; a change means a store just invalidated cached decodes, so the
//     remainder of the trace may be stale and the trace aborts (EIP
//     already points at the next instruction, so execution resumes
//     seamlessly through the per-step path, which re-decodes from the
//     current bytes).
//   - REP string ops never fuse: their handler runs an internal
//     per-iteration loop with its own Steps/fuel accounting. RDTSC never
//     fuses so that a fused TSC update scheme never becomes observable.
//   - Traces are always private to one machine. Snapshots neither capture
//     nor share them; Restore keeps traces over pristine bytes and drops
//     the ones over poked spans (icacheInstall), which is what lets decode
//     and fuse work survive across a whole experiment group.
//
// Dead-flag elision rides on the fused form: when a trace proves that
// every EFLAGS bit an op writes is overwritten before anything can
// observe it — observers being flag-reading ops, any op that can fault or
// write memory (a mid-trace abort exposes EFLAGS), and the trace end —
// the op's handler is swapped for a flag-free variant (uopNFTable). The
// liveness pass (elideDeadFlags) treats every non-pure op as a full
// barrier, so elision only ever spans register-only instructions.

const (
	// maxTraceUops caps the fused ops per trace; maxTraceBytes caps the
	// byte span, bounding the invalidation back-span a poke must widen to.
	maxTraceUops  = 32
	maxTraceBytes = 128
)

// traceOp is one fused micro-op: the resolved handler (possibly a
// flag-free variant), the bound micro-op, and the instruction address
// with its precomputed fall-through successor.
type traceOp struct {
	fn   uopFn
	pc   uint32
	next uint32
	u    x86.Uop
}

// trace is a fused superblock. A trace with no ops is the "don't fuse
// here" sentinel: the head instruction is unfuseable (string/rdtsc op, or
// undecodable), and Run falls through to the single-step path without
// re-attempting the fuse.
type trace struct {
	ops []traceOp
}

// traceLookup returns the fused trace headed at pc, nil when none has
// been built (or the slot was invalidated).
func (m *Memory) traceLookup(pc uint32) *trace {
	c := m.icache
	if c == nil {
		return nil
	}
	for _, rt := range c.regions {
		i := pc - rt.base
		if i >= uint32(len(rt.entries)) {
			continue
		}
		if rt.traces == nil {
			return nil
		}
		return rt.traces[i]
	}
	return nil
}

// buildTrace fuses and caches the trace headed at pc. Returns nil when pc
// is not in an executable region (the caller's fetch will fault).
func (m *Machine) buildTrace(pc uint32) *trace {
	c := m.Mem.icache
	if c == nil {
		c = &ICache{}
		m.Mem.icache = c
	}
	rt := c.findRegion(pc)
	if rt == nil {
		r := m.Mem.Find(pc)
		if r == nil || r.Perm&PermExec == 0 {
			return nil
		}
		rt = &icacheRegion{base: r.Base, entries: make([]islot, len(r.Data))}
		c.regions = append(c.regions, rt)
	}
	tr := m.fuseTrace(pc, rt.base+uint32(len(rt.entries)))
	if rt.traces == nil {
		rt.traces = make([]*trace, len(rt.entries))
	}
	rt.traces[pc-rt.base] = tr
	return tr
}

// fuseTrace walks the instruction stream from pc, reusing cached decodes
// and filling the icache for new ones, and fuses ops until a terminator
// (included), the region end, an unfuseable op, or a size cap. Traces
// never cross end (the region edge): invalidation is per-region, so a
// trace must live entirely inside the region that indexes it.
func (m *Machine) fuseTrace(pc, end uint32) *trace {
	tr := &trace{}
	addr := pc
	for len(tr.ops) < maxTraceUops {
		s := m.Mem.icacheLookup(addr)
		if s == nil {
			code, f := m.Mem.Fetch(addr, x86.MaxInstLen)
			if f != nil {
				break
			}
			var tmp islot
			if err := x86.DecodeInto(&tmp.inst, code); err != nil {
				break
			}
			tmp.inst.Bind(&tmp.uop)
			m.ICacheMisses++
			m.Mem.icacheFill(addr, &tmp)
			s = &tmp
		}
		h := s.uop.H
		if h == x86.UString || h == x86.URdtsc {
			break
		}
		next := addr + uint32(s.uop.Len)
		if next > end || next-pc > maxTraceBytes {
			break
		}
		tr.ops = append(tr.ops, traceOp{
			fn:   uopTable[h&(uopTableSize-1)],
			pc:   addr,
			next: next,
			u:    s.uop,
		})
		if traceTerminator(h) {
			break
		}
		addr = next
	}
	elideDeadFlags(tr.ops)
	return tr
}

// traceTerminator reports whether handler h ends a trace: anything that
// redirects EIP, enters the kernel, or unconditionally faults. Such an op
// fuses as the trace's final op and the next Step starts a new trace at
// wherever it went.
func traceTerminator(h uint16) bool {
	switch h {
	case x86.UJcc, x86.UJmpRel, x86.UJmpRM, x86.UJCXZ,
		x86.ULoop, x86.ULoopE, x86.ULoopNE,
		x86.UCallRel, x86.UCallRM, x86.URet,
		x86.UInt3, x86.UInto, x86.USyscall, x86.UBadInt, x86.UBound,
		x86.UPrivileged, x86.UUD, x86.UInvalid:
		return true
	}
	return false
}

// runTrace executes a fused trace. The caller (stepFused) has verified
// fuel for the whole trace, no armed breakpoints, and no watchdog.
//
// Steps, TSC and EIP are batched: inside the trace only m.pc (fault
// stamping) is maintained per op, and the architectural counters are
// materialized at every exit point — before the final op (the only place
// a kernel entry can observe them: syscalls are terminators, so they are
// always last, and RDTSC never fuses) and on the early-exit paths, where
// they land on exactly the values per-step execution would have produced
// at that instruction.
func (m *Machine) runTrace(tr *trace) error {
	m.TraceHits++
	gen := m.Mem.invalGen
	ops := tr.ops
	last := len(ops) - 1
	for i := range ops {
		e := &ops[i]
		m.pc = e.pc
		if i == last {
			m.flushTrace(e, i)
			if err := e.fn(m, &e.u); err != nil {
				m.TraceExits++
				return err
			}
			return nil
		}
		if err := e.fn(m, &e.u); err != nil {
			m.flushTrace(e, i)
			m.TraceExits++
			return err
		}
		if m.Mem.invalGen != gen {
			// A store just landed in an executable region: the rest of
			// the trace may be decoded from dead bytes. Materialize the
			// counters and fall back to single-stepping, which
			// re-decodes from the current bytes.
			m.flushTrace(e, i)
			m.TraceExits++
			return nil
		}
	}
	return nil
}

// flushTrace materializes the batched per-step state as of having retired
// ops[0..i] of the current trace, with e = &ops[i]: EIP points past e
// exactly as Step would have left it.
func (m *Machine) flushTrace(e *traceOp, i int) {
	m.EIP = e.next
	m.Steps += uint64(i + 1)
	m.TSC += 3 * uint64(i+1) // deterministic pseudo cycle count, as in Step
}

// elideDeadFlags is the backward liveness pass over a fused trace: ops
// whose written flags are all provably overwritten before any observer
// swap their handler for the flag-free variant. Non-pure ops (anything
// that can fault, touch memory, or whose flag behavior is not exactly
// described) force full liveness on both sides — a mid-trace fault or
// abort exposes EFLAGS, so elision never crosses them.
func elideDeadFlags(ops []traceOp) {
	const allFlags = x86.FlagCF | x86.FlagPF | x86.FlagAF | x86.FlagZF |
		x86.FlagSF | x86.FlagDF | x86.FlagOF
	live := uint32(allFlags)
	for i := len(ops) - 1; i >= 0; i-- {
		e := &ops[i]
		ef := x86.UopEffectsOf(e.u.H)
		if !ef.Pure || (ef.UsesRM && !e.u.RM.IsReg) {
			live = allFlags
			continue
		}
		if ef.Writes != 0 && ef.Writes&live == 0 {
			if nf := uopNFTable[e.u.H&(uopTableSize-1)]; nf != nil {
				e.fn = nf
			}
		}
		live = ef.Reads | (live &^ ef.Writes)
	}
}

// Flag-free handler variants. These run only inside fused traces, only
// when elideDeadFlags proved the op's flag writes dead, and only for
// register operands (the purity gate), so they skip the flag cores and
// every fault check. Results are width-masked by regWrite exactly like
// the full handlers' flag cores mask theirs.

func nfBinRMReg(op func(m *Machine, a, b uint32) uint32) uopFn {
	return func(m *Machine, u *x86.Uop) error {
		m.regWrite(u.RM.Reg, u.W, op(m, m.regRead(u.RM.Reg, u.W), m.regRead(u.Reg, u.W)))
		return nil
	}
}

func nfBinRegRM(op func(m *Machine, a, b uint32) uint32) uopFn {
	return func(m *Machine, u *x86.Uop) error {
		m.regWrite(u.Reg, u.W, op(m, m.regRead(u.Reg, u.W), m.regRead(u.RM.Reg, u.W)))
		return nil
	}
}

func nfBinRMImm(op func(m *Machine, a, b uint32) uint32) uopFn {
	return func(m *Machine, u *x86.Uop) error {
		m.regWrite(u.RM.Reg, u.W, op(m, m.regRead(u.RM.Reg, u.W), uint32(u.Imm)))
		return nil
	}
}

func nfAdd(_ *Machine, a, b uint32) uint32 { return a + b }
func nfSub(_ *Machine, a, b uint32) uint32 { return a - b }
func nfAnd(_ *Machine, a, b uint32) uint32 { return a & b }
func nfOr(_ *Machine, a, b uint32) uint32  { return a | b }
func nfXor(_ *Machine, a, b uint32) uint32 { return a ^ b }
func nfAdc(m *Machine, a, b uint32) uint32 { return a + b + b2u(m.GetFlag(x86.FlagCF)) }
func nfSbb(m *Machine, a, b uint32) uint32 { return a - b - b2u(m.GetFlag(x86.FlagCF)) }

// nfNop is the variant for ops whose only architectural effect is the
// (dead) flag write: CMP, TEST, CLC/STC/CMC, CLD/STD, SAHF.
func nfNop(_ *Machine, _ *x86.Uop) error { return nil }

func nfIncReg(m *Machine, u *x86.Uop) error {
	m.regWrite(u.Reg, u.W, m.regRead(u.Reg, u.W)+1)
	return nil
}

func nfDecReg(m *Machine, u *x86.Uop) error {
	m.regWrite(u.Reg, u.W, m.regRead(u.Reg, u.W)-1)
	return nil
}

func nfIncRM(m *Machine, u *x86.Uop) error {
	m.regWrite(u.RM.Reg, u.W, m.regRead(u.RM.Reg, u.W)+1)
	return nil
}

func nfDecRM(m *Machine, u *x86.Uop) error {
	m.regWrite(u.RM.Reg, u.W, m.regRead(u.RM.Reg, u.W)-1)
	return nil
}

func nfNeg(m *Machine, u *x86.Uop) error {
	m.regWrite(u.RM.Reg, u.W, -m.regRead(u.RM.Reg, u.W))
	return nil
}

// uopNFTable maps handler indices to their flag-free variants. A nil
// entry means the op has no variant and executes in full even when its
// flag writes are dead.
var uopNFTable = [uopTableSize]uopFn{
	x86.UAddRMReg: nfBinRMReg(nfAdd),
	x86.UAddRegRM: nfBinRegRM(nfAdd),
	x86.UAddRMImm: nfBinRMImm(nfAdd),
	x86.UOrRMReg:  nfBinRMReg(nfOr),
	x86.UOrRegRM:  nfBinRegRM(nfOr),
	x86.UOrRMImm:  nfBinRMImm(nfOr),
	x86.UAdcRMReg: nfBinRMReg(nfAdc),
	x86.UAdcRegRM: nfBinRegRM(nfAdc),
	x86.UAdcRMImm: nfBinRMImm(nfAdc),
	x86.USbbRMReg: nfBinRMReg(nfSbb),
	x86.USbbRegRM: nfBinRegRM(nfSbb),
	x86.USbbRMImm: nfBinRMImm(nfSbb),
	x86.UAndRMReg: nfBinRMReg(nfAnd),
	x86.UAndRegRM: nfBinRegRM(nfAnd),
	x86.UAndRMImm: nfBinRMImm(nfAnd),
	x86.USubRMReg: nfBinRMReg(nfSub),
	x86.USubRegRM: nfBinRegRM(nfSub),
	x86.USubRMImm: nfBinRMImm(nfSub),
	x86.UXorRMReg: nfBinRMReg(nfXor),
	x86.UXorRegRM: nfBinRegRM(nfXor),
	x86.UXorRMImm: nfBinRMImm(nfXor),

	x86.UCmpRMReg:  nfNop,
	x86.UCmpRegRM:  nfNop,
	x86.UCmpRMImm:  nfNop,
	x86.UTestRMReg: nfNop,
	x86.UTestRegRM: nfNop,
	x86.UTestRMImm: nfNop,

	x86.UIncReg: nfIncReg,
	x86.UIncRM:  nfIncRM,
	x86.UDecReg: nfDecReg,
	x86.UDecRM:  nfDecRM,
	x86.UNeg:    nfNeg,

	x86.UClc:  nfNop,
	x86.UStc:  nfNop,
	x86.UCmc:  nfNop,
	x86.UCld:  nfNop,
	x86.UStd:  nfNop,
	x86.USahf: nfNop,
}
