package vm

import "faultsec/internal/x86"

// ALU micro-op handlers. Each (op, form) pair gets its own plain func so
// the warm path performs no operand-routing dispatch: the form was folded
// into the handler index at bind time, and the width mask/sign bit ride on
// the Uop. Accumulator-immediate encodings share the r/m,imm handlers via
// the register RM synthesized by the binder.

func uAddRMReg(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.addFlagsMS(dst, m.regRead(u.Reg, u.W), 0, u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uAddRegRM(m *Machine, u *x86.Uop) error {
	src, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.addFlagsMS(m.regRead(u.Reg, u.W), src, 0, u.Mask, u.Sign)
	m.regWrite(u.Reg, u.W, r)
	return nil
}

func uAddRMImm(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.addFlagsMS(dst, uint32(u.Imm), 0, u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uAdcRMReg(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.addFlagsMS(dst, m.regRead(u.Reg, u.W), b2u(m.GetFlag(x86.FlagCF)), u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uAdcRegRM(m *Machine, u *x86.Uop) error {
	src, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.addFlagsMS(m.regRead(u.Reg, u.W), src, b2u(m.GetFlag(x86.FlagCF)), u.Mask, u.Sign)
	m.regWrite(u.Reg, u.W, r)
	return nil
}

func uAdcRMImm(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.addFlagsMS(dst, uint32(u.Imm), b2u(m.GetFlag(x86.FlagCF)), u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uSubRMReg(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.subFlagsMS(dst, m.regRead(u.Reg, u.W), 0, u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uSubRegRM(m *Machine, u *x86.Uop) error {
	src, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.subFlagsMS(m.regRead(u.Reg, u.W), src, 0, u.Mask, u.Sign)
	m.regWrite(u.Reg, u.W, r)
	return nil
}

func uSubRMImm(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.subFlagsMS(dst, uint32(u.Imm), 0, u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uSbbRMReg(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.subFlagsMS(dst, m.regRead(u.Reg, u.W), b2u(m.GetFlag(x86.FlagCF)), u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uSbbRegRM(m *Machine, u *x86.Uop) error {
	src, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.subFlagsMS(m.regRead(u.Reg, u.W), src, b2u(m.GetFlag(x86.FlagCF)), u.Mask, u.Sign)
	m.regWrite(u.Reg, u.W, r)
	return nil
}

func uSbbRMImm(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.subFlagsMS(dst, uint32(u.Imm), b2u(m.GetFlag(x86.FlagCF)), u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uAndRMReg(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.logicFlagsMS(dst&m.regRead(u.Reg, u.W), u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uAndRegRM(m *Machine, u *x86.Uop) error {
	src, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.logicFlagsMS(m.regRead(u.Reg, u.W)&src, u.Mask, u.Sign)
	m.regWrite(u.Reg, u.W, r)
	return nil
}

func uAndRMImm(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.logicFlagsMS(dst&uint32(u.Imm), u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uOrRMReg(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.logicFlagsMS(dst|m.regRead(u.Reg, u.W), u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uOrRegRM(m *Machine, u *x86.Uop) error {
	src, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.logicFlagsMS(m.regRead(u.Reg, u.W)|src, u.Mask, u.Sign)
	m.regWrite(u.Reg, u.W, r)
	return nil
}

func uOrRMImm(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.logicFlagsMS(dst|uint32(u.Imm), u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uXorRMReg(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.logicFlagsMS(dst^m.regRead(u.Reg, u.W), u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uXorRegRM(m *Machine, u *x86.Uop) error {
	src, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.logicFlagsMS(m.regRead(u.Reg, u.W)^src, u.Mask, u.Sign)
	m.regWrite(u.Reg, u.W, r)
	return nil
}

func uXorRMImm(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.logicFlagsMS(dst^uint32(u.Imm), u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uCmpRMReg(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.subFlagsMS(dst, m.regRead(u.Reg, u.W), 0, u.Mask, u.Sign)
	return nil
}

func uCmpRegRM(m *Machine, u *x86.Uop) error {
	src, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.subFlagsMS(m.regRead(u.Reg, u.W), src, 0, u.Mask, u.Sign)
	return nil
}

func uCmpRMImm(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.subFlagsMS(dst, uint32(u.Imm), 0, u.Mask, u.Sign)
	return nil
}

func uTestRMReg(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.logicFlagsMS(dst&m.regRead(u.Reg, u.W), u.Mask, u.Sign)
	return nil
}

func uTestRegRM(m *Machine, u *x86.Uop) error {
	src, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.logicFlagsMS(m.regRead(u.Reg, u.W)&src, u.Mask, u.Sign)
	return nil
}

func uTestRMImm(m *Machine, u *x86.Uop) error {
	dst, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.logicFlagsMS(dst&uint32(u.Imm), u.Mask, u.Sign)
	return nil
}

func uIncReg(m *Machine, u *x86.Uop) error {
	m.regWrite(u.Reg, u.W, m.incFlagsMS(m.regRead(u.Reg, u.W), u.Mask, u.Sign))
	return nil
}

func uIncRM(m *Machine, u *x86.Uop) error {
	v, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	if f := m.rmWrite(&u.RM, u.W, m.incFlagsMS(v, u.Mask, u.Sign)); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uDecReg(m *Machine, u *x86.Uop) error {
	m.regWrite(u.Reg, u.W, m.decFlagsMS(m.regRead(u.Reg, u.W), u.Mask, u.Sign))
	return nil
}

func uDecRM(m *Machine, u *x86.Uop) error {
	v, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	if f := m.rmWrite(&u.RM, u.W, m.decFlagsMS(v, u.Mask, u.Sign)); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uNot(m *Machine, u *x86.Uop) error {
	v, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	if f := m.rmWrite(&u.RM, u.W, ^v); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uNeg(m *Machine, u *x86.Uop) error {
	v, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.subFlagsMS(0, v, 0, u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

// shiftCommon applies the shift/rotate identified by u.Aux with the given
// count (already masked to 5 bits).
func shiftCommon(m *Machine, u *x86.Uop, count uint32) error {
	v, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	r := m.execShift(x86.Op(u.Aux), v, count, u.W)
	if f := m.rmWrite(&u.RM, u.W, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uShiftImm(m *Machine, u *x86.Uop) error {
	return shiftCommon(m, u, uint32(u.Imm)&0x1F)
}

func uShiftCL(m *Machine, u *x86.Uop) error {
	return shiftCommon(m, u, m.Regs[x86.ECX]&0x1F)
}

// doubleShift implements SHLD/SHRD with a resolved count.
func doubleShift(m *Machine, u *x86.Uop, left bool, count uint32) error {
	v, f := m.rmRead(&u.RM, 4)
	if f != nil {
		return m.uopMemFault(f)
	}
	if count == 0 {
		return nil
	}
	other := m.regRead(u.Reg, 4)
	var r uint32
	if left {
		r = v<<count | other>>(32-count)
		m.setFlag(x86.FlagCF, v>>(32-count)&1 != 0)
	} else {
		r = v>>count | other<<(32-count)
		m.setFlag(x86.FlagCF, v>>(count-1)&1 != 0)
	}
	m.setSZP(r, 4)
	if f := m.rmWrite(&u.RM, 4, r); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uShldImm(m *Machine, u *x86.Uop) error {
	return doubleShift(m, u, true, uint32(u.Imm)&0x1F)
}

func uShldCL(m *Machine, u *x86.Uop) error {
	return doubleShift(m, u, true, m.Regs[x86.ECX]&0x1F)
}

func uShrdImm(m *Machine, u *x86.Uop) error {
	return doubleShift(m, u, false, uint32(u.Imm)&0x1F)
}

func uShrdCL(m *Machine, u *x86.Uop) error {
	return doubleShift(m, u, false, m.Regs[x86.ECX]&0x1F)
}

// bitTest implements BT/BTS/BTR/BTC with a resolved bit offset. Faults are
// stamped with m.pc.
func (m *Machine) bitTest(op x86.Op, off uint32, rm *x86.RM) error {
	var v uint32
	var addr uint32
	if rm.IsReg {
		off &= 31
		v = m.Regs[rm.Reg]
	} else {
		// Memory form: the bit string extends beyond the dword.
		addr = m.effAddr(rm) + 4*(off>>5)
		off &= 31
		var f *Fault
		v, f = m.Mem.Read32(addr)
		if f != nil {
			return m.uopMemFault(f)
		}
	}
	bit := v >> off & 1
	m.setFlag(x86.FlagCF, bit != 0)
	var nv uint32
	switch op {
	case x86.OpBt:
		return nil
	case x86.OpBts:
		nv = v | 1<<off
	case x86.OpBtr:
		nv = v &^ (1 << off)
	case x86.OpBtc:
		nv = v ^ 1<<off
	}
	if rm.IsReg {
		m.Regs[rm.Reg] = nv
		return nil
	}
	if f := m.Mem.Write32(addr, nv); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uBitTestReg(m *Machine, u *x86.Uop) error {
	return m.bitTest(x86.Op(u.Aux), m.regRead(u.Reg, 4), &u.RM)
}

func uBitTestImm(m *Machine, u *x86.Uop) error {
	return m.bitTest(x86.Op(u.Aux), uint32(u.Imm), &u.RM)
}

// execBitTest is the legacy-switch entry; it resolves the bit-offset
// source from the instruction form and defers to the shared core.
func (m *Machine) execBitTest(in *x86.Inst, pc uint32) error {
	var off uint32
	if in.Form == x86.FormRMImm {
		off = uint32(in.Imm)
	} else {
		off = m.regRead(in.Reg, 4)
	}
	return m.bitTest(in.Op, off, &in.RM)
}

func uXadd(m *Machine, u *x86.Uop) error {
	rv := m.regRead(u.Reg, u.W)
	mv, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	sum := m.addFlagsMS(mv, rv, 0, u.Mask, u.Sign)
	if f := m.rmWrite(&u.RM, u.W, sum); f != nil {
		return m.uopMemFault(f)
	}
	m.regWrite(u.Reg, u.W, mv)
	return nil
}

func uCmpxchg(m *Machine, u *x86.Uop) error {
	acc := m.regRead(x86.EAX, u.W)
	mv, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.subFlagsMS(acc, mv, 0, u.Mask, u.Sign)
	if acc == mv {
		if f := m.rmWrite(&u.RM, u.W, m.regRead(u.Reg, u.W)); f != nil {
			return m.uopMemFault(f)
		}
	} else {
		m.regWrite(x86.EAX, u.W, mv)
	}
	return nil
}

// execShift implements the shift and rotate group (shared by the micro-op
// handlers and the legacy switch).
func (m *Machine) execShift(op x86.Op, v, count uint32, w uint8) uint32 {
	bitsN := uint32(w) * 8
	if count == 0 {
		return v
	}
	mask := x86.WidthMask(w)
	v &= mask
	var r uint32
	switch op {
	case x86.OpShl:
		if count > bitsN {
			r = 0
			m.setFlag(x86.FlagCF, false)
		} else {
			r = v << count & mask
			m.setFlag(x86.FlagCF, v>>(bitsN-count)&1 != 0)
		}
		if count == 1 {
			m.setFlag(x86.FlagOF, (r&x86.SignBit(w) != 0) != m.GetFlag(x86.FlagCF))
		}
		m.setSZP(r, w)
	case x86.OpShr:
		if count > bitsN {
			r = 0
			m.setFlag(x86.FlagCF, false)
		} else {
			r = v >> count
			m.setFlag(x86.FlagCF, v>>(count-1)&1 != 0)
		}
		if count == 1 {
			m.setFlag(x86.FlagOF, v&x86.SignBit(w) != 0)
		}
		m.setSZP(r, w)
	case x86.OpSar:
		sv := int32(v << (32 - bitsN)) // sign-position-normalize
		if count >= bitsN {
			count = bitsN - 1
			m.setFlag(x86.FlagCF, sv < 0)
		} else {
			m.setFlag(x86.FlagCF, v>>(count-1)&1 != 0)
		}
		r = uint32(sv>>(32-bitsN)>>count) & mask
		if count == 1 {
			m.setFlag(x86.FlagOF, false)
		}
		m.setSZP(r, w)
	case x86.OpRol:
		c := count % bitsN
		if c == 0 {
			r = v
		} else {
			r = (v<<c | v>>(bitsN-c)) & mask
		}
		m.setFlag(x86.FlagCF, r&1 != 0)
		if count == 1 {
			m.setFlag(x86.FlagOF, (r&x86.SignBit(w) != 0) != m.GetFlag(x86.FlagCF))
		}
	case x86.OpRor:
		c := count % bitsN
		if c == 0 {
			r = v
		} else {
			r = (v>>c | v<<(bitsN-c)) & mask
		}
		m.setFlag(x86.FlagCF, r&x86.SignBit(w) != 0)
	case x86.OpRcl:
		r = v
		for i := uint32(0); i < count%(bitsN+1); i++ {
			carry := b2u(m.GetFlag(x86.FlagCF))
			m.setFlag(x86.FlagCF, r&x86.SignBit(w) != 0)
			r = (r<<1 | carry) & mask
		}
	case x86.OpRcr:
		r = v
		for i := uint32(0); i < count%(bitsN+1); i++ {
			carry := b2u(m.GetFlag(x86.FlagCF))
			m.setFlag(x86.FlagCF, r&1 != 0)
			r = r>>1 | carry<<(bitsN-1)
		}
	}
	return r & mask
}
