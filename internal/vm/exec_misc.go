package vm

import "faultsec/internal/x86"

// Flag, convert, string and miscellaneous micro-op handlers.

func uNop(m *Machine, u *x86.Uop) error { return nil }

func uCbw(m *Machine, u *x86.Uop) error {
	// cbw: ax = sext(al)
	m.regWrite(x86.EAX, 2, uint32(int32(int8(m.Regs[x86.EAX]))))
	return nil
}

func uCwde(m *Machine, u *x86.Uop) error {
	// cwde: eax = sext(ax)
	m.Regs[x86.EAX] = uint32(int32(int16(m.Regs[x86.EAX])))
	return nil
}

func uCwd(m *Machine, u *x86.Uop) error {
	// cwd: dx = sign(ax)
	s := uint32(0)
	if m.Regs[x86.EAX]&0x8000 != 0 {
		s = 0xFFFF
	}
	m.regWrite(x86.EDX, 2, s)
	return nil
}

func uCdq(m *Machine, u *x86.Uop) error {
	// cdq: edx = sign(eax)
	s := uint32(0)
	if m.Regs[x86.EAX]&0x80000000 != 0 {
		s = 0xFFFFFFFF
	}
	m.Regs[x86.EDX] = s
	return nil
}

func uClc(m *Machine, u *x86.Uop) error {
	m.setFlag(x86.FlagCF, false)
	return nil
}

func uStc(m *Machine, u *x86.Uop) error {
	m.setFlag(x86.FlagCF, true)
	return nil
}

func uCmc(m *Machine, u *x86.Uop) error {
	m.setFlag(x86.FlagCF, !m.GetFlag(x86.FlagCF))
	return nil
}

func uCld(m *Machine, u *x86.Uop) error {
	m.setFlag(x86.FlagDF, false)
	return nil
}

func uStd(m *Machine, u *x86.Uop) error {
	m.setFlag(x86.FlagDF, true)
	return nil
}

func uSahf(m *Machine, u *x86.Uop) error {
	const mask = x86.FlagCF | x86.FlagPF | x86.FlagAF | x86.FlagZF | x86.FlagSF
	m.Flags = m.Flags&^mask | (m.Regs[x86.EAX]>>8)&mask
	return nil
}

func uLahf(m *Machine, u *x86.Uop) error {
	m.regWrite(4, 1, m.Flags&0xFF|0x2) // AH (reg 4 at width 1)
	return nil
}

func uSalc(m *Machine, u *x86.Uop) error {
	v := uint32(0)
	if m.GetFlag(x86.FlagCF) {
		v = 0xFF
	}
	m.regWrite(x86.EAX, 1, v)
	return nil
}

func uXlat(m *Machine, u *x86.Uop) error {
	v, f := m.Mem.Read8(m.Regs[x86.EBX] + m.Regs[x86.EAX]&0xFF)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.regWrite(x86.EAX, 1, v)
	return nil
}

func uString(m *Machine, u *x86.Uop) error {
	return m.stringOp(x86.Op(u.Aux), u.W, u.Rep)
}

func uRdtsc(m *Machine, u *x86.Uop) error {
	m.Regs[x86.EAX] = uint32(m.TSC)
	m.Regs[x86.EDX] = uint32(m.TSC >> 32)
	return nil
}

func uCpuid(m *Machine, u *x86.Uop) error {
	m.Regs[x86.EAX] = 0
	m.Regs[x86.EBX] = 0
	m.Regs[x86.ECX] = 0
	m.Regs[x86.EDX] = 0
	return nil
}

func uPrivileged(m *Machine, u *x86.Uop) error {
	return m.uopFault(FaultPrivileged, m.pc)
}

// uUD is the bound-but-unhandled case: exactly the legacy switch's default
// arm. It also backs UInvalid so a zero-valued micro-op faults instead of
// dispatching through a nil table entry.
func uUD(m *Machine, u *x86.Uop) error {
	return m.uopFault(FaultUndefined, m.pc)
}

// stringOp implements the string instruction family, honouring REP
// prefixes. Each REP iteration counts as one retired instruction, matching
// hardware retirement semantics closely enough for the latency histograms.
// Faults are stamped with m.pc; shared by the micro-op handler and the
// legacy switch.
func (m *Machine) stringOp(op x86.Op, iw uint8, rep uint8) error {
	w := uint32(iw)
	if iw == 0 {
		w = 4
	}
	delta := w
	if m.GetFlag(x86.FlagDF) {
		delta = uint32(-int32(w))
	}
	one := func() (bool, error) {
		switch op {
		case x86.OpMovs:
			v, f := m.Mem.ReadW(m.Regs[x86.ESI], iw)
			if f != nil {
				return false, m.uopMemFault(f)
			}
			if f := m.Mem.WriteW(m.Regs[x86.EDI], v, iw); f != nil {
				return false, m.uopMemFault(f)
			}
			m.Regs[x86.ESI] += delta
			m.Regs[x86.EDI] += delta
		case x86.OpStos:
			if f := m.Mem.WriteW(m.Regs[x86.EDI], m.regRead(x86.EAX, iw), iw); f != nil {
				return false, m.uopMemFault(f)
			}
			m.Regs[x86.EDI] += delta
		case x86.OpLods:
			v, f := m.Mem.ReadW(m.Regs[x86.ESI], iw)
			if f != nil {
				return false, m.uopMemFault(f)
			}
			m.regWrite(x86.EAX, iw, v)
			m.Regs[x86.ESI] += delta
		case x86.OpScas:
			v, f := m.Mem.ReadW(m.Regs[x86.EDI], iw)
			if f != nil {
				return false, m.uopMemFault(f)
			}
			m.subFlags(m.regRead(x86.EAX, iw), v, 0, iw)
			m.Regs[x86.EDI] += delta
		case x86.OpCmps:
			a, f := m.Mem.ReadW(m.Regs[x86.ESI], iw)
			if f != nil {
				return false, m.uopMemFault(f)
			}
			b, f := m.Mem.ReadW(m.Regs[x86.EDI], iw)
			if f != nil {
				return false, m.uopMemFault(f)
			}
			m.subFlags(a, b, 0, iw)
			m.Regs[x86.ESI] += delta
			m.Regs[x86.EDI] += delta
		}
		return true, nil
	}

	if rep == 0 {
		_, err := one()
		return err
	}
	for m.Regs[x86.ECX] != 0 {
		if m.Steps >= m.fuel() {
			return &OutOfFuel{Steps: m.Steps}
		}
		if _, err := one(); err != nil {
			return err
		}
		m.Regs[x86.ECX]--
		m.Steps++
		conditional := op == x86.OpScas || op == x86.OpCmps
		if conditional {
			zf := m.GetFlag(x86.FlagZF)
			if (rep == 0xF3 && !zf) || (rep == 0xF2 && zf) {
				break
			}
		}
	}
	return nil
}

// execString is the legacy-switch entry for the string family.
func (m *Machine) execString(in *x86.Inst, pc uint32) error {
	return m.stringOp(in.Op, in.W, in.Rep)
}
