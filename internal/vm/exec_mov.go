package vm

import "faultsec/internal/x86"

// Data-movement micro-op handlers.

func uMovRMReg(m *Machine, u *x86.Uop) error {
	if f := m.rmWrite(&u.RM, u.W, m.regRead(u.Reg, u.W)); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uMovRegRM(m *Machine, u *x86.Uop) error {
	v, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.regWrite(u.Reg, u.W, v)
	return nil
}

func uMovRMImm(m *Machine, u *x86.Uop) error {
	if f := m.rmWrite(&u.RM, u.W, uint32(u.Imm)); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uMovRegImm(m *Machine, u *x86.Uop) error {
	m.regWrite(u.Reg, u.W, uint32(u.Imm))
	return nil
}

func uMovMoffsLoad(m *Machine, u *x86.Uop) error {
	v, f := m.Mem.ReadW(uint32(u.Imm), u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.regWrite(x86.EAX, u.W, v)
	return nil
}

func uMovMoffsStore(m *Machine, u *x86.Uop) error {
	if f := m.Mem.WriteW(uint32(u.Imm), m.regRead(x86.EAX, u.W), u.W); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uMovZX(m *Machine, u *x86.Uop) error {
	v, f := m.rmRead(&u.RM, u.W) // u.W is the source width
	if f != nil {
		return m.uopMemFault(f)
	}
	m.regWrite(u.Reg, 4, v)
	return nil
}

func uMovSX8(m *Machine, u *x86.Uop) error {
	v, f := m.rmRead(&u.RM, 1)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.regWrite(u.Reg, 4, x86.SignExtend8(v))
	return nil
}

func uMovSX16(m *Machine, u *x86.Uop) error {
	v, f := m.rmRead(&u.RM, 2)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.regWrite(u.Reg, 4, x86.SignExtend16(v))
	return nil
}

func uLea(m *Machine, u *x86.Uop) error {
	m.regWrite(u.Reg, 4, m.effAddr(&u.RM))
	return nil
}

func uXchgAcc(m *Machine, u *x86.Uop) error {
	m.Regs[x86.EAX], m.Regs[u.Reg] = m.Regs[u.Reg], m.Regs[x86.EAX]
	return nil
}

func uXchgRM(m *Machine, u *x86.Uop) error {
	rv := m.regRead(u.Reg, u.W)
	mv, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	if f := m.rmWrite(&u.RM, u.W, rv); f != nil {
		return m.uopMemFault(f)
	}
	m.regWrite(u.Reg, u.W, mv)
	return nil
}

func uBswap(m *Machine, u *x86.Uop) error {
	v := m.Regs[u.Reg]
	m.Regs[u.Reg] = v<<24 | v>>24 | (v&0xFF00)<<8 | (v&0xFF0000)>>8
	return nil
}

func uSetcc(m *Machine, u *x86.Uop) error {
	v := uint32(0)
	if x86.EvalCond(u.Cond, m.Flags) {
		v = 1
	}
	if f := m.rmWrite(&u.RM, 1, v); f != nil {
		return m.uopMemFault(f)
	}
	return nil
}

func uCMov(m *Machine, u *x86.Uop) error {
	// The source is read (and can fault) even when the condition is false,
	// matching hardware and the legacy switch.
	v, f := m.rmRead(&u.RM, 4)
	if f != nil {
		return m.uopMemFault(f)
	}
	if x86.EvalCond(u.Cond, m.Flags) {
		m.regWrite(u.Reg, 4, v)
	}
	return nil
}

func uMovFromSeg(m *Machine, u *x86.Uop) error {
	if f := m.rmWrite(&u.RM, 2, 0x2B); f != nil { // user data selector
		return m.uopMemFault(f)
	}
	return nil
}

func uMovToSeg(m *Machine, u *x86.Uop) error {
	// Loading an arbitrary selector raises #GP.
	return m.uopFault(FaultPrivileged, m.pc)
}
