package vm

import (
	"bytes"
	"fmt"

	"faultsec/internal/x86"
)

// Snapshot is a complete architectural checkpoint of a Machine: registers,
// EIP, EFLAGS, instruction counters, fuel, armed breakpoints, and a deep
// copy of every mapped memory region. It is the campaign engine's
// fast-forward primitive: the golden prefix from _start to the injection
// breakpoint runs once per target instruction, and every bit-flip
// experiment on that target restores the snapshot instead of re-executing
// the prefix.
//
// A Snapshot is immutable after capture and safe for concurrent Restore
// from multiple goroutines.
type Snapshot struct {
	regs  [x86.NumRegs]uint32
	eip   uint32
	flags uint32
	steps uint64
	fuel  uint64
	tsc   uint64

	// regions are deep copies of the machine's address space, in address
	// order (same order as Memory.Regions).
	regions []Region

	// breakpoints are the armed breakpoints at capture time (typically the
	// injection breakpoint itself, since capture happens on BreakpointHit).
	breakpoints []uint32

	// cfValid is shared by reference: the watchdog signature set is
	// read-only for the lifetime of a campaign.
	cfValid map[uint32]struct{}

	// icache is the frozen view of the captured machine's predecoded
	// instruction tables (nil when it had none). The tables are shared by
	// reference with every restored machine — the decode work of the
	// golden prefix is paid once per snapshot, not once per restore — and
	// are immutable from capture on: the capturing machine's later decodes
	// go to its private local overlay.
	icache *icacheSnap
}

// Snapshot captures the machine's architectural state. The machine must be
// stopped (between Run/Step calls).
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		regs:    m.Regs,
		eip:     m.EIP,
		flags:   m.Flags,
		steps:   m.Steps,
		fuel:    m.Fuel,
		tsc:     m.TSC,
		cfValid: m.CFValid,
		icache:  m.Mem.icacheFreeze(),
	}
	s.regions = make([]Region, 0, len(m.Mem.Regions()))
	for _, r := range m.Mem.Regions() {
		s.regions = append(s.regions, Region{
			Name: r.Name,
			Base: r.Base,
			Perm: r.Perm,
			Data: append([]byte(nil), r.Data...),
		})
	}
	s.breakpoints = make([]uint32, 0, len(m.breakpoints))
	for addr := range m.breakpoints {
		s.breakpoints = append(s.breakpoints, addr)
	}
	return s
}

// Steps returns the retired-instruction count at capture time (the
// injector's activation step count).
func (s *Snapshot) Steps() uint64 { return s.steps }

// EIP returns the program counter at capture time.
func (s *Snapshot) EIP() uint32 { return s.eip }

// NewMachine instantiates a fresh machine from the snapshot with its own
// copy of the address space and the given syscall handler.
func (s *Snapshot) NewMachine(sys SyscallHandler) *Machine {
	m := &Machine{Mem: NewMemory(), Sys: sys}
	// Restore against an empty address space maps fresh regions.
	if err := m.Restore(s); err != nil {
		// Unreachable: an empty memory cannot mismatch the snapshot.
		panic(fmt.Sprintf("vm: restore into fresh machine: %v", err))
	}
	return m
}

// Restore rewinds the machine to the snapshot. When the machine's address
// space has the same region layout as the snapshot (the common case: the
// machine was loaded from the same image, or previously restored from this
// snapshot), region bytes are copied in place and no allocation happens —
// this is the engine's hot path, run once per bit-flip experiment. A
// machine with an empty address space gets fresh region mappings; that
// path is all-or-nothing: on error the address space is left empty, never
// partially populated. Any other layout is an error.
//
// With dirty tracking on (the default), a re-restore from the very
// snapshot the machine last restored from copies back only the pages
// written since — by guest stores, string ops, kernel writes, or injector
// pokes, all of which maintain the per-region dirty bitmap — making
// restore cost proportional to what the run actually changed. Restoring
// from any other snapshot, or with NoDirtyTracking set, falls back to the
// full-image copy.
//
// The syscall handler is left untouched: callers pair each Restore with
// the kernel restored for the same run.
func (m *Machine) Restore(s *Snapshot) error {
	existing := m.Mem.Regions()
	switch {
	case len(existing) == 0:
		// Stage the fresh mappings in a scratch address space and adopt
		// them only once every region mapped cleanly.
		staged := NewMemory()
		for i := range s.regions {
			src := &s.regions[i]
			if err := staged.Map(&Region{
				Name: src.Name,
				Base: src.Base,
				Perm: src.Perm,
				Data: append([]byte(nil), src.Data...),
			}); err != nil {
				return err
			}
		}
		m.Mem.regions = staged.regions
		m.Mem.hot = nil
		m.FullRestores++
		if !m.NoDirtyTracking {
			for _, r := range m.Mem.regions {
				r.armDirty()
			}
		}
	case len(existing) == len(s.regions):
		// Validate the whole layout before touching any bytes, so a
		// mismatch never leaves a half-restored address space.
		for i, r := range existing {
			src := &s.regions[i]
			if r.Name != src.Name || r.Base != src.Base || len(r.Data) != len(src.Data) {
				return fmt.Errorf("vm: restore: region %d is %s@%#x+%d, snapshot has %s@%#x+%d",
					i, r.Name, r.Base, len(r.Data), src.Name, src.Base, len(src.Data))
			}
		}
		if !m.NoDirtyTracking && m.lastSnap == s {
			// O(dirty) path: rewinding to the snapshot the dirty bitmaps
			// diverge from, so only the written pages need copying.
			for i, r := range existing {
				r.Perm = s.regions[i].Perm
				m.DirtyBytesCopied += uint64(r.copyDirtyFrom(s.regions[i].Data))
			}
			if m.ParanoidRestore {
				for i, r := range existing {
					if !bytes.Equal(r.Data, s.regions[i].Data) {
						return fmt.Errorf("vm: paranoid restore: region %q diverges from snapshot after dirty-page restore (untracked write)", r.Name)
					}
				}
			}
		} else {
			m.FullRestores++
			for i, r := range existing {
				src := &s.regions[i]
				r.Perm = src.Perm
				copy(r.Data, src.Data)
				if m.NoDirtyTracking {
					r.dirty = nil
				} else {
					r.armDirty()
				}
			}
		}
	default:
		return fmt.Errorf("vm: restore: machine has %d regions, snapshot has %d",
			len(existing), len(s.regions))
	}
	if m.NoDirtyTracking {
		m.lastSnap = nil
	} else {
		m.lastSnap = s
	}

	// The restored bytes match the snapshot, so the snapshot's frozen
	// decode tables are coherent for this machine; whatever the previous
	// run cached for other bytes is not.
	if m.NoICache {
		m.Mem.icache = nil
	} else {
		m.Mem.icacheInstall(s.icache)
	}

	m.Regs = s.regs
	m.EIP = s.eip
	m.Flags = s.flags
	m.Steps = s.steps
	m.Fuel = s.fuel
	m.TSC = s.tsc
	m.CFValid = s.cfValid
	m.breakpoints = nil
	for _, addr := range s.breakpoints {
		m.SetBreakpoint(addr)
	}
	return nil
}
