package vm

import "faultsec/internal/x86"

// parityEven[b] is true when byte b has an even number of set bits (PF=1).
var parityEven = computeParityTable()

func computeParityTable() [256]bool {
	var t [256]bool
	for i := range t {
		ones := 0
		for b := i; b != 0; b >>= 1 {
			ones += b & 1
		}
		t[i] = ones%2 == 0
	}
	return t
}

func widthMask(w uint8) uint32 {
	switch w {
	case 1:
		return 0xFF
	case 2:
		return 0xFFFF
	default:
		return 0xFFFFFFFF
	}
}

func signBit(w uint8) uint32 {
	switch w {
	case 1:
		return 0x80
	case 2:
		return 0x8000
	default:
		return 0x80000000
	}
}

func (m *Machine) setFlag(f uint32, on bool) {
	if on {
		m.Flags |= f
	} else {
		m.Flags &^= f
	}
}

// GetFlag reports whether flag f is set.
func (m *Machine) GetFlag(f uint32) bool { return m.Flags&f != 0 }

// setSZP sets the sign, zero and parity flags from a result of width w.
func (m *Machine) setSZP(v uint32, w uint8) {
	v &= widthMask(w)
	m.setFlag(x86.FlagZF, v == 0)
	m.setFlag(x86.FlagSF, v&signBit(w) != 0)
	m.setFlag(x86.FlagPF, parityEven[byte(v)])
}

// addFlags computes a+b+carry at width w, sets CF/OF/AF/SF/ZF/PF, and
// returns the masked result.
func (m *Machine) addFlags(a, b, carry uint32, w uint8) uint32 {
	mask := widthMask(w)
	a &= mask
	b &= mask
	r64 := uint64(a) + uint64(b) + uint64(carry)
	r := uint32(r64) & mask
	m.setFlag(x86.FlagCF, r64 > uint64(mask))
	sb := signBit(w)
	m.setFlag(x86.FlagOF, (a^r)&(b^r)&sb != 0)
	m.setFlag(x86.FlagAF, (a^b^r)&0x10 != 0)
	m.setSZP(r, w)
	return r
}

// subFlags computes a-b-borrow at width w, sets CF/OF/AF/SF/ZF/PF, and
// returns the masked result.
func (m *Machine) subFlags(a, b, borrow uint32, w uint8) uint32 {
	mask := widthMask(w)
	a &= mask
	b &= mask
	r64 := uint64(a) - uint64(b) - uint64(borrow)
	r := uint32(r64) & mask
	m.setFlag(x86.FlagCF, uint64(a) < uint64(b)+uint64(borrow))
	sb := signBit(w)
	m.setFlag(x86.FlagOF, (a^b)&(a^r)&sb != 0)
	m.setFlag(x86.FlagAF, (a^b^r)&0x10 != 0)
	m.setSZP(r, w)
	return r
}

// logicFlags clears CF/OF, sets SF/ZF/PF from v, and returns the masked
// result (the AND/OR/XOR/TEST flag rule).
func (m *Machine) logicFlags(v uint32, w uint8) uint32 {
	v &= widthMask(w)
	m.setFlag(x86.FlagCF, false)
	m.setFlag(x86.FlagOF, false)
	m.setSZP(v, w)
	return v
}

// incFlags computes v+1 preserving CF (INC semantics).
func (m *Machine) incFlags(v uint32, w uint8) uint32 {
	cf := m.GetFlag(x86.FlagCF)
	r := m.addFlags(v, 1, 0, w)
	m.setFlag(x86.FlagCF, cf)
	return r
}

// decFlags computes v-1 preserving CF (DEC semantics).
func (m *Machine) decFlags(v uint32, w uint8) uint32 {
	cf := m.GetFlag(x86.FlagCF)
	r := m.subFlags(v, 1, 0, w)
	m.setFlag(x86.FlagCF, cf)
	return r
}
