package vm

import "faultsec/internal/x86"

// statusFlags are the six arithmetic status flags rewritten wholesale by
// ADD/SUB-family retirements.
const statusFlags = x86.FlagCF | x86.FlagPF | x86.FlagAF | x86.FlagZF | x86.FlagSF | x86.FlagOF

// parityEven[b] is true when byte b has an even number of set bits (PF=1).
var parityEven = computeParityTable()

func computeParityTable() [256]bool {
	var t [256]bool
	for i := range t {
		ones := 0
		for b := i; b != 0; b >>= 1 {
			ones += b & 1
		}
		t[i] = ones%2 == 0
	}
	return t
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (m *Machine) setFlag(f uint32, on bool) {
	if on {
		m.Flags |= f
	} else {
		m.Flags &^= f
	}
}

// GetFlag reports whether flag f is set.
func (m *Machine) GetFlag(f uint32) bool { return m.Flags&f != 0 }

// The flag-computation core is parameterized on the precomputed width mask
// and sign bit (the *MS variants) so micro-op handlers, whose Uop carries
// both from bind time, pay no per-retirement width switch. The width-based
// wrappers derive mask and sign bit via the shared x86 helpers and are used
// by the legacy interpreter switch and the slow paths.

// szpBits returns the SF/ZF/PF bits for a masked result — the *MS cores
// accumulate the status word locally and merge into m.Flags once, instead
// of six separate read-modify-writes per ALU retirement.
func szpBits(v, sb uint32) uint32 {
	var fl uint32
	if v == 0 {
		fl |= x86.FlagZF
	}
	if v&sb != 0 {
		fl |= x86.FlagSF
	}
	if parityEven[byte(v)] {
		fl |= x86.FlagPF
	}
	return fl
}

// setSZPMS sets the sign, zero and parity flags from a result under the
// given width mask and sign bit.
func (m *Machine) setSZPMS(v, mask, sb uint32) {
	m.Flags = m.Flags&^(x86.FlagZF|x86.FlagSF|x86.FlagPF) | szpBits(v&mask, sb)
}

// setSZP sets the sign, zero and parity flags from a result of width w.
func (m *Machine) setSZP(v uint32, w uint8) {
	m.setSZPMS(v, x86.WidthMask(w), x86.SignBit(w))
}

// addFlagsMS computes a+b+carry under the given mask/sign bit, sets
// CF/OF/AF/SF/ZF/PF, and returns the masked result.
func (m *Machine) addFlagsMS(a, b, carry, mask, sb uint32) uint32 {
	a &= mask
	b &= mask
	r64 := uint64(a) + uint64(b) + uint64(carry)
	r := uint32(r64) & mask
	fl := szpBits(r, sb)
	if r64 > uint64(mask) {
		fl |= x86.FlagCF
	}
	if (a^r)&(b^r)&sb != 0 {
		fl |= x86.FlagOF
	}
	if (a^b^r)&0x10 != 0 {
		fl |= x86.FlagAF
	}
	m.Flags = m.Flags&^statusFlags | fl
	return r
}

// addFlags computes a+b+carry at width w, sets CF/OF/AF/SF/ZF/PF, and
// returns the masked result.
func (m *Machine) addFlags(a, b, carry uint32, w uint8) uint32 {
	return m.addFlagsMS(a, b, carry, x86.WidthMask(w), x86.SignBit(w))
}

// subFlagsMS computes a-b-borrow under the given mask/sign bit, sets
// CF/OF/AF/SF/ZF/PF, and returns the masked result.
func (m *Machine) subFlagsMS(a, b, borrow, mask, sb uint32) uint32 {
	a &= mask
	b &= mask
	r64 := uint64(a) - uint64(b) - uint64(borrow)
	r := uint32(r64) & mask
	fl := szpBits(r, sb)
	if uint64(a) < uint64(b)+uint64(borrow) {
		fl |= x86.FlagCF
	}
	if (a^b)&(a^r)&sb != 0 {
		fl |= x86.FlagOF
	}
	if (a^b^r)&0x10 != 0 {
		fl |= x86.FlagAF
	}
	m.Flags = m.Flags&^statusFlags | fl
	return r
}

// subFlags computes a-b-borrow at width w, sets CF/OF/AF/SF/ZF/PF, and
// returns the masked result.
func (m *Machine) subFlags(a, b, borrow uint32, w uint8) uint32 {
	return m.subFlagsMS(a, b, borrow, x86.WidthMask(w), x86.SignBit(w))
}

// logicFlagsMS clears CF/OF, sets SF/ZF/PF from v under the given
// mask/sign bit, and returns the masked result (the AND/OR/XOR/TEST flag
// rule).
func (m *Machine) logicFlagsMS(v, mask, sb uint32) uint32 {
	v &= mask
	m.Flags = m.Flags&^(x86.FlagCF|x86.FlagOF|x86.FlagZF|x86.FlagSF|x86.FlagPF) | szpBits(v, sb)
	return v
}

// logicFlags clears CF/OF, sets SF/ZF/PF from v, and returns the masked
// result.
func (m *Machine) logicFlags(v uint32, w uint8) uint32 {
	return m.logicFlagsMS(v, x86.WidthMask(w), x86.SignBit(w))
}

// incFlagsMS computes v+1 preserving CF (INC semantics).
func (m *Machine) incFlagsMS(v, mask, sb uint32) uint32 {
	cf := m.GetFlag(x86.FlagCF)
	r := m.addFlagsMS(v, 1, 0, mask, sb)
	m.setFlag(x86.FlagCF, cf)
	return r
}

// incFlags computes v+1 preserving CF (INC semantics).
func (m *Machine) incFlags(v uint32, w uint8) uint32 {
	return m.incFlagsMS(v, x86.WidthMask(w), x86.SignBit(w))
}

// decFlagsMS computes v-1 preserving CF (DEC semantics).
func (m *Machine) decFlagsMS(v, mask, sb uint32) uint32 {
	cf := m.GetFlag(x86.FlagCF)
	r := m.subFlagsMS(v, 1, 0, mask, sb)
	m.setFlag(x86.FlagCF, cf)
	return r
}

// decFlags computes v-1 preserving CF (DEC semantics).
func (m *Machine) decFlags(v uint32, w uint8) uint32 {
	return m.decFlagsMS(v, x86.WidthMask(w), x86.SignBit(w))
}
