package vm

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"faultsec/internal/x86"
)

// TestUopDispatchCompleteness brute-forces the decoder's reachable opcode
// space — every operand-size/REP prefix crossed with every one- and
// two-byte opcode and every ModRM byte (which selects the /digit group
// extensions) — and asserts that every (Op, Form) pair the decoder can
// emit binds to a real in-range dispatch-table handler. Pairs that bind to
// the UUD fallback must raise #UD identically through the micro-op path
// and the legacy switch, so adding an op to the decoder without a handler
// (or vice versa) fails here rather than diverging silently mid-campaign.
func TestUopDispatchCompleteness(t *testing.T) {
	for i := range uopTable {
		if uopTable[i] == nil {
			t.Fatalf("uopTable[%d] is nil; every handler index must dispatch", i)
		}
	}

	type key struct {
		op   x86.Op
		form x86.Form
	}
	seen := map[key][]byte{}
	var buf [x86.MaxInstLen]byte
	try := func(enc ...byte) {
		n := copy(buf[:], enc)
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
		var in x86.Inst
		if err := x86.DecodeInto(&in, buf[:]); err != nil {
			return
		}
		k := key{in.Op, in.Form}
		if _, ok := seen[k]; !ok {
			seen[k] = append([]byte(nil), buf[:]...)
		}
	}
	prefixes := []byte{0x00, 0x66, 0xF3, 0xF2} // 0x00 = no prefix marker
	for _, p := range prefixes {
		for b1 := 0; b1 < 256; b1++ {
			for b2 := 0; b2 < 256; b2++ {
				if p == 0 {
					try(byte(b1), byte(b2))
				} else {
					try(p, byte(b1), byte(b2))
				}
				if b1 == 0x0F {
					// Two-byte opcodes: b2 is the opcode, so sweep the ModRM
					// byte too — 0F groups (e.g. the BT group) dispatch on
					// its reg field.
					for b3 := 0; b3 < 256; b3++ {
						if p == 0 {
							try(byte(b1), byte(b2), byte(b3))
						} else {
							try(p, byte(b1), byte(b2), byte(b3))
						}
					}
				}
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("enumeration decoded nothing")
	}
	t.Logf("decoder emits %d distinct (Op, Form) pairs", len(seen))

	for k, enc := range seen {
		var in x86.Inst
		if err := x86.DecodeInto(&in, enc); err != nil {
			t.Fatalf("re-decode of saved encoding % x failed: %v", enc, err)
		}
		var u x86.Uop
		in.Bind(&u)
		if u.H == x86.UInvalid || u.H >= x86.NumUopHandlers {
			t.Errorf("(op=%v form=%v) binds out of range: H=%d", k.op, k.form, u.H)
			continue
		}
		if u.H == x86.UUD {
			checkUDParity(t, k.op, k.form, enc)
		}
	}
}

// checkUDParity executes one encoding on a uop machine and a NoUops
// machine and requires both to raise the same #UD fault.
func checkUDParity(t *testing.T, op x86.Op, form x86.Form, enc []byte) {
	t.Helper()
	step := func(noUops bool) error {
		mem := NewMemory()
		if err := mem.Map(&Region{Name: "text", Base: 0x1000, Perm: PermRead | PermExec,
			Data: append([]byte(nil), enc...)}); err != nil {
			t.Fatal(err)
		}
		if err := mem.Map(&Region{Name: "stack", Base: 0x3000, Perm: PermRead | PermWrite,
			Data: make([]byte, 256)}); err != nil {
			t.Fatal(err)
		}
		m := New(mem, nopKernel{})
		m.NoUops = noUops
		m.EIP = 0x1000
		m.Regs[x86.ESP] = 0x3000 + 256
		return m.Step()
	}
	uopErr := step(false)
	legacyErr := step(true)
	var f *Fault
	if !errors.As(uopErr, &f) || f.Kind != FaultUndefined {
		t.Errorf("(op=%v form=%v) % x: uop path returned %v, want #UD", op, form, enc, uopErr)
	}
	if !reflect.DeepEqual(uopErr, legacyErr) {
		t.Errorf("(op=%v form=%v) % x: uop path %v, legacy path %v", op, form, enc, uopErr, legacyErr)
	}
}

type nopKernel struct{}

func (nopKernel) Syscall(m *Machine) error { return fmt.Errorf("unexpected syscall") }
