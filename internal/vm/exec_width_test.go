package vm_test

import (
	"errors"
	"testing"

	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

func TestMul8And16(t *testing.T) {
	// mov al, 20 ; mov cl, 13 ; mul cl -> ax = 260
	code := []byte{0xB0, 20, 0xB1, 13, 0xF6, 0xE1}
	m := runALU(t, code, 3)
	if m.Regs[x86.EAX]&0xFFFF != 260 {
		t.Errorf("mul8: ax = %d", m.Regs[x86.EAX]&0xFFFF)
	}
	if !m.GetFlag(x86.FlagCF) { // high byte nonzero
		t.Error("mul8: CF clear with nonzero AH")
	}

	// 16-bit: mov ax, 1000 ; mov cx, 70 ; mul cx -> dx:ax = 70000
	code = []byte{
		0x66, 0xB8, 0xE8, 0x03, // mov ax, 1000
		0x66, 0xB9, 0x46, 0x00, // mov cx, 70
		0x66, 0xF7, 0xE1, // mul cx
	}
	m = runALU(t, code, 3)
	got := m.Regs[x86.EDX]&0xFFFF<<16 | m.Regs[x86.EAX]&0xFFFF
	if got != 70000 {
		t.Errorf("mul16: dx:ax = %d", got)
	}
}

func TestIMul8Signed(t *testing.T) {
	// mov al, -5 ; mov cl, 7 ; imul cl -> ax = -35
	code := []byte{0xB0, 0xFB, 0xB1, 7, 0xF6, 0xE9}
	m := runALU(t, code, 3)
	if int16(m.Regs[x86.EAX]&0xFFFF) != -35 {
		t.Errorf("imul8: ax = %d", int16(m.Regs[x86.EAX]&0xFFFF))
	}
}

func TestDiv8And16(t *testing.T) {
	// ax = 260, divide by cl=13 -> al=20 ah=0
	code := []byte{
		0x66, 0xB8, 0x04, 0x01, // mov ax, 260
		0xB1, 13, // mov cl, 13
		0xF6, 0xF1, // div cl
	}
	m := runALU(t, code, 3)
	if m.Regs[x86.EAX]&0xFF != 20 || m.Regs[x86.EAX]>>8&0xFF != 0 {
		t.Errorf("div8: al=%d ah=%d", m.Regs[x86.EAX]&0xFF, m.Regs[x86.EAX]>>8&0xFF)
	}

	// idiv8 with remainder: ax = -35, cl = 8 -> al = -4, ah = -3
	code = []byte{
		0x66, 0xB8, 0xDD, 0xFF, // mov ax, -35
		0xB1, 8, // mov cl, 8
		0xF6, 0xF9, // idiv cl
	}
	m = runALU(t, code, 3)
	if int8(m.Regs[x86.EAX]&0xFF) != -4 || int8(m.Regs[x86.EAX]>>8&0xFF) != -3 {
		t.Errorf("idiv8: al=%d ah=%d", int8(m.Regs[x86.EAX]&0xFF), int8(m.Regs[x86.EAX]>>8&0xFF))
	}

	// div16: dx:ax = 70000 / cx=70 -> ax=1000 dx=0
	code = []byte{
		0x66, 0xB8, 0x70, 0x11, // mov ax, 0x1170 (70000 & 0xFFFF)
		0x66, 0xBA, 0x01, 0x00, // mov dx, 1 (70000 >> 16)
		0x66, 0xB9, 0x46, 0x00, // mov cx, 70
		0x66, 0xF7, 0xF1, // div cx
	}
	m = runALU(t, code, 4)
	if m.Regs[x86.EAX]&0xFFFF != 1000 || m.Regs[x86.EDX]&0xFFFF != 0 {
		t.Errorf("div16: ax=%d dx=%d", m.Regs[x86.EAX]&0xFFFF, m.Regs[x86.EDX]&0xFFFF)
	}
}

func TestDivOverflowFaults(t *testing.T) {
	// quotient > 0xFF for 8-bit divide: ax=0x1000 / 1 -> #DE
	code := []byte{
		0x66, 0xB8, 0x00, 0x10, // mov ax, 0x1000
		0xB1, 1, // mov cl, 1
		0xF6, 0xF1, // div cl
	}
	m := newMachine(t, code)
	var err error
	for i := 0; i < 3 && err == nil; i++ {
		err = m.Step()
	}
	var fault *vm.Fault
	if !errors.As(err, &fault) || fault.Kind != vm.FaultDivide {
		t.Errorf("div overflow = %v, want #DE", err)
	}
}

func TestRclRcrThroughCarry(t *testing.T) {
	// stc ; mov eax, 0 ; rcl eax, 1 -> eax = 1, CF = 0
	code := []byte{0xF9, 0xB8, 0, 0, 0, 0, 0xD1, 0xD0}
	m := runALU(t, code, 3)
	if m.Regs[x86.EAX] != 1 || m.GetFlag(x86.FlagCF) {
		t.Errorf("rcl: eax=%d CF=%v", m.Regs[x86.EAX], m.GetFlag(x86.FlagCF))
	}
	// stc ; mov eax, 0 ; rcr eax, 1 -> eax = 0x80000000, CF = 0
	code = []byte{0xF9, 0xB8, 0, 0, 0, 0, 0xD1, 0xD8}
	m = runALU(t, code, 3)
	if m.Regs[x86.EAX] != 0x80000000 || m.GetFlag(x86.FlagCF) {
		t.Errorf("rcr: eax=%#x CF=%v", m.Regs[x86.EAX], m.GetFlag(x86.FlagCF))
	}
}

func TestEnter(t *testing.T) {
	// enter 16, 0 equals push ebp; mov ebp, esp; sub esp, 16
	code := []byte{0xC8, 0x10, 0x00, 0x00}
	m := newMachine(t, code)
	esp0 := m.Regs[x86.ESP]
	step(t, m)
	if m.Regs[x86.ESP] != esp0-4-16 {
		t.Errorf("enter: esp moved %d", esp0-m.Regs[x86.ESP])
	}
	if m.Regs[x86.EBP] != esp0-4 {
		t.Errorf("enter: ebp = %#x", m.Regs[x86.EBP])
	}
}

func TestAdcSbbChains(t *testing.T) {
	// 64-bit add via adc: 0xFFFFFFFF + 1 with carry chain.
	code := []byte{
		0xB8, 0xFF, 0xFF, 0xFF, 0xFF, // mov eax, 0xFFFFFFFF (low)
		0xBB, 0x00, 0x00, 0x00, 0x00, // mov ebx, 0 (high)
		0x83, 0xC0, 0x01, // add eax, 1 -> CF
		0x83, 0xD3, 0x00, // adc ebx, 0 -> ebx = 1
	}
	m := runALU(t, code, 4)
	if m.Regs[x86.EAX] != 0 || m.Regs[x86.EBX] != 1 {
		t.Errorf("adc chain: eax=%#x ebx=%d", m.Regs[x86.EAX], m.Regs[x86.EBX])
	}
	// sbb: 0 - 1 at low word borrows from high.
	code = []byte{
		0x31, 0xC0, // xor eax, eax
		0xBB, 0x05, 0x00, 0x00, 0x00, // mov ebx, 5
		0x83, 0xE8, 0x01, // sub eax, 1 -> CF
		0x83, 0xDB, 0x00, // sbb ebx, 0 -> ebx = 4
	}
	m = runALU(t, code, 4)
	if m.Regs[x86.EAX] != 0xFFFFFFFF || m.Regs[x86.EBX] != 4 {
		t.Errorf("sbb chain: eax=%#x ebx=%d", m.Regs[x86.EAX], m.Regs[x86.EBX])
	}
}

func TestMiscOps(t *testing.T) {
	// salc with CF set -> al = 0xFF
	code := []byte{0xF9, 0xD6}
	m := runALU(t, code, 2)
	if m.Regs[x86.EAX]&0xFF != 0xFF {
		t.Errorf("salc: al = %#x", m.Regs[x86.EAX]&0xFF)
	}
	// cpuid zeroes the four registers deterministically
	code = []byte{
		0xB8, 1, 2, 3, 4,
		0xBB, 5, 6, 7, 8,
		0x0F, 0xA2,
	}
	m = runALU(t, code, 3)
	if m.Regs[x86.EAX] != 0 || m.Regs[x86.EBX] != 0 || m.Regs[x86.ECX] != 0 || m.Regs[x86.EDX] != 0 {
		t.Error("cpuid left registers nonzero")
	}
	// rdtsc is monotone and deterministic
	code = []byte{0x0F, 0x31, 0x90, 0x0F, 0x31}
	m = newMachine(t, code)
	step(t, m)
	first := m.Regs[x86.EAX]
	step(t, m)
	step(t, m)
	if m.Regs[x86.EAX] <= first {
		t.Error("rdtsc not monotone")
	}
	// sahf moves AH into the low flags
	code = []byte{
		0xB8, 0x00, 0xFF, 0x00, 0x00, // mov eax, 0xFF00 (AH=0xFF)
		0x9E, // sahf
	}
	m = runALU(t, code, 2)
	if !m.GetFlag(x86.FlagCF) || !m.GetFlag(x86.FlagZF) || !m.GetFlag(x86.FlagSF) {
		t.Error("sahf did not set flags from AH")
	}
	// cbw/cwd 16-bit forms
	code = []byte{
		0xB0, 0x80, // mov al, 0x80
		0x66, 0x98, // cbw: ax = 0xFF80
		0x66, 0x99, // cwd: dx = 0xFFFF
	}
	m = runALU(t, code, 3)
	if m.Regs[x86.EAX]&0xFFFF != 0xFF80 {
		t.Errorf("cbw: ax = %#x", m.Regs[x86.EAX]&0xFFFF)
	}
	if m.Regs[x86.EDX]&0xFFFF != 0xFFFF {
		t.Errorf("cwd: dx = %#x", m.Regs[x86.EDX]&0xFFFF)
	}
	// into with OF clear is a no-op; bound always faults here
	code = []byte{0xCE, 0x90}
	m = runALU(t, code, 2)
	if m.EIP != 0x1002 {
		t.Errorf("into fell through wrong: eip=%#x", m.EIP)
	}
}

func TestSegmentRegisterStandins(t *testing.T) {
	// push es (0x06) pushes a selector; pop es (0x07) discards.
	code := []byte{0x06, 0x07, 0x90}
	m := runALU(t, code, 2)
	if m.EIP != 0x1002 {
		t.Errorf("seg push/pop: eip=%#x", m.EIP)
	}
	// mov r/m16, sreg stores the fake selector.
	code = []byte{0x8C, 0xD8} // mov ax, ds
	m = runALU(t, code, 1)
	if m.Regs[x86.EAX]&0xFFFF != 0x2B {
		t.Errorf("mov from sreg: ax = %#x", m.Regs[x86.EAX]&0xFFFF)
	}
	// mov sreg, r/m16 faults (#GP)
	code = []byte{0x8E, 0xD8}
	m2 := newMachine(t, code)
	err := m2.Run()
	var fault *vm.Fault
	if !errors.As(err, &fault) || fault.Kind != vm.FaultPrivileged {
		t.Errorf("mov to sreg = %v, want #GP", err)
	}
}

func TestStackFaultOnOverflow(t *testing.T) {
	// Push in a loop until the stack region is exhausted.
	code := []byte{0x50, 0xEB, 0xFD} // L: push eax ; jmp L
	m := newMachine(t, code)
	err := m.Run()
	var fault *vm.Fault
	if !errors.As(err, &fault) || fault.Kind != vm.FaultMemory {
		t.Errorf("stack overflow = %v, want memory fault", err)
	}
}
