package vm

import "faultsec/internal/x86"

// Control-flow micro-op handlers. Step has already set m.EIP to the
// fall-through address, so taken branches add the (pre-sign-extended)
// displacement to it, exactly like the legacy switch's `next`.

func uJcc(m *Machine, u *x86.Uop) error {
	if x86.EvalCond(u.Cond, m.Flags) {
		m.EIP += uint32(u.Rel)
	}
	return nil
}

func uJmpRel(m *Machine, u *x86.Uop) error {
	m.EIP += uint32(u.Rel)
	return nil
}

func uJmpRM(m *Machine, u *x86.Uop) error {
	v, f := m.rmRead(&u.RM, 4)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.EIP = v
	return nil
}

func uJCXZ(m *Machine, u *x86.Uop) error {
	if m.Regs[x86.ECX] == 0 {
		m.EIP += uint32(u.Rel)
	}
	return nil
}

func uLoop(m *Machine, u *x86.Uop) error {
	m.Regs[x86.ECX]--
	if m.Regs[x86.ECX] != 0 {
		m.EIP += uint32(u.Rel)
	}
	return nil
}

func uLoopE(m *Machine, u *x86.Uop) error {
	m.Regs[x86.ECX]--
	if m.Regs[x86.ECX] != 0 && m.GetFlag(x86.FlagZF) {
		m.EIP += uint32(u.Rel)
	}
	return nil
}

func uLoopNE(m *Machine, u *x86.Uop) error {
	m.Regs[x86.ECX]--
	if m.Regs[x86.ECX] != 0 && !m.GetFlag(x86.FlagZF) {
		m.EIP += uint32(u.Rel)
	}
	return nil
}

func uCallRel(m *Machine, u *x86.Uop) error {
	target := m.EIP + uint32(u.Rel)
	if f := m.push(m.EIP); f != nil {
		return m.uopMemFault(f)
	}
	m.EIP = target
	return nil
}

func uCallRM(m *Machine, u *x86.Uop) error {
	target, f := m.rmRead(&u.RM, 4)
	if f != nil {
		return m.uopMemFault(f)
	}
	if f := m.push(m.EIP); f != nil {
		return m.uopMemFault(f)
	}
	m.EIP = target
	return nil
}

func uRet(m *Machine, u *x86.Uop) error {
	v, f := m.pop()
	if f != nil {
		return m.uopMemFault(f)
	}
	// The plain RET decodes with Imm == 0, so the stack adjustment is a
	// no-op for it and one handler covers both encodings.
	m.Regs[x86.ESP] += uint32(u.Imm)
	m.EIP = v
	return nil
}

func uInt3(m *Machine, u *x86.Uop) error {
	return m.uopFault(FaultBreak, m.pc)
}

func uInto(m *Machine, u *x86.Uop) error {
	if m.GetFlag(x86.FlagOF) {
		return m.uopFault(FaultBreak, m.pc)
	}
	return nil
}

func uSyscall(m *Machine, u *x86.Uop) error {
	return m.Sys.Syscall(m)
}

func uBadInt(m *Machine, u *x86.Uop) error {
	return m.uopFault(FaultSyscall, m.pc)
}

func uBound(m *Machine, u *x86.Uop) error {
	// Bounds are essentially never satisfied on corrupted paths; model
	// the #BR exception (SIGSEGV on Linux).
	return m.uopFault(FaultMemory, m.effAddr(&u.RM))
}
