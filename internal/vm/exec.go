package vm

import (
	"faultsec/internal/x86"
)

// exec executes one decoded instruction via the legacy monolithic switch.
// pc is the address of the instruction; m.EIP is advanced here.
//
// This path survives only as the NoUops ablation knob (and as the
// reference semantics the micro-op pipeline is differentially tested
// against): the warm path binds each decode to a handler index once and
// dispatches through uopTable (see exec_uop.go and the exec_*.go handler
// families), so this switch no longer runs per retirement unless
// Machine.NoUops is set.
//
//nolint:gocyclo // a CPU dispatch loop is inherently one large switch
func (m *Machine) exec(in *x86.Inst, pc uint32) error {
	next := pc + uint32(in.Len)
	m.EIP = next

	fault := func(k FaultKind, addr uint32) error {
		return &Fault{Kind: k, Addr: addr, PC: pc}
	}
	memFault := func(f *Fault) error {
		f.PC = pc
		return f
	}

	// src/dst resolution for the common two-operand forms.
	loadOperands := func() (dst uint32, src uint32, f *Fault) {
		switch in.Form {
		case x86.FormRMReg:
			dst, f = m.rmRead(&in.RM, in.W)
			src = m.regRead(in.Reg, in.W)
		case x86.FormRegRM:
			dst = m.regRead(in.Reg, in.W)
			src, f = m.rmRead(&in.RM, in.W)
		case x86.FormRMImm:
			dst, f = m.rmRead(&in.RM, in.W)
			src = uint32(in.Imm)
		case x86.FormAccImm:
			dst = m.regRead(x86.EAX, in.W)
			src = uint32(in.Imm)
		}
		return dst, src, f
	}
	storeResult := func(v uint32) *Fault {
		switch in.Form {
		case x86.FormRMReg, x86.FormRMImm:
			return m.rmWrite(&in.RM, in.W, v)
		case x86.FormRegRM:
			m.regWrite(in.Reg, in.W, v)
		case x86.FormAccImm:
			m.regWrite(x86.EAX, in.W, v)
		}
		return nil
	}

	switch in.Op {
	case x86.OpAdd, x86.OpAdc, x86.OpSub, x86.OpSbb, x86.OpCmp,
		x86.OpAnd, x86.OpOr, x86.OpXor, x86.OpTest:
		dst, src, f := loadOperands()
		if f != nil {
			return memFault(f)
		}
		var r uint32
		switch in.Op {
		case x86.OpAdd:
			r = m.addFlags(dst, src, 0, in.W)
		case x86.OpAdc:
			r = m.addFlags(dst, src, b2u(m.GetFlag(x86.FlagCF)), in.W)
		case x86.OpSub, x86.OpCmp:
			r = m.subFlags(dst, src, 0, in.W)
		case x86.OpSbb:
			r = m.subFlags(dst, src, b2u(m.GetFlag(x86.FlagCF)), in.W)
		case x86.OpAnd, x86.OpTest:
			r = m.logicFlags(dst&src, in.W)
		case x86.OpOr:
			r = m.logicFlags(dst|src, in.W)
		case x86.OpXor:
			r = m.logicFlags(dst^src, in.W)
		}
		if in.Op == x86.OpCmp || in.Op == x86.OpTest {
			return nil
		}
		if f := storeResult(r); f != nil {
			return memFault(f)
		}
		return nil

	case x86.OpMov:
		switch in.Form {
		case x86.FormRMReg:
			if f := m.rmWrite(&in.RM, in.W, m.regRead(in.Reg, in.W)); f != nil {
				return memFault(f)
			}
		case x86.FormRegRM:
			v, f := m.rmRead(&in.RM, in.W)
			if f != nil {
				return memFault(f)
			}
			m.regWrite(in.Reg, in.W, v)
		case x86.FormRMImm:
			if f := m.rmWrite(&in.RM, in.W, uint32(in.Imm)); f != nil {
				return memFault(f)
			}
		case x86.FormRegImm:
			m.regWrite(in.Reg, in.W, uint32(in.Imm))
		case x86.FormMoffsLoad:
			v, f := m.Mem.ReadW(uint32(in.Imm), in.W)
			if f != nil {
				return memFault(f)
			}
			m.regWrite(x86.EAX, in.W, v)
		case x86.FormMoffsStore:
			if f := m.Mem.WriteW(uint32(in.Imm), m.regRead(x86.EAX, in.W), in.W); f != nil {
				return memFault(f)
			}
		}
		return nil

	case x86.OpMovZX, x86.OpMovSX:
		v, f := m.rmRead(&in.RM, in.W) // in.W is the source width
		if f != nil {
			return memFault(f)
		}
		if in.Op == x86.OpMovSX {
			if in.W == 1 {
				v = uint32(int32(int8(v)))
			} else {
				v = uint32(int32(int16(v)))
			}
		}
		m.regWrite(in.Reg, 4, v)
		return nil

	case x86.OpLea:
		m.regWrite(in.Reg, 4, m.effAddr(&in.RM))
		return nil

	case x86.OpXchg:
		if in.Form == x86.FormReg { // xchg eax, r32
			m.Regs[x86.EAX], m.Regs[in.Reg] = m.Regs[in.Reg], m.Regs[x86.EAX]
			return nil
		}
		rv := m.regRead(in.Reg, in.W)
		mv, f := m.rmRead(&in.RM, in.W)
		if f != nil {
			return memFault(f)
		}
		if f := m.rmWrite(&in.RM, in.W, rv); f != nil {
			return memFault(f)
		}
		m.regWrite(in.Reg, in.W, mv)
		return nil

	case x86.OpPush:
		var v uint32
		switch in.Form {
		case x86.FormReg:
			v = m.Regs[in.Reg]
		case x86.FormImm:
			v = uint32(in.Imm)
		case x86.FormRM:
			var f *Fault
			v, f = m.rmRead(&in.RM, 4)
			if f != nil {
				return memFault(f)
			}
		}
		if f := m.push(v); f != nil {
			return memFault(f)
		}
		return nil

	case x86.OpPop:
		v, f := m.pop()
		if f != nil {
			return memFault(f)
		}
		switch in.Form {
		case x86.FormReg:
			m.Regs[in.Reg] = v
		case x86.FormRM:
			if f := m.rmWrite(&in.RM, 4, v); f != nil {
				return memFault(f)
			}
		case x86.FormNone:
			// pop segment register: value discarded
		}
		return nil

	case x86.OpPushA:
		sp := m.Regs[x86.ESP]
		for _, r := range [...]uint8{x86.EAX, x86.ECX, x86.EDX, x86.EBX} {
			if f := m.push(m.Regs[r]); f != nil {
				return memFault(f)
			}
		}
		if f := m.push(sp); f != nil {
			return memFault(f)
		}
		for _, r := range [...]uint8{x86.EBP, x86.ESI, x86.EDI} {
			if f := m.push(m.Regs[r]); f != nil {
				return memFault(f)
			}
		}
		return nil

	case x86.OpPopA:
		order := [...]uint8{x86.EDI, x86.ESI, x86.EBP, x86.ESP, x86.EBX, x86.EDX, x86.ECX, x86.EAX}
		for _, r := range order {
			v, f := m.pop()
			if f != nil {
				return memFault(f)
			}
			if r != x86.ESP { // popa discards the saved ESP
				m.Regs[r] = v
			}
		}
		return nil

	case x86.OpPushF:
		if f := m.push(m.Flags | 0x2); f != nil { // bit 1 always set on x86
			return memFault(f)
		}
		return nil

	case x86.OpPopF:
		v, f := m.pop()
		if f != nil {
			return memFault(f)
		}
		const writable = x86.FlagCF | x86.FlagPF | x86.FlagAF | x86.FlagZF |
			x86.FlagSF | x86.FlagDF | x86.FlagOF
		m.Flags = v & writable
		return nil

	case x86.OpInc, x86.OpDec:
		var v uint32
		var f *Fault
		if in.Form == x86.FormReg {
			v = m.regRead(in.Reg, in.W)
		} else {
			v, f = m.rmRead(&in.RM, in.W)
			if f != nil {
				return memFault(f)
			}
		}
		if in.Op == x86.OpInc {
			v = m.incFlags(v, in.W)
		} else {
			v = m.decFlags(v, in.W)
		}
		if in.Form == x86.FormReg {
			m.regWrite(in.Reg, in.W, v)
			return nil
		}
		if f := m.rmWrite(&in.RM, in.W, v); f != nil {
			return memFault(f)
		}
		return nil

	case x86.OpNot:
		v, f := m.rmRead(&in.RM, in.W)
		if f != nil {
			return memFault(f)
		}
		if f := m.rmWrite(&in.RM, in.W, ^v); f != nil {
			return memFault(f)
		}
		return nil

	case x86.OpNeg:
		v, f := m.rmRead(&in.RM, in.W)
		if f != nil {
			return memFault(f)
		}
		r := m.subFlags(0, v, 0, in.W)
		if f := m.rmWrite(&in.RM, in.W, r); f != nil {
			return memFault(f)
		}
		return nil

	case x86.OpMul:
		v, f := m.rmRead(&in.RM, in.W)
		if f != nil {
			return memFault(f)
		}
		m.execMul(v, in.W, false)
		return nil

	case x86.OpIMul:
		switch in.Form {
		case x86.FormRM: // one-operand: edx:eax = eax * r/m
			v, f := m.rmRead(&in.RM, in.W)
			if f != nil {
				return memFault(f)
			}
			m.execMul(v, in.W, true)
			return nil
		case x86.FormRegRM, x86.FormRegRMImm:
			v, f := m.rmRead(&in.RM, 4)
			if f != nil {
				return memFault(f)
			}
			a := int64(int32(v))
			var b int64
			if in.Form == x86.FormRegRMImm {
				b = int64(in.Imm)
			} else {
				b = int64(int32(m.regRead(in.Reg, 4)))
			}
			p := a * b
			r := uint32(p)
			ovf := p != int64(int32(r))
			m.setFlag(x86.FlagCF, ovf)
			m.setFlag(x86.FlagOF, ovf)
			m.regWrite(in.Reg, 4, r)
			return nil
		}
		return fault(FaultUndefined, pc)

	case x86.OpDiv, x86.OpIDiv:
		v, f := m.rmRead(&in.RM, in.W)
		if f != nil {
			return memFault(f)
		}
		if err := m.execDiv(v, in.W, in.Op == x86.OpIDiv); err != nil {
			return fault(FaultDivide, pc)
		}
		return nil

	case x86.OpRol, x86.OpRor, x86.OpRcl, x86.OpRcr,
		x86.OpShl, x86.OpShr, x86.OpSar:
		var count uint32
		if in.Form == x86.FormRM { // count in CL
			count = m.Regs[x86.ECX] & 0x1F
		} else {
			count = uint32(in.Imm) & 0x1F
		}
		v, f := m.rmRead(&in.RM, in.W)
		if f != nil {
			return memFault(f)
		}
		r := m.execShift(in.Op, v, count, in.W)
		if f := m.rmWrite(&in.RM, in.W, r); f != nil {
			return memFault(f)
		}
		return nil

	case x86.OpJcc:
		if x86.EvalCond(in.Cond, m.Flags) {
			m.EIP = next + uint32(in.Rel)
		}
		return nil

	case x86.OpSetcc:
		v := uint32(0)
		if x86.EvalCond(in.Cond, m.Flags) {
			v = 1
		}
		if f := m.rmWrite(&in.RM, 1, v); f != nil {
			return memFault(f)
		}
		return nil

	case x86.OpCMov:
		v, f := m.rmRead(&in.RM, 4)
		if f != nil {
			return memFault(f)
		}
		if x86.EvalCond(in.Cond, m.Flags) {
			m.regWrite(in.Reg, 4, v)
		}
		return nil

	case x86.OpJmp:
		if in.Form == x86.FormRM {
			v, f := m.rmRead(&in.RM, 4)
			if f != nil {
				return memFault(f)
			}
			m.EIP = v
			return nil
		}
		m.EIP = next + uint32(in.Rel)
		return nil

	case x86.OpJCXZ:
		if m.Regs[x86.ECX] == 0 {
			m.EIP = next + uint32(in.Rel)
		}
		return nil

	case x86.OpLoop, x86.OpLoopE, x86.OpLoopNE:
		m.Regs[x86.ECX]--
		take := m.Regs[x86.ECX] != 0
		switch in.Op {
		case x86.OpLoopE:
			take = take && m.GetFlag(x86.FlagZF)
		case x86.OpLoopNE:
			take = take && !m.GetFlag(x86.FlagZF)
		}
		if take {
			m.EIP = next + uint32(in.Rel)
		}
		return nil

	case x86.OpCall:
		var target uint32
		if in.Form == x86.FormRM {
			v, f := m.rmRead(&in.RM, 4)
			if f != nil {
				return memFault(f)
			}
			target = v
		} else {
			target = next + uint32(in.Rel)
		}
		if f := m.push(next); f != nil {
			return memFault(f)
		}
		m.EIP = target
		return nil

	case x86.OpRet:
		v, f := m.pop()
		if f != nil {
			return memFault(f)
		}
		if in.Form == x86.FormImm {
			m.Regs[x86.ESP] += uint32(in.Imm)
		}
		m.EIP = v
		return nil

	case x86.OpLeave:
		m.Regs[x86.ESP] = m.Regs[x86.EBP]
		v, f := m.pop()
		if f != nil {
			return memFault(f)
		}
		m.Regs[x86.EBP] = v
		return nil

	case x86.OpEnter:
		if f := m.push(m.Regs[x86.EBP]); f != nil {
			return memFault(f)
		}
		m.Regs[x86.EBP] = m.Regs[x86.ESP]
		m.Regs[x86.ESP] -= uint32(in.Imm)
		return nil

	case x86.OpIntN:
		if in.Imm == 0x80 {
			return m.Sys.Syscall(m)
		}
		return fault(FaultSyscall, pc)

	case x86.OpInt3:
		return fault(FaultBreak, pc)

	case x86.OpInto:
		if m.GetFlag(x86.FlagOF) {
			return fault(FaultBreak, pc)
		}
		return nil

	case x86.OpBound:
		// Bounds are essentially never satisfied on corrupted paths; model
		// the #BR exception (SIGSEGV on Linux).
		return fault(FaultMemory, m.effAddr(&in.RM))

	case x86.OpNop, x86.OpArpl:
		return nil

	case x86.OpCbw:
		if in.W == 2 { // cbw: ax = sext(al)
			m.regWrite(x86.EAX, 2, uint32(int32(int8(m.Regs[x86.EAX]))))
		} else { // cwde: eax = sext(ax)
			m.Regs[x86.EAX] = uint32(int32(int16(m.Regs[x86.EAX])))
		}
		return nil

	case x86.OpCwd:
		if in.W == 2 { // cwd: dx = sign(ax)
			s := uint32(0)
			if m.Regs[x86.EAX]&0x8000 != 0 {
				s = 0xFFFF
			}
			m.regWrite(x86.EDX, 2, s)
		} else { // cdq: edx = sign(eax)
			s := uint32(0)
			if m.Regs[x86.EAX]&0x80000000 != 0 {
				s = 0xFFFFFFFF
			}
			m.Regs[x86.EDX] = s
		}
		return nil

	case x86.OpClc:
		m.setFlag(x86.FlagCF, false)
		return nil
	case x86.OpStc:
		m.setFlag(x86.FlagCF, true)
		return nil
	case x86.OpCmc:
		m.setFlag(x86.FlagCF, !m.GetFlag(x86.FlagCF))
		return nil
	case x86.OpCld:
		m.setFlag(x86.FlagDF, false)
		return nil
	case x86.OpStd:
		m.setFlag(x86.FlagDF, true)
		return nil

	case x86.OpSahf:
		const mask = x86.FlagCF | x86.FlagPF | x86.FlagAF | x86.FlagZF | x86.FlagSF
		m.Flags = m.Flags&^mask | (m.Regs[x86.EAX]>>8)&mask
		return nil
	case x86.OpLahf:
		m.regWrite(4, 1, m.Flags&0xFF|0x2) // AH (reg 4 at width 1)
		return nil

	case x86.OpSalc:
		v := uint32(0)
		if m.GetFlag(x86.FlagCF) {
			v = 0xFF
		}
		m.regWrite(x86.EAX, 1, v)
		return nil

	case x86.OpXlat:
		v, f := m.Mem.Read8(m.Regs[x86.EBX] + m.Regs[x86.EAX]&0xFF)
		if f != nil {
			return memFault(f)
		}
		m.regWrite(x86.EAX, 1, v)
		return nil

	case x86.OpMovs, x86.OpCmps, x86.OpStos, x86.OpLods, x86.OpScas:
		return m.execString(in, pc)

	case x86.OpBt, x86.OpBts, x86.OpBtr, x86.OpBtc:
		return m.execBitTest(in, pc)

	case x86.OpShld, x86.OpShrd:
		var count uint32
		if in.Imm == -1 {
			count = m.Regs[x86.ECX] & 0x1F
		} else {
			count = uint32(in.Imm) & 0x1F
		}
		v, f := m.rmRead(&in.RM, 4)
		if f != nil {
			return memFault(f)
		}
		if count == 0 {
			return nil
		}
		other := m.regRead(in.Reg, 4)
		var r uint32
		if in.Op == x86.OpShld {
			r = v<<count | other>>(32-count)
			m.setFlag(x86.FlagCF, v>>(32-count)&1 != 0)
		} else {
			r = v>>count | other<<(32-count)
			m.setFlag(x86.FlagCF, v>>(count-1)&1 != 0)
		}
		m.setSZP(r, 4)
		if f := m.rmWrite(&in.RM, 4, r); f != nil {
			return memFault(f)
		}
		return nil

	case x86.OpXadd:
		rv := m.regRead(in.Reg, in.W)
		mv, f := m.rmRead(&in.RM, in.W)
		if f != nil {
			return memFault(f)
		}
		sum := m.addFlags(mv, rv, 0, in.W)
		if f := m.rmWrite(&in.RM, in.W, sum); f != nil {
			return memFault(f)
		}
		m.regWrite(in.Reg, in.W, mv)
		return nil

	case x86.OpCmpxchg:
		acc := m.regRead(x86.EAX, in.W)
		mv, f := m.rmRead(&in.RM, in.W)
		if f != nil {
			return memFault(f)
		}
		m.subFlags(acc, mv, 0, in.W)
		if acc == mv {
			if f := m.rmWrite(&in.RM, in.W, m.regRead(in.Reg, in.W)); f != nil {
				return memFault(f)
			}
		} else {
			m.regWrite(x86.EAX, in.W, mv)
		}
		return nil

	case x86.OpBswap:
		v := m.Regs[in.Reg]
		m.Regs[in.Reg] = v<<24 | v>>24 | (v&0xFF00)<<8 | (v&0xFF0000)>>8
		return nil

	case x86.OpRdtsc:
		m.Regs[x86.EAX] = uint32(m.TSC)
		m.Regs[x86.EDX] = uint32(m.TSC >> 32)
		return nil

	case x86.OpCpuid:
		m.Regs[x86.EAX] = 0
		m.Regs[x86.EBX] = 0
		m.Regs[x86.ECX] = 0
		m.Regs[x86.EDX] = 0
		return nil

	case x86.OpMovFromSeg:
		if f := m.rmWrite(&in.RM, 2, 0x2B); f != nil { // user data selector
			return memFault(f)
		}
		return nil

	case x86.OpMovToSeg:
		// Loading an arbitrary selector raises #GP.
		return fault(FaultPrivileged, pc)

	case x86.OpHlt, x86.OpPrivileged:
		return fault(FaultPrivileged, pc)
	}

	return fault(FaultUndefined, pc)
}
