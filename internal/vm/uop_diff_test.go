package vm

import (
	"math/rand"
	"reflect"
	"testing"

	"faultsec/internal/x86"
)

// diffMachine builds one machine over a private copy of the given code and
// data images, so the uop and NoUops runs cannot share state.
func diffMachine(t *testing.T, code []byte, noUops bool, regs [x86.NumRegs]uint32) *Machine {
	t.Helper()
	mem := NewMemory()
	if err := mem.Map(&Region{Name: "text", Base: 0x1000, Perm: PermRead | PermExec,
		Data: append([]byte(nil), code...)}); err != nil {
		t.Fatal(err)
	}
	if err := mem.Map(&Region{Name: "data", Base: 0x2000, Perm: PermRead | PermWrite,
		Data: make([]byte, 4096)}); err != nil {
		t.Fatal(err)
	}
	if err := mem.Map(&Region{Name: "stack", Base: 0x8000, Perm: PermRead | PermWrite,
		Data: make([]byte, 4096)}); err != nil {
		t.Fatal(err)
	}
	m := New(mem, nopKernel{})
	m.NoUops = noUops
	m.EIP = 0x1000
	m.Regs = regs
	return m
}

// memImage flattens every region's bytes for comparison.
func memImage(m *Machine) map[string][]byte {
	out := make(map[string][]byte, len(m.Mem.regions))
	for _, r := range m.Mem.regions {
		out[r.Name] = append([]byte(nil), r.Data...)
	}
	return out
}

// stepDiff lock-steps the two machines for at most maxSteps retirements,
// comparing the full architectural state after every step. It returns on
// the first terminating error (which must also be identical).
func stepDiff(t *testing.T, label string, mu, ml *Machine, maxSteps int) {
	t.Helper()
	for i := 0; i < maxSteps; i++ {
		eu := mu.Step()
		el := ml.Step()
		if !reflect.DeepEqual(eu, el) {
			t.Fatalf("%s: step %d: uop err %v, legacy err %v", label, i, eu, el)
		}
		if mu.Regs != ml.Regs || mu.EIP != ml.EIP || mu.Flags != ml.Flags ||
			mu.Steps != ml.Steps {
			t.Fatalf("%s: step %d diverged:\nuop:    regs=%v eip=%#x flags=%#x steps=%d\nlegacy: regs=%v eip=%#x flags=%#x steps=%d",
				label, i,
				mu.Regs, mu.EIP, mu.Flags, mu.Steps,
				ml.Regs, ml.EIP, ml.Flags, ml.Steps)
		}
		if eu != nil {
			break
		}
	}
	if !reflect.DeepEqual(memImage(mu), memImage(ml)) {
		t.Fatalf("%s: memory images diverged", label)
	}
}

// TestUopDifferentialRandom drives fixed-seed random byte streams — mostly
// garbage interleaved with valid-looking opcode bytes, the same population
// an injected bit flip produces — through a micro-op machine and a NoUops
// machine in lock-step and requires identical faults, flags, registers,
// EIP, step counts and memory at every retirement.
func TestUopDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5EC0DE))
	const rounds = 400
	for round := 0; round < rounds; round++ {
		n := 16 + rng.Intn(240)
		code := make([]byte, n)
		rng.Read(code)
		// Bias some bytes toward common opcodes so runs retire more than
		// one instruction before faulting.
		common := []byte{0x01, 0x29, 0x31, 0x39, 0x40, 0x48, 0x50, 0x58,
			0x74, 0x75, 0x83, 0x89, 0x8B, 0xB8, 0xC3, 0xEB, 0xF7, 0x0F}
		for i := 0; i < n/3; i++ {
			code[rng.Intn(n)] = common[rng.Intn(len(common))]
		}
		var regs [x86.NumRegs]uint32
		for i := range regs {
			// Mostly in-bounds pointers so memory operands sometimes hit
			// mapped regions instead of always faulting.
			switch rng.Intn(3) {
			case 0:
				regs[i] = 0x2000 + uint32(rng.Intn(2048))
			case 1:
				regs[i] = uint32(rng.Intn(1 << 12))
			default:
				regs[i] = rng.Uint32()
			}
		}
		regs[x86.ESP] = 0x8000 + 2048
		mu := diffMachine(t, code, false, regs)
		ml := diffMachine(t, code, true, regs)
		stepDiff(t, "random", mu, ml, 300)
	}
}

// TestUopDifferentialFigureCorpus replays the paper's Figure 1/2/3
// corruption patterns (condition reversal, register-operand flip,
// branch-offset flip, immediate bit flip) as a fixed corpus through both
// execution paths.
func TestUopDifferentialFigureCorpus(t *testing.T) {
	// A small password-check-shaped program:
	//   mov eax, [0x2000]   ; rval
	//   cmp eax, 0
	//   je +2 (deny path skip)
	//   inc ebx             ; "grant"
	//   push eax
	//   push ecx
	//   mov ecx, 256
	//   add ecx, 1
	//   ret (faults: stack top is data)
	base := []byte{
		0xA1, 0x00, 0x20, 0x00, 0x00, // mov eax, [0x2000]
		0x83, 0xF8, 0x00, // cmp eax, 0
		0x74, 0x01, // je +1
		0x43,                         // inc ebx
		0x50,                         // push eax
		0x51,                         // push ecx
		0xB9, 0x00, 0x01, 0x00, 0x00, // mov ecx, 256
		0x83, 0xC1, 0x01, // add ecx, 1
		0xC3, // ret
	}
	corpus := []struct {
		name string
		mut  func([]byte)
	}{
		{"golden", func(c []byte) {}},
		// Figure 1: je -> jne at the rval test (0x74 -> 0x75).
		{"je-to-jne", func(c []byte) { c[8] = 0x75 }},
		// Figure 1: push eax -> push ecx (0x50 -> 0x51).
		{"push-eax-to-ecx", func(c []byte) { c[11] = 0x51 }},
		// Branch-offset bit flips jumping into/over the grant path.
		{"branch-offset-bit0", func(c []byte) { c[9] ^= 1 << 0 }},
		{"branch-offset-bit2", func(c []byte) { c[9] ^= 1 << 2 }},
		{"branch-offset-bit7", func(c []byte) { c[9] ^= 1 << 7 }},
		// Figure 3: immediate bit 9 flip, 256 -> 768.
		{"imm-256-to-768", func(c []byte) { c[15] ^= 1 << 1 }},
		// Opcode flips that land mid-family: cmp -> sub group, ret -> #UD
		// territory.
		{"group-digit-flip", func(c []byte) { c[6] ^= 1 << 3 }},
		{"opcode-high-bit", func(c []byte) { c[21] ^= 1 << 6 }},
	}
	for _, tc := range corpus {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			code := append([]byte(nil), base...)
			tc.mut(code)
			var regs [x86.NumRegs]uint32
			regs[x86.ESP] = 0x8000 + 2048
			mu := diffMachine(t, code, false, regs)
			ml := diffMachine(t, code, true, regs)
			stepDiff(t, tc.name, mu, ml, 300)
		})
	}
}
