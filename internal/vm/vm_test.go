package vm_test

import (
	"errors"
	"testing"
	"testing/quick"

	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

// exitSys is a trivial syscall handler: int 0x80 with EAX=1 exits.
type exitSys struct{}

func (exitSys) Syscall(m *vm.Machine) error {
	if m.Regs[x86.EAX] == 1 {
		return &vm.ExitStatus{Code: int(int32(m.Regs[x86.EBX]))}
	}
	m.Regs[x86.EAX] = ^uint32(37) // -ENOSYS
	return nil
}

// newMachine maps code at 0x1000 (r-x), data at 0x8000 (rw), and a stack.
func newMachine(t *testing.T, code []byte) *vm.Machine {
	t.Helper()
	mem := vm.NewMemory()
	text := make([]byte, 4096)
	copy(text, code)
	if err := mem.Map(&vm.Region{Name: "text", Base: 0x1000, Perm: vm.PermRead | vm.PermExec, Data: text}); err != nil {
		t.Fatal(err)
	}
	if err := mem.Map(&vm.Region{Name: "data", Base: 0x8000, Perm: vm.PermRead | vm.PermWrite, Data: make([]byte, 4096)}); err != nil {
		t.Fatal(err)
	}
	if err := mem.Map(&vm.Region{Name: "stack", Base: 0x20000, Perm: vm.PermRead | vm.PermWrite, Data: make([]byte, 8192)}); err != nil {
		t.Fatal(err)
	}
	m := vm.New(mem, exitSys{})
	m.EIP = 0x1000
	m.Regs[x86.ESP] = 0x20000 + 8192 - 16
	return m
}

// step executes one instruction and fails the test on error.
func step(t *testing.T, m *vm.Machine) {
	t.Helper()
	if err := m.Step(); err != nil {
		t.Fatalf("step at %#x: %v", m.EIP, err)
	}
}

func TestMemoryProtection(t *testing.T) {
	mem := vm.NewMemory()
	if err := mem.Map(&vm.Region{Name: "ro", Base: 0x1000, Perm: vm.PermRead, Data: make([]byte, 16)}); err != nil {
		t.Fatal(err)
	}
	if _, f := mem.Read8(0x1000); f != nil {
		t.Errorf("read of readable region faulted: %v", f)
	}
	if f := mem.Write8(0x1000, 1); f == nil {
		t.Error("write to read-only region succeeded")
	}
	if _, f := mem.Fetch(0x1000, 4); f == nil {
		t.Error("fetch from non-executable region succeeded")
	}
	if _, f := mem.Read8(0x999); f == nil {
		t.Error("read of unmapped address succeeded")
	}
	// Straddling the end of a region faults.
	if _, f := mem.Read32(0x100E); f == nil {
		t.Error("read straddling region end succeeded")
	}
}

func TestMemoryMapOverlap(t *testing.T) {
	mem := vm.NewMemory()
	if err := mem.Map(&vm.Region{Name: "a", Base: 0x1000, Perm: vm.PermRead, Data: make([]byte, 0x100)}); err != nil {
		t.Fatal(err)
	}
	if err := mem.Map(&vm.Region{Name: "b", Base: 0x1080, Perm: vm.PermRead, Data: make([]byte, 0x100)}); err == nil {
		t.Error("overlapping map succeeded")
	}
	if err := mem.Map(&vm.Region{Name: "c", Base: 0x1100, Perm: vm.PermRead, Data: make([]byte, 0x100)}); err != nil {
		t.Errorf("adjacent map failed: %v", err)
	}
	if err := mem.Map(&vm.Region{Name: "empty", Base: 0x3000, Perm: vm.PermRead, Data: nil}); err == nil {
		t.Error("empty map succeeded")
	}
}

func TestPokePeekIgnorePermissions(t *testing.T) {
	mem := vm.NewMemory()
	if err := mem.Map(&vm.Region{Name: "text", Base: 0x1000, Perm: vm.PermRead | vm.PermExec, Data: make([]byte, 16)}); err != nil {
		t.Fatal(err)
	}
	if err := mem.Poke(0x1004, []byte{0xAA, 0xBB}); err != nil {
		t.Fatalf("poke: %v", err)
	}
	got, err := mem.Peek(0x1004, 2)
	if err != nil || got[0] != 0xAA || got[1] != 0xBB {
		t.Errorf("peek = % x, %v", got, err)
	}
	if err := mem.Poke(0x2000, []byte{1}); err == nil {
		t.Error("poke to unmapped succeeded")
	}
}

// runALU executes a tiny code sequence and returns the machine.
func runALU(t *testing.T, code []byte, n int) *vm.Machine {
	t.Helper()
	m := newMachine(t, code)
	for i := 0; i < n; i++ {
		step(t, m)
	}
	return m
}

func TestAddSubFlags(t *testing.T) {
	tests := []struct {
		name   string
		a, b   uint32
		sub    bool
		wantCF bool
		wantOF bool
		wantZF bool
		wantSF bool
	}{
		{"add_simple", 1, 2, false, false, false, false, false},
		{"add_carry", 0xFFFFFFFF, 1, false, true, false, true, false},
		{"add_overflow", 0x7FFFFFFF, 1, false, false, true, false, true},
		{"add_zero", 0, 0, false, false, false, true, false},
		{"sub_borrow", 1, 2, true, true, false, false, true},
		{"sub_zero", 5, 5, true, false, false, true, false},
		{"sub_overflow", 0x80000000, 1, true, false, true, false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			op := byte(0x01) // add rm, reg
			if tt.sub {
				op = 0x29
			}
			// mov eax, a ; mov ecx, b ; op eax, ecx
			code := []byte{0xB8, 0, 0, 0, 0, 0xB9, 0, 0, 0, 0, op, 0xC8}
			putLE(code[1:], tt.a)
			putLE(code[6:], tt.b)
			m := runALU(t, code, 3)
			if got := m.GetFlag(x86.FlagCF); got != tt.wantCF {
				t.Errorf("CF = %v, want %v", got, tt.wantCF)
			}
			if got := m.GetFlag(x86.FlagOF); got != tt.wantOF {
				t.Errorf("OF = %v, want %v", got, tt.wantOF)
			}
			if got := m.GetFlag(x86.FlagZF); got != tt.wantZF {
				t.Errorf("ZF = %v, want %v", got, tt.wantZF)
			}
			if got := m.GetFlag(x86.FlagSF); got != tt.wantSF {
				t.Errorf("SF = %v, want %v", got, tt.wantSF)
			}
		})
	}
}

func putLE(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// Property: add then sub of random values restores EAX and cmp agrees with
// Go's comparison through the jcc conditions.
func TestCmpMatchesGoComparison(t *testing.T) {
	f := func(a, b int32) bool {
		// mov eax, a ; mov ecx, b ; cmp eax, ecx
		code := []byte{0xB8, 0, 0, 0, 0, 0xB9, 0, 0, 0, 0, 0x39, 0xC8}
		putLE(code[1:], uint32(a))
		putLE(code[6:], uint32(b))
		m := runALU(t, code, 3)
		checks := []struct {
			cond uint8
			want bool
		}{
			{x86.CondE, a == b},
			{x86.CondNE, a != b},
			{x86.CondL, a < b},
			{x86.CondLE, a <= b},
			{x86.CondG, a > b},
			{x86.CondGE, a >= b},
			{x86.CondB, uint32(a) < uint32(b)},
			{x86.CondAE, uint32(a) >= uint32(b)},
			{x86.CondA, uint32(a) > uint32(b)},
			{x86.CondBE, uint32(a) <= uint32(b)},
		}
		for _, c := range checks {
			if x86.EvalCond(c.cond, m.Flags) != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: MUL/IMUL/DIV agree with Go's 64-bit arithmetic.
func TestMulDivMatchGo(t *testing.T) {
	mul := func(a, b uint32) bool {
		// mov eax, a ; mov ecx, b ; mul ecx
		code := []byte{0xB8, 0, 0, 0, 0, 0xB9, 0, 0, 0, 0, 0xF7, 0xE1}
		putLE(code[1:], a)
		putLE(code[6:], b)
		m := runALU(t, code, 3)
		p := uint64(a) * uint64(b)
		return m.Regs[x86.EAX] == uint32(p) && m.Regs[x86.EDX] == uint32(p>>32)
	}
	if err := quick.Check(mul, &quick.Config{MaxCount: 300}); err != nil {
		t.Error("mul:", err)
	}
	idiv := func(a int32, b int32) bool {
		if b == 0 || (a == -1<<31 && b == -1) {
			return true // faults tested separately
		}
		// mov eax, a ; cdq ; mov ecx, b ; idiv ecx
		code := []byte{0xB8, 0, 0, 0, 0, 0x99, 0xB9, 0, 0, 0, 0, 0xF7, 0xF9}
		putLE(code[1:], uint32(a))
		putLE(code[7:], uint32(b))
		m := runALU(t, code, 4)
		return int32(m.Regs[x86.EAX]) == a/b && int32(m.Regs[x86.EDX]) == a%b
	}
	if err := quick.Check(idiv, &quick.Config{MaxCount: 300}); err != nil {
		t.Error("idiv:", err)
	}
}

func TestDivideFaults(t *testing.T) {
	// mov eax, 1 ; cdq ; xor ecx, ecx ; idiv ecx
	code := []byte{0xB8, 1, 0, 0, 0, 0x99, 0x31, 0xC9, 0xF7, 0xF9}
	m := newMachine(t, code)
	var err error
	for i := 0; i < 4; i++ {
		if err = m.Step(); err != nil {
			break
		}
	}
	var fault *vm.Fault
	if !errors.As(err, &fault) || fault.Kind != vm.FaultDivide {
		t.Errorf("err = %v, want divide fault", err)
	}
	if fault.Kind.Signal() != "SIGFPE" {
		t.Errorf("signal = %s", fault.Kind.Signal())
	}
}

func TestPushPopRoundTrip(t *testing.T) {
	// mov eax, 0xdeadbeef ; push eax ; pop ecx
	code := []byte{0xB8, 0xEF, 0xBE, 0xAD, 0xDE, 0x50, 0x59}
	m := runALU(t, code, 3)
	if m.Regs[x86.ECX] != 0xDEADBEEF {
		t.Errorf("ecx = %#x", m.Regs[x86.ECX])
	}
}

func TestPushAPopA(t *testing.T) {
	// Set distinct registers, pusha, clobber, popa, verify.
	code := []byte{
		0xB8, 1, 0, 0, 0, // mov eax,1
		0xB9, 2, 0, 0, 0, // mov ecx,2
		0xBA, 3, 0, 0, 0, // mov edx,3
		0xBB, 4, 0, 0, 0, // mov ebx,4
		0x60,             // pusha
		0xB8, 9, 0, 0, 0, // mov eax,9
		0xB9, 9, 0, 0, 0, // mov ecx,9
		0x61, // popa
	}
	m := runALU(t, code, 8)
	if m.Regs[x86.EAX] != 1 || m.Regs[x86.ECX] != 2 || m.Regs[x86.EDX] != 3 || m.Regs[x86.EBX] != 4 {
		t.Errorf("regs after popa: %v", m.Regs)
	}
}

func TestPartialRegisterWrites(t *testing.T) {
	// mov eax, 0x11223344 ; mov ah, 0xAA ; mov al, 0xBB
	code := []byte{0xB8, 0x44, 0x33, 0x22, 0x11, 0xB4, 0xAA, 0xB0, 0xBB}
	m := runALU(t, code, 3)
	if m.Regs[x86.EAX] != 0x1122AABB {
		t.Errorf("eax = %#x, want 0x1122aabb", m.Regs[x86.EAX])
	}
}

func TestStringOpsRepMovs(t *testing.T) {
	// Source bytes at 0x8000, dest at 0x8100.
	// mov esi, 0x8000 ; mov edi, 0x8100 ; mov ecx, 8 ; rep movsb
	code := []byte{
		0xBE, 0x00, 0x80, 0, 0,
		0xBF, 0x00, 0x81, 0, 0,
		0xB9, 8, 0, 0, 0,
		0xF3, 0xA4,
	}
	m := newMachine(t, code)
	for i := 0; i < 8; i++ {
		if f := m.Mem.Write8(0x8000+uint32(i), uint32('a'+i)); f != nil {
			t.Fatal(f)
		}
	}
	for i := 0; i < 4; i++ {
		step(t, m)
	}
	for i := 0; i < 8; i++ {
		v, f := m.Mem.Read8(0x8100 + uint32(i))
		if f != nil || v != uint32('a'+i) {
			t.Errorf("dest[%d] = %c (%v)", i, v, f)
		}
	}
	if m.Regs[x86.ECX] != 0 {
		t.Errorf("ecx = %d after rep", m.Regs[x86.ECX])
	}
}

func TestStosAndScas(t *testing.T) {
	// mov edi, 0x8000 ; mov eax, 'x' ; mov ecx, 16 ; rep stosb
	code := []byte{
		0xBF, 0x00, 0x80, 0, 0,
		0xB8, 'x', 0, 0, 0,
		0xB9, 16, 0, 0, 0,
		0xF3, 0xAA,
	}
	m := newMachine(t, code)
	for i := 0; i < 4; i++ {
		step(t, m)
	}
	for i := 0; i < 16; i++ {
		v, _ := m.Mem.Read8(0x8000 + uint32(i))
		if v != 'x' {
			t.Fatalf("stosb failed at %d", i)
		}
	}
}

func TestJccTakenAndNot(t *testing.T) {
	// xor eax, eax ; je +2 (taken) ; mov al, 1 (skipped) ; nop...
	code := []byte{0x31, 0xC0, 0x74, 0x02, 0xB0, 0x01, 0x90}
	m := runALU(t, code, 2) // xor ; je (taken, skips the mov)
	if m.EIP != 0x1000+6 {
		t.Errorf("eip = %#x, want 0x1006", m.EIP)
	}
	step(t, m) // the nop at the branch target
	if m.Regs[x86.EAX] != 0 {
		t.Errorf("branch not taken: eax = %#x", m.Regs[x86.EAX])
	}
	// jne with ZF set: falls through.
	code2 := []byte{0x31, 0xC0, 0x75, 0x02, 0xB0, 0x01}
	m2 := runALU(t, code2, 3)
	if m2.Regs[x86.EAX]&0xFF != 1 {
		t.Errorf("fall-through missed: eax = %#x", m2.Regs[x86.EAX])
	}
}

func TestCallRet(t *testing.T) {
	// call +3 ; hlt(never) ... target: mov eax, 7 ; ret  -> back to hlt? No:
	// layout: 0: call rel32(+6) ; 5: mov ebx, 1; exit path...
	code := []byte{
		0xE8, 0x07, 0x00, 0x00, 0x00, // call +7 -> 0x100C
		0xBB, 0x2A, 0, 0, 0, // mov ebx, 42
		0xCD, 0x80, // int 0x80 (but eax holds 7 -> ENOSYS; then continues)
		0xB8, 0x07, 0, 0, 0, // 0x100C: mov eax, 7
		0xC3, // ret -> 0x1005
	}
	m := newMachine(t, code)
	step(t, m) // call
	if m.EIP != 0x100C {
		t.Fatalf("call target = %#x", m.EIP)
	}
	step(t, m) // mov eax,7
	step(t, m) // ret
	if m.EIP != 0x1005 {
		t.Fatalf("ret target = %#x", m.EIP)
	}
	if m.Regs[x86.EAX] != 7 {
		t.Errorf("eax = %d", m.Regs[x86.EAX])
	}
}

func TestExitSyscall(t *testing.T) {
	// mov eax, 1 ; mov ebx, 9 ; int 0x80
	code := []byte{0xB8, 1, 0, 0, 0, 0xBB, 9, 0, 0, 0, 0xCD, 0x80}
	m := newMachine(t, code)
	err := m.Run()
	var exit *vm.ExitStatus
	if !errors.As(err, &exit) || exit.Code != 9 {
		t.Errorf("run = %v, want exit 9", err)
	}
}

func TestBreakpoint(t *testing.T) {
	code := []byte{0x90, 0x90, 0x90, 0xB8, 1, 0, 0, 0, 0x31, 0xDB, 0xCD, 0x80}
	m := newMachine(t, code)
	m.SetBreakpoint(0x1002)
	err := m.Run()
	var bp *vm.BreakpointHit
	if !errors.As(err, &bp) || bp.Addr != 0x1002 {
		t.Fatalf("run = %v, want breakpoint at 0x1002", err)
	}
	if m.Steps != 2 {
		t.Errorf("steps at breakpoint = %d, want 2", m.Steps)
	}
	m.ClearBreakpoint(0x1002)
	err = m.Run()
	var exit *vm.ExitStatus
	if !errors.As(err, &exit) {
		t.Errorf("after clear: %v", err)
	}
}

func TestFuelExhaustion(t *testing.T) {
	// jmp -2: infinite loop
	code := []byte{0xEB, 0xFE}
	m := newMachine(t, code)
	m.Fuel = 1000
	err := m.Run()
	var fuel *vm.OutOfFuel
	if !errors.As(err, &fuel) {
		t.Fatalf("run = %v, want out of fuel", err)
	}
	if fuel.Steps != 1000 {
		t.Errorf("steps = %d", fuel.Steps)
	}
}

func TestIllegalInstructionFaults(t *testing.T) {
	code := []byte{0x0F, 0x0B} // ud2
	m := newMachine(t, code)
	err := m.Run()
	var fault *vm.Fault
	if !errors.As(err, &fault) || fault.Kind != vm.FaultUndefined {
		t.Errorf("run = %v, want #UD", err)
	}
	if fault.Kind.Signal() != "SIGILL" {
		t.Errorf("signal = %s", fault.Kind.Signal())
	}
}

func TestWildJumpFaults(t *testing.T) {
	// jmp to unmapped memory
	code := []byte{0xB8, 0x00, 0x00, 0xF0, 0x00, 0xFF, 0xE0} // mov eax, 0xF00000 ; jmp eax
	m := newMachine(t, code)
	err := m.Run()
	var fault *vm.Fault
	if !errors.As(err, &fault) || fault.Kind != vm.FaultFetch {
		t.Errorf("run = %v, want fetch fault", err)
	}
}

func TestPrivilegedFaults(t *testing.T) {
	for _, op := range []byte{0xF4, 0xFA, 0xFB, 0xE4, 0xEC} { // hlt, cli, sti, in, in
		code := []byte{op, 0x00}
		m := newMachine(t, code)
		err := m.Run()
		var fault *vm.Fault
		if !errors.As(err, &fault) {
			t.Errorf("opcode %#02x: %v, want fault", op, err)
		}
	}
}

func TestShiftSemantics(t *testing.T) {
	tests := []struct {
		name  string
		code  []byte
		steps int
		want  uint32
	}{
		// mov eax, v ; shl eax, n
		{"shl", []byte{0xB8, 1, 0, 0, 0, 0xC1, 0xE0, 4}, 2, 16},
		{"shr", []byte{0xB8, 0, 1, 0, 0, 0xC1, 0xE8, 4}, 2, 16},
		{"sar_neg", []byte{0xB8, 0xF0, 0xFF, 0xFF, 0xFF, 0xC1, 0xF8, 2}, 2, 0xFFFFFFFC},
		{"rol", []byte{0xB8, 0x01, 0, 0, 0x80, 0xC1, 0xC0, 1}, 2, 0x00000003},
		{"ror", []byte{0xB8, 0x03, 0, 0, 0, 0xC1, 0xC8, 1}, 2, 0x80000001},
		{"shl_by_1_short_form", []byte{0xB8, 3, 0, 0, 0, 0xD1, 0xE0}, 2, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := runALU(t, tt.code, tt.steps)
			if m.Regs[x86.EAX] != tt.want {
				t.Errorf("eax = %#x, want %#x", m.Regs[x86.EAX], tt.want)
			}
		})
	}
}

func TestMovzxMovsx(t *testing.T) {
	// mov eax, 0xFFFFFF80 ; mov [0x8000], al ; movzx ecx, byte [0x8000] ;
	// movsx edx, byte [0x8000]
	code := []byte{
		0xB8, 0x80, 0xFF, 0xFF, 0xFF,
		0xA2, 0x00, 0x80, 0x00, 0x00,
		0x0F, 0xB6, 0x0D, 0x00, 0x80, 0x00, 0x00,
		0x0F, 0xBE, 0x15, 0x00, 0x80, 0x00, 0x00,
	}
	m := runALU(t, code, 4)
	if m.Regs[x86.ECX] != 0x80 {
		t.Errorf("movzx: ecx = %#x", m.Regs[x86.ECX])
	}
	if m.Regs[x86.EDX] != 0xFFFFFF80 {
		t.Errorf("movsx: edx = %#x", m.Regs[x86.EDX])
	}
}

func TestLeaveEnter(t *testing.T) {
	// mov ebp, esp ; push 42 (frame junk) ; enter-equivalent then leave
	code := []byte{
		0x55,       // push ebp
		0x89, 0xE5, // mov ebp, esp
		0x83, 0xEC, 0x10, // sub esp, 16
		0xC9, // leave
	}
	m := newMachine(t, code)
	origESP := m.Regs[x86.ESP]
	origEBP := m.Regs[x86.EBP]
	for i := 0; i < 4; i++ {
		step(t, m)
	}
	if m.Regs[x86.ESP] != origESP || m.Regs[x86.EBP] != origEBP {
		t.Errorf("leave did not restore frame: esp=%#x ebp=%#x", m.Regs[x86.ESP], m.Regs[x86.EBP])
	}
}

func TestXchgAndBswap(t *testing.T) {
	code := []byte{
		0xB8, 0x78, 0x56, 0x34, 0x12, // mov eax, 0x12345678
		0xB9, 0x01, 0, 0, 0, // mov ecx, 1
		0x91,       // xchg eax, ecx
		0x0F, 0xC9, // bswap ecx
	}
	m := runALU(t, code, 4)
	if m.Regs[x86.EAX] != 1 {
		t.Errorf("xchg: eax = %#x", m.Regs[x86.EAX])
	}
	if m.Regs[x86.ECX] != 0x78563412 {
		t.Errorf("bswap: ecx = %#x", m.Regs[x86.ECX])
	}
}

func TestSetccAndCmov(t *testing.T) {
	code := []byte{
		0x31, 0xC0, // xor eax, eax (ZF=1)
		0x0F, 0x94, 0xC1, // sete cl
		0xBA, 0x07, 0, 0, 0, // mov edx, 7
		0x0F, 0x44, 0xC2, // cmove eax, edx
	}
	m := runALU(t, code, 4)
	if m.Regs[x86.ECX]&0xFF != 1 {
		t.Errorf("sete: cl = %d", m.Regs[x86.ECX]&0xFF)
	}
	if m.Regs[x86.EAX] != 7 {
		t.Errorf("cmove: eax = %d", m.Regs[x86.EAX])
	}
}

func TestIncDecPreserveCarry(t *testing.T) {
	// stc ; inc eax — CF must survive
	code := []byte{0xF9, 0x40}
	m := runALU(t, code, 2)
	if !m.GetFlag(x86.FlagCF) {
		t.Error("inc clobbered CF")
	}
	// clc ; dec eax
	code = []byte{0xF8, 0x48}
	m = runALU(t, code, 2)
	if m.GetFlag(x86.FlagCF) {
		t.Error("dec set CF")
	}
}

func TestFlagOpsAndLahf(t *testing.T) {
	code := []byte{
		0xF9, // stc
		0x9F, // lahf
	}
	m := runALU(t, code, 2)
	if m.Regs[x86.EAX]>>8&1 != 1 {
		t.Errorf("lahf: ah = %#x, CF bit missing", m.Regs[x86.EAX]>>8&0xFF)
	}
	code = []byte{0xF5} // cmc
	m = runALU(t, code, 1)
	if !m.GetFlag(x86.FlagCF) {
		t.Error("cmc from CF=0 should set CF")
	}
}

func TestWriteToTextFaults(t *testing.T) {
	// mov [0x1000], eax — text is not writable
	code := []byte{0xA3, 0x00, 0x10, 0x00, 0x00}
	m := newMachine(t, code)
	err := m.Run()
	var fault *vm.Fault
	if !errors.As(err, &fault) || fault.Kind != vm.FaultMemory {
		t.Errorf("run = %v, want memory fault", err)
	}
	if fault.Addr != 0x1000 {
		t.Errorf("fault addr = %#x", fault.Addr)
	}
}
