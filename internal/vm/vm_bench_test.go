package vm_test

import (
	"testing"

	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

// benchMachine builds a machine running a tight arithmetic loop.
func benchMachine(b *testing.B) *vm.Machine {
	b.Helper()
	// loop: add eax, 1 ; cmp eax, 0x7fffffff ; jne loop
	code := []byte{
		0x83, 0xC0, 0x01,
		0x3D, 0xFF, 0xFF, 0xFF, 0x7F,
		0x75, 0xF6,
	}
	mem := vm.NewMemory()
	text := make([]byte, 64)
	copy(text, code)
	if err := mem.Map(&vm.Region{Name: "text", Base: 0x1000, Perm: vm.PermRead | vm.PermExec, Data: text}); err != nil {
		b.Fatal(err)
	}
	if err := mem.Map(&vm.Region{Name: "stack", Base: 0x8000, Perm: vm.PermRead | vm.PermWrite, Data: make([]byte, 4096)}); err != nil {
		b.Fatal(err)
	}
	m := vm.New(mem, exitSysB{})
	m.EIP = 0x1000
	m.Regs[x86.ESP] = 0x9000 - 16
	m.Fuel = 1 << 62
	return m
}

type exitSysB struct{}

func (exitSysB) Syscall(m *vm.Machine) error { return &vm.ExitStatus{} }

// BenchmarkStepALULoop measures raw interpreter throughput on the ALU +
// branch mix that dominates authentication code.
func BenchmarkStepALULoop(b *testing.B) {
	m := benchMachine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Steps), "retired")
}

// BenchmarkStepALULoopNoICache measures the same loop with the predecoded
// instruction cache disabled — the decode cost the cache amortises away.
func BenchmarkStepALULoopNoICache(b *testing.B) {
	m := benchMachine(b)
	m.NoICache = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Steps), "retired")
}

// BenchmarkStepALULoopNoUops measures the same loop with micro-op dispatch
// disabled: every retirement walks the legacy interpreter switch. The gap
// to BenchmarkStepALULoop is what decode-time handler binding buys.
func BenchmarkStepALULoopNoUops(b *testing.B) {
	m := benchMachine(b)
	m.NoUops = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Steps), "retired")
}

// branchMachine builds a machine running a jcc-heavy loop: three
// conditional branches (two data-dependent, one loop-closing) per four ALU
// retirements, the shape of authentication predicate code.
func branchMachine(b *testing.B) *vm.Machine {
	b.Helper()
	// loop: inc eax
	//       test al, 1 ; jz .l1
	// .l1:  test al, 2 ; jz .l2
	// .l2:  cmp eax, 0x7fffffff ; jne loop
	code := []byte{
		0x40,
		0xA8, 0x01,
		0x74, 0x00,
		0xA8, 0x02,
		0x74, 0x00,
		0x3D, 0xFF, 0xFF, 0xFF, 0x7F,
		0x75, 0xF0,
	}
	mem := vm.NewMemory()
	text := make([]byte, 64)
	copy(text, code)
	if err := mem.Map(&vm.Region{Name: "text", Base: 0x1000, Perm: vm.PermRead | vm.PermExec, Data: text}); err != nil {
		b.Fatal(err)
	}
	m := vm.New(mem, exitSysB{})
	m.EIP = 0x1000
	m.Fuel = 1 << 62
	return m
}

// BenchmarkStepBranchLoop measures conditional-branch-dominated
// throughput (condition evaluation + relative-target dispatch).
func BenchmarkStepBranchLoop(b *testing.B) {
	m := branchMachine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Steps), "retired")
}

// BenchmarkStepBranchLoopNoUops is the legacy-switch ablation of
// BenchmarkStepBranchLoop.
func BenchmarkStepBranchLoopNoUops(b *testing.B) {
	m := branchMachine(b)
	m.NoUops = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Steps), "retired")
}

// memMachine builds a machine running a ModRM-memory-heavy loop
// (base+index*scale effective addresses on both loads and a
// read-modify-write), the operand shape the micro-op layer must not slow
// down relative to moffs fast cases.
func memMachine(b *testing.B) *vm.Machine {
	b.Helper()
	// loop: mov eax, [ebx+esi*4]
	//       add [ebx+esi*4], eax
	//       mov edx, [ebx+4]
	//       jmp loop
	code := []byte{
		0x8B, 0x04, 0xB3,
		0x01, 0x04, 0xB3,
		0x8B, 0x53, 0x04,
		0xEB, 0xF5,
	}
	mem := vm.NewMemory()
	text := make([]byte, 64)
	copy(text, code)
	if err := mem.Map(&vm.Region{Name: "text", Base: 0x1000, Perm: vm.PermRead | vm.PermExec, Data: text}); err != nil {
		b.Fatal(err)
	}
	if err := mem.Map(&vm.Region{Name: "data", Base: 0x8000, Perm: vm.PermRead | vm.PermWrite, Data: make([]byte, 4096)}); err != nil {
		b.Fatal(err)
	}
	m := vm.New(mem, exitSysB{})
	m.EIP = 0x1000
	m.Regs[x86.EBX] = 0x8000
	m.Regs[x86.ESI] = 1
	m.Fuel = 1 << 62
	return m
}

// BenchmarkStepMemLoop measures ModRM-memory-operand throughput.
func BenchmarkStepMemLoop(b *testing.B) {
	m := memMachine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Steps), "retired")
}

// BenchmarkStepMemLoopNoUops is the legacy-switch ablation of
// BenchmarkStepMemLoop.
func BenchmarkStepMemLoopNoUops(b *testing.B) {
	m := memMachine(b)
	m.NoUops = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Steps), "retired")
}

// BenchmarkStepMemoryLoop measures throughput with memory operands.
func BenchmarkStepMemoryLoop(b *testing.B) {
	// loop: mov eax, [0x8000] ; add eax, 1 ; mov [0x8000], eax ; jmp loop
	code := []byte{
		0xA1, 0x00, 0x80, 0x00, 0x00,
		0x83, 0xC0, 0x01,
		0xA3, 0x00, 0x80, 0x00, 0x00,
		0xEB, 0xF1,
	}
	mem := vm.NewMemory()
	text := make([]byte, 64)
	copy(text, code)
	if err := mem.Map(&vm.Region{Name: "text", Base: 0x1000, Perm: vm.PermRead | vm.PermExec, Data: text}); err != nil {
		b.Fatal(err)
	}
	if err := mem.Map(&vm.Region{Name: "data", Base: 0x8000, Perm: vm.PermRead | vm.PermWrite, Data: make([]byte, 4096)}); err != nil {
		b.Fatal(err)
	}
	m := vm.New(mem, exitSysB{})
	m.EIP = 0x1000
	m.Fuel = 1 << 62
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBreakpointScan measures the per-step cost the injector's armed
// breakpoint adds (the ablation DESIGN.md calls out: breakpoint scan vs
// plain run).
func BenchmarkBreakpointScan(b *testing.B) {
	m := benchMachine(b)
	m.SetBreakpoint(0xFFFF0000) // never hit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(m.Mem.Regions()) == 0 {
			b.Fatal("no regions")
		}
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
