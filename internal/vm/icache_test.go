package vm_test

import (
	"errors"
	"testing"

	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

// icacheMachine builds a machine whose text is `inc eax; jmp $-1` — the
// same instruction retires every other step, so the decode cache is hot
// after one loop iteration.
func icacheMachine(t *testing.T, textPerm vm.Perm) *vm.Machine {
	t.Helper()
	code := []byte{
		0x40,       // 0x1000: inc eax
		0xEB, 0xFD, // 0x1001: jmp 0x1000
	}
	mem := vm.NewMemory()
	text := make([]byte, 64)
	copy(text, code)
	if err := mem.Map(&vm.Region{Name: "text", Base: 0x1000, Perm: textPerm, Data: text}); err != nil {
		t.Fatal(err)
	}
	if err := mem.Map(&vm.Region{Name: "stack", Base: 0x8000, Perm: vm.PermRead | vm.PermWrite, Data: make([]byte, 4096)}); err != nil {
		t.Fatal(err)
	}
	m := vm.New(mem, exitSys{})
	m.EIP = 0x1000
	m.Regs[x86.ESP] = 0x9000 - 16
	return m
}

func stepN(t *testing.T, m *vm.Machine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := m.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// TestICachePokeInvalidation is the injector's exact sequence: warm the
// cache by executing the target, Poke corrupted bytes over it, and check
// the machine executes the corrupted encoding rather than the stale
// decode (inc eax 0x40 → inc ecx 0x41 is a single-bit flip).
func TestICachePokeInvalidation(t *testing.T) {
	m := icacheMachine(t, vm.PermRead|vm.PermExec)
	stepN(t, m, 4) // two loop iterations: every address cached
	if m.ICacheHits == 0 {
		t.Fatalf("cache never hit while warming (hits=%d misses=%d)", m.ICacheHits, m.ICacheMisses)
	}
	if m.Regs[x86.EAX] != 2 || m.Regs[x86.ECX] != 0 {
		t.Fatalf("warm-up state eax=%d ecx=%d, want 2,0", m.Regs[x86.EAX], m.Regs[x86.ECX])
	}

	if err := m.Mem.Poke(0x1000, []byte{0x41}); err != nil { // inc eax -> inc ecx
		t.Fatal(err)
	}
	stepN(t, m, 2) // one more iteration from the poked text
	if m.Regs[x86.EAX] != 2 || m.Regs[x86.ECX] != 1 {
		t.Errorf("post-poke state eax=%d ecx=%d, want 2,1 (stale decode executed?)",
			m.Regs[x86.EAX], m.Regs[x86.ECX])
	}
}

// TestICacheWriteInvalidation covers the self-modifying-code channel: a
// successful program-level store into a PermExec region must invalidate
// the covering cache lines just like a debugger poke.
func TestICacheWriteInvalidation(t *testing.T) {
	m := icacheMachine(t, vm.PermRead|vm.PermWrite|vm.PermExec)
	stepN(t, m, 4)
	if f := m.Mem.Write8(0x1000, 0x41); f != nil {
		t.Fatalf("write to rwx text faulted: %v", f)
	}
	stepN(t, m, 2)
	if m.Regs[x86.EAX] != 2 || m.Regs[x86.ECX] != 1 {
		t.Errorf("post-write state eax=%d ecx=%d, want 2,1", m.Regs[x86.EAX], m.Regs[x86.ECX])
	}
}

// TestICacheSnapshotRestorePoke mirrors the campaign engine's hot path
// (engine.go runGroup): capture a snapshot at a breakpoint with a warm
// cache, then repeatedly restore-poke-run the same machine with different
// corrupted bytes. Each run must execute its own corruption — neither the
// snapshot's pristine decode nor the previous run's patch may leak.
func TestICacheSnapshotRestorePoke(t *testing.T) {
	m := icacheMachine(t, vm.PermRead|vm.PermExec)
	m.SetBreakpoint(0x1001) // the jmp: inc eax has retired once
	runErr := m.Run()
	var bp *vm.BreakpointHit
	if !errors.As(runErr, &bp) {
		t.Fatalf("run ended %v, want breakpoint", runErr)
	}
	snap := m.Snapshot()

	// Each case pokes a different single-byte instruction over the inc at
	// 0x1000 and retires two instructions from the restored state (the
	// breakpoint-armed jmp first, then the poked instruction).
	cases := []struct {
		poke     byte
		eax, ecx uint32
	}{
		{0x41, 1, 1}, // inc ecx
		{0x48, 0, 0}, // dec eax
		{0x40, 2, 0}, // pristine inc eax again
	}
	wm := snap.NewMachine(exitSys{})
	for _, c := range cases {
		if err := wm.Restore(snap); err != nil {
			t.Fatal(err)
		}
		wm.ClearBreakpoints()
		if err := wm.Mem.Poke(0x1000, []byte{c.poke}); err != nil {
			t.Fatal(err)
		}
		stepN(t, wm, 2)
		if wm.Regs[x86.EAX] != c.eax || wm.Regs[x86.ECX] != c.ecx {
			t.Errorf("poke %#02x: eax=%d ecx=%d, want %d,%d",
				c.poke, wm.Regs[x86.EAX], wm.Regs[x86.ECX], c.eax, c.ecx)
		}
	}
	if wm.ICacheHits == 0 {
		t.Errorf("restored machine never hit the shared cache (hits=%d misses=%d)",
			wm.ICacheHits, wm.ICacheMisses)
	}
}

// TestICacheDisabled pins the ablation knob: with NoICache the machine
// still executes correctly and records no cache traffic.
func TestICacheDisabled(t *testing.T) {
	m := icacheMachine(t, vm.PermRead|vm.PermExec)
	m.NoICache = true
	stepN(t, m, 6)
	if m.Regs[x86.EAX] != 3 {
		t.Errorf("eax=%d, want 3", m.Regs[x86.EAX])
	}
	if m.ICacheHits != 0 || m.ICacheMisses != 0 {
		t.Errorf("NoICache machine recorded cache traffic: hits=%d misses=%d",
			m.ICacheHits, m.ICacheMisses)
	}
}

// TestCStringSemantics pins the fast CString against the fault semantics
// of the old per-byte loop: NUL-terminated reads, the maxLen cap, a fault
// at the first unreadable byte past the region end, and scanning across
// contiguously mapped regions.
func TestCStringSemantics(t *testing.T) {
	mem := vm.NewMemory()
	a := []byte("hello\x00xx")
	if err := mem.Map(&vm.Region{Name: "a", Base: 0x1000, Perm: vm.PermRead, Data: a}); err != nil {
		t.Fatal(err)
	}
	// Contiguous second region: "wor" continues "ld\x00" at 0x1008.
	if err := mem.Map(&vm.Region{Name: "b", Base: 0x1008, Perm: vm.PermRead, Data: []byte("ld\x00")}); err != nil {
		t.Fatal(err)
	}

	if s, f := mem.CString(0x1000, 64); f != nil || s != "hello" {
		t.Errorf("CString(hello) = %q, %v", s, f)
	}
	if s, f := mem.CString(0x1000, 3); f != nil || s != "hel" {
		t.Errorf("maxLen-capped CString = %q, %v", s, f)
	}
	// "xxld\x00" spans the a/b region boundary.
	if s, f := mem.CString(0x1006, 64); f != nil || s != "xxld" {
		t.Errorf("region-spanning CString = %q, %v", s, f)
	}
	// No NUL before the mapped bytes run out: fault at the first
	// unreadable address (one past the end of the region).
	if err := mem.Map(&vm.Region{Name: "c", Base: 0x2000, Perm: vm.PermRead, Data: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	if _, f := mem.CString(0x2000, 64); f == nil || f.Addr != 0x2003 {
		t.Errorf("unterminated CString fault = %+v, want fault at 0x2003", f)
	}
	// Unreadable start faults at addr.
	if _, f := mem.CString(0x9999_0000, 8); f == nil || f.Addr != 0x9999_0000 {
		t.Errorf("unmapped CString fault = %+v, want fault at start", f)
	}
}
