package vm

import (
	"faultsec/internal/x86"
)

// This file implements the predecoded instruction cache (icache): a dense
// per-region table mapping every executable address to its decoded
// x86.Inst plus the micro-op it binds to (see exec_uop.go), filled lazily
// by Machine.Step and consulted before the fetch+decode+bind slow path. The text segment is immutable apart from the
// injector's pokes, so almost every retirement after warm-up is a hit.
//
// Correctness rests on invalidation. Two mutation channels exist:
//
//   - Memory.Poke (the injector's ptrace-POKETEXT analog), and
//   - a successful program write to a region mapped PermExec
//     (self-modifying code; regular images map text r-x, so this only
//     fires for deliberately rwx-mapped regions).
//
// Both funnel through Memory.icacheInvalidate, which voids every cached
// decode whose instruction span could overlap the written bytes — an
// instruction starting up to MaxInstLen-1 bytes before the first written
// byte may straddle it.
//
// Snapshots share decode work: Machine.Snapshot freezes the machine's
// tables (marking them shared/read-only) and records a reference in the
// snapshot, so every machine restored from it executes from one immutable
// base table instead of re-decoding the prefix. Once a table is shared, a
// machine's own decodes — the capturing machine's post-freeze fills, and a
// restored run's decodes of poked or post-activation code — land in a
// private per-region overlay array (`local`) laid out identically to the
// base table, so overlay hits stay a single indexed load on the Step hot
// path. Pokes over a shared base are tracked as dirty spans masking the
// stale base entries; Restore resets spans and overlay together, which
// keeps cross-run decode reuse exact.

// icacheSpan is a half-open invalidated address range [lo, hi).
type icacheSpan struct{ lo, hi uint32 }

// islot is one predecoded cache slot: the decoded instruction plus the
// micro-op it was bound to at fill time. Warm retirements dispatch straight
// through uop.H; the Inst rides along for the NoUops ablation (and for
// anything that wants the full decode). inst.Len == 0 marks an empty slot;
// every successfully decoded instruction has Len >= 1.
type islot struct {
	inst x86.Inst
	uop  x86.Uop
}

// icacheRegion is the decode table for one executable region: entries[i]
// caches the instruction starting at base+i.
type icacheRegion struct {
	base    uint32
	entries []islot
	// shared marks entries as owned by a Snapshot: read-only for this
	// machine, potentially read concurrently by other restored machines.
	// New decodes then land in the private local overlay instead.
	shared bool
	// dirty lists address spans whose base entries must not be trusted
	// (bytes under them were poked or written since they were decoded).
	// Only shared regions carry spans; a private region drops stale
	// entries in place.
	dirty []icacheSpan
	// local is the private overlay, indexed like entries and allocated on
	// the first fill after the base went shared. It always reflects the
	// region's current bytes: invalidation zeroes it in place.
	local []islot
	// traces holds the fused superblock traces (trace.go), indexed like
	// entries by start address. Always private to this machine — a
	// Snapshot never shares them — and allocated on the first fuse.
	// Invalidation zeroes trace pointers with a back-span widened to
	// maxTraceBytes-1, since a trace may extend that far past its start.
	traces []*trace
}

func (rt *icacheRegion) contains(pc uint32) bool {
	return pc >= rt.base && pc-rt.base < uint32(len(rt.entries))
}

func (rt *icacheRegion) inDirty(pc uint32) bool {
	for _, sp := range rt.dirty {
		if pc >= sp.lo && pc < sp.hi {
			return true
		}
	}
	return false
}

// zeroLocal drops local-overlay decodes under the given spans (already
// clamped to the region by icacheInvalidate).
func (rt *icacheRegion) zeroLocal(spans []icacheSpan) {
	if rt.local == nil {
		return
	}
	for _, sp := range spans {
		for a := sp.lo; a < sp.hi; a++ {
			rt.local[a-rt.base] = islot{}
		}
	}
}

// zeroTraces drops fused traces that could overlap the given spans. The
// spans carry only the islot back-span (MaxInstLen-1); a trace starting up
// to maxTraceBytes-1 bytes before a written byte can extend across it, so
// each span's low edge is widened by the difference (conservatively by the
// full maxTraceBytes) and re-clamped to the region.
func (rt *icacheRegion) zeroTraces(spans []icacheSpan) {
	if rt.traces == nil {
		return
	}
	for _, sp := range spans {
		lo := sp.lo - maxTraceBytes
		if lo > sp.lo || lo < rt.base { // underflow or region edge
			lo = rt.base
		}
		for a := lo; a < sp.hi; a++ {
			rt.traces[a-rt.base] = nil
		}
	}
}

// ICache is one machine's predecoded instruction cache.
type ICache struct {
	regions []*icacheRegion
}

// icacheSnap is the frozen view of a machine's icache captured by
// Snapshot: immutable base tables shared (by reference) with every
// machine restored from the snapshot.
type icacheSnap struct {
	regions []icacheSnapRegion
}

type icacheSnapRegion struct {
	base    uint32
	entries []islot
	dirty   []icacheSpan
}

func (c *ICache) findRegion(pc uint32) *icacheRegion {
	for _, rt := range c.regions {
		if rt.contains(pc) {
			return rt
		}
	}
	return nil
}

// icacheLookup returns the cached slot (decode + bound micro-op) of the
// instruction at pc, or nil on a miss. The returned slot may live in a
// table shared across machines; callers must treat it as read-only.
func (m *Memory) icacheLookup(pc uint32) *islot {
	c := m.icache
	if c == nil {
		return nil
	}
	for _, rt := range c.regions {
		// Unsigned wrap folds the two range compares into one: pc below
		// base underflows to a huge index and fails the length check.
		i := pc - rt.base
		if i >= uint32(len(rt.entries)) {
			continue
		}
		if rt.local != nil {
			if e := &rt.local[i]; e.inst.Len != 0 {
				return e
			}
		}
		if e := &rt.entries[i]; e.inst.Len != 0 && (len(rt.dirty) == 0 || !rt.inDirty(pc)) {
			return e
		}
		return nil // regions never overlap
	}
	return nil
}

// icacheFill records the decoded-and-bound slot for the instruction at pc,
// creating the cache and the covering region table on first use. Fills for
// shared (snapshot-frozen) base tables go to the private local overlay.
func (m *Memory) icacheFill(pc uint32, s *islot) {
	c := m.icache
	if c == nil {
		c = &ICache{}
		m.icache = c
	}
	rt := c.findRegion(pc)
	if rt == nil {
		r := m.Find(pc)
		if r == nil || r.Perm&PermExec == 0 {
			return
		}
		rt = &icacheRegion{base: r.Base, entries: make([]islot, len(r.Data))}
		c.regions = append(c.regions, rt)
	}
	if rt.shared {
		if rt.local == nil {
			rt.local = make([]islot, len(rt.entries))
		}
		rt.local[pc-rt.base] = *s
		return
	}
	rt.entries[pc-rt.base] = *s
}

// icacheInvalidate voids every cached decode that could cover the n bytes
// written at addr: instructions start at most MaxInstLen-1 bytes before
// the first written byte. Private tables drop the entries in place;
// shared base tables (read-only) record a dirty span instead. Local
// overlay decodes under the span are zeroed either way, so the overlay
// always reflects the region's current bytes.
func (m *Memory) icacheInvalidate(addr uint32, n int) {
	if n <= 0 {
		return
	}
	// Bump the invalidation generation before anything else: an in-flight
	// fused trace polls it between micro-ops and must see the change even
	// when the write lands outside every cached table.
	m.invalGen++
	c := m.icache
	if c == nil {
		return
	}
	lo := addr - (x86.MaxInstLen - 1)
	if lo > addr { // underflow below address zero
		lo = 0
	}
	hi := addr + uint32(n)
	for _, rt := range c.regions {
		rlo, rhi := lo, hi
		if rlo < rt.base {
			rlo = rt.base
		}
		if end := rt.base + uint32(len(rt.entries)); rhi > end {
			rhi = end
		}
		if rlo >= rhi {
			continue
		}
		sp := icacheSpan{lo: rlo, hi: rhi}
		if rt.shared {
			rt.dirty = append(rt.dirty, sp)
			rt.zeroLocal([]icacheSpan{sp})
		} else {
			for a := rlo; a < rhi; a++ {
				rt.entries[a-rt.base] = islot{}
			}
		}
		rt.zeroTraces([]icacheSpan{sp})
	}
}

// icacheFreeze marks every region's base table shared (read-only from now
// on; subsequent decodes by this machine go to its local overlay) and
// returns an immutable view for a Snapshot to hand to restored machines.
// Returns nil when no cache has been built. Overlay decodes made after an
// earlier freeze stay private: successive snapshots of one machine share
// the base tables of the first freeze.
func (m *Memory) icacheFreeze() *icacheSnap {
	c := m.icache
	if c == nil || len(c.regions) == 0 {
		return nil
	}
	s := &icacheSnap{regions: make([]icacheSnapRegion, 0, len(c.regions))}
	for _, rt := range c.regions {
		rt.shared = true
		s.regions = append(s.regions, icacheSnapRegion{
			base:    rt.base,
			entries: rt.entries,
			dirty:   append([]icacheSpan(nil), rt.dirty...),
		})
	}
	return s
}

// icacheSameBase reports whether the machine's region tables are backed
// by the very same frozen base tables as the snapshot view (pointer
// identity on the entries arrays). Snapshots captured at successive
// breakpoints of one golden run all share the first freeze's tables, so
// this holds across a whole snapshot sweep, not just for re-restores of
// one snapshot.
func icacheSameBase(rts []*icacheRegion, srs []icacheSnapRegion) bool {
	if len(rts) != len(srs) {
		return false
	}
	for i, rt := range rts {
		sr := &srs[i]
		if !rt.shared || rt.base != sr.base ||
			len(rt.entries) != len(sr.entries) || &rt.entries[0] != &sr.entries[0] {
			return false
		}
	}
	return true
}

// icacheInstall points the address space at a snapshot's frozen decode
// tables (Restore just copied the snapshot's bytes back, so they are
// coherent again). When the machine's cache already sits on the same
// frozen base tables it resets in place: overlay decodes under the
// machine's dirty spans (the previous run's poked instruction) and under
// the snapshot's spans are dropped, and the rest of the overlay —
// decodes of pristine post-activation code — survives across the runs of
// a target's experiment group and across same-sweep snapshots. A nil
// snap (the snapshot machine had no cache) drops the cache entirely: the
// restored bytes may not match whatever was cached.
func (m *Memory) icacheInstall(snap *icacheSnap) {
	if snap == nil {
		m.icache = nil
		return
	}
	if c := m.icache; c != nil && icacheSameBase(c.regions, snap.regions) {
		for i, rt := range c.regions {
			sr := &snap.regions[i]
			// An overlay decode is stale if its bytes were poked during
			// the previous run (rt.dirty) or differ between the snapshot
			// this cache last served and the one being installed — the
			// latter is always inside the installed snapshot's spans,
			// since the golden run only appends to its dirty list. Fused
			// traces follow the same rule (pokes already zeroed the spans
			// under rt.dirty at poke time, but a trace fused *after* the
			// poke from the poked bytes starts inside the widened span and
			// is dropped here); traces over pristine bytes survive the
			// restore, which is what makes cross-run trace reuse work.
			rt.zeroLocal(rt.dirty)
			rt.zeroLocal(sr.dirty)
			rt.zeroTraces(rt.dirty)
			rt.zeroTraces(sr.dirty)
			rt.dirty = append(rt.dirty[:0], sr.dirty...)
		}
		return
	}
	c := &ICache{regions: make([]*icacheRegion, 0, len(snap.regions))}
	for i := range snap.regions {
		sr := &snap.regions[i]
		c.regions = append(c.regions, &icacheRegion{
			base:    sr.base,
			entries: sr.entries,
			shared:  true,
			dirty:   append([]icacheSpan(nil), sr.dirty...),
		})
	}
	m.icache = c
}
