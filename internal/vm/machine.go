package vm

import (
	"faultsec/internal/x86"
)

// SyscallHandler receives software interrupts (int 0x80). It may read and
// modify machine state. Returning a non-nil error ends the run: an
// *ExitStatus for a clean exit, any other error for kernel-detected
// conditions (for example the harness's hang detection).
type SyscallHandler interface {
	Syscall(m *Machine) error
}

// DefaultFuel is the default retired-instruction budget per run. Fault-free
// sessions in this study retire well under 100k instructions; the budget
// only trips on corrupted runs stuck in non-terminating loops.
const DefaultFuel = 2_000_000

// Machine is one user-mode x86 hardware thread plus its address space.
type Machine struct {
	Regs  [x86.NumRegs]uint32
	EIP   uint32
	Flags uint32
	Mem   *Memory
	Sys   SyscallHandler

	// Steps counts retired instructions (user mode only, like the paper's
	// latency measurements which exclude kernel-mode execution).
	Steps uint64
	// Fuel is the maximum number of instructions to retire; 0 means
	// DefaultFuel.
	Fuel uint64
	// TSC is a deterministic timestamp counter for rdtsc.
	TSC uint64

	// CFValid, when non-nil, enables the control-flow watchdog: before
	// each fetch, EIP must be a member of this set (the instruction-start
	// addresses of the loaded program) or execution stops with FaultCFE.
	// This models software signature checkers (BSSC/ECCA/PECOS) from the
	// paper's related work: they catch wild jumps and instruction-stream
	// desynchronization, but by construction they cannot catch a valid
	// branch taken in the wrong direction.
	CFValid map[uint32]struct{}

	// NoICache disables the predecoded instruction cache (the ablation
	// knob): Step then fetches and decodes every instruction from memory
	// bytes, and Snapshot/Restore carry no decode tables.
	NoICache bool

	// NoUops disables micro-op dispatch (the ablation knob): Step then
	// executes every retirement through the legacy monolithic switch in
	// exec.go instead of the bound-handler table. Fault semantics are
	// identical either way (the campaign identity tests prove it); the
	// knob exists to measure what decode-time handler binding buys.
	NoUops bool

	// NoTraces disables superblock trace fusion (the ablation knob): Step
	// then dispatches every retirement individually through the micro-op
	// table instead of executing fused straight-line traces (trace.go).
	// Architectural behavior is identical either way.
	NoTraces bool

	// NoDirtyTracking disables dirty-page write tracking (the ablation
	// knob): Restore then copies every region's full bytes back from the
	// snapshot instead of only the pages written since the last restore.
	NoDirtyTracking bool

	// ParanoidRestore enables the dirty-restore self-check: after an
	// O(dirty) restore, every region is compared byte-for-byte against the
	// snapshot and any divergence — a write that escaped the tracking
	// bitmap — is returned as an error. Debug aid; costs a full image
	// compare per restore.
	ParanoidRestore bool

	// ICacheHits and ICacheMisses count retirements served from the
	// predecoded instruction cache versus decoded on a miss. They are
	// measurement state, not architectural state: Restore leaves them
	// alone, so they accumulate across snapshot-restored runs.
	ICacheHits   uint64
	ICacheMisses uint64

	// TraceHits counts fused-trace executions started by Step; TraceExits
	// counts the ones that ended early (a fault, exit or kernel error
	// mid-trace, or a self-modifying write aborting the remainder).
	// Measurement state, like the icache counters.
	TraceHits  uint64
	TraceExits uint64

	// DirtyBytesCopied accumulates bytes copied back by O(dirty) restores;
	// FullRestores counts restores that fell back to (or started from) a
	// full-image copy. Measurement state, like the icache counters.
	DirtyBytesCopied uint64
	FullRestores     uint64

	// lastSnap remembers which snapshot the machine was last restored
	// from. The O(dirty) restore is only sound when rewinding to that very
	// snapshot (pointer identity): the dirty bitmap records what diverged
	// from it, not from any other checkpoint.
	lastSnap *Snapshot

	breakpoints map[uint32]struct{}

	// pc is the address of the instruction currently retiring, stashed by
	// Step so micro-op handlers (and the shared string/bit-test cores) can
	// stamp faults without threading it through every call. Transient: only
	// valid during a Step.
	pc uint32
}

// New returns a machine with the given address space and syscall handler.
func New(mem *Memory, sys SyscallHandler) *Machine {
	return &Machine{Mem: mem, Sys: sys, Fuel: DefaultFuel}
}

// SetBreakpoint arms a breakpoint: Run returns a *BreakpointHit when EIP
// reaches addr, before executing the instruction there.
func (m *Machine) SetBreakpoint(addr uint32) {
	if m.breakpoints == nil {
		m.breakpoints = make(map[uint32]struct{})
	}
	m.breakpoints[addr] = struct{}{}
}

// ClearBreakpoint disarms the breakpoint at addr.
func (m *Machine) ClearBreakpoint(addr uint32) {
	delete(m.breakpoints, addr)
}

// ClearBreakpoints disarms every breakpoint. The campaign engine uses it
// on snapshot-restored machines: the snapshot is captured mid-sweep with
// other targets' breakpoints still armed, but an injected run must execute
// to its own fate without stopping at them.
func (m *Machine) ClearBreakpoints() { m.breakpoints = nil }

// Reg returns register r (32-bit).
func (m *Machine) Reg(r uint8) uint32 { return m.Regs[r] }

// SetReg sets register r (32-bit).
func (m *Machine) SetReg(r uint8, v uint32) { m.Regs[r] = v }

// regRead reads register r at width w. Width-1 registers follow x86 8-bit
// register numbering: 0..3 are AL/CL/DL/BL, 4..7 are AH/CH/DH/BH.
func (m *Machine) regRead(r uint8, w uint8) uint32 {
	switch w {
	case 1:
		if r < 4 {
			return m.Regs[r] & 0xFF
		}
		return (m.Regs[r-4] >> 8) & 0xFF
	case 2:
		return m.Regs[r] & 0xFFFF
	default:
		return m.Regs[r]
	}
}

// regWrite writes register r at width w (partial-register update for w<4).
func (m *Machine) regWrite(r uint8, w uint8, v uint32) {
	switch w {
	case 1:
		if r < 4 {
			m.Regs[r] = m.Regs[r]&^uint32(0xFF) | v&0xFF
		} else {
			m.Regs[r-4] = m.Regs[r-4]&^uint32(0xFF00) | (v&0xFF)<<8
		}
	case 2:
		m.Regs[r] = m.Regs[r]&^uint32(0xFFFF) | v&0xFFFF
	default:
		m.Regs[r] = v
	}
}

// effAddr computes the effective address of a memory operand.
func (m *Machine) effAddr(rm *x86.RM) uint32 {
	addr := uint32(rm.Disp)
	if rm.Base != x86.NoReg {
		addr += m.Regs[rm.Base]
	}
	if rm.Index != x86.NoReg {
		addr += m.Regs[rm.Index] * uint32(rm.Scale)
	}
	return addr
}

// rmRead reads the r/m operand at width w.
func (m *Machine) rmRead(rm *x86.RM, w uint8) (uint32, *Fault) {
	if rm.IsReg {
		return m.regRead(rm.Reg, w), nil
	}
	return m.Mem.ReadW(m.effAddr(rm), w)
}

// rmWrite writes the r/m operand at width w.
func (m *Machine) rmWrite(rm *x86.RM, w uint8, v uint32) *Fault {
	if rm.IsReg {
		m.regWrite(rm.Reg, w, v)
		return nil
	}
	return m.Mem.WriteW(m.effAddr(rm), v, w)
}

// push pushes a 32-bit value.
func (m *Machine) push(v uint32) *Fault {
	m.Regs[x86.ESP] -= 4
	return m.Mem.Write32(m.Regs[x86.ESP], v)
}

// pop pops a 32-bit value.
func (m *Machine) pop() (uint32, *Fault) {
	v, f := m.Mem.Read32(m.Regs[x86.ESP])
	if f != nil {
		return 0, f
	}
	m.Regs[x86.ESP] += 4
	return v, nil
}

// fuel returns the effective fuel budget.
func (m *Machine) fuel() uint64 {
	if m.Fuel == 0 {
		return DefaultFuel
	}
	return m.Fuel
}

// Step decodes and executes one instruction. It returns nil on normal
// retirement; a *Fault, *ExitStatus, *OutOfFuel, or a kernel error ends the
// run.
//
// The warm path is: predecoded-cache hit -> indirect call through the
// micro-op dispatch table. The decoded form, operand routing, width masks
// and handler index were all resolved at fill time (x86.Inst.Bind), so a
// warm retirement performs no per-form dispatch at all. The legacy
// monolithic switch runs only under the NoUops ablation knob.
func (m *Machine) Step() error {
	if m.Steps >= m.fuel() {
		return &OutOfFuel{Steps: m.Steps}
	}
	pc := m.EIP
	if m.CFValid != nil {
		if _, ok := m.CFValid[pc]; !ok {
			return &Fault{Kind: FaultCFE, Addr: pc, PC: pc}
		}
	}
	m.pc = pc
	if !m.NoICache {
		if s := m.Mem.icacheLookup(pc); s != nil {
			m.ICacheHits++
			m.Steps++
			m.TSC += 3 // deterministic pseudo cycle count
			if m.NoUops {
				return m.exec(&s.inst, pc)
			}
			m.EIP = pc + uint32(s.uop.Len)
			return uopTable[s.uop.H&(uopTableSize-1)](m, &s.uop)
		}
	}
	code, f := m.Mem.Fetch(pc, x86.MaxInstLen)
	if f != nil {
		f.PC = pc
		return f
	}
	var in x86.Inst
	if err := x86.DecodeInto(&in, code); err != nil {
		de, ok := err.(*x86.DecodeError)
		if ok && de.Truncated {
			// Ran off the end of the executable region mid-instruction.
			return &Fault{Kind: FaultFetch, Addr: pc + uint32(de.Offset), PC: pc}
		}
		return &Fault{Kind: FaultUndefined, Addr: pc, PC: pc}
	}
	m.Steps++
	m.TSC += 3 // deterministic pseudo cycle count
	if m.NoICache {
		// Nothing is cached, so nothing is bound: every retirement decodes
		// from bytes and executes through the legacy switch.
		return m.exec(&in, pc)
	}
	m.ICacheMisses++
	var s islot
	s.inst = in
	s.inst.Bind(&s.uop)
	m.Mem.icacheFill(pc, &s)
	if m.NoUops {
		return m.exec(&s.inst, pc)
	}
	m.EIP = pc + uint32(s.uop.Len)
	return uopTable[s.uop.H&(uopTableSize-1)](m, &s.uop)
}

// stepFused is Run's inner step: like Step, except that hot straight-line
// code executes as a fused superblock trace (trace.go), retiring every
// instruction up to and including the next branch in one call with no
// per-instruction dispatch. Architectural state after each retirement is
// identical to single-stepping (the Step contract of one instruction per
// call is why trace execution lives here and not in Step itself). Falls
// back to Step whenever traces are gated off — ablation knob, legacy
// dispatch, watchdog, armed breakpoints — or when the trace at EIP would
// outrun the remaining fuel, so OutOfFuel still fires at the exact step
// it would under single-stepping.
func (m *Machine) stepFused() error {
	if !m.NoICache && !m.NoUops && !m.NoTraces &&
		m.CFValid == nil && len(m.breakpoints) == 0 {
		pc := m.EIP
		tr := m.Mem.traceLookup(pc)
		if tr == nil {
			tr = m.buildTrace(pc)
		}
		if tr != nil && len(tr.ops) > 0 && m.Steps+uint64(len(tr.ops)) <= m.fuel() {
			return m.runTrace(tr)
		}
	}
	return m.Step()
}

// Run executes until the program exits, faults, runs out of fuel, hits an
// armed breakpoint, or the kernel aborts the run. The returned error is
// never nil and is one of *ExitStatus, *Fault, *OutOfFuel, *BreakpointHit,
// or a kernel-defined error.
//
// Breakpoints must be armed before Run is called: once the armed set
// drains to empty, Run stops probing it entirely, so a breakpoint armed
// from inside a syscall handler mid-run is not seen until the next Run.
func (m *Machine) Run() error {
	for len(m.breakpoints) != 0 {
		if _, hit := m.breakpoints[m.EIP]; hit {
			return &BreakpointHit{Addr: m.EIP}
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	for {
		if err := m.stepFused(); err != nil {
			return err
		}
	}
}
