package vm

import "faultsec/internal/x86"

// Multiply/divide micro-op handlers plus the shared widening-arithmetic
// cores (also used by the legacy switch).

func uMul(m *Machine, u *x86.Uop) error {
	v, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.execMul(v, u.W, false)
	return nil
}

func uIMulRM(m *Machine, u *x86.Uop) error {
	v, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	m.execMul(v, u.W, true)
	return nil
}

// imul2 is the two/three-operand IMUL core: reg = trunc32(a * b) with
// CF/OF on signed overflow.
func (m *Machine) imul2(u *x86.Uop, b int64) error {
	v, f := m.rmRead(&u.RM, 4)
	if f != nil {
		return m.uopMemFault(f)
	}
	p := int64(int32(v)) * b
	r := uint32(p)
	ovf := p != int64(int32(r))
	m.setFlag(x86.FlagCF, ovf)
	m.setFlag(x86.FlagOF, ovf)
	m.regWrite(u.Reg, 4, r)
	return nil
}

func uIMulReg(m *Machine, u *x86.Uop) error {
	return m.imul2(u, int64(int32(m.regRead(u.Reg, 4))))
}

func uIMulImm(m *Machine, u *x86.Uop) error {
	return m.imul2(u, int64(u.Imm))
}

func uDiv(m *Machine, u *x86.Uop) error {
	v, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	if err := m.execDiv(v, u.W, false); err != nil {
		return m.uopFault(FaultDivide, m.pc)
	}
	return nil
}

func uIDiv(m *Machine, u *x86.Uop) error {
	v, f := m.rmRead(&u.RM, u.W)
	if f != nil {
		return m.uopMemFault(f)
	}
	if err := m.execDiv(v, u.W, true); err != nil {
		return m.uopFault(FaultDivide, m.pc)
	}
	return nil
}

// execMul implements one-operand MUL/IMUL.
func (m *Machine) execMul(v uint32, w uint8, signed bool) {
	switch w {
	case 1:
		a := m.regRead(x86.EAX, 1)
		var p uint32
		if signed {
			p = uint32(int32(int8(a)) * int32(int8(v)))
		} else {
			p = a * v
		}
		m.regWrite(x86.EAX, 2, p)
		high := p >> 8 & 0xFF
		var ovf bool
		if signed {
			ovf = p&0xFFFF != uint32(int32(int8(p)))&0xFFFF
		} else {
			ovf = high != 0
		}
		m.setFlag(x86.FlagCF, ovf)
		m.setFlag(x86.FlagOF, ovf)
	case 2:
		a := m.regRead(x86.EAX, 2)
		var p uint32
		if signed {
			p = uint32(int32(int16(a)) * int32(int16(v)))
		} else {
			p = a * v
		}
		m.regWrite(x86.EAX, 2, p)
		m.regWrite(x86.EDX, 2, p>>16)
		var ovf bool
		if signed {
			ovf = p != uint32(int32(int16(p)))
		} else {
			ovf = p>>16 != 0
		}
		m.setFlag(x86.FlagCF, ovf)
		m.setFlag(x86.FlagOF, ovf)
	default:
		a := m.Regs[x86.EAX]
		var p uint64
		if signed {
			p = uint64(int64(int32(a)) * int64(int32(v)))
		} else {
			p = uint64(a) * uint64(v)
		}
		m.Regs[x86.EAX] = uint32(p)
		m.Regs[x86.EDX] = uint32(p >> 32)
		var ovf bool
		if signed {
			ovf = p != uint64(int64(int32(p)))
		} else {
			ovf = p>>32 != 0
		}
		m.setFlag(x86.FlagCF, ovf)
		m.setFlag(x86.FlagOF, ovf)
	}
}

// errDivide is an internal signal that execDiv faulted.
type errDivideT struct{}

func (errDivideT) Error() string { return "divide error" }

// execDiv implements DIV/IDIV; it returns a non-nil error on #DE.
func (m *Machine) execDiv(v uint32, w uint8, signed bool) error {
	if v&x86.WidthMask(w) == 0 {
		return errDivideT{}
	}
	switch w {
	case 1:
		num := m.regRead(x86.EAX, 2)
		if signed {
			n := int32(int16(num))
			d := int32(int8(v))
			q, r := n/d, n%d
			if q < -128 || q > 127 {
				return errDivideT{}
			}
			m.regWrite(x86.EAX, 1, uint32(q))
			m.regWrite(4, 1, uint32(r)) // AH
		} else {
			q, r := num/v, num%v
			if q > 0xFF {
				return errDivideT{}
			}
			m.regWrite(x86.EAX, 1, q)
			m.regWrite(4, 1, r) // AH
		}
	case 2:
		num := m.regRead(x86.EDX, 2)<<16 | m.regRead(x86.EAX, 2)
		if signed {
			n := int32(num)
			d := int32(int16(v))
			q, r := n/d, n%d
			if q < -32768 || q > 32767 {
				return errDivideT{}
			}
			m.regWrite(x86.EAX, 2, uint32(q))
			m.regWrite(x86.EDX, 2, uint32(r))
		} else {
			q, r := num/v, num%v
			if q > 0xFFFF {
				return errDivideT{}
			}
			m.regWrite(x86.EAX, 2, q)
			m.regWrite(x86.EDX, 2, r)
		}
	default:
		num := uint64(m.Regs[x86.EDX])<<32 | uint64(m.Regs[x86.EAX])
		if signed {
			n := int64(num)
			d := int64(int32(v))
			if n == -1<<63 && d == -1 {
				return errDivideT{}
			}
			q, r := n/d, n%d
			if q < -1<<31 || q > 1<<31-1 {
				return errDivideT{}
			}
			m.Regs[x86.EAX] = uint32(q)
			m.Regs[x86.EDX] = uint32(r)
		} else {
			q, r := num/uint64(v), num%uint64(v)
			if q > 0xFFFFFFFF {
				return errDivideT{}
			}
			m.Regs[x86.EAX] = uint32(q)
			m.Regs[x86.EDX] = uint32(r)
		}
	}
	return nil
}
