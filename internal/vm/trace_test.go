package vm

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"faultsec/internal/x86"
)

// runCounter runs a fresh counter machine to exit with the given trace
// knob and returns it for end-state comparison.
func runCounter(t *testing.T, noTraces bool) *Machine {
	t.Helper()
	m := buildCounter(t)
	m.NoTraces = noTraces
	runToExit(t, m)
	return m
}

// TestTraceRunDifferential runs the counter program to completion with
// and without superblock fusion and requires identical end state. Traces
// batch Steps/TSC/EIP updates, so any bookkeeping skew shows up here.
func TestTraceRunDifferential(t *testing.T) {
	fused := runCounter(t, false)
	stepped := runCounter(t, true)

	if fused.TraceHits == 0 {
		t.Fatal("fused run executed no traces")
	}
	if stepped.TraceHits != 0 {
		t.Fatalf("NoTraces run executed %d traces", stepped.TraceHits)
	}
	if fused.Regs != stepped.Regs {
		t.Errorf("Regs diverge: fused %v, stepped %v", fused.Regs, stepped.Regs)
	}
	if fused.EIP != stepped.EIP || fused.Flags != stepped.Flags {
		t.Errorf("EIP/Flags diverge: fused %#x/%#x, stepped %#x/%#x",
			fused.EIP, fused.Flags, stepped.EIP, stepped.Flags)
	}
	if fused.Steps != stepped.Steps || fused.TSC != stepped.TSC {
		t.Errorf("Steps/TSC diverge: fused %d/%d, stepped %d/%d",
			fused.Steps, fused.TSC, stepped.Steps, stepped.TSC)
	}
	for _, r := range fused.Mem.Regions() {
		sr := stepped.Mem.FindByName(r.Name)
		if !bytes.Equal(r.Data, sr.Data) {
			t.Errorf("region %q diverges between fused and stepped runs", r.Name)
		}
	}
}

// TestPokeInvalidatesFusedTrace pins the injection-path invalidation rule:
// a Poke into the span of an already-fused trace must drop the trace, and
// the next run must execute the poked bytes.
func TestPokeInvalidatesFusedTrace(t *testing.T) {
	m := buildCounter(t)
	runToExit(t, m)

	// The loop body fused a trace headed at the inc (0x1005).
	if m.Mem.traceLookup(0x1005) == nil {
		t.Fatal("no fused trace at the loop head after a full run")
	}

	// Poke the cmp immediate (0x1008) — inside the 0x1005 trace's span.
	if err := m.Mem.Poke(0x1008, []byte{0x14}); err != nil {
		t.Fatal(err)
	}
	if tr := m.Mem.traceLookup(0x1005); tr != nil {
		t.Fatal("trace at 0x1005 survived a poke into its span")
	}

	// Re-run from scratch state: the counter must now run to the poked
	// bound (20), proving re-fused traces decode the new bytes.
	m.EIP = 0x1000
	m.Steps, m.Fuel = 0, 0
	runToExit(t, m)
	d := m.Mem.FindByName("data")
	if got := uint32(d.Data[0]); got != 20 {
		t.Errorf("counter after poke = %d, want 20", got)
	}
}

// TestSMCAbortsTrace pins the self-modifying-code barrier: a store into
// the executable region mid-trace bumps invalGen and the trace aborts, so
// the following instructions re-decode from the stored bytes.
func TestSMCAbortsTrace(t *testing.T) {
	// mov byte [0x1010], 0x42   ; c6 05 10 10 00 00 42  (overwrite below)
	// mov ebx, 7                ; bb 07 00 00 00
	// mov ebx, 9                ; bb 09 00 00 00   <- at 0x100c..0x1010
	//                           ;    last imm byte at 0x1010 becomes 0x42
	// int 0x80 exit             ; b8 01 00 00 00 / cd 80
	code := []byte{
		0xc6, 0x05, 0x10, 0x10, 0x00, 0x00, 0x42,
		0xbb, 0x07, 0x00, 0x00, 0x00,
		0xbb, 0x09, 0x00, 0x00, 0x00,
		0xb8, 0x01, 0x00, 0x00, 0x00,
		0xcd, 0x80,
	}
	mem := NewMemory()
	// rwx text: the store targets its own region.
	if err := mem.Map(&Region{Name: "text", Base: 0x1000, Perm: PermRead | PermWrite | PermExec, Data: code}); err != nil {
		t.Fatal(err)
	}
	m := New(mem, exitKernel{})
	m.EIP = 0x1000
	runToExit(t, m)
	// With the barrier honored, the second mov's immediate was 0x42000009
	// by the time it executed.
	if got := m.Regs[x86.EBX]; got != 0x42000009 {
		t.Errorf("ebx = %#x, want 0x42000009 (stale trace executed pre-store bytes?)", got)
	}
}

// TestMutBytesNeverDirtiedSpanRestores pins the injector/restore contract:
// a Poke into a span the program itself never writes must still be
// reverted by the O(dirty) restore (Poke marks dirty like any store).
func TestMutBytesNeverDirtiedSpanRestores(t *testing.T) {
	m := buildCounter(t)
	m.SetBreakpoint(0x100b)
	var hit *BreakpointHit
	if err := m.Run(); !errors.As(err, &hit) {
		t.Fatalf("run ended with %v, want breakpoint", err)
	}
	snap := m.Snapshot()

	m2 := snap.NewMachine(exitKernel{})
	if m2.FullRestores != 1 {
		t.Fatalf("fresh machine recorded %d full restores, want 1", m2.FullRestores)
	}
	m2.ClearBreakpoints()
	// data[32..36) is never touched by the program (it stores only data[0..4)).
	if err := m2.Mem.Poke(0x2020, []byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	runToExit(t, m2)

	m2.ParanoidRestore = true
	if err := m2.Restore(snap); err != nil {
		t.Fatalf("restore after poked run: %v", err)
	}
	if m2.FullRestores != 1 {
		t.Errorf("re-restore took the full-copy path (%d full restores)", m2.FullRestores)
	}
	if m2.DirtyBytesCopied == 0 {
		t.Error("O(dirty) restore copied nothing despite poked+written pages")
	}
	d := m2.Mem.FindByName("data")
	if !bytes.Equal(d.Data[32:36], []byte{0, 0, 0, 0}) {
		t.Errorf("poked never-program-written span survived restore: % x", d.Data[32:36])
	}
}

// TestStringWriteSpansRegionsMarksBothDirty drives a REP STOSB across a
// region boundary and requires the dirty bitmaps of both regions to see
// it, so the following restore reverts both sides.
func TestStringWriteSpansRegionsMarksBothDirty(t *testing.T) {
	// mov edi, 0x200c ; bf 0c 20 00 00
	// mov ecx, 8      ; b9 08 00 00 00
	// mov al, 0x41    ; b0 41
	// rep stosb       ; f3 aa
	// int 0x80 exit   ; b8 01 00 00 00 / 31 db / cd 80
	code := []byte{
		0xbf, 0x0c, 0x20, 0x00, 0x00,
		0xb9, 0x08, 0x00, 0x00, 0x00,
		0xb0, 0x41,
		0xf3, 0xaa,
		0xb8, 0x01, 0x00, 0x00, 0x00,
		0x31, 0xdb,
		0xcd, 0x80,
	}
	mem := NewMemory()
	if err := mem.Map(&Region{Name: "text", Base: 0x1000, Perm: PermRead | PermExec, Data: code}); err != nil {
		t.Fatal(err)
	}
	if err := mem.Map(&Region{Name: "lo", Base: 0x2000, Perm: PermRead | PermWrite, Data: make([]byte, 16)}); err != nil {
		t.Fatal(err)
	}
	if err := mem.Map(&Region{Name: "hi", Base: 0x2010, Perm: PermRead | PermWrite, Data: make([]byte, 16)}); err != nil {
		t.Fatal(err)
	}
	m := New(mem, exitKernel{})
	m.EIP = 0x1000
	snap := m.Snapshot()

	m2 := snap.NewMachine(exitKernel{})
	runToExit(t, m2)
	for _, name := range []string{"lo", "hi"} {
		r := m2.Mem.FindByName(name)
		if r.dirtyPageCount() == 0 {
			t.Errorf("region %q has no dirty pages after the spanning store", name)
		}
	}
	m2.ParanoidRestore = true
	if err := m2.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	for _, name := range []string{"lo", "hi"} {
		r := m2.Mem.FindByName(name)
		if !bytes.Equal(r.Data, make([]byte, 16)) {
			t.Errorf("region %q not reverted: % x", name, r.Data)
		}
	}
}

// TestParanoidRestoreCatchesUntrackedWrite mutates region bytes behind the
// dirty bitmap's back (as a hypothetical future write path that forgot to
// mark would) and requires ParanoidRestore to refuse.
func TestParanoidRestoreCatchesUntrackedWrite(t *testing.T) {
	m := buildCounter(t)
	snap := m.Snapshot()
	m2 := snap.NewMachine(exitKernel{})
	m2.ParanoidRestore = true

	m2.Mem.FindByName("data").Data[5] ^= 0xFF // bypasses access/Poke
	err := m2.Restore(snap)
	if err == nil || !strings.Contains(err.Error(), "paranoid") {
		t.Fatalf("paranoid restore returned %v, want untracked-write error", err)
	}
}

// TestRestoreFreshMappingAllOrNothing pins the bugfix: a fresh-machine
// restore that fails mid-mapping must leave the address space empty, not
// partially populated.
func TestRestoreFreshMappingAllOrNothing(t *testing.T) {
	s := &Snapshot{regions: []Region{
		{Name: "a", Base: 0x1000, Perm: PermRead, Data: make([]byte, 64)},
		{Name: "b", Base: 0x1020, Perm: PermRead, Data: make([]byte, 64)}, // overlaps a
	}}
	m := New(NewMemory(), exitKernel{})
	if err := m.Restore(s); err == nil {
		t.Fatal("restore of overlapping snapshot regions succeeded")
	}
	if n := len(m.Mem.Regions()); n != 0 {
		t.Fatalf("failed fresh restore left %d regions mapped, want 0", n)
	}
}

// TestNoDirtyTrackingKnob pins the ablation: with the knob set no bitmaps
// are armed and every restore is a full-image copy, with identical
// outcomes.
func TestNoDirtyTrackingKnob(t *testing.T) {
	m := buildCounter(t)
	snap := m.Snapshot()

	m2 := snap.NewMachine(exitKernel{})
	m2.NoDirtyTracking = true
	for i := 0; i < 3; i++ {
		if err := m2.Restore(snap); err != nil {
			t.Fatal(err)
		}
		runToExit(t, m2)
	}
	if m2.DirtyBytesCopied != 0 {
		t.Errorf("NoDirtyTracking machine copied %d dirty bytes", m2.DirtyBytesCopied)
	}
	// 1 fresh-machine restore + 3 explicit restores, all full.
	if m2.FullRestores != 4 {
		t.Errorf("FullRestores = %d, want 4", m2.FullRestores)
	}
	d := m2.Mem.FindByName("data")
	if got := uint32(d.Data[0]); got != 10 {
		t.Errorf("counter = %d, want 10", got)
	}
}
