package asm

import (
	"fmt"
)

// maxRelaxIterations bounds the branch relaxation fixpoint loop. Promotion
// is monotonic (short branches only ever grow), so the loop terminates in
// at most one iteration per branch; the cap is a defensive bound.
const maxRelaxIterations = 1000

// Assemble translates assembly source into a relocatable object.
func Assemble(src string) (*Object, error) {
	items, err := parseSource(src)
	if err != nil {
		return nil, err
	}

	obj := &Object{
		Sections: make(map[string]*Section),
		Symbols:  make(map[string]Symbol),
	}

	// Relaxation fixpoint: compute item sizes and label offsets, promoting
	// short branches that cannot reach, until stable.
	textLabels := make(map[string]uint32)
	for iter := 0; ; iter++ {
		if iter >= maxRelaxIterations {
			return nil, fmt.Errorf("asm: branch relaxation did not converge")
		}
		changed, lerr := layoutPass(items, textLabels)
		if lerr != nil {
			return nil, lerr
		}
		promoted, perr := promotePass(items, textLabels)
		if perr != nil {
			return nil, perr
		}
		if !changed && !promoted {
			break
		}
	}

	return emit(items, textLabels, obj)
}

// layoutPass computes item sizes and label offsets for the current
// relaxation state. It reports whether any label offset changed.
func layoutPass(items []item, textLabels map[string]uint32) (bool, error) {
	offsets := map[string]uint32{"text": 0, "data": 0, "rodata": 0, "bss": 0}
	section := "text"
	changed := false
	for i := range items {
		it := &items[i]
		off := offsets[section]
		switch it.kind {
		case itemSection:
			section = it.name
		case itemLabel:
			if section == "text" {
				if old, ok := textLabels[it.name]; !ok || old != off {
					changed = true
				}
				textLabels[it.name] = off
			}
		case itemInst:
			if section != "text" {
				return false, errf(it.line, "instruction outside .text")
			}
			b, _, err := encodeInst(it, off, textLabels)
			if err != nil {
				return false, err
			}
			it.size = len(b)
			offsets[section] = off + uint32(len(b))
		case itemBytes:
			it.size = len(it.bytes)
			offsets[section] = off + uint32(it.size)
		case itemWords:
			it.size = 4 * len(it.words)
			offsets[section] = off + uint32(it.size)
		case itemSpace:
			it.size = it.n
			offsets[section] = off + uint32(it.n)
		case itemAlign:
			pad := (uint32(it.n) - off%uint32(it.n)) % uint32(it.n)
			it.size = int(pad)
			offsets[section] = off + pad
		case itemFunc, itemEndFunc, itemGlobal:
			// no size
		}
	}
	return changed, nil
}

// promotePass upgrades short branches whose displacement no longer fits in
// eight bits. It reports whether any branch was promoted.
func promotePass(items []item, textLabels map[string]uint32) (bool, error) {
	off := uint32(0)
	section := "text"
	promoted := false
	for i := range items {
		it := &items[i]
		switch it.kind {
		case itemSection:
			section = it.name
			continue
		}
		if section != "text" {
			continue
		}
		if it.kind == itemInst {
			isJcc := false
			if _, ok := condOf(it.mnem); ok {
				isJcc = true
			}
			isJmp := it.mnem == "jmp" && len(it.ops) == 1 &&
				it.ops[0].Kind == OpdImm && it.ops[0].Label != ""
			if isJcc || isJmp {
				tgt, ok := textLabels[it.ops[0].Label]
				if ok {
					size := uint32(it.size)
					rel := int64(tgt) - int64(off+size)
					short := rel >= -128 && rel <= 127
					if !short {
						if isJcc && !it.longJcc {
							it.longJcc = true
							promoted = true
						}
						if isJmp && !it.longJmp {
							it.longJmp = true
							promoted = true
						}
					}
				}
			}
			off += uint32(it.size)
			continue
		}
		off += uint32(it.size)
	}
	return promoted, nil
}

// emit produces the final object once layout is stable.
func emit(items []item, textLabels map[string]uint32, obj *Object) (*Object, error) {
	section := "text"
	var openFunc *Func
	for i := range items {
		it := &items[i]
		sec := obj.section(section)
		off := uint32(len(sec.Bytes))
		switch it.kind {
		case itemSection:
			section = it.name
		case itemGlobal:
			obj.Entry = it.name
		case itemLabel:
			if _, dup := obj.Symbols[it.name]; dup {
				return nil, errf(it.line, "duplicate label %q", it.name)
			}
			obj.Symbols[it.name] = Symbol{Section: section, Offset: off}
		case itemFunc:
			if section != "text" {
				return nil, errf(it.line, ".func outside .text")
			}
			if openFunc != nil {
				return nil, errf(it.line, ".func %q inside .func %q", it.name, openFunc.Name)
			}
			obj.Funcs = append(obj.Funcs, Func{Name: it.name, Start: off})
			openFunc = &obj.Funcs[len(obj.Funcs)-1]
		case itemEndFunc:
			if openFunc == nil {
				return nil, errf(it.line, ".endfunc without .func")
			}
			openFunc.End = off
			openFunc = nil
		case itemInst:
			// Validate branch labels now that layout is final.
			if _, ok := condOf(it.mnem); ok || it.mnem == "jmp" || it.mnem == "call" {
				if len(it.ops) == 1 && it.ops[0].Kind == OpdImm && it.ops[0].Label != "" {
					if _, found := textLabels[it.ops[0].Label]; !found {
						return nil, errf(it.line, "undefined branch target %q", it.ops[0].Label)
					}
				}
			}
			b, relocs, err := encodeInst(it, off, textLabels)
			if err != nil {
				return nil, err
			}
			if len(b) != it.size {
				return nil, errf(it.line, "internal: size changed after layout (%d != %d)", len(b), it.size)
			}
			for _, r := range relocs {
				r.Offset += off
				sec.Relocs = append(sec.Relocs, r)
			}
			sec.Bytes = append(sec.Bytes, b...)
		case itemBytes:
			sec.Bytes = append(sec.Bytes, it.bytes...)
		case itemWords:
			for _, wrd := range it.words {
				if wrd.Label != "" {
					sec.Relocs = append(sec.Relocs, Reloc{
						Kind:   RelocAbs32,
						Offset: uint32(len(sec.Bytes)),
						Symbol: wrd.Label,
					})
					sec.Bytes = append(sec.Bytes, 0, 0, 0, 0)
					continue
				}
				v := wrd.Value
				sec.Bytes = append(sec.Bytes, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
		case itemSpace:
			sec.Bytes = append(sec.Bytes, make([]byte, it.n)...)
		case itemAlign:
			pad := it.size
			fill := byte(0)
			if section == "text" {
				fill = 0x90 // nop
			}
			for j := 0; j < pad; j++ {
				sec.Bytes = append(sec.Bytes, fill)
			}
		}
	}
	if openFunc != nil {
		return nil, fmt.Errorf("asm: unterminated .func %q", openFunc.Name)
	}
	return obj, nil
}
