package asm

import (
	"strconv"
	"strings"

	"faultsec/internal/x86"
)

// OperandKind classifies a parsed operand.
type OperandKind int

// Operand kinds.
const (
	OpdReg OperandKind = iota + 1
	OpdImm
	OpdMem
)

// MemRef is a parsed memory operand [base + index*scale + disp] or
// [label + base + disp].
type MemRef struct {
	Base  int8 // x86.NoReg when absent
	Index int8
	Scale uint8
	Disp  int32
	Label string // symbol whose absolute address is added (abs32 reloc)
}

// Operand is one parsed instruction operand.
type Operand struct {
	Kind  OperandKind
	Reg   uint8 // register number for OpdReg
	W     uint8 // register width for OpdReg
	Imm   int64
	Label string // symbol reference for OpdImm (address-of)
	Mem   MemRef
	Size  uint8 // explicit size hint for OpdMem: 1, 2, 4; 0 = inferred
}

// itemKind classifies a source line.
type itemKind int

const (
	itemInst itemKind = iota + 1
	itemLabel
	itemBytes   // raw data (.db/.ascii/.asciz)
	itemWords   // 32-bit data (.dd), possibly label refs
	itemSpace   // .space n
	itemAlign   // .align n
	itemSection // .text/.data
	itemFunc    // .func name
	itemEndFunc // .endfunc
	itemGlobal  // .global name
)

// wordInit is one .dd initializer: either a constant or a symbol address.
type wordInit struct {
	Value int64
	Label string
}

// item is one parsed source line.
type item struct {
	kind    itemKind
	line    int
	name    string    // label/function/section name
	mnem    string    // instruction mnemonic
	ops     []Operand // instruction operands
	bytes   []byte    // data payload
	words   []wordInit
	n       int // .space/.align amount
	size    int // encoded size (layout pass result)
	longJcc bool
	longJmp bool
}

// parseSource splits the assembly source into items.
func parseSource(src string) ([]item, error) {
	var items []item
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// A line may carry "label: instruction".
		for {
			idx := labelSplit(line)
			if idx < 0 {
				break
			}
			name := strings.TrimSpace(line[:idx])
			if !validSymbol(name) {
				return nil, errf(lineNo, "invalid label %q", name)
			}
			items = append(items, item{kind: itemLabel, line: lineNo, name: name})
			line = strings.TrimSpace(line[idx+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		it, err := parseStatement(line, lineNo)
		if err != nil {
			return nil, err
		}
		items = append(items, it)
	}
	return items, nil
}

// stripComment removes ';' and '#' comments, respecting string literals.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if i == 0 || line[i-1] != '\\' {
				inStr = !inStr
			}
		case ';', '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

// labelSplit returns the index of a leading "label:" colon, or -1.
func labelSplit(line string) int {
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == ':':
			return i
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == '.', c == '$':
			continue
		default:
			return -1
		}
	}
	return -1
}

func validSymbol(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '_' || c == '.' || c == '$'
		if !ok {
			return false
		}
	}
	return true
}

// parseStatement parses a directive or instruction line.
func parseStatement(line string, lineNo int) (item, error) {
	if strings.HasPrefix(line, ".") {
		return parseDirective(line, lineNo)
	}
	mnem, rest := splitMnemonic(line)
	ops, err := parseOperands(rest, lineNo)
	if err != nil {
		return item{}, err
	}
	return item{kind: itemInst, line: lineNo, mnem: strings.ToLower(mnem), ops: ops}, nil
}

func splitMnemonic(line string) (string, string) {
	for i := 0; i < len(line); i++ {
		if line[i] == ' ' || line[i] == '\t' {
			return line[:i], strings.TrimSpace(line[i:])
		}
	}
	return line, ""
}

func parseDirective(line string, lineNo int) (item, error) {
	mnem, rest := splitMnemonic(line)
	switch mnem {
	case ".text", ".data", ".rodata", ".bss":
		return item{kind: itemSection, line: lineNo, name: mnem[1:]}, nil
	case ".global", ".globl":
		return item{kind: itemGlobal, line: lineNo, name: strings.TrimSpace(rest)}, nil
	case ".func":
		name := strings.TrimSpace(rest)
		if !validSymbol(name) {
			return item{}, errf(lineNo, ".func: invalid name %q", name)
		}
		return item{kind: itemFunc, line: lineNo, name: name}, nil
	case ".endfunc":
		return item{kind: itemEndFunc, line: lineNo}, nil
	case ".ascii", ".asciz":
		s, err := parseStringLiteral(strings.TrimSpace(rest))
		if err != nil {
			return item{}, errf(lineNo, "%s: %v", mnem, err)
		}
		b := []byte(s)
		if mnem == ".asciz" {
			b = append(b, 0)
		}
		return item{kind: itemBytes, line: lineNo, bytes: b}, nil
	case ".db":
		var b []byte
		for _, f := range splitOperandList(rest) {
			v, err := parseIntToken(strings.TrimSpace(f))
			if err != nil {
				return item{}, errf(lineNo, ".db: %v", err)
			}
			b = append(b, byte(v))
		}
		return item{kind: itemBytes, line: lineNo, bytes: b}, nil
	case ".dd":
		var ws []wordInit
		for _, f := range splitOperandList(rest) {
			f = strings.TrimSpace(f)
			if v, err := parseIntToken(f); err == nil {
				ws = append(ws, wordInit{Value: v})
			} else if validSymbol(f) {
				ws = append(ws, wordInit{Label: f})
			} else {
				return item{}, errf(lineNo, ".dd: bad value %q", f)
			}
		}
		return item{kind: itemWords, line: lineNo, words: ws}, nil
	case ".space", ".skip":
		v, err := parseIntToken(strings.TrimSpace(rest))
		if err != nil || v < 0 {
			return item{}, errf(lineNo, ".space: bad size %q", rest)
		}
		return item{kind: itemSpace, line: lineNo, n: int(v)}, nil
	case ".align":
		v, err := parseIntToken(strings.TrimSpace(rest))
		if err != nil || v <= 0 || v&(v-1) != 0 {
			return item{}, errf(lineNo, ".align: bad alignment %q", rest)
		}
		return item{kind: itemAlign, line: lineNo, n: int(v)}, nil
	}
	return item{}, errf(lineNo, "unknown directive %q", mnem)
}

// parseStringLiteral parses a double-quoted literal with C escapes.
func parseStringLiteral(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", errf(0, "expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var out strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", errf(0, "trailing backslash")
		}
		switch body[i] {
		case 'n':
			out.WriteByte('\n')
		case 'r':
			out.WriteByte('\r')
		case 't':
			out.WriteByte('\t')
		case '0':
			out.WriteByte(0)
		case '\\':
			out.WriteByte('\\')
		case '"':
			out.WriteByte('"')
		case 'x':
			if i+2 >= len(body) {
				return "", errf(0, "bad \\x escape")
			}
			v, err := strconv.ParseUint(body[i+1:i+3], 16, 8)
			if err != nil {
				return "", errf(0, "bad \\x escape")
			}
			out.WriteByte(byte(v))
			i += 2
		default:
			return "", errf(0, "unknown escape \\%c", body[i])
		}
	}
	return out.String(), nil
}

// splitOperandList splits a comma-separated operand list, respecting
// brackets and quotes.
func splitOperandList(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '[':
			if !inStr {
				depth++
			}
		case ']':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if strings.TrimSpace(s[start:]) != "" || len(out) > 0 && start < len(s) {
		out = append(out, s[start:])
	}
	if len(out) == 0 && strings.TrimSpace(s) != "" {
		out = append(out, s)
	}
	return out
}

func parseOperands(rest string, lineNo int) ([]Operand, error) {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil, nil
	}
	fields := splitOperandList(rest)
	ops := make([]Operand, 0, len(fields))
	for _, f := range fields {
		op, err := parseOperand(strings.TrimSpace(f), lineNo)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// regWidths maps register names to (number, width).
func regLookup(name string) (uint8, uint8, bool) {
	if r, ok := x86.RegNumber(name); ok {
		return r, 4, true
	}
	names8 := []string{"al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"}
	for i, n := range names8 {
		if n == name {
			return uint8(i), 1, true
		}
	}
	names16 := []string{"ax", "cx", "dx", "bx", "sp", "bp", "si", "di"}
	for i, n := range names16 {
		if n == name {
			return uint8(i), 2, true
		}
	}
	return 0, 0, false
}

func parseOperand(s string, lineNo int) (Operand, error) {
	low := strings.ToLower(s)

	// Optional size hint before a memory operand.
	size := uint8(0)
	for _, h := range [...]struct {
		kw string
		w  uint8
	}{{"byte ", 1}, {"word ", 2}, {"dword ", 4}} {
		if strings.HasPrefix(low, h.kw) {
			size = h.w
			s = strings.TrimSpace(s[len(h.kw):])
			low = strings.ToLower(s)
			break
		}
	}

	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return Operand{}, errf(lineNo, "unterminated memory operand %q", s)
		}
		mem, err := parseMemRef(s[1:len(s)-1], lineNo)
		if err != nil {
			return Operand{}, err
		}
		return Operand{Kind: OpdMem, Mem: mem, Size: size}, nil
	}
	if size != 0 {
		return Operand{}, errf(lineNo, "size hint on non-memory operand %q", s)
	}
	if r, w, ok := regLookup(low); ok {
		return Operand{Kind: OpdReg, Reg: r, W: w}, nil
	}
	if v, err := parseIntToken(s); err == nil {
		return Operand{Kind: OpdImm, Imm: v}, nil
	}
	if validSymbol(s) {
		return Operand{Kind: OpdImm, Label: s}, nil
	}
	return Operand{}, errf(lineNo, "cannot parse operand %q", s)
}

// parseMemRef parses the inside of a bracketed memory operand:
// terms joined by + or -, where a term is reg, reg*scale, number, or label.
func parseMemRef(s string, lineNo int) (MemRef, error) {
	m := MemRef{Base: x86.NoReg, Index: x86.NoReg, Scale: 1}
	s = strings.TrimSpace(s)
	if s == "" {
		return m, errf(lineNo, "empty memory operand")
	}
	// Tokenize into signed terms.
	type term struct {
		neg  bool
		text string
	}
	var terms []term
	cur := term{}
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '+' || (s[i] == '-' && i > start) {
			t := strings.TrimSpace(s[start:i])
			if t == "" && i < len(s) && s[i] == '-' {
				// leading minus handled below
			} else if t != "" {
				cur.text = t
				terms = append(terms, cur)
				cur = term{}
			}
			if i < len(s) {
				cur.neg = s[i] == '-'
			}
			start = i + 1
		}
	}
	if strings.TrimSpace(s)[0] == '-' {
		// A leading "-" applies to the first term.
		return m, errf(lineNo, "memory operand cannot start with '-'")
	}
	if len(terms) == 0 {
		return m, errf(lineNo, "memory operand %q has no terms", s)
	}
	for _, t := range terms {
		txt := strings.ToLower(strings.TrimSpace(t.text))
		// reg*scale or scale*reg
		if idx := strings.IndexByte(txt, '*'); idx >= 0 {
			a := strings.TrimSpace(txt[:idx])
			b := strings.TrimSpace(txt[idx+1:])
			var regName, scaleStr string
			if _, _, ok := regLookup(a); ok {
				regName, scaleStr = a, b
			} else {
				regName, scaleStr = b, a
			}
			r, w, ok := regLookup(regName)
			if !ok || w != 4 || t.neg {
				return m, errf(lineNo, "bad index term %q", t.text)
			}
			sc, err := strconv.Atoi(scaleStr)
			if err != nil || (sc != 1 && sc != 2 && sc != 4 && sc != 8) {
				return m, errf(lineNo, "bad scale in %q", t.text)
			}
			if m.Index != x86.NoReg {
				return m, errf(lineNo, "two index registers")
			}
			m.Index = int8(r)
			m.Scale = uint8(sc)
			continue
		}
		if r, w, ok := regLookup(txt); ok {
			if w != 4 || t.neg {
				return m, errf(lineNo, "bad register term %q", t.text)
			}
			switch {
			case m.Base == x86.NoReg:
				m.Base = int8(r)
			case m.Index == x86.NoReg:
				m.Index = int8(r)
				m.Scale = 1
			default:
				return m, errf(lineNo, "too many registers in %q", s)
			}
			continue
		}
		if v, err := parseIntToken(txt); err == nil {
			if t.neg {
				v = -v
			}
			m.Disp += int32(v)
			continue
		}
		if validSymbol(strings.TrimSpace(t.text)) {
			if t.neg || m.Label != "" {
				return m, errf(lineNo, "bad symbol term %q", t.text)
			}
			m.Label = strings.TrimSpace(t.text)
			continue
		}
		return m, errf(lineNo, "cannot parse memory term %q", t.text)
	}
	return m, nil
}

// parseIntToken parses decimal, hex (0x...), negative, and character ('c')
// constants.
func parseIntToken(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body := s[1 : len(s)-1]
		if body == "\\n" {
			return '\n', nil
		}
		if body == "\\r" {
			return '\r', nil
		}
		if body == "\\t" {
			return '\t', nil
		}
		if body == "\\0" {
			return 0, nil
		}
		if body == "\\\\" {
			return '\\', nil
		}
		if body == "\\'" {
			return '\'', nil
		}
		if len(body) == 1 {
			return int64(body[0]), nil
		}
		return 0, strconv.ErrSyntax
	}
	return strconv.ParseInt(s, 0, 64)
}
