// Package asm implements a two-pass x86 assembler for the study's server
// programs. It accepts an Intel-syntax subset, performs iterative branch
// relaxation (choosing 2-byte jcc rel8 or 6-byte jcc rel32 encodings the way
// a compiler's assembler would — the paper's injection targets are exactly
// these two encodings), and produces a relocatable object that
// internal/image links into a runnable address space.
package asm

import "fmt"

// RelocKind identifies how a relocation patches the section bytes.
type RelocKind int

// Relocation kinds.
const (
	// RelocAbs32 stores the absolute 32-bit address of the target symbol.
	RelocAbs32 RelocKind = iota + 1
)

// Reloc is one unresolved reference from a section to a symbol.
type Reloc struct {
	Kind   RelocKind
	Offset uint32 // location of the 4-byte field within the section
	Symbol string
	Addend int32
}

// Section is a named chunk of assembled bytes plus its relocations.
type Section struct {
	Name   string
	Bytes  []byte
	Relocs []Reloc
}

// Symbol is a named location within a section.
type Symbol struct {
	Section string
	Offset  uint32
}

// Func records the extent of one function within .text, used by the
// injector to enumerate branch instructions of the authentication sections.
type Func struct {
	Name  string
	Start uint32 // offset within .text
	End   uint32 // one past the last byte
}

// Object is the output of Assemble.
type Object struct {
	Sections map[string]*Section
	Symbols  map[string]Symbol
	Funcs    []Func
	// Entry is the symbol named by the last .global directive (by
	// convention "_start").
	Entry string
}

// Section returns the named section, creating it if needed.
func (o *Object) section(name string) *Section {
	if s, ok := o.Sections[name]; ok {
		return s
	}
	s := &Section{Name: name}
	o.Sections[name] = s
	return s
}

// FuncByName returns the extent of the named function.
func (o *Object) FuncByName(name string) (Func, bool) {
	for _, f := range o.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return Func{}, false
}

// Error is an assembly diagnostic with source position.
type Error struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
