package asm

import (
	"faultsec/internal/x86"
)

// enc accumulates the bytes and relocations of one instruction.
type enc struct {
	b      []byte
	relocs []Reloc // Offset is relative to the instruction start
}

func (e *enc) byte(v byte)     { e.b = append(e.b, v) }
func (e *enc) bytes(v ...byte) { e.b = append(e.b, v...) }

func (e *enc) imm8(v int64)  { e.byte(byte(v)) }
func (e *enc) imm16(v int64) { e.bytes(byte(v), byte(v>>8)) }
func (e *enc) imm32(v int64) {
	e.bytes(byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// immReloc emits a 4-byte absolute reference to symbol+addend.
func (e *enc) immReloc(symbol string, addend int32) {
	e.relocs = append(e.relocs, Reloc{
		Kind:   RelocAbs32,
		Offset: uint32(len(e.b)),
		Symbol: symbol,
		Addend: addend,
	})
	e.imm32(0)
}

// modrm encodes a ModRM (plus SIB and displacement) with the given reg
// field and r/m operand.
func (e *enc) modrm(reg uint8, op *Operand, line int) error {
	if op.Kind == OpdReg {
		e.byte(0xC0 | reg<<3 | op.Reg)
		return nil
	}
	if op.Kind != OpdMem {
		return errf(line, "internal: modrm on non-memory operand")
	}
	m := op.Mem

	if m.Label != "" {
		// Absolute symbol address + optional base/index: always disp32.
		switch {
		case m.Base == x86.NoReg && m.Index == x86.NoReg:
			e.byte(reg<<3 | 0x05) // mod=00 rm=101: disp32
			e.immReloc(m.Label, m.Disp)
		case m.Index == x86.NoReg && m.Base != int8(x86.ESP):
			e.byte(0x80 | reg<<3 | uint8(m.Base)) // mod=10
			e.immReloc(m.Label, m.Disp)
		default:
			// SIB form with disp32.
			base := byte(0x05)
			mod := byte(0x00)
			if m.Base != x86.NoReg {
				base = byte(m.Base)
				mod = 0x80
			}
			e.byte(mod | reg<<3 | 0x04)
			e.byte(scaleBits(m.Scale)<<6 | indexBits(m.Index)<<3 | base)
			e.immReloc(m.Label, m.Disp)
		}
		return nil
	}

	needSIB := m.Index != x86.NoReg || m.Base == int8(x86.ESP)
	switch {
	case m.Base == x86.NoReg && m.Index == x86.NoReg:
		e.byte(reg<<3 | 0x05)
		e.imm32(int64(m.Disp))
		return nil
	case m.Base == x86.NoReg: // index only: SIB, mod=00, base=101, disp32
		e.byte(reg<<3 | 0x04)
		e.byte(scaleBits(m.Scale)<<6 | indexBits(m.Index)<<3 | 0x05)
		e.imm32(int64(m.Disp))
		return nil
	}

	mod := byte(0x00)
	dispBytes := 0
	switch {
	case m.Disp == 0 && m.Base != int8(x86.EBP):
		mod, dispBytes = 0x00, 0
	case m.Disp >= -128 && m.Disp <= 127:
		mod, dispBytes = 0x40, 1
	default:
		mod, dispBytes = 0x80, 4
	}
	if needSIB {
		e.byte(mod | reg<<3 | 0x04)
		e.byte(scaleBits(m.Scale)<<6 | indexBits(m.Index)<<3 | uint8(m.Base))
	} else {
		e.byte(mod | reg<<3 | uint8(m.Base))
	}
	switch dispBytes {
	case 1:
		e.imm8(int64(m.Disp))
	case 4:
		e.imm32(int64(m.Disp))
	}
	return nil
}

func scaleBits(s uint8) byte {
	switch s {
	case 2:
		return 1
	case 4:
		return 2
	case 8:
		return 3
	}
	return 0
}

func indexBits(idx int8) byte {
	if idx == x86.NoReg {
		return 0x04 // none
	}
	return byte(idx)
}

// aluIndex maps ALU mnemonics to their opcode-group number n, where the
// reg-form opcodes are n<<3 | {0,1,2,3} and the imm group uses /n.
var aluIndex = map[string]uint8{
	"add": 0, "or": 1, "adc": 2, "sbb": 3,
	"and": 4, "sub": 5, "xor": 6, "cmp": 7,
}

// shiftIndex maps shift/rotate mnemonics to their group-2 /n field.
var shiftIndex = map[string]uint8{
	"rol": 0, "ror": 1, "rcl": 2, "rcr": 3,
	"shl": 4, "sal": 4, "shr": 5, "sar": 7,
}

// operandWidth infers the operand width of a two-operand instruction.
func operandWidth(ops []Operand, line int) (uint8, error) {
	w := uint8(0)
	for i := range ops {
		switch ops[i].Kind {
		case OpdReg:
			if w != 0 && w != ops[i].W {
				return 0, errf(line, "operand width mismatch")
			}
			w = ops[i].W
		case OpdMem:
			if ops[i].Size != 0 {
				if w != 0 && w != ops[i].Size {
					return 0, errf(line, "operand width mismatch")
				}
				w = ops[i].Size
			}
		}
	}
	if w == 0 {
		w = 4
	}
	return w, nil
}

func fitsImm8(v int64) bool { return v >= -128 && v <= 127 }

// encodeInst encodes one instruction. Branch instructions use the
// layout-pass relaxation flags (longJcc/longJmp) and the label offsets
// table; other label references become relocations.
//
//nolint:gocyclo // mnemonic dispatch is a table by nature
func encodeInst(it *item, textOff uint32, labels map[string]uint32) ([]byte, []Reloc, error) {
	e := &enc{}
	ops := it.ops
	line := it.line
	count := len(ops)

	need := func(n int) error {
		if count != n {
			return errf(line, "%s: expected %d operands, got %d", it.mnem, n, count)
		}
		return nil
	}

	relTo := func(size uint32) (int64, bool) {
		// Branch displacement to a .text label, if known this pass.
		tgt, ok := labels[ops[0].Label]
		if !ok {
			return 0, false
		}
		return int64(tgt) - int64(textOff+size), true
	}

	// Conditional branches.
	if cc, ok := condOf(it.mnem); ok {
		if err := need(1); err != nil {
			return nil, nil, err
		}
		if ops[0].Kind != OpdImm || ops[0].Label == "" {
			return nil, nil, errf(line, "%s: expected label operand", it.mnem)
		}
		if it.longJcc {
			rel, _ := relTo(6)
			e.bytes(x86.TwoByteEscape, x86.Jcc32Base+cc)
			e.imm32(rel)
		} else {
			rel, _ := relTo(2)
			e.bytes(x86.Jcc8Base+cc, byte(rel))
		}
		return e.b, e.relocs, nil
	}

	switch it.mnem {
	case "jmp":
		if err := need(1); err != nil {
			return nil, nil, err
		}
		switch {
		case ops[0].Kind == OpdImm && ops[0].Label != "":
			if it.longJmp {
				rel, _ := relTo(5)
				e.byte(0xE9)
				e.imm32(rel)
			} else {
				rel, _ := relTo(2)
				e.bytes(0xEB, byte(rel))
			}
		case ops[0].Kind == OpdReg && ops[0].W == 4:
			e.byte(0xFF)
			if err := e.modrm(4, &ops[0], line); err != nil {
				return nil, nil, err
			}
		case ops[0].Kind == OpdMem:
			e.byte(0xFF)
			if err := e.modrm(4, &ops[0], line); err != nil {
				return nil, nil, err
			}
		default:
			return nil, nil, errf(line, "jmp: bad operand")
		}
		return e.b, e.relocs, nil

	case "call":
		if err := need(1); err != nil {
			return nil, nil, err
		}
		switch {
		case ops[0].Kind == OpdImm && ops[0].Label != "":
			rel, _ := relTo(5)
			e.byte(0xE8)
			e.imm32(rel)
		case ops[0].Kind == OpdReg && ops[0].W == 4, ops[0].Kind == OpdMem:
			e.byte(0xFF)
			if err := e.modrm(2, &ops[0], line); err != nil {
				return nil, nil, err
			}
		default:
			return nil, nil, errf(line, "call: bad operand")
		}
		return e.b, e.relocs, nil

	case "ret":
		if count == 0 {
			e.byte(0xC3)
		} else if count == 1 && ops[0].Kind == OpdImm && ops[0].Label == "" {
			e.byte(0xC2)
			e.imm16(ops[0].Imm)
		} else {
			return nil, nil, errf(line, "ret: bad operands")
		}
		return e.b, e.relocs, nil

	case "leave":
		e.byte(0xC9)
		return e.b, e.relocs, nil
	case "nop":
		e.byte(0x90)
		return e.b, e.relocs, nil
	case "int3":
		e.byte(0xCC)
		return e.b, e.relocs, nil
	case "hlt":
		e.byte(0xF4)
		return e.b, e.relocs, nil
	case "cdq":
		e.byte(0x99)
		return e.b, e.relocs, nil
	case "cwde":
		e.byte(0x98)
		return e.b, e.relocs, nil
	case "pushf", "pushfd":
		e.byte(0x9C)
		return e.b, e.relocs, nil
	case "popf", "popfd":
		e.byte(0x9D)
		return e.b, e.relocs, nil

	case "int":
		if err := need(1); err != nil {
			return nil, nil, err
		}
		if ops[0].Kind != OpdImm || ops[0].Label != "" {
			return nil, nil, errf(line, "int: expected immediate")
		}
		e.bytes(0xCD, byte(ops[0].Imm))
		return e.b, e.relocs, nil

	case "push":
		if err := need(1); err != nil {
			return nil, nil, err
		}
		switch {
		case ops[0].Kind == OpdReg && ops[0].W == 4:
			e.byte(0x50 + ops[0].Reg)
		case ops[0].Kind == OpdImm && ops[0].Label != "":
			e.byte(0x68)
			e.immReloc(ops[0].Label, 0)
		case ops[0].Kind == OpdImm:
			if fitsImm8(ops[0].Imm) {
				e.bytes(0x6A, byte(ops[0].Imm))
			} else {
				e.byte(0x68)
				e.imm32(ops[0].Imm)
			}
		case ops[0].Kind == OpdMem:
			e.byte(0xFF)
			if err := e.modrm(6, &ops[0], line); err != nil {
				return nil, nil, err
			}
		default:
			return nil, nil, errf(line, "push: bad operand")
		}
		return e.b, e.relocs, nil

	case "pop":
		if err := need(1); err != nil {
			return nil, nil, err
		}
		switch {
		case ops[0].Kind == OpdReg && ops[0].W == 4:
			e.byte(0x58 + ops[0].Reg)
		case ops[0].Kind == OpdMem:
			e.byte(0x8F)
			if err := e.modrm(0, &ops[0], line); err != nil {
				return nil, nil, err
			}
		default:
			return nil, nil, errf(line, "pop: bad operand")
		}
		return e.b, e.relocs, nil

	case "inc", "dec":
		if err := need(1); err != nil {
			return nil, nil, err
		}
		sub := uint8(0)
		if it.mnem == "dec" {
			sub = 1
		}
		switch {
		case ops[0].Kind == OpdReg && ops[0].W == 4:
			e.byte(0x40 + sub*8 + ops[0].Reg)
		case ops[0].Kind == OpdReg && ops[0].W == 1:
			e.byte(0xFE)
			if err := e.modrm(sub, &ops[0], line); err != nil {
				return nil, nil, err
			}
		case ops[0].Kind == OpdMem:
			w := ops[0].Size
			if w == 0 {
				w = 4
			}
			if w == 1 {
				e.byte(0xFE)
			} else {
				e.byte(0xFF)
			}
			if err := e.modrm(sub, &ops[0], line); err != nil {
				return nil, nil, err
			}
		default:
			return nil, nil, errf(line, "%s: bad operand", it.mnem)
		}
		return e.b, e.relocs, nil

	case "not", "neg", "mul", "div", "idiv":
		if err := need(1); err != nil {
			return nil, nil, err
		}
		sub := map[string]uint8{"not": 2, "neg": 3, "mul": 4, "div": 6, "idiv": 7}[it.mnem]
		w, err := operandWidth(ops, line)
		if err != nil {
			return nil, nil, err
		}
		if w == 1 {
			e.byte(0xF6)
		} else {
			e.byte(0xF7)
		}
		if err := e.modrm(sub, &ops[0], line); err != nil {
			return nil, nil, err
		}
		return e.b, e.relocs, nil

	case "imul":
		switch count {
		case 1: // one-operand form
			w, err := operandWidth(ops, line)
			if err != nil {
				return nil, nil, err
			}
			if w == 1 {
				e.byte(0xF6)
			} else {
				e.byte(0xF7)
			}
			if err := e.modrm(5, &ops[0], line); err != nil {
				return nil, nil, err
			}
		case 2: // imul r32, r/m32
			if ops[0].Kind != OpdReg || ops[0].W != 4 {
				return nil, nil, errf(line, "imul: first operand must be r32")
			}
			e.bytes(0x0F, 0xAF)
			if err := e.modrm(ops[0].Reg, &ops[1], line); err != nil {
				return nil, nil, err
			}
		case 3: // imul r32, r/m32, imm
			if ops[0].Kind != OpdReg || ops[0].W != 4 || ops[2].Kind != OpdImm {
				return nil, nil, errf(line, "imul: bad three-operand form")
			}
			if fitsImm8(ops[2].Imm) {
				e.byte(0x6B)
				if err := e.modrm(ops[0].Reg, &ops[1], line); err != nil {
					return nil, nil, err
				}
				e.imm8(ops[2].Imm)
			} else {
				e.byte(0x69)
				if err := e.modrm(ops[0].Reg, &ops[1], line); err != nil {
					return nil, nil, err
				}
				e.imm32(ops[2].Imm)
			}
		default:
			return nil, nil, errf(line, "imul: bad operand count")
		}
		return e.b, e.relocs, nil

	case "lea":
		if err := need(2); err != nil {
			return nil, nil, err
		}
		if ops[0].Kind != OpdReg || ops[0].W != 4 || ops[1].Kind != OpdMem {
			return nil, nil, errf(line, "lea: expected r32, [mem]")
		}
		e.byte(0x8D)
		if err := e.modrm(ops[0].Reg, &ops[1], line); err != nil {
			return nil, nil, err
		}
		return e.b, e.relocs, nil

	case "movzx", "movsx":
		if err := need(2); err != nil {
			return nil, nil, err
		}
		if ops[0].Kind != OpdReg || ops[0].W != 4 {
			return nil, nil, errf(line, "%s: destination must be r32", it.mnem)
		}
		srcW := uint8(0)
		if ops[1].Kind == OpdReg {
			srcW = ops[1].W
		} else if ops[1].Kind == OpdMem {
			srcW = ops[1].Size
		}
		if srcW != 1 && srcW != 2 {
			return nil, nil, errf(line, "%s: source must be byte or word", it.mnem)
		}
		base := byte(0xB6)
		if it.mnem == "movsx" {
			base = 0xBE
		}
		if srcW == 2 {
			base++
		}
		e.bytes(0x0F, base)
		if err := e.modrm(ops[0].Reg, &ops[1], line); err != nil {
			return nil, nil, err
		}
		return e.b, e.relocs, nil

	case "xchg":
		if err := need(2); err != nil {
			return nil, nil, err
		}
		if ops[0].Kind != OpdReg || ops[1].Kind != OpdReg || ops[0].W != ops[1].W {
			return nil, nil, errf(line, "xchg: expected two same-width registers")
		}
		if ops[0].W == 1 {
			e.byte(0x86)
		} else {
			e.byte(0x87)
		}
		if err := e.modrm(ops[1].Reg, &ops[0], line); err != nil {
			return nil, nil, err
		}
		return e.b, e.relocs, nil

	case "mov":
		return encodeMov(e, it, ops, line)

	case "test":
		return encodeTest(e, it, ops, line)
	}

	if n, ok := aluIndex[it.mnem]; ok {
		return encodeALU(e, it, ops, n, line)
	}
	if n, ok := shiftIndex[it.mnem]; ok {
		return encodeShift(e, it, ops, n, line)
	}
	if cc, ok := setccOf(it.mnem); ok {
		if err := need(1); err != nil {
			return nil, nil, err
		}
		if !(ops[0].Kind == OpdReg && ops[0].W == 1 ||
			ops[0].Kind == OpdMem && ops[0].Size <= 1) {
			return nil, nil, errf(line, "%s: expected r/m8", it.mnem)
		}
		e.bytes(0x0F, 0x90+cc)
		if err := e.modrm(0, &ops[0], line); err != nil {
			return nil, nil, err
		}
		return e.b, e.relocs, nil
	}

	return nil, nil, errf(line, "unknown mnemonic %q", it.mnem)
}

// condOf maps a jcc mnemonic to its condition code.
func condOf(mnem string) (uint8, bool) {
	if len(mnem) < 2 || mnem[0] != 'j' || mnem == "jmp" {
		return 0, false
	}
	return x86.CondNumber(mnem[1:])
}

// setccOf maps a setcc mnemonic to its condition code.
func setccOf(mnem string) (uint8, bool) {
	if len(mnem) < 4 || mnem[:3] != "set" {
		return 0, false
	}
	return x86.CondNumber(mnem[3:])
}

func encodeMov(e *enc, it *item, ops []Operand, line int) ([]byte, []Reloc, error) {
	if len(ops) != 2 {
		return nil, nil, errf(line, "mov: expected 2 operands")
	}
	dst, src := &ops[0], &ops[1]
	w, err := operandWidth(ops, line)
	if err != nil {
		return nil, nil, err
	}
	if w == 2 {
		e.byte(0x66)
	}
	switch {
	case dst.Kind == OpdReg && src.Kind == OpdImm && src.Label != "":
		if w != 4 {
			return nil, nil, errf(line, "mov: label immediate requires r32")
		}
		e.byte(0xB8 + dst.Reg)
		e.immReloc(src.Label, int32(src.Imm))
	case dst.Kind == OpdReg && src.Kind == OpdImm:
		if w == 1 {
			e.byte(0xB0 + dst.Reg)
			e.imm8(src.Imm)
		} else {
			e.byte(0xB8 + dst.Reg)
			if w == 2 {
				e.imm16(src.Imm)
			} else {
				e.imm32(src.Imm)
			}
		}
	case dst.Kind == OpdReg && src.Kind == OpdReg:
		if w == 1 {
			e.byte(0x88)
		} else {
			e.byte(0x89)
		}
		if err := e.modrm(src.Reg, dst, line); err != nil {
			return nil, nil, err
		}
	case dst.Kind == OpdReg && src.Kind == OpdMem:
		if w == 1 {
			e.byte(0x8A)
		} else {
			e.byte(0x8B)
		}
		if err := e.modrm(dst.Reg, src, line); err != nil {
			return nil, nil, err
		}
	case dst.Kind == OpdMem && src.Kind == OpdReg:
		if w == 1 {
			e.byte(0x88)
		} else {
			e.byte(0x89)
		}
		if err := e.modrm(src.Reg, dst, line); err != nil {
			return nil, nil, err
		}
	case dst.Kind == OpdMem && src.Kind == OpdImm:
		if dst.Size == 0 && src.Label == "" && w == 4 {
			// width defaulted; fine for pointers/ints
		}
		if w == 1 {
			e.byte(0xC6)
		} else {
			e.byte(0xC7)
		}
		if err := e.modrm(0, dst, line); err != nil {
			return nil, nil, err
		}
		switch {
		case src.Label != "":
			e.immReloc(src.Label, int32(src.Imm))
		case w == 1:
			e.imm8(src.Imm)
		case w == 2:
			e.imm16(src.Imm)
		default:
			e.imm32(src.Imm)
		}
	default:
		return nil, nil, errf(line, "mov: unsupported operand combination")
	}
	return e.b, e.relocs, nil
}

func encodeTest(e *enc, it *item, ops []Operand, line int) ([]byte, []Reloc, error) {
	if len(ops) != 2 {
		return nil, nil, errf(line, "test: expected 2 operands")
	}
	dst, src := &ops[0], &ops[1]
	w, err := operandWidth(ops, line)
	if err != nil {
		return nil, nil, err
	}
	if w == 2 {
		e.byte(0x66)
	}
	switch {
	case src.Kind == OpdReg && (dst.Kind == OpdReg || dst.Kind == OpdMem):
		if w == 1 {
			e.byte(0x84)
		} else {
			e.byte(0x85)
		}
		if err := e.modrm(src.Reg, dst, line); err != nil {
			return nil, nil, err
		}
	case src.Kind == OpdImm:
		if dst.Kind == OpdReg && dst.Reg == x86.EAX {
			if w == 1 {
				e.byte(0xA8)
				e.imm8(src.Imm)
			} else {
				e.byte(0xA9)
				if w == 2 {
					e.imm16(src.Imm)
				} else {
					e.imm32(src.Imm)
				}
			}
			break
		}
		if w == 1 {
			e.byte(0xF6)
		} else {
			e.byte(0xF7)
		}
		if err := e.modrm(0, dst, line); err != nil {
			return nil, nil, err
		}
		switch w {
		case 1:
			e.imm8(src.Imm)
		case 2:
			e.imm16(src.Imm)
		default:
			e.imm32(src.Imm)
		}
	default:
		return nil, nil, errf(line, "test: unsupported operand combination")
	}
	return e.b, e.relocs, nil
}

func encodeALU(e *enc, it *item, ops []Operand, n uint8, line int) ([]byte, []Reloc, error) {
	if len(ops) != 2 {
		return nil, nil, errf(line, "%s: expected 2 operands", it.mnem)
	}
	dst, src := &ops[0], &ops[1]
	w, err := operandWidth(ops, line)
	if err != nil {
		return nil, nil, err
	}
	if w == 2 {
		e.byte(0x66)
	}
	switch {
	case src.Kind == OpdImm && src.Label != "":
		// op r/m32, addr-of-symbol
		if w != 4 {
			return nil, nil, errf(line, "%s: label immediate requires 32-bit operand", it.mnem)
		}
		e.byte(0x81)
		if err := e.modrm(n, dst, line); err != nil {
			return nil, nil, err
		}
		e.immReloc(src.Label, int32(src.Imm))
	case src.Kind == OpdImm:
		switch {
		case w == 1:
			e.byte(0x80)
			if err := e.modrm(n, dst, line); err != nil {
				return nil, nil, err
			}
			e.imm8(src.Imm)
		case fitsImm8(src.Imm):
			e.byte(0x83)
			if err := e.modrm(n, dst, line); err != nil {
				return nil, nil, err
			}
			e.imm8(src.Imm)
		case dst.Kind == OpdReg && dst.Reg == x86.EAX:
			e.byte(n<<3 | 0x05)
			if w == 2 {
				e.imm16(src.Imm)
			} else {
				e.imm32(src.Imm)
			}
		default:
			e.byte(0x81)
			if err := e.modrm(n, dst, line); err != nil {
				return nil, nil, err
			}
			if w == 2 {
				e.imm16(src.Imm)
			} else {
				e.imm32(src.Imm)
			}
		}
	case src.Kind == OpdReg && (dst.Kind == OpdReg || dst.Kind == OpdMem):
		op := n<<3 | 0x01
		if w == 1 {
			op = n << 3
		}
		e.byte(op)
		if err := e.modrm(src.Reg, dst, line); err != nil {
			return nil, nil, err
		}
	case dst.Kind == OpdReg && src.Kind == OpdMem:
		op := n<<3 | 0x03
		if w == 1 {
			op = n<<3 | 0x02
		}
		e.byte(op)
		if err := e.modrm(dst.Reg, src, line); err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, errf(line, "%s: unsupported operand combination", it.mnem)
	}
	return e.b, e.relocs, nil
}

func encodeShift(e *enc, it *item, ops []Operand, n uint8, line int) ([]byte, []Reloc, error) {
	if len(ops) != 2 {
		return nil, nil, errf(line, "%s: expected 2 operands", it.mnem)
	}
	dst, src := &ops[0], &ops[1]
	w, err := operandWidth([]Operand{ops[0]}, line)
	if err != nil {
		return nil, nil, err
	}
	switch {
	case src.Kind == OpdImm && src.Label == "":
		if src.Imm == 1 {
			if w == 1 {
				e.byte(0xD0)
			} else {
				e.byte(0xD1)
			}
			if err := e.modrm(n, dst, line); err != nil {
				return nil, nil, err
			}
		} else {
			if w == 1 {
				e.byte(0xC0)
			} else {
				e.byte(0xC1)
			}
			if err := e.modrm(n, dst, line); err != nil {
				return nil, nil, err
			}
			e.imm8(src.Imm)
		}
	case src.Kind == OpdReg && src.W == 1 && src.Reg == x86.ECX: // cl
		if w == 1 {
			e.byte(0xD2)
		} else {
			e.byte(0xD3)
		}
		if err := e.modrm(n, dst, line); err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, errf(line, "%s: count must be immediate or cl", it.mnem)
	}
	return e.b, e.relocs, nil
}
