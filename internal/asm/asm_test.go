package asm_test

import (
	"bytes"
	"testing"

	"faultsec/internal/asm"
	"faultsec/internal/x86"
)

func assemble(t *testing.T, src string) *asm.Object {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return obj
}

func textOf(t *testing.T, src string) []byte {
	t.Helper()
	obj := assemble(t, ".text\n"+src)
	sec, ok := obj.Sections["text"]
	if !ok {
		t.Fatal("no text section")
	}
	return sec.Bytes
}

// TestKnownEncodings pins the encoder to the exact bytes a real assembler
// produces (cross-checked against gas/objdump conventions).
func TestKnownEncodings(t *testing.T) {
	tests := []struct {
		src  string
		want []byte
	}{
		{"push eax", []byte{0x50}},
		{"push ecx", []byte{0x51}},
		{"push ebp", []byte{0x55}},
		{"pop ebx", []byte{0x5B}},
		{"push 8", []byte{0x6A, 0x08}},
		{"push 0x1234", []byte{0x68, 0x34, 0x12, 0x00, 0x00}},
		{"nop", []byte{0x90}},
		{"ret", []byte{0xC3}},
		{"ret 12", []byte{0xC2, 0x0C, 0x00}},
		{"leave", []byte{0xC9}},
		{"int 0x80", []byte{0xCD, 0x80}},
		{"int3", []byte{0xCC}},
		{"cdq", []byte{0x99}},
		{"cwde", []byte{0x98}},
		{"mov eax, 1", []byte{0xB8, 1, 0, 0, 0}},
		{"mov cl, 5", []byte{0xB1, 5}},
		{"mov eax, ebx", []byte{0x89, 0xD8}},
		{"mov eax, [ebp+8]", []byte{0x8B, 0x45, 0x08}},
		{"mov eax, [ebp-4]", []byte{0x8B, 0x45, 0xFC}},
		{"mov [ebp-4], eax", []byte{0x89, 0x45, 0xFC}},
		{"mov byte [ecx], al", []byte{0x88, 0x01}},
		{"mov eax, [esp+4]", []byte{0x8B, 0x44, 0x24, 0x04}},
		{"movzx eax, byte [ecx]", []byte{0x0F, 0xB6, 0x01}},
		{"movsx edx, byte [esi]", []byte{0x0F, 0xBE, 0x16}},
		{"lea eax, [ebp-64]", []byte{0x8D, 0x45, 0xC0}},
		{"add eax, ecx", []byte{0x01, 0xC8}},
		{"add esp, 8", []byte{0x83, 0xC4, 0x08}},
		{"add eax, 0x12345", []byte{0x05, 0x45, 0x23, 0x01, 0x00}},
		{"add ebx, 0x12345", []byte{0x81, 0xC3, 0x45, 0x23, 0x01, 0x00}},
		{"sub esp, 64", []byte{0x83, 0xEC, 0x40}},
		{"xor eax, eax", []byte{0x31, 0xC0}},
		{"cmp eax, ecx", []byte{0x39, 0xC8}},
		{"cmp byte [eax], 0", []byte{0x80, 0x38, 0x00}},
		{"test eax, eax", []byte{0x85, 0xC0}},
		{"test al, 1", []byte{0xA8, 0x01}},
		{"inc eax", []byte{0x40}},
		{"dec edi", []byte{0x4F}},
		{"neg eax", []byte{0xF7, 0xD8}},
		{"not ecx", []byte{0xF7, 0xD1}},
		{"imul eax, ecx", []byte{0x0F, 0xAF, 0xC1}},
		{"imul ecx, ecx, 4", []byte{0x6B, 0xC9, 0x04}},
		{"imul eax, eax, 1000", []byte{0x69, 0xC0, 0xE8, 0x03, 0x00, 0x00}},
		{"idiv ecx", []byte{0xF7, 0xF9}},
		{"shl eax, 4", []byte{0xC1, 0xE0, 0x04}},
		{"shl eax, 1", []byte{0xD1, 0xE0}},
		{"shl eax, cl", []byte{0xD3, 0xE0}},
		{"sar eax, cl", []byte{0xD3, 0xF8}},
		{"call eax", []byte{0xFF, 0xD0}},
		{"jmp eax", []byte{0xFF, 0xE0}},
		{"sete al", []byte{0x0F, 0x94, 0xC0}},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			got := textOf(t, tt.src)
			if !bytes.Equal(got, tt.want) {
				t.Errorf("% x, want % x", got, tt.want)
			}
		})
	}
}

func TestBranchRelaxation(t *testing.T) {
	// A short forward branch assembles to 2 bytes.
	shortSrc := `
.text
start:
	je near
	nop
near:
	ret
`
	obj := assemble(t, shortSrc)
	text := obj.Sections["text"].Bytes
	if text[0] != 0x74 || text[1] != 0x01 {
		t.Errorf("short jcc = % x", text[:2])
	}

	// A branch over >127 bytes must relax to the 6-byte form.
	longSrc := ".text\nstart:\n\tje far\n"
	for i := 0; i < 200; i++ {
		longSrc += "\tnop\n"
	}
	longSrc += "far:\n\tret\n"
	obj = assemble(t, longSrc)
	text = obj.Sections["text"].Bytes
	if text[0] != 0x0F || text[1] != 0x84 {
		t.Fatalf("long jcc = % x, want 0f 84", text[:2])
	}
	rel := int32(uint32(text[2]) | uint32(text[3])<<8 | uint32(text[4])<<16 | uint32(text[5])<<24)
	if rel != 200 {
		t.Errorf("rel32 = %d, want 200", rel)
	}

	// Backward short branch.
	backSrc := `
.text
loop:
	nop
	jne loop
`
	obj = assemble(t, backSrc)
	text = obj.Sections["text"].Bytes
	if text[1] != 0x75 || text[2] != 0xFD { // -3
		t.Errorf("backward jcc = % x", text[1:3])
	}
}

func TestJmpRelaxation(t *testing.T) {
	src := ".text\nstart:\n\tjmp far\n"
	for i := 0; i < 300; i++ {
		src += "\tnop\n"
	}
	src += "far:\n\tret\n"
	obj := assemble(t, src)
	text := obj.Sections["text"].Bytes
	if text[0] != 0xE9 {
		t.Errorf("long jmp opcode = %#02x, want 0xE9", text[0])
	}
}

func TestLabelsAndData(t *testing.T) {
	src := `
.text
start:
	mov eax, msg
	mov ebx, [counter]
	ret
.data
msg: .asciz "hi"
.align 4
counter: .dd 7
tab: .dd 1, 2, msg
.bss
buf: .space 32
`
	obj := assemble(t, src)
	if _, ok := obj.Symbols["msg"]; !ok {
		t.Error("msg symbol missing")
	}
	if sym := obj.Symbols["counter"]; sym.Section != "data" || sym.Offset != 4 {
		t.Errorf("counter symbol = %+v", sym)
	}
	data := obj.Sections["data"].Bytes
	if string(data[:3]) != "hi\x00" {
		t.Errorf("data = % x", data)
	}
	if len(obj.Sections["bss"].Bytes) != 32 {
		t.Errorf("bss size = %d", len(obj.Sections["bss"].Bytes))
	}
	// Three relocations: two in text (msg, counter), one in data (tab[2]).
	if n := len(obj.Sections["text"].Relocs); n != 2 {
		t.Errorf("text relocs = %d, want 2", n)
	}
	if n := len(obj.Sections["data"].Relocs); n != 1 {
		t.Errorf("data relocs = %d, want 1", n)
	}
}

func TestFuncExtents(t *testing.T) {
	src := `
.text
.func alpha
alpha:
	nop
	nop
	ret
.endfunc
.func beta
beta:
	ret
.endfunc
`
	obj := assemble(t, src)
	a, ok := obj.FuncByName("alpha")
	if !ok || a.Start != 0 || a.End != 3 {
		t.Errorf("alpha = %+v", a)
	}
	b, ok := obj.FuncByName("beta")
	if !ok || b.Start != 3 || b.End != 4 {
		t.Errorf("beta = %+v", b)
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"unknown_mnemonic", ".text\nfrobnicate eax\n"},
		{"bad_operand", ".text\nmov eax, [+]\n"},
		{"undefined_branch_target", ".text\nje nowhere\n"},
		{"duplicate_label", ".text\na:\na:\n\tret\n"},
		{"instruction_in_data", ".data\nmov eax, 1\n"},
		{"unterminated_func", ".text\n.func f\nf:\n\tret\n"},
		{"endfunc_without_func", ".text\n.endfunc\n"},
		{"bad_directive", ".text\n.wibble 3\n"},
		{"bad_string", `.data
s: .ascii "unterminated
`},
		{"mov_too_many_operands", ".text\nmov eax, ebx, ecx\n"},
		{"lea_with_register", ".text\nlea eax, ebx\n"},
		{"shift_bad_count", ".text\nshl eax, ebx\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := asm.Assemble(tt.src); err == nil {
				t.Error("assemble succeeded, want error")
			}
		})
	}
}

// TestRoundTripDecode: every instruction the assembler emits must decode
// back to a sensible instruction of identical length — the decoder and
// encoder agree on the ISA subset.
func TestRoundTripDecode(t *testing.T) {
	src := `
.text
f:
	push ebp
	mov ebp, esp
	sub esp, 0x40
	mov eax, [ebp+8]
	movzx ecx, byte [eax]
	test ecx, ecx
	je out
	add eax, 1
	imul ecx, ecx, 10
	cmp ecx, 0x100
	jg out
	xor edx, edx
	mov [ebp-4], edx
	inc dword [ebp-4]
	dec ecx
	shl eax, 2
	sar eax, cl
	call f
	jmp f
out:
	leave
	ret
`
	obj := assemble(t, src)
	text := obj.Sections["text"].Bytes
	off := 0
	for off < len(text) {
		in, err := x86.Decode(text[off:])
		if err != nil {
			t.Fatalf("decode at offset %d (% x): %v", off, text[off:min(off+8, len(text))], err)
		}
		if in.Len == 0 {
			t.Fatalf("zero-length instruction at %d", off)
		}
		off += int(in.Len)
	}
	if off != len(text) {
		t.Errorf("decode overran text: %d != %d", off, len(text))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestCommentsAndLabelsOnSameLine(t *testing.T) {
	src := `
.text
start: mov eax, 1 ; set return value
	ret           # done
`
	obj := assemble(t, src)
	text := obj.Sections["text"].Bytes
	want := []byte{0xB8, 1, 0, 0, 0, 0xC3}
	if !bytes.Equal(text, want) {
		t.Errorf("text = % x, want % x", text, want)
	}
}

func TestMemOperandForms(t *testing.T) {
	tests := []struct {
		src  string
		want []byte
	}{
		{"mov eax, [ebx]", []byte{0x8B, 0x03}},
		{"mov eax, [ebx+ecx]", []byte{0x8B, 0x04, 0x0B}},
		{"mov eax, [ebx+ecx*4]", []byte{0x8B, 0x04, 0x8B}},
		{"mov eax, [ecx*4+8]", []byte{0x8B, 0x04, 0x8D, 8, 0, 0, 0}},
		{"mov eax, [ebp]", []byte{0x8B, 0x45, 0x00}}, // ebp needs disp8=0
		{"mov eax, [esp]", []byte{0x8B, 0x04, 0x24}}, // esp needs SIB
		{"mov eax, [0x8049000]", []byte{0x8B, 0x05, 0x00, 0x90, 0x04, 0x08}},
		{"mov eax, [ebx+0x12345]", []byte{0x8B, 0x83, 0x45, 0x23, 0x01, 0x00}},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			got := textOf(t, tt.src)
			if !bytes.Equal(got, tt.want) {
				t.Errorf("% x, want % x", got, tt.want)
			}
		})
	}
}

func TestStringEscapes(t *testing.T) {
	obj := assemble(t, `
.data
s: .ascii "a\r\n\t\"\\\x41\0"
`)
	want := []byte{'a', '\r', '\n', '\t', '"', '\\', 'A', 0}
	if !bytes.Equal(obj.Sections["data"].Bytes, want) {
		t.Errorf("data = % x, want % x", obj.Sections["data"].Bytes, want)
	}
}

func TestAlignPadding(t *testing.T) {
	obj := assemble(t, `
.text
	nop
.align 4
after:
	ret
`)
	text := obj.Sections["text"].Bytes
	if len(text) != 5 {
		t.Fatalf("text len = %d, want 5", len(text))
	}
	for i := 1; i < 4; i++ {
		if text[i] != 0x90 {
			t.Errorf("padding byte %d = %#02x, want nop", i, text[i])
		}
	}
	if sym := obj.Symbols["after"]; sym.Offset != 4 {
		t.Errorf("after at %d, want 4", sym.Offset)
	}
}
