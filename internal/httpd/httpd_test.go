package httpd_test

import (
	"testing"

	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/httpd"
	"faultsec/internal/inject"
)

// TestGoldenRunsAllSchemes proves the HTTP daemon is functionally correct
// under every registered hardening scheme: all four client personas
// complete a fault-free session with the expected access result.
// GoldenRun itself fails when Granted() deviates from ShouldGrant.
func TestGoldenRunsAllSchemes(t *testing.T) {
	base, err := httpd.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range encoding.Names() {
		scheme, err := encoding.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		app, err := base.ForScheme(scheme)
		if err != nil {
			t.Fatalf("ForScheme(%s): %v", name, err)
		}
		for _, sc := range app.Scenarios {
			t.Run(name+"/"+sc.Name, func(t *testing.T) {
				if _, err := inject.GoldenRun(app, sc, 0); err != nil {
					t.Errorf("golden run %s under %s: %v", sc.Name, name, err)
				}
			})
		}
	}
}

// TestTargetsSpanBothAuthFuncs pins the injection target set: branch
// instructions from both check_basic and check_session, in address order.
func TestTargetsSpanBothAuthFuncs(t *testing.T) {
	app, err := httpd.Build()
	if err != nil {
		t.Fatal(err)
	}
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	perFunc := make(map[string]int)
	for _, tgt := range targets {
		perFunc[tgt.Func]++
	}
	for _, fn := range httpd.AuthFuncs {
		if perFunc[fn] == 0 {
			t.Errorf("no branch targets in %s", fn)
		}
	}
	if len(perFunc) != len(httpd.AuthFuncs) {
		t.Errorf("targets cover %v, want exactly %v", perFunc, httpd.AuthFuncs)
	}
}

// TestForgedCookieBreakInExists is the tentpole's security assertion: on
// the stock x86 encoding, at least one single-bit flip in check_session
// grants the forged-cookie attacker (Client3) the protected resource —
// the session-validation analog of the paper's Figure 1 break-in.
func TestForgedCookieBreakInExists(t *testing.T) {
	app, err := httpd.Build()
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := app.Scenario("Client3")
	if !ok {
		t.Fatal("no Client3")
	}
	golden, err := inject.GoldenRun(app, sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	var session []inject.Target
	for _, tgt := range targets {
		if tgt.Func == "check_session" {
			session = append(session, tgt)
		}
	}
	brk := 0
	for _, ex := range inject.Enumerate(session, encoding.SchemeX86) {
		res, err := inject.RunOne(app, sc, golden, ex, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == classify.OutcomeBRK {
			brk++
		}
	}
	if brk == 0 {
		t.Fatal("no single-bit flip in check_session grants the forged-cookie client")
	}
	t.Logf("check_session bitflip break-ins for Client3: %d", brk)
}

// TestWrongPasswordBreakInExists mirrors the paper's original attack
// pattern on the basic-auth function: a single-bit flip in check_basic
// can log in the wrong-password prober, who then walks away with a valid
// session cookie and the protected resource.
func TestWrongPasswordBreakInExists(t *testing.T) {
	app, err := httpd.Build()
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := app.Scenario("Client2")
	if !ok {
		t.Fatal("no Client2")
	}
	golden, err := inject.GoldenRun(app, sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	var basic []inject.Target
	for _, tgt := range targets {
		if tgt.Func == "check_basic" {
			basic = append(basic, tgt)
		}
	}
	brk := 0
	for _, ex := range inject.Enumerate(basic, encoding.SchemeX86) {
		res, err := inject.RunOne(app, sc, golden, ex, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == classify.OutcomeBRK {
			brk++
		}
	}
	if brk == 0 {
		t.Fatal("no single-bit flip in check_basic grants the wrong-password client")
	}
	t.Logf("check_basic bitflip break-ins for Client2: %d", brk)
}
