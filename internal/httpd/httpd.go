// Package httpd provides the study's third target application: a
// miniature HTTP/1.0 server guarding a protected resource. Unlike
// ftpd/sshd — whose single authentication shape is a line-oriented
// password check — httpd exercises the other security-critical branch
// family named by the fault-attack literature: session state. A
// basic-auth login (check_basic) issues a session cookie, and every
// subsequent request to the protected path re-validates that cookie
// (check_session), so multi-request sessions are the norm and the
// injection target set spans two structurally different auth functions.
//
// The server is written in MiniC and compiled to x86 by internal/cc; its
// deny/grant decisions are real compiled strcmp/test/jne idioms, exactly
// like ftpd's pass(). Base64 in the Authorization header is deliberately
// omitted (credentials travel as "user:password"): the simulator's LibC
// has no base64, and the encoding is transport framing, not security —
// the branches under study are identical either way.
package httpd

import (
	"fmt"
	"strings"
	"sync"

	"faultsec/internal/cc"
	"faultsec/internal/rt"
	"faultsec/internal/target"
)

// AuthFuncs names the authentication functions whose branch instructions
// form the injection target set: the basic-auth password check and the
// per-request session-cookie validation.
var AuthFuncs = []string{"check_basic", "check_session"}

// Compiled-in user database, htpasswd-style: hashes are computed in Go
// with the same xcrypt the MiniC runtime uses and baked into the source
// as hex strings. alice is deliberately first: the classic strcmp
// jne<->je corruption in check_session grants the first table entry, and
// granting a non-root identity must produce a clean break-in rather than
// tripping the uid-0 re-check.
type account struct {
	name     string
	password string
	salt     int32
	uid      int
}

var accounts = []account{
	{"alice", "wonderland", 21, 1001},
	{"bob", "builder99", 22, 1002},
	{"webmaster", "letmein22", 23, 1003},
	{"root", "t0psecret", 24, 0},
}

// hashString renders the xcrypt hash the way htpasswd stores crypt
// output.
func hashString(pw string, salt int32) string {
	return fmt.Sprintf("%08x", uint32(rt.Xcrypt(pw, salt)))
}

// Source returns the complete MiniC source of the HTTP daemon.
func Source() string {
	var names, hashes, salts, uids strings.Builder
	for _, a := range accounts {
		fmt.Fprintf(&names, "%q, ", a.name)
		fmt.Fprintf(&hashes, "%q, ", hashString(a.password, a.salt))
		fmt.Fprintf(&salts, "%d, ", a.salt)
		fmt.Fprintf(&uids, "%d, ", a.uid)
	}
	db := fmt.Sprintf(`
/* ---- compiled-in .htpasswd analog ---- */
char *ht_names[] = {%s0};
char *ht_hashes[] = {%s0};
int ht_salts[] = {%s0};
int ht_uids[] = {%s0};
/* server-side session table: 12 bytes per account, filled at startup */
char sid_tab[%d];
`, names.String(), hashes.String(), salts.String(), uids.String(), len(accounts)*12)
	return db + serverBody
}

// serverBody is the MiniC implementation (everything but the generated
// password database).
const serverBody = `
/* in-memory access log (httpd logs every auth event) */
char log_buf[1024];
int log_pos;
int log_events;

void log_event(char *what, char *detail) {
	int i = 0;
	log_events = log_events + 1;
	while (what[i]) {
		log_buf[log_pos % 1023] = what[i];
		log_pos = log_pos + 1;
		i = i + 1;
	}
	log_buf[log_pos % 1023] = ' ';
	log_pos = log_pos + 1;
	i = 0;
	while (detail[i]) {
		log_buf[log_pos % 1023] = detail[i];
		log_pos = log_pos + 1;
		i = i + 1;
	}
	log_buf[log_pos % 1023] = 10;
	log_pos = log_pos + 1;
}

/*
 * http_delay models the server's anti-brute-force sleep after a failed
 * basic-auth attempt (a busy loop, since the simulator has no timers).
 * Like ftpd's ftp_delay it stretches the transient window of
 * vulnerability past error activation.
 */
int delay_sink;
void http_delay() {
	int i;
	int v = 0;
	for (i = 0; i < 2000; i++) {
		v = v + i;
		if (v > 1000000) { v = v - 1000000; }
	}
	delay_sink = v;
}

/* xcrypt_str renders the xcrypt hash as hex, like crypt(3) output. */
char __xcbuf[12];
char *xcrypt_str(char *pw, int salt) {
	int h = xcrypt(pw, salt);
	int i = 7;
	while (i >= 0) {
		int d = h & 15;
		if (d < 10) { __xcbuf[i] = '0' + d; }
		else { __xcbuf[i] = 'a' + (d - 10); }
		h = h >> 4;
		i = i - 1;
	}
	__xcbuf[8] = 0;
	return __xcbuf;
}

/* put_hex8 renders h as 8 lowercase hex digits at dst. */
void put_hex8(char *dst, int h) {
	int i = 7;
	while (i >= 0) {
		int d = h & 15;
		if (d < 10) { dst[i] = '0' + d; }
		else { dst[i] = 'a' + (d - 10); }
		h = h >> 4;
		i = i - 1;
	}
	dst[8] = 0;
}

/* session_tok returns account i's slot in the session table. */
char *session_tok(int i) {
	return &sid_tab[i * 12];
}

/*
 * init_sessions fills the server-side session table at startup: one
 * 8-hex-digit token per account, derived from the account name and uid.
 * The derivation is cheap on purpose — tokens model server-side session
 * state (what a forged cookie is compared against), not a cryptographic
 * secret, and check_session runs on every request.
 */
void init_sessions() {
	int i = 0;
	while (ht_names[i]) {
		int h = 31415 + ht_uids[i];
		int j = 0;
		char *name = ht_names[i];
		while (name[j]) {
			h = h * 131 + name[j];
			h = h & 268435455;
			j = j + 1;
		}
		put_hex8(session_tok(i), h);
		i = i + 1;
	}
}

/*
 * check_basic — validates an Authorization: Basic credential of the form
 * "user:password" and returns the account index, or -1 to deny. The
 * deny/grant decision uses the paper's Figure 1 idiom: rval starts at 1
 * (deny), the strcmp()==0 check against the stored hash clears it, and
 * the final "if (rval)" branch decides. root may never authenticate over
 * HTTP even with the right password (console only) — the same
 * privilege-policy branch shape as ftpd's uid-0 check.
 */
int check_basic(char *cred) {
	int at;
	int i;
	int idx;
	int rval;
	char uname[64];
	char upw[64];
	char *xc;
	rval = 1;
	idx = 0 - 1;
	if (cred[0] == 0) { return 0 - 1; }
	at = strchr_at(cred, ':');
	if (at < 0) {
		log_event("BADCRED", cred);
		return 0 - 1;
	}
	if (at == 0) { return 0 - 1; }
	i = 0;
	while (i < at && i < 63) {
		uname[i] = cred[i];
		i = i + 1;
	}
	uname[i] = 0;
	i = 0;
	while (cred[at + 1 + i] && i < 63) {
		upw[i] = cred[at + 1 + i];
		i = i + 1;
	}
	upw[i] = 0;
	if (upw[0] == 0) { return 0 - 1; }
	i = 0;
	while (ht_names[i]) {
		if (strcmp(uname, ht_names[i]) == 0) { idx = i; break; }
		i = i + 1;
	}
	if (idx >= 0) {
		xc = xcrypt_str(upw, ht_salts[idx]);
		if (strcmp(xc, ht_hashes[idx]) == 0) { rval = 0; }
	}
	if (rval) {
		log_event("AUTHFAIL", uname);
		http_delay();
		return 0 - 1;
	}
	if (ht_uids[idx] == 0) {
		log_event("ROOTAUTH", uname);
		return 0 - 1;
	}
	log_event("AUTH", uname);
	return idx;
}

/*
 * check_session — validates a session cookie against the server-side
 * session table and returns the account index, or -1 to deny. It runs on
 * every request for the protected path, so unlike check_basic it is
 * exercised repeatedly per connection. The per-request uid-0 re-check is
 * deliberate defense in depth: even a root session token (which no login
 * can mint) never reaches the protected resource.
 */
int check_session(char *sid) {
	int i;
	int idx;
	idx = 0 - 1;
	if (sid[0] == 0) { return 0 - 1; }
	i = 0;
	while (ht_names[i]) {
		if (strcmp(sid, session_tok(i)) == 0) { idx = i; break; }
		i = i + 1;
	}
	if (idx < 0) {
		log_event("BADSID", sid);
		return 0 - 1;
	}
	if (ht_uids[idx] == 0) {
		log_event("ROOTSID", sid);
		return 0 - 1;
	}
	log_event("SESSION", ht_names[idx]);
	return idx;
}

/* ---- response plumbing ---- */

void resp_head(int code, char *reason) {
	write_str("HTTP/1.0 ");
	write_int(code);
	write_str(" ");
	write_line(reason);
	write_line("Server: minihttpd/1.0");
}

/* resp_body closes the header block and writes the one-line body. */
void resp_body(char *body) {
	write_str("Content-Length: ");
	write_int(strlen(body));
	write_line("");
	write_line("");
	write_line(body);
}

int hits;

void do_index() {
	resp_head(200, "OK");
	resp_body("Welcome to minihttpd. The archive index is empty.");
}

void do_status() {
	resp_head(200, "OK");
	resp_body("OK: minihttpd serving.");
}

void do_login(char *auth) {
	int idx;
	char body[96];
	if (auth[0] == 0) {
		resp_head(401, "Unauthorized");
		write_line("WWW-Authenticate: Basic realm=secret");
		resp_body("Authentication required.");
		return;
	}
	idx = check_basic(auth);
	if (idx < 0) {
		resp_head(401, "Unauthorized");
		write_line("WWW-Authenticate: Basic realm=secret");
		resp_body("Login incorrect.");
		return;
	}
	resp_head(200, "OK");
	write_str("Set-Cookie: sid=");
	write_line(session_tok(idx));
	strcpy(body, "Welcome, ");
	strcat(body, ht_names[idx]);
	strcat(body, ".");
	resp_body(body);
}

void do_secret(char *cookie) {
	int idx;
	idx = check_session(cookie);
	if (idx < 0) {
		if (cookie[0] == 0) {
			resp_head(401, "Unauthorized");
			resp_body("A session cookie is required.");
			return;
		}
		resp_head(403, "Forbidden");
		resp_body("Invalid session.");
		return;
	}
	resp_head(200, "OK");
	resp_body("TOP-SECRET: launch code 8161-2262-01.");
}

int main() {
	char line[256];
	char method[8];
	char path[128];
	char auth[128];
	char cookie[64];
	int n;
	int i;
	int j;
	int eof;
	eof = 0;
	init_sessions();
	write_line("MINIHTTPD/1.0 ready");
	while (1) {
		n = read_line(line, 256);
		if (n < 0) { break; }
		if (n == 0) { continue; }
		/* request line: METHOD SP path SP version */
		i = 0;
		while (line[i] && line[i] != ' ' && i < 7) {
			method[i] = line[i];
			i = i + 1;
		}
		method[i] = 0;
		while (line[i] == ' ') { i = i + 1; }
		j = 0;
		while (line[i] && line[i] != ' ' && j < 127) {
			path[j] = line[i];
			i = i + 1;
			j = j + 1;
		}
		path[j] = 0;
		/* headers until the empty line; capture credentials and cookie */
		auth[0] = 0;
		cookie[0] = 0;
		while (1) {
			n = read_line(line, 256);
			if (n < 0) { eof = 1; break; }
			if (n == 0) { break; }
			if (strncmp(line, "Authorization: Basic ", 21) == 0) {
				i = 21;
				j = 0;
				while (line[i] && j < 127) {
					auth[j] = line[i];
					i = i + 1;
					j = j + 1;
				}
				auth[j] = 0;
			}
			if (strncmp(line, "Cookie: sid=", 12) == 0) {
				i = 12;
				j = 0;
				while (line[i] && j < 63) {
					cookie[j] = line[i];
					i = i + 1;
					j = j + 1;
				}
				cookie[j] = 0;
			}
		}
		if (eof) { break; }
		hits = hits + 1;
		if (strcmp(method, "GET") != 0) {
			resp_head(501, "Not Implemented");
			resp_body("Only GET is supported.");
			continue;
		}
		if (strcmp(path, "/") == 0) { do_index(); continue; }
		if (strcmp(path, "/status") == 0) { do_status(); continue; }
		if (strcmp(path, "/login") == 0) { do_login(auth); continue; }
		if (strcmp(path, "/secret") == 0) { do_secret(cookie); continue; }
		resp_head(404, "Not Found");
		resp_body("No such resource.");
	}
	return 0;
}
`

func init() { target.Register("httpd", Build) }

// buildOnce caches the compiled application (the image is immutable; runs
// load fresh copies).
var buildOnce = sync.OnceValues(func() (*target.App, error) {
	img, err := rt.BuildImage(Source())
	if err != nil {
		return nil, fmt.Errorf("httpd: build: %w", err)
	}
	return &target.App{
		Name:      "httpd",
		Image:     img,
		AuthFuncs: AuthFuncs,
		Scenarios: Scenarios(),
		Rebuild:   BuildWithCodegen,
	}, nil
})

// Build compiles and links the HTTP daemon and returns the application
// bundle. The result is cached; callers share the immutable image.
func Build() (*target.App, error) { return buildOnce() }

// BuildWithCodegen builds the daemon with explicit codegen options (the
// hook hardening schemes rebuild through; not cached here —
// target.App.ForCodegen caches per option set).
func BuildWithCodegen(opts cc.Options) (*target.App, error) {
	img, err := rt.BuildImageWithOptions(opts, Source())
	if err != nil {
		return nil, fmt.Errorf("httpd: build: %w", err)
	}
	return &target.App{
		Name:      "httpd",
		Image:     img,
		AuthFuncs: AuthFuncs,
		Scenarios: Scenarios(),
		Rebuild:   BuildWithCodegen,
	}, nil
}

// Scenarios returns the four HTTP client access patterns. The session
// cookie makes multi-request sessions the norm: every persona issues
// several requests over one connection.
func Scenarios() []target.Scenario {
	return []target.Scenario{
		{
			Name:        "Client1",
			Description: "valid credentials: login, fetch the protected resource twice",
			ShouldGrant: true,
			New: func() target.Client {
				return newClient([]request{
					{path: "/login", auth: "alice:wonderland"},
					{path: "/secret", useSession: true},
					{path: "/secret", useSession: true},
					{path: "/"},
				})
			},
		},
		{
			Name:        "Client2",
			Description: "wrong-password probe (attack pattern), then tries the protected path",
			ShouldGrant: false,
			New: func() target.Client {
				return newClient([]request{
					{path: "/login", auth: "alice:letmein"},
					{path: "/login", auth: "alice:hunter2"},
					{path: "/secret", useSession: true},
				})
			},
		},
		{
			Name:        "Client3",
			Description: "forged/replayed session cookie straight at the protected path (attack pattern)",
			ShouldGrant: false,
			New: func() target.Client {
				return newClient([]request{
					{path: "/secret", cookie: "deadbeefcafe"},
					{path: "/secret", cookie: "deadbeefcafe"},
					{path: "/"},
				})
			},
		},
		{
			Name:        "Client4",
			Description: "anonymous direct-path probe: no credentials, no cookie",
			ShouldGrant: false,
			New: func() target.Client {
				return newClient([]request{
					{path: "/secret"},
					{path: "/status"},
					{path: "/"},
				})
			},
		},
	}
}
