package httpd

import (
	"strings"

	"faultsec/internal/target"
)

// phase tracks where the client is inside one HTTP exchange.
type phase int

const (
	phaseBanner  phase = iota // waiting for the server's ready line
	phaseStatus               // waiting for the response status line
	phaseHeaders              // consuming headers until the blank line
	phaseBody                 // the next line is the one-line body
	phaseDone
)

// request is one scripted HTTP exchange.
type request struct {
	path string
	// auth is the Authorization: Basic payload ("" omits the header).
	auth string
	// cookie is a literal session-cookie value ("" = none) — forged and
	// replayed cookies are scripted here.
	cookie string
	// useSession sends the cookie captured from a Set-Cookie response, if
	// one was issued. With no captured cookie the header is omitted, so
	// the request is still well-formed either way.
	useSession bool
}

// client is a deterministic HTTP client state machine driving a scripted
// request sequence over one connection. It follows the protocol strictly;
// on server lines it cannot interpret it keeps waiting, which surfaces as
// a session hang — exactly how the paper's clients experienced
// fail-silence violations.
type client struct {
	script   []request
	next     int
	ph       phase
	status   int
	inSecret bool // the in-flight request targets the protected path
	cookie   string
	granted  bool
	finished bool
}

var _ target.Client = (*client)(nil)

func newClient(script []request) *client {
	return &client{script: script, ph: phaseBanner}
}

// Granted reports whether the server served the protected resource (a 200
// response to a /secret request) — the break-in observable.
func (c *client) Granted() bool { return c.granted }

// Done reports whether the session script has completed.
func (c *client) Done() bool { return c.finished }

// statusCode extracts the three-digit code of an HTTP/1.0 status line,
// or 0.
func statusCode(line string) int {
	if !strings.HasPrefix(line, "HTTP/1.0 ") || len(line) < 12 {
		return 0
	}
	n := 0
	for i := 9; i < 12; i++ {
		if line[i] < '0' || line[i] > '9' {
			return 0
		}
		n = n*10 + int(line[i]-'0')
	}
	return n
}

// emit sends the next scripted request, or finishes the session.
func (c *client) emit() []string {
	if c.next >= len(c.script) {
		c.finished = true
		c.ph = phaseDone
		return nil
	}
	r := c.script[c.next]
	c.next++
	c.inSecret = r.path == "/secret"
	c.status = 0
	lines := []string{"GET " + r.path + " HTTP/1.0"}
	if r.auth != "" {
		lines = append(lines, "Authorization: Basic "+r.auth)
	}
	switch {
	case r.cookie != "":
		lines = append(lines, "Cookie: sid="+r.cookie)
	case r.useSession && c.cookie != "":
		lines = append(lines, "Cookie: sid="+c.cookie)
	}
	lines = append(lines, "")
	c.ph = phaseStatus
	return lines
}

// OnServerLine advances the state machine.
func (c *client) OnServerLine(line string) []string {
	switch c.ph {
	case phaseBanner:
		if strings.HasPrefix(line, "MINIHTTPD/") {
			return c.emit()
		}
		return nil

	case phaseStatus:
		if cd := statusCode(line); cd > 0 {
			c.status = cd
			c.ph = phaseHeaders
		}
		return nil

	case phaseHeaders:
		if line == "" {
			c.ph = phaseBody
			return nil
		}
		if strings.HasPrefix(line, "Set-Cookie: sid=") {
			c.cookie = strings.TrimPrefix(line, "Set-Cookie: sid=")
		}
		return nil

	case phaseBody:
		// The one-line body completes the response.
		if c.inSecret && c.status == 200 {
			c.granted = true
		}
		return c.emit()
	}
	return nil
}

// NewClientForTest builds an HTTP client running the given scripted
// sequence of (path, basic-auth credential, cookie) exchanges. It is
// exported for tests that exercise access patterns beyond the built-in
// four scenarios; a nil cookie entry means "use the captured session".
func NewClientForTest(paths, auths, cookies []string) target.Client {
	script := make([]request, len(paths))
	for i := range paths {
		r := request{path: paths[i]}
		if i < len(auths) {
			r.auth = auths[i]
		}
		if i < len(cookies) {
			if cookies[i] == "@session" {
				r.useSession = true
			} else {
				r.cookie = cookies[i]
			}
		}
		script[i] = r
	}
	return newClient(script)
}
