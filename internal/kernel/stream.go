package kernel

import (
	"io"

	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

// StreamKernel is a syscall handler whose connection is a real byte stream
// (for example a TCP connection or stdin/stdout). It lets the simulated
// servers talk to live clients — the inetd model for real — while the
// deterministic Kernel remains the harness for injection campaigns.
type StreamKernel struct {
	// RW is the connection; reads block like a real socket.
	RW io.ReadWriter
	// Transcript records traffic like the deterministic kernel.
	Transcript Transcript
}

// NewStream returns a kernel over a live byte stream.
func NewStream(rw io.ReadWriter) *StreamKernel {
	return &StreamKernel{RW: rw}
}

var _ vm.SyscallHandler = (*StreamKernel)(nil)

// Syscall dispatches an int 0x80 trap against the live stream.
func (k *StreamKernel) Syscall(m *vm.Machine) error {
	nr := m.Regs[x86.EAX]
	switch nr {
	case SysExit:
		return &vm.ExitStatus{Code: int(int32(m.Regs[x86.EBX]))}
	case SysRead:
		fd := m.Regs[x86.EBX]
		buf := m.Regs[x86.ECX]
		count := m.Regs[x86.EDX]
		if fd != 0 {
			m.Regs[x86.EAX] = negErrno(errnoEBADF)
			return nil
		}
		if count > 4096 {
			count = 4096
		}
		tmp := make([]byte, count)
		n, err := k.RW.Read(tmp)
		if n > 0 {
			for i := 0; i < n; i++ {
				if f := m.Mem.Write8(buf+uint32(i), uint32(tmp[i])); f != nil {
					m.Regs[x86.EAX] = negErrno(errnoEFAULT)
					return nil
				}
			}
			k.Transcript.Events = append(k.Transcript.Events,
				Event{Dir: DirClientToServer, Data: append([]byte(nil), tmp[:n]...)})
			m.Regs[x86.EAX] = uint32(n)
			return nil
		}
		if err != nil && err != io.EOF {
			m.Regs[x86.EAX] = negErrno(5) // EIO
			return nil
		}
		m.Regs[x86.EAX] = 0
		return nil
	case SysWrite:
		fd := m.Regs[x86.EBX]
		buf := m.Regs[x86.ECX]
		count := m.Regs[x86.EDX]
		if fd != 1 && fd != 2 {
			m.Regs[x86.EAX] = negErrno(errnoEBADF)
			return nil
		}
		data, f := m.Mem.Read(buf, int(count))
		if f != nil {
			m.Regs[x86.EAX] = negErrno(errnoEFAULT)
			return nil
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		k.Transcript.Events = append(k.Transcript.Events,
			Event{Dir: DirServerToClient, Data: cp})
		if _, err := k.RW.Write(cp); err != nil {
			m.Regs[x86.EAX] = negErrno(32) // EPIPE
			return nil
		}
		m.Regs[x86.EAX] = count
		return nil
	case SysTime:
		m.Regs[x86.EAX] = 0x3B9ACA00
		return nil
	case SysGetPID:
		m.Regs[x86.EAX] = 4242
		return nil
	default:
		m.Regs[x86.EAX] = negErrno(errnoENOSYS)
		return nil
	}
}
