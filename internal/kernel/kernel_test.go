package kernel_test

import (
	"errors"
	"strings"
	"testing"

	"faultsec/internal/kernel"
	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

// echoClient replies "pong" to "ping" and records everything.
type echoClient struct {
	seen []string
	done bool
}

func (c *echoClient) OnServerLine(line string) []string {
	c.seen = append(c.seen, line)
	if line == "ping" {
		return []string{"pong"}
	}
	return nil
}

func (c *echoClient) Done() bool { return c.done }

// machine builds a machine with a data buffer the tests can use; EIP points
// at an int 0x80.
func machine(t *testing.T, k vm.SyscallHandler) *vm.Machine {
	t.Helper()
	mem := vm.NewMemory()
	if err := mem.Map(&vm.Region{Name: "text", Base: 0x1000,
		Perm: vm.PermRead | vm.PermExec, Data: []byte{0xCD, 0x80, 0x90}}); err != nil {
		t.Fatal(err)
	}
	if err := mem.Map(&vm.Region{Name: "data", Base: 0x8000,
		Perm: vm.PermRead | vm.PermWrite, Data: make([]byte, 256)}); err != nil {
		t.Fatal(err)
	}
	m := vm.New(mem, k)
	m.EIP = 0x1000
	return m
}

// trap triggers one int 0x80 with the given registers.
func trap(t *testing.T, m *vm.Machine, nr, ebx, ecx, edx uint32) error {
	t.Helper()
	m.EIP = 0x1000
	m.Regs[x86.EAX] = nr
	m.Regs[x86.EBX] = ebx
	m.Regs[x86.ECX] = ecx
	m.Regs[x86.EDX] = edx
	return m.Step()
}

func TestWriteDeliversLinesToClient(t *testing.T) {
	client := &echoClient{}
	k := kernel.New(client)
	m := machine(t, k)
	msg := "ping\r\nsecond"
	if err := m.Mem.Poke(0x8000, []byte(msg)); err != nil {
		t.Fatal(err)
	}
	if err := trap(t, m, kernel.SysWrite, 1, 0x8000, uint32(len(msg))); err != nil {
		t.Fatal(err)
	}
	if len(client.seen) != 1 || client.seen[0] != "ping" {
		t.Errorf("client saw %q (partial line must be held back)", client.seen)
	}
	// Completing the partial line delivers it.
	if err := m.Mem.Poke(0x8000, []byte(" half\n")); err != nil {
		t.Fatal(err)
	}
	if err := trap(t, m, kernel.SysWrite, 1, 0x8000, 6); err != nil {
		t.Fatal(err)
	}
	if len(client.seen) != 2 || client.seen[1] != "second half" {
		t.Errorf("client saw %q", client.seen)
	}
}

func TestReadReturnsClientReply(t *testing.T) {
	client := &echoClient{}
	k := kernel.New(client)
	m := machine(t, k)
	if err := m.Mem.Poke(0x8000, []byte("ping\n")); err != nil {
		t.Fatal(err)
	}
	if err := trap(t, m, kernel.SysWrite, 1, 0x8000, 5); err != nil {
		t.Fatal(err)
	}
	if err := trap(t, m, kernel.SysRead, 0, 0x8000, 64); err != nil {
		t.Fatal(err)
	}
	n := m.Regs[x86.EAX]
	if n != 6 { // "pong\r\n"
		t.Fatalf("read returned %d", int32(n))
	}
	got, _ := m.Mem.Peek(0x8000, int(n))
	if string(got) != "pong\r\n" {
		t.Errorf("read data = %q", got)
	}
}

func TestReadHangWhenNothingPending(t *testing.T) {
	client := &echoClient{}
	k := kernel.New(client)
	m := machine(t, k)
	err := trap(t, m, kernel.SysRead, 0, 0x8000, 64)
	var hang *kernel.HangError
	if !errors.As(err, &hang) {
		t.Errorf("read = %v, want hang", err)
	}
}

func TestReadEOFWhenClientDone(t *testing.T) {
	client := &echoClient{done: true}
	k := kernel.New(client)
	m := machine(t, k)
	if err := trap(t, m, kernel.SysRead, 0, 0x8000, 64); err != nil {
		t.Fatal(err)
	}
	if m.Regs[x86.EAX] != 0 {
		t.Errorf("read at EOF = %d, want 0", int32(m.Regs[x86.EAX]))
	}
}

func TestBadFDAndEFAULT(t *testing.T) {
	client := &echoClient{}
	k := kernel.New(client)
	m := machine(t, k)
	if err := trap(t, m, kernel.SysRead, 3, 0x8000, 8); err != nil {
		t.Fatal(err)
	}
	if int32(m.Regs[x86.EAX]) != -9 { // EBADF
		t.Errorf("read bad fd = %d, want -9", int32(m.Regs[x86.EAX]))
	}
	// Write from unmapped memory: -EFAULT.
	if err := trap(t, m, kernel.SysWrite, 1, 0xDEAD0000, 8); err != nil {
		t.Fatal(err)
	}
	if int32(m.Regs[x86.EAX]) != -14 { // EFAULT
		t.Errorf("write from bad buf = %d, want -14", int32(m.Regs[x86.EAX]))
	}
}

func TestUnknownSyscallENOSYS(t *testing.T) {
	k := kernel.New(&echoClient{})
	m := machine(t, k)
	if err := trap(t, m, 9999, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if int32(m.Regs[x86.EAX]) != -38 { // ENOSYS
		t.Errorf("unknown syscall = %d, want -38", int32(m.Regs[x86.EAX]))
	}
}

func TestExitSyscall(t *testing.T) {
	k := kernel.New(&echoClient{})
	m := machine(t, k)
	err := trap(t, m, kernel.SysExit, 3, 0, 0)
	var exit *vm.ExitStatus
	if !errors.As(err, &exit) || exit.Code != 3 {
		t.Errorf("exit = %v", err)
	}
}

func TestOutputFlood(t *testing.T) {
	k := kernel.New(&echoClient{})
	k.MaxOutput = 100
	m := machine(t, k)
	if err := m.Mem.Poke(0x8000, []byte(strings.Repeat("x", 64))); err != nil {
		t.Fatal(err)
	}
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		err = trap(t, m, kernel.SysWrite, 1, 0x8000, 64)
	}
	var flood *kernel.FloodError
	if !errors.As(err, &flood) {
		t.Errorf("sustained writes = %v, want flood", err)
	}
}

func TestTranscriptViews(t *testing.T) {
	tr := kernel.Transcript{Events: []kernel.Event{
		{Dir: kernel.DirServerToClient, Data: []byte("220 hello\r\n")},
		{Dir: kernel.DirClientToServer, Data: []byte("USER x\r\n")},
		{Dir: kernel.DirServerToClient, Data: []byte("331 ")},
		{Dir: kernel.DirServerToClient, Data: []byte("pass?\r\n")},
	}}
	if got := string(tr.ServerBytes()); got != "220 hello\r\n331 pass?\r\n" {
		t.Errorf("ServerBytes = %q", got)
	}
	if got := string(tr.ClientBytes()); got != "USER x\r\n" {
		t.Errorf("ClientBytes = %q", got)
	}
	lines := tr.ServerLines()
	if len(lines) != 2 || lines[0] != "220 hello" || lines[1] != "331 pass?" {
		t.Errorf("ServerLines = %q", lines)
	}
	rendered := tr.String()
	want := "S> 220 hello\nC> USER x\nS> 331 pass?\n"
	if rendered != want {
		t.Errorf("String() = %q, want %q", rendered, want)
	}
}

func TestStreamKernel(t *testing.T) {
	var in, out strings.Builder
	in.WriteString("hello server\n")
	rw := struct {
		*strings.Reader
		*strings.Builder
	}{strings.NewReader(in.String()), &out}
	k := kernel.NewStream(rw)
	m := machine(t, k)

	// Write a greeting.
	if err := m.Mem.Poke(0x8000, []byte("hi\r\n")); err != nil {
		t.Fatal(err)
	}
	if err := trap(t, m, kernel.SysWrite, 1, 0x8000, 4); err != nil {
		t.Fatal(err)
	}
	if out.String() != "hi\r\n" {
		t.Errorf("stream out = %q", out.String())
	}
	// Read the client's bytes.
	if err := trap(t, m, kernel.SysRead, 0, 0x8000, 64); err != nil {
		t.Fatal(err)
	}
	n := m.Regs[x86.EAX]
	got, _ := m.Mem.Peek(0x8000, int(n))
	if string(got) != "hello server\n" {
		t.Errorf("stream read = %q", got)
	}
	// EOF afterwards.
	if err := trap(t, m, kernel.SysRead, 0, 0x8000, 64); err != nil {
		t.Fatal(err)
	}
	if m.Regs[x86.EAX] != 0 {
		t.Errorf("read at stream EOF = %d", int32(m.Regs[x86.EAX]))
	}
}
