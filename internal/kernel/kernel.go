// Package kernel provides the minimal Linux-like operating system
// personality underneath the study's server programs: the int 0x80 system
// call ABI (i386 calling convention), a deterministic duplex "network
// connection" on file descriptors 0/1 (the servers run inetd-style, exactly
// like wu-ftpd under inetd), transcript recording for fail-silence
// analysis, and hang detection.
//
// Determinism is load-bearing: the fault-free ("golden") run of every
// client scenario must be bit-for-bit reproducible so that any deviation
// observed in an injection run is attributable to the injected error.
package kernel

import (
	"bytes"
	"fmt"

	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

// Linux i386 system call numbers (the subset the runtime uses; everything
// else returns -ENOSYS, as a real kernel would).
const (
	SysExit   = 1
	SysRead   = 3
	SysWrite  = 4
	SysTime   = 13
	SysGetPID = 20
)

// Linux errno values returned as negative numbers in EAX.
const (
	errnoEBADF  = 9
	errnoEFAULT = 14
	errnoENOSYS = 38
)

// Client is the remote peer driving a server session. Implementations are
// deterministic state machines: the same sequence of server lines always
// produces the same client behaviour.
type Client interface {
	// OnServerLine is invoked for every complete line the server writes to
	// the connection (line terminators stripped). It returns zero or more
	// lines for the client to send back; each is terminated with CRLF on
	// the wire.
	OnServerLine(line string) []string
	// Done reports that the client has finished its session script and
	// will send nothing further; a subsequent server read sees EOF.
	Done() bool
}

// Dir is the direction of a transcript event.
type Dir int

// Transcript directions.
const (
	DirServerToClient Dir = iota + 1
	DirClientToServer
)

// Event is one chunk of connection traffic.
type Event struct {
	Dir  Dir
	Data []byte
}

// Transcript records the complete connection traffic of one session.
type Transcript struct {
	Events []Event
}

// ServerBytes returns the concatenated server-to-client byte stream.
func (t *Transcript) ServerBytes() []byte {
	var buf bytes.Buffer
	for _, e := range t.Events {
		if e.Dir == DirServerToClient {
			buf.Write(e.Data)
		}
	}
	return buf.Bytes()
}

// ClientBytes returns the concatenated client-to-server byte stream.
func (t *Transcript) ClientBytes() []byte {
	var buf bytes.Buffer
	for _, e := range t.Events {
		if e.Dir == DirClientToServer {
			buf.Write(e.Data)
		}
	}
	return buf.Bytes()
}

// ServerLines returns the server-to-client stream split into lines with
// terminators stripped. A trailing partial line is included.
func (t *Transcript) ServerLines() []string {
	return splitLines(t.ServerBytes())
}

func splitLines(b []byte) []string {
	if len(b) == 0 {
		return nil
	}
	raw := bytes.Split(b, []byte{'\n'})
	out := make([]string, 0, len(raw))
	for i, l := range raw {
		if i == len(raw)-1 && len(l) == 0 {
			break
		}
		out = append(out, string(bytes.TrimSuffix(l, []byte{'\r'})))
	}
	return out
}

// String renders the transcript as an annotated log for reports. Adjacent
// events in the same direction are merged so that multi-write lines render
// as single lines.
func (t *Transcript) String() string {
	var buf bytes.Buffer
	flush := func(dir Dir, data []byte) {
		if len(data) == 0 {
			return
		}
		tag := "S>"
		if dir == DirClientToServer {
			tag = "C>"
		}
		for _, line := range splitLines(data) {
			fmt.Fprintf(&buf, "%s %s\n", tag, line)
		}
	}
	var cur Dir
	var pending []byte
	for _, e := range t.Events {
		if e.Dir != cur {
			flush(cur, pending)
			pending = pending[:0]
			cur = e.Dir
		}
		pending = append(pending, e.Data...)
	}
	flush(cur, pending)
	return buf.String()
}

// HangError reports a deadlocked session: the server blocked in read(2)
// while the client was itself waiting for server output. The paper's
// clients observe this as a hang (a fail-silence violation).
type HangError struct {
	Steps uint64
}

// Error implements the error interface.
func (h *HangError) Error() string {
	return fmt.Sprintf("session hang: server blocked in read after %d instructions", h.Steps)
}

// FloodError reports that the server produced more output than the
// transcript cap allows (a corrupted server looping in write).
type FloodError struct {
	Bytes int
}

// Error implements the error interface.
func (f *FloodError) Error() string {
	return fmt.Sprintf("server output flood: %d bytes", f.Bytes)
}

// DefaultMaxOutput caps the server-to-client stream per session.
const DefaultMaxOutput = 1 << 20

// defaultMaxLine caps the server line accumulator; longer runs of
// unterminated output are flushed to the client as a jumbo line.
const defaultMaxLine = 8192

// Kernel implements vm.SyscallHandler for one server session.
type Kernel struct {
	Transcript Transcript

	// MaxOutput caps total server output; 0 means DefaultMaxOutput.
	MaxOutput int

	client      Client
	inBuf       []byte   // pending client-to-server bytes
	lineBuf     []byte   // partial server line, not yet delivered to client
	clientLines []string // every line delivered to the client, for snapshot replay
	serverOut   int      // total server-to-client bytes
	readsAtEOF  int
	exitedEarly bool
}

// New returns a kernel for one session driven by client.
func New(client Client) *Kernel {
	return &Kernel{client: client}
}

var _ vm.SyscallHandler = (*Kernel)(nil)

// Syscall dispatches an int 0x80 trap.
func (k *Kernel) Syscall(m *vm.Machine) error {
	nr := m.Regs[x86.EAX]
	switch nr {
	case SysExit:
		return &vm.ExitStatus{Code: int(int32(m.Regs[x86.EBX]))}
	case SysRead:
		return k.sysRead(m)
	case SysWrite:
		return k.sysWrite(m)
	case SysTime:
		// Deterministic clock derived from retired instructions.
		t := uint32(0x3B9ACA00) + uint32(m.Steps/100000)
		if buf := m.Regs[x86.EBX]; buf != 0 {
			if f := m.Mem.Write32(buf, t); f != nil {
				m.Regs[x86.EAX] = negErrno(errnoEFAULT)
				return nil
			}
		}
		m.Regs[x86.EAX] = t
		return nil
	case SysGetPID:
		m.Regs[x86.EAX] = 4242
		return nil
	default:
		m.Regs[x86.EAX] = negErrno(errnoENOSYS)
		return nil
	}
}

func negErrno(e int32) uint32 { return uint32(-e) }

func (k *Kernel) sysRead(m *vm.Machine) error {
	fd := m.Regs[x86.EBX]
	buf := m.Regs[x86.ECX]
	count := m.Regs[x86.EDX]
	if fd != 0 {
		m.Regs[x86.EAX] = negErrno(errnoEBADF)
		return nil
	}
	if count == 0 {
		m.Regs[x86.EAX] = 0
		return nil
	}
	if len(k.inBuf) == 0 {
		if k.client.Done() {
			// EOF. A corrupted server may spin on EOF; the fuel budget
			// bounds that, but track it for diagnostics.
			k.readsAtEOF++
			m.Regs[x86.EAX] = 0
			return nil
		}
		// Both ends waiting: deadlock, observed by the client as a hang.
		return &HangError{Steps: m.Steps}
	}
	n := uint32(len(k.inBuf))
	if n > count {
		n = count
	}
	// Copy byte-by-byte so a partially invalid buffer faults exactly where
	// the kernel's copy_to_user would stop: read(2) returns -EFAULT.
	for i := uint32(0); i < n; i++ {
		if f := m.Mem.Write8(buf+i, uint32(k.inBuf[i])); f != nil {
			m.Regs[x86.EAX] = negErrno(errnoEFAULT)
			return nil
		}
	}
	k.inBuf = k.inBuf[n:]
	m.Regs[x86.EAX] = n
	return nil
}

func (k *Kernel) sysWrite(m *vm.Machine) error {
	fd := m.Regs[x86.EBX]
	buf := m.Regs[x86.ECX]
	count := m.Regs[x86.EDX]
	if fd != 1 && fd != 2 {
		m.Regs[x86.EAX] = negErrno(errnoEBADF)
		return nil
	}
	if count == 0 {
		m.Regs[x86.EAX] = 0
		return nil
	}
	maxOut := k.MaxOutput
	if maxOut == 0 {
		maxOut = DefaultMaxOutput
	}
	data, f := m.Mem.Read(buf, int(count))
	if f != nil {
		// Try a partial write up to the fault, as write(2) does; if the
		// very first byte faults, return -EFAULT.
		n := uint32(0)
		for n < count {
			if _, ff := m.Mem.Read8(buf + n); ff != nil {
				break
			}
			n++
		}
		if n == 0 {
			m.Regs[x86.EAX] = negErrno(errnoEFAULT)
			return nil
		}
		data, _ = m.Mem.Read(buf, int(n))
		count = n
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	k.serverOut += len(cp)
	k.Transcript.Events = append(k.Transcript.Events, Event{Dir: DirServerToClient, Data: cp})
	if k.serverOut > maxOut {
		return &FloodError{Bytes: k.serverOut}
	}
	k.deliverToClient(cp)
	m.Regs[x86.EAX] = count
	return nil
}

// deliverToClient feeds server output through the line splitter and routes
// complete lines to the client state machine, queueing its replies.
func (k *Kernel) deliverToClient(data []byte) {
	k.lineBuf = append(k.lineBuf, data...)
	for {
		idx := bytes.IndexByte(k.lineBuf, '\n')
		var line []byte
		switch {
		case idx >= 0:
			line = k.lineBuf[:idx]
			k.lineBuf = k.lineBuf[idx+1:]
		case len(k.lineBuf) > defaultMaxLine:
			line = k.lineBuf
			k.lineBuf = nil
		default:
			return
		}
		text := string(bytes.TrimSuffix(line, []byte{'\r'}))
		k.clientLines = append(k.clientLines, text)
		for _, reply := range k.client.OnServerLine(text) {
			wire := append([]byte(reply), '\r', '\n')
			k.Transcript.Events = append(k.Transcript.Events,
				Event{Dir: DirClientToServer, Data: wire})
			k.inBuf = append(k.inBuf, wire...)
		}
	}
}
