package kernel

// Snapshot is a checkpoint of one session's kernel state: the connection
// transcript, the pending pipe bytes in both directions, output accounting,
// and the sequence of server lines already delivered to the client. It is
// the OS half of the campaign engine's fast-forward: paired with a
// vm.Snapshot taken at the same instant, it reconstructs the full
// machine+kernel+client state at the injection breakpoint.
//
// The client itself is not stored. Clients are deterministic state machines
// driven solely by server lines (the target.Client contract), so NewKernel
// rebuilds one mid-session by replaying the delivered lines into a fresh
// instance and discarding the replies it regenerates (they are already in
// the transcript and the input pipe).
//
// A Snapshot is immutable after capture and safe for concurrent NewKernel
// calls from multiple goroutines.
type Snapshot struct {
	events      []Event
	maxOutput   int
	inBuf       []byte
	lineBuf     []byte
	clientLines []string
	serverOut   int
	readsAtEOF  int
	exitedEarly bool
}

// Snapshot captures the kernel's session state.
func (k *Kernel) Snapshot() *Snapshot {
	s := &Snapshot{
		// Event headers are copied; the payload slices are shared. That is
		// safe: the kernel appends fresh payloads and never mutates old
		// ones.
		events:      append([]Event(nil), k.Transcript.Events...),
		maxOutput:   k.MaxOutput,
		inBuf:       append([]byte(nil), k.inBuf...),
		lineBuf:     append([]byte(nil), k.lineBuf...),
		clientLines: append([]string(nil), k.clientLines...),
		serverOut:   k.serverOut,
		readsAtEOF:  k.readsAtEOF,
		exitedEarly: k.exitedEarly,
	}
	return s
}

// NewKernel reconstructs a kernel mid-session from the snapshot, driving
// the given fresh client. The client must be a new instance of the same
// scenario the snapshot was taken under; it is fast-forwarded by replaying
// the delivered server lines.
func (s *Snapshot) NewKernel(fresh Client) *Kernel {
	for _, line := range s.clientLines {
		// Replies regenerated during replay are discarded: the originals
		// were already queued into inBuf and the transcript before capture.
		fresh.OnServerLine(line)
	}
	k := &Kernel{
		Transcript:  Transcript{Events: s.events[:len(s.events):len(s.events)]},
		MaxOutput:   s.maxOutput,
		client:      fresh,
		inBuf:       append([]byte(nil), s.inBuf...),
		lineBuf:     append([]byte(nil), s.lineBuf...),
		clientLines: s.clientLines[:len(s.clientLines):len(s.clientLines)],
		serverOut:   s.serverOut,
		readsAtEOF:  s.readsAtEOF,
		exitedEarly: s.exitedEarly,
	}
	return k
}
