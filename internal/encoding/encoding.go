// Package encoding implements the study's hardening schemes as a registry
// of pluggable countermeasures, the scheme-side mirror of the fault-model
// registry in internal/faultmodel.
//
// The paper evaluates exactly one countermeasure (Section 6): a new
// instruction-set encoding for conditional branches. The scheme re-encodes
// the sixteen conditional branch opcodes so that the last bit of the most
// significant nibble acts as an odd-parity bit over the least significant
// four bits, raising the minimum Hamming distance within the branch block
// from one to two — no single-bit error can turn one conditional branch
// into another. Displaced non-branch opcodes are swapped into the vacated
// code points (e.g. popa 0x61 <-> jno 0x71), making each map a byte-level
// involution. Evaluation uses the paper's emulation procedure (§6.2): an
// instruction picked for injection is mapped old->new, one bit of the
// mapped bytes is flipped, and the result is mapped new->old and executed
// on the (unmodified) processor. That countermeasure is the "parity"
// scheme here.
//
// A Scheme hardens a target at one of two points:
//
//   - corruption time (Corrupt): the scheme transforms how an injected
//     bit flip lands on the instruction bytes. "parity" is this kind —
//     the target image is unchanged and only the fault emulation differs.
//   - compile time (CCOptions): the scheme asks the compiler to emit
//     hardened code, so the campaign runs against a genuinely different
//     image. The branch countermeasures of "Securing Conditional Branches
//     in the Presence of Fault Attacks" (arXiv 1803.08359) — duplicated
//     comparisons ("dupcmp") and encoded branch conditions ("encbranch")
//     — are this kind.
//
// Every scheme defines both hooks; each is free to be the identity.
package encoding

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"faultsec/internal/cc"
	"faultsec/internal/x86"
)

// Scheme is one hardening scheme under evaluation.
type Scheme interface {
	// Name is the registry key ("x86", "parity", ...), also the wire name
	// in journal headers, fleet shard specs, and campaignd submit bodies.
	Name() string
	// Corrupt returns the instruction bytes after flipping bit
	// (byteIdx, bit) under the scheme's encoding. The input is not
	// modified; out-of-range positions return an unmodified copy. It must
	// be pure: the same (inst, byteIdx, bit) yields the same corruption in
	// every process, because the campaign-global experiment index space is
	// derived from it.
	Corrupt(inst []byte, byteIdx, bit int) []byte
	// CCOptions returns the code-generation passes the scheme requires.
	// The zero Options means the scheme runs against the baseline image.
	CCOptions() cc.Options
}

// Remapper is the optional interface of schemes whose hardening is a
// byte-level re-encoding of the branch opcodes. Only such schemes have a
// Table 4 to render (cmd/encmap).
type Remapper interface {
	Scheme
	// Table4 returns the scheme's (mnemonic, old, new) encoding table in
	// condition-code order.
	Table4() []Table4Row
	// MinHammingWithinBranchBlocks returns the minimum pairwise Hamming
	// distance among the 16 re-encoded opcodes of the 2-byte and 6-byte
	// branch blocks.
	MinHammingWithinBranchBlocks() (int, int)
}

var (
	mu       sync.RWMutex
	registry = make(map[string]Scheme)
)

// Register adds a scheme to the registry. It panics on a duplicate or
// empty name — schemes register at package init time, and a collision is a
// programming error, not a runtime condition.
func Register(s Scheme) {
	mu.Lock()
	defer mu.Unlock()
	name := s.Name()
	if name == "" {
		panic("encoding: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic("encoding: duplicate scheme " + name)
	}
	registry[name] = s
}

// Parse resolves a scheme by its wire name — the inverse of Scheme.Name,
// used by wire protocols (campaignd submissions, fleet shard specs). The
// empty string canonicalizes to "x86", the paper's baseline, so configs
// that predate the registry keep working unchanged.
func Parse(name string) (Scheme, error) {
	if name == "" {
		name = "x86"
	}
	mu.RLock()
	s, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("encoding: unknown scheme %q (have %v)", name, Names())
	}
	return s, nil
}

// Names lists the registered schemes, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SchemeName canonicalizes a scheme for identity comparisons: a nil Scheme
// is the baseline ("x86"), so configs and journal headers that omit the
// scheme mean the paper's stock encoding.
func SchemeName(s Scheme) string {
	if s == nil {
		return "x86"
	}
	return s.Name()
}

// Registered schemes. SchemeX86 and SchemeParity are the paper's pair;
// SchemeDupCompare and SchemeEncodedBranch are the cc-emitted branch
// countermeasures of arXiv 1803.08359.
var (
	// SchemeX86 is the stock Intel encoding (the paper's baseline).
	SchemeX86 Scheme = x86Scheme{}
	// SchemeParity is the paper's proposed re-encoding (Section 6).
	SchemeParity Scheme = parityScheme{}
	// SchemeDupCompare duplicates every comparison and traps when the two
	// evaluations disagree (arXiv 1803.08359 §4.1).
	SchemeDupCompare Scheme = codegenScheme{name: "dupcmp", opts: cc.Options{DupCompares: true}}
	// SchemeEncodedBranch carries each branch condition as a redundantly
	// encoded constant and traps on invalid states (arXiv 1803.08359 §4.2).
	SchemeEncodedBranch Scheme = codegenScheme{name: "encbranch", opts: cc.Options{EncodedBranches: true}}
)

func init() {
	Register(SchemeX86)
	Register(SchemeParity)
	Register(SchemeDupCompare)
	Register(SchemeEncodedBranch)
}

// x86Scheme is the baseline: faults land directly on the stock encoding.
type x86Scheme struct{}

func (x86Scheme) Name() string   { return "x86" }
func (x86Scheme) String() string { return "x86" }

func (x86Scheme) Corrupt(inst []byte, byteIdx, bit int) []byte {
	return directFlip(inst, byteIdx, bit)
}

func (x86Scheme) CCOptions() cc.Options { return cc.Options{} }

// parityScheme is the paper's re-encoding, emulated per §6.2 at corruption
// time: map old->new, flip, map new->old.
type parityScheme struct{}

func (parityScheme) Name() string   { return "parity" }
func (parityScheme) String() string { return "parity" }

func (parityScheme) Corrupt(inst []byte, byteIdx, bit int) []byte {
	out := make([]byte, len(inst))
	copy(out, inst)
	if byteIdx < 0 || byteIdx >= len(out) || bit < 0 || bit > 7 {
		return out
	}
	MapInstruction(out)
	out[byteIdx] ^= 1 << bit
	MapInstruction(out)
	return out
}

func (parityScheme) CCOptions() cc.Options { return cc.Options{} }

func (parityScheme) Table4() []Table4Row { return Table4() }

func (parityScheme) MinHammingWithinBranchBlocks() (int, int) {
	return MinHammingWithinBranchBlocks()
}

// codegenScheme is a compile-time countermeasure: the fault emulation is
// the baseline direct flip, but the target image is rebuilt with the
// scheme's code-generation passes enabled.
type codegenScheme struct {
	name string
	opts cc.Options
}

func (s codegenScheme) Name() string          { return s.name }
func (s codegenScheme) String() string        { return s.name }
func (s codegenScheme) CCOptions() cc.Options { return s.opts }

func (s codegenScheme) Corrupt(inst []byte, byteIdx, bit int) []byte {
	return directFlip(inst, byteIdx, bit)
}

func directFlip(inst []byte, byteIdx, bit int) []byte {
	out := make([]byte, len(inst))
	copy(out, inst)
	if byteIdx < 0 || byteIdx >= len(out) || bit < 0 || bit > 7 {
		return out
	}
	out[byteIdx] ^= 1 << bit
	return out
}

// Corrupt returns the instruction bytes after flipping bit (byteIdx, bit)
// under the given scheme. A nil scheme is the baseline. The input is not
// modified.
func Corrupt(inst []byte, byteIdx, bit int, scheme Scheme) []byte {
	if scheme == nil {
		scheme = SchemeX86
	}
	return scheme.Corrupt(inst, byteIdx, bit)
}

// parityRemap returns the re-encoded byte for an opcode in a 16-opcode
// branch block starting at base (0x70 for jcc rel8, 0x80 for the second
// byte of jcc rel32): bit 4 is set so that the five low bits have odd
// parity.
func parityRemap(b byte) byte {
	low5 := b & 0x1F
	if bits.OnesCount8(low5)%2 == 1 {
		return b // already odd parity
	}
	return b ^ 0x10
}

// buildMap constructs the byte-level involution for a branch block.
func buildMap(base byte) [256]byte {
	var m [256]byte
	for i := range m {
		m[i] = byte(i)
	}
	for b := base; b < base+0x10; b++ {
		nb := parityRemap(b)
		if nb != b {
			// swap with the displaced non-branch opcode
			m[b] = nb
			m[nb] = b
		}
	}
	return m
}

// map2 re-encodes the one-byte opcode position (2-byte jcc block at
// 0x70..0x7F); map6 re-encodes the second opcode byte of 0x0F-escaped
// instructions (6-byte jcc block at 0x80..0x8F).
var (
	map2 = buildMap(x86.Jcc8Base)
	map6 = buildMap(x86.Jcc32Base)
)

// Map2 returns the new-encoding byte for a one-byte opcode. It is an
// involution: Map2(Map2(b)) == b.
func Map2(b byte) byte { return map2[b] }

// Map6 returns the new-encoding byte for the second opcode byte of an
// 0x0F-escaped instruction. It is an involution.
func Map6(b byte) byte { return map6[b] }

// MapInstruction translates instruction bytes between encodings in place
// (the map is its own inverse). Only opcode bytes change: byte 0 through
// Map2, or byte 1 through Map6 when byte 0 is the 0x0F escape.
func MapInstruction(b []byte) {
	if len(b) == 0 {
		return
	}
	if b[0] == x86.TwoByteEscape {
		if len(b) > 1 {
			b[1] = map6[b[1]]
		}
		return
	}
	b[0] = map2[b[0]]
}

// PaperTable4 reproduces the paper's Table 4 as (mnemonic, old, new) rows
// for both the 2-byte and 6-byte conditional branch sets, derived from the
// parity construction. A unit test pins these values to the published
// table.
type Table4Row struct {
	Mnemonic  string
	Old2      byte
	New2      byte
	Old6Byte2 byte // second opcode byte; the first is always 0x0F
	New6Byte2 byte
}

// Table4 returns the derived encoding table in condition-code order.
func Table4() []Table4Row {
	mnemonics := []string{
		"JO", "JNO", "JB", "JNB", "JE", "JNE", "JNA", "JA",
		"JS", "JNS", "JP", "JNP", "JL", "JNL", "JNG", "JG",
	}
	rows := make([]Table4Row, 16)
	for i := range rows {
		old2 := byte(x86.Jcc8Base + i)
		old6 := byte(x86.Jcc32Base + i)
		rows[i] = Table4Row{
			Mnemonic:  mnemonics[i],
			Old2:      old2,
			New2:      map2[old2],
			Old6Byte2: old6,
			New6Byte2: map6[old6],
		}
	}
	return rows
}

// MinHammingWithinBranchBlocks returns the minimum pairwise Hamming
// distance among the 16 re-encoded opcodes of each block (2-byte set,
// 6-byte set). The construction guarantees 2.
func MinHammingWithinBranchBlocks() (int, int) {
	var set2, set6 []byte
	for i := 0; i < 16; i++ {
		set2 = append(set2, map2[x86.Jcc8Base+byte(i)])
		set6 = append(set6, map6[x86.Jcc32Base+byte(i)])
	}
	return x86.MinPairwiseHamming(set2), x86.MinPairwiseHamming(set6)
}
