// Package encoding implements the paper's new instruction-set encoding for
// conditional branches (Section 6). The scheme re-encodes the sixteen
// conditional branch opcodes so that the last bit of the most significant
// nibble acts as an odd-parity bit over the least significant four bits,
// raising the minimum Hamming distance within the branch block from one to
// two — no single-bit error can turn one conditional branch into another.
// Displaced non-branch opcodes are swapped into the vacated code points
// (e.g. popa 0x61 <-> jno 0x71), making each map a byte-level involution.
//
// Evaluation uses the paper's emulation procedure (§6.2): an instruction
// picked for injection is mapped old->new, one bit of the mapped bytes is
// flipped, and the result is mapped new->old and executed on the
// (unmodified) processor.
package encoding

import (
	"fmt"
	"math/bits"

	"faultsec/internal/x86"
)

// Scheme selects the instruction encoding under evaluation.
type Scheme int

// Encoding schemes.
const (
	// SchemeX86 is the stock Intel encoding (the paper's baseline).
	SchemeX86 Scheme = iota + 1
	// SchemeParity is the paper's proposed re-encoding.
	SchemeParity
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeX86:
		return "x86"
	case SchemeParity:
		return "parity"
	}
	return "unknown"
}

// Parse resolves a scheme name as produced by Scheme.String — the inverse
// used by wire protocols (campaignd submissions, fleet shard specs).
func Parse(name string) (Scheme, error) {
	switch name {
	case "x86":
		return SchemeX86, nil
	case "parity":
		return SchemeParity, nil
	}
	return 0, fmt.Errorf("encoding: unknown scheme %q (want \"x86\" or \"parity\")", name)
}

// parityRemap returns the re-encoded byte for an opcode in a 16-opcode
// branch block starting at base (0x70 for jcc rel8, 0x80 for the second
// byte of jcc rel32): bit 4 is set so that the five low bits have odd
// parity.
func parityRemap(b byte) byte {
	low5 := b & 0x1F
	if bits.OnesCount8(low5)%2 == 1 {
		return b // already odd parity
	}
	return b ^ 0x10
}

// buildMap constructs the byte-level involution for a branch block.
func buildMap(base byte) [256]byte {
	var m [256]byte
	for i := range m {
		m[i] = byte(i)
	}
	for b := base; b < base+0x10; b++ {
		nb := parityRemap(b)
		if nb != b {
			// swap with the displaced non-branch opcode
			m[b] = nb
			m[nb] = b
		}
	}
	return m
}

// map2 re-encodes the one-byte opcode position (2-byte jcc block at
// 0x70..0x7F); map6 re-encodes the second opcode byte of 0x0F-escaped
// instructions (6-byte jcc block at 0x80..0x8F).
var (
	map2 = buildMap(x86.Jcc8Base)
	map6 = buildMap(x86.Jcc32Base)
)

// Map2 returns the new-encoding byte for a one-byte opcode. It is an
// involution: Map2(Map2(b)) == b.
func Map2(b byte) byte { return map2[b] }

// Map6 returns the new-encoding byte for the second opcode byte of an
// 0x0F-escaped instruction. It is an involution.
func Map6(b byte) byte { return map6[b] }

// MapInstruction translates instruction bytes between encodings in place
// (the map is its own inverse). Only opcode bytes change: byte 0 through
// Map2, or byte 1 through Map6 when byte 0 is the 0x0F escape.
func MapInstruction(b []byte) {
	if len(b) == 0 {
		return
	}
	if b[0] == x86.TwoByteEscape {
		if len(b) > 1 {
			b[1] = map6[b[1]]
		}
		return
	}
	b[0] = map2[b[0]]
}

// Corrupt returns the instruction bytes after flipping bit (byteIdx, bit)
// under the given scheme. For SchemeX86 the flip applies directly; for
// SchemeParity the paper's map->flip->map-back emulation is applied. The
// input is not modified.
func Corrupt(inst []byte, byteIdx, bit int, scheme Scheme) []byte {
	out := make([]byte, len(inst))
	copy(out, inst)
	if byteIdx < 0 || byteIdx >= len(out) || bit < 0 || bit > 7 {
		return out
	}
	switch scheme {
	case SchemeParity:
		MapInstruction(out)
		out[byteIdx] ^= 1 << bit
		MapInstruction(out)
	default:
		out[byteIdx] ^= 1 << bit
	}
	return out
}

// PaperTable4 reproduces the paper's Table 4 as (mnemonic, old, new) rows
// for both the 2-byte and 6-byte conditional branch sets, derived from the
// parity construction. A unit test pins these values to the published
// table.
type Table4Row struct {
	Mnemonic  string
	Old2      byte
	New2      byte
	Old6Byte2 byte // second opcode byte; the first is always 0x0F
	New6Byte2 byte
}

// Table4 returns the derived encoding table in condition-code order.
func Table4() []Table4Row {
	mnemonics := []string{
		"JO", "JNO", "JB", "JNB", "JE", "JNE", "JNA", "JA",
		"JS", "JNS", "JP", "JNP", "JL", "JNL", "JNG", "JG",
	}
	rows := make([]Table4Row, 16)
	for i := range rows {
		old2 := byte(x86.Jcc8Base + i)
		old6 := byte(x86.Jcc32Base + i)
		rows[i] = Table4Row{
			Mnemonic:  mnemonics[i],
			Old2:      old2,
			New2:      map2[old2],
			Old6Byte2: old6,
			New6Byte2: map6[old6],
		}
	}
	return rows
}

// MinHammingWithinBranchBlocks returns the minimum pairwise Hamming
// distance among the 16 re-encoded opcodes of each block (2-byte set,
// 6-byte set). The construction guarantees 2.
func MinHammingWithinBranchBlocks() (int, int) {
	var set2, set6 []byte
	for i := 0; i < 16; i++ {
		set2 = append(set2, map2[x86.Jcc8Base+byte(i)])
		set6 = append(set6, map6[x86.Jcc32Base+byte(i)])
	}
	return x86.MinPairwiseHamming(set2), x86.MinPairwiseHamming(set6)
}
