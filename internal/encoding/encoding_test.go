package encoding_test

import (
	"testing"
	"testing/quick"

	"faultsec/internal/encoding"
	"faultsec/internal/x86"
)

// TestTable4MatchesPaper pins the derived mapping to the values published
// in the paper's Table 4.
func TestTable4MatchesPaper(t *testing.T) {
	// Columns from the paper: 2-byte old, 2-byte new, 6-byte old (2nd
	// opcode byte), 6-byte new.
	paper := []struct {
		mnem       string
		old2, new2 byte
		old6, new6 byte
	}{
		{"JO", 0x70, 0x70, 0x80, 0x90},
		{"JNO", 0x71, 0x61, 0x81, 0x81},
		{"JB", 0x72, 0x62, 0x82, 0x82},
		{"JNB", 0x73, 0x73, 0x83, 0x93},
		{"JE", 0x74, 0x64, 0x84, 0x84},
		{"JNE", 0x75, 0x75, 0x85, 0x95},
		{"JNA", 0x76, 0x76, 0x86, 0x96},
		{"JA", 0x77, 0x67, 0x87, 0x87},
		{"JS", 0x78, 0x68, 0x88, 0x88},
		{"JNS", 0x79, 0x79, 0x89, 0x99},
		{"JP", 0x7A, 0x7A, 0x8A, 0x9A},
		{"JNP", 0x7B, 0x6B, 0x8B, 0x8B},
		{"JL", 0x7C, 0x7C, 0x8C, 0x9C},
		{"JNL", 0x7D, 0x6D, 0x8D, 0x8D},
		{"JNG", 0x7E, 0x6E, 0x8E, 0x8E},
		{"JG", 0x7F, 0x7F, 0x8F, 0x9F},
	}
	rows := encoding.Table4()
	if len(rows) != len(paper) {
		t.Fatalf("got %d rows, want %d", len(rows), len(paper))
	}
	for i, want := range paper {
		got := rows[i]
		if got.Mnemonic != want.mnem {
			t.Errorf("row %d: mnemonic %s, want %s", i, got.Mnemonic, want.mnem)
		}
		if got.Old2 != want.old2 || got.New2 != want.new2 {
			t.Errorf("%s 2-byte: %#02x->%#02x, want %#02x->%#02x",
				want.mnem, got.Old2, got.New2, want.old2, want.new2)
		}
		if got.Old6Byte2 != want.old6 || got.New6Byte2 != want.new6 {
			t.Errorf("%s 6-byte: %#02x->%#02x, want %#02x->%#02x",
				want.mnem, got.Old6Byte2, got.New6Byte2, want.old6, want.new6)
		}
	}
}

func TestMapsAreInvolutions(t *testing.T) {
	for i := 0; i < 256; i++ {
		b := byte(i)
		if encoding.Map2(encoding.Map2(b)) != b {
			t.Errorf("Map2 is not an involution at %#02x", b)
		}
		if encoding.Map6(encoding.Map6(b)) != b {
			t.Errorf("Map6 is not an involution at %#02x", b)
		}
	}
}

func TestMapsArePermutations(t *testing.T) {
	var seen2, seen6 [256]bool
	for i := 0; i < 256; i++ {
		seen2[encoding.Map2(byte(i))] = true
		seen6[encoding.Map6(byte(i))] = true
	}
	for i := 0; i < 256; i++ {
		if !seen2[i] {
			t.Errorf("Map2 misses value %#02x", i)
		}
		if !seen6[i] {
			t.Errorf("Map6 misses value %#02x", i)
		}
	}
}

func TestMinimumHammingDistanceIsTwo(t *testing.T) {
	// Old encoding: continuous, minimum distance 1 (the root cause).
	if d := x86.MinPairwiseHamming(x86.Jcc8Opcodes()); d != 1 {
		t.Errorf("old 2-byte set min distance = %d, want 1", d)
	}
	if d := x86.MinPairwiseHamming(x86.Jcc32SecondOpcodes()); d != 1 {
		t.Errorf("old 6-byte set min distance = %d, want 1", d)
	}
	// New encoding: parity guarantees at least 2.
	d2, d6 := encoding.MinHammingWithinBranchBlocks()
	if d2 != 2 {
		t.Errorf("new 2-byte set min distance = %d, want 2", d2)
	}
	if d6 != 2 {
		t.Errorf("new 6-byte set min distance = %d, want 2", d6)
	}
}

// TestNoSingleBitFlipYieldsAnotherBranch verifies the security property
// directly: under the new encoding, no single-bit corruption of a
// conditional branch opcode decodes as a different conditional branch.
func TestNoSingleBitFlipYieldsAnotherBranch(t *testing.T) {
	for cc := 0; cc < 16; cc++ {
		old2 := byte(x86.Jcc8Base + cc)
		inst := []byte{old2, 0x05} // jcc +5
		for bit := 0; bit < 8; bit++ {
			out := encoding.Corrupt(inst, 0, bit, encoding.SchemeParity)
			if x86.IsJcc8Opcode(out[0]) && out[0] != old2 {
				t.Errorf("parity: jcc %#02x bit %d -> different jcc %#02x",
					old2, bit, out[0])
			}
		}
		old6 := byte(x86.Jcc32Base + cc)
		inst6 := []byte{0x0F, old6, 1, 0, 0, 0}
		for bit := 0; bit < 8; bit++ {
			out := encoding.Corrupt(inst6, 1, bit, encoding.SchemeParity)
			if out[0] == 0x0F && x86.IsJcc32SecondOpcode(out[1]) && out[1] != old6 {
				t.Errorf("parity: jcc 0F %#02x bit %d -> different jcc 0F %#02x",
					old6, bit, out[1])
			}
		}
	}
}

// TestOldEncodingHasDangerousNeighbors verifies the baseline hazard: under
// stock x86, je/jne (and every condition/negation pair) are one bit apart.
func TestOldEncodingHasDangerousNeighbors(t *testing.T) {
	if !x86.DangerousPair(0x74, 0x75) {
		t.Error("je/jne should be a dangerous pair")
	}
	if x86.DangerousPair(0x74, 0x76) {
		t.Error("je/jna differ in more than the negation bit")
	}
	count := 0
	for _, op := range x86.Jcc8Opcodes() {
		for _, nb := range x86.SingleBitNeighbors(op) {
			if x86.DangerousPair(op, nb) {
				count++
			}
		}
	}
	if count != 16 {
		t.Errorf("dangerous neighbor relations = %d, want 16 (8 pairs, both directions)", count)
	}
}

func TestCorruptX86IsPlainFlip(t *testing.T) {
	inst := []byte{0x74, 0x06}
	out := encoding.Corrupt(inst, 0, 0, encoding.SchemeX86)
	if out[0] != 0x75 || out[1] != 0x06 {
		t.Errorf("x86 flip: got % x, want 75 06", out)
	}
	if inst[0] != 0x74 {
		t.Error("Corrupt modified its input")
	}
}

func TestCorruptParityPaperExamples(t *testing.T) {
	// §6.2 example 1: je (0x74) -> new 0x64, flip LSB -> 0x65, back -> 0x65.
	out := encoding.Corrupt([]byte{0x74, 0x06}, 0, 0, encoding.SchemeParity)
	if out[0] != 0x65 {
		t.Errorf("je flip LSB under parity = %#02x, want 0x65", out[0])
	}
	// §6.2 example 2: 0x65 -> new 0x65, flip LSB -> 0x64, back -> 0x74 (je).
	out = encoding.Corrupt([]byte{0x65, 0x06}, 0, 0, encoding.SchemeParity)
	if out[0] != 0x74 {
		t.Errorf("0x65 flip LSB under parity = %#02x, want 0x74 (je)", out[0])
	}
}

// Property: Corrupt under either scheme flips state reversibly — applying
// the same corruption twice restores the original bytes.
func TestCorruptIsReversible(t *testing.T) {
	f := func(b0, b1 byte, byteIdx, bit uint8) bool {
		inst := []byte{b0, b1}
		bi := int(byteIdx) % 2
		bt := int(bit) % 8
		for _, scheme := range []encoding.Scheme{encoding.SchemeX86, encoding.SchemeParity} {
			once := encoding.Corrupt(inst, bi, bt, scheme)
			twice := encoding.Corrupt(once, bi, bt, scheme)
			if twice[0] != inst[0] || twice[1] != inst[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the parity emulation changes exactly which byte value executes
// but never the instruction length bytes outside the flipped position's
// mapped neighborhood — i.e., only opcode bytes may differ from a plain
// flip.
func TestParityOnlyRemapsOpcodeBytes(t *testing.T) {
	f := func(raw [6]byte, byteIdx, bit uint8) bool {
		inst := raw[:]
		bi := int(byteIdx) % 6
		bt := int(bit) % 8
		plain := encoding.Corrupt(inst, bi, bt, encoding.SchemeX86)
		parity := encoding.Corrupt(inst, bi, bt, encoding.SchemeParity)
		// Bytes 2..5 are displacement bytes and must agree under both
		// schemes (byte 1 too, unless the instruction is 0x0F-escaped).
		start := 1
		if inst[0] == 0x0F {
			start = 2
		}
		for i := start; i < 6; i++ {
			if plain[i] != parity[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
