// Package cc implements a small C compiler ("MiniC") targeting the
// internal/asm assembler. The study's server programs are written in MiniC
// so that the injected artifact is compiled machine code of C
// authentication logic — with the same control-flow idioms the paper
// disassembles from wu-ftpd and sshd (push/push/call strcmp, add esp,
// test eax,eax, jne ...).
//
// Language summary: types int, char (unsigned), pointers and arrays;
// functions with cdecl calling convention; if/else, while, for, switch
// (with C fallthrough), break, continue, return; expressions with
// assignment, ||, &&, bitwise, equality,
// relational, shift, additive, multiplicative, unary !,-,~,*,&, postfix
// call/index/++/--; decimal, hex, character and string literals.
// Built-ins sys_read, sys_write, sys_exit compile to inline int 0x80
// sequences.
package cc

import (
	"fmt"
	"strconv"
)

// tokKind classifies lexical tokens.
type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokNumber
	tokString
	tokPunct // operators and punctuation, in tok.text
	tokKeyword
)

// token is one lexical token.
type token struct {
	kind tokKind
	text string
	num  int64
	line int
}

// keywords of MiniC.
var keywords = map[string]bool{
	"int": true, "char": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
	"switch": true, "case": true, "default": true,
}

// multi-character operators, longest first.
var punctuators = []string{
	"<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
	"(", ")", "{", "}", "[", "]", ";", ",", ":",
}

// Error is a compiler diagnostic.
type Error struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("cc: line %d: %s", e.Line, e.Msg) }

func cerr(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes MiniC source.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
			continue
		case c == ' ' || c == '\t' || c == '\r':
			i++
			continue
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
			continue
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, cerr(line, "unterminated block comment")
			}
			i += 2
			continue
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			text := src[start:i]
			k := tokIdent
			if keywords[text] {
				k = tokKeyword
			}
			toks = append(toks, token{kind: k, text: text, line: line})
			continue
		case c >= '0' && c <= '9':
			start := i
			for i < n && (isIdentPart(src[i])) {
				i++
			}
			text := src[start:i]
			v, err := strconv.ParseInt(text, 0, 64)
			if err != nil {
				return nil, cerr(line, "bad number %q", text)
			}
			toks = append(toks, token{kind: tokNumber, num: v, text: text, line: line})
			continue
		case c == '\'':
			v, adv, err := lexCharLit(src[i:], line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokNumber, num: int64(v), text: src[i : i+adv], line: line})
			i += adv
			continue
		case c == '"':
			s, adv, err := lexStringLit(src[i:], line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokString, text: s, line: line})
			i += adv
			continue
		}
		matched := false
		for _, p := range punctuators {
			if i+len(p) <= n && src[i:i+len(p)] == p {
				toks = append(toks, token{kind: tokPunct, text: p, line: line})
				i += len(p)
				matched = true
				break
			}
		}
		if !matched {
			return nil, cerr(line, "unexpected character %q", string(c))
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func lexEscape(c byte, line int) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case 't':
		return '\t', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, cerr(line, "unknown escape \\%c", c)
}

// lexCharLit lexes a character literal at the start of s; returns the byte
// value and the number of source bytes consumed.
func lexCharLit(s string, line int) (byte, int, error) {
	if len(s) < 3 {
		return 0, 0, cerr(line, "unterminated character literal")
	}
	if s[1] == '\\' {
		if len(s) < 4 || s[3] != '\'' {
			return 0, 0, cerr(line, "bad character literal")
		}
		v, err := lexEscape(s[2], line)
		if err != nil {
			return 0, 0, err
		}
		return v, 4, nil
	}
	if s[2] != '\'' {
		return 0, 0, cerr(line, "bad character literal")
	}
	return s[1], 3, nil
}

// lexStringLit lexes a string literal at the start of s; returns the
// unescaped contents and the number of source bytes consumed.
func lexStringLit(s string, line int) (string, int, error) {
	var out []byte
	i := 1
	for i < len(s) {
		c := s[i]
		switch c {
		case '"':
			return string(out), i + 1, nil
		case '\n':
			return "", 0, cerr(line, "newline in string literal")
		case '\\':
			if i+1 >= len(s) {
				return "", 0, cerr(line, "unterminated string literal")
			}
			v, err := lexEscape(s[i+1], line)
			if err != nil {
				return "", 0, err
			}
			out = append(out, v)
			i += 2
		default:
			out = append(out, c)
			i++
		}
	}
	return "", 0, cerr(line, "unterminated string literal")
}
