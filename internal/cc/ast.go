package cc

// TypeKind classifies MiniC types.
type TypeKind int

// Type kinds.
const (
	TypeInt TypeKind = iota + 1
	TypeChar
	TypeVoid
	TypePtr
	TypeArray
)

// Type is a MiniC type. Types are small and treated as values.
type Type struct {
	Kind  TypeKind
	Elem  *Type // pointee / array element
	Count int   // array length
}

// Convenient type singletons.
var (
	typeInt  = &Type{Kind: TypeInt}
	typeChar = &Type{Kind: TypeChar}
	typeVoid = &Type{Kind: TypeVoid}
)

func ptrTo(t *Type) *Type { return &Type{Kind: TypePtr, Elem: t} }

// Size returns the storage size in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TypeChar:
		return 1
	case TypeInt, TypePtr:
		return 4
	case TypeArray:
		return t.Count * t.Elem.Size()
	}
	return 0
}

// IsPtrLike reports whether the type is a pointer or decays to one.
func (t *Type) IsPtrLike() bool { return t.Kind == TypePtr || t.Kind == TypeArray }

// decay converts array types to pointer-to-element (C array decay).
func (t *Type) decay() *Type {
	if t.Kind == TypeArray {
		return ptrTo(t.Elem)
	}
	return t
}

// String renders the type for diagnostics.
func (t *Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeChar:
		return "char"
	case TypeVoid:
		return "void"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return t.Elem.String() + "[]"
	}
	return "?"
}

// Expr is a MiniC expression node.
type Expr interface{ exprNode() }

// IntLit is an integer (or character) literal.
type IntLit struct {
	Value int64
	Line  int
}

// StrLit is a string literal (becomes a .rodata symbol).
type StrLit struct {
	Value string
	Line  int
}

// Ident references a variable or function name.
type Ident struct {
	Name string
	Line int
}

// Unary is a prefix operator: ! - ~ * & ++ --.
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Binary is an infix operator (everything except assignment).
type Binary struct {
	Op   string
	X, Y Expr
	Line int
}

// Assign is "lhs = rhs" or a compound assignment ("+=", ...; Op holds the
// operator without '=', empty for plain assignment).
type Assign struct {
	Op   string
	LHS  Expr
	RHS  Expr
	Line int
}

// Call invokes a named function or builtin.
type Call struct {
	Name string
	Args []Expr
	Line int
}

// Index is x[i].
type Index struct {
	X, I Expr
	Line int
}

// PostIncDec is x++ or x--.
type PostIncDec struct {
	X    Expr
	Inc  bool
	Line int
}

func (*IntLit) exprNode()     {}
func (*StrLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Assign) exprNode()     {}
func (*Call) exprNode()       {}
func (*Index) exprNode()      {}
func (*PostIncDec) exprNode() {}

// Stmt is a MiniC statement node.
type Stmt interface{ stmtNode() }

// DeclStmt declares a local variable with an optional scalar initializer.
type DeclStmt struct {
	Name string
	Type *Type
	Init Expr // nil when absent
	Line int
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X    Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // nil when absent
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Line int
}

// ForStmt is a for loop; any clause may be nil.
type ForStmt struct {
	Init Expr
	Cond Expr
	Post Expr
	Body Stmt
	Line int
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	X    Expr // nil for bare return
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

// SwitchCase is one case (or default) arm of a switch. Bodies fall
// through to the next arm unless they break, as in C.
type SwitchCase struct {
	// Value is the constant case label; Default marks "default:".
	Value   int64
	Default bool
	// Body holds the statements between this label and the next.
	Body []Stmt
	Line int
}

// SwitchStmt is a C switch over an integer expression.
type SwitchStmt struct {
	X     Expr
	Cases []SwitchCase
	Line  int
}

// BlockStmt is a brace-enclosed statement list.
type BlockStmt struct {
	Stmts []Stmt
	Line  int
}

func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*SwitchStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*BlockStmt) stmtNode()    {}

// Param is one function parameter.
type Param struct {
	Name string
	Type *Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []Param
	Body   *BlockStmt
	Line   int
}

// GlobalInit is one element of a global initializer: a constant, a string
// literal (address), or a symbol reference.
type GlobalInit struct {
	Value  int64
	Str    *string // string literal
	Symbol string  // address-of another global
}

// VarDecl is a global variable definition.
type VarDecl struct {
	Name  string
	Type  *Type
	Init  []GlobalInit // scalar: one element; array: many; nil: zeroed
	IsStr bool         // char array initialized from a string literal
	Str   string
	Line  int
}

// Program is a parsed translation unit.
type Program struct {
	Funcs   []*FuncDecl
	Globals []*VarDecl
}
