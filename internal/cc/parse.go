package cc

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse lexes and parses a MiniC translation unit.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF) {
		base, err := p.typeBase()
		if err != nil {
			return nil, err
		}
		typ, name, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if p.peekPunct("(") {
			fn, ferr := p.funcRest(typ, name)
			if ferr != nil {
				return nil, ferr
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		g, gerr := p.globalRest(typ, name)
		if gerr != nil {
			return nil, gerr
		}
		prog.Globals = append(prog.Globals, g)
	}
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) line() int   { return p.cur().line }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) peekPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.peekPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return cerr(p.line(), "expected %q, got %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) peekKeyword(s string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == s
}

func (p *parser) acceptKeyword(s string) bool {
	if p.peekKeyword(s) {
		p.pos++
		return true
	}
	return false
}

// typeBase parses int/char/void.
func (p *parser) typeBase() (*Type, error) {
	switch {
	case p.acceptKeyword("int"):
		return typeInt, nil
	case p.acceptKeyword("char"):
		return typeChar, nil
	case p.acceptKeyword("void"):
		return typeVoid, nil
	}
	return nil, cerr(p.line(), "expected type, got %q", p.cur().text)
}

// declarator parses '*'* ident.
func (p *parser) declarator(base *Type) (*Type, string, error) {
	t := base
	for p.acceptPunct("*") {
		t = ptrTo(t)
	}
	if !p.at(tokIdent) {
		return nil, "", cerr(p.line(), "expected identifier, got %q", p.cur().text)
	}
	return t, p.next().text, nil
}

// funcRest parses a function definition after its name.
func (p *parser) funcRest(ret *Type, name string) (*FuncDecl, error) {
	line := p.line()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []Param
	if !p.peekPunct(")") {
		if p.peekKeyword("void") && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == ")" {
			p.pos++ // f(void)
		} else {
			for {
				base, err := p.typeBase()
				if err != nil {
					return nil, err
				}
				t, pname, err := p.declarator(base)
				if err != nil {
					return nil, err
				}
				if p.acceptPunct("[") {
					if err := p.expectPunct("]"); err != nil {
						return nil, err
					}
					t = ptrTo(t) // array parameter decays
				}
				params = append(params, Param{Name: pname, Type: t})
				if !p.acceptPunct(",") {
					break
				}
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name, Ret: ret, Params: params, Body: body, Line: line}, nil
}

// constInit parses one global initializer element.
func (p *parser) constInit() (GlobalInit, error) {
	neg := false
	for p.acceptPunct("-") {
		neg = !neg
	}
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		v := t.num
		if neg {
			v = -v
		}
		return GlobalInit{Value: v}, nil
	case tokString:
		if neg {
			return GlobalInit{}, cerr(t.line, "negated string initializer")
		}
		p.pos++
		s := t.text
		return GlobalInit{Str: &s}, nil
	case tokIdent:
		if neg {
			return GlobalInit{}, cerr(t.line, "negated symbol initializer")
		}
		p.pos++
		return GlobalInit{Symbol: t.text}, nil
	}
	return GlobalInit{}, cerr(t.line, "bad global initializer %q", t.text)
}

// globalRest parses a global variable definition after its name.
func (p *parser) globalRest(t *Type, name string) (*VarDecl, error) {
	line := p.line()
	g := &VarDecl{Name: name, Type: t, Line: line}
	if p.acceptPunct("[") {
		if p.at(tokNumber) {
			n := p.next().num
			g.Type = &Type{Kind: TypeArray, Elem: t, Count: int(n)}
		} else {
			g.Type = &Type{Kind: TypeArray, Elem: t, Count: -1} // from initializer
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if p.acceptPunct("=") {
		switch {
		case p.acceptPunct("{"):
			for !p.peekPunct("}") {
				init, err := p.constInit()
				if err != nil {
					return nil, err
				}
				g.Init = append(g.Init, init)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
		case p.at(tokString) && g.Type.Kind == TypeArray && g.Type.Elem.Kind == TypeChar:
			g.IsStr = true
			g.Str = p.next().text
		default:
			init, err := p.constInit()
			if err != nil {
				return nil, err
			}
			g.Init = []GlobalInit{init}
		}
	}
	if g.Type.Kind == TypeArray && g.Type.Count == -1 {
		switch {
		case g.IsStr:
			g.Type.Count = len(g.Str) + 1
		case g.Init != nil:
			g.Type.Count = len(g.Init)
		default:
			return nil, cerr(line, "array %q needs a size or initializer", name)
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return g, nil
}

// block parses a brace-enclosed statement list.
func (p *parser) block() (*BlockStmt, error) {
	line := p.line()
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{Line: line}
	for !p.peekPunct("}") {
		if p.at(tokEOF) {
			return nil, cerr(line, "unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++ // consume "}"
	return b, nil
}

// statement parses one statement.
func (p *parser) statement() (Stmt, error) {
	line := p.line()
	switch {
	case p.peekPunct("{"):
		return p.block()
	case p.peekKeyword("int") || p.peekKeyword("char"):
		base, err := p.typeBase()
		if err != nil {
			return nil, err
		}
		t, name, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if p.acceptPunct("[") {
			if !p.at(tokNumber) {
				return nil, cerr(line, "local array needs a constant size")
			}
			n := p.next().num
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			t = &Type{Kind: TypeArray, Elem: t, Count: int(n)}
		}
		d := &DeclStmt{Name: name, Type: t, Line: line}
		if p.acceptPunct("=") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return d, nil
	case p.acceptKeyword("if"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.statement()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Line: line}
		if p.acceptKeyword("else") {
			els, err := p.statement()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.acceptKeyword("while"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line}, nil
	case p.acceptKeyword("for"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		st := &ForStmt{Line: line}
		if !p.peekPunct(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Init = e
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.peekPunct(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Cond = e
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.peekPunct(")") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Post = e
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil
	case p.acceptKeyword("switch"):
		return p.switchStmt(line)
	case p.acceptKeyword("return"):
		st := &ReturnStmt{Line: line}
		if !p.peekPunct(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.X = e
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return st, nil
	case p.acceptKeyword("break"):
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: line}, nil
	case p.acceptKeyword("continue"):
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: line}, nil
	case p.acceptPunct(";"):
		return &BlockStmt{Line: line}, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &ExprStmt{X: e, Line: line}, nil
}

// switchStmt parses "switch (expr) { case K: ... default: ... }" after the
// switch keyword has been consumed.
func (p *parser) switchStmt(line int) (Stmt, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	st := &SwitchStmt{X: x, Line: line}
	seen := make(map[int64]bool)
	haveDefault := false
	for !p.peekPunct("}") {
		if p.at(tokEOF) {
			return nil, cerr(line, "unterminated switch")
		}
		var cs SwitchCase
		cs.Line = p.line()
		switch {
		case p.acceptKeyword("case"):
			neg := false
			for p.acceptPunct("-") {
				neg = !neg
			}
			if !p.at(tokNumber) {
				return nil, cerr(p.line(), "case label must be an integer constant")
			}
			v := p.next().num
			if neg {
				v = -v
			}
			if seen[v] {
				return nil, cerr(cs.Line, "duplicate case value %d", v)
			}
			seen[v] = true
			cs.Value = v
		case p.acceptKeyword("default"):
			if haveDefault {
				return nil, cerr(cs.Line, "duplicate default")
			}
			haveDefault = true
			cs.Default = true
		default:
			return nil, cerr(p.line(), "expected case or default, got %q", p.cur().text)
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		for !p.peekPunct("}") && !p.peekKeyword("case") && !p.peekKeyword("default") {
			if p.at(tokEOF) {
				return nil, cerr(cs.Line, "unterminated case body")
			}
			sub, err := p.statement()
			if err != nil {
				return nil, err
			}
			cs.Body = append(cs.Body, sub)
		}
		st.Cases = append(st.Cases, cs)
	}
	p.pos++ // consume "}"
	return st, nil
}

// expr parses a full (assignment-level) expression.
func (p *parser) expr() (Expr, error) { return p.assign() }

// assignOps maps compound-assignment tokens to their binary operator.
var assignOps = map[string]string{
	"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

func (p *parser) assign() (Expr, error) {
	lhs, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct {
		if op, ok := assignOps[t.text]; ok {
			line := t.line
			p.pos++
			rhs, err := p.assign()
			if err != nil {
				return nil, err
			}
			return &Assign{Op: op, LHS: lhs, RHS: rhs, Line: line}, nil
		}
	}
	return lhs, nil
}

// binLevels lists binary operators from lowest to highest precedence.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.unary()
	}
	lhs, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		matched := ""
		for _, op := range binLevels[level] {
			if t.text == op {
				matched = op
				break
			}
		}
		if matched == "" {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: matched, X: lhs, Y: rhs, Line: t.line}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "!", "-", "~", "*", "&":
			p.pos++
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.text, X: x, Line: t.line}, nil
		case "++", "--":
			// Prefix inc/dec: compile as compound assignment.
			p.pos++
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			op := "+"
			if t.text == "--" {
				op = "-"
			}
			return &Assign{Op: op, LHS: x, RHS: &IntLit{Value: 1, Line: t.line}, Line: t.line}, nil
		case "+":
			p.pos++
			return p.unary()
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return x, nil
		}
		switch t.text {
		case "(":
			id, ok := x.(*Ident)
			if !ok {
				return nil, cerr(t.line, "call of non-function expression")
			}
			p.pos++
			call := &Call{Name: id.Name, Line: t.line}
			for !p.peekPunct(")") {
				a, err := p.assign()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			x = call
		case "[":
			p.pos++
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Index{X: x, I: idx, Line: t.line}
		case "++", "--":
			p.pos++
			x = &PostIncDec{X: x, Inc: t.text == "++", Line: t.line}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		return &IntLit{Value: t.num, Line: t.line}, nil
	case tokString:
		p.pos++
		return &StrLit{Value: t.text, Line: t.line}, nil
	case tokIdent:
		p.pos++
		return &Ident{Name: t.text, Line: t.line}, nil
	case tokPunct:
		if t.text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, cerr(t.line, "unexpected token %q", t.text)
}
