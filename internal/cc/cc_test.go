package cc_test

import (
	"strings"
	"testing"

	"faultsec/internal/cc"
)

func TestParseSimpleProgram(t *testing.T) {
	prog, err := cc.Parse(`
int counter = 5;
char *msg = "hello";
char buf[32];
int tab[] = {1, 2, 3};

int add(int a, int b) {
	return a + b;
}

int main() {
	int x = add(1, 2);
	while (x < 10) { x++; }
	if (x == 10) { return 0; } else { return 1; }
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Globals) != 4 {
		t.Errorf("globals = %d, want 4", len(prog.Globals))
	}
	if len(prog.Funcs) != 2 {
		t.Errorf("funcs = %d, want 2", len(prog.Funcs))
	}
	if prog.Globals[3].Type.Count != 3 {
		t.Errorf("tab count = %d, want 3 (inferred)", prog.Globals[3].Type.Count)
	}
	if prog.Funcs[0].Name != "add" || len(prog.Funcs[0].Params) != 2 {
		t.Errorf("add decl wrong: %+v", prog.Funcs[0])
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"missing_semicolon", "int main() { return 0 }"},
		{"unterminated_block", "int main() { return 0;"},
		{"bad_toplevel", "42;"},
		{"unterminated_string", `int main() { write_str("abc); }`},
		{"unterminated_comment", "/* no end\nint main() { return 0; }"},
		{"bad_char_literal", "int main() { return 'ab'; }"},
		{"array_without_size", "int main() { int a[]; return 0; }"},
		{"unknown_escape", `char *s = "\q";`},
		{"call_of_expression", "int main() { return (1+2)(); }"},
		{"empty_parens", "int main() { return (); }"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := cc.Parse(tt.src); err == nil {
				t.Error("parse succeeded, want error")
			}
		})
	}
}

func TestCompileErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"undefined_variable", "int main() { return nope; }", "undefined identifier"},
		{"undefined_function", "int main() { return nope(); }", "undefined function"},
		{"duplicate_global", "int g; int g; int main() { return 0; }", "duplicate global"},
		{"duplicate_function", "int f() { return 0; } int f() { return 1; } int main() { return 0; }", "duplicate function"},
		{"duplicate_local", "int main() { int x; int x; return 0; }", "duplicate local"},
		{"break_outside_loop", "int main() { break; return 0; }", "break outside loop"},
		{"continue_outside_loop", "int main() { continue; return 0; }", "continue outside loop"},
		{"arity_mismatch", "int f(int a) { return a; } int main() { return f(1, 2); }", "expects 1 arguments"},
		{"syscall_arity", "int main() { return sys_read(0); }", "expects 3 arguments"},
		{"assign_to_rvalue", "int main() { 1 = 2; return 0; }", "not an lvalue"},
		{"deref_non_pointer", "int main() { int x; return *x; }", "dereference of non-pointer"},
		{"local_array_init", "int main() { int a[3] = 1; return 0; }", "cannot have an initializer"},
		{"func_global_collision", "int f = 1; int f() { return 0; }", "collides"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := cc.Compile(tt.src)
			if err == nil {
				t.Fatal("compile succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

// TestCodegenEmitsPaperIdioms: the compiled form of the paper's Figure 1
// pattern must contain the exact instruction sequence the paper
// disassembles: two pushes, a strcmp call, stack cleanup, test eax,eax and
// a conditional branch.
func TestCodegenEmitsPaperIdioms(t *testing.T) {
	out, err := cc.Compile(`
int strcmp(char *a, char *b) {
	int i = 0;
	while (a[i] && a[i] == b[i]) { i = i + 1; }
	return a[i] - b[i];
}
int check(char *xpasswd, char *stored) {
	int rval = 1;
	if (strcmp(xpasswd, stored) == 0) {
		rval = 0;
	}
	if (rval) {
		return 0;
	}
	return 1;
}
`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, idiom := range []string{
		"call strcmp",
		"add esp, 8",
		"test eax, eax",
		"\tje .L",
		"\tjne .L",
	} {
		if !strings.Contains(out, idiom) {
			t.Errorf("generated assembly missing idiom %q", idiom)
		}
	}
}

func TestCodegenShortCircuit(t *testing.T) {
	out, err := cc.Compile(`
int f(int a, int b) {
	if (a && b) { return 1; }
	if (a || b) { return 2; }
	return 0;
}
`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Short-circuit evaluation compiles to multiple conditional branches,
	// not to boolean materialization.
	if strings.Count(out, "\tje .L")+strings.Count(out, "\tjne .L") < 4 {
		t.Errorf("expected >=4 conditional branches for && and ||:\n%s", out)
	}
}

func TestCodegenStringDeduplication(t *testing.T) {
	out, err := cc.Compile(`
int strlen(char *s) { int n = 0; while (s[n]) { n++; } return n; }
int main() {
	return strlen("same") + strlen("same") + strlen("different");
}
`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if strings.Count(out, `.asciz "same"`) != 1 {
		t.Errorf("duplicate string literal not deduplicated:\n%s", out)
	}
	if strings.Count(out, `.asciz "different"`) != 1 {
		t.Errorf("missing literal:\n%s", out)
	}
}

func TestGlobalEmission(t *testing.T) {
	out, err := cc.Compile(`
int answer = 42;
int zeroed;
char name[8] = "bob";
char *greeting = "yo";
char *table[] = {"a", "b", 0};
int main() { return answer; }
`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, want := range []string{
		"answer:", ".dd 42",
		"zeroed: .space 4",
		`name: .asciz "bob"`,
		".space 4", // name padding to 8
		"greeting:",
		"table:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTypeSizes(t *testing.T) {
	// Verified indirectly: a function with an int array and char array has
	// the right frame size (visible via sub esp, N).
	out, err := cc.Compile(`
int main() {
	int nums[4];
	char text[10];
	nums[0] = 1;
	text[0] = 'x';
	return 0;
}
`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// 16 (nums) + 12 (text rounded to 4) = 28.
	if !strings.Contains(out, "sub esp, 28") {
		t.Errorf("frame size wrong:\n%s", out)
	}
}

func TestSetccBooleansOption(t *testing.T) {
	src := `
int cmp(int a, int b) {
	int eq = a == b;
	return eq;
}
`
	branchy, err := cc.CompileWithOptions(src, cc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	setcc, err := cc.CompileWithOptions(src, cc.Options{SetccBooleans: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(branchy, "\tje .L") {
		t.Errorf("branchy codegen missing je:\n%s", branchy)
	}
	if strings.Contains(branchy, "sete") {
		t.Errorf("branchy codegen uses setcc:\n%s", branchy)
	}
	if !strings.Contains(setcc, "sete al") {
		t.Errorf("setcc codegen missing sete:\n%s", setcc)
	}
	if strings.Contains(setcc, "\tje .L") {
		t.Errorf("setcc codegen still branches for the comparison:\n%s", setcc)
	}
}

func TestSwitchParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"duplicate_case", "int main() { switch (1) { case 1: break; case 1: break; } return 0; }", "duplicate case"},
		{"duplicate_default", "int main() { switch (1) { default: break; default: break; } return 0; }", "duplicate default"},
		{"non_constant_label", "int main() { int x; switch (1) { case x: break; } return 0; }", "integer constant"},
		{"missing_colon", "int main() { switch (1) { case 1 break; } return 0; }", `expected ":"`},
		{"stray_statement", "int main() { switch (1) { return 0; } return 0; }", "expected case or default"},
		{"unterminated", "int main() { switch (1) { case 1: break;", "unterminated"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := cc.Compile(tt.src)
			if err == nil {
				t.Fatal("compile succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestSwitchCodegenShape(t *testing.T) {
	out, err := cc.Compile(`
int dispatch(int cmd) {
	switch (cmd) {
	case 1: return 10;
	case 2: return 20;
	default: return -1;
	}
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// The dispatch head is a compare-and-jump chain.
	if strings.Count(out, "cmp eax, ") < 2 {
		t.Errorf("missing compare chain:\n%s", out)
	}
	if strings.Count(out, "\tje .L") < 2 {
		t.Errorf("missing case jumps:\n%s", out)
	}
}

func TestHardenFuncsRestriction(t *testing.T) {
	src := `
int check(int a, int b) {
	if (a == b) { return 1; }
	return 0;
}
int gate(int a, int b) {
	if (a < b) { return 1; }
	return 0;
}
`
	plain, err := cc.Compile(src)
	if err != nil {
		t.Fatalf("plain compile: %v", err)
	}
	restricted, err := cc.CompileWithOptions(src, cc.Options{DupCompares: true, HardenFuncs: "gate"})
	if err != nil {
		t.Fatalf("restricted compile: %v", err)
	}
	full, err := cc.CompileWithOptions(src, cc.Options{DupCompares: true})
	if err != nil {
		t.Fatalf("full compile: %v", err)
	}

	// funcBody slices one function's text out of the generated assembly.
	funcBody := func(asm, name string) string {
		t.Helper()
		i := strings.Index(asm, name+":\n")
		if i < 0 {
			t.Fatalf("function %s not found in assembly", name)
		}
		rest := asm[i:]
		if j := strings.Index(rest, ".endfunc"); j >= 0 {
			rest = rest[:j]
		}
		return rest
	}

	// The named function is hardened: its body gains the duplicated
	// compare + trap shape the unrestricted build has.
	if got := funcBody(restricted, "gate"); !strings.Contains(got, "int3") {
		t.Errorf("restricted gate body lacks the dup-compare trap:\n%s", got)
	}
	// Every other function compiles byte-identically to the plain build —
	// the single-function-delta property incremental campaigns key on.
	if got, want := funcBody(restricted, "check"), funcBody(plain, "check"); got != want {
		t.Errorf("check differs between plain and restricted builds:\nplain:\n%s\nrestricted:\n%s", want, got)
	}
	if got, want := funcBody(full, "check"), funcBody(plain, "check"); got == want {
		t.Error("unrestricted DupCompares left check unhardened; the restriction test proves nothing")
	}

	// An unknown name hardens nothing: the output matches the plain build.
	none, err := cc.CompileWithOptions(src, cc.Options{DupCompares: true, HardenFuncs: "nosuchfunc"})
	if err != nil {
		t.Fatalf("no-match compile: %v", err)
	}
	if none != plain {
		t.Error("HardenFuncs with no matching function still changed the output")
	}
}
