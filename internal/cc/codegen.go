package cc

import (
	"fmt"
	"sort"
	"strings"
)

// Options tune code generation.
type Options struct {
	// SetccBooleans materializes comparison results with setcc+movzx
	// instead of the branch-based 0/1 idiom. This is the ablation
	// DESIGN.md calls out: branch-based materialization (the default,
	// matching the paper's disassembly of gcc 2.x output) maximizes the
	// conditional-branch density of the authentication section; setcc
	// materialization (gcc 3+ style) reduces it.
	SetccBooleans bool
	// DupCompares hardens every conditional branch with a duplicated
	// comparison (arXiv 1803.08359 §4.1): after the branch decides, the
	// landed path re-executes the compare and jumps to a trap (int3) if
	// the second evaluation disagrees with the direction taken. A fault
	// that corrupts the first cmp/jcc — flipping the condition, turning
	// the jcc into another instruction, or redirecting it — lands on a
	// path whose recheck contradicts it and converts the silent wrong
	// turn into a detected crash.
	DupCompares bool
	// EncodedBranches hardens every conditional branch by carrying the
	// condition as a redundantly encoded constant (arXiv 1803.08359
	// §4.2): the comparison result is widened to a 0/0xFFFFFFFF mask and
	// XORed with EncFalse, so a healthy condition is exactly EncFalse or
	// EncTrue (bitwise complements, Hamming distance 32). The branch
	// dispatches on the encoded value and any third value — the result
	// of a corrupted compare, setcc, mask, or immediate — traps.
	EncodedBranches bool
	// HardenFuncs restricts DupCompares/EncodedBranches to a
	// comma-separated list of function names; empty hardens every
	// function. Restricting hardening to one function rebuilds an image
	// whose other functions keep byte-identical code sections — the
	// single-function-delta case the incremental campaign cache keys on.
	HardenFuncs string
}

// hardens reports whether branch hardening applies to function name under
// the HardenFuncs restriction.
func (o Options) hardens(name string) bool {
	if o.HardenFuncs == "" {
		return true
	}
	for _, f := range strings.Split(o.HardenFuncs, ",") {
		if strings.TrimSpace(f) == name {
			return true
		}
	}
	return false
}

// EncFalse and EncTrue are the two valid states of an encoded branch
// condition under Options.EncodedBranches. They are bitwise complements,
// so no single-bit (or anything short of 32-bit) corruption of one yields
// the other.
const (
	EncFalse = 0x3CC3A55A
	EncTrue  = ^EncFalse & 0xFFFFFFFF
)

// Compile parses MiniC source and generates assembly for internal/asm.
// The output contains .text with one .func block per function, .rodata
// with string literals, and .data/.bss for globals. It does not emit a
// _start entry point; the runtime (internal/rt) provides one.
func Compile(src string) (string, error) {
	return CompileWithOptions(src, Options{})
}

// CompileWithOptions is Compile with explicit codegen options.
func CompileWithOptions(src string, opts Options) (string, error) {
	prog, err := Parse(src)
	if err != nil {
		return "", err
	}
	return GenerateWithOptions(prog, opts)
}

// builtin syscall arities.
var builtins = map[string]int{
	"sys_read":  3,
	"sys_write": 3,
	"sys_exit":  1,
}

// localVar is one stack-frame slot.
type localVar struct {
	off int // EBP-relative offset
	typ *Type
}

// gen is the code generator state.
type gen struct {
	b       strings.Builder
	opts    Options
	globals map[string]*VarDecl
	funcs   map[string]*FuncDecl
	strs    map[string]string // literal value -> label
	strN    int
	labelN  int

	// current function state
	fn     *FuncDecl
	locals map[string]localVar
	frame  int
	breaks []string
	conts  []string
	retLbl string
	// trapUsed records that a hardened branch referenced the current
	// function's trap label, so the epilogue emits the trap block.
	trapUsed bool
}

// Generate emits assembly for a parsed program with default options.
func Generate(prog *Program) (string, error) {
	return GenerateWithOptions(prog, Options{})
}

// GenerateWithOptions emits assembly for a parsed program.
func GenerateWithOptions(prog *Program, opts Options) (string, error) {
	g := &gen{
		opts:    opts,
		globals: make(map[string]*VarDecl),
		funcs:   make(map[string]*FuncDecl),
		strs:    make(map[string]string),
	}
	for _, v := range prog.Globals {
		if _, dup := g.globals[v.Name]; dup {
			return "", cerr(v.Line, "duplicate global %q", v.Name)
		}
		g.globals[v.Name] = v
	}
	for _, f := range prog.Funcs {
		if _, dup := g.funcs[f.Name]; dup {
			return "", cerr(f.Line, "duplicate function %q", f.Name)
		}
		if _, clash := g.globals[f.Name]; clash {
			return "", cerr(f.Line, "function %q collides with a global", f.Name)
		}
		g.funcs[f.Name] = f
	}

	g.emit(".text")
	for _, f := range prog.Funcs {
		if err := g.genFunc(f); err != nil {
			return "", err
		}
	}
	// Globals may reference new string literals, so emit them first and the
	// accumulated .rodata literals afterwards (section order in the
	// assembly text is immaterial).
	if err := g.emitGlobals(prog.Globals); err != nil {
		return "", err
	}
	if err := g.emitStrings(); err != nil {
		return "", err
	}
	return g.b.String(), nil
}

func (g *gen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) label() string {
	g.labelN++
	return fmt.Sprintf(".L%d", g.labelN)
}

func (g *gen) strLabel(s string) string {
	if l, ok := g.strs[s]; ok {
		return l
	}
	g.strN++
	l := fmt.Sprintf(".LC%d", g.strN)
	g.strs[s] = l
	return l
}

// ---- functions ----

func (g *gen) genFunc(f *FuncDecl) error {
	g.fn = f
	g.locals = make(map[string]localVar)
	g.frame = 0
	g.retLbl = fmt.Sprintf(".Lret_%s", f.Name)
	g.trapUsed = false

	// Parameters: [ebp+8], [ebp+12], ... Char parameters are promoted.
	off := 8
	for _, p := range f.Params {
		t := p.Type
		if t.Kind == TypeChar {
			t = typeInt
		}
		if _, dup := g.locals[p.Name]; dup {
			return cerr(f.Line, "duplicate parameter %q", p.Name)
		}
		g.locals[p.Name] = localVar{off: off, typ: t}
		off += 4
	}
	// Locals: collect every declaration in the body, assign negative
	// offsets. MiniC forbids shadowing within a function.
	if err := g.collectLocals(f.Body); err != nil {
		return err
	}

	g.emit(".func %s", f.Name)
	g.emit("%s:", f.Name)
	g.emit("\tpush ebp")
	g.emit("\tmov ebp, esp")
	if g.frame > 0 {
		g.emit("\tsub esp, %d", g.frame)
	}
	if err := g.genStmt(f.Body); err != nil {
		return err
	}
	g.emit("%s:", g.retLbl)
	g.emit("\tleave")
	g.emit("\tret")
	if g.trapUsed {
		// The countermeasure trap: a detected-disagreement branch lands
		// here and raises #BP (SIGTRAP), converting the silent wrong turn
		// into a system detection.
		g.emit("%s:", g.trapLabel())
		g.emit("\tint3")
	}
	g.emit(".endfunc")
	return nil
}

// trapLabel names the current function's countermeasure trap block and
// marks it referenced, so genFunc emits it after the epilogue.
func (g *gen) trapLabel() string {
	g.trapUsed = true
	return fmt.Sprintf(".Ltrap_%s", g.fn.Name)
}

func (g *gen) collectLocals(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		for _, sub := range st.Stmts {
			if err := g.collectLocals(sub); err != nil {
				return err
			}
		}
	case *DeclStmt:
		if _, dup := g.locals[st.Name]; dup {
			return cerr(st.Line, "duplicate local %q (MiniC forbids shadowing)", st.Name)
		}
		size := st.Type.Size()
		size = (size + 3) &^ 3
		g.frame += size
		g.locals[st.Name] = localVar{off: -g.frame, typ: st.Type}
	case *IfStmt:
		if err := g.collectLocals(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return g.collectLocals(st.Else)
		}
	case *WhileStmt:
		return g.collectLocals(st.Body)
	case *ForStmt:
		return g.collectLocals(st.Body)
	case *SwitchStmt:
		for _, cs := range st.Cases {
			for _, sub := range cs.Body {
				if err := g.collectLocals(sub); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ---- statements ----

func (g *gen) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		for _, sub := range st.Stmts {
			if err := g.genStmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		if st.Init == nil {
			return nil
		}
		if st.Type.Kind == TypeArray {
			return cerr(st.Line, "local array %q cannot have an initializer", st.Name)
		}
		lv := g.locals[st.Name]
		if _, err := g.genExpr(st.Init); err != nil {
			return err
		}
		g.storeTo(fmt.Sprintf("[ebp%+d]", lv.off), lv.typ)
		return nil
	case *ExprStmt:
		_, err := g.genExpr(st.X)
		return err
	case *IfStmt:
		elseLbl := g.label()
		if err := g.genCondJump(st.Cond, elseLbl, false); err != nil {
			return err
		}
		if err := g.genStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			endLbl := g.label()
			g.emit("\tjmp %s", endLbl)
			g.emit("%s:", elseLbl)
			if err := g.genStmt(st.Else); err != nil {
				return err
			}
			g.emit("%s:", endLbl)
		} else {
			g.emit("%s:", elseLbl)
		}
		return nil
	case *WhileStmt:
		condLbl := g.label()
		endLbl := g.label()
		g.emit("%s:", condLbl)
		if err := g.genCondJump(st.Cond, endLbl, false); err != nil {
			return err
		}
		g.breaks = append(g.breaks, endLbl)
		g.conts = append(g.conts, condLbl)
		if err := g.genStmt(st.Body); err != nil {
			return err
		}
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		g.emit("\tjmp %s", condLbl)
		g.emit("%s:", endLbl)
		return nil
	case *ForStmt:
		if st.Init != nil {
			if _, err := g.genExpr(st.Init); err != nil {
				return err
			}
		}
		condLbl := g.label()
		postLbl := g.label()
		endLbl := g.label()
		g.emit("%s:", condLbl)
		if st.Cond != nil {
			if err := g.genCondJump(st.Cond, endLbl, false); err != nil {
				return err
			}
		}
		g.breaks = append(g.breaks, endLbl)
		g.conts = append(g.conts, postLbl)
		if err := g.genStmt(st.Body); err != nil {
			return err
		}
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		g.emit("%s:", postLbl)
		if st.Post != nil {
			if _, err := g.genExpr(st.Post); err != nil {
				return err
			}
		}
		g.emit("\tjmp %s", condLbl)
		g.emit("%s:", endLbl)
		return nil
	case *SwitchStmt:
		return g.genSwitch(st)
	case *ReturnStmt:
		if st.X != nil {
			if _, err := g.genExpr(st.X); err != nil {
				return err
			}
		}
		g.emit("\tjmp %s", g.retLbl)
		return nil
	case *BreakStmt:
		if len(g.breaks) == 0 {
			return cerr(st.Line, "break outside loop")
		}
		g.emit("\tjmp %s", g.breaks[len(g.breaks)-1])
		return nil
	case *ContinueStmt:
		if len(g.conts) == 0 {
			return cerr(st.Line, "continue outside loop")
		}
		g.emit("\tjmp %s", g.conts[len(g.conts)-1])
		return nil
	}
	return fmt.Errorf("cc: unknown statement %T", s)
}

// genSwitch lowers a C switch: evaluate once, compare-and-jump dispatch,
// bodies in order with fallthrough, break jumps to the end label.
func (g *gen) genSwitch(st *SwitchStmt) error {
	if _, err := g.genExpr(st.X); err != nil {
		return err
	}
	endLbl := g.label()
	caseLbls := make([]string, len(st.Cases))
	defaultLbl := endLbl
	for i, cs := range st.Cases {
		caseLbls[i] = g.label()
		if cs.Default {
			defaultLbl = caseLbls[i]
		}
	}
	for i, cs := range st.Cases {
		if cs.Default {
			continue
		}
		g.emit("\tcmp eax, %d", int32(cs.Value))
		g.emit("\tje %s", caseLbls[i])
	}
	g.emit("\tjmp %s", defaultLbl)
	g.breaks = append(g.breaks, endLbl)
	for i, cs := range st.Cases {
		g.emit("%s:", caseLbls[i])
		for _, sub := range cs.Body {
			if err := g.genStmt(sub); err != nil {
				return err
			}
		}
	}
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.emit("%s:", endLbl)
	return nil
}

// ---- conditions ----

// relJcc maps comparison operators to (signed, unsigned) jcc mnemonics.
var relJcc = map[string][2]string{
	"==": {"je", "je"},
	"!=": {"jne", "jne"},
	"<":  {"jl", "jb"},
	">":  {"jg", "ja"},
	"<=": {"jle", "jbe"},
	">=": {"jge", "jae"},
}

// negJcc maps a jcc mnemonic to its negation.
var negJcc = map[string]string{
	"je": "jne", "jne": "je",
	"jl": "jge", "jge": "jl", "jg": "jle", "jle": "jg",
	"jb": "jae", "jae": "jb", "ja": "jbe", "jbe": "ja",
}

// condBranch emits the final compare-and-branch of a condition: jump to
// label when the flag-setting instruction cmp (a "cmp eax, ecx" or "test
// eax, eax" line) satisfies jcc, fall through otherwise. The plain shape
// is the two-instruction cmp+jcc; Options.DupCompares and
// Options.EncodedBranches substitute the hardened shapes from arXiv
// 1803.08359 (DupCompares wins if both are set). Both hardened shapes may
// clobber eax/ecx — condition consumers never rely on them afterwards.
func (g *gen) condBranch(cmp, jcc, label string) {
	harden := g.opts.hardens(g.fn.Name)
	switch {
	case g.opts.DupCompares && harden:
		// Branch, then re-evaluate the compare on whichever path was
		// taken; a disagreement between the two evaluations traps.
		ftLbl := g.label()
		trap := g.trapLabel()
		g.emit("\t%s", cmp)
		g.emit("\t%s %s", negJcc[jcc], ftLbl)
		g.emit("\t%s", cmp) // taken path: condition must still hold
		g.emit("\t%s %s", negJcc[jcc], trap)
		g.emit("\tjmp %s", label)
		g.emit("%s:", ftLbl)
		g.emit("\t%s", cmp) // fall-through path: must still not hold
		g.emit("\t%s %s", jcc, trap)
	case g.opts.EncodedBranches && harden:
		// Widen the condition to a 0/0xFFFFFFFF mask and XOR it into the
		// {EncFalse, EncTrue} code space; dispatch on the encoded value
		// and trap on anything outside it.
		trap := g.trapLabel()
		g.emit("\t%s", cmp)
		g.emit("\tset%s al", jcc[1:])
		g.emit("\tmovzx eax, al")
		g.emit("\tneg eax")
		g.emit("\txor eax, %d", encFalse)
		g.emit("\tcmp eax, %d", encTrue)
		g.emit("\tje %s", label)
		g.emit("\tcmp eax, %d", encFalse)
		g.emit("\tjne %s", trap)
	default:
		g.emit("\t%s", cmp)
		g.emit("\t%s %s", jcc, label)
	}
}

// encFalse and encTrue are the EncodedBranches constants as the int32
// immediates the assembler takes.
var (
	encFalse = int32(EncFalse)
	encTrue  = ^encFalse
)

// genCondJump emits code that jumps to label when the truth value of e
// equals whenTrue, and falls through otherwise. Comparisons compile to
// cmp+jcc; other expressions compile to the classic test eax,eax idiom.
func (g *gen) genCondJump(e Expr, label string, whenTrue bool) error {
	switch ex := e.(type) {
	case *IntLit:
		truth := ex.Value != 0
		if truth == whenTrue {
			g.emit("\tjmp %s", label)
		}
		return nil
	case *Unary:
		if ex.Op == "!" {
			return g.genCondJump(ex.X, label, !whenTrue)
		}
	case *Binary:
		if jccs, ok := relJcc[ex.Op]; ok {
			tx, ty, err := g.genOperandPair(ex.X, ex.Y)
			if err != nil {
				return err
			}
			unsigned := tx.IsPtrLike() || ty.IsPtrLike()
			jcc := jccs[0]
			if unsigned {
				jcc = jccs[1]
			}
			if !whenTrue {
				jcc = negJcc[jcc]
			}
			g.condBranch("cmp eax, ecx", jcc, label)
			return nil
		}
		switch ex.Op {
		case "&&":
			if whenTrue {
				out := g.label()
				if err := g.genCondJump(ex.X, out, false); err != nil {
					return err
				}
				if err := g.genCondJump(ex.Y, label, true); err != nil {
					return err
				}
				g.emit("%s:", out)
			} else {
				if err := g.genCondJump(ex.X, label, false); err != nil {
					return err
				}
				if err := g.genCondJump(ex.Y, label, false); err != nil {
					return err
				}
			}
			return nil
		case "||":
			if whenTrue {
				if err := g.genCondJump(ex.X, label, true); err != nil {
					return err
				}
				if err := g.genCondJump(ex.Y, label, true); err != nil {
					return err
				}
			} else {
				out := g.label()
				if err := g.genCondJump(ex.X, out, true); err != nil {
					return err
				}
				if err := g.genCondJump(ex.Y, label, false); err != nil {
					return err
				}
				g.emit("%s:", out)
			}
			return nil
		}
	}
	// General case: evaluate and test.
	if _, err := g.genExpr(e); err != nil {
		return err
	}
	jcc := "je"
	if whenTrue {
		jcc = "jne"
	}
	g.condBranch("test eax, eax", jcc, label)
	return nil
}

// genOperandPair evaluates X into eax and Y into ecx (in left-to-right
// order, via the stack so calls in Y cannot clobber X).
func (g *gen) genOperandPair(x, y Expr) (*Type, *Type, error) {
	tx, err := g.genExpr(x)
	if err != nil {
		return nil, nil, err
	}
	g.emit("\tpush eax")
	ty, err := g.genExpr(y)
	if err != nil {
		return nil, nil, err
	}
	g.emit("\tmov ecx, eax")
	g.emit("\tpop eax")
	return tx, ty, nil
}

// ---- expressions ----

// storeTo emits a store of eax to a memory operand of the given type.
func (g *gen) storeTo(memOperand string, t *Type) {
	if t.Kind == TypeChar {
		g.emit("\tmov byte %s, al", memOperand)
	} else {
		g.emit("\tmov %s, eax", memOperand)
	}
}

// loadFrom emits a load into eax from a memory operand of the given type.
func (g *gen) loadFrom(memOperand string, t *Type) {
	if t.Kind == TypeChar {
		g.emit("\tmovzx eax, byte %s", memOperand)
	} else {
		g.emit("\tmov eax, dword %s", memOperand)
	}
}

// genExpr evaluates e into eax and returns its (decayed) type.
//
//nolint:gocyclo // expression dispatch
func (g *gen) genExpr(e Expr) (*Type, error) {
	switch ex := e.(type) {
	case *IntLit:
		if ex.Value == 0 {
			g.emit("\txor eax, eax")
		} else {
			g.emit("\tmov eax, %d", int32(ex.Value))
		}
		return typeInt, nil

	case *StrLit:
		g.emit("\tmov eax, %s", g.strLabel(ex.Value))
		return ptrTo(typeChar), nil

	case *Ident:
		if lv, ok := g.locals[ex.Name]; ok {
			if lv.typ.Kind == TypeArray {
				g.emit("\tlea eax, [ebp%+d]", lv.off)
				return lv.typ.decay(), nil
			}
			g.loadFrom(fmt.Sprintf("[ebp%+d]", lv.off), lv.typ)
			return lv.typ, nil
		}
		if gv, ok := g.globals[ex.Name]; ok {
			if gv.Type.Kind == TypeArray {
				g.emit("\tmov eax, %s", ex.Name)
				return gv.Type.decay(), nil
			}
			g.loadFrom(fmt.Sprintf("[%s]", ex.Name), gv.Type)
			return gv.Type, nil
		}
		return nil, cerr(ex.Line, "undefined identifier %q", ex.Name)

	case *Unary:
		switch ex.Op {
		case "-":
			t, err := g.genExpr(ex.X)
			if err != nil {
				return nil, err
			}
			if t.IsPtrLike() {
				return nil, cerr(ex.Line, "negation of pointer")
			}
			g.emit("\tneg eax")
			return typeInt, nil
		case "~":
			if _, err := g.genExpr(ex.X); err != nil {
				return nil, err
			}
			g.emit("\tnot eax")
			return typeInt, nil
		case "!":
			return g.genBoolValue(e)
		case "*":
			t, err := g.genExpr(ex.X)
			if err != nil {
				return nil, err
			}
			if !t.IsPtrLike() {
				return nil, cerr(ex.Line, "dereference of non-pointer %s", t)
			}
			elem := t.decay().Elem
			g.loadFrom("[eax]", elem)
			return elem.decay(), nil
		case "&":
			t, err := g.genAddr(ex.X)
			if err != nil {
				return nil, err
			}
			return ptrTo(t), nil
		}
		return nil, cerr(ex.Line, "unknown unary operator %q", ex.Op)

	case *Binary:
		if _, isRel := relJcc[ex.Op]; isRel || ex.Op == "&&" || ex.Op == "||" {
			return g.genBoolValue(e)
		}
		return g.genArith(ex.Op, ex.X, ex.Y, ex.Line)

	case *Assign:
		return g.genAssign(ex)

	case *Call:
		return g.genCall(ex)

	case *Index:
		t, err := g.genAddr(ex)
		if err != nil {
			return nil, err
		}
		g.loadFrom("[eax]", t)
		return t.decay(), nil

	case *PostIncDec:
		t, err := g.genAddr(ex.X)
		if err != nil {
			return nil, err
		}
		delta := 1
		if t.Kind == TypePtr {
			delta = t.Elem.Size()
		}
		g.emit("\tmov ecx, eax")
		g.loadFrom("[ecx]", t)
		g.emit("\tpush eax")
		if ex.Inc {
			g.emit("\tadd eax, %d", delta)
		} else {
			g.emit("\tsub eax, %d", delta)
		}
		g.storeTo("[ecx]", t)
		g.emit("\tpop eax")
		return t.decay(), nil
	}
	return nil, fmt.Errorf("cc: unknown expression %T", e)
}

// genBoolValue materializes a boolean expression as 0/1 in eax. The
// default style uses branches (the branch-dense codegen the paper's
// disassembly shows); Options.SetccBooleans switches simple comparisons to
// cmp+setcc+movzx (see DESIGN.md "Design choices to ablate").
func (g *gen) genBoolValue(e Expr) (*Type, error) {
	if g.opts.SetccBooleans {
		if bin, ok := e.(*Binary); ok {
			if jccs, isRel := relJcc[bin.Op]; isRel {
				tx, ty, err := g.genOperandPair(bin.X, bin.Y)
				if err != nil {
					return nil, err
				}
				jcc := jccs[0]
				if tx.IsPtrLike() || ty.IsPtrLike() {
					jcc = jccs[1]
				}
				g.emit("\tcmp eax, ecx")
				g.emit("\tset%s al", jcc[1:])
				g.emit("\tmovzx eax, al")
				return typeInt, nil
			}
		}
	}
	trueLbl := g.label()
	endLbl := g.label()
	if err := g.genCondJump(e, trueLbl, true); err != nil {
		return nil, err
	}
	g.emit("\txor eax, eax")
	g.emit("\tjmp %s", endLbl)
	g.emit("%s:", trueLbl)
	g.emit("\tmov eax, 1")
	g.emit("%s:", endLbl)
	return typeInt, nil
}

// genArith compiles the non-comparison binary operators.
func (g *gen) genArith(op string, x, y Expr, line int) (*Type, error) {
	tx, ty, err := g.genOperandPair(x, y)
	if err != nil {
		return nil, err
	}
	// Pointer arithmetic scaling.
	resType := typeInt
	switch {
	case op == "+" && tx.IsPtrLike() && !ty.IsPtrLike():
		g.scaleReg("ecx", tx.decay().Elem.Size())
		resType = tx.decay()
	case op == "+" && ty.IsPtrLike() && !tx.IsPtrLike():
		// int + ptr: scale the int side (eax).
		g.scaleReg("eax", ty.decay().Elem.Size())
		resType = ty.decay()
	case op == "-" && tx.IsPtrLike() && !ty.IsPtrLike():
		g.scaleReg("ecx", tx.decay().Elem.Size())
		resType = tx.decay()
	case op == "-" && tx.IsPtrLike() && ty.IsPtrLike():
		// ptr - ptr: byte difference divided by element size.
		g.emit("\tsub eax, ecx")
		size := tx.decay().Elem.Size()
		if size > 1 {
			g.emit("\tmov ecx, %d", size)
			g.emit("\tcdq")
			g.emit("\tidiv ecx")
		}
		return typeInt, nil
	}

	switch op {
	case "+":
		g.emit("\tadd eax, ecx")
	case "-":
		g.emit("\tsub eax, ecx")
	case "*":
		g.emit("\timul eax, ecx")
	case "/":
		g.emit("\tcdq")
		g.emit("\tidiv ecx")
	case "%":
		g.emit("\tcdq")
		g.emit("\tidiv ecx")
		g.emit("\tmov eax, edx")
	case "&":
		g.emit("\tand eax, ecx")
	case "|":
		g.emit("\tor eax, ecx")
	case "^":
		g.emit("\txor eax, ecx")
	case "<<":
		g.emit("\tshl eax, cl")
	case ">>":
		g.emit("\tsar eax, cl")
	default:
		return nil, cerr(line, "unknown binary operator %q", op)
	}
	return resType, nil
}

// scaleReg multiplies a register by an element size (pointer arithmetic).
func (g *gen) scaleReg(reg string, size int) {
	if size <= 1 {
		return
	}
	g.emit("\timul %s, %s, %d", reg, reg, size)
}

// genAssign compiles plain and compound assignment.
func (g *gen) genAssign(ex *Assign) (*Type, error) {
	t, err := g.genAddr(ex.LHS)
	if err != nil {
		return nil, err
	}
	g.emit("\tpush eax")
	if _, err := g.genExpr(ex.RHS); err != nil {
		return nil, err
	}
	if ex.Op == "" {
		g.emit("\tpop ecx")
		g.storeTo("[ecx]", t)
		return t.decay(), nil
	}
	// Compound assignment: stack holds [addr]; eax holds rhs.
	g.emit("\tpush eax")         // [addr, rhs]
	g.emit("\tmov eax, [esp+4]") // addr
	g.loadFrom("[eax]", t)       // old value
	g.emit("\tpop ecx")          // rhs -> ecx, [addr]
	if t.Kind == TypePtr && (ex.Op == "+" || ex.Op == "-") {
		g.scaleReg("ecx", t.Elem.Size())
	}
	switch ex.Op {
	case "+":
		g.emit("\tadd eax, ecx")
	case "-":
		g.emit("\tsub eax, ecx")
	case "*":
		g.emit("\timul eax, ecx")
	case "/":
		g.emit("\tcdq")
		g.emit("\tidiv ecx")
	case "%":
		g.emit("\tcdq")
		g.emit("\tidiv ecx")
		g.emit("\tmov eax, edx")
	case "&":
		g.emit("\tand eax, ecx")
	case "|":
		g.emit("\tor eax, ecx")
	case "^":
		g.emit("\txor eax, ecx")
	case "<<":
		g.emit("\tshl eax, cl")
	case ">>":
		g.emit("\tsar eax, cl")
	default:
		return nil, cerr(ex.Line, "unknown compound operator %q=", ex.Op)
	}
	g.emit("\tpop ecx") // addr
	g.storeTo("[ecx]", t)
	return t.decay(), nil
}

// genCall compiles builtin syscalls and ordinary cdecl calls.
func (g *gen) genCall(ex *Call) (*Type, error) {
	if arity, ok := builtins[ex.Name]; ok {
		if len(ex.Args) != arity {
			return nil, cerr(ex.Line, "%s expects %d arguments", ex.Name, arity)
		}
		return g.genSyscall(ex)
	}
	fn, ok := g.funcs[ex.Name]
	if !ok {
		return nil, cerr(ex.Line, "call of undefined function %q", ex.Name)
	}
	if len(ex.Args) != len(fn.Params) {
		return nil, cerr(ex.Line, "%s expects %d arguments, got %d",
			ex.Name, len(fn.Params), len(ex.Args))
	}
	// cdecl: push arguments right-to-left; caller cleans the stack.
	for i := len(ex.Args) - 1; i >= 0; i-- {
		if _, err := g.genExpr(ex.Args[i]); err != nil {
			return nil, err
		}
		g.emit("\tpush eax")
	}
	g.emit("\tcall %s", ex.Name)
	if n := len(ex.Args); n > 0 {
		g.emit("\tadd esp, %d", 4*n)
	}
	return fn.Ret.decay(), nil
}

// genSyscall inlines an int 0x80 sequence. EBX is callee-saved in cdecl,
// so it is preserved around the trap.
func (g *gen) genSyscall(ex *Call) (*Type, error) {
	nr := map[string]int{"sys_exit": 1, "sys_read": 3, "sys_write": 4}[ex.Name]
	if ex.Name == "sys_exit" {
		if _, err := g.genExpr(ex.Args[0]); err != nil {
			return nil, err
		}
		g.emit("\tmov ebx, eax")
		g.emit("\tmov eax, %d", nr)
		g.emit("\tint 0x80")
		return typeInt, nil
	}
	g.emit("\tpush ebx")
	for i := 0; i < 2; i++ { // fd, buf pushed; count stays in eax->edx
		if _, err := g.genExpr(ex.Args[i]); err != nil {
			return nil, err
		}
		g.emit("\tpush eax")
	}
	if _, err := g.genExpr(ex.Args[2]); err != nil {
		return nil, err
	}
	g.emit("\tmov edx, eax")
	g.emit("\tpop ecx")
	g.emit("\tpop ebx")
	g.emit("\tmov eax, %d", nr)
	g.emit("\tint 0x80")
	g.emit("\tpop ebx")
	return typeInt, nil
}

// genAddr evaluates the address of an lvalue into eax and returns the type
// of the addressed object.
func (g *gen) genAddr(e Expr) (*Type, error) {
	switch ex := e.(type) {
	case *Ident:
		if lv, ok := g.locals[ex.Name]; ok {
			g.emit("\tlea eax, [ebp%+d]", lv.off)
			return lv.typ, nil
		}
		if gv, ok := g.globals[ex.Name]; ok {
			g.emit("\tmov eax, %s", ex.Name)
			return gv.Type, nil
		}
		return nil, cerr(ex.Line, "undefined identifier %q", ex.Name)
	case *Index:
		tp, ti, err := g.genOperandPair(ex.X, ex.I)
		if err != nil {
			return nil, err
		}
		if !tp.IsPtrLike() {
			if !ti.IsPtrLike() {
				return nil, cerr(ex.Line, "indexing non-pointer %s", tp)
			}
			tp, ti = ti, tp // i[p] — unusual but C-legal; not generated here
		}
		elem := tp.decay().Elem
		g.scaleReg("ecx", elem.Size())
		g.emit("\tadd eax, ecx")
		return elem, nil
	case *Unary:
		if ex.Op == "*" {
			t, err := g.genExpr(ex.X)
			if err != nil {
				return nil, err
			}
			if !t.IsPtrLike() {
				return nil, cerr(ex.Line, "dereference of non-pointer %s", t)
			}
			return t.decay().Elem, nil
		}
	}
	return nil, fmt.Errorf("cc: expression %T is not an lvalue", e)
}

// ---- data emission ----

func (g *gen) emitStrings() error {
	if len(g.strs) == 0 {
		return nil
	}
	g.emit(".rodata")
	// Deterministic order.
	lits := make([]string, 0, len(g.strs))
	for s := range g.strs {
		lits = append(lits, s)
	}
	sort.Slice(lits, func(i, j int) bool { return g.strs[lits[i]] < g.strs[lits[j]] })
	for _, s := range lits {
		g.emit("%s: .asciz %s", g.strs[s], quoteForAsm(s))
	}
	return nil
}

func (g *gen) emitGlobals(globals []*VarDecl) error {
	var bss, data []*VarDecl
	for _, v := range globals {
		if v.Init == nil && !v.IsStr {
			bss = append(bss, v)
		} else {
			data = append(data, v)
		}
	}
	if len(data) > 0 {
		g.emit(".data")
		for _, v := range data {
			if err := g.emitDataGlobal(v); err != nil {
				return err
			}
		}
	}
	if len(bss) > 0 {
		g.emit(".bss")
		for _, v := range bss {
			g.emit(".align 4")
			g.emit("%s: .space %d", v.Name, max4(v.Type.Size()))
		}
	}
	return nil
}

func max4(n int) int {
	if n < 1 {
		return 4
	}
	return n
}

func (g *gen) emitDataGlobal(v *VarDecl) error {
	g.emit(".align 4")
	if v.IsStr {
		pad := v.Type.Count - (len(v.Str) + 1)
		if pad < 0 {
			return cerr(v.Line, "initializer longer than array %q", v.Name)
		}
		g.emit("%s: .asciz %s", v.Name, quoteForAsm(v.Str))
		if pad > 0 {
			g.emit(".space %d", pad)
		}
		return nil
	}
	elem := v.Type
	count := 1
	if v.Type.Kind == TypeArray {
		elem = v.Type.Elem
		count = v.Type.Count
	}
	if len(v.Init) > count {
		return cerr(v.Line, "too many initializers for %q", v.Name)
	}
	emitOne := func(init GlobalInit) error {
		switch {
		case init.Str != nil:
			if elem.Kind != TypePtr || elem.Elem.Kind != TypeChar {
				return cerr(v.Line, "string initializer for non-char* element in %q", v.Name)
			}
			g.emit(".dd %s", g.strLabel(*init.Str))
		case init.Symbol != "":
			if _, ok := g.globals[init.Symbol]; !ok {
				if _, fok := g.funcs[init.Symbol]; !fok {
					return cerr(v.Line, "unknown symbol %q in initializer", init.Symbol)
				}
			}
			g.emit(".dd %s", init.Symbol)
		default:
			if elem.Kind == TypeChar {
				g.emit(".db %d", byte(init.Value))
			} else {
				g.emit(".dd %d", int32(init.Value))
			}
		}
		return nil
	}
	g.emit("%s:", v.Name)
	for _, init := range v.Init {
		if err := emitOne(init); err != nil {
			return err
		}
	}
	// Zero-fill the remainder.
	rest := count - len(v.Init)
	if rest > 0 {
		g.emit(".space %d", rest*elem.Size())
	}
	return nil
}

// quoteForAsm renders a Go string as an assembler string literal.
func quoteForAsm(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '\n':
			b.WriteString("\\n")
		case '\r':
			b.WriteString("\\r")
		case '\t':
			b.WriteString("\\t")
		case 0:
			b.WriteString("\\0")
		case '\\':
			b.WriteString("\\\\")
		case '"':
			b.WriteString("\\\"")
		default:
			if c < 32 || c > 126 {
				fmt.Fprintf(&b, "\\x%02x", c)
			} else {
				b.WriteByte(c)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
