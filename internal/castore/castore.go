// Package castore is a content-addressed store of immutable blobs on the
// local filesystem, the persistence layer of the campaign result cache
// (FastFlip-style incremental campaigns, arXiv 2403.13989). Entries are
// keyed by the caller's content digest; the store guarantees durability
// (write-temp → fsync → rename → fsync-dir) and integrity (a self-check
// header over the payload), and treats every validation failure as a miss
// so a torn or corrupted entry can never surface as a wrong result.
package castore

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ErrNotExist reports a Get for a key with no entry on disk — the plain
// cache-miss case.
var ErrNotExist = errors.New("castore: entry does not exist")

// CorruptError reports an entry that exists but failed validation
// (truncated payload, checksum mismatch, mangled header). Callers treat
// it exactly like a miss — the entry is unusable — but may count it
// separately for metrics.
type CorruptError struct {
	Key    string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("castore: corrupt entry %s: %s", e.Key, e.Reason)
}

// magic is the entry header prefix; bumping the version invalidates every
// entry written by older code.
const magic = "castore v1"

// Store is a directory of content-addressed entries. Entry files are
// named by their key; concurrent Puts of the same key are safe (last
// rename wins, and all writers carry identical bytes or Put fails loudly).
type Store struct {
	dir string
}

// Open creates the store directory if needed and returns a handle.
// The parent directory is fsynced after creation so the store itself
// survives a crash right after Open.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	if err := syncDir(filepath.Dir(dir)); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// validKey reports whether key is a hex digest usable as a filename.
func validKey(key string) bool {
	if len(key) != 2*sha256.Size {
		return false
	}
	_, err := hex.DecodeString(key)
	return err == nil
}

func (s *Store) path(key string) string { return filepath.Join(s.dir, key) }

// Get returns the payload stored under key. It returns ErrNotExist when
// no entry exists and a *CorruptError when an entry exists but fails
// validation; both mean "miss" to a cache consumer.
func (s *Store) Get(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("castore: invalid key %q", key)
	}
	f, err := os.Open(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotExist
		}
		return nil, fmt.Errorf("castore: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, &CorruptError{Key: key, Reason: "unreadable header"}
	}
	payload, reason := parseEntry(key, strings.TrimSuffix(header, "\n"), br)
	if reason != "" {
		return nil, &CorruptError{Key: key, Reason: reason}
	}
	return payload, nil
}

// parseEntry validates the header line and reads+verifies the payload.
// It returns a non-empty reason on any validation failure.
func parseEntry(key, header string, r io.Reader) ([]byte, string) {
	fields := strings.Fields(header)
	// "castore v1 <key> <payload-sha256> <payload-len>"
	if len(fields) != 5 || fields[0]+" "+fields[1] != magic {
		return nil, "bad header"
	}
	if fields[2] != key {
		return nil, "key mismatch"
	}
	n, err := strconv.Atoi(fields[4])
	if err != nil || n < 0 {
		return nil, "bad length"
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, "truncated payload"
	}
	if extra, _ := io.Copy(io.Discard, r); extra != 0 {
		return nil, "trailing bytes"
	}
	if hex.EncodeToString(sumOf(payload)) != fields[3] {
		return nil, "checksum mismatch"
	}
	return payload, ""
}

func sumOf(payload []byte) []byte {
	h := sha256.Sum256(payload)
	return h[:]
}

// Put stores payload under key. Entries are immutable: a Put over an
// existing valid entry verifies the payloads are byte-identical and
// returns wrote=false without touching disk; a mismatch is an error (two
// writers disagreeing about the same content address is a soundness bug,
// never silently resolved). A Put over a corrupt entry replaces it.
// The write is durable: temp file → Sync → rename → dir fsync.
func (s *Store) Put(key string, payload []byte) (wrote bool, err error) {
	if !validKey(key) {
		return false, fmt.Errorf("castore: invalid key %q", key)
	}
	if existing, err := s.Get(key); err == nil {
		if !bytes.Equal(existing, payload) {
			return false, fmt.Errorf("castore: key collision on %s: existing entry differs from new payload", key)
		}
		return false, nil
	} else if !errors.Is(err, ErrNotExist) {
		var ce *CorruptError
		if !errors.As(err, &ce) {
			return false, err
		}
		// corrupt entry: fall through and rewrite it
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+key[:8]+"-*")
	if err != nil {
		return false, fmt.Errorf("castore: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	header := fmt.Sprintf("%s %s %s %d\n", magic, key, hex.EncodeToString(sumOf(payload)), len(payload))
	if _, err = tmp.WriteString(header); err != nil {
		return false, fmt.Errorf("castore: %w", err)
	}
	if _, err = tmp.Write(payload); err != nil {
		return false, fmt.Errorf("castore: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return false, fmt.Errorf("castore: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return false, fmt.Errorf("castore: %w", err)
	}
	if err = os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return false, fmt.Errorf("castore: %w", err)
	}
	if err = syncDir(s.dir); err != nil {
		return false, err
	}
	return true, nil
}

// Keys lists every valid-looking entry key in the store (unordered).
func (s *Store) Keys() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	var keys []string
	for _, e := range ents {
		if !e.Type().IsRegular() || !validKey(e.Name()) {
			continue
		}
		keys = append(keys, e.Name())
	}
	return keys, nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry in
// it survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("castore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("castore: sync %s: %w", dir, err)
	}
	return nil
}
