package castore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func keyFor(payload string) string {
	h := sha256.Sum256([]byte(payload))
	return hex.EncodeToString(h[:])
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "cas"))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"results":[1,2,3]}`)
	key := keyFor("round-trip")
	wrote, err := s.Put(key, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !wrote {
		t.Fatal("first Put reported wrote=false")
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("Get = %q, want %q", got, payload)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys = %v, want [%s]", keys, key)
	}
}

func TestGetMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(keyFor("absent")); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Get on empty store = %v, want ErrNotExist", err)
	}
}

func TestInvalidKeyRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", strings.Repeat("zz", 32), "../../etc/passwd"} {
		if _, err := s.Get(bad); err == nil || errors.Is(err, ErrNotExist) {
			t.Errorf("Get(%q) = %v, want invalid-key error", bad, err)
		}
		if _, err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) succeeded, want invalid-key error", bad)
		}
	}
}

func TestDuplicatePutIdenticalIsNoop(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := keyFor("dup")
	payload := []byte("same bytes")
	if _, err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	wrote, err := s.Put(key, payload)
	if err != nil {
		t.Fatal(err)
	}
	if wrote {
		t.Fatal("duplicate identical Put reported wrote=true")
	}
}

func TestDuplicatePutMismatchFailsLoudly(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := keyFor("collide")
	if _, err := s.Put(key, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(key, []byte("two")); err == nil {
		t.Fatal("Put of different payload under same key succeeded; want collision error")
	}
	// The original entry must be intact.
	got, err := s.Get(key)
	if err != nil || string(got) != "one" {
		t.Fatalf("after failed Put, Get = %q, %v; want original payload", got, err)
	}
}

// corrupt mutates the on-disk entry file through fn and asserts Get
// reports a CorruptError (a miss, never a wrong payload).
func corruptCase(t *testing.T, name string, fn func(path string, raw []byte) []byte) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		key := keyFor("victim-" + name)
		payload := []byte(`{"shard":"results payload for corruption test"}`)
		if _, err := s.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(s.Dir(), key)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, fn(path, raw), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = s.Get(key)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("Get on corrupted entry = %v, want CorruptError", err)
		}
		// A corrupt entry must be replaceable by a fresh Put.
		wrote, err := s.Put(key, payload)
		if err != nil || !wrote {
			t.Fatalf("Put over corrupt entry = wrote=%v err=%v, want rewrite", wrote, err)
		}
		got, err := s.Get(key)
		if err != nil || string(got) != string(payload) {
			t.Fatalf("after rewrite, Get = %q, %v", got, err)
		}
	})
}

func TestCorruptionIsAMiss(t *testing.T) {
	corruptCase(t, "truncated", func(_ string, raw []byte) []byte {
		return raw[:len(raw)-5]
	})
	corruptCase(t, "flipped-payload-byte", func(_ string, raw []byte) []byte {
		out := append([]byte(nil), raw...)
		out[len(out)-1] ^= 0x40
		return out
	})
	corruptCase(t, "mangled-header", func(_ string, raw []byte) []byte {
		return append([]byte("not a castore file\n"), raw...)
	})
	corruptCase(t, "trailing-garbage", func(_ string, raw []byte) []byte {
		return append(append([]byte(nil), raw...), []byte("extra")...)
	})
	corruptCase(t, "empty-file", func(_ string, raw []byte) []byte {
		return nil
	})
}

func TestOpenCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "cas")
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("store dir not created: %v", err)
	}
}
