package report_test

import (
	"encoding/json"
	"strings"
	"testing"

	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/inject"
	"faultsec/internal/report"
)

// fakeStats builds a Stats with the given outcome counts.
func fakeStats(app, scenario string, na, nm, sd, fsv, brk int) *inject.Stats {
	s := &inject.Stats{
		App:      app,
		Scenario: scenario,
		Scheme:   encoding.SchemeX86,
		Counts: map[classify.Outcome]int{
			classify.OutcomeNA:  na,
			classify.OutcomeNM:  nm,
			classify.OutcomeSD:  sd,
			classify.OutcomeFSV: fsv,
			classify.OutcomeBRK: brk,
		},
		ByLocation: map[classify.Location]map[classify.Outcome]int{
			classify.Loc2BC: {classify.OutcomeBRK: brk, classify.OutcomeFSV: fsv / 2},
			classify.Loc2BO: {classify.OutcomeFSV: fsv - fsv/2},
		},
	}
	s.Total = na + nm + sd + fsv + brk
	return s
}

func TestTable1Layout(t *testing.T) {
	stats := []*inject.Stats{
		fakeStats("ftpd", "Client1", 6776, 307, 285, 57, 7),
		fakeStats("sshd", "Client1", 1424, 498, 650, 73, 19),
	}
	out := report.Table1(stats)
	for _, want := range []string{"FTP Client1", "SSH Client1", "NA", "NM", "SD", "FSV", "BRK", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
	// Percentages are against activated errors: 7 / (307+285+57+7) = 1.07%.
	if !strings.Contains(out, "1.07%") {
		t.Errorf("Table1 missing the paper's BRK percentage:\n%s", out)
	}
	if !strings.Contains(out, "7432") {
		t.Errorf("Table1 missing total:\n%s", out)
	}
}

func TestTable2HasAllLocations(t *testing.T) {
	out := report.Table2()
	for _, want := range []string{"2BC", "2BO", "6BC1", "6BC2", "6BO", "MISC", "Opcode of 2-byte"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestTable3Percentages(t *testing.T) {
	stats := []*inject.Stats{fakeStats("ftpd", "Client1", 100, 10, 10, 10, 10)}
	out := report.Table3(stats)
	if !strings.Contains(out, "2BC") || !strings.Contains(out, "Total") {
		t.Errorf("Table3 layout broken:\n%s", out)
	}
	// 2BC holds BRK=10 + FSV/2=5 of 20 manifested = 75%.
	if !strings.Contains(out, "75.00%") {
		t.Errorf("Table3 percentage wrong:\n%s", out)
	}
}

func TestTable4ContainsPaperRows(t *testing.T) {
	// Collapse runs of spaces so the assertions are independent of column
	// alignment.
	out := strings.Join(strings.Fields(report.Table4()), " ")
	for _, want := range []string{
		"JNO 71 61 0F 81 0F 81",
		"JE 74 64 0F 84 0F 84",
		"JO 70 70 0F 80 0F 90",
		"JG 7F 7F 0F 8F 0F 9F",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q:\n%s", want, out)
		}
	}
}

func TestTable5ReductionRows(t *testing.T) {
	old := []*inject.Stats{fakeStats("ftpd", "Client1", 6776, 307, 285, 57, 7)}
	new_ := []*inject.Stats{fakeStats("ftpd", "Client1", 6776, 234, 381, 40, 1)}
	out := report.Table5(old, new_)
	if !strings.Contains(out, "FSV Red.") || !strings.Contains(out, "BRK Red.") {
		t.Fatalf("Table5 missing reduction rows:\n%s", out)
	}
	// BRK reduction: (7-1)/7 = 86%.
	if !strings.Contains(out, "86%") {
		t.Errorf("Table5 BRK reduction wrong:\n%s", out)
	}
	// FSV reduction: (57-40)/57 = 30%.
	if !strings.Contains(out, "30%") {
		t.Errorf("Table5 FSV reduction wrong:\n%s", out)
	}
}

func TestHistogramBinning(t *testing.T) {
	// Latencies 1, 2, 3, 100, 16384 -> bins 1, 2, 2, 7, 15.
	h := report.NewHistogram([]uint64{1, 2, 3, 100, 16384})
	if h.Total != 5 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Within100 != 4 {
		t.Errorf("within100 = %d", h.Within100)
	}
	if h.Max != 16384 {
		t.Errorf("max = %d", h.Max)
	}
	if h.Bins[1] != 1 || h.Bins[2] != 2 || h.Bins[7] != 1 || h.Bins[15] != 1 {
		t.Errorf("bins = %v", h.Bins)
	}
	if pct := h.PctWithin100(); pct != 80 {
		t.Errorf("pct = %f", pct)
	}
	out := report.Figure4(h)
	if !strings.Contains(out, "2^15") || !strings.Contains(out, "#") {
		t.Errorf("Figure4 rendering broken:\n%s", out)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := report.NewHistogram(nil)
	if h.PctWithin100() != 0 {
		t.Error("empty histogram pct should be 0")
	}
	if out := report.Figure4(h); !strings.Contains(out, "crashes=0") {
		t.Errorf("empty Figure4:\n%s", out)
	}
}

func TestStatsHelpers(t *testing.T) {
	s := fakeStats("ftpd", "Client1", 100, 30, 50, 15, 5)
	if s.Activated() != 100 {
		t.Errorf("activated = %d", s.Activated())
	}
	if got := s.PctOfActivated(classify.OutcomeBRK); got != 5 {
		t.Errorf("pct BRK = %f", got)
	}
	bd := s.ManifestedBreakdown()
	if bd[classify.Loc2BC] != 5+7 || bd[classify.Loc2BO] != 8 {
		t.Errorf("breakdown = %v", bd)
	}
}

func TestExportJSON(t *testing.T) {
	s := fakeStats("ftpd", "Client1", 100, 30, 50, 15, 5)
	s.CrashLatencies = []uint64{1, 2, 200, 20000}
	s.Window = inject.TransientWindow{Crashes: 4, LongLatency: 2, WroteInWindow: 1, LongAndWrote: 1}
	data, err := report.MarshalStats([]*inject.Stats{s})
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != 1 {
		t.Fatalf("exports = %d", len(decoded))
	}
	e := decoded[0]
	if e["app"] != "ftpd" || e["scenario"] != "Client1" || e["scheme"] != "x86" {
		t.Errorf("identity fields wrong: %v", e)
	}
	outcomes, ok := e["outcomes"].(map[string]any)
	if !ok || outcomes["BRK"] != float64(5) || outcomes["NA"] != float64(100) {
		t.Errorf("outcomes wrong: %v", e["outcomes"])
	}
	if e["pct_within_100"].(float64) != 50 {
		t.Errorf("pct_within_100 = %v", e["pct_within_100"])
	}
	window, ok := e["transient_window"].(map[string]any)
	if !ok || window["Crashes"] != float64(4) {
		t.Errorf("window wrong: %v", e["transient_window"])
	}
}
