package report

import (
	"fmt"

	"faultsec/internal/classify"
	"faultsec/internal/inject"
)

// ModelMatrix renders the fault-model comparison matrix: one row per
// (fault model × target campaign × error location), with the counts of the
// three manifested severities — security break-ins (BRK), system
// detections (SD), and fail silence violations (FSV). It is the
// cross-model analogue of Table 3: where the paper asks "where inside a
// branch does a single bit flip do damage", this asks the same question
// for every error model at once, making the models' damage profiles
// directly comparable (e.g. whether branch-outcome inversion concentrates
// break-ins the way opcode-byte flips do).
//
// Location rows with no BRK/SD/FSV are elided; every campaign keeps a
// "total" row (even when all-zero) so each (model, target) pair is visible
// in the matrix.
func ModelMatrix(stats []*inject.Stats) string {
	t := &table{}
	t.add("Model", "Target", "Location", "BRK", "SD", "FSV")
	severities := []classify.Outcome{classify.OutcomeBRK, classify.OutcomeSD, classify.OutcomeFSV}
	for _, s := range stats {
		totals := make(map[classify.Outcome]int, len(severities))
		for _, loc := range classify.Locations() {
			m := s.ByLocation[loc]
			n := 0
			row := []string{s.Model, colName(s), loc.String()}
			for _, o := range severities {
				n += m[o]
				totals[o] += m[o]
				row = append(row, fmt.Sprintf("%d", m[o]))
			}
			if n > 0 {
				t.add(row...)
			}
		}
		t.add(s.Model, colName(s), "total",
			fmt.Sprintf("%d", totals[classify.OutcomeBRK]),
			fmt.Sprintf("%d", totals[classify.OutcomeSD]),
			fmt.Sprintf("%d", totals[classify.OutcomeFSV]))
	}
	return t.String()
}
