package report

import (
	"fmt"

	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/inject"
)

// SchemeMatrix renders the hardening-scheme reduction matrix: one row per
// (scheme × fault model × target campaign) with the counts and rates of
// the three manifested severities — security break-ins (BRK), system
// detections (SD), and fail silence violations (FSV) — and each rate's
// reduction against the baseline ("x86") campaign of the same (model,
// target). It is the scheme-side extension of the paper's Table 5: where
// the paper compares one countermeasure (the parity re-encoding) against
// the stock encoding under one fault model, this compares every registered
// scheme under every fault model at once.
//
// Rates are percentages of the campaign's runs, not raw counts, because
// compile-time schemes change the target set (a hardened image has more
// branch instructions), so campaigns under different schemes differ in
// size. Reduction is relative: 100 × (baseRate − rate) / baseRate, so
// "100.0%" means the scheme eliminated the severity and a negative value
// means the scheme made it worse (detection schemes routinely trade FSV
// reduction for an SD increase). Rows without a baseline campaign in the
// input, and the baseline rows themselves, print a dash.
func SchemeMatrix(stats []*inject.Stats) string {
	severities := []classify.Outcome{classify.OutcomeBRK, classify.OutcomeSD, classify.OutcomeFSV}

	// Baseline rates per (model, target), from the x86 campaigns present
	// in the input.
	base := make(map[string][]float64)
	key := func(s *inject.Stats) string { return s.Model + "|" + colName(s) }
	for _, s := range stats {
		if encoding.SchemeName(s.Scheme) != "x86" {
			continue
		}
		rates := make([]float64, len(severities))
		for i, o := range severities {
			rates[i] = rate(s, o)
		}
		base[key(s)] = rates
	}

	t := &table{}
	t.add("Scheme", "Model", "Target", "Runs",
		"BRK", "SD", "FSV", "BRK red", "SD red", "FSV red")
	for _, s := range stats {
		name := encoding.SchemeName(s.Scheme)
		row := []string{name, s.Model, colName(s), fmt.Sprintf("%d", s.Total)}
		for _, o := range severities {
			row = append(row, fmt.Sprintf("%d (%.2f%%)", s.Counts[o], rate(s, o)))
		}
		baseline, ok := base[key(s)]
		for i, o := range severities {
			switch {
			case name == "x86" || !ok:
				row = append(row, "-")
			case baseline[i] == 0:
				// Nothing to reduce; call out a regression from zero.
				if rate(s, o) > 0 {
					row = append(row, "worse")
				} else {
					row = append(row, "-")
				}
			default:
				row = append(row, fmt.Sprintf("%.1f%%", 100*(baseline[i]-rate(s, o))/baseline[i]))
			}
		}
		t.add(row...)
	}
	return t.String()
}

// rate is a severity's share of the campaign's runs, in percent.
func rate(s *inject.Stats, o classify.Outcome) float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.Counts[o]) / float64(s.Total)
}
