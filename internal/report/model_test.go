package report_test

import (
	"strings"
	"testing"

	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/inject"
	"faultsec/internal/report"
)

func modelStats(app, model string, byLoc map[classify.Location]map[classify.Outcome]int) *inject.Stats {
	return &inject.Stats{
		App: app, Scenario: "Client1", Scheme: encoding.SchemeX86,
		Model: model, ByLocation: byLoc,
	}
}

func TestModelMatrixLayout(t *testing.T) {
	stats := []*inject.Stats{
		modelStats("ftpd", "bitflip", map[classify.Location]map[classify.Outcome]int{
			classify.Loc2BC:  {classify.OutcomeBRK: 3, classify.OutcomeSD: 40},
			classify.Loc2BO:  {classify.OutcomeFSV: 5},
			classify.Loc6BO:  {}, // all-zero location: elided
			classify.LocMISC: {classify.OutcomeNM: 9}, // no manifested severity: elided
		}),
		modelStats("sshd", "cmpskip", map[classify.Location]map[classify.Outcome]int{
			classify.Loc2BC: {classify.OutcomeBRK: 1},
		}),
		// A campaign with nothing manifested still gets its total row.
		modelStats("ftpd", "instskip", nil),
	}
	out := report.ModelMatrix(stats)

	for _, want := range []string{"Model", "Target", "Location", "BRK", "SD", "FSV",
		"bitflip", "cmpskip", "instskip", "FTP Client1", "SSH Client1", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("ModelMatrix missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var bitflipRows, totalRows int
	for _, ln := range lines {
		if strings.Contains(ln, "bitflip") {
			bitflipRows++
		}
		if strings.Contains(ln, "total") {
			totalRows++
		}
		if strings.Contains(ln, "6BO") || strings.Contains(ln, "MISC") {
			t.Errorf("ModelMatrix kept a severity-free location row: %q", ln)
		}
	}
	// bitflip: 2BC and 2BO location rows plus its total row.
	if bitflipRows != 3 {
		t.Errorf("bitflip rows = %d, want 3 (2BC, 2BO, total):\n%s", bitflipRows, out)
	}
	// One total row per campaign, including the all-zero instskip one.
	if totalRows != 3 {
		t.Errorf("total rows = %d, want one per campaign:\n%s", totalRows, out)
	}
	// Severity totals sum the location rows.
	for _, ln := range lines {
		if strings.Contains(ln, "bitflip") && strings.Contains(ln, "total") {
			for _, cell := range []string{"3", "40", "5"} {
				if !strings.Contains(ln, cell) {
					t.Errorf("bitflip total row %q missing count %s", ln, cell)
				}
			}
		}
	}
}
