// Package report renders the study's results in the layout of the paper's
// tables and figure: Table 1 (outcome distributions), Table 3 (BRK+FSV by
// error location), Table 4 (the re-encoding map), Table 5 (new-encoding
// distributions with reduction rows), and Figure 4 (the crash-latency
// histogram on a log-2 scale).
package report

import (
	"fmt"
	"math/bits"
	"strings"

	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/inject"
)

// table is a simple column-aligned text table builder.
type table struct {
	rows [][]string
}

func (t *table) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for _, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i == 0 {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// colName renders a campaign's column header ("FTP Client1").
func colName(s *inject.Stats) string {
	app := strings.ToUpper(strings.TrimSuffix(s.App, "d"))
	return app + " " + s.Scenario
}

// cellCountPct renders "n" and "pct%" cells for one outcome of one
// campaign; NA has no percentage (the paper prints a dash).
func cellCountPct(s *inject.Stats, o classify.Outcome) (string, string) {
	n := s.Counts[o]
	if o == classify.OutcomeNA {
		return fmt.Sprintf("%d", n), "-"
	}
	if n == 0 {
		return "-", "-"
	}
	return fmt.Sprintf("%d", n), fmt.Sprintf("%.2f%%", s.PctOfActivated(o))
}

// Table1 renders the paper's Table 1 layout: one column pair per campaign,
// one row per outcome type, percentages computed against activated errors.
func Table1(stats []*inject.Stats) string {
	t := &table{}
	header := []string{"Type"}
	for _, s := range stats {
		header = append(header, colName(s), "%act")
	}
	t.add(header...)
	for _, o := range classify.Outcomes() {
		row := []string{o.String()}
		for _, s := range stats {
			c, p := cellCountPct(s, o)
			row = append(row, c, p)
		}
		t.add(row...)
	}
	footer := []string{"Total"}
	for _, s := range stats {
		footer = append(footer, fmt.Sprintf("%d", s.Total), "")
	}
	t.add(footer...)
	return t.String()
}

// Table2 renders the error-location legend.
func Table2() string {
	t := &table{}
	t.add("Abbr.", "Definition")
	defs := []struct {
		loc classify.Location
		def string
	}{
		{classify.Loc2BC, "Opcode of 2-byte conditional branch instruction"},
		{classify.Loc2BO, "Operand of 2-byte conditional branch instruction"},
		{classify.Loc6BC1, "Byte 1 of opcode of 6-byte conditional branch instruction"},
		{classify.Loc6BC2, "Byte 2 of opcode of 6-byte conditional branch instruction"},
		{classify.Loc6BO, "Operand of 6-byte conditional branch instruction"},
		{classify.LocMISC, "Others"},
	}
	for _, d := range defs {
		t.add(d.loc.String(), d.def)
	}
	return t.String()
}

// Table3 renders the paper's Table 3: BRK and FSV cases broken down by
// error location, with percentages against each campaign's manifested
// (BRK+FSV) total.
func Table3(stats []*inject.Stats) string {
	t := &table{}
	header := []string{"Location"}
	for _, s := range stats {
		header = append(header, colName(s), "%")
	}
	t.add(header...)
	totals := make([]int, len(stats))
	for i, s := range stats {
		for _, n := range s.ManifestedBreakdown() {
			totals[i] += n
		}
	}
	for _, loc := range classify.Locations() {
		row := []string{loc.String()}
		for i, s := range stats {
			n := s.ManifestedBreakdown()[loc]
			pct := "-"
			if totals[i] > 0 {
				pct = fmt.Sprintf("%.2f%%", 100*float64(n)/float64(totals[i]))
			}
			row = append(row, fmt.Sprintf("%d", n), pct)
		}
		t.add(row...)
	}
	footer := []string{"Total"}
	for _, tot := range totals {
		footer = append(footer, fmt.Sprintf("%d", tot), "-")
	}
	t.add(footer...)
	return t.String()
}

// Table4 renders the derived re-encoding map in the paper's layout.
func Table4() string {
	t := &table{}
	t.add("Mnemonics", "2-byte Old", "2-byte New", "6-byte Old", "6-byte New")
	for _, r := range encoding.Table4() {
		t.add(r.Mnemonic,
			fmt.Sprintf("%02X", r.Old2),
			fmt.Sprintf("%02X", r.New2),
			fmt.Sprintf("0F %02X", r.Old6Byte2),
			fmt.Sprintf("0F %02X", r.New6Byte2))
	}
	return t.String()
}

// Table5 renders the paper's Table 5: the outcome distribution under the
// new encoding plus the FSV/BRK reduction rows relative to the baseline
// campaigns. old and new must be parallel slices (same app/scenario
// order).
func Table5(old, new_ []*inject.Stats) string {
	t := &table{}
	header := []string{"Type"}
	for _, s := range new_ {
		header = append(header, colName(s), "%act")
	}
	t.add(header...)
	for _, o := range classify.Outcomes() {
		row := []string{o.String()}
		for _, s := range new_ {
			c, p := cellCountPct(s, o)
			row = append(row, c, p)
		}
		t.add(row...)
	}
	redRow := func(label string, o classify.Outcome) []string {
		row := []string{label}
		for i := range new_ {
			ob, nb := old[i].Counts[o], new_[i].Counts[o]
			if ob == 0 {
				row = append(row, "-", "-")
				continue
			}
			red := ob - nb
			row = append(row, fmt.Sprintf("%d", red),
				fmt.Sprintf("%.0f%%", 100*float64(red)/float64(ob)))
		}
		return row
	}
	t.add(redRow("FSV Red.", classify.OutcomeFSV)...)
	t.add(redRow("BRK Red.", classify.OutcomeBRK)...)
	return t.String()
}

// Histogram is the Figure 4 data: log-2 binned crash latencies.
type Histogram struct {
	// Bins[i] counts crashes with latency in (2^(i-1), 2^i].
	Bins []int
	// Total is the number of crashes.
	Total int
	// Within100 is the count with latency <= 100 instructions.
	Within100 int
	// Max is the largest observed latency.
	Max uint64
}

// NewHistogram bins crash latencies as in Figure 4.
func NewHistogram(latencies []uint64) *Histogram {
	h := &Histogram{}
	for _, lat := range latencies {
		bin := bits.Len64(lat)
		for len(h.Bins) <= bin {
			h.Bins = append(h.Bins, 0)
		}
		h.Bins[bin]++
		h.Total++
		if lat <= 100 {
			h.Within100++
		}
		if lat > h.Max {
			h.Max = lat
		}
	}
	return h
}

// PctWithin100 is the share of crashes within 100 instructions (the paper
// reports 91.5%).
func (h *Histogram) PctWithin100() float64 {
	if h.Total == 0 {
		return 0
	}
	return 100 * float64(h.Within100) / float64(h.Total)
}

// Figure4 renders the histogram as ASCII art on a log-2 X axis.
func Figure4(h *Histogram) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Number of instructions between error and crash (log2 bins)\n")
	fmt.Fprintf(&b, "crashes=%d, within 100 instructions: %.1f%%, max latency: %d\n",
		h.Total, h.PctWithin100(), h.Max)
	maxCount := 0
	for _, c := range h.Bins {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		return b.String()
	}
	const barWidth = 50
	for i, c := range h.Bins {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("#", 1+c*barWidth/maxCount)
		fmt.Fprintf(&b, "2^%-2d %5d %s\n", i, c, bar)
	}
	return b.String()
}
