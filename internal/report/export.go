package report

import (
	"encoding/json"

	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/inject"
)

// Export is the JSON-serializable form of campaign results, for downstream
// analysis outside this repository (plotting, aggregation across runs).
type Export struct {
	App      string `json:"app"`
	Scenario string `json:"scenario"`
	Scheme   string `json:"scheme"`
	// Model is the canonical fault-model name ("bitflip" for the paper's
	// single-bit model).
	Model  string         `json:"fault_model"`
	Total  int            `json:"total_runs"`
	Counts map[string]int `json:"outcomes"`
	// ByLocation maps location -> outcome -> count.
	ByLocation map[string]map[string]int `json:"by_location"`
	// CrashLatencyBins is the Figure 4 histogram (log-2 bins).
	CrashLatencyBins []int `json:"crash_latency_bins"`
	// PctWithin100 is the share of crashes within 100 instructions.
	PctWithin100 float64 `json:"pct_within_100"`
	// MaxLatency is the largest activation-to-crash distance.
	MaxLatency uint64 `json:"max_latency"`
	// Window is the transient-window activity summary.
	Window inject.TransientWindow `json:"transient_window"`
	// WatchdogDetections counts control-flow-checker terminations.
	WatchdogDetections int `json:"watchdog_detections,omitempty"`
}

// NewExport converts campaign stats into the export form.
func NewExport(s *inject.Stats) *Export {
	e := &Export{
		App:        s.App,
		Scenario:   s.Scenario,
		Scheme:     encoding.SchemeName(s.Scheme),
		Model:      s.Model,
		Total:      s.Total,
		Counts:     make(map[string]int, len(s.Counts)),
		ByLocation: make(map[string]map[string]int, len(s.ByLocation)),
		Window:     s.Window,

		WatchdogDetections: s.WatchdogDetections,
	}
	for _, o := range classify.Outcomes() {
		if n := s.Counts[o]; n > 0 {
			e.Counts[o.String()] = n
		}
	}
	for loc, m := range s.ByLocation {
		lm := make(map[string]int, len(m))
		for o, n := range m {
			if n > 0 {
				lm[o.String()] = n
			}
		}
		e.ByLocation[loc.String()] = lm
	}
	h := NewHistogram(s.CrashLatencies)
	e.CrashLatencyBins = h.Bins
	e.PctWithin100 = h.PctWithin100()
	e.MaxLatency = h.Max
	return e
}

// MarshalStats renders one or more campaigns as indented JSON.
func MarshalStats(stats []*inject.Stats) ([]byte, error) {
	exports := make([]*Export, len(stats))
	for i, s := range stats {
		exports[i] = NewExport(s)
	}
	return json.MarshalIndent(exports, "", "  ")
}
