package core_test

import (
	"context"
	"testing"

	"faultsec/internal/classify"
	"faultsec/internal/core"
	"faultsec/internal/encoding"
	"faultsec/internal/faultmodel"
	"faultsec/internal/inject"
)

// TestHTTPDForgedCookieGrid is the qualitative grid for the study's third
// target: the forged-cookie attacker (httpd Client3) against every
// registered hardening scheme under bitflip and instskip. It pins the
// session-validation analog of the ftpd/sshd countermeasure story:
//
//   - on the stock x86 encoding, single-bit flips in check_session grant
//     the forged cookie (the break-ins exist);
//   - every hardening scheme lowers that break-in rate, and the
//     cc-emitted branch countermeasures (dupcmp, encbranch) eliminate
//     instskip break-ins outright — the duplicated check catches a
//     skipped session compare exactly as it catches a skipped password
//     compare.
func TestHTTPDForgedCookieGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("eight httpd campaigns in -short mode")
	}
	s := study(t)
	ctx := context.Background()

	byCell := make(map[string]*inject.Stats)
	for _, sn := range encoding.Names() {
		scheme, err := encoding.Parse(sn)
		if err != nil {
			t.Fatal(err)
		}
		for _, mn := range []string{"bitflip", "instskip"} {
			st, err := s.CampaignModel(ctx, s.HTTPD, "Client3", scheme, mn, core.Options{})
			if err != nil {
				t.Fatalf("httpd Client3 %s/%s: %v", sn, mn, err)
			}
			byCell[sn+"|"+mn] = st
		}
	}
	cell := func(scheme, model string) *inject.Stats {
		t.Helper()
		st := byCell[scheme+"|"+model]
		if st == nil {
			t.Fatalf("grid missing cell %s/%s", scheme, model)
		}
		return st
	}
	brkRate := func(st *inject.Stats) float64 {
		return float64(st.Counts[classify.OutcomeBRK]) / float64(st.Total)
	}

	baseline := cell("x86", "bitflip")
	if baseline.Counts[classify.OutcomeBRK] == 0 {
		t.Fatal("x86 bitflip baseline has no forged-cookie break-ins — nothing to reduce")
	}
	for _, scheme := range []string{"parity", "dupcmp", "encbranch"} {
		if got, base := brkRate(cell(scheme, "bitflip")), brkRate(baseline); got >= base {
			t.Errorf("%s bitflip BRK rate %.4f did not improve on x86's %.4f", scheme, got, base)
		}
	}
	for _, scheme := range []string{"dupcmp", "encbranch"} {
		if n := cell(scheme, "instskip").Counts[classify.OutcomeBRK]; n != 0 {
			t.Errorf("%s under instskip still breaks in %d times — "+
				"the duplicated check should catch every skipped session compare", scheme, n)
		}
	}
}

// TestFaultModelMatrixIncludesHTTPD pins the matrix's application axis:
// every requested fault model produces one row family per target app,
// httpd included, in ftpd/sshd/httpd order (so pre-existing rows keep
// their relative positions).
func TestFaultModelMatrixIncludesHTTPD(t *testing.T) {
	s := study(t)
	models := []string{"instskip", "cmpskip"}
	_, stats, err := s.FaultModelMatrix(context.Background(), models, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(models) * 3; len(stats) != want {
		t.Fatalf("matrix stats = %d campaigns, want %d (%d models x 3 targets)",
			len(stats), want, len(models))
	}
	for i, mn := range models {
		for j, app := range []string{"ftpd", "sshd", "httpd"} {
			st := stats[i*3+j]
			if st.App != app || st.Model != mn {
				t.Errorf("stats[%d] = %s/%s, want %s/%s", i*3+j, st.App, st.Model, app, mn)
			}
			if st.Total == 0 {
				t.Errorf("empty campaign for %s under %s", app, mn)
			}
		}
	}
	if _, err := faultmodel.Get("bitflip"); err != nil {
		t.Fatal(err)
	}
}
