// Package core is the study's public orchestration API: it builds the
// target applications, runs the selective-exhaustive and random injection
// campaigns under both instruction encodings, and reproduces every table
// and figure of the paper (see DESIGN.md for the experiment index). The
// root faultsec package re-exports this API.
//
// Beyond the paper's two daemons the study carries a third target, httpd,
// whose session-cookie validation generalizes the auth-branch shape; it
// joins the fault-model and scheme matrices but stays out of the
// paper-numbered tables (Table 1/3/5 reproduce the published six
// campaigns exactly).
package core

import (
	"context"
	"errors"
	"fmt"

	"faultsec/internal/campaign" // importing registers the snapshot campaign engine as the inject backend
	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/faultmodel"
	"faultsec/internal/ftpd"
	"faultsec/internal/httpd"
	"faultsec/internal/inject"
	"faultsec/internal/kernel"
	"faultsec/internal/report"
	"faultsec/internal/sshd"
	"faultsec/internal/target"
	"faultsec/internal/vm"
)

// Study bundles the built target applications.
type Study struct {
	FTPD  *target.App
	SSHD  *target.App
	HTTPD *target.App
}

// NewStudy compiles and links all target servers.
func NewStudy() (*Study, error) {
	fapp, err := ftpd.Build()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	sapp, err := sshd.Build()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	happ, err := httpd.Build()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Study{FTPD: fapp, SSHD: sapp, HTTPD: happ}, nil
}

// matrixApps is the application axis of the fault-model and scheme
// matrices: the paper's two daemons plus the httpd session daemon. httpd
// comes last so the pre-existing ftpd/sshd rows keep their relative
// order.
func (s *Study) matrixApps() []*target.App {
	return []*target.App{s.FTPD, s.SSHD, s.HTTPD}
}

// Options tune campaign execution.
type Options struct {
	// Fuel is the per-run instruction budget; 0 uses the default.
	Fuel uint64
	// Parallelism is the worker count; 0 uses GOMAXPROCS.
	Parallelism int
	// KeepResults retains per-run detail on the returned stats.
	KeepResults bool
}

func (o Options) config(app *target.App, sc target.Scenario, scheme encoding.Scheme) inject.Config {
	return inject.Config{
		App:         app,
		Scenario:    sc,
		Scheme:      scheme,
		Fuel:        o.Fuel,
		Parallelism: o.Parallelism,
		KeepResults: o.KeepResults,
	}
}

// Campaign runs one selective-exhaustive campaign.
func (s *Study) Campaign(ctx context.Context, app *target.App, scenario string,
	scheme encoding.Scheme, opts Options) (*inject.Stats, error) {
	sc, ok := app.Scenario(scenario)
	if !ok {
		return nil, fmt.Errorf("core: app %s has no scenario %q", app.Name, scenario)
	}
	return inject.Run(ctx, opts.config(app, sc, scheme))
}

// AllCampaigns runs the paper's six campaigns (FTP Client1..4, SSH
// Client1..2) under one encoding scheme, in Table 1 column order.
func (s *Study) AllCampaigns(ctx context.Context, scheme encoding.Scheme,
	opts Options) ([]*inject.Stats, error) {
	var out []*inject.Stats
	for _, app := range []*target.App{s.FTPD, s.SSHD} {
		for _, sc := range app.Scenarios {
			stats, err := inject.Run(ctx, opts.config(app, sc, scheme))
			if err != nil {
				return nil, err
			}
			out = append(out, stats)
		}
	}
	return out, nil
}

// Table1 runs the baseline campaigns and renders the paper's Table 1.
func (s *Study) Table1(ctx context.Context, opts Options) (string, []*inject.Stats, error) {
	stats, err := s.AllCampaigns(ctx, encoding.SchemeX86, opts)
	if err != nil {
		return "", nil, err
	}
	return report.Table1(stats), stats, nil
}

// Table3 renders the location breakdown for the given campaigns.
func (s *Study) Table3(stats []*inject.Stats) string { return report.Table3(stats) }

// Table5 runs the campaigns under the new encoding and renders the paper's
// Table 5 (with reduction rows computed against old).
func (s *Study) Table5(ctx context.Context, old []*inject.Stats, opts Options) (string, []*inject.Stats, error) {
	stats, err := s.AllCampaigns(ctx, encoding.SchemeParity, opts)
	if err != nil {
		return "", nil, err
	}
	return report.Table5(old, stats), stats, nil
}

// Figure4 runs the FTP Client1 campaign under the stock encoding and
// returns the crash-latency histogram.
func (s *Study) Figure4(ctx context.Context, opts Options) (*report.Histogram, error) {
	stats, err := s.Campaign(ctx, s.FTPD, "Client1", encoding.SchemeX86, opts)
	if err != nil {
		return nil, err
	}
	return report.NewHistogram(stats.CrashLatencies), nil
}

// CampaignModel runs one selective-exhaustive campaign under an explicit
// fault model (internal/faultmodel registry name; "" or "bitflip" is the
// paper's single-bit model). It drives the campaign engine directly, since
// the fault model decides the experiment enumeration itself.
func (s *Study) CampaignModel(ctx context.Context, app *target.App, scenario string,
	scheme encoding.Scheme, model string, opts Options) (*inject.Stats, error) {
	sc, ok := app.Scenario(scenario)
	if !ok {
		return nil, fmt.Errorf("core: app %s has no scenario %q", app.Name, scenario)
	}
	if _, err := faultmodel.Get(model); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cfg := campaign.FromInjectConfig(opts.config(app, sc, scheme))
	cfg.Model = model
	return campaign.New(cfg).Run(ctx)
}

// FaultModelMatrix runs one Client1 campaign per (fault model × target
// application) under the stock encoding and renders the per-(model ×
// target × location) BRK/SD/FSV matrix. models nil or empty means every
// registered model.
func (s *Study) FaultModelMatrix(ctx context.Context, models []string,
	opts Options) (string, []*inject.Stats, error) {
	if len(models) == 0 {
		models = faultmodel.Names()
	}
	var out []*inject.Stats
	for _, name := range models {
		for _, app := range s.matrixApps() {
			stats, err := s.CampaignModel(ctx, app, "Client1", encoding.SchemeX86, name, opts)
			if err != nil {
				return "", nil, err
			}
			out = append(out, stats)
		}
	}
	return report.ModelMatrix(out), out, nil
}

// SchemeMatrix runs one Client1 campaign per (hardening scheme × fault
// model × target application) and renders the scheme reduction matrix —
// per-campaign BRK/SD/FSV rates plus each rate's reduction against the
// x86 baseline of the same (model, target). schemes nil or empty means
// every registered scheme; models nil or empty means every registered
// fault model. Compile-time schemes (dupcmp, encbranch) rebuild the
// target through its Rebuild hook; the hardened image is compiled once
// and shared across that scheme's campaigns.
func (s *Study) SchemeMatrix(ctx context.Context, schemes, models []string,
	opts Options) (string, []*inject.Stats, error) {
	if len(schemes) == 0 {
		schemes = encoding.Names()
	}
	if len(models) == 0 {
		models = faultmodel.Names()
	}
	var out []*inject.Stats
	for _, sn := range schemes {
		scheme, err := encoding.Parse(sn)
		if err != nil {
			return "", nil, fmt.Errorf("core: %w", err)
		}
		for _, mn := range models {
			for _, app := range s.matrixApps() {
				stats, err := s.CampaignModel(ctx, app, "Client1", scheme, mn, opts)
				if err != nil {
					return "", nil, err
				}
				out = append(out, stats)
			}
		}
	}
	return report.SchemeMatrix(out), out, nil
}

// RandomTestbed runs the paper's §7 random-injection experiment: n random
// single-bit errors over the whole ftpd text segment under Client1 attack
// load. The paper reports roughly 1 security violation per 3,000 errors.
func (s *Study) RandomTestbed(ctx context.Context, n int, seed int64,
	opts Options) (*inject.Stats, error) {
	sc, _ := s.FTPD.Scenario("Client1")
	return inject.RunRandom(ctx, inject.RandomConfig{
		App:         s.FTPD,
		Scenario:    sc,
		Scheme:      encoding.SchemeX86,
		N:           n,
		Seed:        seed,
		Fuel:        opts.Fuel,
		Parallelism: opts.Parallelism,
		KeepResults: opts.KeepResults,
	})
}

// PersistentWindowResult demonstrates the paper's permanent window of
// vulnerability (§5.4): a single-bit error in resident text stays in
// memory, so every subsequent connection is compromised until the page is
// reloaded.
type PersistentWindowResult struct {
	// Experiment is the BRK-producing corruption used.
	Experiment inject.Experiment
	// GrantedPerConnection records the unauthorized client's access result
	// for each consecutive connection against the corrupted server.
	GrantedPerConnection []bool
	// GrantedAfterReload is the access result after the text page is
	// restored (must be false: reload closes the window).
	GrantedAfterReload bool
}

// PersistentWindow finds a break-in-producing corruption for the app's
// Client1 pattern, applies it to the resident text image, and measures n
// consecutive attack connections, then one more after "reloading" the
// page.
func (s *Study) PersistentWindow(ctx context.Context, app *target.App, n int,
	opts Options) (*PersistentWindowResult, error) {
	sc, ok := app.Scenario("Client1")
	if !ok {
		return nil, fmt.Errorf("core: app %s has no Client1", app.Name)
	}
	cfg := opts.config(app, sc, encoding.SchemeX86)
	cfg.KeepResults = true
	stats, err := inject.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	for _, r := range stats.Results {
		if r.Outcome != classify.OutcomeBRK {
			continue
		}
		res, ok, perr := s.tryPersistent(app, sc, r.Experiment, n)
		if perr != nil {
			return nil, perr
		}
		if ok {
			return res, nil
		}
	}
	return nil, errors.New("core: no statically-reproducible break-in found")
}

// tryPersistent applies the corruption statically (resident corrupted
// page) and checks that the break-in reproduces on every connection.
func (s *Study) tryPersistent(app *target.App, sc target.Scenario,
	ex inject.Experiment, n int) (*PersistentWindowResult, bool, error) {
	corrupted := make([]byte, len(app.Image.Text))
	copy(corrupted, app.Image.Text)
	off := ex.Target.Addr - app.Image.TextBase
	copy(corrupted[off:], ex.CorruptedBytes())

	res := &PersistentWindowResult{Experiment: ex}
	for i := 0; i < n; i++ {
		granted, err := runConnection(app, sc, corrupted)
		if err != nil {
			return nil, false, err
		}
		if !granted {
			return nil, false, nil // not a stable permanent hole; try another
		}
		res.GrantedPerConnection = append(res.GrantedPerConnection, granted)
	}
	granted, err := runConnection(app, sc, nil) // pristine text: page reloaded
	if err != nil {
		return nil, false, err
	}
	res.GrantedAfterReload = granted
	return res, !granted, nil
}

// runConnection runs one client session against the given text bytes
// (nil = pristine) and reports whether access was granted.
func runConnection(app *target.App, sc target.Scenario, text []byte) (bool, error) {
	client := sc.New()
	k := kernel.New(client)
	ld, err := app.Image.Load(k, text)
	if err != nil {
		return false, err
	}
	runErr := ld.Machine.Run()
	var exit *vm.ExitStatus
	var fault *vm.Fault
	var hang *kernel.HangError
	var fuel *vm.OutOfFuel
	var flood *kernel.FloodError
	switch {
	case errors.As(runErr, &exit), errors.As(runErr, &fault),
		errors.As(runErr, &hang), errors.As(runErr, &fuel),
		errors.As(runErr, &flood):
		return client.Granted(), nil
	}
	return false, fmt.Errorf("core: connection ended unexpectedly: %w", runErr)
}

// LoadImpactResult quantifies the paper's §5.4 observation that heavier,
// more diversified load raises the probability that a latent error
// manifests: a latent error stays in the resident text across forked
// connections, and each distinct client access pattern exercises different
// code.
type LoadImpactResult struct {
	// MixSizes[k] is the number of distinct client patterns in mix k.
	MixSizes []int
	// ActivatedProb[k] is the probability a latent branch error is
	// exercised by at least one client in mix k.
	ActivatedProb []float64
	// ManifestProb[k] is the probability it visibly manifests (crash,
	// FSV, or break-in) under mix k.
	ManifestProb []float64
	// Errors is the latent-error population size.
	Errors int
}

// LoadImpact computes activation/manifestation probability as a function
// of workload diversity by reusing full per-scenario campaign results.
func (s *Study) LoadImpact(ctx context.Context, app *target.App, opts Options) (*LoadImpactResult, error) {
	perScenario := make([][]inject.Result, 0, len(app.Scenarios))
	var nRuns int
	for _, sc := range app.Scenarios {
		cfg := opts.config(app, sc, encoding.SchemeX86)
		cfg.KeepResults = true
		stats, err := inject.Run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		perScenario = append(perScenario, stats.Results)
		nRuns = len(stats.Results)
	}
	res := &LoadImpactResult{Errors: nRuns}
	for k := 1; k <= len(perScenario); k++ {
		activated, manifested := 0, 0
		for i := 0; i < nRuns; i++ {
			act, man := false, false
			for j := 0; j < k; j++ {
				r := perScenario[j][i]
				if r.Activated {
					act = true
				}
				switch r.Outcome {
				case classify.OutcomeSD, classify.OutcomeFSV, classify.OutcomeBRK:
					man = true
				}
			}
			if act {
				activated++
			}
			if man {
				manifested++
			}
		}
		res.MixSizes = append(res.MixSizes, k)
		res.ActivatedProb = append(res.ActivatedProb, float64(activated)/float64(nRuns))
		res.ManifestProb = append(res.ManifestProb, float64(manifested)/float64(nRuns))
	}
	return res, nil
}

// WatchdogResult compares one campaign run with and without the
// control-flow watchdog (a software signature checker in the style of the
// related work the paper surveys: BSSC, ECCA, PECOS).
type WatchdogResult struct {
	// Baseline is the plain campaign.
	Baseline *inject.Stats
	// Watched is the same campaign with the watchdog enabled.
	Watched *inject.Stats
}

// DetectionRate returns the share of activated errors the watchdog caught.
func (w *WatchdogResult) DetectionRate() float64 {
	a := w.Watched.Activated()
	if a == 0 {
		return 0
	}
	return float64(w.Watched.WatchdogDetections) / float64(a)
}

// WatchdogAblation runs the attack campaign with and without the
// control-flow watchdog. The expected (and paper-motivating) outcome:
// the watchdog converts wild jumps and instruction-stream
// desynchronization into fast detections, but it cannot catch a valid
// conditional branch taken in the wrong direction — the break-ins that
// matter survive it, which is why the paper proposes an encoding fix
// instead.
func (s *Study) WatchdogAblation(ctx context.Context, app *target.App,
	opts Options) (*WatchdogResult, error) {
	sc, ok := app.Scenario("Client1")
	if !ok {
		return nil, fmt.Errorf("core: app %s has no Client1", app.Name)
	}
	baseline, err := inject.Run(ctx, opts.config(app, sc, encoding.SchemeX86))
	if err != nil {
		return nil, err
	}
	watchedCfg := opts.config(app, sc, encoding.SchemeX86)
	watchedCfg.Watchdog = true
	watched, err := inject.Run(ctx, watchedCfg)
	if err != nil {
		return nil, err
	}
	return &WatchdogResult{Baseline: baseline, Watched: watched}, nil
}

// CampaignScenario runs a campaign for an explicit scenario that need not
// be one of the app's built-in access patterns (e.g. the privilege
// escalation pattern from ftpd.EscalationScenario).
func (s *Study) CampaignScenario(ctx context.Context, app *target.App,
	sc target.Scenario, scheme encoding.Scheme, opts Options) (*inject.Stats, error) {
	return inject.Run(ctx, opts.config(app, sc, scheme))
}

// RandomTestbedScheme is RandomTestbed with an explicit encoding scheme —
// used to measure how the parity re-encoding changes the §7 field rate
// ("1 in N random errors breaks in").
func (s *Study) RandomTestbedScheme(ctx context.Context, n int, seed int64,
	scheme encoding.Scheme, opts Options) (*inject.Stats, error) {
	sc, _ := s.FTPD.Scenario("Client1")
	return inject.RunRandom(ctx, inject.RandomConfig{
		App:         s.FTPD,
		Scenario:    sc,
		Scheme:      scheme,
		N:           n,
		Seed:        seed,
		Fuel:        opts.Fuel,
		Parallelism: opts.Parallelism,
		KeepResults: opts.KeepResults,
	})
}
