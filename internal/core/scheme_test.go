package core_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"faultsec/internal/core"
	"faultsec/internal/encoding"
	"faultsec/internal/faultmodel"
	"faultsec/internal/inject"
	"faultsec/internal/target"
)

// TestSchemeMatrixDifferentialPin pins the matrix's x86 and parity bitflip
// rows to the pre-registry Study output: the Stats behind each row must be
// deep-equal to what Study.Campaign (the snapshot engine, the path the
// original reproduction used) and inject.RunExperimentsNaive (the
// from-scratch reference executor) produce for the same campaign. Combined
// with the journal wire-compat fixtures, this is the guarantee that the
// scheme registry changed no x86/parity number anywhere.
func TestSchemeMatrixDifferentialPin(t *testing.T) {
	if testing.Short() {
		t.Skip("four full campaigns plus naive baselines in -short mode")
	}
	s := study(t)
	ctx := context.Background()

	matrix, stats, err := s.SchemeMatrix(ctx,
		[]string{"x86", "parity"}, []string{"bitflip"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 6 {
		t.Fatalf("matrix stats = %d campaigns, want 6 (2 schemes x bitflip x 3 targets)", len(stats))
	}
	rows := []struct {
		scheme encoding.Scheme
		app    *target.App
	}{
		{encoding.SchemeX86, s.FTPD},
		{encoding.SchemeX86, s.SSHD},
		{encoding.SchemeX86, s.HTTPD},
		{encoding.SchemeParity, s.FTPD},
		{encoding.SchemeParity, s.SSHD},
		{encoding.SchemeParity, s.HTTPD},
	}
	for i, row := range rows {
		name := encoding.SchemeName(row.scheme) + "/" + row.app.Name
		// Snapshot path: the Study entry point that predates the registry.
		want, err := s.Campaign(ctx, row.app, "Client1", row.scheme, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, stats[i]) {
			t.Errorf("%s: matrix row differs from Study.Campaign (snapshot path)", name)
		}
		// Naive path: every experiment re-executed from _start.
		sc, _ := row.app.Scenario("Client1")
		targets, err := inject.Targets(row.app)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := inject.RunExperimentsNaive(ctx,
			inject.Config{App: row.app, Scenario: sc, Scheme: row.scheme},
			inject.Enumerate(targets, row.scheme))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(naive, stats[i]) {
			t.Errorf("%s: matrix row differs from naive baseline", name)
		}
	}
	for _, want := range []string{"x86", "parity", "FTP Client1", "SSH Client1", "BRK red"} {
		if !strings.Contains(matrix, want) {
			t.Errorf("rendered matrix missing %q:\n%s", want, matrix)
		}
	}
}

// TestSchemeMatrixCoverage runs the full reduction matrix — every
// registered scheme crossed with every registered fault model over FTP,
// SSH, and HTTP Client1 — and checks the grid is complete: >= 4 schemes,
// all fault models, all three targets, one rendered row per campaign, and
// reduction columns populated for every hardened row that has an x86
// baseline.
func TestSchemeMatrixCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("full scheme x model grid in -short mode")
	}
	s := study(t)
	ctx := context.Background()

	matrix, stats, err := s.SchemeMatrix(ctx, nil, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	schemes, models := encoding.Names(), faultmodel.Names()
	if len(schemes) < 4 {
		t.Fatalf("registered schemes = %v, want >= 4", schemes)
	}
	if want := len(schemes) * len(models) * 3; len(stats) != want {
		t.Fatalf("matrix stats = %d campaigns, want %d (%d schemes x %d models x 3 targets)",
			len(stats), want, len(schemes), len(models))
	}
	seen := make(map[string]bool, len(stats))
	for _, st := range stats {
		if st.Total == 0 {
			t.Errorf("empty campaign in matrix: %s/%s scheme=%s model=%s",
				st.App, st.Scenario, encoding.SchemeName(st.Scheme), st.Model)
		}
		seen[encoding.SchemeName(st.Scheme)+"|"+st.Model+"|"+st.App] = true
	}
	for _, sn := range schemes {
		for _, mn := range models {
			for _, app := range []string{"ftpd", "sshd", "httpd"} {
				if !seen[sn+"|"+mn+"|"+app] {
					t.Errorf("matrix missing cell scheme=%s model=%s app=%s", sn, mn, app)
				}
			}
		}
	}
	// One header line plus one row per campaign.
	if lines := strings.Count(strings.TrimRight(matrix, "\n"), "\n") + 1; lines != len(stats)+1 {
		t.Errorf("rendered matrix has %d lines, want %d", lines, len(stats)+1)
	}
	// Hardened rows carry concrete reduction values against their x86
	// baseline rows (every model has an x86 baseline in the full grid, so
	// percentage cells must appear outside the rate columns' parentheses).
	var reductions int
	for _, line := range strings.Split(matrix, "\n") {
		if line == "" || strings.HasPrefix(line, "Scheme") || strings.HasPrefix(line, "x86") {
			continue
		}
		// Rate cells render as "n (p%)"; reduction cells as a bare "p%".
		for _, f := range strings.Fields(line) {
			if strings.HasSuffix(f, "%") && !strings.HasSuffix(f, "%)") {
				reductions++
			}
		}
	}
	if reductions == 0 {
		t.Errorf("no reduction percentages in rendered matrix:\n%s", matrix)
	}
}
