package core_test

import (
	"context"
	"testing"

	"faultsec/internal/classify"
	"faultsec/internal/core"
	"faultsec/internal/encoding"
	"faultsec/internal/ftpd"
	"faultsec/internal/x86"
)

// sharedStudy caches the built apps across tests in this package.
var sharedStudy *core.Study

func study(t *testing.T) *core.Study {
	t.Helper()
	if sharedStudy == nil {
		s, err := core.NewStudy()
		if err != nil {
			t.Fatal(err)
		}
		sharedStudy = s
	}
	return sharedStudy
}

func TestNewStudyBuildsAllApps(t *testing.T) {
	s := study(t)
	if s.FTPD == nil || s.SSHD == nil || s.HTTPD == nil {
		t.Fatal("missing app")
	}
	if len(s.FTPD.Scenarios) != 4 {
		t.Errorf("ftpd scenarios = %d, want 4", len(s.FTPD.Scenarios))
	}
	if len(s.SSHD.Scenarios) != 2 {
		t.Errorf("sshd scenarios = %d, want 2", len(s.SSHD.Scenarios))
	}
	if len(s.HTTPD.Scenarios) != 4 {
		t.Errorf("httpd scenarios = %d, want 4", len(s.HTTPD.Scenarios))
	}
}

func TestCampaignUnknownScenario(t *testing.T) {
	s := study(t)
	if _, err := s.Campaign(context.Background(), s.FTPD, "Client9",
		encoding.SchemeX86, core.Options{}); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestAttackCampaignShape verifies the paper's qualitative results on the
// attack scenarios: break-ins exist under the stock encoding, sshd's
// break-in rate exceeds ftpd's, crashes dominate manifested outcomes, and
// percentages lie in plausible bands.
func TestAttackCampaignShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	s := study(t)
	ctx := context.Background()

	ftp, err := s.Campaign(ctx, s.FTPD, "Client1", encoding.SchemeX86, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ssh, err := s.Campaign(ctx, s.SSHD, "Client1", encoding.SchemeX86, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, st := range []*struct {
		name  string
		stats interface {
			PctOfActivated(classify.Outcome) float64
			Activated() int
		}
	}{{"ftpd", ftp}, {"sshd", ssh}} {
		sd := st.stats.PctOfActivated(classify.OutcomeSD)
		nm := st.stats.PctOfActivated(classify.OutcomeNM)
		if sd < 35 || sd > 75 {
			t.Errorf("%s SD%% = %.1f, outside the plausible band", st.name, sd)
		}
		if nm < 15 || nm > 55 {
			t.Errorf("%s NM%% = %.1f, outside the plausible band", st.name, nm)
		}
	}
	if ftp.Counts[classify.OutcomeBRK] == 0 {
		t.Error("no ftpd break-ins under stock encoding")
	}
	if ssh.Counts[classify.OutcomeBRK] == 0 {
		t.Error("no sshd break-ins under stock encoding")
	}
	if ssh.PctOfActivated(classify.OutcomeBRK) <= ftp.PctOfActivated(classify.OutcomeBRK) {
		t.Errorf("sshd BRK rate (%.2f%%) should exceed ftpd's (%.2f%%) — multiple entry points",
			ssh.PctOfActivated(classify.OutcomeBRK), ftp.PctOfActivated(classify.OutcomeBRK))
	}
	// Non-attack scenarios must never report BRK (their clients hold valid
	// credentials or are judged against ShouldGrant=true).
	ftp2, err := s.Campaign(ctx, s.FTPD, "Client2", encoding.SchemeX86, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ftp2.Counts[classify.OutcomeBRK] != 0 {
		t.Errorf("Client2 reported %d BRK", ftp2.Counts[classify.OutcomeBRK])
	}
}

// TestParityEncodingReducesBreakIns verifies the headline Table 5 claim.
func TestParityEncodingReducesBreakIns(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	s := study(t)
	ctx := context.Background()
	for _, app := range []*struct {
		name string
	}{{"ftpd"}, {"sshd"}} {
		a := s.FTPD
		if app.name == "sshd" {
			a = s.SSHD
		}
		old, err := s.Campaign(ctx, a, "Client1", encoding.SchemeX86, core.Options{KeepResults: true})
		if err != nil {
			t.Fatal(err)
		}
		new_, err := s.Campaign(ctx, a, "Client1", encoding.SchemeParity, core.Options{KeepResults: true})
		if err != nil {
			t.Fatal(err)
		}
		ob, nb := old.Counts[classify.OutcomeBRK], new_.Counts[classify.OutcomeBRK]
		if nb >= ob {
			t.Errorf("%s: BRK %d -> %d, no reduction", app.name, ob, nb)
		}
		// The scheme's guarantee: no surviving break-in executes a
		// *different conditional branch* — under parity, a corrupted jcc
		// opcode can never decode as another jcc. (Break-ins via benign
		// fall-through opcodes — e.g. je -> 0x65 prefix + pop — remain
		// possible on real hardware too; see EXPERIMENTS.md.)
		for _, r := range new_.Results {
			if r.Outcome != classify.OutcomeBRK || r.Location != classify.Loc2BC {
				continue
			}
			corrupted := r.Experiment.CorruptedBytes()
			if x86.IsJcc8Opcode(corrupted[0]) && corrupted[0] != r.Experiment.Target.Raw[0] {
				t.Errorf("%s: parity let jcc %#02x become jcc %#02x",
					app.name, r.Experiment.Target.Raw[0], corrupted[0])
			}
		}
		of, nf := old.Counts[classify.OutcomeFSV], new_.Counts[classify.OutcomeFSV]
		if nf >= of {
			t.Errorf("%s: FSV %d -> %d, no reduction", app.name, of, nf)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	s := study(t)
	h, err := s.Figure4(context.Background(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Total < 100 {
		t.Fatalf("too few crashes: %d", h.Total)
	}
	if pct := h.PctWithin100(); pct < 60 || pct > 98 {
		t.Errorf("within-100 = %.1f%%, want a dominant head (paper: 91.5%%)", pct)
	}
	if h.Max < 10_000 {
		t.Errorf("max latency %d, want a tail beyond 10k instructions (paper: >16k)", h.Max)
	}
}

func TestPersistentWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	s := study(t)
	res, err := s.PersistentWindow(context.Background(), s.FTPD, 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GrantedPerConnection) != 4 {
		t.Fatalf("connections = %d", len(res.GrantedPerConnection))
	}
	for i, g := range res.GrantedPerConnection {
		if !g {
			t.Errorf("connection %d not granted — window is not permanent", i+1)
		}
	}
	if res.GrantedAfterReload {
		t.Error("window still open after page reload")
	}
}

func TestLoadImpactMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	s := study(t)
	res, err := s.LoadImpact(context.Background(), s.FTPD, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MixSizes) != 4 {
		t.Fatalf("mixes = %d", len(res.MixSizes))
	}
	for i := 1; i < len(res.ActivatedProb); i++ {
		if res.ActivatedProb[i] < res.ActivatedProb[i-1] {
			t.Errorf("activation probability not monotone: %v", res.ActivatedProb)
		}
		if res.ManifestProb[i] < res.ManifestProb[i-1] {
			t.Errorf("manifestation probability not monotone: %v", res.ManifestProb)
		}
	}
	if res.ActivatedProb[3] <= res.ActivatedProb[0] {
		t.Errorf("diversified load should raise activation: %v", res.ActivatedProb)
	}
}

func TestRandomTestbedSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("random campaign in -short mode")
	}
	s := study(t)
	stats, err := s.RandomTestbed(context.Background(), 300, 2001, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != 300 {
		t.Errorf("total = %d", stats.Total)
	}
	// With only 300 samples BRK may be zero; just require sane categories.
	sum := 0
	for _, o := range classify.Outcomes() {
		sum += stats.Counts[o]
	}
	if sum != 300 {
		t.Errorf("outcome counts sum to %d", sum)
	}
}

// TestWatchdogAblation verifies the related-work comparison: the
// control-flow watchdog detects a substantial share of activated errors
// (wild jumps, desynchronized streams) yet break-ins caused by a valid
// branch taken in the wrong direction sail through it.
func TestWatchdogAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	s := study(t)
	res, err := s.WatchdogAblation(context.Background(), s.FTPD, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Watched.WatchdogDetections == 0 {
		t.Error("watchdog detected nothing")
	}
	if rate := res.DetectionRate(); rate < 0.10 {
		t.Errorf("watchdog detection rate %.2f, implausibly low", rate)
	}
	baseBRK := res.Baseline.Counts[classify.OutcomeBRK]
	watchedBRK := res.Watched.Counts[classify.OutcomeBRK]
	if watchedBRK == 0 {
		t.Errorf("watchdog eliminated all %d break-ins — it should not catch valid-but-wrong branches", baseBRK)
	}
	if watchedBRK > baseBRK {
		t.Errorf("watchdog added break-ins: %d -> %d", baseBRK, watchedBRK)
	}
	t.Logf("watchdog: detected %d/%d activated (%.0f%%), break-ins %d -> %d",
		res.Watched.WatchdogDetections, res.Watched.Activated(),
		100*res.DetectionRate(), baseBRK, watchedBRK)
}

// TestTransientWindowNetworkActivity verifies the §5.4 observation that
// some crashed runs talk to the network inside the window between error
// activation and the crash.
func TestTransientWindowNetworkActivity(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	s := study(t)
	stats, err := s.Campaign(context.Background(), s.FTPD, "Client1",
		encoding.SchemeX86, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := stats.Window
	if w.Crashes == 0 {
		t.Fatal("no crashes")
	}
	if w.WroteInWindow == 0 {
		t.Error("no crashed run wrote to the network inside its window")
	}
	if w.LongLatency == 0 {
		t.Error("no long-latency crashes")
	}
	t.Logf("transient window: %d crashes, %d long (>100 insns), %d wrote in window, %d long+wrote",
		w.Crashes, w.LongLatency, w.WroteInWindow, w.LongAndWrote)
}

// TestEscalationCampaign runs the future-work attack pattern: single-bit
// errors in the auth section can also escalate a legitimate guest to
// forbidden resources (a different attack than wrong-password login).
func TestEscalationCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	s := study(t)
	stats, err := s.CampaignScenario(context.Background(), s.FTPD,
		ftpd.EscalationScenario(), encoding.SchemeX86, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The retr() permission check lives outside the injected functions, so
	// escalations via user()/pass() corruption (is_guest cleared, wrong
	// account selected) are possible but rarer than login break-ins.
	t.Logf("escalation campaign: BRK=%d of %d activated",
		stats.Counts[classify.OutcomeBRK], stats.Activated())
	sum := 0
	for _, o := range classify.Outcomes() {
		sum += stats.Counts[o]
	}
	if sum != stats.Total {
		t.Errorf("outcome counts sum to %d of %d", sum, stats.Total)
	}
}
