package core_test

import (
	"context"
	"reflect"
	"testing"

	"faultsec/internal/classify"
	"faultsec/internal/core"
	"faultsec/internal/encoding"
	"faultsec/internal/inject"
)

// TestSchemeMatrixSmallGrid runs the qualitative small grid — every
// registered scheme under bitflip and instskip — and pins the
// countermeasure story the matrix exists to tell:
//
//   - under bitflip, every hardening scheme lowers the break-in rate on
//     both targets (the cc schemes via traps, parity via re-encoding);
//   - under instskip, the branch countermeasures of arXiv 1803.08359
//     eliminate break-ins outright (a skipped branch lands in the
//     duplicated check) and convert the damage into detections, while the
//     parity re-encoding is a no-op — its campaigns are identical to x86,
//     the blind spot that motivates compile-time schemes.
//
// This is also the CI scheme-matrix grid run under -race.
func TestSchemeMatrixSmallGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("sixteen campaigns in -short mode")
	}
	s := study(t)
	ctx := context.Background()

	_, stats, err := s.SchemeMatrix(ctx, nil, []string{"bitflip", "instskip"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	byCell := make(map[string]*inject.Stats, len(stats))
	for _, st := range stats {
		byCell[encoding.SchemeName(st.Scheme)+"|"+st.Model+"|"+st.App] = st
	}
	cell := func(scheme, model, app string) *inject.Stats {
		t.Helper()
		st := byCell[scheme+"|"+model+"|"+app]
		if st == nil {
			t.Fatalf("matrix missing cell %s/%s/%s", scheme, model, app)
		}
		return st
	}
	brkRate := func(st *inject.Stats) float64 {
		return float64(st.Counts[classify.OutcomeBRK]) / float64(st.Total)
	}

	for _, app := range []string{"ftpd", "sshd"} {
		baseline := cell("x86", "bitflip", app)
		if baseline.Counts[classify.OutcomeBRK] == 0 {
			t.Fatalf("%s: x86 bitflip baseline has no break-ins — nothing to reduce", app)
		}
		for _, scheme := range []string{"parity", "dupcmp", "encbranch"} {
			if got, base := brkRate(cell(scheme, "bitflip", app)), brkRate(baseline); got >= base {
				t.Errorf("%s: %s bitflip BRK rate %.4f did not improve on x86's %.4f",
					app, scheme, got, base)
			}
		}

		skipBase := cell("x86", "instskip", app)
		for _, scheme := range []string{"dupcmp", "encbranch"} {
			st := cell(scheme, "instskip", app)
			if n := st.Counts[classify.OutcomeBRK]; n != 0 {
				t.Errorf("%s: %s under instskip still breaks in %d times — "+
					"the duplicated check should catch every skipped branch", app, scheme, n)
			}
			if st.Counts[classify.OutcomeSD] <= skipBase.Counts[classify.OutcomeSD] {
				t.Errorf("%s: %s under instskip detects no more than x86 — traps missing", app, scheme)
			}
		}
		// Parity only re-encodes how bit flips land; an instruction skip
		// never consults the encoding, so the campaigns must be identical.
		parity := cell("parity", "instskip", app)
		if !reflect.DeepEqual(parity.Counts, skipBase.Counts) ||
			!reflect.DeepEqual(parity.ByLocation, skipBase.ByLocation) {
			t.Errorf("%s: parity instskip campaign differs from x86 — parity should be a no-op for skips", app)
		}
	}
}
