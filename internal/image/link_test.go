package image_test

import (
	"strings"
	"testing"

	"faultsec/internal/asm"
	"faultsec/internal/image"
	"faultsec/internal/x86"
)

func mustAssemble(t *testing.T, src string) *asm.Object {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return obj
}

func TestLinkLayout(t *testing.T) {
	obj := mustAssemble(t, `
.text
.global _start
_start:
	mov eax, msg
	mov ebx, [counter]
	ret
.data
counter: .dd 1
.rodata
msg: .asciz "hello"
.bss
buf: .space 64
`)
	img, err := image.Link(obj)
	if err != nil {
		t.Fatal(err)
	}
	if img.TextBase != image.TextBase {
		t.Errorf("text base = %#x", img.TextBase)
	}
	if img.RODBase <= img.TextBase || img.RODBase%0x1000 != 0 {
		t.Errorf("rodata base = %#x", img.RODBase)
	}
	if img.DataBase <= img.RODBase || img.DataBase%0x1000 != 0 {
		t.Errorf("data base = %#x", img.DataBase)
	}
	if img.BSSBase < img.DataBase+uint32(len(img.Data)) {
		t.Errorf("bss base = %#x overlaps data", img.BSSBase)
	}
	if img.Entry != img.Symbols["_start"] {
		t.Errorf("entry = %#x, symbol = %#x", img.Entry, img.Symbols["_start"])
	}
	// Relocation for msg points into rodata; for counter into data.
	msgAddr := img.Symbols["msg"]
	if msgAddr < img.RODBase || msgAddr >= img.RODBase+uint32(len(img.ROData)) {
		t.Errorf("msg at %#x outside rodata", msgAddr)
	}
	// The mov eax, msg immediate must hold msg's address.
	imm := uint32(img.Text[1]) | uint32(img.Text[2])<<8 | uint32(img.Text[3])<<16 | uint32(img.Text[4])<<24
	if imm != msgAddr {
		t.Errorf("relocated immediate = %#x, want %#x", imm, msgAddr)
	}
}

func TestLinkErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "undefined_symbol",
			src:  ".text\n_start:\n\tmov eax, missing\n\tret\n.global _start\n",
			want: "undefined symbol",
		},
		{
			name: "no_entry",
			src:  ".text\nfoo:\n\tret\n",
			want: "undefined entry",
		},
		{
			name: "empty_text",
			src:  ".data\nx: .dd 1\n",
			want: "empty text",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			obj := mustAssemble(t, tt.src)
			_, err := image.Link(obj)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("Link error = %v, want substring %q", err, tt.want)
			}
		})
	}
}

func TestLoadIsolation(t *testing.T) {
	// Two loads of the same image must not share mutable state.
	obj := mustAssemble(t, `
.text
.global _start
_start:
	mov eax, [counter]
	ret
.data
counter: .dd 7
`)
	img, err := image.Link(obj)
	if err != nil {
		t.Fatal(err)
	}
	ld1, err := img.Load(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ld2, err := img.Load(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := img.Symbols["counter"]
	if f := ld1.Machine.Mem.Write32(addr, 99); f != nil {
		t.Fatal(f)
	}
	v, f := ld2.Machine.Mem.Read32(addr)
	if f != nil || v != 7 {
		t.Errorf("second load sees %d (fault %v), want 7", v, f)
	}
	// The pristine image must be untouched by text corruption of a load.
	if err := ld1.Machine.Mem.Poke(img.TextBase, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	if img.Text[0] == 0xCC {
		t.Error("poking a loaded machine corrupted the pristine image")
	}
}

func TestLoadTextOverride(t *testing.T) {
	obj := mustAssemble(t, `
.text
.global _start
_start:
	ret
`)
	img, err := image.Link(obj)
	if err != nil {
		t.Fatal(err)
	}
	override := make([]byte, len(img.Text))
	copy(override, img.Text)
	override[0] = 0x90 // nop instead of ret
	ld, err := img.Load(nil, override)
	if err != nil {
		t.Fatal(err)
	}
	v, errPeek := ld.Machine.Mem.Peek(img.TextBase, 1)
	if errPeek != nil || v[0] != 0x90 {
		t.Errorf("override not applied: %v %v", v, errPeek)
	}
	if _, err := img.Load(nil, []byte{1, 2, 3}); err == nil {
		t.Error("short override accepted")
	}
}

func TestLoadMemoryProtections(t *testing.T) {
	obj := mustAssemble(t, `
.text
.global _start
_start:
	ret
.data
x: .dd 5
`)
	img, err := image.Link(obj)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := img.Load(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mem := ld.Machine.Mem
	// Text is not writable by the program.
	if f := mem.Write8(img.TextBase, 0); f == nil {
		t.Error("text is writable")
	}
	// Data is not executable.
	if _, f := mem.Fetch(img.DataBase, 1); f == nil {
		t.Error("data is executable")
	}
	// Stack exists and is writable.
	if f := mem.Write32(ld.Machine.Regs[x86.ESP]-4, 42); f != nil {
		t.Errorf("stack not writable: %v", f)
	}
	// ESP leaves argv/env headroom below the stack top.
	if ld.Machine.Regs[x86.ESP] >= image.StackTop {
		t.Error("no headroom above initial ESP")
	}
}
