package image_test

import (
	"errors"
	"testing"

	"faultsec/internal/asm"
	"faultsec/internal/image"
	"faultsec/internal/kernel"
	"faultsec/internal/vm"
)

// scriptClient replies with canned lines and records what it saw.
type scriptClient struct {
	replies map[string][]string
	seen    []string
	done    bool
}

func (c *scriptClient) OnServerLine(line string) []string {
	c.seen = append(c.seen, line)
	if r, ok := c.replies[line]; ok {
		return r
	}
	return nil
}

func (c *scriptClient) Done() bool { return c.done }

const helloSrc = `
.text
.global _start
.func _start
_start:
	mov eax, 4        ; sys_write
	mov ebx, 1
	mov ecx, msg
	mov edx, msglen
	int 0x80
	mov eax, 1        ; sys_exit
	mov ebx, 42
	int 0x80
.endfunc
.data
msg: .ascii "220 hello srv\r\n"
msgend:
`

func buildAndRun(t *testing.T, src string, client kernel.Client) (*kernel.Kernel, error) {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	img, err := image.Link(obj)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	k := kernel.New(client)
	ld, err := img.Load(k, nil)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return k, ld.Machine.Run()
}

func TestHelloEndToEnd(t *testing.T) {
	src := helloSrc
	// msglen is not a numeric constant the assembler knows; compute inline.
	src = replaceAll(src, "msglen", "15")
	client := &scriptClient{}
	k, err := buildAndRun(t, src, client)

	var exit *vm.ExitStatus
	if !errors.As(err, &exit) {
		t.Fatalf("run ended with %v, want exit", err)
	}
	if exit.Code != 42 {
		t.Errorf("exit code = %d, want 42", exit.Code)
	}
	if len(client.seen) != 1 || client.seen[0] != "220 hello srv" {
		t.Errorf("client saw %q, want [220 hello srv]", client.seen)
	}
	lines := k.Transcript.ServerLines()
	if len(lines) != 1 || lines[0] != "220 hello srv" {
		t.Errorf("transcript = %q", lines)
	}
}

func TestEchoLoop(t *testing.T) {
	// Server reads one line and echoes it back prefixed with "OK ", then
	// exits. Exercises sys_read, the client state machine, and buffers.
	src := `
.text
.global _start
.func _start
_start:
	mov eax, 4
	mov ebx, 1
	mov ecx, greet
	mov edx, 7
	int 0x80
	; read up to 64 bytes
	mov eax, 3
	mov ebx, 0
	mov ecx, buf
	mov edx, 64
	int 0x80
	; write "OK " then the received bytes
	mov esi, eax      ; length read
	mov eax, 4
	mov ebx, 1
	mov ecx, okmsg
	mov edx, 3
	int 0x80
	mov eax, 4
	mov ebx, 1
	mov ecx, buf
	mov edx, esi
	int 0x80
	mov eax, 1
	mov ebx, 0
	int 0x80
.endfunc
.data
greet: .ascii "READY\r\n"
okmsg: .ascii "OK "
.bss
buf: .space 64
`
	client := &scriptClient{replies: map[string][]string{"READY": {"ping"}}}
	k, err := buildAndRun(t, src, client)
	var exit *vm.ExitStatus
	if !errors.As(err, &exit) {
		t.Fatalf("run ended with %v, want exit", err)
	}
	got := k.Transcript.ServerLines()
	want := []string{"READY", "OK ping"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("server lines = %q, want %q", got, want)
	}
}

func TestHangDetection(t *testing.T) {
	// Server reads without ever greeting: the client has nothing to say,
	// so the kernel must report a hang rather than block forever.
	src := `
.text
.global _start
.func _start
_start:
	mov eax, 3
	mov ebx, 0
	mov ecx, buf
	mov edx, 16
	int 0x80
	mov eax, 1
	mov ebx, 0
	int 0x80
.endfunc
.bss
buf: .space 16
`
	client := &scriptClient{}
	_, err := buildAndRun(t, src, client)
	var hang *kernel.HangError
	if !errors.As(err, &hang) {
		t.Fatalf("run ended with %v, want hang", err)
	}
}

func TestEOFAfterClientDone(t *testing.T) {
	src := `
.text
.global _start
.func _start
_start:
	mov eax, 3
	mov ebx, 0
	mov ecx, buf
	mov edx, 16
	int 0x80
	mov ebx, eax      ; exit status = bytes read (0 at EOF)
	mov eax, 1
	int 0x80
.endfunc
.bss
buf: .space 16
`
	client := &scriptClient{done: true}
	_, err := buildAndRun(t, src, client)
	var exit *vm.ExitStatus
	if !errors.As(err, &exit) {
		t.Fatalf("run ended with %v, want exit", err)
	}
	if exit.Code != 0 {
		t.Errorf("exit = %d, want 0 (EOF read)", exit.Code)
	}
}

func replaceAll(s, old, new string) string {
	for {
		i := index(s, old)
		if i < 0 {
			return s
		}
		s = s[:i] + new + s[i+len(old):]
	}
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
