// Package image links assembled objects into runnable program images and
// instantiates fresh virtual machines from them.
//
// The layout mirrors a classic Linux i386 ELF executable: text at
// 0x08048000 (read+execute), then rodata (read), data and bss
// (read+write), and a stack below 0xC0000000. Keeping text non-writable is
// essential to the study: only the injector (the "debugger") may corrupt
// it, via vm.Memory.Poke, and a corrupted page stays corrupted across
// connections until the image is reloaded — the paper's permanent window
// of vulnerability.
package image

import (
	"fmt"

	"faultsec/internal/asm"
	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

// Standard layout constants.
const (
	// TextBase is the load address of .text (the i386 ELF default).
	TextBase = 0x08048000
	// StackTop is one past the highest stack address.
	StackTop = 0xC0000000
	// StackSize is the stack region size.
	StackSize = 0x40000
	pageSize  = 0x1000
)

// Func is a named function extent in the linked text segment.
type Func struct {
	Name  string
	Start uint32 // virtual address of the first byte
	End   uint32 // one past the last byte
}

// Size returns the function length in bytes.
func (f Func) Size() uint32 { return f.End - f.Start }

// Image is a linked, loadable program.
type Image struct {
	Entry    uint32
	TextBase uint32
	Text     []byte // pristine text bytes (never mutated by runs)
	ROData   []byte
	RODBase  uint32
	Data     []byte
	DataBase uint32
	BSSSize  uint32
	BSSBase  uint32
	Symbols  map[string]uint32
	Funcs    []Func
}

func alignUp(v, a uint32) uint32 { return (v + a - 1) &^ (a - 1) }

// Link resolves an assembled object into an Image.
func Link(obj *asm.Object) (*Image, error) {
	get := func(name string) []byte {
		if s, ok := obj.Sections[name]; ok {
			return s.Bytes
		}
		return nil
	}
	img := &Image{
		TextBase: TextBase,
		Text:     append([]byte(nil), get("text")...),
		ROData:   append([]byte(nil), get("rodata")...),
		Data:     append([]byte(nil), get("data")...),
		BSSSize:  uint32(len(get("bss"))),
		Symbols:  make(map[string]uint32, len(obj.Symbols)),
	}
	if len(img.Text) == 0 {
		return nil, fmt.Errorf("image: empty text section")
	}
	img.RODBase = alignUp(img.TextBase+uint32(len(img.Text)), pageSize)
	img.DataBase = alignUp(img.RODBase+uint32(len(img.ROData)), pageSize)
	if len(img.ROData) == 0 {
		img.DataBase = img.RODBase
	}
	img.BSSBase = alignUp(img.DataBase+uint32(len(img.Data)), 16)

	base := func(section string) (uint32, error) {
		switch section {
		case "text":
			return img.TextBase, nil
		case "rodata":
			return img.RODBase, nil
		case "data":
			return img.DataBase, nil
		case "bss":
			return img.BSSBase, nil
		}
		return 0, fmt.Errorf("image: unknown section %q", section)
	}

	for name, sym := range obj.Symbols {
		b, err := base(sym.Section)
		if err != nil {
			return nil, fmt.Errorf("symbol %q: %w", name, err)
		}
		img.Symbols[name] = b + sym.Offset
	}
	for _, f := range obj.Funcs {
		img.Funcs = append(img.Funcs, Func{
			Name:  f.Name,
			Start: img.TextBase + f.Start,
			End:   img.TextBase + f.End,
		})
	}

	// Apply relocations.
	for secName, sec := range obj.Sections {
		var buf []byte
		switch secName {
		case "text":
			buf = img.Text
		case "rodata":
			buf = img.ROData
		case "data":
			buf = img.Data
		case "bss":
			if len(sec.Relocs) > 0 {
				return nil, fmt.Errorf("image: relocations in .bss")
			}
			continue
		default:
			return nil, fmt.Errorf("image: unknown section %q", secName)
		}
		for _, r := range sec.Relocs {
			addr, ok := img.Symbols[r.Symbol]
			if !ok {
				return nil, fmt.Errorf("image: undefined symbol %q", r.Symbol)
			}
			if r.Kind != asm.RelocAbs32 {
				return nil, fmt.Errorf("image: unknown relocation kind %d", r.Kind)
			}
			v := addr + uint32(r.Addend)
			if int(r.Offset)+4 > len(buf) {
				return nil, fmt.Errorf("image: relocation outside section %q", secName)
			}
			buf[r.Offset] = byte(v)
			buf[r.Offset+1] = byte(v >> 8)
			buf[r.Offset+2] = byte(v >> 16)
			buf[r.Offset+3] = byte(v >> 24)
		}
	}

	entry := obj.Entry
	if entry == "" {
		entry = "_start"
	}
	e, ok := img.Symbols[entry]
	if !ok {
		return nil, fmt.Errorf("image: undefined entry symbol %q", entry)
	}
	img.Entry = e
	return img, nil
}

// FuncByName returns the extent of a named function.
func (img *Image) FuncByName(name string) (Func, bool) {
	for _, f := range img.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return Func{}, false
}

// Loaded is a program instantiated into an address space.
type Loaded struct {
	Machine *vm.Machine
	// TextRegion is the mapped (mutable) copy of the text segment; the
	// injector corrupts these bytes, never the Image's pristine copy.
	TextRegion *vm.Region
}

// Load instantiates a fresh machine: new copies of every section, a zeroed
// bss, a fresh stack, registers cleared, EIP at the entry point. The text
// bytes may be overridden (corrupted) via the text argument; pass nil for
// the pristine image text.
func (img *Image) Load(sys vm.SyscallHandler, text []byte) (*Loaded, error) {
	if text == nil {
		text = img.Text
	}
	if len(text) != len(img.Text) {
		return nil, fmt.Errorf("image: text override length %d != %d", len(text), len(img.Text))
	}
	mem := vm.NewMemory()
	textRegion := &vm.Region{
		Name: "text",
		Base: img.TextBase,
		Perm: vm.PermRead | vm.PermExec,
		Data: append([]byte(nil), text...),
	}
	if err := mem.Map(textRegion); err != nil {
		return nil, err
	}
	if len(img.ROData) > 0 {
		if err := mem.Map(&vm.Region{
			Name: "rodata",
			Base: img.RODBase,
			Perm: vm.PermRead,
			Data: append([]byte(nil), img.ROData...),
		}); err != nil {
			return nil, err
		}
	}
	bssEnd := img.BSSBase + img.BSSSize
	blob := make([]byte, bssEnd-img.DataBase)
	copy(blob, img.Data)
	if len(blob) > 0 {
		if err := mem.Map(&vm.Region{
			Name: "data",
			Base: img.DataBase,
			Perm: vm.PermRead | vm.PermWrite,
			Data: blob,
		}); err != nil {
			return nil, err
		}
	}
	if err := mem.Map(&vm.Region{
		Name: "stack",
		Base: StackTop - StackSize,
		Perm: vm.PermRead | vm.PermWrite,
		Data: make([]byte, StackSize),
	}); err != nil {
		return nil, err
	}

	m := vm.New(mem, sys)
	m.EIP = img.Entry
	// Leave room above the initial stack pointer, as the argv/environment
	// area does on Linux (buffer overruns past the first frame land in
	// writable memory there, not instantly off the top of the stack).
	m.Regs[x86.ESP] = StackTop - 4096
	return &Loaded{Machine: m, TextRegion: textRegion}, nil
}
