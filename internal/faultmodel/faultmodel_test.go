package faultmodel_test

import (
	"math/bits"
	"reflect"
	"strings"
	"testing"

	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/faultmodel"
	"faultsec/internal/ftpd"
	"faultsec/internal/inject"
	"faultsec/internal/x86"
)

// builtins is the registry contract: the models this repository ships.
var builtins = []string{"bitflip", "byteflip", "cmpskip", "doublebit", "instskip", "regflip"}

func ftpTargets(t *testing.T) []inject.Target {
	t.Helper()
	app, err := ftpd.Build()
	if err != nil {
		t.Fatalf("build ftpd: %v", err)
	}
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	return targets
}

func TestRegistryResolution(t *testing.T) {
	if got := faultmodel.Names(); !reflect.DeepEqual(got, builtins) {
		t.Fatalf("Names() = %v, want %v (sorted)", got, builtins)
	}
	for _, name := range builtins {
		m, err := faultmodel.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, m.Name())
		}
	}
	// "" canonicalizes to the paper's model.
	m, err := faultmodel.Get("")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "bitflip" {
		t.Errorf(`Get("") resolved to %q, want bitflip`, m.Name())
	}
	if got := faultmodel.Canonical(""); got != "bitflip" {
		t.Errorf(`Canonical("") = %q`, got)
	}
	if got := faultmodel.Canonical("instskip"); got != "instskip" {
		t.Errorf(`Canonical("instskip") = %q`, got)
	}
	// Unknown names fail loudly and name the registered models.
	if _, err := faultmodel.Get("nosuch"); err == nil {
		t.Error(`Get("nosuch") succeeded`)
	} else if !strings.Contains(err.Error(), "bitflip") {
		t.Errorf("unknown-model error %q does not list registered models", err)
	}
}

// TestBitflipEnumerationIsPreFaultModelTree pins the wire-compatibility
// cornerstone: the bitflip model's enumeration is inject.Enumerate's,
// value for value — Model "" and a zero Mutation, exactly the Experiment
// values that existed before fault models did.
func TestBitflipEnumerationIsPreFaultModelTree(t *testing.T) {
	targets := ftpTargets(t)
	m, err := faultmodel.Get("bitflip")
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []encoding.Scheme{encoding.SchemeX86, encoding.SchemeParity} {
		got := faultmodel.Enumerate(targets, scheme, m)
		want := inject.Enumerate(targets, scheme)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scheme %v: faultmodel.Enumerate(bitflip) differs from inject.Enumerate", scheme)
		}
		for i, ex := range got {
			if ex.Model != "" || ex.ModelIdx != 0 || !reflect.DeepEqual(ex.Mut, inject.Mutation{}) {
				t.Fatalf("scheme %v exp %d: bitflip experiment carries model state: %+v", scheme, i, ex)
			}
		}
	}
	if got, want := faultmodel.Total(targets, m), inject.TotalBits(targets); got != want {
		t.Errorf("Total(bitflip) = %d, want TotalBits %d", got, want)
	}
}

// TestModelCountArithmetic pins each model's per-target experiment count
// against its definition, over the real FTP target set.
func TestModelCountArithmetic(t *testing.T) {
	targets := ftpTargets(t)
	jccs := 0
	for _, tg := range targets {
		if tg.Inst.Op == x86.OpJcc {
			jccs++
		}
	}
	if jccs == 0 {
		t.Fatal("FTP target set has no conditional branches; count checks would be vacuous")
	}
	for _, tc := range []struct {
		model string
		want  func(tg inject.Target) int
	}{
		{"bitflip", func(tg inject.Target) int { return tg.Bits() }},
		{"doublebit", func(tg inject.Target) int { return len(tg.Raw) * 28 }},
		{"byteflip", func(tg inject.Target) int { return len(tg.Raw) * 2 }},
		{"instskip", func(tg inject.Target) int { return 1 }},
		{"cmpskip", func(tg inject.Target) int {
			if tg.Inst.Op == x86.OpJcc {
				return 1
			}
			return 0
		}},
		{"regflip", func(tg inject.Target) int { return int(x86.NumRegs) * 32 }},
	} {
		m, err := faultmodel.Get(tc.model)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, tg := range targets {
			n := m.Count(tg)
			if want := tc.want(tg); n != want {
				t.Errorf("%s: Count(%s@%#x) = %d, want %d", tc.model, tg.Func, tg.Addr, n, want)
			}
			total += n
		}
		if got := faultmodel.Total(targets, m); got != total {
			t.Errorf("%s: Total = %d, want %d", tc.model, got, total)
		}
		if got := len(faultmodel.Enumerate(targets, encoding.SchemeX86, m)); got != total {
			t.Errorf("%s: len(Enumerate) = %d, want %d", tc.model, got, total)
		}
	}
}

// TestMutationsDeterministicAndPure is the registry's core contract:
// Mutation(t, i) is a pure function — two calls agree value for value —
// and never mutates or aliases the target's pristine bytes.
func TestMutationsDeterministicAndPure(t *testing.T) {
	targets := ftpTargets(t)
	for _, name := range faultmodel.Names() {
		m, err := faultmodel.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, tg := range targets {
			pristine := append([]byte(nil), tg.Raw...)
			for i := 0; i < m.Count(tg); i++ {
				a, b := m.Mutation(tg, i), m.Mutation(tg, i)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s: Mutation(%#x, %d) is not deterministic", name, tg.Addr, i)
				}
				if !reflect.DeepEqual(tg.Raw, pristine) {
					t.Fatalf("%s: Mutation(%#x, %d) mutated the target's Raw", name, tg.Addr, i)
				}
				if a.Kind == inject.MutBytes {
					if len(a.Bytes) != len(tg.Raw) {
						t.Fatalf("%s: Mutation(%#x, %d) replacement is %d bytes, want %d",
							name, tg.Addr, i, len(a.Bytes), len(tg.Raw))
					}
					if &a.Bytes[0] == &tg.Raw[0] {
						t.Fatalf("%s: Mutation(%#x, %d) aliases the target's Raw", name, tg.Addr, i)
					}
					if a.SpanStart < 0 || a.SpanStart >= a.SpanEnd || a.SpanEnd > len(tg.Raw) {
						t.Fatalf("%s: Mutation(%#x, %d) span [%d,%d) outside [0,%d)",
							name, tg.Addr, i, a.SpanStart, a.SpanEnd, len(tg.Raw))
					}
				}
			}
		}
	}
}

// TestDoublebitMasksDistinct: on an all-zero byte the 28 doublebit
// mutations read back as the applied masks — all distinct, all of
// Hamming weight exactly two (the class a distance-2 code cannot detect).
func TestDoublebitMasksDistinct(t *testing.T) {
	m, err := faultmodel.Get("doublebit")
	if err != nil {
		t.Fatal(err)
	}
	tg := inject.Target{Raw: []byte{0x00}}
	if n := m.Count(tg); n != 28 {
		t.Fatalf("Count(1-byte target) = %d, want 28", n)
	}
	seen := make(map[byte]bool)
	for i := 0; i < 28; i++ {
		mask := m.Mutation(tg, i).Bytes[0]
		if bits.OnesCount8(mask) != 2 {
			t.Errorf("mutation %d: mask %#02x has weight %d, want 2", i, mask, bits.OnesCount8(mask))
		}
		if seen[mask] {
			t.Errorf("mutation %d: duplicate mask %#02x", i, mask)
		}
		seen[mask] = true
	}
}

// TestCmpskipInvertsConditionByte pins which byte carries the condition
// code: byte 0 for a 2-byte jcc, byte 1 behind the 0x0F escape for the
// 6-byte form — and that only the condition's low bit changes (JE<->JNE).
func TestCmpskipInvertsConditionByte(t *testing.T) {
	m, err := faultmodel.Get("cmpskip")
	if err != nil {
		t.Fatal(err)
	}
	jcc8 := inject.Target{Raw: []byte{0x74, 0x06}, Inst: x86.Inst{Op: x86.OpJcc}}
	jcc32 := inject.Target{Raw: []byte{0x0F, 0x84, 1, 0, 0, 0}, Inst: x86.Inst{Op: x86.OpJcc}}
	jmp := inject.Target{Raw: []byte{0xEB, 0x06}, Inst: x86.Inst{Op: x86.OpJmp}}

	if n := m.Count(jmp); n != 0 {
		t.Errorf("Count(unconditional jmp) = %d, want 0", n)
	}
	mut := m.Mutation(jcc8, 0)
	if got := mut.Bytes; got[0] != 0x75 || got[1] != 0x06 {
		t.Errorf("2-byte jcc inversion = %#02x %#02x, want 0x75 0x06", got[0], got[1])
	}
	if mut.SpanStart != 0 || mut.SpanEnd != 1 {
		t.Errorf("2-byte jcc span = [%d,%d), want [0,1)", mut.SpanStart, mut.SpanEnd)
	}
	mut = m.Mutation(jcc32, 0)
	if got := mut.Bytes; got[0] != 0x0F || got[1] != 0x85 {
		t.Errorf("6-byte jcc inversion = %#02x %#02x, want 0x0F 0x85", got[0], got[1])
	}
	if mut.SpanStart != 1 || mut.SpanEnd != 2 {
		t.Errorf("6-byte jcc span = [%d,%d), want [1,2)", mut.SpanStart, mut.SpanEnd)
	}
}

// TestInstskipCoversWholeInstruction: the skip advances EIP by exactly
// the instruction length and is attributed to the whole encoding.
func TestInstskipCoversWholeInstruction(t *testing.T) {
	m, err := faultmodel.Get("instskip")
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range ftpTargets(t) {
		mut := m.Mutation(tg, 0)
		if mut.Kind != inject.MutSkip || mut.SkipLen != len(tg.Raw) {
			t.Fatalf("instskip at %#x: kind=%v skip=%d, want MutSkip over %d bytes",
				tg.Addr, mut.Kind, mut.SkipLen, len(tg.Raw))
		}
		if mut.SpanStart != 0 || mut.SpanEnd != len(tg.Raw) {
			t.Fatalf("instskip at %#x: span [%d,%d), want [0,%d)",
				tg.Addr, mut.SpanStart, mut.SpanEnd, len(tg.Raw))
		}
	}
}

// TestExperimentAttribution checks the Experiment methods every consumer
// (classifier, report, §5.4 demos) relies on, for each model's enumerated
// experiments: Location() matches the span/byte attribution rules,
// CorruptedBytes() is the executed encoding (pristine for transient
// faults, never aliased), and Mutation() round-trips.
func TestExperimentAttribution(t *testing.T) {
	targets := ftpTargets(t)
	for _, name := range faultmodel.Names() {
		m, err := faultmodel.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, ex := range faultmodel.Enumerate(targets, encoding.SchemeX86, m) {
			if got := ex.ModelName(); got != name {
				t.Fatalf("%s: ModelName() = %q", name, got)
			}
			mut := ex.Mutation()
			corrupted := ex.CorruptedBytes()
			switch mut.Kind {
			case inject.MutBytes:
				if !reflect.DeepEqual(corrupted, mut.Bytes) {
					t.Fatalf("%s@%#x: CorruptedBytes != Mutation().Bytes", name, ex.Target.Addr)
				}
				want := classify.LocationOfSpan(&ex.Target.Inst, ex.Target.Raw, mut.SpanStart, mut.SpanEnd)
				if name == "" || ex.Model == "" {
					want = classify.LocationOf(&ex.Target.Inst, ex.Target.Raw, ex.ByteIdx)
				}
				if got := ex.Location(); got != want {
					t.Fatalf("%s@%#x span [%d,%d): Location() = %v, want %v",
						name, ex.Target.Addr, mut.SpanStart, mut.SpanEnd, got, want)
				}
			case inject.MutSkip:
				if !reflect.DeepEqual(corrupted, ex.Target.Raw) {
					t.Fatalf("%s@%#x: transient skip reports corrupted bytes", name, ex.Target.Addr)
				}
				if &corrupted[0] == &ex.Target.Raw[0] {
					t.Fatalf("%s@%#x: CorruptedBytes aliases Target.Raw", name, ex.Target.Addr)
				}
			case inject.MutReg:
				if !reflect.DeepEqual(corrupted, ex.Target.Raw) {
					t.Fatalf("%s@%#x: register fault reports corrupted bytes", name, ex.Target.Addr)
				}
				if got := ex.Location(); got != classify.LocMISC {
					t.Fatalf("%s@%#x: register-fault Location() = %v, want MISC", name, ex.Target.Addr, got)
				}
			}
		}
	}
	// Bitflip's derived mutation is the paper's single-byte poke.
	exps := inject.Enumerate(targets[:1], encoding.SchemeX86)
	for _, ex := range exps {
		mut := ex.Mutation()
		if mut.Kind != inject.MutBytes || mut.SpanStart != ex.ByteIdx || mut.SpanEnd != ex.ByteIdx+1 {
			t.Fatalf("bitflip exp byte %d bit %d: mutation %+v", ex.ByteIdx, ex.Bit, mut)
		}
		if !reflect.DeepEqual(mut.Bytes, encoding.Corrupt(ex.Target.Raw, ex.ByteIdx, ex.Bit, ex.Scheme)) {
			t.Fatalf("bitflip exp byte %d bit %d: Bytes != encoding.Corrupt", ex.ByteIdx, ex.Bit)
		}
	}
}
