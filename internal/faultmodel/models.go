package faultmodel

import (
	"faultsec/internal/inject"
	"faultsec/internal/x86"
)

// The built-in models. All of them describe corruptions of the stock
// instruction encoding; the encoding-scheme emulation (paper §6.2) applies
// to the bitflip model's byte flips, where the scheme's re-encoding is the
// countermeasure under evaluation. Skip and register faults bypass the
// instruction bytes entirely, so no re-encoding can affect them — running
// them under the parity scheme measures exactly that.
func init() {
	Register(bitflip{})
	Register(doublebit{})
	Register(byteflip{})
	Register(instskip{})
	Register(cmpskip{})
	Register(regflip{})
}

// corrupted returns a copy of raw with mutate applied.
func corrupted(raw []byte, mutate func([]byte)) []byte {
	out := make([]byte, len(raw))
	copy(out, raw)
	mutate(out)
	return out
}

// bitflip is the paper's model: flip one bit of one instruction byte.
// Enumerate delegates to inject.Enumerate for it (the pre-fault-model
// experiment tree, byte for byte); the Mutation method below is the same
// corruption in registry form for direct callers.
type bitflip struct{}

func (bitflip) Name() string              { return "bitflip" }
func (bitflip) Count(t inject.Target) int { return t.Bits() }
func (bitflip) Mutation(t inject.Target, i int) Mutation {
	b, bit := i/8, i%8
	return Mutation{
		Kind:      inject.MutBytes,
		Bytes:     corrupted(t.Raw, func(out []byte) { out[b] ^= 1 << bit }),
		SpanStart: b,
		SpanEnd:   b + 1,
	}
}

// pairs28 maps a pair index 0..27 to the 2-bit combination (lo, hi),
// lo < hi, in lexicographic order: (0,1), (0,2), ..., (6,7).
var pairs28 = func() [28][2]int {
	var p [28][2]int
	i := 0
	for lo := 0; lo < 8; lo++ {
		for hi := lo + 1; hi < 8; hi++ {
			p[i] = [2]int{lo, hi}
			i++
		}
	}
	return p
}()

// doublebit flips all 2-bit combinations within one byte — the adjacent
// corruption class single-bit studies (and single-parity defenses) miss:
// a distance-2 code detects every 1-bit error but not 2-bit ones.
type doublebit struct{}

func (doublebit) Name() string              { return "doublebit" }
func (doublebit) Count(t inject.Target) int { return len(t.Raw) * len(pairs28) }
func (doublebit) Mutation(t inject.Target, i int) Mutation {
	b, pair := i/len(pairs28), i%len(pairs28)
	mask := byte(1<<pairs28[pair][0] | 1<<pairs28[pair][1])
	return Mutation{
		Kind:      inject.MutBytes,
		Bytes:     corrupted(t.Raw, func(out []byte) { out[b] ^= mask }),
		SpanStart: b,
		SpanEnd:   b + 1,
	}
}

// byteflip corrupts a whole byte at a time: variant 0 inverts it
// (XOR 0xFF), variant 1 zeroes it — the coarse corruption classes of
// real-world memory errors and botched writes.
type byteflip struct{}

func (byteflip) Name() string              { return "byteflip" }
func (byteflip) Count(t inject.Target) int { return len(t.Raw) * 2 }
func (byteflip) Mutation(t inject.Target, i int) Mutation {
	b, variant := i/2, i%2
	mutate := func(out []byte) { out[b] ^= 0xFF }
	if variant == 1 {
		mutate = func(out []byte) { out[b] = 0 }
	}
	return Mutation{
		Kind:      inject.MutBytes,
		Bytes:     corrupted(t.Raw, mutate),
		SpanStart: b,
		SpanEnd:   b + 1,
	}
}

// instskip skips the target instruction once: EIP advances past it
// without executing it — the standard instruction-skip fault-attack
// model. The skip is transient (the instruction bytes stay pristine), so
// only the breakpointed execution is lost.
type instskip struct{}

func (instskip) Name() string            { return "instskip" }
func (instskip) Count(inject.Target) int { return 1 }
func (instskip) Mutation(t inject.Target, i int) Mutation {
	return Mutation{
		Kind:      inject.MutSkip,
		SkipLen:   len(t.Raw),
		SpanStart: 0,
		SpanEnd:   len(t.Raw),
	}
}

// cmpskip inverts the outcome of a conditional branch: the Jcc condition
// code's low bit selects between a condition and its complement (JE/JNE,
// JL/JNL, ...), so flipping it turns every taken branch into a fall-
// through and vice versa — the test/compare-skip attack model. It applies
// to conditional branches only (Count is 0 elsewhere), and the inversion
// persists for the rest of the run, like the paper's byte corruptions.
type cmpskip struct{}

func (cmpskip) Name() string { return "cmpskip" }
func (cmpskip) Count(t inject.Target) int {
	if t.Inst.Op == x86.OpJcc {
		return 1
	}
	return 0
}
func (cmpskip) Mutation(t inject.Target, i int) Mutation {
	// 2-byte jcc inverts opcode byte 0; 0x0F-escaped 6-byte jcc inverts
	// opcode byte 1.
	b := 0
	if t.Raw[0] == x86.TwoByteEscape {
		b = 1
	}
	return Mutation{
		Kind:      inject.MutBytes,
		Bytes:     corrupted(t.Raw, func(out []byte) { out[b] ^= 1 }),
		SpanStart: b,
		SpanEnd:   b + 1,
	}
}

// regflip transiently corrupts architectural state instead of the
// instruction stream: at the breakpoint, one bit of one general-purpose
// register is flipped, then execution continues on pristine code. Index
// order: register-major (EAX..EDI in x86 numbering), bit-minor.
type regflip struct{}

func (regflip) Name() string            { return "regflip" }
func (regflip) Count(inject.Target) int { return int(x86.NumRegs) * 32 }
func (regflip) Mutation(t inject.Target, i int) Mutation {
	return Mutation{
		Kind:   inject.MutReg,
		Reg:    uint8(i / 32),
		RegXor: 1 << (i % 32),
	}
}
