// Package faultmodel generalizes the study's error model into a registry
// of pluggable fault models over the deterministic campaign tree. The
// paper hardwires one model — flip a single bit of one instruction — but
// crash/surface rates depend heavily on the model: instruction-skip and
// test/compare-skip are the standard fault-attack models (SoK, arXiv
// 2509.18341), and real-world mistakes motivate coarser corruptions than
// single bits (Barbosa et al., arXiv 1912.01948).
//
// A model is a deterministic, indexable enumeration of mutations per
// target instruction:
//
//   - Count(t) is a pure function of the target (no global state, no
//     randomness), so every process — engine, fleet worker, journal
//     resume — derives the same per-target experiment count.
//   - Mutation(t, i) is pure for 0 <= i < Count(t), so experiment index i
//     means the same injection everywhere, forever. The campaign-global
//     index space (the one journals and fleet shard specs key into) is
//     the concatenation of per-target index ranges in target-enumeration
//     (address) order.
//
// The "bitflip" model delegates to inject.Enumerate and therefore
// reproduces the pre-fault-model experiment tree byte for byte: existing
// journals (whose headers predate the model field) replay under it
// unchanged, and its campaign Stats are byte-identical to the original
// engine's.
package faultmodel

import (
	"fmt"
	"sort"
	"sync"

	"faultsec/internal/encoding"
	"faultsec/internal/inject"
)

// Mutation is what a model produces per experiment index: the injection
// action the campaign executor applies at the breakpoint. The concrete
// type lives in inject so the executor needs no import of this package.
type Mutation = inject.Mutation

// Model is one deterministic, indexable fault model.
type Model interface {
	// Name is the registry key ("bitflip", "instskip", ...), also the
	// wire name in journal headers, fleet shard specs, and campaignd
	// submit bodies.
	Name() string
	// Count returns the number of mutations this model derives from one
	// target instruction. It must be a pure function of the target.
	Count(t inject.Target) int
	// Mutation returns the i-th mutation for the target, 0 <= i <
	// Count(t). It must be pure: the same (target, i) yields the same
	// mutation in every process.
	Mutation(t inject.Target, i int) Mutation
}

var (
	mu       sync.RWMutex
	registry = make(map[string]Model)
)

// Register adds a model to the registry. It panics on a duplicate or
// empty name — models register at package init time, and a collision is a
// programming error, not a runtime condition.
func Register(m Model) {
	mu.Lock()
	defer mu.Unlock()
	name := m.Name()
	if name == "" {
		panic("faultmodel: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic("faultmodel: duplicate model " + name)
	}
	registry[name] = m
}

// Get resolves a model by name. The empty string canonicalizes to
// "bitflip", the paper's model, so configs that predate fault models keep
// working unchanged.
func Get(name string) (Model, error) {
	if name == "" {
		name = "bitflip"
	}
	mu.RLock()
	m, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("faultmodel: unknown model %q (have %v)", name, Names())
	}
	return m, nil
}

// Canonical normalizes a model name for identity comparisons: "" and
// "bitflip" are the same model (the journal header omits the canonical
// default so legacy journals match).
func Canonical(name string) string {
	if name == "" {
		return "bitflip"
	}
	return name
}

// Names lists the registered models, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Enumerate lists every experiment for the target set under the given
// scheme and model, in the deterministic campaign-tree order: targets in
// address-enumeration order, mutation indices ascending within each
// target. This order is the campaign's global index space — the one
// journals record, fleet shards lease, and Resume replays — for every
// model, exactly as inject.Enumerate's order is for bitflip.
func Enumerate(targets []inject.Target, scheme encoding.Scheme, m Model) []inject.Experiment {
	if m.Name() == "bitflip" {
		// The paper's model keeps its original enumeration (and its
		// original Experiment values: Model "", mutation derived from
		// ByteIdx/Bit/Scheme) so pre-fault-model journals and Stats stay
		// byte-identical.
		return inject.Enumerate(targets, scheme)
	}
	total := 0
	for _, t := range targets {
		total += m.Count(t)
	}
	out := make([]inject.Experiment, 0, total)
	for _, t := range targets {
		n := m.Count(t)
		for i := 0; i < n; i++ {
			mut := m.Mutation(t, i)
			out = append(out, inject.Experiment{
				Target: t,
				// ByteIdx/Bit describe the primary corrupted byte for
				// byte-span mutations (diagnostics; Location attribution
				// uses the span itself).
				ByteIdx:  mut.SpanStart,
				Scheme:   scheme,
				Model:    m.Name(),
				ModelIdx: i,
				Mut:      mut,
			})
		}
	}
	return out
}

// Total returns the experiment count of a target set under a model — the
// campaign size the fleet validates against shard specs.
func Total(targets []inject.Target, m Model) int {
	n := 0
	for _, t := range targets {
		n += m.Count(t)
	}
	return n
}
