package classify_test

import (
	"testing"

	"faultsec/internal/classify"
	"faultsec/internal/x86"
)

// TestLocationOfSpan pins multi-byte attribution: a span is charged to
// its lowest corrupted byte (the convention for corruptions that straddle
// opcode and operand), and degenerate spans fall back to MISC.
func TestLocationOfSpan(t *testing.T) {
	jcc8 := &x86.Inst{Op: x86.OpJcc}
	jcc32 := &x86.Inst{Op: x86.OpJcc}
	jmp := &x86.Inst{Op: x86.OpJmp}
	raw8 := []byte{0x74, 0x06}
	raw32 := []byte{0x0F, 0x84, 1, 0, 0, 0}
	tests := []struct {
		name       string
		in         *x86.Inst
		raw        []byte
		start, end int
		want       classify.Location
	}{
		{"2bc_single", jcc8, raw8, 0, 1, classify.Loc2BC},
		{"2bo_single", jcc8, raw8, 1, 2, classify.Loc2BO},
		{"2b_whole_inst_charges_opcode", jcc8, raw8, 0, 2, classify.Loc2BC},
		{"6bc1_single", jcc32, raw32, 0, 1, classify.Loc6BC1},
		{"6bc2_single", jcc32, raw32, 1, 2, classify.Loc6BC2},
		{"6bo_span", jcc32, raw32, 2, 6, classify.Loc6BO},
		{"6b_whole_inst_charges_escape", jcc32, raw32, 0, 6, classify.Loc6BC1},
		{"6b_straddle_cc2_operand", jcc32, raw32, 1, 4, classify.Loc6BC2},
		{"unconditional_is_misc", jmp, []byte{0xEB, 0x06}, 0, 2, classify.LocMISC},
		{"empty_span_is_misc", jcc8, raw8, 1, 1, classify.LocMISC},
		{"inverted_span_is_misc", jcc8, raw8, 1, 0, classify.LocMISC},
		{"negative_start_is_misc", jcc8, raw8, -1, 1, classify.LocMISC},
		{"start_past_raw_is_misc", jcc8, raw8, 2, 3, classify.LocMISC},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := classify.LocationOfSpan(tt.in, tt.raw, tt.start, tt.end)
			if got != tt.want {
				t.Errorf("LocationOfSpan(%v, [%d,%d)) = %v, want %v", tt.raw, tt.start, tt.end, got, tt.want)
			}
		})
	}
}
