// Package classify implements the study's outcome taxonomy (paper §5.1)
// and error-location taxonomy (Table 2), and the precedence rules used to
// assign each injection run to exactly one category.
package classify

import (
	"bytes"
	"errors"

	"faultsec/internal/kernel"
	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

// Outcome is the paper's five-way result categorization.
type Outcome int

// Outcomes, in the paper's presentation order.
const (
	// OutcomeNA: not activated — the corrupted instruction never executed.
	OutcomeNA Outcome = iota + 1
	// OutcomeNM: activated but not manifested — service was correct.
	OutcomeNM
	// OutcomeSD: system detection — the server process crashed.
	OutcomeSD
	// OutcomeFSV: fail silence violation — observable behaviour deviated
	// from the fault-free run (wrong/extra/missing messages, hangs,
	// wrongful denies).
	OutcomeFSV
	// OutcomeBRK: security break-in — access granted that the fault-free
	// protocol denies. A special case of FSV, counted separately.
	OutcomeBRK
)

// String returns the paper's abbreviation.
func (o Outcome) String() string {
	switch o {
	case OutcomeNA:
		return "NA"
	case OutcomeNM:
		return "NM"
	case OutcomeSD:
		return "SD"
	case OutcomeFSV:
		return "FSV"
	case OutcomeBRK:
		return "BRK"
	}
	return "?"
}

// Outcomes lists all categories in presentation order.
func Outcomes() []Outcome {
	return []Outcome{OutcomeNA, OutcomeNM, OutcomeSD, OutcomeFSV, OutcomeBRK}
}

// Location is the paper's Table 2 taxonomy of where inside an instruction
// the corrupted bit sits.
type Location int

// Locations (Table 2).
const (
	// Loc2BC: opcode of a 2-byte conditional branch.
	Loc2BC Location = iota + 1
	// Loc2BO: operand (offset) of a 2-byte conditional branch.
	Loc2BO
	// Loc6BC1: first opcode byte (0x0F) of a 6-byte conditional branch.
	Loc6BC1
	// Loc6BC2: second opcode byte of a 6-byte conditional branch.
	Loc6BC2
	// Loc6BO: operand (offset) of a 6-byte conditional branch.
	Loc6BO
	// LocMISC: anything else (unconditional jmp/call/ret/loop in the
	// branch-instruction target set).
	LocMISC
)

// String returns the paper's abbreviation.
func (l Location) String() string {
	switch l {
	case Loc2BC:
		return "2BC"
	case Loc2BO:
		return "2BO"
	case Loc6BC1:
		return "6BC1"
	case Loc6BC2:
		return "6BC2"
	case Loc6BO:
		return "6BO"
	case LocMISC:
		return "MISC"
	}
	return "?"
}

// Locations lists all locations in Table 2/3 order.
func Locations() []Location {
	return []Location{Loc2BC, Loc2BO, Loc6BC1, Loc6BC2, Loc6BO, LocMISC}
}

// LocationOf classifies the byte position byteIdx of the instruction in.
func LocationOf(in *x86.Inst, raw []byte, byteIdx int) Location {
	if in.Op != x86.OpJcc || len(raw) == 0 {
		return LocMISC
	}
	if x86.IsJcc8Opcode(raw[0]) && len(raw) == 2 {
		if byteIdx == 0 {
			return Loc2BC
		}
		return Loc2BO
	}
	if raw[0] == x86.TwoByteEscape && len(raw) == 6 {
		switch byteIdx {
		case 0:
			return Loc6BC1
		case 1:
			return Loc6BC2
		default:
			return Loc6BO
		}
	}
	return LocMISC
}

// LocationOfSpan classifies a corruption affecting the byte range
// [start, end) of the instruction in. Single-byte spans match LocationOf
// exactly. A multi-byte span is attributed to its lowest byte index: the
// paper's taxonomy is ordered opcode-before-operand, so a corruption
// straddling both (an instruction skip, a whole-instruction replacement)
// counts under the opcode row it destroys first. Empty or out-of-range
// spans classify as MISC.
func LocationOfSpan(in *x86.Inst, raw []byte, start, end int) Location {
	if start < 0 || start >= end || start >= len(raw) {
		return LocMISC
	}
	return LocationOf(in, raw, start)
}

// Golden is the recorded fault-free behaviour of one scenario.
type Golden struct {
	// ServerBytes is the complete server-to-client stream.
	ServerBytes []byte
	// Granted is whether the fault-free server awards access (equals the
	// scenario's ShouldGrant for a correct server).
	Granted bool
	// ExitCode is the server's exit status.
	ExitCode int
	// Steps is the retired instruction count.
	Steps uint64
}

// Run captures the observable result of one (possibly injected) session.
type Run struct {
	// Activated is whether the corrupted instruction was reached.
	Activated bool
	// Err is the run-terminating condition from vm.Machine.Run.
	Err error
	// ServerBytes is the server-to-client stream of this run.
	ServerBytes []byte
	// Granted is the client's access-grant observation.
	Granted bool
	// ActivationSteps is the retired-instruction count at first execution
	// of the corrupted instruction (valid when Activated).
	ActivationSteps uint64
	// EndSteps is the retired-instruction count when the run ended.
	EndSteps uint64
}

// Crashed reports whether the run ended in a processor fault, and the
// fault if so.
func (r *Run) Crashed() (*vm.Fault, bool) {
	var f *vm.Fault
	if errors.As(r.Err, &f) {
		return f, true
	}
	return nil, false
}

// CrashLatency returns the number of instructions between activation and
// crash (the paper's Figure 4 measure), valid when the run crashed after
// activation.
func (r *Run) CrashLatency() uint64 {
	if r.EndSteps < r.ActivationSteps {
		return 0
	}
	return r.EndSteps - r.ActivationSteps
}

// Classify assigns an outcome using the paper's precedence (§5.1, §5.2):
//
//  1. not activated -> NA
//  2. unauthorized grant observed -> BRK (even if the server crashed
//     afterwards; the paper's break-ins include post-grant file retrieval)
//  3. wrong bytes on the wire before a crash -> FSV (paper §5.2 discusses
//     an FSV run that "ultimately crashes"); a crash whose output so far
//     is a clean prefix of the golden stream -> SD
//  4. hangs, floods and fuel exhaustion -> FSV (the client observes a hang)
//  5. clean exit with identical server stream -> NM; any deviation -> FSV
func Classify(g *Golden, r *Run, shouldGrant bool) Outcome {
	if !r.Activated {
		return OutcomeNA
	}
	if r.Granted && !shouldGrant {
		return OutcomeBRK
	}
	if _, crashed := r.Crashed(); crashed {
		if bytes.HasPrefix(g.ServerBytes, r.ServerBytes) {
			return OutcomeSD
		}
		return OutcomeFSV
	}
	var hang *kernel.HangError
	var flood *kernel.FloodError
	var fuel *vm.OutOfFuel
	if errors.As(r.Err, &hang) || errors.As(r.Err, &flood) || errors.As(r.Err, &fuel) {
		return OutcomeFSV
	}
	var exit *vm.ExitStatus
	if errors.As(r.Err, &exit) {
		if bytes.Equal(g.ServerBytes, r.ServerBytes) && r.Granted == g.Granted {
			return OutcomeNM
		}
		return OutcomeFSV
	}
	// Unknown termination: treat as a fail-silence violation.
	return OutcomeFSV
}
