package classify_test

import (
	"testing"

	"faultsec/internal/classify"
	"faultsec/internal/kernel"
	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

func golden() *classify.Golden {
	return &classify.Golden{
		ServerBytes: []byte("220 ready\r\n530 no\r\n221 bye\r\n"),
		Granted:     false,
		ExitCode:    0,
		Steps:       1000,
	}
}

func TestClassifyPrecedence(t *testing.T) {
	g := golden()
	exit := &vm.ExitStatus{Code: 0}
	fault := &vm.Fault{Kind: vm.FaultMemory, Addr: 1, PC: 2}

	tests := []struct {
		name        string
		run         classify.Run
		shouldGrant bool
		want        classify.Outcome
	}{
		{
			name: "not_activated",
			run: classify.Run{Activated: false, Err: exit,
				ServerBytes: g.ServerBytes},
			want: classify.OutcomeNA,
		},
		{
			name: "clean_identical_is_NM",
			run: classify.Run{Activated: true, Err: exit,
				ServerBytes: g.ServerBytes},
			want: classify.OutcomeNM,
		},
		{
			name: "unauthorized_grant_is_BRK",
			run: classify.Run{Activated: true, Err: exit, Granted: true,
				ServerBytes: []byte("220 ready\r\n230 welcome\r\n")},
			want: classify.OutcomeBRK,
		},
		{
			name: "grant_then_crash_still_BRK",
			run: classify.Run{Activated: true, Err: fault, Granted: true,
				ServerBytes: []byte("220 ready\r\n230 welcome\r\n")},
			want: classify.OutcomeBRK,
		},
		{
			name: "crash_with_clean_prefix_is_SD",
			run: classify.Run{Activated: true, Err: fault,
				ServerBytes: []byte("220 ready\r\n")},
			want: classify.OutcomeSD,
		},
		{
			name: "crash_with_no_output_is_SD",
			run:  classify.Run{Activated: true, Err: fault},
			want: classify.OutcomeSD,
		},
		{
			name: "crash_after_garbage_is_FSV",
			run: classify.Run{Activated: true, Err: fault,
				ServerBytes: []byte("220 ready\r\n999 ???\r\n")},
			want: classify.OutcomeFSV,
		},
		{
			name: "hang_is_FSV",
			run: classify.Run{Activated: true, Err: &kernel.HangError{Steps: 5},
				ServerBytes: []byte("220 ready\r\n")},
			want: classify.OutcomeFSV,
		},
		{
			name: "flood_is_FSV",
			run: classify.Run{Activated: true, Err: &kernel.FloodError{Bytes: 1 << 21},
				ServerBytes: g.ServerBytes},
			want: classify.OutcomeFSV,
		},
		{
			name: "fuel_exhaustion_is_FSV",
			run: classify.Run{Activated: true, Err: &vm.OutOfFuel{Steps: 400000},
				ServerBytes: g.ServerBytes},
			want: classify.OutcomeFSV,
		},
		{
			name: "clean_exit_with_deviation_is_FSV",
			run: classify.Run{Activated: true, Err: exit,
				ServerBytes: []byte("220 ready\r\n530 no\r\n")},
			want: classify.OutcomeFSV,
		},
		{
			name: "clean_exit_extra_output_is_FSV",
			run: classify.Run{Activated: true, Err: exit,
				ServerBytes: append(append([]byte{}, g.ServerBytes...), "extra"...)},
			want: classify.OutcomeFSV,
		},
		{
			name: "authorized_grant_is_not_BRK",
			run: classify.Run{Activated: true, Err: exit, Granted: true,
				ServerBytes: g.ServerBytes},
			shouldGrant: true,
			// golden.Granted=false here is synthetic; transcript equality
			// decides: granted flag differs from golden -> FSV
			want: classify.OutcomeFSV,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := classify.Classify(g, &tt.run, tt.shouldGrant)
			if got != tt.want {
				t.Errorf("Classify = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCrashLatency(t *testing.T) {
	r := classify.Run{ActivationSteps: 100, EndSteps: 116}
	if r.CrashLatency() != 16 {
		t.Errorf("latency = %d", r.CrashLatency())
	}
	r = classify.Run{ActivationSteps: 100, EndSteps: 50}
	if r.CrashLatency() != 0 {
		t.Errorf("negative latency not clamped")
	}
}

func TestLocationOf(t *testing.T) {
	jcc8 := &x86.Inst{Op: x86.OpJcc}
	jcc32 := &x86.Inst{Op: x86.OpJcc}
	jmp := &x86.Inst{Op: x86.OpJmp}
	tests := []struct {
		name    string
		in      *x86.Inst
		raw     []byte
		byteIdx int
		want    classify.Location
	}{
		{"2bc", jcc8, []byte{0x74, 0x06}, 0, classify.Loc2BC},
		{"2bo", jcc8, []byte{0x74, 0x06}, 1, classify.Loc2BO},
		{"6bc1", jcc32, []byte{0x0F, 0x84, 1, 0, 0, 0}, 0, classify.Loc6BC1},
		{"6bc2", jcc32, []byte{0x0F, 0x84, 1, 0, 0, 0}, 1, classify.Loc6BC2},
		{"6bo_first", jcc32, []byte{0x0F, 0x84, 1, 0, 0, 0}, 2, classify.Loc6BO},
		{"6bo_last", jcc32, []byte{0x0F, 0x84, 1, 0, 0, 0}, 5, classify.Loc6BO},
		{"jmp_is_misc", jmp, []byte{0xEB, 0x06}, 0, classify.LocMISC},
		{"ret_is_misc", &x86.Inst{Op: x86.OpRet}, []byte{0xC3}, 0, classify.LocMISC},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := classify.LocationOf(tt.in, tt.raw, tt.byteIdx)
			if got != tt.want {
				t.Errorf("LocationOf = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStringers(t *testing.T) {
	wantOutcomes := []string{"NA", "NM", "SD", "FSV", "BRK"}
	for i, o := range classify.Outcomes() {
		if o.String() != wantOutcomes[i] {
			t.Errorf("outcome %d = %s, want %s", i, o, wantOutcomes[i])
		}
	}
	wantLocs := []string{"2BC", "2BO", "6BC1", "6BC2", "6BO", "MISC"}
	for i, l := range classify.Locations() {
		if l.String() != wantLocs[i] {
			t.Errorf("location %d = %s, want %s", i, l, wantLocs[i])
		}
	}
}
