package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"faultsec/internal/classify"
	"faultsec/internal/inject"
)

// TestJournalWriterSingleWriter pins the single-writer invariant: a
// second writer on an already-claimed journal path is refused with
// ErrJournalBusy, and — critically — refused before the open, so the
// duplicate's O_TRUNC cannot destroy the active journal.
func TestJournalWriterSingleWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	w1, err := newJournalWriter(path, true, 4, false)
	if err != nil {
		t.Fatalf("first writer: %v", err)
	}
	hdr := journalRecord{Type: recordHeader, App: "a", Scenario: "s", Total: 3, Fuel: 1}
	if err := w1.writeHeader(hdr); err != nil {
		t.Fatal(err)
	}

	if _, err := newJournalWriter(path, true, 4, false); !errors.Is(err, ErrJournalBusy) {
		t.Fatalf("duplicate truncating writer: err = %v, want ErrJournalBusy", err)
	}
	if _, err := newJournalWriter(path, false, 4, false); !errors.Is(err, ErrJournalBusy) {
		t.Fatalf("duplicate appending writer: err = %v, want ErrJournalBusy", err)
	}
	// An equivalent spelling of the same path must hit the same claim.
	dir := filepath.Dir(path)
	alias := filepath.Join(dir, ".", "campaign.jsonl")
	if _, err := newJournalWriter(alias, true, 4, false); !errors.Is(err, ErrJournalBusy) {
		t.Fatalf("aliased duplicate writer: err = %v, want ErrJournalBusy", err)
	}

	// The refused duplicates must not have truncated the live journal.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || !strings.Contains(string(data), `"header"`) {
		t.Fatalf("refused duplicate truncated the journal: %q", data)
	}

	if err := w1.close(0, nil); err != nil {
		t.Fatal(err)
	}
	// close releases the claim; the path is reusable.
	w2, err := newJournalWriter(path, false, 4, false)
	if err != nil {
		t.Fatalf("writer after close: %v", err)
	}
	w2.abort()
	// ... and abort releases it too.
	w3, err := newJournalWriter(path, false, 4, false)
	if err != nil {
		t.Fatalf("writer after abort: %v", err)
	}
	if err := w3.close(0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestReadJournalTooLongLine pins the scanner error contract: a line over
// the scanner buffer is a hard error (it cannot be the tolerated
// crash-truncated tail) that wraps bufio.ErrTooLong and names the line.
func TestReadJournalTooLongLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	want := journalRecord{Type: recordHeader, App: "a", Scenario: "s", Total: 3, Fuel: 1}

	var sb strings.Builder
	hdr, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	sb.Write(hdr)
	sb.WriteByte('\n')
	run, err := json.Marshal(journalRecord{Type: recordRun, Idx: 1,
		Result: &WireResult{Outcome: classify.OutcomeNA, FaultKind: strings.Repeat("x", 5<<20)}})
	if err != nil {
		t.Fatal(err)
	}
	sb.Write(run)
	sb.WriteByte('\n')
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = readJournal(path, want)
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("over-long line: err = %v, want bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name the offending line 2", err)
	}
}

// TestReadJournalScannerErrorBeatsTruncationTolerance: an io-level error
// must not be mistaken for the benign half-written final line.
func TestReadJournalShortValidJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	want := journalRecord{Type: recordHeader, App: "a", Scenario: "s", Total: 3, Fuel: 1}
	hdr, _ := json.Marshal(want)
	run, _ := json.Marshal(journalRecord{Type: recordRun, Idx: 2,
		Result: &WireResult{Outcome: classify.OutcomeBRK}})
	content := string(hdr) + "\n" + string(run) + "\n" + `{"type":"run","idx":1,"resu`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readJournal(path, want)
	if err != nil {
		t.Fatalf("truncated tail should be tolerated: %v", err)
	}
	if len(got) != 1 || got[2] == nil || got[2].Outcome != classify.OutcomeBRK {
		t.Fatalf("journal replay = %v, want idx 2 -> BRK only", got)
	}
}

// TestJournalAbortRemovesHeaderOnlyOrphan: a fresh journal that dies
// before recording any run is removed on abort — leaving it behind would
// poison the next submit, which would "resume" from a journal recording
// no progress — and the claim is released.
func TestJournalAbortRemovesHeaderOnlyOrphan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	w, err := newJournalWriter(path, true, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.writeHeader(journalRecord{Type: recordHeader, App: "a", Scenario: "s", Total: 1, Fuel: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("header-only orphan survived abort: stat err = %v", err)
	}
	// The claim is gone: a fresh writer on the path succeeds.
	w2, err := newJournalWriter(path, true, 4, false)
	if err != nil {
		t.Fatalf("writer after orphan abort: %v", err)
	}
	if err := w2.close(0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestJournalAbortKeepsJournalWithRuns: once a run record landed, abort
// must preserve the file — those results are real progress a resume can
// adopt.
func TestJournalAbortKeepsJournalWithRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	w, err := newJournalWriter(path, true, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	hdr := journalRecord{Type: recordHeader, App: "a", Scenario: "s", Total: 2, Fuel: 1}
	if err := w.writeHeader(hdr); err != nil {
		t.Fatal(err)
	}
	if err := w.writeRun(0, inject.Result{Outcome: classify.OutcomeNA}, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	skip, err := readJournal(path, hdr)
	if err != nil {
		t.Fatalf("aborted-with-runs journal unreadable: %v", err)
	}
	if len(skip) != 1 {
		t.Fatalf("aborted journal replays %d runs, want 1", len(skip))
	}
}

// TestJournalAbortKeepsResumedJournal: an appending (resume) writer never
// owns the file, so abort leaves it intact even with zero new runs.
func TestJournalAbortKeepsResumedJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	w, err := newJournalWriter(path, true, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	hdr := journalRecord{Type: recordHeader, App: "a", Scenario: "s", Total: 2, Fuel: 1}
	if err := w.writeHeader(hdr); err != nil {
		t.Fatal(err)
	}
	if err := w.close(0, nil); err != nil {
		t.Fatal(err)
	}

	w2, err := newJournalWriter(path, false, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("resume abort removed the journal: %v", err)
	}
	if _, err := readJournal(path, hdr); err != nil {
		t.Fatalf("journal unreadable after resume abort: %v", err)
	}
}

// TestJournalCloseWritesFinalCheckpoint: close's last act is a synced
// checkpoint carrying the final done/counts — the record a monitoring
// reader uses to see a campaign completed without replaying every run.
func TestJournalCloseWritesFinalCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	// checkpointEvery greater than the run count: the only checkpoint is
	// close's final one.
	w, err := newJournalWriter(path, true, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	hdr := journalRecord{Type: recordHeader, App: "a", Scenario: "s", Total: 2, Fuel: 1}
	if err := w.writeHeader(hdr); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{"NA": 2}
	for idx := 0; idx < 2; idx++ {
		if err := w.writeRun(idx, inject.Result{Outcome: classify.OutcomeNA}, idx+1, counts); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(2, counts); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	var last journalRecord
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != recordCheckpoint || last.Done != 2 || last.Counts["NA"] != 2 {
		t.Fatalf("final record = %+v, want checkpoint done=2 NA=2", last)
	}
}

// TestJournalCheckpointSyncSmoke drives the CheckpointSync path: periodic
// checkpoints appear at the configured cadence and the fsync after each
// does not disturb the record stream.
func TestJournalCheckpointSyncSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	w, err := newJournalWriter(path, true, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	hdr := journalRecord{Type: recordHeader, App: "a", Scenario: "s", Total: 6, Fuel: 1}
	if err := w.writeHeader(hdr); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 6; idx++ {
		if err := w.writeRun(idx, inject.Result{Outcome: classify.OutcomeNA}, idx+1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(6, nil); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Type == recordCheckpoint {
			ckpts++
		}
	}
	if ckpts != 4 { // every 2 runs (3) + final
		t.Fatalf("journal has %d checkpoints, want 4 (3 periodic + final)", ckpts)
	}
	skip, err := readJournal(path, hdr)
	if err != nil || len(skip) != 6 {
		t.Fatalf("synced journal replay: %d runs, err %v; want 6, nil", len(skip), err)
	}
}
