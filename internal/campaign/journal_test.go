package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"faultsec/internal/classify"
)

// TestJournalWriterSingleWriter pins the single-writer invariant: a
// second writer on an already-claimed journal path is refused with
// ErrJournalBusy, and — critically — refused before the open, so the
// duplicate's O_TRUNC cannot destroy the active journal.
func TestJournalWriterSingleWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	w1, err := newJournalWriter(path, true, 4)
	if err != nil {
		t.Fatalf("first writer: %v", err)
	}
	hdr := journalRecord{Type: recordHeader, App: "a", Scenario: "s", Total: 3, Fuel: 1}
	if err := w1.writeHeader(hdr); err != nil {
		t.Fatal(err)
	}

	if _, err := newJournalWriter(path, true, 4); !errors.Is(err, ErrJournalBusy) {
		t.Fatalf("duplicate truncating writer: err = %v, want ErrJournalBusy", err)
	}
	if _, err := newJournalWriter(path, false, 4); !errors.Is(err, ErrJournalBusy) {
		t.Fatalf("duplicate appending writer: err = %v, want ErrJournalBusy", err)
	}
	// An equivalent spelling of the same path must hit the same claim.
	dir := filepath.Dir(path)
	alias := filepath.Join(dir, ".", "campaign.jsonl")
	if _, err := newJournalWriter(alias, true, 4); !errors.Is(err, ErrJournalBusy) {
		t.Fatalf("aliased duplicate writer: err = %v, want ErrJournalBusy", err)
	}

	// The refused duplicates must not have truncated the live journal.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || !strings.Contains(string(data), `"header"`) {
		t.Fatalf("refused duplicate truncated the journal: %q", data)
	}

	if err := w1.close(0, nil); err != nil {
		t.Fatal(err)
	}
	// close releases the claim; the path is reusable.
	w2, err := newJournalWriter(path, false, 4)
	if err != nil {
		t.Fatalf("writer after close: %v", err)
	}
	w2.abort()
	// ... and abort releases it too.
	w3, err := newJournalWriter(path, false, 4)
	if err != nil {
		t.Fatalf("writer after abort: %v", err)
	}
	if err := w3.close(0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestReadJournalTooLongLine pins the scanner error contract: a line over
// the scanner buffer is a hard error (it cannot be the tolerated
// crash-truncated tail) that wraps bufio.ErrTooLong and names the line.
func TestReadJournalTooLongLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	want := journalRecord{Type: recordHeader, App: "a", Scenario: "s", Total: 3, Fuel: 1}

	var sb strings.Builder
	hdr, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	sb.Write(hdr)
	sb.WriteByte('\n')
	run, err := json.Marshal(journalRecord{Type: recordRun, Idx: 1,
		Result: &WireResult{Outcome: classify.OutcomeNA, FaultKind: strings.Repeat("x", 5<<20)}})
	if err != nil {
		t.Fatal(err)
	}
	sb.Write(run)
	sb.WriteByte('\n')
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = readJournal(path, want)
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("over-long line: err = %v, want bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name the offending line 2", err)
	}
}

// TestReadJournalScannerErrorBeatsTruncationTolerance: an io-level error
// must not be mistaken for the benign half-written final line.
func TestReadJournalShortValidJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	want := journalRecord{Type: recordHeader, App: "a", Scenario: "s", Total: 3, Fuel: 1}
	hdr, _ := json.Marshal(want)
	run, _ := json.Marshal(journalRecord{Type: recordRun, Idx: 2,
		Result: &WireResult{Outcome: classify.OutcomeBRK}})
	content := string(hdr) + "\n" + string(run) + "\n" + `{"type":"run","idx":1,"resu`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readJournal(path, want)
	if err != nil {
		t.Fatalf("truncated tail should be tolerated: %v", err)
	}
	if len(got) != 1 || got[2] == nil || got[2].Outcome != classify.OutcomeBRK {
		t.Fatalf("journal replay = %v, want idx 2 -> BRK only", got)
	}
}
