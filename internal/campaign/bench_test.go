package campaign_test

import (
	"context"
	"testing"

	"faultsec/internal/campaign"
	"faultsec/internal/encoding"
)

// benchCampaign runs the full Table 1 FTP Client1 campaign once per
// iteration and reports throughput in runs/sec, the engine's headline
// metric (acceptance: snapshot ≥ 2× naive).
func benchCampaign(b *testing.B, noSnapshot, noICache bool) {
	app, sc := ftpClient1(b)
	var runs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := campaign.New(campaign.Config{
			App: app, Scenario: sc, Scheme: encoding.SchemeX86,
			NoSnapshot: noSnapshot, NoICache: noICache,
		})
		stats, err := eng.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		runs += int64(stats.Total)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(runs)/sec, "runs/sec")
	}
}

func BenchmarkEngineSnapshotFTP(b *testing.B) { benchCampaign(b, false, false) }

func BenchmarkEngineNaiveFTP(b *testing.B) { benchCampaign(b, true, false) }

// BenchmarkEngineSnapshotFTPNoICache isolates the predecoded instruction
// cache's contribution on top of snapshot fast-forwarding.
func BenchmarkEngineSnapshotFTPNoICache(b *testing.B) { benchCampaign(b, false, true) }
