package campaign_test

import (
	"context"
	"reflect"
	"testing"

	"faultsec/internal/campaign"
	"faultsec/internal/encoding"
	"faultsec/internal/sshd"
	"faultsec/internal/target"
)

// runUopsAblation runs the full campaign for one app/scenario twice — with
// micro-op dispatch (the default) and with the NoUops legacy-switch
// ablation — under both encodings, and requires byte-identical Stats
// including per-run Results. Every experiment pokes corrupted bytes over
// live text, so this exercises the bound micro-ops in frozen snapshot base
// tables, overlay rebinds after invalidation, and every fault class the
// handlers can raise (#UD, #GP, #DE, memory, fetch, fuel, watchdog).
func runUopsAblation(t *testing.T, app *target.App, sc target.Scenario) {
	t.Helper()
	for _, scheme := range []encoding.Scheme{encoding.SchemeX86, encoding.SchemeParity} {
		scheme := scheme
		t.Run(scheme.Name(), func(t *testing.T) {
			uops := campaign.New(campaign.Config{
				App: app, Scenario: sc, Scheme: scheme, KeepResults: true,
			})
			want, err := uops.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			legacy := campaign.New(campaign.Config{
				App: app, Scenario: sc, Scheme: scheme, KeepResults: true,
				NoUops: true,
			})
			got, err := legacy.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(want, got) {
				t.Errorf("uop stats differ from NoUops\nuops: %+v\nnouops: %+v",
					statsSummary(want), statsSummary(got))
			}
		})
	}
}

// TestUopsAblationFTPClient1 is the micro-op pipeline's acceptance gate on
// the FTP server campaign.
func TestUopsAblationFTPClient1(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign ablation is not short")
	}
	app, sc := ftpClient1(t)
	runUopsAblation(t, app, sc)
}

// TestUopsAblationSSHClient1 is the same gate on the SSH server campaign,
// whose Client1 scenario exercises the authentication-rejection path.
func TestUopsAblationSSHClient1(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign ablation is not short")
	}
	app, err := sshd.Build()
	if err != nil {
		t.Fatalf("build sshd: %v", err)
	}
	sc, ok := app.Scenario("Client1")
	if !ok {
		t.Fatal("sshd has no Client1")
	}
	runUopsAblation(t, app, sc)
}
