package campaign_test

import (
	"context"
	"reflect"
	"testing"

	"faultsec/internal/campaign"
	"faultsec/internal/encoding"
)

// TestICacheAblationFTPClient1 is the corrupted-text acceptance gate for
// the predecoded instruction cache: the full FTP Client1 campaign — every
// experiment of which pokes corrupted bytes over live text — must produce
// byte-identical Stats (including per-run Results) with the cache enabled
// and disabled. Any stale decode surviving a poke or a snapshot restore
// would show up as a diverging outcome here.
func TestICacheAblationFTPClient1(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign ablation is not short")
	}
	app, sc := ftpClient1(t)

	cached := campaign.New(campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true,
	})
	want, err := cached.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	uncached := campaign.New(campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true,
		NoICache: true,
	})
	got, err := uncached.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(want, got) {
		t.Errorf("cached stats differ from NoICache\ncached: %+v\nnoicache: %+v",
			statsSummary(want), statsSummary(got))
	}

	cm := cached.Metrics()
	if cm.ICacheHits == 0 {
		t.Error("cached campaign recorded no icache hits")
	}
	if cm.ICacheHitRate <= 0 || cm.ICacheHitRate > 1 {
		t.Errorf("icache hit rate %v out of (0,1]", cm.ICacheHitRate)
	}
	um := uncached.Metrics()
	if um.ICacheHits != 0 || um.ICacheMisses != 0 {
		t.Errorf("NoICache campaign recorded cache traffic: hits=%d misses=%d",
			um.ICacheHits, um.ICacheMisses)
	}
}
