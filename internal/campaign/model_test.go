package campaign_test

import (
	"bufio"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"faultsec/internal/campaign"
	"faultsec/internal/encoding"
	"faultsec/internal/faultmodel"
	"faultsec/internal/inject"
)

// sampleEvery keeps every k-th experiment — the cost bound that lets the
// naive reference executor cover the larger fault models' enumerations.
func sampleEvery(exps []inject.Experiment, k int) []inject.Experiment {
	if k <= 1 {
		return exps
	}
	out := make([]inject.Experiment, 0, len(exps)/k+1)
	for i := 0; i < len(exps); i += k {
		out = append(out, exps[i])
	}
	return out
}

// TestModelDifferentialFTPClient1 is the fault-model acceptance gate: for
// every registered model, the snapshot fast-forward engine must reproduce
// the naive one-full-run-per-experiment reference byte for byte —
// including per-run Results — over the FTP Client1 campaign. Small
// enumerations (instskip, cmpskip) diff in full; the larger ones are
// sampled across every target, which still exercises every mutation kind
// through both executors.
func TestModelDifferentialFTPClient1(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	for _, name := range faultmodel.Names() {
		t.Run(name, func(t *testing.T) {
			cfg := campaign.Config{
				App: app, Scenario: sc, Scheme: encoding.SchemeX86,
				Model: name, KeepResults: true,
			}
			exps, err := campaign.EnumerateConfig(&cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(exps) == 0 {
				t.Fatalf("%s enumerates no experiments", name)
			}
			if len(exps) > 64 {
				exps = sampleEvery(exps, 7)
			}
			engine, err := campaign.New(cfg).RunExperiments(context.Background(), exps)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := inject.RunExperimentsNaive(context.Background(), inject.Config{
				App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true,
			}, exps)
			if err != nil {
				t.Fatal(err)
			}
			if engine.Model != faultmodel.Canonical(name) {
				t.Errorf("engine Stats.Model = %q, want %q", engine.Model, faultmodel.Canonical(name))
			}
			if !reflect.DeepEqual(naive, engine) {
				t.Errorf("engine stats differ from naive reference\nnaive: %+v\nengine: %+v",
					statsSummary(naive), statsSummary(engine))
			}
		})
	}
}

// TestBitflipModelByteIdentity pins the wire-compatibility acceptance
// criterion: Model "" and Model "bitflip" are the same campaign — same
// enumeration as the pre-fault-model inject.Enumerate, and byte-identical
// engine Stats (Results and CrashLatencies order included). Together with
// TestDifferentialFTPClient1 (engine == naive for the zero model) and the
// bitflip case of TestModelDifferentialFTPClient1 (engine == naive under
// the explicit name), this proves the identity on both executor paths.
func TestBitflipModelByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)

	legacy := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true,
	}
	named := legacy
	named.Model = "bitflip"

	legacyExps, err := campaign.EnumerateConfig(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	namedExps, err := campaign.EnumerateConfig(&named)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	preModel := inject.Enumerate(targets, encoding.SchemeX86)
	if !reflect.DeepEqual(legacyExps, preModel) {
		t.Fatal(`EnumerateConfig(Model "") differs from inject.Enumerate`)
	}
	if !reflect.DeepEqual(namedExps, preModel) {
		t.Fatal(`EnumerateConfig(Model "bitflip") differs from inject.Enumerate`)
	}

	legacyStats, err := campaign.New(legacy).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	namedStats, err := campaign.New(named).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if legacyStats.Model != "bitflip" || namedStats.Model != "bitflip" {
		t.Errorf("Stats.Model = %q / %q, want bitflip for both", legacyStats.Model, namedStats.Model)
	}
	if !reflect.DeepEqual(legacyStats, namedStats) {
		t.Errorf(`Model "" and Model "bitflip" campaigns differ`+"\nlegacy: %+v\nnamed: %+v",
			statsSummary(legacyStats), statsSummary(namedStats))
	}
}

// journalHeaderLine returns the journal's first line.
func journalHeaderLine(t *testing.T, path string) string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck // read-only
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatalf("journal %s is empty", path)
	}
	return sc.Text()
}

// TestJournalModelIdentitySkew pins the journal-side loud failure: run
// indices are model-specific, so resuming or replaying a journal under a
// different fault model must be refused with an error naming both models
// — never silently adopted.
func TestJournalModelIdentitySkew(t *testing.T) {
	app, sc := ftpClient1(t)
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86,
		Model: "instskip", KeepResults: true, Journal: journal, Parallelism: 2,
	}
	want, err := campaign.New(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// The header records the model by name.
	if hdr := journalHeaderLine(t, journal); !strings.Contains(hdr, `"model":"instskip"`) {
		t.Errorf("journal header %q does not record the fault model", hdr)
	}

	// Resume under the zero model (bitflip): refused, both models named.
	skew := cfg
	skew.Model = ""
	if _, err := campaign.Resume(context.Background(), skew); err == nil {
		t.Error("resume of an instskip journal under bitflip succeeded")
	} else if !strings.Contains(err.Error(), "instskip") || !strings.Contains(err.Error(), "bitflip") {
		t.Errorf("model-skew resume error %q does not name both models", err)
	}

	// ReplayJournal under yet another model: refused before any
	// rehydration (the byteflip enumeration would assign these indices to
	// entirely different injections).
	replayCfg := cfg
	replayCfg.Model = "byteflip"
	replayExps, err := campaign.EnumerateConfig(&replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.ReplayJournal(&replayCfg, replayExps); err == nil {
		t.Error("ReplayJournal under a different model succeeded")
	} else if !strings.Contains(err.Error(), "fault model") {
		t.Errorf("model-skew replay error %q does not mention the fault model", err)
	}

	// Under the matching model the completed journal adopts every run.
	resumed, err := campaign.Resume(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, resumed) {
		t.Errorf("matching-model resume differs from the original run\nrun: %+v\nresumed: %+v",
			statsSummary(want), statsSummary(resumed))
	}
}

// TestLegacyJournalReplaysAsBitflip pins backward compatibility: a
// bitflip journal's header carries no model field at all — the exact
// format written before fault models existed — and such a journal resumes
// under an explicit Model "bitflip" config unchanged.
func TestLegacyJournalReplaysAsBitflip(t *testing.T) {
	app, sc := ftpClient1(t)
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86,
		KeepResults: true, Journal: journal, Parallelism: 2,
	}
	want, err := campaign.New(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// The wire format is the legacy one: no model key anywhere in the
	// header. (This is what makes pre-fault-model journals byte-compatible
	// — they are literally the same file.)
	if hdr := journalHeaderLine(t, journal); strings.Contains(hdr, "model") {
		t.Errorf("bitflip journal header %q carries a model field; legacy journals would mismatch", hdr)
	}

	named := cfg
	named.Model = "bitflip"
	resumed, err := campaign.Resume(context.Background(), named)
	if err != nil {
		t.Fatalf("explicit-bitflip resume of a legacy journal failed: %v", err)
	}
	want2 := want
	// The resumed stats carry the canonical model name either way.
	if resumed.Model != "bitflip" {
		t.Errorf("resumed Stats.Model = %q, want bitflip", resumed.Model)
	}
	if !reflect.DeepEqual(want2, resumed) {
		t.Errorf("legacy journal resume differs from the original run\nrun: %+v\nresumed: %+v",
			statsSummary(want2), statsSummary(resumed))
	}

	// ... while a non-bitflip config refuses the same legacy journal.
	skew := cfg
	skew.Model = "instskip"
	if _, err := campaign.Resume(context.Background(), skew); err == nil {
		t.Error("resume of a legacy bitflip journal under instskip succeeded")
	} else if !strings.Contains(err.Error(), "fault model") {
		t.Errorf("legacy-journal skew error %q does not mention the fault model", err)
	}
}

// TestModelResumeAfterCancelRoundTrip runs the cancel+resume lifecycle
// under a non-bitflip model: the journaled prefix plus the resumed
// remainder must reproduce an uninterrupted byteflip campaign byte for
// byte, proving the model's enumeration indexes identically across
// process generations.
func TestModelResumeAfterCancelRoundTrip(t *testing.T) {
	app, sc := ftpClient1(t)
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86,
		Model: "byteflip", KeepResults: true,
		Journal: journal, CheckpointEvery: 16, Parallelism: 2,
	}

	ctx, cancel := context.WithCancel(context.Background())
	cfg.Progress = func(done, total int) {
		if done >= total/3 {
			cancel()
		}
	}
	if _, err := campaign.New(cfg).Run(ctx); err == nil {
		t.Fatal("canceled campaign returned no error")
	}

	cfg.Progress = nil
	resumed, err := campaign.Resume(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	uncfg := cfg
	uncfg.Journal = ""
	want, err := campaign.New(uncfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, resumed) {
		t.Errorf("byteflip cancel+resume differs from uninterrupted run\nuninterrupted: %+v\nresumed: %+v",
			statsSummary(want), statsSummary(resumed))
	}
}
