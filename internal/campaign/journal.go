package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/faultmodel"
	"faultsec/internal/inject"
)

// The journal is an append-only JSONL file: one header record identifying
// the campaign, one run record per completed experiment, and periodic
// checkpoint records summarizing progress. Every record is flushed as it
// is written, so a killed campaign loses at most the runs that were still
// in flight; Resume replays the journal, skips every recorded experiment,
// and re-runs only the remainder.

// recordType discriminates journal lines.
const (
	recordHeader     = "header"
	recordRun        = "run"
	recordCheckpoint = "checkpoint"
)

// journalRecord is the wire form of one journal line. Fields are a union
// over the record types; Type selects which are meaningful.
type journalRecord struct {
	Type string `json:"type"`

	// Header fields: campaign identity. Resume refuses a journal whose
	// identity does not match the engine config — a journal from a
	// different app/scenario/scheme/fuel/fault-model would corrupt results
	// silently (run indices would mean different injections).
	App      string `json:"app,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	// Scheme and SchemeName together carry the hardening scheme. The
	// paper's pair keeps its pre-registry integer wire form (1 = x86,
	// 2 = parity) so old journals replay and new x86/parity journals are
	// byte-identical to them; registry schemes beyond the pair are carried
	// by name. A header with neither (both zero) predates the scheme field
	// and means x86.
	Scheme     int    `json:"scheme,omitempty"`
	SchemeName string `json:"schemeName,omitempty"`
	// Model is the fault-model name; the wire value for bitflip is ""
	// (omitted), so journals written before fault models existed — which
	// were all bitflip — replay under a bitflip config unchanged.
	Model    string `json:"model,omitempty"`
	Total    int    `json:"total,omitempty"`
	Fuel     uint64 `json:"fuel,omitempty"`
	Watchdog bool   `json:"watchdog,omitempty"`

	// Run fields.
	Idx    int         `json:"idx,omitempty"`
	Result *WireResult `json:"result,omitempty"`

	// Checkpoint fields.
	Done   int            `json:"done,omitempty"`
	Counts map[string]int `json:"counts,omitempty"`
}

// WireResult is inject.Result minus the Experiment (reconstructed from the
// deterministic enumeration by index). It is the one wire form shared by
// the journal and the fleet's worker/coordinator protocol, so a result is
// encoded identically whether it crosses a file or a socket.
type WireResult struct {
	Outcome            classify.Outcome  `json:"outcome"`
	Location           classify.Location `json:"location"`
	Activated          bool              `json:"activated,omitempty"`
	FaultKind          string            `json:"faultKind,omitempty"`
	CrashLatency       uint64            `json:"crashLatency,omitempty"`
	Crashed            bool              `json:"crashed,omitempty"`
	Granted            bool              `json:"granted,omitempty"`
	BytesInWindow      int               `json:"bytesInWindow,omitempty"`
	DetectedByWatchdog bool              `json:"watchdogHit,omitempty"`
}

// Wire strips a Result down to its wire form.
func Wire(r inject.Result) *WireResult {
	return &WireResult{
		Outcome:            r.Outcome,
		Location:           r.Location,
		Activated:          r.Activated,
		FaultKind:          r.FaultKind,
		CrashLatency:       r.CrashLatency,
		Crashed:            r.Crashed,
		Granted:            r.Granted,
		BytesInWindow:      r.BytesInWindow,
		DetectedByWatchdog: r.DetectedByWatchdog,
	}
}

// ToResult rehydrates the wire form against its experiment.
func (w *WireResult) ToResult(ex inject.Experiment) inject.Result {
	return inject.Result{
		Experiment:         ex,
		Outcome:            w.Outcome,
		Location:           w.Location,
		Activated:          w.Activated,
		FaultKind:          w.FaultKind,
		CrashLatency:       w.CrashLatency,
		Crashed:            w.Crashed,
		Granted:            w.Granted,
		BytesInWindow:      w.BytesInWindow,
		DetectedByWatchdog: w.DetectedByWatchdog,
	}
}

// journalIdentity derives the header record for an engine config.
func journalIdentity(cfg *Config, total int) journalRecord {
	code, name := wireScheme(cfg.Scheme)
	return journalRecord{
		Type:       recordHeader,
		App:        cfg.App.Name,
		Scenario:   cfg.Scenario.Name,
		Scheme:     code,
		SchemeName: name,
		Model:      WireModel(cfg.Model),
		Total:      total,
		Fuel:       cfg.effectiveFuel(),
		Watchdog:   cfg.Watchdog,
	}
}

// wireScheme splits a scheme into its journal wire form: the paper's pair
// keeps its legacy integer code (and no name), every other scheme is
// carried by name alone.
func wireScheme(s encoding.Scheme) (code int, name string) {
	switch n := encoding.SchemeName(s); n {
	case "x86":
		return 1, ""
	case "parity":
		return 2, ""
	default:
		return 0, n
	}
}

// wireSchemeName resolves a header's scheme fields to the canonical scheme
// name. The name wins when present; otherwise the legacy code decides,
// with 0 — a journal written before the scheme field existed — meaning
// x86, the only scheme of that era.
func wireSchemeName(code int, name string) string {
	if name != "" {
		return name
	}
	if code == 2 {
		return "parity"
	}
	return "x86"
}

// WireModel is the journal/fleet wire form of a fault-model name: the
// canonical default ("bitflip") is carried as the empty string so that
// legacy artifacts, which predate fault models, compare equal to it. It is
// exported for the fleet's shard specs, which share the convention.
func WireModel(model string) string {
	if faultmodel.Canonical(model) == "bitflip" {
		return ""
	}
	return model
}

// ErrJournalBusy is returned when a journal path already has an active
// writer in this process. Two concurrent writers on one JSONL file would
// interleave records into corruption readJournal rejects, so the second
// opener is refused up front (before the file is opened, and in
// particular before a fresh run could truncate the active journal).
var ErrJournalBusy = errors.New("journal has an active writer")

// activeJournals tracks the journal paths (filepath.Clean'd) that have an
// open journalWriter. The registry is process-local and advisory: it
// guards every writer this process creates, but not a second daemon
// pointed at the same directory.
var activeJournals sync.Map

// journalWriter serializes appends to the journal file. Every record is a
// single line followed by a flush, so records are atomic with respect to
// process death (at worst the final line is truncated, which readers
// tolerate). Creating a writer claims the path in activeJournals; close
// and abort release it.
type journalWriter struct {
	mu              sync.Mutex
	path            string // cleaned registry key
	f               *os.File
	bw              *bufio.Writer
	enc             *json.Encoder
	runsSinceCkpt   int
	checkpointEvery int
	// syncCheckpoints fsyncs the file after every periodic checkpoint
	// (Config.CheckpointSync): the durability knob for callers that must
	// survive power loss, not just process death.
	syncCheckpoints bool
	// owned records that this writer created (or truncated) the file, and
	// runs counts run records appended by this writer — together they
	// decide whether abort may remove the file (an owned, header-only
	// journal carries no results and would poison the next resume).
	owned bool
	runs  int
}

// newJournalWriter claims path and opens it for writing: truncated for a
// fresh campaign (trunc), appended-to for a resume. The claim happens
// before the open so a duplicate fresh run cannot truncate a journal an
// active writer is still appending to; errors.Is(err, ErrJournalBusy)
// identifies that refusal. A freshly created journal's parent directory is
// fsynced so the file's existence survives power loss.
func newJournalWriter(path string, trunc bool, checkpointEvery int, syncCheckpoints bool) (*journalWriter, error) {
	key := filepath.Clean(path)
	if _, loaded := activeJournals.LoadOrStore(key, struct{}{}); loaded {
		return nil, fmt.Errorf("campaign: journal %s: %w", path, ErrJournalBusy)
	}
	flags := os.O_WRONLY
	if trunc {
		flags |= os.O_CREATE | os.O_TRUNC
	} else {
		flags |= os.O_APPEND
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		activeJournals.Delete(key)
		return nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	if trunc {
		if err := syncDir(filepath.Dir(key)); err != nil {
			f.Close()
			activeJournals.Delete(key)
			return nil, err
		}
	}
	bw := bufio.NewWriter(f)
	return &journalWriter{
		path:            key,
		f:               f,
		bw:              bw,
		enc:             json.NewEncoder(bw),
		checkpointEvery: checkpointEvery,
		syncCheckpoints: syncCheckpoints,
		owned:           trunc,
	}, nil
}

// syncDir fsyncs a directory, making a just-created or just-renamed entry
// in it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	defer d.Close() //nolint:errcheck // read-only
	if err := d.Sync(); err != nil {
		return fmt.Errorf("campaign: sync %s: %w", dir, err)
	}
	return nil
}

func (w *journalWriter) write(rec *journalRecord) error {
	if err := w.enc.Encode(rec); err != nil {
		return err
	}
	return w.bw.Flush()
}

func (w *journalWriter) writeHeader(rec journalRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.write(&rec)
}

// writeRun appends one run record and, every checkpointEvery runs, a
// checkpoint summarizing progress so far.
func (w *journalWriter) writeRun(idx int, r inject.Result, done int, counts map[string]int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.write(&journalRecord{Type: recordRun, Idx: idx, Result: Wire(r)}); err != nil {
		return err
	}
	w.runs++
	w.runsSinceCkpt++
	if w.runsSinceCkpt >= w.checkpointEvery {
		w.runsSinceCkpt = 0
		if err := w.write(&journalRecord{Type: recordCheckpoint, Done: done, Counts: counts}); err != nil {
			return err
		}
		if w.syncCheckpoints {
			return w.f.Sync()
		}
	}
	return nil
}

// close writes the final checkpoint and fsyncs before closing: the journal
// advertises itself as crash-safe, so the completed state must actually be
// on stable storage when close returns, not just in the page cache.
func (w *journalWriter) close(done int, counts map[string]int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.write(&journalRecord{Type: recordCheckpoint, Done: done, Counts: counts})
	if serr := w.f.Sync(); err == nil {
		err = serr
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	activeJournals.Delete(w.path)
	return err
}

// abort releases the writer without a final checkpoint: the path claim is
// dropped and the file closed as-is. It is the error-path counterpart of
// close, for writers whose campaign failed before completing. When this
// writer created the file and journaled no runs, the header-only file is
// removed — leaving it behind would poison the next submit, which would
// resume from a journal that records no progress and (if the failure was
// config-dependent) may not even match its identity.
func (w *journalWriter) abort() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.f.Close()
	if w.owned && w.runs == 0 {
		if rerr := os.Remove(w.path); rerr != nil && !os.IsNotExist(rerr) && err == nil {
			err = rerr
		} else if rerr == nil {
			err = errorOrNil(err, syncDir(filepath.Dir(w.path)))
		}
	}
	activeJournals.Delete(w.path)
	return err
}

// errorOrNil returns the first non-nil error.
func errorOrNil(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// readJournal parses a journal and returns the recorded results keyed by
// experiment index. A truncated final line (the crash case) is ignored;
// corruption anywhere else is an error. The header must match want's
// identity.
func readJournal(path string, want journalRecord) (map[int]*WireResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //nolint:errcheck // read-only

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	out := make(map[int]*WireResult)
	sawHeader := false
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			// A malformed line that was NOT the final line: hard error.
			return nil, pendingErr
		}
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			pendingErr = fmt.Errorf("campaign: journal %s line %d: %w", path, lineNo, err)
			continue
		}
		switch rec.Type {
		case recordHeader:
			if sawHeader {
				return nil, fmt.Errorf("campaign: journal %s: duplicate header", path)
			}
			sawHeader = true
			if rec.Model != want.Model {
				// Called out separately from the identity mismatch below:
				// model skew means every run index in this journal names a
				// different injection than the config would enumerate.
				return nil, fmt.Errorf("campaign: journal %s is for fault model %q; config wants %q "+
					"(run indices are model-specific — replaying across models would corrupt results)",
					path, faultmodel.Canonical(rec.Model), faultmodel.Canonical(want.Model))
			}
			gotScheme := wireSchemeName(rec.Scheme, rec.SchemeName)
			wantScheme := wireSchemeName(want.Scheme, want.SchemeName)
			if gotScheme != wantScheme {
				// Called out separately for the same reason as model skew:
				// the experiment tree is scheme-specific (codegen schemes
				// even enumerate different targets), so a cross-scheme
				// replay would silently mean different injections.
				return nil, fmt.Errorf("campaign: journal %s is for scheme %q; config wants %q "+
					"(run indices are scheme-specific — replaying across schemes would corrupt results)",
					path, gotScheme, wantScheme)
			}
			if rec.App != want.App || rec.Scenario != want.Scenario ||
				rec.Total != want.Total ||
				rec.Fuel != want.Fuel || rec.Watchdog != want.Watchdog {
				return nil, fmt.Errorf("campaign: journal %s is for %s/%s scheme=%s total=%d fuel=%d watchdog=%v; "+
					"config wants %s/%s scheme=%s total=%d fuel=%d watchdog=%v",
					path, rec.App, rec.Scenario, gotScheme, rec.Total, rec.Fuel, rec.Watchdog,
					want.App, want.Scenario, wantScheme, want.Total, want.Fuel, want.Watchdog)
			}
		case recordRun:
			if !sawHeader {
				return nil, fmt.Errorf("campaign: journal %s: run record before header", path)
			}
			if rec.Result == nil || rec.Idx < 0 || rec.Idx >= want.Total ||
				rec.Result.Outcome < classify.OutcomeNA || rec.Result.Outcome > classify.OutcomeBRK {
				pendingErr = fmt.Errorf("campaign: journal %s line %d: bad run record", path, lineNo)
				continue
			}
			out[rec.Idx] = rec.Result
		case recordCheckpoint:
			// Progress markers only; run records are the source of truth.
		default:
			pendingErr = fmt.Errorf("campaign: journal %s line %d: unknown record %q", path, lineNo, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		// A scanner error is always fatal — unlike a truncated final line,
		// it does not mean "crashed mid-append". The common case is a line
		// over the 4 MiB buffer (bufio.ErrTooLong); name the offending line
		// (the one after the last line successfully scanned).
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("campaign: journal %s line %d: %w", path, lineNo+1, err)
		}
		return nil, fmt.Errorf("campaign: journal %s: %w", path, err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("campaign: journal %s: missing header", path)
	}
	// pendingErr on the final line means the process died mid-append; the
	// half-written record is simply re-run.
	return out, nil
}
