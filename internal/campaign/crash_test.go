package campaign_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"faultsec/internal/campaign"
	"faultsec/internal/encoding"
)

// crashJournalEnv tells the re-exec'd helper which journal to write; it is
// unset in normal test runs, so the helper is a no-op there.
const crashJournalEnv = "CAMPAIGN_CRASH_JOURNAL"

// TestJournalCrashHelperProcess is the child side of
// TestJournalCrashDurability: a journaled campaign the parent SIGKILLs
// mid-flight. It only runs when re-exec'd with crashJournalEnv set.
func TestJournalCrashHelperProcess(t *testing.T) {
	path := os.Getenv(crashJournalEnv)
	if path == "" {
		t.Skip("helper process for TestJournalCrashDurability")
	}
	app, sc := ftpClient1(t)
	_, err := campaign.New(campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86,
		Parallelism: 1, KeepResults: true,
		Journal: path, CheckpointEvery: 8, CheckpointSync: true,
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
}

// TestJournalCrashDurability is the crash-safety acceptance test: a
// journaled campaign in a child process is killed with SIGKILL (no
// deferred cleanup, no flushes beyond what the journal already forced),
// and a Resume over the survivor journal in this process must produce
// Stats byte-identical to an uninterrupted campaign. CheckpointSync is on
// in the child, so the periodic-fsync path is the one under test.
func TestJournalCrashDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec campaign differential is not short")
	}
	path := filepath.Join(t.TempDir(), "crash.jsonl")
	cmd := exec.Command(os.Args[0], "-test.run=TestJournalCrashHelperProcess$", "-test.count=1")
	cmd.Env = append(os.Environ(), crashJournalEnv+"="+path)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Kill once the journal shows real progress: a header plus a handful
	// of run records. Polling the file is exactly what an outside observer
	// of a crash-safe journal is entitled to do.
	deadline := time.Now().Add(2 * time.Minute)
	killed := false
	for time.Now().Before(deadline) {
		raw, err := os.ReadFile(path)
		if err == nil && strings.Count(string(raw), "\n") >= 8 {
			if err := cmd.Process.Signal(syscall.SIGKILL); err == nil {
				killed = true
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	err := cmd.Wait()
	if !killed {
		t.Fatalf("journal never showed progress before deadline (child err: %v)", err)
	}
	if err == nil {
		t.Fatal("child exited cleanly before SIGKILL landed; crash path not exercised")
	}

	app, sc := ftpClient1(t)
	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86,
		Parallelism: 1, KeepResults: true,
		Journal: path, CheckpointEvery: 8, CheckpointSync: true,
	}
	eng := campaign.New(cfg)
	resumed, err := eng.Resume(context.Background())
	if err != nil {
		t.Fatalf("resume after SIGKILL: %v", err)
	}
	if adopted := eng.Metrics().JournalAdopted; adopted == 0 {
		t.Error("resume adopted nothing from the crashed campaign's journal")
	}

	cold, err := campaign.New(campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true,
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, resumed) {
		t.Errorf("resume after SIGKILL differs from uninterrupted run\ncold: %+v\nresumed: %+v",
			statsSummary(cold), statsSummary(resumed))
	}
}
