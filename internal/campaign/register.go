package campaign

import (
	"context"
	"runtime"

	"faultsec/internal/inject"
)

func defaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Importing this package swaps the engine in as the execution backend for
// inject.Run / inject.RunExperiments / inject.RunRandom: every existing
// caller (internal/core, cmd/campaign, the faultsec facade) gets the
// snapshot fast-forward transparently. The naive path stays reachable as
// inject.RunExperimentsNaive for differential testing.
func init() {
	inject.SetBackend(func(ctx context.Context, cfg inject.Config, exps []inject.Experiment) (*inject.Stats, error) {
		return New(FromInjectConfig(cfg)).RunExperiments(ctx, exps)
	})
}
