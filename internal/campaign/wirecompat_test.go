package campaign_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"faultsec/internal/campaign"
	"faultsec/internal/encoding"
)

// updateWireFixtures regenerates the journal wire-format fixtures under
// testdata/wirecompat. The fixtures were captured before the scheme
// registry refactor; regenerating them is only legitimate when the wire
// format changes deliberately.
var updateWireFixtures = flag.Bool("update-wire-fixtures", false,
	"rewrite testdata/wirecompat journal fixtures from the current engine")

// TestJournalWireCompat pins the x86 and parity journal byte streams to
// fixtures captured before the pluggable-scheme refactor: a journaled FTP
// Client1 bitflip campaign at Parallelism 1 (deterministic record order)
// must reproduce the pre-refactor JSONL byte-for-byte — header identity
// (scheme carried as its legacy integer code), run records, and periodic
// checkpoints included.
func TestJournalWireCompat(t *testing.T) {
	if testing.Short() {
		t.Skip("full journaled campaign is not short")
	}
	app, sc := ftpClient1(t)
	for _, tc := range []struct {
		name   string
		scheme encoding.Scheme
	}{
		{"x86", encoding.SchemeX86},
		{"parity", encoding.SchemeParity},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			journal := filepath.Join(dir, "wire.jsonl")
			cfg := campaign.Config{
				App: app, Scenario: sc, Scheme: tc.scheme,
				Parallelism: 1, Journal: journal, CheckpointEvery: 64,
			}
			if _, err := campaign.New(cfg).Run(context.Background()); err != nil {
				t.Fatalf("campaign: %v", err)
			}
			got, err := os.ReadFile(journal)
			if err != nil {
				t.Fatal(err)
			}
			fixture := filepath.Join("testdata", "wirecompat",
				"ftpd-Client1-"+tc.name+".jsonl")
			if *updateWireFixtures {
				if err := os.MkdirAll(filepath.Dir(fixture), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(fixture, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", fixture, len(got))
				return
			}
			want, err := os.ReadFile(fixture)
			if err != nil {
				t.Fatalf("read fixture (run with -update-wire-fixtures to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("journal bytes differ from pre-refactor fixture %s:\n got %d bytes\nwant %d bytes\nfirst divergence at byte %d",
					fixture, len(got), len(want), firstDiff(got, want))
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
