package campaign_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"faultsec/internal/campaign"
	"faultsec/internal/encoding"
	"faultsec/internal/ftpd"
	"faultsec/internal/inject"
	"faultsec/internal/sshd"
	"faultsec/internal/target"
)

func ftpClient1(t testing.TB) (*target.App, target.Scenario) {
	t.Helper()
	app, err := ftpd.Build()
	if err != nil {
		t.Fatalf("build ftpd: %v", err)
	}
	sc, ok := app.Scenario("Client1")
	if !ok {
		t.Fatal("ftpd has no Client1")
	}
	return app, sc
}

func naiveStats(t *testing.T, app *target.App, sc target.Scenario, scheme encoding.Scheme) *inject.Stats {
	t.Helper()
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	exps := inject.Enumerate(targets, scheme)
	stats, err := inject.RunExperimentsNaive(context.Background(), inject.Config{
		App: app, Scenario: sc, Scheme: scheme, KeepResults: true,
	}, exps)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestDifferentialFTPClient1 is the engine's acceptance gate: for the full
// FTP Client1 campaign under both encodings, the snapshot fast-forward
// path and the kill+resume path must produce Stats identical to the naive
// one-full-run-per-experiment path — including per-run Results.
func TestDifferentialFTPClient1(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	for _, scheme := range []encoding.Scheme{encoding.SchemeX86, encoding.SchemeParity} {
		scheme := scheme
		t.Run(scheme.Name(), func(t *testing.T) {
			want := naiveStats(t, app, sc, scheme)
			if want.Total == 0 || want.Activated() == 0 {
				t.Fatalf("degenerate campaign: total=%d activated=%d", want.Total, want.Activated())
			}

			// Snapshot path.
			eng := campaign.New(campaign.Config{
				App: app, Scenario: sc, Scheme: scheme, KeepResults: true,
			})
			got, err := eng.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("snapshot-path stats differ from naive\nnaive: %+v\nengine: %+v",
					statsSummary(want), statsSummary(got))
			}
			m := eng.Metrics()
			if m.SnapshotRuns == 0 {
				t.Error("engine never used a snapshot restore")
			}
			if m.NaiveRuns != 0 {
				t.Errorf("engine fell back to %d naive runs", m.NaiveRuns)
			}

			// Kill + resume path.
			journal := filepath.Join(t.TempDir(), "campaign.jsonl")
			cfg := campaign.Config{
				App: app, Scenario: sc, Scheme: scheme, KeepResults: true,
				Journal: journal, CheckpointEvery: 16,
			}
			ctx, cancel := context.WithCancel(context.Background())
			cfg.Progress = func(done, total int) {
				if done >= total/3 {
					cancel()
				}
			}
			_, err = campaign.New(cfg).Run(ctx)
			if err == nil {
				t.Fatal("canceled campaign returned no error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("canceled campaign returned %v, want context.Canceled", err)
			}

			cfg.Progress = nil
			cfg.Journal = journal
			resumed, err := campaign.Resume(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, resumed) {
				t.Errorf("resumed stats differ from naive\nnaive: %+v\nresumed: %+v",
					statsSummary(want), statsSummary(resumed))
			}
		})
	}
}

func statsSummary(s *inject.Stats) map[string]any {
	return map[string]any{
		"total":   s.Total,
		"counts":  s.Counts,
		"window":  s.Window,
		"crashes": len(s.CrashLatencies),
	}
}

// TestResumeAdoptsJournaledRuns pins the resume bookkeeping: after a
// mid-flight kill, Resume must adopt the journaled prefix rather than
// re-run it, and a resume of a completed journal runs nothing at all.
func TestResumeAdoptsJournaledRuns(t *testing.T) {
	app, sc := ftpClient1(t)
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86,
		Journal: journal, CheckpointEvery: 8, Parallelism: 2,
	}

	ctx, cancel := context.WithCancel(context.Background())
	// Progress fires concurrently from every worker; the capture must be
	// atomic or the test itself races.
	var canceledAt atomic.Int64
	cfg.Progress = func(done, total int) {
		if done >= total/4 {
			canceledAt.Store(int64(done))
			cancel()
		}
	}
	if _, err := campaign.New(cfg).Run(ctx); err == nil {
		t.Fatal("canceled campaign returned no error")
	}
	if canceledAt.Load() == 0 {
		t.Fatal("campaign finished before cancellation point")
	}

	cfg.Progress = nil
	resumed, err := campaign.Resume(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Second resume: everything is journaled; no execution at all.
	eng2stats, err := campaign.Resume(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, eng2stats) {
		t.Error("re-resume of a completed journal changed the stats")
	}

	// The completed journal adopts every run.
	e := campaign.New(cfg)
	full, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Counts, resumed.Counts) {
		t.Errorf("resumed counts %v != fresh counts %v", resumed.Counts, full.Counts)
	}
}

// TestResumeAfterCancelRoundTrip is the lifecycle acceptance gate: cancel
// a journaled campaign mid-wave, reopen the journal, Resume, and the
// merged Stats must be byte-identical to an uninterrupted run — including
// per-run Results. It also pins the cancellation error contract: a
// structured inject.CanceledError that unwraps to context.Canceled and
// does not stutter "canceled: context canceled".
func TestResumeAfterCancelRoundTrip(t *testing.T) {
	app, sc := ftpClient1(t)
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true,
		Journal: journal, CheckpointEvery: 16, Parallelism: 2,
	}

	ctx, cancel := context.WithCancel(context.Background())
	cfg.Progress = func(done, total int) {
		if done >= total/3 {
			cancel()
		}
	}
	_, err := campaign.New(cfg).Run(ctx)
	if err == nil {
		t.Fatal("canceled campaign returned no error")
	}
	var ce *inject.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("canceled campaign returned %T (%v), want *inject.CanceledError", err, err)
	}
	if ce.Done <= 0 || ce.Total <= 0 || ce.Done >= ce.Total {
		t.Errorf("CanceledError reports %d/%d runs", ce.Done, ce.Total)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("CanceledError does not unwrap to context.Canceled: %v", err)
	}
	if strings.Contains(err.Error(), "canceled: context canceled") {
		t.Errorf("cancellation error still stutters: %q", err)
	}

	cfg.Progress = nil
	resumed, err := campaign.Resume(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	uncfg := cfg
	uncfg.Journal = ""
	want, err := campaign.New(uncfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, resumed) {
		t.Errorf("cancel+resume stats differ from uninterrupted run\nuninterrupted: %+v\nresumed: %+v",
			statsSummary(want), statsSummary(resumed))
	}
}

// TestEngineJournalBusy pins the engine-level single-writer guard: while
// one engine holds a journal path, a second Run or Resume on the same
// path fails with ErrJournalBusy instead of interleaving records (or,
// worse, truncating the live journal).
func TestEngineJournalBusy(t *testing.T) {
	app, sc := ftpClient1(t)
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, Journal: journal,
		Parallelism: 2,
	}

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	blocked := cfg
	blocked.Progress = func(done, total int) {
		once.Do(func() { close(started) })
		<-release
	}
	runErr := make(chan error, 1)
	go func() {
		_, err := campaign.New(blocked).Run(context.Background())
		runErr <- err
	}()
	<-started

	if _, err := campaign.New(cfg).Run(context.Background()); !errors.Is(err, campaign.ErrJournalBusy) {
		t.Errorf("duplicate Run: err = %v, want ErrJournalBusy", err)
	}
	if _, err := campaign.Resume(context.Background(), cfg); !errors.Is(err, campaign.ErrJournalBusy) {
		t.Errorf("duplicate Resume: err = %v, want ErrJournalBusy", err)
	}

	close(release)
	if err := <-runErr; err != nil {
		t.Fatalf("blocked campaign failed: %v", err)
	}
	// The journal was never touched by the refused duplicates: a resume
	// adopts every run cleanly.
	resumed, err := campaign.Resume(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := campaign.New(campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86,
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Counts, resumed.Counts) {
		t.Errorf("post-busy resume counts %v != fresh %v", resumed.Counts, fresh.Counts)
	}
}

// TestSnapshotFidelity samples experiments across both servers and checks
// that Snapshot+Restore+flip reproduces the from-scratch injected run
// exactly: same outcome, same classification detail, same crash latency.
func TestSnapshotFidelity(t *testing.T) {
	apps := make([]*target.App, 0, 2)
	fapp, err := ftpd.Build()
	if err != nil {
		t.Fatal(err)
	}
	sapp, err := sshd.Build()
	if err != nil {
		t.Fatal(err)
	}
	apps = append(apps, fapp, sapp)

	for _, app := range apps {
		sc, _ := app.Scenario("Client1")
		targets, err := inject.Targets(app)
		if err != nil {
			t.Fatal(err)
		}
		exps := inject.Enumerate(targets, encoding.SchemeX86)
		golden, err := inject.GoldenRun(app, sc, 0)
		if err != nil {
			t.Fatal(err)
		}

		// Sample broadly: every 13th experiment hits many targets, byte
		// positions, and bit positions.
		var sample []inject.Experiment
		for i := 0; i < len(exps); i += 13 {
			sample = append(sample, exps[i])
		}

		eng := campaign.New(campaign.Config{
			App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true,
		})
		got, err := eng.RunExperiments(context.Background(), sample)
		if err != nil {
			t.Fatal(err)
		}
		if eng.Metrics().SnapshotRuns == 0 {
			t.Fatalf("%s: fidelity sample exercised no snapshot restores", app.Name)
		}

		crashes := 0
		for i, ex := range sample {
			want, err := inject.RunOne(app, sc, golden, ex, 0)
			if err != nil {
				t.Fatal(err)
			}
			if want.Crashed {
				crashes++
			}
			if !reflect.DeepEqual(want, got.Results[i]) {
				t.Errorf("%s %s@%#x byte %d bit %d: snapshot run %+v != from-scratch %+v",
					app.Name, ex.Target.Func, ex.Target.Addr, ex.ByteIdx, ex.Bit,
					got.Results[i], want)
			}
		}
		if crashes == 0 {
			t.Errorf("%s: fidelity sample contains no crashes; widen the sample", app.Name)
		}
	}
}

// TestInjectRunDelegatesToEngine verifies the drop-in property: with this
// package imported, inject.Run routes through the engine and still matches
// the naive reference.
func TestInjectRunDelegatesToEngine(t *testing.T) {
	app, sc := ftpClient1(t)
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	exps := inject.Enumerate(targets, encoding.SchemeX86)
	// A slice keeps this test quick; the full diff runs in
	// TestDifferentialFTPClient1.
	if len(exps) > 64 {
		exps = exps[:64]
	}
	cfg := inject.Config{App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true}
	via, err := inject.RunExperiments(context.Background(), cfg, exps)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := inject.RunExperimentsNaive(context.Background(), cfg, exps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(naive, via) {
		t.Error("inject.RunExperiments (engine backend) differs from naive reference")
	}
}

// TestJournalRejectsForeignCampaign pins the resume safety check: a journal
// written for one campaign must not silently seed another.
func TestJournalRejectsForeignCampaign(t *testing.T) {
	app, sc := ftpClient1(t)
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, Journal: journal,
		Parallelism: 2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Progress = func(done, total int) {
		if done > 8 {
			cancel()
		}
	}
	_, _ = campaign.New(cfg).Run(ctx)

	wrong := cfg
	wrong.Progress = nil
	wrong.Scheme = encoding.SchemeParity
	if _, err := campaign.Resume(context.Background(), wrong); err == nil {
		t.Error("resume under a different scheme accepted a mismatched journal")
	}

	wrong = cfg
	wrong.Progress = nil
	sc2, _ := app.Scenario("Client2")
	wrong.Scenario = sc2
	if _, err := campaign.Resume(context.Background(), wrong); err == nil {
		t.Error("resume under a different scenario accepted a mismatched journal")
	}
}

// TestJournalToleratesTruncatedTail simulates a crash mid-append: the
// final, half-written line must be ignored and its experiment re-run.
func TestJournalToleratesTruncatedTail(t *testing.T) {
	app, sc := ftpClient1(t)
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, Journal: journal,
		Parallelism: 2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Progress = func(done, total int) {
		if done > 16 {
			cancel()
		}
	}
	_, _ = campaign.New(cfg).Run(ctx)

	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.Progress = nil
	resumed, err := campaign.Resume(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.New(campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86,
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Counts, resumed.Counts) {
		t.Errorf("truncated-journal resume counts %v != fresh %v", resumed.Counts, want.Counts)
	}
}
