package campaign_test

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"faultsec/internal/campaign"
	"faultsec/internal/encoding"
	"faultsec/internal/faultmodel"
	"faultsec/internal/httpd"
	"faultsec/internal/inject"
	"faultsec/internal/target"
)

// httpdClient3 builds the httpd app and returns the forged-cookie
// attacker scenario — the third target's analog of ftpClient1.
func httpdClient3(t testing.TB) (*target.App, target.Scenario) {
	t.Helper()
	app, err := httpd.Build()
	if err != nil {
		t.Fatalf("build httpd: %v", err)
	}
	sc, ok := app.Scenario("Client3")
	if !ok {
		t.Fatal("httpd has no Client3")
	}
	return app, sc
}

// TestModelDifferentialHTTPDClient3 extends the fault-model acceptance
// gate to the third application: for every registered model, the
// snapshot fast-forward engine must reproduce the naive
// one-full-run-per-experiment reference byte for byte — per-run Results
// included — over the httpd forged-cookie campaign. The session-cookie
// code path (check_session's strcmp loop plus the request-header state
// machine) exercises control flow the FTP scenario doesn't, so this
// catches any engine shortcut that happened to hold only for ftpd.
func TestModelDifferentialHTTPDClient3(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := httpdClient3(t)
	for _, name := range faultmodel.Names() {
		t.Run(name, func(t *testing.T) {
			cfg := campaign.Config{
				App: app, Scenario: sc, Scheme: encoding.SchemeX86,
				Model: name, KeepResults: true,
			}
			exps, err := campaign.EnumerateConfig(&cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(exps) == 0 {
				t.Fatalf("%s enumerates no experiments", name)
			}
			if len(exps) > 64 {
				exps = sampleEvery(exps, 7)
			}
			engine, err := campaign.New(cfg).RunExperiments(context.Background(), exps)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := inject.RunExperimentsNaive(context.Background(), inject.Config{
				App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true,
			}, exps)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(naive, engine) {
				t.Errorf("engine stats differ from naive reference\nnaive: %+v\nengine: %+v",
					statsSummary(naive), statsSummary(engine))
			}
		})
	}
}

// TestHTTPDResumeRoundTrip pins cancel→resume determinism on an httpd
// campaign: the journaled prefix plus the resumed remainder must equal
// an uninterrupted run byte for byte, proving the journal's index space
// holds for the registry-built third app exactly as for ftpd.
func TestHTTPDResumeRoundTrip(t *testing.T) {
	app, sc := httpdClient3(t)
	journal := filepath.Join(t.TempDir(), "httpd.jsonl")
	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, Parallelism: 2,
		Journal: journal, CheckpointEvery: 16,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Progress = func(done, total int) {
		if done >= total/3 {
			cancel()
		}
	}
	if _, err := campaign.New(cfg).Run(ctx); err == nil {
		t.Fatal("canceled campaign reported success")
	}

	cfg.Progress = nil
	resumed, err := campaign.Resume(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.New(campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, Parallelism: 2,
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, resumed) {
		t.Errorf("resumed httpd stats differ from uninterrupted run:\n got: %+v\nwant: %+v",
			statsSummary(resumed), statsSummary(want))
	}
}
