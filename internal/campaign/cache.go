package campaign

// This file is the FastFlip seam (arXiv 2403.13989): a content-addressed
// cache of per-target-group injection results, so a resubmitted campaign
// over a rebuilt image re-executes only the groups whose keyed context
// changed and adopts everything else from the store — merged through the
// same finish/Stats path as fresh runs, byte-identical to a cold run.
//
// The unit of caching is the engine's own shard: one target instruction's
// full local mutation range under one fault model. The key digests the
// code-section bytes of the function containing the target (not the whole
// image — that is the entire point: a one-function rebuild leaves every
// other function's entry key unchanged) together with everything else a
// run's outcome depends on: campaign identity (app, scenario, scheme,
// fault model, fuel, watchdog), the target's address and pristine bytes,
// the mutation count, an enumeration version, and a digest of the
// fault-free session's observables. The golden-observables digest is the
// coherence backstop for cross-section effects: results of a cached group
// also depend on code *outside* its section (the golden prefix executes
// it; a corrupted branch can jump into it), and any rebuild that changes
// what the fault-free session does changes this digest and invalidates
// every entry. See DESIGN.md §3i for the residual assumption.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"faultsec/internal/castore"
	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/faultmodel"
	"faultsec/internal/image"
	"faultsec/internal/inject"
	"faultsec/internal/x86"
)

// Cache modes. The zero value ("") means off, so existing configs are
// unaffected; "read" adopts entries but never writes, "readwrite" also
// persists completed groups.
const (
	CacheOff       = "off"
	CacheRead      = "read"
	CacheReadWrite = "readwrite"
)

// enumerationVersion is baked into every cache key; bump it whenever the
// meaning of a target's local mutation index changes (enumeration order,
// mutation semantics, classification), which invalidates every entry
// written by older code.
const enumerationVersion = 1

// NormalizeCacheMode canonicalizes a cache-mode string ("" → off) and
// rejects unknown values.
func NormalizeCacheMode(s string) (string, error) {
	switch s {
	case "", CacheOff:
		return CacheOff, nil
	case CacheRead, CacheReadWrite:
		return s, nil
	default:
		return "", fmt.Errorf("campaign: unknown cache mode %q (want off, read, or readwrite)", s)
	}
}

// cacheActive reports whether the config enables the result cache.
func (c *Config) cacheActive() bool {
	return c.Cache != nil && (c.CacheMode == CacheRead || c.CacheMode == CacheReadWrite)
}

// Entry classes. A target group's mutations are partitioned by the escape
// analysis (mutationEscapes): "local" mutations provably keep execution on
// the program's own control-flow graph and are keyed over the containing
// function's bytes; "fulltext" mutations can land anywhere in the text
// section and are keyed over the whole section. The split is what keeps
// the paper's bitflip model incremental: one wild branch flip in a group
// no longer drags the group's dozens of local flips onto the whole-image
// key.
const (
	classLocal    = "local"
	classFullText = "fulltext"
)

// cacheEntry is the stored form of one class of one target group: the
// WireResults of the class's local mutation indices plus their outcome
// summary (the class's per-shard Stats contribution). The identity fields
// double the key material in readable form for debugging; validation
// trusts only the recomputed key and the internal consistency checks.
type cacheEntry struct {
	Key      string `json:"key"`
	App      string `json:"app"`
	Scenario string `json:"scenario"`
	Scheme   string `json:"scheme"`
	Model    string `json:"model"`
	Func     string `json:"func"`
	Addr     uint32 `json:"addr"`
	// Count is the full local mutation range size for this target under
	// the model; Class and Indices identify the subset this entry holds:
	// Results[i] is the outcome of local mutation index Indices[i].
	Count   int            `json:"count"`
	Class   string         `json:"class"`
	Indices []int          `json:"indices"`
	Results []*WireResult  `json:"results"`
	Counts  map[string]int `json:"counts"`
}

// localIndex maps an experiment to its model-local mutation index within
// its target — the position of its WireResult in a cacheEntry. Bitflip
// carries the index as (ByteIdx, Bit) with bit-within-byte minor order
// (inject.Enumerate's order); every other model carries ModelIdx.
func localIndex(ex inject.Experiment) int {
	if ex.Model != "" {
		return ex.ModelIdx
	}
	return ex.ByteIdx*8 + ex.Bit
}

// classRef is the key material of one class of one target group: the
// content address plus the ascending local mutation indices the entry
// covers.
type classRef struct {
	class string
	key   string
	lis   []int
}

// cacheTarget is one cacheable target's precomputed key material: the
// full-range index map plus up to two class entries (nil when a class is
// empty — e.g. regflip groups never escape, so escape is nil).
type cacheTarget struct {
	count  int   // full local range size
	byLi   []int // exps index per local mutation index; len == count
	local  *classRef
	escape *classRef
}

// classes iterates the target's non-nil class refs.
func (ct *cacheTarget) classes() []*classRef {
	refs := make([]*classRef, 0, 2)
	if ct.local != nil {
		refs = append(refs, ct.local)
	}
	if ct.escape != nil {
		refs = append(refs, ct.escape)
	}
	return refs
}

// engineCache is one run's view of the store: per-target keys for every
// cacheable target group, built once before execution starts. The
// identity fields are copied out of the config so entry construction
// does not need the engine back.
type engineCache struct {
	store *castore.Store
	write bool
	// targets maps target address to key material; addresses absent here
	// are uncacheable for this run (incomplete local range in exps — a
	// random campaign — or no containing function) and bypass the cache
	// entirely, counted neither as hits nor misses.
	targets map[uint32]*cacheTarget

	app      string
	scenario string
	scheme   string
	model    string
	img      *image.Image
}

// buildCache derives the per-target cache keys for this run. Targets whose
// experiments do not cover their full local mutation range exactly once
// (random campaigns, hand-built experiment lists) are skipped: an entry
// must always hold a target's complete range so any subset of pending
// indices can adopt from it.
func (e *Engine) buildCache(exps []inject.Experiment, golden *classify.Golden) (*engineCache, error) {
	model, err := faultmodel.Get(e.cfg.Model)
	if err != nil {
		return nil, err
	}
	img := e.cfg.App.Image
	goldenDig := goldenDigest(golden)

	byAddr := make(map[uint32][]int)
	var order []uint32
	for i := range exps {
		addr := exps[i].Target.Addr
		if _, seen := byAddr[addr]; !seen {
			order = append(order, addr)
		}
		byAddr[addr] = append(byAddr[addr], i)
	}

	ec := &engineCache{
		store:    e.cfg.Cache,
		write:    e.cfg.CacheMode == CacheReadWrite,
		targets:  make(map[uint32]*cacheTarget, len(order)),
		app:      e.cfg.App.Name,
		scenario: e.cfg.Scenario.Name,
		scheme:   encoding.SchemeName(e.cfg.Scheme),
		model:    faultmodel.Canonical(e.cfg.Model),
		img:      img,
	}
	for _, addr := range order {
		indices := byAddr[addr]
		t := exps[indices[0]].Target
		count := model.Count(t)
		if len(indices) != count || !coversRange(exps, indices, count) {
			continue
		}
		fn, ok := funcContaining(img, addr)
		if !ok {
			continue
		}
		ct := &cacheTarget{count: count, byLi: make([]int, count)}
		for _, idx := range indices {
			ct.byLi[localIndex(exps[idx])] = idx
		}
		// Partition the local range by the escape analysis: each class gets
		// its own entry so one escaping mutation does not drag the rest of
		// the group onto the whole-text key.
		var localLis, escLis []int
		for li := 0; li < count; li++ {
			if mutationEscapes(exps[ct.byLi[li]], fn) {
				escLis = append(escLis, li)
			} else {
				localLis = append(localLis, li)
			}
		}
		if len(localLis) > 0 {
			key, err := e.groupKey(img, fn, t, count, goldenDig, classLocal, localLis)
			if err != nil {
				return nil, err
			}
			ct.local = &classRef{class: classLocal, key: key, lis: localLis}
		}
		if len(escLis) > 0 {
			key, err := e.groupKey(img, fn, t, count, goldenDig, classFullText, escLis)
			if err != nil {
				return nil, err
			}
			ct.escape = &classRef{class: classFullText, key: key, lis: escLis}
		}
		ec.targets[addr] = ct
	}
	return ec, nil
}

// coversRange reports whether the experiments at indices cover local
// mutation indices [0, count) exactly once.
func coversRange(exps []inject.Experiment, indices []int, count int) bool {
	seen := make([]bool, count)
	for _, idx := range indices {
		li := localIndex(exps[idx])
		if li < 0 || li >= count || seen[li] {
			return false
		}
		seen[li] = true
	}
	return true
}

// funcContaining finds the image function whose extent contains addr.
func funcContaining(img *image.Image, addr uint32) (image.Func, bool) {
	for _, f := range img.Funcs {
		if f.Start <= addr && addr < f.End {
			return f, true
		}
	}
	return image.Func{}, false
}

// goldenDigest hashes the fault-free session's observables — the
// cross-section coherence backstop described at the top of this file.
func goldenDigest(g *classify.Golden) string {
	h := sha256.New()
	fmt.Fprintf(h, "golden\x00%d\x00", len(g.ServerBytes))
	h.Write(g.ServerBytes)
	fmt.Fprintf(h, "\x00%v\x00%d\x00%d", g.Granted, g.ExitCode, g.Steps)
	return hex.EncodeToString(h.Sum(nil))
}

// mutationEscapes reports whether one experiment's corrupted execution can
// transfer control outside its containing function in a way that makes the
// run's outcome depend on code bytes beyond the function's section: a
// corrupted branch/call/return, a corrupted encoding that desynchronizes
// the instruction stream (different length than the pristine instruction),
// or a skip landing past the function's end. Such a group is still cached,
// but keyed over the whole text section (see groupKey), so any rebuild
// re-executes it. Corruptions that fault at the target (#UD on a dead
// encoding, privileged ops) and plain data-flow corruptions are local:
// execution continues on the program's own control-flow graph, whose
// post-rebuild semantics the golden digest vouches for. The residual
// assumption — a locally-corrupted run whose *data* flow reaches into
// changed code, e.g. a corrupted store landing inside the text section —
// is documented in DESIGN.md §3i and enforced empirically by the
// incremental identity tests.
func mutationEscapes(ex inject.Experiment, fn image.Func) bool {
	mu := ex.Mutation()
	switch mu.Kind {
	case inject.MutReg:
		// Register corruption leaves the instruction stream intact.
		return false
	case inject.MutSkip:
		land := ex.Target.Addr + uint32(mu.SkipLen)
		return land < fn.Start || land >= fn.End
	}
	corr := ex.CorruptedBytes()
	var inst x86.Inst
	if err := x86.DecodeInto(&inst, corr); err != nil {
		var de *x86.DecodeError
		if errors.As(err, &de) && !de.Truncated {
			// #UD: the run faults at the target without executing foreign
			// bytes.
			return false
		}
		// Truncated: the corrupted encoding wants bytes beyond the pristine
		// instruction — the stream desynchronizes.
		return true
	}
	if int(inst.Len) != len(ex.Target.Raw) {
		// Length change: the successor stream re-decodes from mid-
		// instruction bytes; where it goes is unknowable statically.
		return true
	}
	switch inst.Op {
	case x86.OpJmp, x86.OpJcc, x86.OpJCXZ, x86.OpLoop, x86.OpLoopE, x86.OpLoopNE, x86.OpCall:
		if inst.Form != x86.FormRel {
			return true // indirect target: state-dependent
		}
		tgt := ex.Target.Addr + uint32(inst.Len) + uint32(inst.Rel)
		if tgt < fn.Start || tgt >= fn.End {
			return true
		}
		if inst.Op == x86.OpJmp {
			return false // unconditional, in-range: no fall-through edge
		}
	case x86.OpRet:
		return true // returns through a possibly-misaligned stack
	}
	// Fall-through: the corrupted instruction's successor must itself lie
	// inside the function. A terminator corrupted into a plain data op — a
	// ret turned push at the function's last byte — sails off the end into
	// whatever function the linker placed next.
	next := ex.Target.Addr + uint32(inst.Len)
	return next < fn.Start || next >= fn.End
}

// groupKey derives the content address of one class of one target group.
// For the "local" class — mutations whose corrupted execution provably
// stays inside the containing function — the section material is the
// function's bytes: the FastFlip seam that lets entries survive rebuilds
// of other functions. The "fulltext" class digests the whole text section
// instead: still perfectly cacheable across identical rebuilds, but
// invalidated by any text change, because its corrupted control flow can
// land anywhere. The covered index list is key material too, so a stale
// partition (different decode, different escape verdicts) can never
// validate against a fresh key.
func (e *Engine) groupKey(img *image.Image, fn image.Func, t inject.Target,
	count int, goldenDig, class string, lis []int) (string, error) {
	lo, hi := fn.Start-img.TextBase, fn.End-img.TextBase
	if int(hi) > len(img.Text) || lo > hi {
		return "", fmt.Errorf("campaign: function %s extent [%#x,%#x) outside text", fn.Name, fn.Start, fn.End)
	}
	h := sha256.New()
	writeKeyField(h, "campaigncache", fmt.Sprint(enumerationVersion))
	writeKeyField(h, "app", e.cfg.App.Name)
	writeKeyField(h, "scenario", e.cfg.Scenario.Name)
	writeKeyField(h, "scheme", encoding.SchemeName(e.cfg.Scheme))
	writeKeyField(h, "model", faultmodel.Canonical(e.cfg.Model))
	writeKeyField(h, "fuel", fmt.Sprint(e.cfg.effectiveFuel()))
	writeKeyField(h, "watchdog", fmt.Sprint(e.cfg.Watchdog))
	writeKeyField(h, "golden", goldenDig)
	writeKeyField(h, "func", fmt.Sprintf("%s %#x %#x", fn.Name, fn.Start, fn.End))
	writeKeyField(h, "section", "")
	h.Write(img.Text[lo:hi])
	if class == classFullText {
		writeKeyField(h, "fulltext", fmt.Sprint(img.TextBase))
		h.Write(img.Text)
	}
	writeKeyField(h, "addr", fmt.Sprint(t.Addr))
	writeKeyField(h, "raw", string(t.Raw))
	writeKeyField(h, "count", fmt.Sprint(count))
	writeKeyField(h, "class", class)
	writeKeyField(h, "indices", fmt.Sprint(lis))
	return hex.EncodeToString(h.Sum(nil)), nil
}

// writeKeyField frames one labeled field into the key hash (length-free
// framing is fine here: the NUL separators cannot appear in the labels and
// every variable-length value is either last in its field or hashed).
func writeKeyField(w io.Writer, label, value string) {
	fmt.Fprintf(w, "%s\x00%s\x00", label, value)
}

// adoptGroup consults the store for one pending group, class by class, and
// finishes every pending experiment covered by a valid entry (which
// journals and streams them exactly like fresh runs — a warm campaign is
// resumable and fleet-mergeable like a cold one). Returns the indices
// still pending, in their original order; hit/miss/invalid counters are
// updated here. A partial adoption is normal on a rebuilt image: the
// function-keyed local class hits while the whole-text-keyed escape class
// misses, and only the latter's mutations re-execute.
func (e *Engine) adoptGroup(ec *engineCache, g *group, exps []inject.Experiment,
	finish func(int, inject.Result)) []int {
	ct, ok := ec.targets[g.addr]
	if !ok {
		return g.indices
	}
	rem := g.indices
	for _, ref := range ct.classes() {
		pos := make(map[int]int, len(ref.lis)) // local index -> entry slot
		for i, li := range ref.lis {
			pos[li] = i
		}
		var mine, rest []int
		for _, idx := range rem {
			if _, member := pos[localIndex(exps[idx])]; member {
				mine = append(mine, idx)
			} else {
				rest = append(rest, idx)
			}
		}
		if len(mine) == 0 {
			continue
		}
		ent, err := ec.load(ref, ct.count)
		if err != nil {
			var ce *castore.CorruptError
			if errors.As(err, &ce) || errors.Is(err, errEntryInvalid) {
				e.cacheInvalid.Add(1)
			}
			e.cacheMisses.Add(int64(len(mine)))
			continue
		}
		for _, idx := range mine {
			finish(idx, ent.Results[pos[localIndex(exps[idx])]].ToResult(exps[idx]))
		}
		e.cacheHits.Add(int64(len(mine)))
		rem = rest
	}
	return rem
}

// errEntryInvalid reports an entry that decoded but failed semantic
// validation (wrong count, impossible outcome, summary mismatch).
var errEntryInvalid = errors.New("campaign: cache entry failed validation")

// load fetches and validates one class entry. Every failure is a miss; a
// corrupted or semantically invalid entry can never surface results.
func (ec *engineCache) load(ref *classRef, count int) (*cacheEntry, error) {
	payload, err := ec.store.Get(ref.key)
	if err != nil {
		return nil, err
	}
	var ent cacheEntry
	if err := json.Unmarshal(payload, &ent); err != nil {
		return nil, fmt.Errorf("%w: %v", errEntryInvalid, err)
	}
	if ent.Key != ref.key || ent.Count != count || ent.Class != ref.class ||
		len(ent.Indices) != len(ref.lis) || len(ent.Results) != len(ref.lis) {
		return nil, errEntryInvalid
	}
	for i, li := range ent.Indices {
		if li != ref.lis[i] {
			return nil, errEntryInvalid
		}
	}
	recount := make(map[string]int, len(ent.Counts))
	for _, wr := range ent.Results {
		if wr == nil || wr.Outcome < classify.OutcomeNA || wr.Outcome > classify.OutcomeBRK {
			return nil, errEntryInvalid
		}
		recount[wr.Outcome.String()]++
	}
	if len(recount) != len(ent.Counts) {
		return nil, errEntryInvalid
	}
	for k, n := range ent.Counts {
		if recount[k] != n {
			return nil, errEntryInvalid
		}
	}
	return &ent, nil
}

// writeBack persists one completed group's classes (up to two entries).
// results is the campaign-wide result slice; the group's slots were filled
// by this worker's finish calls (and journal or cache adoption before
// workers started), so the read is race-free even when only part of the
// group re-executed. Returns how many new entries landed on disk —
// duplicate writes of identical content are verified no-ops, and a
// content mismatch under the same key fails loudly (it would mean the
// key missed an input the outcome depends on).
func (ec *engineCache) writeBack(addr uint32, exps []inject.Experiment,
	results []inject.Result) (int, error) {
	if !ec.write {
		return 0, nil
	}
	ct, ok := ec.targets[addr]
	if !ok {
		return 0, nil
	}
	var fnName string
	if fn, ok := funcContaining(ec.img, addr); ok {
		fnName = fn.Name
	}
	wrote := 0
	for _, ref := range ct.classes() {
		ent := &cacheEntry{
			Key:      ref.key,
			App:      ec.app,
			Scenario: ec.scenario,
			Scheme:   ec.scheme,
			Model:    ec.model,
			Func:     fnName,
			Addr:     addr,
			Count:    ct.count,
			Class:    ref.class,
			Indices:  ref.lis,
			Results:  make([]*WireResult, len(ref.lis)),
			Counts:   make(map[string]int, 4),
		}
		for i, li := range ref.lis {
			r := results[ct.byLi[li]]
			ent.Results[i] = Wire(r)
			ent.Counts[r.Outcome.String()]++
		}
		payload, err := json.Marshal(ent)
		if err != nil {
			return wrote, err
		}
		w, err := ec.store.Put(ref.key, payload)
		if err != nil {
			return wrote, err
		}
		if w {
			wrote++
		}
	}
	return wrote, nil
}

// CacheView is the fleet coordinator's handle on the result cache: the
// exact key derivation and entry validation the engine uses, exposed per
// target group so a coordinator can adopt cached groups before leasing
// any shard and persist completed groups when shards settle. Counter
// methods are safe for concurrent use.
type CacheView struct {
	ec *engineCache

	hits    atomic.Int64
	misses  atomic.Int64
	writes  atomic.Int64
	invalid atomic.Int64
}

// NewCacheView builds a cache view for cfg over its full experiment
// enumeration (cfg.App must already be scheme-resolved — EnumerateConfig
// does that). It returns (nil, nil) when cfg's cache is off. The
// fault-free golden session runs once here: its observables are part of
// every key (see the coherence discussion at the top of this file).
func NewCacheView(cfg Config, exps []inject.Experiment) (*CacheView, error) {
	if !cfg.cacheActive() {
		return nil, nil
	}
	golden, err := inject.GoldenRun(cfg.App, cfg.Scenario, cfg.effectiveFuel())
	if err != nil {
		return nil, err
	}
	ec, err := New(cfg).buildCache(exps, golden)
	if err != nil {
		return nil, err
	}
	return &CacheView{ec: ec}, nil
}

// Adopt consults the store for the target group at addr, class by class,
// and returns the rehydrated results for the adoptable subset of the given
// pending experiment indices (indices already adopted from a journal are
// simply not requested). The map may cover only some of pending — on a
// rebuilt image the function-keyed local class hits while the whole-text
// escape class misses — and is nil when nothing was adopted.
func (v *CacheView) Adopt(addr uint32, exps []inject.Experiment, pending []int) map[int]inject.Result {
	ct, ok := v.ec.targets[addr]
	if !ok {
		return nil
	}
	var out map[int]inject.Result
	for _, ref := range ct.classes() {
		pos := make(map[int]int, len(ref.lis))
		for i, li := range ref.lis {
			pos[li] = i
		}
		var mine []int
		for _, idx := range pending {
			if _, member := pos[localIndex(exps[idx])]; member {
				mine = append(mine, idx)
			}
		}
		if len(mine) == 0 {
			continue
		}
		ent, err := v.ec.load(ref, ct.count)
		if err != nil {
			var ce *castore.CorruptError
			if errors.As(err, &ce) || errors.Is(err, errEntryInvalid) {
				v.invalid.Add(1)
			}
			v.misses.Add(int64(len(mine)))
			continue
		}
		if out == nil {
			out = make(map[int]inject.Result, len(pending))
		}
		for _, idx := range mine {
			out[idx] = ent.Results[pos[localIndex(exps[idx])]].ToResult(exps[idx])
		}
		v.hits.Add(int64(len(mine)))
	}
	return out
}

// StoreGroup persists the completed target group at addr (up to one entry
// per class) when the view is in readwrite mode, the group is cacheable,
// and every index of its full local range has a result (have). Duplicate
// identical writes are verified no-ops; a same-key content mismatch fails
// loudly.
func (v *CacheView) StoreGroup(addr uint32, exps []inject.Experiment,
	results []inject.Result, have []bool) (int, error) {
	ct, ok := v.ec.targets[addr]
	if !ok || !v.ec.write {
		return 0, nil
	}
	for _, idx := range ct.byLi {
		if !have[idx] {
			return 0, nil
		}
	}
	wrote, err := v.ec.writeBack(addr, exps, results)
	v.writes.Add(int64(wrote))
	return wrote, err
}

// Counters reports the view's (hits, misses, writes, invalid) totals —
// runs adopted, runs missed, entries written, entries rejected.
func (v *CacheView) Counters() (hits, misses, writes, invalid int64) {
	return v.hits.Load(), v.misses.Load(), v.writes.Load(), v.invalid.Load()
}
