package campaign_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"faultsec/internal/campaign"
	"faultsec/internal/encoding"
)

// TestJournalLegacySchemeHeader pins backward compatibility: a journal
// whose header omits the scheme entirely (the pre-scheme wire format; all
// such journals were x86) must resume under an x86 config, and must be
// refused under any other scheme.
func TestJournalLegacySchemeHeader(t *testing.T) {
	app, sc := ftpClient1(t)
	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, Parallelism: 2,
	}
	exps, err := campaign.EnumerateConfig(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "legacy.jsonl")
	header := fmt.Sprintf(`{"type":"header","app":%q,"scenario":%q,"total":%d,"fuel":400000}`+"\n",
		app.Name, sc.Name, len(exps))
	if err := os.WriteFile(journal, []byte(header), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.Journal = journal
	got, err := campaign.Resume(context.Background(), cfg)
	if err != nil {
		t.Fatalf("resume of a legacy (scheme-omitted) journal under x86: %v", err)
	}
	want, err := campaign.New(campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, Parallelism: 2,
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("legacy-journal resume differs from an uninterrupted x86 run")
	}

	// The same legacy journal must not seed a parity campaign, and the
	// refusal must name both schemes.
	if err := os.WriteFile(journal, []byte(header), 0o644); err != nil {
		t.Fatal(err)
	}
	wrong := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeParity, Parallelism: 2,
		Journal: journal,
	}
	_, err = campaign.Resume(context.Background(), wrong)
	if err == nil {
		t.Fatal("legacy journal accepted under parity")
	}
	for _, name := range []string{"x86", "parity"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("cross-scheme refusal does not name %q: %v", name, err)
		}
	}
}

// TestJournalCrossSchemeRefusal pins the refusal shape for registry
// schemes: a journal written under one scheme is refused under another,
// with both scheme names in the error, on both Resume and ReplayJournal.
func TestJournalCrossSchemeRefusal(t *testing.T) {
	app, sc := ftpClient1(t)
	journal := filepath.Join(t.TempDir(), "dupcmp.jsonl")
	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeDupCompare, Parallelism: 2,
		Journal: journal,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Progress = func(done, total int) {
		if done > 8 {
			cancel()
		}
	}
	_, _ = campaign.New(cfg).Run(ctx)

	// The header of a registry scheme travels by name, not by a legacy
	// integer code.
	firstLine := readFirstLine(t, journal)
	var header map[string]any
	if err := json.Unmarshal([]byte(firstLine), &header); err != nil {
		t.Fatal(err)
	}
	if got := header["schemeName"]; got != "dupcmp" {
		t.Errorf("header schemeName = %v, want dupcmp (line: %s)", got, firstLine)
	}
	if _, hasCode := header["scheme"]; hasCode {
		t.Errorf("registry-scheme header carries a legacy integer code: %s", firstLine)
	}

	for _, wrongScheme := range []encoding.Scheme{encoding.SchemeX86, encoding.SchemeEncodedBranch} {
		wrong := cfg
		wrong.Progress = nil
		wrong.Scheme = wrongScheme
		_, err := campaign.Resume(context.Background(), wrong)
		if err == nil {
			t.Fatalf("dupcmp journal accepted under %s", wrongScheme.Name())
		}
		for _, name := range []string{"dupcmp", wrongScheme.Name()} {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("refusal under %s does not name %q: %v", wrongScheme.Name(), name, err)
			}
		}
		wrongExps, err := campaign.EnumerateConfig(&wrong)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := campaign.ReplayJournal(&wrong, wrongExps); err == nil {
			t.Fatalf("ReplayJournal accepted a dupcmp journal under %s", wrongScheme.Name())
		}
	}
}

// TestSchemeResumeRoundTrip pins cancel→resume determinism under a
// compile-time scheme: a dupcmp campaign canceled mid-flight and resumed
// must produce Stats identical to an uninterrupted run — the journal's
// index space holds for hardened images exactly as it does for x86.
func TestSchemeResumeRoundTrip(t *testing.T) {
	app, sc := ftpClient1(t)
	journal := filepath.Join(t.TempDir(), "dupcmp.jsonl")
	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeDupCompare, Parallelism: 2,
		Journal: journal,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Progress = func(done, total int) {
		if done > 32 {
			cancel()
		}
	}
	if _, err := campaign.New(cfg).Run(ctx); err == nil {
		t.Fatal("canceled campaign reported success")
	}

	cfg.Progress = nil
	resumed, err := campaign.Resume(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.New(campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeDupCompare, Parallelism: 2,
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, resumed) {
		t.Errorf("resumed dupcmp stats differ from uninterrupted run:\n got: %+v\nwant: %+v", resumed, want)
	}
}

func readFirstLine(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := strings.IndexByte(string(data), '\n')
	if i < 0 {
		t.Fatalf("journal %s has no complete line", path)
	}
	return string(data[:i])
}
