package campaign

import (
	"context"
	"errors"
	"fmt"

	"faultsec/internal/encoding"
	"faultsec/internal/faultmodel"
	"faultsec/internal/inject"
)

// This file is the campaign package's fleet seam: the shard-scoped engine
// entry point a worker executes, and exported journal access so the fleet
// coordinator writes the authoritative run log through the exact machinery
// (format, flush discipline, single-writer registry) the local engine
// uses. A journal written by a fleet coordinator is indistinguishable from
// one written by a single-process engine with the same Config, so a
// campaign canceled under one executor resumes under the other.

// RunShard executes a shard — a subset of a larger campaign's experiment
// enumeration — on the engine and reports every completed run through
// emit, keyed by the caller's global experiment index (globals[i] is the
// campaign-global index of shard[i]). Shard execution is journal-free by
// construction: the coordinator that planned the shard owns the journal,
// so cfg.Journal must be empty. emit is called concurrently from worker
// goroutines, like Config.Progress.
//
// Because every run restores a snapshot captured from the same
// deterministic golden sweep the full campaign would take, a shard's
// results are byte-identical to the same experiments' results inside a
// single-process campaign — the property that lets a coordinator retry a
// shard on a different worker and still merge byte-identical Stats.
func (e *Engine) RunShard(ctx context.Context, shard []inject.Experiment,
	globals []int, emit func(idx int, res inject.Result)) error {
	if len(globals) != len(shard) {
		return fmt.Errorf("campaign: shard has %d experiments but %d global indices",
			len(shard), len(globals))
	}
	if e.cfg.Journal != "" {
		return errors.New("campaign: shards run journal-free; the coordinator owns the journal")
	}
	prev := e.cfg.OnResult
	e.cfg.OnResult = func(idx int, res inject.Result) {
		emit(globals[idx], res)
		if prev != nil {
			prev(idx, res)
		}
	}
	_, err := e.run(ctx, shard, nil, nil)
	return err
}

// Journal is the exported handle over the campaign run journal for
// alternative executors (the fleet coordinator). It shares the JSONL
// format, per-record flush discipline, checkpoint cadence, and process-
// local single-writer registry with the engine's own journaling.
type Journal struct {
	w *journalWriter
}

// OpenJournal claims cfg.Journal and opens it for appending. With trunc
// set the file is truncated and a fresh header for (cfg, total) written;
// otherwise the journal is opened append-only for a resume (replay it with
// ReplayJournal after opening — claiming first keeps a concurrent writer
// from appending to the file mid-replay). errors.Is(err, ErrJournalBusy)
// identifies a path that already has an active writer in this process.
func OpenJournal(cfg *Config, total int, trunc bool) (*Journal, error) {
	if cfg.Journal == "" {
		return nil, errors.New("campaign: OpenJournal needs cfg.Journal")
	}
	w, err := newJournalWriter(cfg.Journal, trunc, cfg.effectiveCheckpointEvery(), cfg.CheckpointSync)
	if err != nil {
		return nil, err
	}
	if trunc {
		if err := w.writeHeader(journalIdentity(cfg, total)); err != nil {
			err = fmt.Errorf("campaign: journal header: %w", err)
			if aerr := w.abort(); aerr != nil {
				err = fmt.Errorf("%w (journal abort: %v)", err, aerr)
			}
			return nil, err
		}
	}
	return &Journal{w: w}, nil
}

// Append journals one completed run under its global experiment index.
// done and counts describe overall campaign progress and feed the periodic
// checkpoint records. Safe for concurrent use.
func (j *Journal) Append(idx int, res inject.Result, done int, counts map[string]int) error {
	return j.w.writeRun(idx, res, done, counts)
}

// Close writes a final checkpoint, closes the file, and releases the
// path claim.
func (j *Journal) Close(done int, counts map[string]int) error {
	return j.w.close(done, counts)
}

// Abort releases the journal without a final checkpoint (the error-path
// counterpart of Close). When this journal created the file and no runs
// were appended, the header-only orphan is removed.
func (j *Journal) Abort() error { return j.w.abort() }

// ReplayJournal reads the journal at cfg.Journal and returns the recorded
// results keyed by global experiment index, rehydrated against exps (the
// campaign's full deterministic enumeration). The journal header must
// match cfg's identity; a truncated final line is tolerated exactly as in
// Resume.
func ReplayJournal(cfg *Config, exps []inject.Experiment) (map[int]inject.Result, error) {
	skip, err := readJournal(cfg.Journal, journalIdentity(cfg, len(exps)))
	if err != nil {
		return nil, err
	}
	out := make(map[int]inject.Result, len(skip))
	for idx, wr := range skip {
		out[idx] = wr.ToResult(exps[idx])
	}
	return out, nil
}

// EnumerateConfig returns the campaign's full deterministic experiment
// enumeration for cfg — the index space shards, journals, and fleet
// protocols all key into. The enumeration is cfg.Model's (resolved through
// the faultmodel registry; "" means bitflip), so two processes agree on
// what index i means only if they agree on the model — which is why the
// model travels in journal headers and fleet shard specs.
func EnumerateConfig(cfg *Config) ([]inject.Experiment, error) {
	m, err := faultmodel.Get(cfg.Model)
	if err != nil {
		return nil, err
	}
	// Resolve the scheme's image first: compile-time schemes rebuild the
	// app, and the hardened image has its own target set (the enumeration
	// below and every later engine stage — golden run, snapshots — must
	// see the same app, which is why cfg is mutated in place).
	app, err := cfg.App.ForScheme(cfg.Scheme)
	if err != nil {
		return nil, fmt.Errorf("campaign: resolve scheme %s: %w", encoding.SchemeName(cfg.Scheme), err)
	}
	cfg.App = app
	targets, err := inject.Targets(cfg.App)
	if err != nil {
		return nil, err
	}
	return faultmodel.Enumerate(targets, cfg.Scheme, m), nil
}
