// Package campaign is the production campaign engine underneath the
// study's injection experiments: a sharded, crash-safe, resumable executor
// that replaces the naive one-run-per-experiment loop in internal/inject.
//
// Three ideas make it fast and durable:
//
//   - Snapshot fast-forward. All experiments that flip bits of the same
//     target instruction share an identical golden prefix from _start to
//     the injection breakpoint, and targets themselves share most of their
//     prefixes with each other. The engine therefore runs one golden sweep
//     with every target's breakpoint armed at once, capturing the machine
//     (vm.Snapshot) and session kernel (kernel.Snapshot) state at each
//     first hit — the entire prefix work of a campaign collapses into a
//     single fault-free session. Each of a target's ~8-48 bit-flip runs
//     then restores its snapshot instead of re-executing from _start.
//     Targets whose breakpoint is never reached are even cheaper: the
//     fault-free session outcome is already known from the golden run, so
//     their experiments are synthesized as NA without executing anything.
//     Sweeps run in bounded waves (maxResidentSnapshots) so a 100k-run
//     random campaign over thousands of distinct instructions does not
//     hold thousands of address-space copies live at once.
//
//   - Sharding. Experiments are grouped by target address and the groups
//     are distributed over a worker pool, so snapshot reuse is conflict
//     free and wall-clock scales with cores.
//
//   - Journaling. Every completed run is appended to a JSONL journal with
//     periodic checkpoint records. Resume replays the journal, skips every
//     recorded experiment, and merges journaled and fresh results into the
//     exact Stats an uninterrupted campaign produces.
//
// Importing this package registers it as the execution backend for
// inject.Run / inject.RunExperiments / inject.RunRandom (see register.go),
// making it a drop-in replacement for existing callers.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"faultsec/internal/castore"
	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/faultmodel"
	"faultsec/internal/inject"
	"faultsec/internal/kernel"
	"faultsec/internal/target"
	"faultsec/internal/vm"
)

// Config parameterizes one engine campaign. The first block mirrors
// inject.Config; the second is engine-specific.
type Config struct {
	App      *target.App
	Scenario target.Scenario
	Scheme   encoding.Scheme
	// Model is the fault-model name resolved through internal/faultmodel;
	// "" means "bitflip", the paper's single-bit model. The model decides
	// the campaign's experiment enumeration — and with it the global index
	// space journals and fleet shards key into — so it is part of the
	// campaign identity (journal headers, shard specs).
	Model string
	// Fuel is the per-run instruction budget; 0 means inject.DefaultFuel.
	Fuel uint64
	// Parallelism is the worker count; 0 means GOMAXPROCS.
	Parallelism int
	// KeepResults retains every per-run Result in Stats.Results.
	KeepResults bool
	// Watchdog enables the control-flow checker for every run.
	Watchdog bool
	// Progress, when non-nil, receives (done, total) after each run.
	Progress func(done, total int)
	// OnResult, when non-nil, receives every completed fresh run with its
	// index into the experiment list — the streaming hook fleet workers
	// use to ship shard results back as they finish. Like Progress it is
	// called concurrently from worker goroutines; journal-adopted results
	// are not replayed through it.
	OnResult func(idx int, res inject.Result)

	// Journal is the path of the JSONL run journal; "" disables
	// journaling (and with it crash-safety and Resume).
	Journal string
	// CheckpointEvery is the journal checkpoint cadence in runs; 0 means
	// DefaultCheckpointEvery.
	CheckpointEvery int
	// CheckpointSync fsyncs the journal after every periodic checkpoint,
	// bounding data loss under power failure (not just process death) to
	// one checkpoint interval. The final checkpoint is always synced.
	CheckpointSync bool
	// CacheMode controls the content-addressed result cache: "" or "off"
	// disables it, "read" adopts matching entries from Cache, "readwrite"
	// also persists completed target groups. See cache.go.
	CacheMode string
	// Cache is the shard-result store consulted per CacheMode; nil
	// disables caching regardless of mode.
	Cache *castore.Store
	// NoSnapshot forces the naive from-scratch path for every run. It
	// exists for differential testing and benchmarking against the
	// snapshot fast-forward.
	NoSnapshot bool
	// NoICache disables the VM's predecoded instruction cache on every
	// machine the engine creates. Like NoSnapshot it exists for
	// differential testing and for the ablation benchmarks; outcomes must
	// be bit-identical either way.
	NoICache bool
	// NoUops routes every retirement through the VM's legacy interpreter
	// switch instead of the bound micro-op handlers. Like NoICache it is
	// an ablation/differential-testing knob; outcomes must be
	// bit-identical either way.
	NoUops bool
	// NoDirtyTracking disables the VM's dirty-page bitmaps, forcing every
	// snapshot restore to copy the full address space. Ablation knob;
	// outcomes must be bit-identical either way.
	NoDirtyTracking bool
	// NoTraces disables superblock trace fusion, dispatching every
	// retirement individually. Ablation knob; outcomes must be
	// bit-identical either way.
	NoTraces bool
}

// DefaultCheckpointEvery is the journal checkpoint cadence.
const DefaultCheckpointEvery = 256

// maxResidentSnapshots bounds how many target snapshots are live at once.
// Each snapshot deep-copies the address space, so an unbounded table would
// cost (distinct targets × memory image) — fine for the selective-
// exhaustive campaigns (~10s of targets), ruinous for random campaigns
// over the whole text segment. Targets are swept in waves of this size;
// each wave costs one extra golden session.
const maxResidentSnapshots = 256

func (c *Config) effectiveFuel() uint64 {
	if c.Fuel == 0 {
		return inject.DefaultFuel
	}
	return c.Fuel
}

func (c *Config) effectiveWorkers(n int) int {
	w := c.Parallelism
	if w <= 0 {
		w = defaultParallelism()
	}
	if w > n && n > 0 {
		w = n
	}
	return w
}

func (c *Config) effectiveCheckpointEvery() int {
	if c.CheckpointEvery <= 0 {
		return DefaultCheckpointEvery
	}
	return c.CheckpointEvery
}

// FromInjectConfig adapts an inject.Config (no journal, snapshots on).
func FromInjectConfig(cfg inject.Config) Config {
	return Config{
		App:         cfg.App,
		Scenario:    cfg.Scenario,
		Scheme:      cfg.Scheme,
		Fuel:        cfg.Fuel,
		Parallelism: cfg.Parallelism,
		KeepResults: cfg.KeepResults,
		Watchdog:    cfg.Watchdog,
		Progress:    cfg.Progress,
	}
}

// Engine executes one campaign. Its progress and metrics accessors are
// safe for concurrent use while the campaign runs (cmd/campaignd polls
// them from HTTP handlers).
type Engine struct {
	cfg Config

	total     atomic.Int64
	done      atomic.Int64
	preloaded atomic.Int64 // journaled runs adopted by Resume
	counts    [6]atomic.Int64

	groupsTotal atomic.Int64 // target-address groups (engine-level shards) scheduled
	groupsDone  atomic.Int64 // groups whose pending experiments all finished

	prefixRuns      atomic.Int64 // golden prefix executions (one per reached target)
	snapshotRuns    atomic.Int64 // runs served by snapshot restore
	synthesizedRuns atomic.Int64 // NA runs synthesized from an unreached prefix
	naiveRuns       atomic.Int64 // runs executed from _start (NoSnapshot)

	icacheHits   atomic.Int64 // VM retirements served by the predecoded icache
	icacheMisses atomic.Int64 // VM retirements that decoded on an icache miss

	cacheHits    atomic.Int64 // runs adopted from the content-addressed store
	cacheMisses  atomic.Int64 // runs executed because their group had no usable entry
	cacheWrites  atomic.Int64 // entries persisted to the store
	cacheInvalid atomic.Int64 // entries rejected as corrupt or inconsistent

	traceHits        atomic.Int64 // fused-trace executions
	traceExits       atomic.Int64 // fused traces that exited early
	dirtyBytesCopied atomic.Int64 // bytes copied by O(dirty) restores
	fullRestores     atomic.Int64 // full-image snapshot restores

	workers    atomic.Int64
	busyNanos  atomic.Int64
	startNanos atomic.Int64
	endNanos   atomic.Int64
}

// New returns an engine for cfg.
func New(cfg Config) *Engine { return &Engine{cfg: cfg} }

// Run executes the full selective-exhaustive campaign for the configured
// app/scenario/scheme. An existing journal at cfg.Journal is truncated;
// use Resume to continue one.
func (e *Engine) Run(ctx context.Context) (*inject.Stats, error) {
	exps, err := e.enumerate()
	if err != nil {
		return nil, err
	}
	return e.RunExperiments(ctx, exps)
}

// RunExperiments executes an explicit experiment list (the inject backend
// entry point; also used by random campaigns).
func (e *Engine) RunExperiments(ctx context.Context, exps []inject.Experiment) (*inject.Stats, error) {
	var w *journalWriter
	if e.cfg.Journal != "" {
		if got, want := inject.ModelOf(exps), faultmodel.Canonical(e.cfg.Model); got != want {
			// The journal header records cfg.Model as the index space; an
			// experiment list from a different model would journal indices
			// that mean different injections on resume.
			return nil, fmt.Errorf("campaign: experiment list is fault model %q but config (and journal identity) say %q", got, want)
		}
		var err error
		w, err = newJournalWriter(e.cfg.Journal, true, e.cfg.effectiveCheckpointEvery(), e.cfg.CheckpointSync)
		if err != nil {
			return nil, err
		}
		if err := w.writeHeader(journalIdentity(&e.cfg, len(exps))); err != nil {
			err = fmt.Errorf("campaign: journal header: %w", err)
			if aerr := w.abort(); aerr != nil {
				err = fmt.Errorf("%w (journal abort: %v)", err, aerr)
			}
			return nil, err
		}
	}
	return e.run(ctx, exps, nil, w)
}

// Resume continues the campaign recorded in cfg.Journal: experiments with
// journaled results are adopted verbatim, the remainder is executed, and
// the merged Stats is identical to an uninterrupted run. The journal keeps
// growing in place, so a resumed campaign is itself resumable.
func Resume(ctx context.Context, cfg Config) (*inject.Stats, error) {
	return New(cfg).Resume(ctx)
}

// Resume is the method form of the package-level Resume; it leaves the
// caller a handle for Progress and Metrics while the campaign runs.
func (e *Engine) Resume(ctx context.Context) (*inject.Stats, error) {
	if e.cfg.Journal == "" {
		return nil, errors.New("campaign: Resume needs cfg.Journal")
	}
	exps, err := e.enumerate()
	if err != nil {
		return nil, err
	}
	// Claim the writer before replaying the journal: if another engine is
	// appending to this path, Resume must fail up front rather than read a
	// moving file and race a second writer onto it.
	w, err := newJournalWriter(e.cfg.Journal, false, e.cfg.effectiveCheckpointEvery(), e.cfg.CheckpointSync)
	if err != nil {
		return nil, err
	}
	skip, err := readJournal(e.cfg.Journal, journalIdentity(&e.cfg, len(exps)))
	if err != nil {
		if aerr := w.abort(); aerr != nil {
			err = fmt.Errorf("%w (journal abort: %v)", err, aerr)
		}
		return nil, err
	}
	return e.run(ctx, exps, skip, w)
}

func (e *Engine) enumerate() ([]inject.Experiment, error) {
	return EnumerateConfig(&e.cfg)
}

// group is one shard: every pending experiment targeting one instruction.
type group struct {
	addr    uint32
	indices []int
}

// groupByTarget shards pending experiments by target address, in first-
// appearance (address-enumeration) order.
func groupByTarget(exps []inject.Experiment, skip map[int]*WireResult) []group {
	byAddr := make(map[uint32]int)
	var out []group
	for i := range exps {
		if _, done := skip[i]; done {
			continue
		}
		addr := exps[i].Target.Addr
		gi, ok := byAddr[addr]
		if !ok {
			gi = len(out)
			byAddr[addr] = gi
			out = append(out, group{addr: addr})
		}
		out[gi].indices = append(out[gi].indices, i)
	}
	return out
}

// snapEntry is one target's captured prefix state.
type snapEntry struct {
	m *vm.Snapshot
	k *kernel.Snapshot
	// activationSteps is the retired-instruction count at the breakpoint.
	activationSteps uint64
	// bytesAtActivation is the server-to-client byte count at the
	// breakpoint (transient-window accounting starts here).
	bytesAtActivation int
}

// captureSnapshots runs one golden sweep with every wave target's
// breakpoint armed and snapshots the machine+kernel at each first hit.
// Execution is unperturbed by armed breakpoints, so each snapshot is
// identical to the state a single-breakpoint prefix run would reach. The
// sweep stops as soon as the last breakpoint is collected; targets whose
// breakpoint the fault-free session never reaches are absent from the
// returned table (their experiments classify as NA without execution).
func (e *Engine) captureSnapshots(wave []group, cfValid map[uint32]struct{},
	fuel uint64) (map[uint32]*snapEntry, error) {
	client := e.cfg.Scenario.New()
	k := kernel.New(client)
	ld, err := e.cfg.App.Image.Load(k, nil)
	if err != nil {
		return nil, fmt.Errorf("campaign: sweep load: %w", err)
	}
	m := ld.Machine
	m.Fuel = fuel
	m.CFValid = cfValid
	m.NoICache = e.cfg.NoICache
	m.NoUops = e.cfg.NoUops
	m.NoDirtyTracking = e.cfg.NoDirtyTracking
	m.NoTraces = e.cfg.NoTraces
	for i := range wave {
		m.SetBreakpoint(wave[i].addr)
	}
	e.prefixRuns.Add(1)

	snaps := make(map[uint32]*snapEntry, len(wave))
	for len(snaps) < len(wave) {
		runErr := m.Run()
		var bp *vm.BreakpointHit
		if !errors.As(runErr, &bp) {
			// Fault-free session over: the remaining targets never
			// activate under this scenario.
			break
		}
		snaps[bp.Addr] = &snapEntry{
			m:                 m.Snapshot(),
			k:                 k.Snapshot(),
			activationSteps:   m.Steps,
			bytesAtActivation: len(k.Transcript.ServerBytes()),
		}
		m.ClearBreakpoint(bp.Addr)
	}
	e.harvestCounters(m)
	return snaps, nil
}

// harvestCounters folds a machine's icache, trace, and restore counters
// into the engine's metrics and zeroes them, so pooled machines are not
// double-counted.
func (e *Engine) harvestCounters(m *vm.Machine) {
	if m == nil {
		return
	}
	e.icacheHits.Add(int64(m.ICacheHits))
	e.icacheMisses.Add(int64(m.ICacheMisses))
	e.traceHits.Add(int64(m.TraceHits))
	e.traceExits.Add(int64(m.TraceExits))
	e.dirtyBytesCopied.Add(int64(m.DirtyBytesCopied))
	e.fullRestores.Add(int64(m.FullRestores))
	m.ICacheHits, m.ICacheMisses = 0, 0
	m.TraceHits, m.TraceExits = 0, 0
	m.DirtyBytesCopied, m.FullRestores = 0, 0
}

// run is the engine core: shard by target, sweep-capture snapshots in
// waves, execute on the worker pool, journal, aggregate.
func (e *Engine) run(ctx context.Context, exps []inject.Experiment,
	skip map[int]*WireResult, w *journalWriter) (*inject.Stats, error) {
	total := len(exps)
	e.total.Store(int64(total))
	e.startNanos.Store(time.Now().UnixNano())
	defer func() { e.endNanos.Store(time.Now().UnixNano()) }()

	fuel := e.cfg.effectiveFuel()
	golden, err := inject.GoldenRun(e.cfg.App, e.cfg.Scenario, fuel)
	if err != nil {
		// Release the journal writer: without this, the path claim leaks
		// (every later submit gets ErrJournalBusy) and a header-only file
		// is left to poison the next resume. abort removes the orphan.
		if w != nil {
			if aerr := w.abort(); aerr != nil {
				err = fmt.Errorf("%w (journal abort: %v)", err, aerr)
			}
		}
		return nil, err
	}
	var cfValid map[uint32]struct{}
	if e.cfg.Watchdog {
		cfValid = inject.ValidInstructionStarts(e.cfg.App)
	}

	results := make([]inject.Result, total)
	for idx, wr := range skip {
		results[idx] = wr.ToResult(exps[idx])
		e.counts[results[idx].Outcome].Add(1)
	}
	e.preloaded.Store(int64(len(skip)))
	e.done.Store(int64(len(skip)))

	groups := groupByTarget(exps, skip)
	e.groupsTotal.Store(int64(len(groups)))

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		errMu   sync.Mutex
		loopErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if loopErr == nil {
			loopErr = err
		}
		errMu.Unlock()
		cancel()
	}
	finish := func(idx int, res inject.Result) {
		results[idx] = res
		e.counts[res.Outcome].Add(1)
		d := int(e.done.Add(1))
		if w != nil {
			if err := w.writeRun(idx, res, d, e.countsMap()); err != nil {
				fail(fmt.Errorf("campaign: journal append: %w", err))
				return
			}
		}
		if e.cfg.Progress != nil {
			e.cfg.Progress(d, total)
		}
		if e.cfg.OnResult != nil {
			e.cfg.OnResult(idx, res)
		}
	}

	// Cache adoption: consult the content-addressed store for every pending
	// group before any execution is scheduled. Adopted groups finish through
	// the normal path — journaled, streamed, counted — so a warm campaign
	// is indistinguishable downstream from a cold one; the remaining groups
	// are the delta that actually executes.
	var ec *engineCache
	if e.cfg.cacheActive() {
		ec, err = e.buildCache(exps, golden)
		if err != nil {
			fail(err)
		} else {
			pending := groups[:0]
			for i := range groups {
				if runCtx.Err() == nil {
					if rem := e.adoptGroup(ec, &groups[i], exps, finish); len(rem) == 0 {
						e.groupsDone.Add(1)
						continue
					} else {
						groups[i].indices = rem
					}
				}
				pending = append(pending, groups[i])
			}
			groups = pending
		}
	}

	workers := e.cfg.effectiveWorkers(len(groups))
	e.workers.Store(int64(workers))

	// naRun is the observable outcome of a never-activated experiment: the
	// fault-free session itself (determinism makes this exact, not a
	// model).
	naRun := &classify.Run{
		Activated:   false,
		Err:         &vm.ExitStatus{Code: golden.ExitCode},
		ServerBytes: golden.ServerBytes,
		Granted:     golden.Granted,
		EndSteps:    golden.Steps,
	}

	// Worker machines are pooled across waves so each worker's address
	// space is allocated once and rewound in place thereafter.
	pool := make(chan *vm.Machine, workers)
	for i := 0; i < workers; i++ {
		pool <- nil
	}

	for start := 0; start < len(groups) && runCtx.Err() == nil; start += maxResidentSnapshots {
		endIdx := start + maxResidentSnapshots
		if endIdx > len(groups) {
			endIdx = len(groups)
		}
		wave := groups[start:endIdx]

		var snaps map[uint32]*snapEntry
		if !e.cfg.NoSnapshot {
			snaps, err = e.captureSnapshots(wave, cfValid, fuel)
			if err != nil {
				fail(err)
				break
			}
		}

		gch := make(chan int)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				wm := <-pool
				defer func() { pool <- wm }()
				for gi := range gch {
					begin := time.Now()
					wm = e.runGroup(runCtx, wm, &wave[gi], exps, golden, naRun,
						snaps[wave[gi].addr], cfValid, fuel, finish, fail)
					e.busyNanos.Add(time.Since(begin).Nanoseconds())
					e.harvestCounters(wm)
					if runCtx.Err() == nil {
						e.groupsDone.Add(1)
						if ec != nil {
							if wrote, werr := ec.writeBack(wave[gi].addr, exps, results); werr != nil {
								fail(fmt.Errorf("campaign: cache write-back at %#x: %w", wave[gi].addr, werr))
							} else {
								e.cacheWrites.Add(int64(wrote))
							}
						}
					}
				}
			}()
		}
	feed:
		for gi := range wave {
			select {
			case <-runCtx.Done():
				break feed
			case gch <- gi:
			}
		}
		close(gch)
		wg.Wait()
	}

	if w != nil {
		if err := w.close(int(e.done.Load()), e.countsMap()); err != nil && loopErr == nil {
			loopErr = fmt.Errorf("campaign: journal close: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		// The journal (if any) has already been closed with a final
		// checkpoint above, so a canceled campaign is cleanly resumable.
		return nil, &inject.CanceledError{Done: int(e.done.Load()), Total: total, Cause: err}
	}
	if loopErr != nil {
		return nil, loopErr
	}

	stats := inject.NewStats(e.cfg.App.Name, e.cfg.Scenario.Name, e.cfg.Scheme, inject.ModelOf(exps))
	for i := range results {
		stats.Add(results[i])
	}
	if e.cfg.KeepResults {
		stats.Results = results
	}
	return stats, nil
}

// runGroup executes every pending experiment of one target-address shard
// against the target's prefix snapshot (nil = never activated). It returns
// the (possibly newly allocated) reusable worker machine.
func (e *Engine) runGroup(ctx context.Context, wm *vm.Machine, g *group,
	exps []inject.Experiment, golden *classify.Golden, naRun *classify.Run,
	snap *snapEntry, cfValid map[uint32]struct{}, fuel uint64,
	finish func(int, inject.Result), fail func(error)) *vm.Machine {

	if e.cfg.NoSnapshot {
		for _, idx := range g.indices {
			if ctx.Err() != nil {
				return wm
			}
			res, err := inject.RunOneWatched(e.cfg.App, e.cfg.Scenario, golden, exps[idx], fuel, cfValid)
			if err != nil {
				fail(fmt.Errorf("campaign: experiment %d: %w", idx, err))
				return wm
			}
			e.naiveRuns.Add(1)
			finish(idx, res)
		}
		return wm
	}

	if snap == nil {
		// The target instruction never executes under this scenario. A
		// from-scratch run would simply replay the fault-free session
		// around the dormant corruption: synthesize NA from the golden
		// observables without executing anything.
		for _, idx := range g.indices {
			if ctx.Err() != nil {
				return wm
			}
			e.synthesizedRuns.Add(1)
			finish(idx, inject.ResultFromRun(golden, exps[idx], naRun, e.cfg.Scenario.ShouldGrant, 0))
		}
		return wm
	}

	for _, idx := range g.indices {
		if ctx.Err() != nil {
			return wm
		}
		ex := exps[idx]
		fresh := e.cfg.Scenario.New()
		k2 := snap.k.NewKernel(fresh)
		if wm == nil {
			wm = snap.m.NewMachine(k2)
			wm.NoICache = e.cfg.NoICache
			wm.NoUops = e.cfg.NoUops
			wm.NoDirtyTracking = e.cfg.NoDirtyTracking
			wm.NoTraces = e.cfg.NoTraces
		} else {
			if err := wm.Restore(snap.m); err != nil {
				fail(fmt.Errorf("campaign: restore at %#x: %w", g.addr, err))
				return wm
			}
			wm.Sys = k2
		}
		// The snapshot was captured mid-sweep: its own and later targets'
		// breakpoints are still armed. The injected run must execute to
		// its fate without stopping at any of them.
		wm.ClearBreakpoints()
		// The snapshot IS the breakpoint-stop state (EIP at the target), so
		// applying the mutation here matches the naive debugger protocol for
		// every kind: byte corruptions poke memory, transient skip/register
		// faults perturb the restored machine state directly.
		mut := ex.Mutation()
		if err := mut.Apply(wm, &ex.Target); err != nil {
			fail(fmt.Errorf("campaign: inject at %#x: %w", ex.Target.Addr, err))
			return wm
		}
		endErr := wm.Run()
		serverBytes := k2.Transcript.ServerBytes()
		run := &classify.Run{
			Activated:       true,
			Err:             endErr,
			ServerBytes:     serverBytes,
			Granted:         fresh.Granted(),
			ActivationSteps: snap.activationSteps,
			EndSteps:        wm.Steps,
		}
		e.snapshotRuns.Add(1)
		finish(idx, inject.ResultFromRun(golden, ex, run, e.cfg.Scenario.ShouldGrant,
			len(serverBytes)-snap.bytesAtActivation))
	}
	return wm
}

func (e *Engine) countsMap() map[string]int {
	out := make(map[string]int, 5)
	for _, o := range classify.Outcomes() {
		if n := e.counts[o].Load(); n > 0 {
			out[o.String()] = int(n)
		}
	}
	return out
}

// Progress is a point-in-time view of a running (or finished) campaign.
type Progress struct {
	// Done and Total are completed and total experiment counts; Done
	// includes runs adopted from a resumed journal.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Counts maps outcome abbreviations (NA/NM/SD/FSV/BRK) to run counts.
	Counts map[string]int `json:"counts"`
	// ElapsedSeconds is wall time since the campaign started.
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	// RunsPerSec is fresh-run throughput (journal-adopted runs excluded).
	RunsPerSec float64 `json:"runsPerSec"`
	// ETASeconds estimates time to completion at the current throughput;
	// 0 when done or unknown.
	ETASeconds float64 `json:"etaSeconds"`
}

// Progress reports campaign progress. Safe to call concurrently with Run.
func (e *Engine) Progress() Progress {
	p := Progress{
		Done:   int(e.done.Load()),
		Total:  int(e.total.Load()),
		Counts: e.countsMap(),
	}
	p.ElapsedSeconds = e.elapsed().Seconds()
	fresh := p.Done - int(e.preloaded.Load())
	if p.ElapsedSeconds > 0 && fresh > 0 {
		p.RunsPerSec = float64(fresh) / p.ElapsedSeconds
		if remaining := p.Total - p.Done; remaining > 0 {
			p.ETASeconds = float64(remaining) / p.RunsPerSec
		}
	}
	return p
}

// Metrics is the engine's operational counter set.
type Metrics struct {
	// RunsTotal is the number of completed fresh runs.
	RunsTotal int64 `json:"runsTotal"`
	// PrefixRuns is the number of golden sweep executions (one per wave
	// of up to maxResidentSnapshots scheduled targets).
	PrefixRuns int64 `json:"prefixRuns"`
	// SnapshotRuns is the number of runs served by snapshot restore.
	SnapshotRuns int64 `json:"snapshotRuns"`
	// SynthesizedNA is the number of NA results synthesized from an
	// unreached prefix without any execution.
	SynthesizedNA int64 `json:"synthesizedNA"`
	// NaiveRuns is the number of runs executed from _start (NoSnapshot).
	NaiveRuns int64 `json:"naiveRuns"`
	// JournalAdopted is the number of results adopted from a journal.
	JournalAdopted int64 `json:"journalAdopted"`
	// CacheHits is the number of runs adopted from the content-addressed
	// result store; CacheMisses the number of runs executed because their
	// target group had no usable entry (both 0 with the cache off).
	CacheHits   int64 `json:"cacheHits,omitempty"`
	CacheMisses int64 `json:"cacheMisses,omitempty"`
	// CacheWrites counts entries persisted to the store; CacheInvalid
	// counts entries rejected as corrupt or internally inconsistent
	// (each rejection also surfaces as misses for the group's runs).
	CacheWrites  int64 `json:"cacheWrites,omitempty"`
	CacheInvalid int64 `json:"cacheInvalid,omitempty"`
	// GroupsTotal and GroupsDone count the engine's target-address groups
	// (its internal shards): scheduled for this campaign, and fully
	// executed so far — the per-shard progress signal surfaced by fleet
	// workers and GET /metrics.
	GroupsTotal int64 `json:"groupsTotal"`
	GroupsDone  int64 `json:"groupsDone"`
	// SnapshotHitRate is the share of fresh runs that did not re-execute
	// the golden prefix (snapshot restores plus synthesized NAs).
	SnapshotHitRate float64 `json:"snapshotHitRate"`
	// ICacheHits and ICacheMisses count VM instruction retirements served
	// from versus decoded into the predecoded instruction cache, summed
	// over the engine's golden sweeps and snapshot-restored runs.
	ICacheHits   int64 `json:"icacheHits"`
	ICacheMisses int64 `json:"icacheMisses"`
	// ICacheHitRate is ICacheHits / (ICacheHits + ICacheMisses); 0 when
	// the cache is disabled (Config.NoICache) or nothing has retired yet.
	ICacheHitRate float64 `json:"icacheHitRate"`
	// TraceHits counts fused superblock trace executions; TraceExits
	// counts the subset that left the trace early (fault, fuel, or an
	// invalidating store mid-trace). Both are 0 with Config.NoTraces.
	TraceHits  int64 `json:"traceHits"`
	TraceExits int64 `json:"traceExits"`
	// DirtyBytesCopied is the bytes copied back by O(dirty) snapshot
	// restores; FullRestores counts restores that copied whole images
	// (first restore per machine/snapshot pair, or all restores with
	// Config.NoDirtyTracking).
	DirtyBytesCopied int64 `json:"dirtyBytesCopied"`
	FullRestores     int64 `json:"fullRestores"`
	// RunsPerSec is fresh-run throughput over the campaign wall time.
	RunsPerSec float64 `json:"runsPerSec"`
	// Workers is the worker pool size.
	Workers int `json:"workers"`
	// WorkerUtilization is aggregate busy time divided by workers times
	// wall time (1.0 = every worker busy the whole campaign).
	WorkerUtilization float64 `json:"workerUtilization"`
}

// Metrics reports operational counters. Safe to call concurrently with Run.
func (e *Engine) Metrics() Metrics {
	m := Metrics{
		SnapshotRuns:     e.snapshotRuns.Load(),
		SynthesizedNA:    e.synthesizedRuns.Load(),
		NaiveRuns:        e.naiveRuns.Load(),
		PrefixRuns:       e.prefixRuns.Load(),
		JournalAdopted:   e.preloaded.Load(),
		CacheHits:        e.cacheHits.Load(),
		CacheMisses:      e.cacheMisses.Load(),
		CacheWrites:      e.cacheWrites.Load(),
		CacheInvalid:     e.cacheInvalid.Load(),
		GroupsTotal:      e.groupsTotal.Load(),
		GroupsDone:       e.groupsDone.Load(),
		Workers:          int(e.workers.Load()),
		ICacheHits:       e.icacheHits.Load(),
		ICacheMisses:     e.icacheMisses.Load(),
		TraceHits:        e.traceHits.Load(),
		TraceExits:       e.traceExits.Load(),
		DirtyBytesCopied: e.dirtyBytesCopied.Load(),
		FullRestores:     e.fullRestores.Load(),
	}
	m.RunsTotal = m.SnapshotRuns + m.SynthesizedNA + m.NaiveRuns
	if m.RunsTotal > 0 {
		m.SnapshotHitRate = float64(m.SnapshotRuns+m.SynthesizedNA) / float64(m.RunsTotal)
	}
	if fetches := m.ICacheHits + m.ICacheMisses; fetches > 0 {
		m.ICacheHitRate = float64(m.ICacheHits) / float64(fetches)
	}
	elapsed := e.elapsed().Seconds()
	if elapsed > 0 {
		m.RunsPerSec = float64(m.RunsTotal) / elapsed
		if m.Workers > 0 {
			m.WorkerUtilization = float64(e.busyNanos.Load()) / 1e9 / (elapsed * float64(m.Workers))
		}
	}
	return m
}

func (e *Engine) elapsed() time.Duration {
	start := e.startNanos.Load()
	if start == 0 {
		return 0
	}
	end := e.endNanos.Load()
	if end == 0 {
		end = time.Now().UnixNano()
	}
	return time.Duration(end - start)
}
