package campaign_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"faultsec/internal/campaign"
	"faultsec/internal/castore"
	"faultsec/internal/cc"
	"faultsec/internal/encoding"
	"faultsec/internal/inject"
	"faultsec/internal/target"
)

func openStore(t testing.TB) *castore.Store {
	t.Helper()
	store, err := castore.Open(filepath.Join(t.TempDir(), "castore"))
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return store
}

func cachedConfig(app *target.App, sc target.Scenario, store *castore.Store, mode string) campaign.Config {
	return campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true,
		Cache: store, CacheMode: mode,
	}
}

func runCached(t *testing.T, cfg campaign.Config) (*inject.Stats, campaign.Metrics) {
	t.Helper()
	eng := campaign.New(cfg)
	stats, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return stats, eng.Metrics()
}

// TestCacheWarmRunIdentity is the cache's basic soundness gate: a cold
// readwrite run populates the store, and a warm rerun of the identical
// campaign adopts every run from it — with Stats (including per-run
// Results and CrashLatencies order) byte-identical to the cold run, which
// itself must be byte-identical to a cache-less run.
func TestCacheWarmRunIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	baseline, _ := runCached(t, campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true,
	})

	store := openStore(t)
	cold, cm := runCached(t, cachedConfig(app, sc, store, campaign.CacheReadWrite))
	if !reflect.DeepEqual(baseline, cold) {
		t.Error("cold readwrite run differs from cache-less run")
	}
	if cm.CacheHits != 0 || cm.CacheMisses == 0 || cm.CacheWrites == 0 {
		t.Errorf("cold run counters hits=%d misses=%d writes=%d, want 0/>0/>0",
			cm.CacheHits, cm.CacheMisses, cm.CacheWrites)
	}

	warm, wm := runCached(t, cachedConfig(app, sc, store, campaign.CacheReadWrite))
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm stats differ from cold\ncold: %+v\nwarm: %+v",
			statsSummary(cold), statsSummary(warm))
	}
	if wm.CacheHits != int64(cold.Total) {
		t.Errorf("warm run adopted %d of %d runs from cache", wm.CacheHits, cold.Total)
	}
	if wm.CacheMisses != 0 || wm.CacheInvalid != 0 {
		t.Errorf("warm run misses=%d invalid=%d, want 0/0", wm.CacheMisses, wm.CacheInvalid)
	}
	if wm.CacheWrites != 0 {
		t.Errorf("warm run rewrote %d entries, want duplicate-verified no-ops", wm.CacheWrites)
	}
}

// TestCacheMissAndCorruptEntryRecovery pins the failure modes that must
// degrade to re-execution, never to wrong merges: a deleted entry is a
// plain miss, a corrupted entry is detected and counted, and the mixed
// hit/miss/invalid rerun still produces byte-identical Stats.
func TestCacheMissAndCorruptEntryRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	store := openStore(t)
	cold, _ := runCached(t, cachedConfig(app, sc, store, campaign.CacheReadWrite))

	keys, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) < 2 {
		t.Fatalf("cold run left %d entries, want >=2 for a mixed rerun", len(keys))
	}
	// One entry vanishes (miss), one is torn mid-payload (corrupt).
	if err := os.Remove(filepath.Join(store.Dir(), keys[0])); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(store.Dir(), keys[1])
	raw, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	warm, wm := runCached(t, cachedConfig(app, sc, store, campaign.CacheReadWrite))
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("mixed hit/miss stats differ from cold\ncold: %+v\nwarm: %+v",
			statsSummary(cold), statsSummary(warm))
	}
	if wm.CacheHits == 0 || wm.CacheMisses == 0 {
		t.Errorf("mixed rerun hits=%d misses=%d, want both >0", wm.CacheHits, wm.CacheMisses)
	}
	if wm.CacheInvalid == 0 {
		t.Errorf("corrupt entry was not counted (invalid=%d)", wm.CacheInvalid)
	}
	if wm.CacheWrites == 0 {
		t.Error("re-executed groups were not written back")
	}
	if wm.CacheHits+wm.CacheMisses != int64(cold.Total) {
		t.Errorf("hits+misses = %d, want total %d", wm.CacheHits+wm.CacheMisses, cold.Total)
	}
}

// TestCacheReadModeNeverWrites: "read" adopts what exists but leaves the
// store untouched.
func TestCacheReadModeNeverWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	store := openStore(t)

	cold, cm := runCached(t, cachedConfig(app, sc, store, campaign.CacheRead))
	if cm.CacheWrites != 0 {
		t.Errorf("read-mode run wrote %d entries", cm.CacheWrites)
	}
	keys, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Errorf("read-mode run left %d entries in the store", len(keys))
	}
	baseline, _ := runCached(t, campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true,
	})
	if !reflect.DeepEqual(baseline, cold) {
		t.Error("read-mode run differs from cache-less run")
	}
}

// TestCacheIncrementalRebuildIdentity is the FastFlip acceptance test: a
// one-function rebuild of the target (retr hardened via cc.Options, a
// function the denied-login Client1 session never executes) leaves the
// function-section keys of every non-escaping auth-function group intact,
// so a warm resubmit of the rebuilt image adopts those groups from the
// base image's store and re-executes only the groups whose keyed section
// changed — the escaping groups, keyed over the whole text section — with
// merged Stats byte-identical to a cold run of the rebuilt image.
func TestCacheIncrementalRebuildIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	store := openStore(t)
	runCached(t, cachedConfig(app, sc, store, campaign.CacheReadWrite))

	mod, err := app.ForCodegen(cc.Options{DupCompares: true, HardenFuncs: "retr"})
	if err != nil {
		t.Fatalf("rebuild with hardened retr: %v", err)
	}
	if len(mod.Image.Text) == len(app.Image.Text) {
		t.Fatal("hardened rebuild did not change the text section; the test would prove nothing")
	}
	modSc, ok := mod.Scenario(sc.Name)
	if !ok {
		t.Fatalf("rebuilt app lost scenario %s", sc.Name)
	}

	// Reference: a cold, cache-less campaign over the rebuilt image.
	modCold, _ := runCached(t, campaign.Config{
		App: mod, Scenario: modSc, Scheme: encoding.SchemeX86, KeepResults: true,
	})

	modWarm, wm := runCached(t, cachedConfig(mod, modSc, store, campaign.CacheReadWrite))
	if !reflect.DeepEqual(modCold, modWarm) {
		t.Errorf("incremental stats differ from cold run of rebuilt image\ncold: %+v\nwarm: %+v",
			statsSummary(modCold), statsSummary(modWarm))
		for i := range modCold.Results {
			if !reflect.DeepEqual(modCold.Results[i], modWarm.Results[i]) {
				t.Errorf("first differing run %d:\nexp:  %+v\ncold: %+v\nwarm: %+v",
					i, modCold.Results[i].Experiment, modCold.Results[i], modWarm.Results[i])
				break
			}
		}
	}
	if wm.CacheHits == 0 {
		t.Error("rebuilt-image warm run adopted nothing from the base image's store")
	}
	if wm.CacheMisses == 0 {
		t.Error("no group re-executed on the rebuilt image (expected the escaping groups to miss)")
	}
	if wm.CacheHits+wm.CacheMisses != int64(modCold.Total) {
		t.Errorf("hits+misses = %d, want total %d", wm.CacheHits+wm.CacheMisses, modCold.Total)
	}
}

// TestCacheWarmRunIsJournaledAndResumable: adopted runs flow through the
// same finish path as fresh ones, so a journaled warm campaign's journal
// replays into a full Resume — the cache must not punch holes in
// crash-safety.
func TestCacheWarmRunIsJournaledAndResumable(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	store := openStore(t)
	cold, _ := runCached(t, cachedConfig(app, sc, store, campaign.CacheReadWrite))

	cfg := cachedConfig(app, sc, store, campaign.CacheRead)
	cfg.Journal = filepath.Join(t.TempDir(), "warm.jsonl")
	warm, _ := runCached(t, cfg)
	if !reflect.DeepEqual(cold, warm) {
		t.Error("journaled warm run differs from cold run")
	}

	// The journal now records every adopted run; a Resume over it adopts
	// everything and executes nothing new.
	resumed, err := campaign.Resume(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, resumed) {
		t.Error("resume of a warm campaign's journal differs from cold run")
	}
}

// TestNormalizeCacheMode pins the knob's accepted spellings.
func TestNormalizeCacheMode(t *testing.T) {
	for in, want := range map[string]string{
		"":                      campaign.CacheOff,
		campaign.CacheOff:       campaign.CacheOff,
		campaign.CacheRead:      campaign.CacheRead,
		campaign.CacheReadWrite: campaign.CacheReadWrite,
	} {
		got, err := campaign.NormalizeCacheMode(in)
		if err != nil || got != want {
			t.Errorf("NormalizeCacheMode(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := campaign.NormalizeCacheMode("write"); err == nil {
		t.Error("NormalizeCacheMode(\"write\") did not fail")
	}
}

// TestMetricsBeforeRunAreZero is the elapsed-time regression gate: a
// just-constructed engine must report zero rates, not divide against a
// zero start time.
func TestMetricsBeforeRunAreZero(t *testing.T) {
	app, sc := ftpClient1(t)
	eng := campaign.New(campaign.Config{App: app, Scenario: sc, Scheme: encoding.SchemeX86})
	m := eng.Metrics()
	if m.RunsPerSec != 0 || m.WorkerUtilization != 0 {
		t.Errorf("metrics before Run: runsPerSec=%v utilization=%v, want 0/0",
			m.RunsPerSec, m.WorkerUtilization)
	}
	p := eng.Progress()
	if p.Done != 0 || p.ElapsedSeconds != 0 || p.RunsPerSec != 0 {
		t.Errorf("progress before Run: done=%d elapsed=%v runsPerSec=%v, want zeros",
			p.Done, p.ElapsedSeconds, p.RunsPerSec)
	}
}
