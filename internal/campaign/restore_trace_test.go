package campaign_test

import (
	"context"
	"reflect"
	"testing"

	"faultsec/internal/campaign"
	"faultsec/internal/encoding"
	"faultsec/internal/inject"
)

// TestRestoreTraceAblationMatrix is the acceptance gate for PR-7's two
// performance features: for the full FTP Client1 campaign, every
// combination of the dirty-tracking and trace-fusion knobs must produce
// byte-identical Stats (including per-run Results). It runs for bitflip
// (the paper's code-corruption model, which pokes bytes over live text)
// and regflip (the transient register-corruption model, which perturbs a
// restored machine without touching code) so both restore flavors —
// text-dirtying and data-only — are covered.
func TestRestoreTraceAblationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign ablation matrix is not short")
	}
	app, sc := ftpClient1(t)
	combos := []struct {
		name              string
		noDirty, noTraces bool
	}{
		{"dirty+traces", false, false},
		{"noDirty+traces", true, false},
		{"dirty+noTraces", false, true},
		{"noDirty+noTraces", true, true},
	}
	for _, model := range []string{"bitflip", "regflip"} {
		model := model
		t.Run(model, func(t *testing.T) {
			var want *inject.Stats
			for _, c := range combos {
				eng := campaign.New(campaign.Config{
					App: app, Scenario: sc, Scheme: encoding.SchemeX86,
					Model: model, KeepResults: true,
					NoDirtyTracking: c.noDirty, NoTraces: c.noTraces,
				})
				got, err := eng.Run(context.Background())
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				m := eng.Metrics()
				if c.noTraces && (m.TraceHits != 0 || m.TraceExits != 0) {
					t.Errorf("%s: NoTraces campaign recorded trace traffic: hits=%d exits=%d",
						c.name, m.TraceHits, m.TraceExits)
				}
				if !c.noTraces && m.TraceHits == 0 {
					t.Errorf("%s: campaign executed no fused traces", c.name)
				}
				if c.noDirty && m.DirtyBytesCopied != 0 {
					t.Errorf("%s: NoDirtyTracking campaign copied %d dirty bytes",
						c.name, m.DirtyBytesCopied)
				}
				if !c.noDirty && m.DirtyBytesCopied == 0 {
					t.Errorf("%s: campaign recorded no O(dirty) restore traffic", c.name)
				}
				if m.FullRestores == 0 {
					t.Errorf("%s: campaign recorded no full restores (first restore per machine is always full)", c.name)
				}
				if want == nil {
					want = got
					continue
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s stats differ from %s\nwant: %+v\ngot: %+v",
						c.name, combos[0].name, statsSummary(want), statsSummary(got))
				}
			}
		})
	}
}

// benchRestoreCampaign is BenchmarkEngineSnapshotFTP with the restore
// knobs exposed, reporting restored bytes per run: with dirty tracking on,
// restore cost tracks what each experiment actually wrote instead of the
// full address-space image.
func benchRestoreCampaign(b *testing.B, noDirty, noTraces bool) {
	app, sc := ftpClient1(b)
	var runs, dirtyBytes, fullRestores int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := campaign.New(campaign.Config{
			App: app, Scenario: sc, Scheme: encoding.SchemeX86,
			NoDirtyTracking: noDirty, NoTraces: noTraces,
		})
		stats, err := eng.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		runs += int64(stats.Total)
		m := eng.Metrics()
		dirtyBytes += m.DirtyBytesCopied
		fullRestores += m.FullRestores
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(runs)/sec, "runs/sec")
	}
	if runs > 0 {
		b.ReportMetric(float64(dirtyBytes)/float64(runs), "dirtyB/run")
		b.ReportMetric(float64(fullRestores)/float64(runs), "fullRestores/run")
	}
}

// BenchmarkRestoreFTP isolates the O(dirty) restore: same campaign as
// BenchmarkEngineSnapshotFTP, with per-run restored-byte counts reported.
// Compare against BenchmarkRestoreFTPNoDirty (every restore copies the
// whole image) to see restore cost tracking dirty bytes.
func BenchmarkRestoreFTP(b *testing.B) { benchRestoreCampaign(b, false, false) }

// BenchmarkRestoreFTPNoDirty is the full-image-copy ablation baseline.
func BenchmarkRestoreFTPNoDirty(b *testing.B) { benchRestoreCampaign(b, true, false) }

// BenchmarkEngineSnapshotFTPNoTraces isolates superblock trace fusion's
// contribution on top of snapshot fast-forwarding and dirty tracking.
func BenchmarkEngineSnapshotFTPNoTraces(b *testing.B) { benchRestoreCampaign(b, false, true) }
