// Package ftpd provides the study's first target application: a miniature
// wu-ftpd. The server is written in MiniC and compiled to x86 by
// internal/cc, so its authentication section is real compiled machine code
// with the exact control-flow idioms the paper disassembles from
// wu-ftpd-2.6.0 (Figure 1): push/push/call strcmp, add esp, test eax,eax,
// jne, and the rval deny/grant branch.
//
// The injection target set is the branch instructions of user() and pass(),
// mirroring the paper's selective-exhaustive campaign.
package ftpd

import (
	"fmt"
	"strings"
	"sync"

	"faultsec/internal/cc"
	"faultsec/internal/rt"
	"faultsec/internal/target"
)

// AuthFuncs names the user-authentication functions (the injection target
// set), as in the paper.
var AuthFuncs = []string{"user", "pass"}

// Compiled-in user database. Password hashes are computed in Go with the
// same xcrypt the MiniC runtime uses and baked into the source as hex
// strings, exactly like hashed passwords in /etc/passwd.
type account struct {
	name     string
	password string
	salt     int32
	uid      int
	shell    string
}

var accounts = []account{
	{"root", "t0psecret", 11, 0, "/bin/sh"},
	{"alice", "wonderland", 12, 1001, "/bin/sh"},
	{"bob", "builder99", 13, 1002, "/bin/bash"},
	{"carol", "mitm4you", 14, 1003, "/bin/csh"},
	{"ftpuser", "ftppass", 15, 1004, "/bin/false"},
	{"daemon", "nologinpw", 16, 2, "/sbin/nologin"},
}

// hashString renders the xcrypt hash the way /etc/passwd stores crypt
// output.
func hashString(pw string, salt int32) string {
	return fmt.Sprintf("%08x", uint32(rt.Xcrypt(pw, salt)))
}

// Source returns the complete MiniC source of the FTP daemon.
func Source() string {
	var names, hashes, salts, uids, shells strings.Builder
	for _, a := range accounts {
		fmt.Fprintf(&names, "%q, ", a.name)
		fmt.Fprintf(&hashes, "%q, ", hashString(a.password, a.salt))
		fmt.Fprintf(&salts, "%d, ", a.salt)
		fmt.Fprintf(&uids, "%d, ", a.uid)
		fmt.Fprintf(&shells, "%q, ", a.shell)
	}
	db := fmt.Sprintf(`
/* ---- compiled-in /etc/passwd analog ---- */
char *pw_names[] = {%s0};
char *pw_hashes[] = {%s0};
int pw_salts[] = {%s0};
int pw_uids[] = {%s0};
char *pw_shells[] = {%s0};
`, names.String(), hashes.String(), salts.String(), uids.String(), shells.String())
	return db + serverBody
}

// serverBody is the MiniC implementation (everything but the generated
// password database).
const serverBody = `
/* /etc/ftpusers: accounts never allowed to use FTP */
char *ftpusers[] = {"root", "daemon", "admin", 0};
/* /etc/shells: valid login shells */
char *ok_shells[] = {"/bin/sh", "/bin/bash", "/bin/csh", 0};
/* ftpaccess guestuser entries: real accounts treated as guests */
char *guest_users[] = {"demo", "trial", 0};
/* accounts whose password has expired */
char *expired_users[] = {"carol", 0};
/* numeric uids barred from FTP beyond the ftpusers list */
int denied_uids[] = {1, 2, 3, 4, 5, -1};

/* retrievable files */
char *ftp_files[] = {"readme.txt", "data.bin", 0};
char *ftp_contents[] = {
	"Welcome to the mini FTP archive.",
	"00112233445566778899aabbccddeeff",
	0};
int ftp_guest_ok[] = {1, 0};

/* per-connection authentication state */
char cur_user[64];
int logged_in;
int is_guest;
int user_ok;
int cur_idx;
int attempts;
int anon_ok = 1;
int pw_expired_flag;
/* simulated server load (connection slots in use / limit) */
int nusers = 3;
int maxusers = 50;

/* in-memory syslog ring (wu-ftpd logs every auth event via syslog) */
char log_buf[1024];
int log_pos;
int log_events;

void log_event(char *what, char *detail) {
	int i = 0;
	log_events = log_events + 1;
	while (what[i]) {
		log_buf[log_pos % 1023] = what[i];
		log_pos = log_pos + 1;
		i = i + 1;
	}
	log_buf[log_pos % 1023] = ' ';
	log_pos = log_pos + 1;
	i = 0;
	while (detail[i]) {
		log_buf[log_pos % 1023] = detail[i];
		log_pos = log_pos + 1;
		i = i + 1;
	}
	log_buf[log_pos % 1023] = 10;
	log_pos = log_pos + 1;
}

/*
 * ftp_delay models wu-ftpd's anti-brute-force sleep after a failed login
 * (a busy loop here, since the simulator has no timers). It is the reason
 * some corrupted-state crashes happen more than 16,000 instructions after
 * error activation — the paper's transient window of vulnerability.
 */
int delay_sink;
void ftp_delay() {
	int i;
	int v = 0;
	for (i = 0; i < 2000; i++) {
		v = v + i;
		if (v > 1000000) { v = v - 1000000; }
	}
	delay_sink = v;
}

/* xcrypt_str renders the xcrypt hash as hex, like crypt(3) output. */
char __xcbuf[12];
char *xcrypt_str(char *pw, int salt) {
	int h = xcrypt(pw, salt);
	int i = 7;
	while (i >= 0) {
		int d = h & 15;
		if (d < 10) { __xcbuf[i] = '0' + d; }
		else { __xcbuf[i] = 'a' + (d - 10); }
		h = h >> 4;
		i = i - 1;
	}
	__xcbuf[8] = 0;
	return __xcbuf;
}

/*
 * user — modeled on wu-ftpd-2.6.0 user(): guest detection, /etc/ftpusers
 * deny list, getpwnam lookup, /etc/shells check. To avoid user probing the
 * server asks for a password even for unknown or denied users (as wu-ftpd
 * does) and only the user_ok/cur_idx state distinguishes them.
 */
void user(char *name) {
	int i;
	int j;
	int c;
	int bad;
	int ok;
	char lname[64];
	logged_in = 0;
	is_guest = 0;
	user_ok = 0;
	pw_expired_flag = 0;
	cur_idx = 0 - 1;
	if (name[0] == 0) {
		write_line("500 'USER': command requires a parameter.");
		return;
	}
	/* connection-class limit (ftpaccess "limit") */
	if (nusers >= maxusers) {
		write_line("530 Too many users logged in, try again later.");
		return;
	}
	/* canonicalize: fold to lower case, reject control characters */
	i = 0;
	bad = 0;
	while (name[i] && i < 63) {
		c = name[i];
		if (c >= 'A' && c <= 'Z') { c = c + 32; }
		if (c <= 32 || c > 126) { bad = 1; }
		lname[i] = c;
		i = i + 1;
	}
	lname[i] = 0;
	if (bad) {
		write_line("530 Invalid user name.");
		return;
	}
	if (strcmp(lname, "ftp") == 0 || strcmp(lname, "anonymous") == 0) {
		if (!anon_ok) {
			write_line("530 Guest login not allowed.");
			return;
		}
		is_guest = 1;
		strcpy(cur_user, "ftp");
		write_line("331 Guest login ok, send your complete e-mail address as password.");
		return;
	}
	/* ftpaccess guestuser entries behave like anonymous */
	j = 0;
	while (guest_users[j]) {
		if (strcmp(lname, guest_users[j]) == 0) {
			is_guest = 1;
			strcpy(cur_user, lname);
			write_line("331 Guest login ok, send your complete e-mail address as password.");
			return;
		}
		j = j + 1;
	}
	i = 0;
	while (ftpusers[i]) {
		if (strcmp(lname, ftpusers[i]) == 0) {
			strcpy(cur_user, lname);
			write_line("331 Password required.");
			return;
		}
		i = i + 1;
	}
	i = 0;
	while (pw_names[i]) {
		if (strcmp(lname, pw_names[i]) == 0) {
			cur_idx = i;
			break;
		}
		i = i + 1;
	}
	if (cur_idx < 0) {
		strcpy(cur_user, lname);
		write_line("331 Password required.");
		return;
	}
	/* system accounts (low uids) may not use FTP */
	j = 0;
	while (denied_uids[j] >= 0) {
		if (pw_uids[cur_idx] == denied_uids[j]) {
			strcpy(cur_user, lname);
			cur_idx = 0 - 1;
			write_line("331 Password required.");
			return;
		}
		j = j + 1;
	}
	/* expired passwords still prompt, but pass() will refuse */
	j = 0;
	while (expired_users[j]) {
		if (strcmp(lname, expired_users[j]) == 0) {
			pw_expired_flag = 1;
			break;
		}
		j = j + 1;
	}
	ok = 0;
	i = 0;
	while (ok_shells[i]) {
		if (strcmp(pw_shells[cur_idx], ok_shells[i]) == 0) {
			ok = 1;
			break;
		}
		i = i + 1;
	}
	if (!ok) {
		strcpy(cur_user, lname);
		cur_idx = 0 - 1;
		write_line("331 Password required.");
		return;
	}
	strcpy(cur_user, lname);
	user_ok = 1;
	log_event("USER", lname);
	write_str("331 Password required for ");
	write_str(cur_user);
	write_line(".");
}

/*
 * pass — modeled on wu-ftpd-2.6.0 pass(), including the paper's Figure 1
 * idiom: rval starts at 1 (deny), the strcmp()==0 check clears it, and the
 * final "if (rval)" branch decides deny/grant. The single-bit corruptions
 * the paper demonstrates (push eax->push ecx at the strcmp call site,
 * jne<->je around it, je->jne at the rval test) all exist in this
 * function's compiled code.
 */
void pass(char *xpw) {
	int rval = 1;
	int at;
	int dot;
	char *xc;
	if (logged_in) {
		write_line("503 You are already logged in.");
		return;
	}
	if (cur_user[0] == 0) {
		write_line("503 Login with USER first.");
		return;
	}
	if (is_guest) {
		/* the "password" must be a plausible e-mail address */
		at = strchr_at(xpw, '@');
		if (at < 0) {
			write_line("530 Guest login incorrect.");
			return;
		}
		if (at == 0) {
			/* no user part before the @ */
			write_line("530 Guest login incorrect.");
			return;
		}
		if (xpw[at + 1] == 0) {
			/* no host part after the @ */
			write_line("530 Guest login incorrect.");
			return;
		}
		dot = strchr_at(&xpw[at + 1], '.');
		if (dot < 0) {
			log_event("FAILED GUEST LOGIN", xpw);
			ftp_delay();
			write_line("530 Guest login incorrect.");
			return;
		}
		log_event("GUEST LOGIN", xpw);
		logged_in = 1;
		write_line("230 Guest login ok, access restrictions apply.");
		return;
	}
	attempts = attempts + 1;
	if (attempts > 3) {
		write_line("421 Too many wrong passwords; closing connection.");
		sys_exit(0);
	}
	if (xpw[0] == 0) {
		write_line("530 Login incorrect.");
		return;
	}
	if (strncmp(xpw, "s/key", 5) == 0) {
		write_line("530 S/Key authentication is not enabled.");
		return;
	}
	if (user_ok && cur_idx >= 0) {
		xc = xcrypt_str(xpw, pw_salts[cur_idx]);
		if (strcmp(xc, pw_hashes[cur_idx]) == 0) {
			rval = 0;
		}
	}
	if (rval) {
		log_event("FAILED LOGIN", cur_user);
		ftp_delay();
		if (attempts >= 2) {
			write_line("530 Login incorrect (connection closes after the next failure).");
			return;
		}
		write_line("530 Login incorrect.");
		return;
	}
	if (pw_expired_flag) {
		write_line("530 Your password has expired; contact the administrator.");
		return;
	}
	if (pw_uids[cur_idx] == 0) {
		/* root may never log in over FTP, even with the right password */
		write_line("530 Login incorrect.");
		return;
	}
	log_event("LOGIN", cur_user);
	logged_in = 1;
	write_str("230 User ");
	write_str(cur_user);
	write_line(" logged in.");
}

void retr(char *name) {
	int i;
	int idx;
	if (!logged_in) {
		write_line("530 Please login with USER and PASS.");
		return;
	}
	idx = 0 - 1;
	i = 0;
	while (ftp_files[i]) {
		if (strcmp(name, ftp_files[i]) == 0) { idx = i; break; }
		i = i + 1;
	}
	if (idx < 0) {
		write_str("550 ");
		write_str(name);
		write_line(": No such file or directory.");
		return;
	}
	if (is_guest && !ftp_guest_ok[idx]) {
		write_line("550 Permission denied.");
		return;
	}
	write_line("150 Opening ASCII mode data connection.");
	write_str("DATA ");
	write_line(ftp_contents[idx]);
	write_line("226 Transfer complete.");
}

int main() {
	char line[256];
	char cmd[16];
	char arg[200];
	int n;
	int i;
	int j;
	write_line("220 miniftpd 2.6.0 FTP server ready.");
	while (1) {
		n = read_line(line, 256);
		if (n < 0) { break; }
		i = 0;
		while (line[i] && line[i] != ' ' && i < 15) {
			cmd[i] = line[i];
			i = i + 1;
		}
		cmd[i] = 0;
		while (line[i] == ' ') { i = i + 1; }
		j = 0;
		while (line[i] && j < 199) {
			arg[j] = line[i];
			i = i + 1;
			j = j + 1;
		}
		arg[j] = 0;
		if (strcmp(cmd, "USER") == 0) { user(arg); continue; }
		if (strcmp(cmd, "PASS") == 0) { pass(arg); continue; }
		if (strcmp(cmd, "RETR") == 0) { retr(arg); continue; }
		if (strcmp(cmd, "SYST") == 0) { write_line("215 UNIX Type: L8"); continue; }
		if (strcmp(cmd, "NOOP") == 0) { write_line("200 NOOP command successful."); continue; }
		if (strcmp(cmd, "QUIT") == 0) { write_line("221 Goodbye."); return 0; }
		write_str("500 '");
		write_str(cmd);
		write_line("': command not understood.");
	}
	return 0;
}
`

func init() { target.Register("ftpd", Build) }

// buildOnce caches the compiled application (the image is immutable; runs
// load fresh copies).
var buildOnce = sync.OnceValues(func() (*target.App, error) {
	img, err := rt.BuildImage(Source())
	if err != nil {
		return nil, fmt.Errorf("ftpd: build: %w", err)
	}
	return &target.App{
		Name:      "ftpd",
		Image:     img,
		AuthFuncs: AuthFuncs,
		Scenarios: Scenarios(),
		Rebuild:   BuildWithCodegen,
	}, nil
})

// Build compiles and links the FTP daemon and returns the application
// bundle. The result is cached; callers share the immutable image.
func Build() (*target.App, error) { return buildOnce() }

// BuildWithCodegen builds the daemon with explicit codegen options (the
// hook hardening schemes and the codegen-style ablation rebuild through;
// not cached here — target.App.ForCodegen caches per option set).
func BuildWithCodegen(opts cc.Options) (*target.App, error) {
	img, err := rt.BuildImageWithOptions(opts, Source())
	if err != nil {
		return nil, fmt.Errorf("ftpd: build: %w", err)
	}
	return &target.App{
		Name:      "ftpd",
		Image:     img,
		AuthFuncs: AuthFuncs,
		Scenarios: Scenarios(),
		Rebuild:   BuildWithCodegen,
	}, nil
}

// Scenarios returns the paper's four FTP client access patterns.
func Scenarios() []target.Scenario {
	return []target.Scenario{
		{
			Name:        "Client1",
			Description: "existing user name, wrong password (attack pattern)",
			ShouldGrant: false,
			New: func() target.Client {
				return newClient("alice", "wrongpass")
			},
		},
		{
			Name:        "Client2",
			Description: "existing user name, correct password",
			ShouldGrant: true,
			New: func() target.Client {
				return newClient("alice", "wonderland")
			},
		},
		{
			Name:        "Client3",
			Description: "non-existing user name and password",
			ShouldGrant: false,
			New: func() target.Client {
				return newClient("mallory", "whatever")
			},
		},
		{
			Name:        "Client4",
			Description: "anonymous login",
			ShouldGrant: true,
			New: func() target.Client {
				return newClient("anonymous", "joe@example.com")
			},
		},
	}
}
