package ftpd

import (
	"strings"

	"faultsec/internal/target"
)

// clientState tracks the FTP client's position in its session script.
type clientState int

const (
	stateGreeting clientState = iota + 1
	stateUserSent
	statePassSent
	stateRetr
	stateQuitSent
	stateFinished
)

// retrievals is the file list every authorized client fetches ("All
// clients try to retrieve several files if the server authorize the
// login" — paper §5.2).
var retrievals = []string{"readme.txt", "data.bin"}

// client is a deterministic FTP client state machine. It follows the
// protocol strictly; on server lines it cannot interpret it keeps waiting,
// which surfaces as a session hang — exactly how the paper's clients
// experienced fail-silence violations.
type client struct {
	user, pass string
	state      clientState
	retrIdx    int
	granted    bool
	finished   bool
}

var _ target.Client = (*client)(nil)

func newClient(user, pass string) *client {
	return &client{user: user, pass: pass, state: stateGreeting}
}

// Granted reports whether the server awarded access.
func (c *client) Granted() bool { return c.granted }

// Done reports whether the session script has completed.
func (c *client) Done() bool { return c.finished }

// code extracts a three-digit FTP reply code, or 0.
func code(line string) int {
	if len(line) < 3 {
		return 0
	}
	n := 0
	for i := 0; i < 3; i++ {
		if line[i] < '0' || line[i] > '9' {
			return 0
		}
		n = n*10 + int(line[i]-'0')
	}
	if len(line) > 3 && line[3] != ' ' && line[3] != '-' {
		return 0
	}
	return n
}

// OnServerLine advances the state machine.
//
//nolint:gocyclo // protocol state machine
func (c *client) OnServerLine(line string) []string {
	cd := code(line)
	if strings.HasPrefix(line, "DATA ") {
		// file payload during a transfer; remember we really got data
		if c.granted {
			return nil
		}
	}
	switch c.state {
	case stateGreeting:
		if cd == 220 {
			c.state = stateUserSent
			return []string{"USER " + c.user}
		}
		if cd == 421 {
			c.finished = true
		}
		return nil

	case stateUserSent:
		switch {
		case cd == 331:
			c.state = statePassSent
			return []string{"PASS " + c.pass}
		case cd == 230:
			// Logged in without a password: access granted.
			c.granted = true
			c.state = stateRetr
			return []string{"RETR " + retrievals[0]}
		case cd == 530 || cd == 500 || cd == 421:
			c.state = stateQuitSent
			return []string{"QUIT"}
		}
		return nil

	case statePassSent:
		switch {
		case cd == 230:
			c.granted = true
			c.state = stateRetr
			return []string{"RETR " + retrievals[0]}
		case cd == 530:
			c.state = stateQuitSent
			return []string{"QUIT"}
		case cd == 421:
			c.finished = true
		}
		return nil

	case stateRetr:
		switch {
		case cd == 150:
			// transfer starting; wait for completion
			return nil
		case cd == 226 || cd == 550:
			c.retrIdx++
			if c.retrIdx < len(retrievals) {
				return []string{"RETR " + retrievals[c.retrIdx]}
			}
			c.state = stateQuitSent
			return []string{"QUIT"}
		case cd == 530:
			// lost our session mid-transfer
			c.state = stateQuitSent
			return []string{"QUIT"}
		case cd == 421:
			c.finished = true
		}
		return nil

	case stateQuitSent:
		if cd == 221 || cd == 421 {
			c.state = stateFinished
			c.finished = true
		}
		return nil
	}
	return nil
}

// NewClientForTest builds an FTP client with arbitrary credentials. It is
// exported for tests and examples that exercise access patterns beyond the
// paper's four scenarios.
func NewClientForTest(user, pass string) target.Client {
	return newClient(user, pass)
}

// escClient is the privilege-escalation access pattern (the paper's §7
// future work: attacks other than wrong-password login). It logs in as a
// legitimate guest and then requests a file guests are forbidden to read;
// Granted() reports whether the server began the forbidden transfer.
type escClient struct {
	inner     *client
	forbidden string
	escalated bool
	lastRetr  string
}

var _ target.Client = (*escClient)(nil)

// NewEscalationClient returns a guest client that attempts to retrieve a
// guest-forbidden file.
func NewEscalationClient() target.Client {
	return &escClient{
		inner:     newClient("anonymous", "joe@example.com"),
		forbidden: "data.bin",
	}
}

func (c *escClient) OnServerLine(line string) []string {
	replies := c.inner.OnServerLine(line)
	for _, r := range replies {
		if strings.HasPrefix(r, "RETR ") {
			c.lastRetr = strings.TrimPrefix(r, "RETR ")
		}
	}
	if code(line) == 150 && c.lastRetr == c.forbidden {
		// The server started transferring the forbidden file.
		c.escalated = true
	}
	return replies
}

func (c *escClient) Done() bool { return c.inner.Done() }

// Granted reports privilege escalation: access to the forbidden resource,
// not the (legitimate) guest login itself.
func (c *escClient) Granted() bool { return c.escalated }

// EscalationScenario returns the guest privilege-escalation access
// pattern. It is not one of the paper's Table 1 columns; run it with
// core.Study.CampaignScenario.
func EscalationScenario() target.Scenario {
	return target.Scenario{
		Name:        "Client5-escalation",
		Description: "legitimate guest attempts to retrieve a guest-forbidden file",
		ShouldGrant: false,
		New:         NewEscalationClient,
	}
}
