package ftpd_test

import (
	"errors"
	"strings"
	"testing"

	"faultsec/internal/disasm"
	"faultsec/internal/ftpd"
	"faultsec/internal/kernel"
	"faultsec/internal/target"
	"faultsec/internal/vm"
)

// runScenario executes one fault-free session.
func runScenario(t *testing.T, app *target.App, sc target.Scenario) (target.Client, *kernel.Kernel, error) {
	t.Helper()
	client := sc.New()
	k := kernel.New(client)
	ld, err := app.Image.Load(k, nil)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return client, k, ld.Machine.Run()
}

func TestGoldenRuns(t *testing.T) {
	app, err := ftpd.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tests := []struct {
		scenario  string
		wantGrant bool
		wantLine  string // a server line that must appear
		rejectsub string // a substring that must NOT appear
	}{
		{"Client1", false, "530 Login incorrect.", "230"},
		{"Client2", true, "230 User alice logged in.", "530"},
		{"Client3", false, "530 Login incorrect.", "230"},
		{"Client4", true, "230 Guest login ok, access restrictions apply.", "530 Login"},
	}
	for _, tt := range tests {
		t.Run(tt.scenario, func(t *testing.T) {
			sc, ok := app.Scenario(tt.scenario)
			if !ok {
				t.Fatalf("scenario %s not found", tt.scenario)
			}
			client, k, err := runScenario(t, app, sc)
			var exit *vm.ExitStatus
			if !errors.As(err, &exit) {
				t.Fatalf("run ended with %v, want clean exit\ntranscript:\n%s", err, k.Transcript.String())
			}
			if client.Granted() != tt.wantGrant {
				t.Errorf("granted = %v, want %v\ntranscript:\n%s",
					client.Granted(), tt.wantGrant, k.Transcript.String())
			}
			if sc.ShouldGrant != tt.wantGrant {
				t.Errorf("scenario.ShouldGrant = %v, want %v", sc.ShouldGrant, tt.wantGrant)
			}
			out := string(k.Transcript.ServerBytes())
			if !strings.Contains(out, tt.wantLine) {
				t.Errorf("transcript missing %q:\n%s", tt.wantLine, k.Transcript.String())
			}
			if tt.rejectsub != "" && strings.Contains(out, tt.rejectsub) {
				t.Errorf("transcript unexpectedly contains %q:\n%s", tt.rejectsub, k.Transcript.String())
			}
		})
	}
}

func TestAuthorizedClientsRetrieveFiles(t *testing.T) {
	app, err := ftpd.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for _, name := range []string{"Client2", "Client4"} {
		sc, _ := app.Scenario(name)
		_, k, runErr := runScenario(t, app, sc)
		var exit *vm.ExitStatus
		if !errors.As(runErr, &exit) {
			t.Fatalf("%s: %v", name, runErr)
		}
		out := string(k.Transcript.ServerBytes())
		if !strings.Contains(out, "DATA Welcome to the mini FTP archive.") {
			t.Errorf("%s did not retrieve readme.txt:\n%s", name, k.Transcript.String())
		}
		if name == "Client4" && !strings.Contains(out, "550 Permission denied.") {
			t.Errorf("guest should be denied data.bin:\n%s", k.Transcript.String())
		}
		if name == "Client2" && !strings.Contains(out, "DATA 00112233445566778899aabbccddeeff") {
			t.Errorf("Client2 should retrieve data.bin:\n%s", k.Transcript.String())
		}
	}
}

func TestRootCannotLogIn(t *testing.T) {
	// root's password is correct, but FTP for uid 0 is denied (and root is
	// in ftpusers, so user_ok is never set in the first place).
	app, err := ftpd.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sc := target.Scenario{
		Name: "root", ShouldGrant: false,
		New: func() target.Client { return ftpd.NewClientForTest("root", "t0psecret") },
	}
	client, k, runErr := runScenario(t, app, sc)
	var exit *vm.ExitStatus
	if !errors.As(runErr, &exit) {
		t.Fatalf("run: %v", runErr)
	}
	if client.Granted() {
		t.Errorf("root was granted FTP access:\n%s", k.Transcript.String())
	}
}

func TestGuestNeedsEmailPassword(t *testing.T) {
	app, err := ftpd.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sc := target.Scenario{
		Name: "anon-bad", ShouldGrant: false,
		New: func() target.Client { return ftpd.NewClientForTest("anonymous", "no-at-sign") },
	}
	client, k, runErr := runScenario(t, app, sc)
	var exit *vm.ExitStatus
	if !errors.As(runErr, &exit) {
		t.Fatalf("run: %v", runErr)
	}
	if client.Granted() {
		t.Errorf("guest with bad email was granted access:\n%s", k.Transcript.String())
	}
	if !strings.Contains(string(k.Transcript.ServerBytes()), "530 Guest login incorrect.") {
		t.Errorf("missing guest rejection:\n%s", k.Transcript.String())
	}
}

func TestAuthFunctionsHaveManyBranches(t *testing.T) {
	// The study needs a rich branch population in the auth section; make
	// sure the compiled user()/pass() carry a realistic count, with both
	// 2-byte and (possibly) 6-byte encodings.
	app, err := ftpd.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	total := 0
	for _, fname := range app.AuthFuncs {
		f, ok := app.Image.FuncByName(fname)
		if !ok {
			t.Fatalf("function %s missing from image", fname)
		}
		entries := disasm.Sweep(app.Image.Text, app.Image.TextBase,
			f.Start-app.Image.TextBase, f.End-app.Image.TextBase)
		branches := disasm.Branches(entries)
		if len(branches) < 10 {
			t.Errorf("%s has only %d branch instructions", fname, len(branches))
		}
		total += len(branches)
		for _, e := range entries {
			if e.Bad {
				t.Errorf("%s contains undecodable byte at %#x", fname, e.Addr)
			}
		}
	}
	if total < 30 {
		t.Errorf("auth section has only %d branches; campaign would be too small", total)
	}
	t.Logf("ftpd auth section: %d branch instructions", total)
}

func TestDeterministicGoldenTranscript(t *testing.T) {
	app, err := ftpd.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sc, _ := app.Scenario("Client2")
	_, k1, err1 := runScenario(t, app, sc)
	_, k2, err2 := runScenario(t, app, sc)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("nondeterministic termination: %v vs %v", err1, err2)
	}
	if string(k1.Transcript.ServerBytes()) != string(k2.Transcript.ServerBytes()) {
		t.Error("golden transcript is not deterministic")
	}
}

func TestEscalationGolden(t *testing.T) {
	// Fault-free: the guest logs in but the forbidden retrieval is denied.
	app, err := ftpd.Build()
	if err != nil {
		t.Fatal(err)
	}
	sc := ftpd.EscalationScenario()
	client, k, runErr := runScenario(t, app, sc)
	var exit *vm.ExitStatus
	if !errors.As(runErr, &exit) {
		t.Fatalf("run ended %v\n%s", runErr, k.Transcript.String())
	}
	out := string(k.Transcript.ServerBytes())
	if !strings.Contains(out, "230 Guest login ok") {
		t.Errorf("guest login missing:\n%s", k.Transcript.String())
	}
	if !strings.Contains(out, "550 Permission denied.") {
		t.Errorf("forbidden file not denied:\n%s", k.Transcript.String())
	}
	if client.Granted() {
		t.Error("golden escalation client reports escalation")
	}
}
