package ftpd

import (
	"reflect"
	"testing"
)

// feed drives the client with server lines and returns everything it sent.
func feed(c *client, lines ...string) []string {
	var sent []string
	for _, l := range lines {
		sent = append(sent, c.OnServerLine(l)...)
	}
	return sent
}

func TestClientHappyPath(t *testing.T) {
	c := newClient("alice", "pw")
	sent := feed(c,
		"220 ready",
		"331 Password required for alice.",
		"230 User alice logged in.",
		"150 Opening data connection.",
		"DATA hello",
		"226 Transfer complete.",
		"150 Opening data connection.",
		"DATA world",
		"226 Transfer complete.",
		"221 Goodbye.",
	)
	want := []string{
		"USER alice", "PASS pw",
		"RETR readme.txt", "RETR data.bin", "QUIT",
	}
	if !reflect.DeepEqual(sent, want) {
		t.Errorf("sent %q, want %q", sent, want)
	}
	if !c.Granted() || !c.Done() {
		t.Errorf("granted=%v done=%v", c.Granted(), c.Done())
	}
}

func TestClientDeniedPath(t *testing.T) {
	c := newClient("alice", "wrong")
	sent := feed(c,
		"220 ready",
		"331 Password required.",
		"530 Login incorrect.",
		"221 Goodbye.",
	)
	want := []string{"USER alice", "PASS wrong", "QUIT"}
	if !reflect.DeepEqual(sent, want) {
		t.Errorf("sent %q, want %q", sent, want)
	}
	if c.Granted() {
		t.Error("denied client reports granted")
	}
	if !c.Done() {
		t.Error("client not done after goodbye")
	}
}

func TestClientPasswordlessGrantIsBreakin(t *testing.T) {
	// A server granting at USER time (no password asked) is a break-in
	// signal the client must notice and exploit (retrieve files).
	c := newClient("alice", "pw")
	sent := feed(c, "220 ready", "230 logged in!?")
	if len(sent) != 2 || sent[1] != "RETR readme.txt" {
		t.Errorf("sent %q", sent)
	}
	if !c.Granted() {
		t.Error("grant not recorded")
	}
}

func TestClientIgnoresGarbageAndWaits(t *testing.T) {
	c := newClient("alice", "pw")
	sent := feed(c,
		"220 ready",
		"garbage #!$",
		"",
		"999 weird code",
	)
	if len(sent) != 1 { // only USER
		t.Errorf("sent %q", sent)
	}
	if c.Done() {
		t.Error("client gave up on garbage; it should wait (hang detection is the kernel's job)")
	}
}

func TestClientStopsOn421(t *testing.T) {
	c := newClient("alice", "pw")
	feed(c, "220 ready", "331 pw?", "421 Too many wrong passwords; closing connection.")
	if !c.Done() {
		t.Error("client should stop on 421")
	}
}

func TestCodeParsing(t *testing.T) {
	tests := []struct {
		line string
		want int
	}{
		{"220 ready", 220},
		{"530-multiline", 530},
		{"DATA x", 0},
		{"", 0},
		{"99", 0},
		{"5301", 0},  // four digits then no separator
		{"530", 530}, // bare code
		{"abc def", 0},
	}
	for _, tt := range tests {
		if got := code(tt.line); got != tt.want {
			t.Errorf("code(%q) = %d, want %d", tt.line, got, tt.want)
		}
	}
}

func TestEscalationClientGrantsOnlyOnForbiddenTransfer(t *testing.T) {
	c := NewEscalationClient()
	// Legitimate guest flow, forbidden file denied: no escalation.
	for _, l := range []string{
		"220 ready",
		"331 Guest login ok, send your complete e-mail address as password.",
		"230 Guest login ok, access restrictions apply.",
		"150 Opening ASCII mode data connection.", // readme.txt (allowed)
		"DATA welcome",
		"226 Transfer complete.",
		"550 Permission denied.", // data.bin
		"221 Goodbye.",
	} {
		c.OnServerLine(l)
	}
	if c.Granted() {
		t.Error("escalation reported on a compliant server")
	}
	// Server wrongly serves the forbidden file: escalation.
	c2 := NewEscalationClient()
	for _, l := range []string{
		"220 ready",
		"331 Guest login ok, send your complete e-mail address as password.",
		"230 Guest login ok, access restrictions apply.",
		"150 Opening ASCII mode data connection.",
		"DATA welcome",
		"226 Transfer complete.",
		"150 Opening ASCII mode data connection.", // data.bin served!
		"DATA 0011...",
		"226 Transfer complete.",
		"221 Goodbye.",
	} {
		c2.OnServerLine(l)
	}
	if !c2.Granted() {
		t.Error("escalation missed")
	}
}
