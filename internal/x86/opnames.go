package x86

import "strconv"

// opNames maps basic operations to their mnemonics. Conditional ops (Jcc,
// SETcc, CMOVcc) append the condition suffix in Mnemonic.
var opNames = map[Op]string{
	OpAdd:        "add",
	OpOr:         "or",
	OpAdc:        "adc",
	OpSbb:        "sbb",
	OpAnd:        "and",
	OpSub:        "sub",
	OpXor:        "xor",
	OpCmp:        "cmp",
	OpTest:       "test",
	OpMov:        "mov",
	OpMovZX:      "movzx",
	OpMovSX:      "movsx",
	OpLea:        "lea",
	OpXchg:       "xchg",
	OpPush:       "push",
	OpPop:        "pop",
	OpPushA:      "pusha",
	OpPopA:       "popa",
	OpPushF:      "pushf",
	OpPopF:       "popf",
	OpInc:        "inc",
	OpDec:        "dec",
	OpNot:        "not",
	OpNeg:        "neg",
	OpMul:        "mul",
	OpIMul:       "imul",
	OpDiv:        "div",
	OpIDiv:       "idiv",
	OpRol:        "rol",
	OpRor:        "ror",
	OpRcl:        "rcl",
	OpRcr:        "rcr",
	OpShl:        "shl",
	OpShr:        "shr",
	OpSar:        "sar",
	OpJcc:        "j",
	OpSetcc:      "set",
	OpJmp:        "jmp",
	OpJCXZ:       "jecxz",
	OpLoop:       "loop",
	OpLoopE:      "loope",
	OpLoopNE:     "loopne",
	OpCall:       "call",
	OpRet:        "ret",
	OpIntN:       "int",
	OpInt3:       "int3",
	OpLeave:      "leave",
	OpNop:        "nop",
	OpCbw:        "cwde",
	OpCwd:        "cdq",
	OpClc:        "clc",
	OpStc:        "stc",
	OpCmc:        "cmc",
	OpCld:        "cld",
	OpStd:        "std",
	OpSahf:       "sahf",
	OpLahf:       "lahf",
	OpXlat:       "xlat",
	OpMovs:       "movs",
	OpCmps:       "cmps",
	OpStos:       "stos",
	OpLods:       "lods",
	OpScas:       "scas",
	OpBound:      "bound",
	OpArpl:       "arpl",
	OpHlt:        "hlt",
	OpPrivileged: "(privileged)",
	OpSalc:       "salc",
	OpCMov:       "cmov",
	OpRdtsc:      "rdtsc",
	OpCpuid:      "cpuid",
	OpBt:         "bt",
	OpBts:        "bts",
	OpBtr:        "btr",
	OpBtc:        "btc",
	OpShld:       "shld",
	OpShrd:       "shrd",
	OpXadd:       "xadd",
	OpCmpxchg:    "cmpxchg",
	OpBswap:      "bswap",
	OpMovFromSeg: "mov(sreg)",
	OpMovToSeg:   "mov(sreg)",
	OpInto:       "into",
	OpEnter:      "enter",
	OpInvalid:    "(invalid)",
}

// String returns the base mnemonic of the operation.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return "op(" + strconv.Itoa(int(o)) + ")"
}

// Mnemonic returns the full mnemonic of a decoded instruction, including
// condition suffixes for Jcc/SETcc/CMOVcc.
func Mnemonic(in Inst) string {
	switch in.Op {
	case OpJcc, OpSetcc, OpCMov:
		return in.Op.String() + CondName(in.Cond)
	}
	return in.Op.String()
}
