package x86

import "math/bits"

// HammingDistance returns the number of bit positions in which a and b
// differ.
func HammingDistance(a, b byte) int {
	return bits.OnesCount8(a ^ b)
}

// MinPairwiseHamming returns the minimum Hamming distance between any two
// distinct bytes in set. It returns 8 (the maximum possible for bytes) for
// sets with fewer than two elements.
func MinPairwiseHamming(set []byte) int {
	minDist := 8
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if d := HammingDistance(set[i], set[j]); d < minDist {
				minDist = d
			}
		}
	}
	return minDist
}

// SingleBitNeighbors returns the eight bytes reachable from b by flipping
// exactly one bit, in bit order (bit 0 first).
func SingleBitNeighbors(b byte) [8]byte {
	var out [8]byte
	for i := 0; i < 8; i++ {
		out[i] = b ^ (1 << i)
	}
	return out
}

// Jcc8Opcodes returns the sixteen 2-byte conditional branch opcodes
// (0x70..0x7F) in condition order.
func Jcc8Opcodes() []byte {
	out := make([]byte, 16)
	for i := range out {
		out[i] = Jcc8Base + byte(i)
	}
	return out
}

// Jcc32SecondOpcodes returns the sixteen second opcode bytes of 6-byte
// conditional branches (0x80..0x8F) in condition order.
func Jcc32SecondOpcodes() []byte {
	out := make([]byte, 16)
	for i := range out {
		out[i] = Jcc32Base + byte(i)
	}
	return out
}

// DangerousPair reports whether flipping a single bit can turn opcode a
// into opcode b where both are conditional branches with *opposite*
// conditions (e.g. je/jne) — the exact mechanism behind the paper's
// security break-ins.
func DangerousPair(a, b byte) bool {
	if HammingDistance(a, b) != 1 {
		return false
	}
	both8 := IsJcc8Opcode(a) && IsJcc8Opcode(b)
	both32 := IsJcc32SecondOpcode(a) && IsJcc32SecondOpcode(b)
	if !both8 && !both32 {
		return false
	}
	return (a^b)&0x0F == 0x01 && a>>1 == b>>1
}
