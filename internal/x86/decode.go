package x86

// Additional operations reachable only through corrupted encodings (a bit
// flip can turn a branch into any neighbouring opcode, and the outcome
// distribution of the study depends on those neighbours behaving as they
// would on real silicon).
const (
	OpCMov Op = iota + 1000
	OpRdtsc
	OpCpuid
	OpBt
	OpBts
	OpBtr
	OpBtc
	OpShld
	OpShrd
	OpXadd
	OpCmpxchg
	OpBswap
	OpMovFromSeg // mov r/m16, sreg: stores a fake selector
	OpMovToSeg   // mov sreg, r/m16: faults (#GP) like loading garbage
	OpInto       // int 4 if OF
	OpEnter
)

// Extra operand forms used by a few instructions.
const (
	FormMoffsLoad  Form = iota + 100 // mov acc, [disp32]
	FormMoffsStore                   // mov [disp32], acc
)

// grp1Ops maps the reg field of opcode group 1 (0x80/0x81/0x83) to ALU ops.
var grp1Ops = [8]Op{OpAdd, OpOr, OpAdc, OpSbb, OpAnd, OpSub, OpXor, OpCmp}

// grp2Ops maps the reg field of opcode group 2 (shifts/rotates) to ops.
// Note /6 is the undocumented SHL alias and /7 is SAR.
var grp2Ops = [8]Op{OpRol, OpRor, OpRcl, OpRcr, OpShl, OpShr, OpShl, OpSar}

// aluOps maps (opcode >> 3) for the 0x00..0x3F block to ALU ops.
var aluOps = [8]Op{OpAdd, OpOr, OpAdc, OpSbb, OpAnd, OpSub, OpXor, OpCmp}

// decoder carries the mutable cursor state while decoding one instruction.
type decoder struct {
	code []byte
	i    int
}

func (d *decoder) byte() (byte, bool) {
	if d.i >= len(d.code) {
		return 0, false
	}
	b := d.code[d.i]
	d.i++
	return b, true
}

func (d *decoder) imm(n int) (int32, bool) {
	if d.i+n > len(d.code) {
		d.i = len(d.code)
		return 0, false
	}
	var v int32
	switch n {
	case 1:
		v = int32(int8(d.code[d.i]))
	case 2:
		v = int32(int16(uint16(d.code[d.i]) | uint16(d.code[d.i+1])<<8))
	case 4:
		v = int32(uint32(d.code[d.i]) | uint32(d.code[d.i+1])<<8 |
			uint32(d.code[d.i+2])<<16 | uint32(d.code[d.i+3])<<24)
	}
	d.i += n
	return v, true
}

// modrm decodes a ModRM byte (and SIB/displacement) in 32-bit addressing
// mode, returning the reg field and the r/m operand.
func (d *decoder) modrm() (reg uint8, rm RM, ok bool) {
	m, ok := d.byte()
	if !ok {
		return 0, rm, false
	}
	mod := m >> 6
	reg = (m >> 3) & 7
	rmf := m & 7
	if mod == 3 {
		return reg, RM{IsReg: true, Reg: rmf, Base: NoReg, Index: NoReg, Scale: 1}, true
	}
	rm = RM{Base: NoReg, Index: NoReg, Scale: 1}
	if rmf == 4 { // SIB
		sib, sok := d.byte()
		if !sok {
			return 0, rm, false
		}
		rm.Scale = 1 << (sib >> 6)
		idx := (sib >> 3) & 7
		if idx != 4 { // ESP cannot be an index
			rm.Index = int8(idx)
		}
		base := sib & 7
		if base == 5 && mod == 0 {
			// disp32 with no base
			disp, dok := d.imm(4)
			if !dok {
				return 0, rm, false
			}
			rm.Disp = disp
			return reg, rm, true
		}
		rm.Base = int8(base)
	} else if mod == 0 && rmf == 5 {
		disp, dok := d.imm(4)
		if !dok {
			return 0, rm, false
		}
		rm.Disp = disp
		return reg, rm, true
	} else {
		rm.Base = int8(rmf)
	}
	switch mod {
	case 1:
		disp, dok := d.imm(1)
		if !dok {
			return 0, rm, false
		}
		rm.Disp = disp
	case 2:
		disp, dok := d.imm(4)
		if !dok {
			return 0, rm, false
		}
		rm.Disp = disp
	}
	return reg, rm, true
}

// Decode decodes the instruction at the start of code (32-bit mode). The
// slice should extend up to MaxInstLen bytes past the instruction start
// when available; a short slice yields a truncated-instruction error, which
// the VM reports as a fetch fault.
func Decode(code []byte) (Inst, error) {
	var in Inst
	if err := DecodeInto(&in, code); err != nil {
		return Inst{}, err
	}
	return in, nil
}

// DecodeInto decodes like Decode but writes the result into *in instead of
// returning it by value, so hot callers (the VM's predecoded instruction
// cache fill and its decode-miss fallback) avoid copying the Inst struct.
// On error the contents of *in are unspecified.
func DecodeInto(in *Inst, code []byte) error {
	d := decoder{code: code}
	*in = Inst{}
	w := uint8(4)

prefixes:
	for {
		if d.i >= MaxInstLen {
			return undef(d.i, "instruction exceeds 15 bytes")
		}
		b, ok := d.byte()
		if !ok {
			return truncated(d.i)
		}
		switch b {
		case 0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65:
			// segment override: flat memory model, ignored
		case 0x66:
			w = 2
		case 0x67:
			// address-size override: ignored (flat 32-bit addressing);
			// documented deviation, only reachable via corrupted code
		case 0xF0:
			// lock: ignored (single-processor interpreter)
		case 0xF2, 0xF3:
			in.Rep = b
		default:
			d.i--
			break prefixes
		}
	}

	op, _ := d.byte()
	in.W = w

	// helpers
	fail := func() error { return truncated(d.i) }
	done := func() error {
		if d.i > MaxInstLen {
			return undef(d.i, "instruction exceeds 15 bytes")
		}
		in.Len = uint8(d.i)
		return nil
	}
	wBytes := func() int {
		if in.W == 2 {
			return 2
		}
		return 4
	}

	switch {
	case op < 0x40 && op&7 < 6 && op != 0x0F &&
		op&0xC7 != 0x06 && op&0xC7 != 0x07: // ALU block 0x00..0x3D
		in.Op = aluOps[op>>3]
		switch op & 7 {
		case 0, 1: // r/m, reg
			in.Form = FormRMReg
			if op&7 == 0 {
				in.W = 1
			}
			var ok bool
			in.Reg, in.RM, ok = d.modrm()
			if !ok {
				return fail()
			}
		case 2, 3: // reg, r/m
			in.Form = FormRegRM
			if op&7 == 2 {
				in.W = 1
			}
			var ok bool
			in.Reg, in.RM, ok = d.modrm()
			if !ok {
				return fail()
			}
		case 4: // al, imm8
			in.Form = FormAccImm
			in.W = 1
			v, ok := d.imm(1)
			if !ok {
				return fail()
			}
			in.Imm = v
		case 5: // eax, immW
			in.Form = FormAccImm
			v, ok := d.imm(wBytes())
			if !ok {
				return fail()
			}
			in.Imm = v
		}
		return done()
	}

	switch op {
	case 0x06, 0x0E, 0x16, 0x1E: // push seg
		in.Op, in.Form, in.Imm = OpPush, FormImm, 0x2B
		return done()
	case 0x07, 0x17, 0x1F: // pop seg: pop and discard
		in.Op, in.Form = OpPop, FormNone
		return done()
	case 0x27, 0x2F, 0x37, 0x3F, 0x9B: // daa/das/aaa/aas/fwait: harmless
		in.Op, in.Form = OpNop, FormNone
		return done()
	case 0x0F:
		return decode0F(&d, in, wBytes)
	}

	switch {
	case op >= 0x40 && op <= 0x47:
		in.Op, in.Form, in.Reg = OpInc, FormReg, op&7
		return done()
	case op >= 0x48 && op <= 0x4F:
		in.Op, in.Form, in.Reg = OpDec, FormReg, op&7
		return done()
	case op >= 0x50 && op <= 0x57:
		in.Op, in.Form, in.Reg = OpPush, FormReg, op&7
		return done()
	case op >= 0x58 && op <= 0x5F:
		in.Op, in.Form, in.Reg = OpPop, FormReg, op&7
		return done()
	case op >= 0x70 && op <= 0x7F: // jcc rel8
		in.Op, in.Form, in.Cond = OpJcc, FormRel, op&0xF
		v, ok := d.imm(1)
		if !ok {
			return fail()
		}
		in.Rel = v
		return done()
	case op >= 0x91 && op <= 0x97: // xchg eax, r32
		in.Op, in.Form, in.Reg = OpXchg, FormReg, op&7
		return done()
	case op >= 0xB0 && op <= 0xB7: // mov r8, imm8
		in.Op, in.Form, in.Reg, in.W = OpMov, FormRegImm, op&7, 1
		v, ok := d.imm(1)
		if !ok {
			return fail()
		}
		in.Imm = v
		return done()
	case op >= 0xB8 && op <= 0xBF: // mov r32, immW
		in.Op, in.Form, in.Reg = OpMov, FormRegImm, op&7
		v, ok := d.imm(wBytes())
		if !ok {
			return fail()
		}
		in.Imm = v
		return done()
	case op >= 0xD8 && op <= 0xDF: // x87 escape: decode ModRM, treat as nop
		in.Op, in.Form = OpNop, FormRM
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		return done()
	}

	switch op {
	case 0x60:
		in.Op = OpPushA
		return done()
	case 0x61:
		in.Op = OpPopA
		return done()
	case 0x62: // bound r32, m
		in.Op, in.Form = OpBound, FormRegRM
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		return done()
	case 0x63: // arpl r/m16, r16: legal in user mode, treated as no-op
		in.Op, in.Form, in.W = OpNop, FormRMReg, 2
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		return done()
	case 0x68: // push immW
		in.Op, in.Form = OpPush, FormImm
		v, ok := d.imm(wBytes())
		if !ok {
			return fail()
		}
		in.Imm = v
		return done()
	case 0x6A: // push imm8 (sign-extended)
		in.Op, in.Form = OpPush, FormImm
		v, ok := d.imm(1)
		if !ok {
			return fail()
		}
		in.Imm = v
		return done()
	case 0x69, 0x6B: // imul reg, r/m, imm
		in.Op, in.Form = OpIMul, FormRegRMImm
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		n := wBytes()
		if op == 0x6B {
			n = 1
		}
		v, ok := d.imm(n)
		if !ok {
			return fail()
		}
		in.Imm = v
		return done()
	case 0x6C, 0x6D, 0x6E, 0x6F: // ins/outs: I/O privileged
		in.Op = OpPrivileged
		return done()
	case 0x80, 0x82: // grp1 r/m8, imm8
		in.W = 1
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		in.Op, in.Form = grp1Ops[in.Reg], FormRMImm
		v, ok := d.imm(1)
		if !ok {
			return fail()
		}
		in.Imm = v
		return done()
	case 0x81: // grp1 r/mW, immW
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		in.Op, in.Form = grp1Ops[in.Reg], FormRMImm
		v, ok := d.imm(wBytes())
		if !ok {
			return fail()
		}
		in.Imm = v
		return done()
	case 0x83: // grp1 r/mW, imm8 (sign-extended)
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		in.Op, in.Form = grp1Ops[in.Reg], FormRMImm
		v, ok := d.imm(1)
		if !ok {
			return fail()
		}
		in.Imm = v
		return done()
	case 0x84, 0x85: // test r/m, reg
		in.Op, in.Form = OpTest, FormRMReg
		if op == 0x84 {
			in.W = 1
		}
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		return done()
	case 0x86, 0x87: // xchg r/m, reg
		in.Op, in.Form = OpXchg, FormRMReg
		if op == 0x86 {
			in.W = 1
		}
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		return done()
	case 0x88, 0x89: // mov r/m, reg
		in.Op, in.Form = OpMov, FormRMReg
		if op == 0x88 {
			in.W = 1
		}
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		return done()
	case 0x8A, 0x8B: // mov reg, r/m
		in.Op, in.Form = OpMov, FormRegRM
		if op == 0x8A {
			in.W = 1
		}
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		return done()
	case 0x8C: // mov r/m16, sreg
		in.Op, in.Form, in.W = OpMovFromSeg, FormRM, 2
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		return done()
	case 0x8D: // lea r32, m
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		if in.RM.IsReg {
			return undef(d.i, "lea with register operand")
		}
		in.Op, in.Form = OpLea, FormRegRM
		return done()
	case 0x8E: // mov sreg, r/m16
		in.Op, in.Form, in.W = OpMovToSeg, FormRM, 2
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		return done()
	case 0x8F: // pop r/m32 (grp1A /0)
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		if in.Reg != 0 {
			return undef(d.i, "grp1A reg field != 0")
		}
		in.Op, in.Form = OpPop, FormRM
		return done()
	case 0x90:
		in.Op = OpNop
		return done()
	case 0x98:
		in.Op = OpCbw
		return done()
	case 0x99:
		in.Op = OpCwd
		return done()
	case 0x9A: // call far ptr16:32
		if _, ok := d.imm(4); !ok {
			return fail()
		}
		if _, ok := d.imm(2); !ok {
			return fail()
		}
		in.Op = OpPrivileged
		return done()
	case 0x9C:
		in.Op = OpPushF
		return done()
	case 0x9D:
		in.Op = OpPopF
		return done()
	case 0x9E:
		in.Op = OpSahf
		return done()
	case 0x9F:
		in.Op = OpLahf
		return done()
	case 0xA0, 0xA1: // mov acc, moffs
		in.Op, in.Form = OpMov, FormMoffsLoad
		if op == 0xA0 {
			in.W = 1
		}
		v, ok := d.imm(4)
		if !ok {
			return fail()
		}
		in.Imm = v
		return done()
	case 0xA2, 0xA3: // mov moffs, acc
		in.Op, in.Form = OpMov, FormMoffsStore
		if op == 0xA2 {
			in.W = 1
		}
		v, ok := d.imm(4)
		if !ok {
			return fail()
		}
		in.Imm = v
		return done()
	case 0xA4, 0xA5:
		in.Op = OpMovs
		if op == 0xA4 {
			in.W = 1
		}
		return done()
	case 0xA6, 0xA7:
		in.Op = OpCmps
		if op == 0xA6 {
			in.W = 1
		}
		return done()
	case 0xA8: // test al, imm8
		in.Op, in.Form, in.W = OpTest, FormAccImm, 1
		v, ok := d.imm(1)
		if !ok {
			return fail()
		}
		in.Imm = v
		return done()
	case 0xA9: // test eax, immW
		in.Op, in.Form = OpTest, FormAccImm
		v, ok := d.imm(wBytes())
		if !ok {
			return fail()
		}
		in.Imm = v
		return done()
	case 0xAA, 0xAB:
		in.Op = OpStos
		if op == 0xAA {
			in.W = 1
		}
		return done()
	case 0xAC, 0xAD:
		in.Op = OpLods
		if op == 0xAC {
			in.W = 1
		}
		return done()
	case 0xAE, 0xAF:
		in.Op = OpScas
		if op == 0xAE {
			in.W = 1
		}
		return done()
	case 0xC0, 0xC1: // grp2 r/m, imm8
		if op == 0xC0 {
			in.W = 1
		}
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		in.Op, in.Form = grp2Ops[in.Reg], FormRMImm
		v, ok := d.imm(1)
		if !ok {
			return fail()
		}
		in.Imm = v & 0x1F
		return done()
	case 0xC2: // ret imm16
		in.Op, in.Form = OpRet, FormImm
		v, ok := d.imm(2)
		if !ok {
			return fail()
		}
		in.Imm = v & 0xFFFF
		return done()
	case 0xC3:
		in.Op, in.Form = OpRet, FormNone
		return done()
	case 0xC6, 0xC7: // mov r/m, imm (grp11 /0)
		if op == 0xC6 {
			in.W = 1
		}
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		if in.Reg != 0 {
			return undef(d.i, "grp11 reg field != 0")
		}
		in.Op, in.Form = OpMov, FormRMImm
		n := wBytes()
		if op == 0xC6 {
			n = 1
		}
		v, ok := d.imm(n)
		if !ok {
			return fail()
		}
		in.Imm = v
		return done()
	case 0xC8: // enter imm16, imm8
		frame, ok := d.imm(2)
		if !ok {
			return fail()
		}
		level, ok := d.imm(1)
		if !ok {
			return fail()
		}
		in.Op, in.Form = OpEnter, FormImm
		in.Imm = frame & 0xFFFF
		in.Rel = level & 0x1F
		return done()
	case 0xC9:
		in.Op = OpLeave
		return done()
	case 0xCA: // retf imm16
		if _, ok := d.imm(2); !ok {
			return fail()
		}
		in.Op = OpPrivileged
		return done()
	case 0xCB, 0xCF: // retf, iret
		in.Op = OpPrivileged
		return done()
	case 0xCC:
		in.Op = OpInt3
		return done()
	case 0xCD: // int imm8
		in.Op, in.Form = OpIntN, FormImm
		v, ok := d.imm(1)
		if !ok {
			return fail()
		}
		in.Imm = v & 0xFF
		return done()
	case 0xCE:
		in.Op = OpInto
		return done()
	case 0xD0, 0xD1: // grp2 r/m, 1
		if op == 0xD0 {
			in.W = 1
		}
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		in.Op, in.Form = grp2Ops[in.Reg], FormRMImm
		in.Imm = 1
		return done()
	case 0xD2, 0xD3: // grp2 r/m, cl
		if op == 0xD2 {
			in.W = 1
		}
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		in.Op, in.Form = grp2Ops[in.Reg], FormRM // count comes from CL
		return done()
	case 0xD4, 0xD5: // aam/aad imm8: treated as no-ops
		if _, ok := d.imm(1); !ok {
			return fail()
		}
		in.Op = OpNop
		return done()
	case 0xD6:
		in.Op = OpSalc
		return done()
	case 0xD7:
		in.Op = OpXlat
		return done()
	case 0xE0, 0xE1, 0xE2, 0xE3: // loopne/loope/loop/jecxz rel8
		switch op {
		case 0xE0:
			in.Op = OpLoopNE
		case 0xE1:
			in.Op = OpLoopE
		case 0xE2:
			in.Op = OpLoop
		case 0xE3:
			in.Op = OpJCXZ
		}
		in.Form = FormRel
		v, ok := d.imm(1)
		if !ok {
			return fail()
		}
		in.Rel = v
		return done()
	case 0xE4, 0xE5, 0xE6, 0xE7: // in/out imm8
		if _, ok := d.imm(1); !ok {
			return fail()
		}
		in.Op = OpPrivileged
		return done()
	case 0xE8: // call rel32
		in.Op, in.Form = OpCall, FormRel
		v, ok := d.imm(4)
		if !ok {
			return fail()
		}
		in.Rel = v
		return done()
	case 0xE9: // jmp rel32
		in.Op, in.Form = OpJmp, FormRel
		v, ok := d.imm(4)
		if !ok {
			return fail()
		}
		in.Rel = v
		return done()
	case 0xEA: // jmp far ptr16:32
		if _, ok := d.imm(4); !ok {
			return fail()
		}
		if _, ok := d.imm(2); !ok {
			return fail()
		}
		in.Op = OpPrivileged
		return done()
	case 0xEB: // jmp rel8
		in.Op, in.Form = OpJmp, FormRel
		v, ok := d.imm(1)
		if !ok {
			return fail()
		}
		in.Rel = v
		return done()
	case 0xEC, 0xED, 0xEE, 0xEF, 0xF1, 0xF4, 0xFA, 0xFB:
		// in/out dx, icebp, hlt, cli, sti
		in.Op = OpPrivileged
		return done()
	case 0xF5:
		in.Op = OpCmc
		return done()
	case 0xF6, 0xF7: // grp3
		if op == 0xF6 {
			in.W = 1
		}
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		switch in.Reg {
		case 0, 1: // test r/m, imm
			in.Op, in.Form = OpTest, FormRMImm
			n := wBytes()
			if op == 0xF6 {
				n = 1
			}
			v, vok := d.imm(n)
			if !vok {
				return fail()
			}
			in.Imm = v
		case 2:
			in.Op, in.Form = OpNot, FormRM
		case 3:
			in.Op, in.Form = OpNeg, FormRM
		case 4:
			in.Op, in.Form = OpMul, FormRM
		case 5:
			in.Op, in.Form = OpIMul, FormRM
		case 6:
			in.Op, in.Form = OpDiv, FormRM
		case 7:
			in.Op, in.Form = OpIDiv, FormRM
		}
		return done()
	case 0xF8:
		in.Op = OpClc
		return done()
	case 0xF9:
		in.Op = OpStc
		return done()
	case 0xFC:
		in.Op = OpCld
		return done()
	case 0xFD:
		in.Op = OpStd
		return done()
	case 0xFE: // grp4
		in.W = 1
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		switch in.Reg {
		case 0:
			in.Op, in.Form = OpInc, FormRM
		case 1:
			in.Op, in.Form = OpDec, FormRM
		default:
			return undef(d.i, "grp4 bad reg field")
		}
		return done()
	case 0xFF: // grp5
		var ok bool
		in.Reg, in.RM, ok = d.modrm()
		if !ok {
			return fail()
		}
		switch in.Reg {
		case 0:
			in.Op, in.Form = OpInc, FormRM
		case 1:
			in.Op, in.Form = OpDec, FormRM
		case 2:
			in.Op, in.Form = OpCall, FormRM
		case 4:
			in.Op, in.Form = OpJmp, FormRM
		case 6:
			in.Op, in.Form = OpPush, FormRM
		default: // far call/jmp through memory, reserved
			return undef(d.i, "grp5 far or reserved form")
		}
		return done()
	}

	return undef(d.i, "undefined opcode")
}

// decode0F decodes the two-byte (0x0F-escaped) opcode map.
func decode0F(d *decoder, in *Inst, wBytes func() int) error {
	fail := func() error { return truncated(d.i) }
	done := func() error {
		if d.i > MaxInstLen {
			return undef(d.i, "instruction exceeds 15 bytes")
		}
		in.Len = uint8(d.i)
		return nil
	}
	op, ok := d.byte()
	if !ok {
		return fail()
	}

	switch {
	case op >= 0x80 && op <= 0x8F: // jcc rel32
		in.Op, in.Form, in.Cond = OpJcc, FormRel, op&0xF
		v, vok := d.imm(wBytes())
		if !vok {
			return fail()
		}
		in.Rel = v
		return done()
	case op >= 0x90 && op <= 0x9F: // setcc r/m8
		in.Op, in.Form, in.Cond, in.W = OpSetcc, FormRM, op&0xF, 1
		var mok bool
		in.Reg, in.RM, mok = d.modrm()
		if !mok {
			return fail()
		}
		return done()
	case op >= 0x40 && op <= 0x4F: // cmovcc reg, r/m
		in.Op, in.Form, in.Cond = OpCMov, FormRegRM, op&0xF
		var mok bool
		in.Reg, in.RM, mok = d.modrm()
		if !mok {
			return fail()
		}
		return done()
	case op >= 0xC8 && op <= 0xCF: // bswap r32
		in.Op, in.Form, in.Reg = OpBswap, FormReg, op&7
		return done()
	}

	switch op {
	case 0x00, 0x01, 0x20, 0x21, 0x22, 0x23: // system/table/cr/dr ops
		var mok bool
		in.Reg, in.RM, mok = d.modrm()
		if !mok {
			return fail()
		}
		in.Op = OpPrivileged
		return done()
	case 0x06, 0x08, 0x09, 0x30, 0x32, 0x33: // clts/invd/wbinvd/wrmsr/rdmsr/rdpmc
		in.Op = OpPrivileged
		return done()
	case 0x0B: // ud2
		return undef(d.i, "ud2")
	case 0x1F: // multi-byte nop
		in.Op, in.Form = OpNop, FormRM
		var mok bool
		in.Reg, in.RM, mok = d.modrm()
		if !mok {
			return fail()
		}
		return done()
	case 0x31:
		in.Op = OpRdtsc
		return done()
	case 0xA0, 0xA8: // push fs/gs
		in.Op, in.Form, in.Imm = OpPush, FormImm, 0x2B
		return done()
	case 0xA1, 0xA9: // pop fs/gs
		in.Op, in.Form = OpPop, FormNone
		return done()
	case 0xA2:
		in.Op = OpCpuid
		return done()
	case 0xA3, 0xAB, 0xB3, 0xBB: // bt/bts/btr/btc r/m, reg
		switch op {
		case 0xA3:
			in.Op = OpBt
		case 0xAB:
			in.Op = OpBts
		case 0xB3:
			in.Op = OpBtr
		case 0xBB:
			in.Op = OpBtc
		}
		in.Form = FormRMReg
		var mok bool
		in.Reg, in.RM, mok = d.modrm()
		if !mok {
			return fail()
		}
		return done()
	case 0xA4, 0xAC: // shld/shrd r/m, reg, imm8
		if op == 0xA4 {
			in.Op = OpShld
		} else {
			in.Op = OpShrd
		}
		in.Form = FormRMImm
		var mok bool
		in.Reg, in.RM, mok = d.modrm()
		if !mok {
			return fail()
		}
		v, vok := d.imm(1)
		if !vok {
			return fail()
		}
		in.Imm = v & 0x1F
		return done()
	case 0xA5, 0xAD: // shld/shrd r/m, reg, cl
		if op == 0xA5 {
			in.Op = OpShld
		} else {
			in.Op = OpShrd
		}
		in.Form = FormRMReg // count from CL
		var mok bool
		in.Reg, in.RM, mok = d.modrm()
		if !mok {
			return fail()
		}
		in.Imm = -1 // marker: count in CL
		return done()
	case 0xAF: // imul reg, r/m
		in.Op, in.Form = OpIMul, FormRegRM
		var mok bool
		in.Reg, in.RM, mok = d.modrm()
		if !mok {
			return fail()
		}
		return done()
	case 0xB0, 0xB1: // cmpxchg r/m, reg
		in.Op, in.Form = OpCmpxchg, FormRMReg
		if op == 0xB0 {
			in.W = 1
		}
		var mok bool
		in.Reg, in.RM, mok = d.modrm()
		if !mok {
			return fail()
		}
		return done()
	case 0xB6, 0xB7, 0xBE, 0xBF: // movzx/movsx reg, r/m8|16
		if op == 0xB6 || op == 0xB7 {
			in.Op = OpMovZX
		} else {
			in.Op = OpMovSX
		}
		in.Form = FormRegRM
		if op == 0xB6 || op == 0xBE {
			in.W = 1 // source width; destination is always 32-bit
		} else {
			in.W = 2
		}
		var mok bool
		in.Reg, in.RM, mok = d.modrm()
		if !mok {
			return fail()
		}
		return done()
	case 0xBA: // grp8: bt/bts/btr/btc r/m, imm8
		var mok bool
		in.Reg, in.RM, mok = d.modrm()
		if !mok {
			return fail()
		}
		switch in.Reg {
		case 4:
			in.Op = OpBt
		case 5:
			in.Op = OpBts
		case 6:
			in.Op = OpBtr
		case 7:
			in.Op = OpBtc
		default:
			return undef(d.i, "grp8 reserved form")
		}
		in.Form = FormRMImm
		v, vok := d.imm(1)
		if !vok {
			return fail()
		}
		in.Imm = v & 0x1F
		return done()
	case 0xC0, 0xC1: // xadd r/m, reg
		in.Op, in.Form = OpXadd, FormRMReg
		if op == 0xC0 {
			in.W = 1
		}
		var mok bool
		in.Reg, in.RM, mok = d.modrm()
		if !mok {
			return fail()
		}
		return done()
	}

	return undef(d.i, "undefined two-byte opcode")
}
