// Package x86 implements an IA-32 instruction subset with the real Intel
// byte encodings (Intel Architecture Software Developer's Manual, vol. 2).
//
// Using the genuine encodings is essential for this study: the paper's
// central observation is that conditional branch opcodes are continuously
// encoded (0x70..0x7F for the 2-byte forms, 0x0F 0x80..0x8F for the 6-byte
// forms), so many security-critical opcode pairs are a single bit apart
// (je=0x74 vs jne=0x75, push %eax=0x50 vs push %ecx=0x51). Every bit-flip
// experiment in this repository mutates these real byte values.
package x86

// General-purpose register indices. The numeric values equal the register
// numbers used in x86 instruction encodings (reg and r/m fields).
const (
	EAX = 0
	ECX = 1
	EDX = 2
	EBX = 3
	ESP = 4
	EBP = 5
	ESI = 6
	EDI = 7
)

// NumRegs is the number of general-purpose registers.
const NumRegs = 8

// regNames32 maps register numbers to their 32-bit names.
var regNames32 = [NumRegs]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

// regNames8 maps register numbers to 8-bit register names (low byte set and
// the AH..BH set, exactly as encoded on x86).
var regNames8 = [NumRegs]string{"al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"}

// regNames16 maps register numbers to 16-bit register names.
var regNames16 = [NumRegs]string{"ax", "cx", "dx", "bx", "sp", "bp", "si", "di"}

// RegName returns the name of register r at operand width w (1, 2 or 4
// bytes). It returns "?" for out-of-range inputs.
func RegName(r uint8, w uint8) string {
	if r >= NumRegs {
		return "?"
	}
	switch w {
	case 1:
		return regNames8[r]
	case 2:
		return regNames16[r]
	case 4:
		return regNames32[r]
	}
	return "?"
}

// RegNumber returns the register number for a 32-bit register name, or
// (0, false) if the name is not a 32-bit register.
func RegNumber(name string) (uint8, bool) {
	for i, n := range regNames32 {
		if n == name {
			return uint8(i), true
		}
	}
	return 0, false
}

// EFLAGS bits (same bit positions as the hardware EFLAGS register).
const (
	FlagCF uint32 = 1 << 0  // carry
	FlagPF uint32 = 1 << 2  // parity (of low byte)
	FlagAF uint32 = 1 << 4  // auxiliary carry
	FlagZF uint32 = 1 << 6  // zero
	FlagSF uint32 = 1 << 7  // sign
	FlagDF uint32 = 1 << 10 // direction
	FlagOF uint32 = 1 << 11 // overflow
)

// Condition codes, in encoding order: the low four bits of a Jcc/SETcc
// opcode select one of these conditions.
const (
	CondO  = 0  // overflow
	CondNO = 1  // not overflow
	CondB  = 2  // below (CF)
	CondAE = 3  // above or equal (!CF)
	CondE  = 4  // equal (ZF)
	CondNE = 5  // not equal (!ZF)
	CondBE = 6  // below or equal (CF|ZF)
	CondA  = 7  // above (!CF & !ZF)
	CondS  = 8  // sign (SF)
	CondNS = 9  // not sign (!SF)
	CondP  = 10 // parity (PF)
	CondNP = 11 // not parity (!PF)
	CondL  = 12 // less (SF != OF)
	CondGE = 13 // greater or equal (SF == OF)
	CondLE = 14 // less or equal (ZF | SF != OF)
	CondG  = 15 // greater (!ZF & SF == OF)
)

// condNames maps condition codes to the canonical mnemonic suffixes.
var condNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// CondName returns the mnemonic suffix for condition cc (e.g. "e" for 4).
func CondName(cc uint8) string {
	return condNames[cc&0xF]
}

// CondNumber returns the condition code for a mnemonic suffix. Aliases used
// by the assembler ("z", "nz", "c", "nc", "na", "nae", "nb", "nbe", "ng",
// "nge", "nl", "nle", "pe", "po") are accepted.
func CondNumber(name string) (uint8, bool) {
	switch name {
	case "z":
		return CondE, true
	case "nz":
		return CondNE, true
	case "c":
		return CondB, true
	case "nc":
		return CondAE, true
	case "na":
		return CondBE, true
	case "nae":
		return CondB, true
	case "nb":
		return CondAE, true
	case "nbe":
		return CondA, true
	case "ng":
		return CondLE, true
	case "nge":
		return CondL, true
	case "nl":
		return CondGE, true
	case "nle":
		return CondG, true
	case "pe":
		return CondP, true
	case "po":
		return CondNP, true
	}
	for i, n := range condNames {
		if n == name {
			return uint8(i), true
		}
	}
	return 0, false
}

// EvalCond reports whether condition cc holds for the given EFLAGS value.
func EvalCond(cc uint8, flags uint32) bool {
	cf := flags&FlagCF != 0
	zf := flags&FlagZF != 0
	sf := flags&FlagSF != 0
	of := flags&FlagOF != 0
	pf := flags&FlagPF != 0
	var r bool
	switch cc >> 1 {
	case 0: // O
		r = of
	case 1: // B
		r = cf
	case 2: // E
		r = zf
	case 3: // BE
		r = cf || zf
	case 4: // S
		r = sf
	case 5: // P
		r = pf
	case 6: // L
		r = sf != of
	case 7: // LE
		r = zf || sf != of
	}
	if cc&1 != 0 {
		r = !r
	}
	return r
}

// Conditional branch opcode ranges (the subject of the paper's Section 6).
const (
	// Jcc8Base is the opcode of the first 2-byte conditional branch (jo).
	// The 2-byte set occupies 0x70..0x7F.
	Jcc8Base = 0x70
	// TwoByteEscape introduces the 2-byte opcode map (0x0F xx).
	TwoByteEscape = 0x0F
	// Jcc32Base is the second opcode byte of the first 6-byte conditional
	// branch (jo rel32). The 6-byte set occupies 0x0F 0x80..0x8F.
	Jcc32Base = 0x80
)

// IsJcc8Opcode reports whether b is the opcode of a 2-byte conditional
// branch (jcc rel8).
func IsJcc8Opcode(b byte) bool { return b >= 0x70 && b <= 0x7F }

// IsJcc32SecondOpcode reports whether b is the second opcode byte of a
// 6-byte conditional branch (0x0F b, jcc rel32).
func IsJcc32SecondOpcode(b byte) bool { return b >= 0x80 && b <= 0x8F }
