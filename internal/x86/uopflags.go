package x86

// This file carries the EFLAGS read/write metadata the VM's trace fuser
// uses for dead-flag elision: when a fused straight-line trace proves that
// every flag an instruction writes is overwritten before anything can read
// it — a later flag-writing instruction, a potentially faulting operation
// (a fault exposes EFLAGS to the injector's classifier), or the end of the
// trace — the VM may execute a flag-free variant of the handler.
//
// The metadata is deliberately conservative: only handlers whose flag
// behavior is exact and operand-independent are described. Everything else
// (shifts and rotates, whose flag writes depend on the runtime count;
// multiplies and divides; string ops; anything that touches memory, the
// stack, EIP, or the kernel) keeps the zero value, which the liveness pass
// treats as "reads and clobbers everything and may fault" — a full
// barrier.

// UopEffects describes the EFLAGS behavior of one uop handler.
type UopEffects struct {
	// Reads and Writes are the EFLAGS bits the handler's result depends
	// on and the bits it assigns, as Flag* masks.
	Reads  uint32
	Writes uint32
	// Pure marks the handler register-only and fault-free: no memory
	// access, no EIP/counter side effects, no kernel involvement —
	// provided the RM operand (when UsesRM is set) resolves to a
	// register. A non-pure handler is a liveness barrier.
	Pure bool
	// UsesRM marks handlers that dereference the RM operand; purity then
	// additionally requires RM.IsReg at the call site.
	UsesRM bool
}

// Flag groups as the VM's flag cores actually write them.
const (
	// arithFlags: ADD/ADC/SUB/SBB/CMP/NEG set all six status flags.
	arithFlags = FlagCF | FlagPF | FlagAF | FlagZF | FlagSF | FlagOF
	// logicFlags: AND/OR/XOR/TEST clear CF/OF and set SF/ZF/PF; AF is
	// left untouched.
	logicFlags = FlagCF | FlagPF | FlagZF | FlagSF | FlagOF
	// incFlags: INC/DEC set everything but CF, which they preserve.
	incFlags = FlagPF | FlagAF | FlagZF | FlagSF | FlagOF
	// lahfFlags: the five status flags LAHF/SAHF move through AH.
	lahfFlags = FlagCF | FlagPF | FlagAF | FlagZF | FlagSF
	// condFlags: the superset any condition code can consult.
	condFlags = FlagCF | FlagPF | FlagZF | FlagSF | FlagOF
)

var uopEffects = [NumUopHandlers]UopEffects{
	UAddRMReg: {Writes: arithFlags, Pure: true, UsesRM: true},
	UAddRegRM: {Writes: arithFlags, Pure: true, UsesRM: true},
	UAddRMImm: {Writes: arithFlags, Pure: true, UsesRM: true},
	UOrRMReg:  {Writes: logicFlags, Pure: true, UsesRM: true},
	UOrRegRM:  {Writes: logicFlags, Pure: true, UsesRM: true},
	UOrRMImm:  {Writes: logicFlags, Pure: true, UsesRM: true},
	UAdcRMReg: {Reads: FlagCF, Writes: arithFlags, Pure: true, UsesRM: true},
	UAdcRegRM: {Reads: FlagCF, Writes: arithFlags, Pure: true, UsesRM: true},
	UAdcRMImm: {Reads: FlagCF, Writes: arithFlags, Pure: true, UsesRM: true},
	USbbRMReg: {Reads: FlagCF, Writes: arithFlags, Pure: true, UsesRM: true},
	USbbRegRM: {Reads: FlagCF, Writes: arithFlags, Pure: true, UsesRM: true},
	USbbRMImm: {Reads: FlagCF, Writes: arithFlags, Pure: true, UsesRM: true},
	UAndRMReg: {Writes: logicFlags, Pure: true, UsesRM: true},
	UAndRegRM: {Writes: logicFlags, Pure: true, UsesRM: true},
	UAndRMImm: {Writes: logicFlags, Pure: true, UsesRM: true},
	USubRMReg: {Writes: arithFlags, Pure: true, UsesRM: true},
	USubRegRM: {Writes: arithFlags, Pure: true, UsesRM: true},
	USubRMImm: {Writes: arithFlags, Pure: true, UsesRM: true},
	UXorRMReg: {Writes: logicFlags, Pure: true, UsesRM: true},
	UXorRegRM: {Writes: logicFlags, Pure: true, UsesRM: true},
	UXorRMImm: {Writes: logicFlags, Pure: true, UsesRM: true},

	UCmpRMReg:  {Writes: arithFlags, Pure: true, UsesRM: true},
	UCmpRegRM:  {Writes: arithFlags, Pure: true, UsesRM: true},
	UCmpRMImm:  {Writes: arithFlags, Pure: true, UsesRM: true},
	UTestRMReg: {Writes: logicFlags, Pure: true, UsesRM: true},
	UTestRegRM: {Writes: logicFlags, Pure: true, UsesRM: true},
	UTestRMImm: {Writes: logicFlags, Pure: true, UsesRM: true},

	UIncReg: {Writes: incFlags, Pure: true},
	UIncRM:  {Writes: incFlags, Pure: true, UsesRM: true},
	UDecReg: {Writes: incFlags, Pure: true},
	UDecRM:  {Writes: incFlags, Pure: true, UsesRM: true},
	UNot:    {Pure: true, UsesRM: true},
	UNeg:    {Writes: arithFlags, Pure: true, UsesRM: true},

	UMovRMReg:  {Pure: true, UsesRM: true},
	UMovRegRM:  {Pure: true, UsesRM: true},
	UMovRMImm:  {Pure: true, UsesRM: true},
	UMovRegImm: {Pure: true},
	UMovZX:     {Pure: true, UsesRM: true},
	UMovSX8:    {Pure: true, UsesRM: true},
	UMovSX16:   {Pure: true, UsesRM: true},
	// LEA only evaluates the address arithmetic of its memory operand —
	// registers in, register out, no dereference — so it is pure even
	// though its RM is a memory form.
	ULea:     {Pure: true},
	UXchgAcc: {Pure: true},
	UXchgRM:  {Pure: true, UsesRM: true},
	UBswap:   {Pure: true},
	USetcc:   {Reads: condFlags, Pure: true, UsesRM: true},
	UCMov:    {Reads: condFlags, Pure: true, UsesRM: true},

	UNop:  {Pure: true},
	UCbw:  {Pure: true},
	UCwde: {Pure: true},
	UCwd:  {Pure: true},
	UCdq:  {Pure: true},
	UClc:  {Writes: FlagCF, Pure: true},
	UStc:  {Writes: FlagCF, Pure: true},
	UCmc:  {Reads: FlagCF, Writes: FlagCF, Pure: true},
	UCld:  {Writes: FlagDF, Pure: true},
	UStd:  {Writes: FlagDF, Pure: true},
	USahf: {Writes: lahfFlags, Pure: true},
	ULahf: {Reads: lahfFlags, Pure: true},
	USalc: {Reads: FlagCF, Pure: true},
}

// UopEffectsOf returns the flag metadata for handler index h. Unknown or
// out-of-range indices return the zero value (a full barrier).
func UopEffectsOf(h uint16) UopEffects {
	if int(h) < len(uopEffects) {
		return uopEffects[h]
	}
	return UopEffects{}
}
