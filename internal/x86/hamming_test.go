package x86_test

import (
	"testing"
	"testing/quick"

	"faultsec/internal/x86"
)

func TestHammingDistance(t *testing.T) {
	tests := []struct {
		a, b byte
		want int
	}{
		{0x74, 0x75, 1}, // je vs jne — the paper's central example
		{0x50, 0x51, 1}, // push eax vs push ecx — Figure 1's first case
		{0x00, 0xFF, 8},
		{0xAA, 0xAA, 0},
		{0x0F, 0xF0, 8},
		{0x74, 0x76, 1},
		{0x74, 0x77, 2},
	}
	for _, tt := range tests {
		if got := x86.HammingDistance(tt.a, tt.b); got != tt.want {
			t.Errorf("HammingDistance(%#02x, %#02x) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

// Property: Hamming distance is a metric on bytes.
func TestHammingDistanceIsMetric(t *testing.T) {
	symmetric := func(a, b byte) bool {
		return x86.HammingDistance(a, b) == x86.HammingDistance(b, a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error("symmetry:", err)
	}
	identity := func(a byte) bool { return x86.HammingDistance(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error("identity:", err)
	}
	triangle := func(a, b, c byte) bool {
		return x86.HammingDistance(a, c) <= x86.HammingDistance(a, b)+x86.HammingDistance(b, c)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error("triangle inequality:", err)
	}
}

func TestSingleBitNeighbors(t *testing.T) {
	nb := x86.SingleBitNeighbors(0x74)
	want := [8]byte{0x75, 0x76, 0x70, 0x7C, 0x64, 0x54, 0x34, 0xF4}
	if nb != want {
		t.Errorf("neighbors of 0x74 = %x, want %x", nb, want)
	}
	// Property: each neighbor is at distance exactly one.
	f := func(b byte) bool {
		for _, n := range x86.SingleBitNeighbors(b) {
			if x86.HammingDistance(b, n) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinPairwiseHamming(t *testing.T) {
	if d := x86.MinPairwiseHamming([]byte{0x00, 0x03, 0x0C}); d != 2 {
		t.Errorf("min distance = %d, want 2", d)
	}
	if d := x86.MinPairwiseHamming([]byte{0x42}); d != 8 {
		t.Errorf("singleton min distance = %d, want 8", d)
	}
	if d := x86.MinPairwiseHamming(nil); d != 8 {
		t.Errorf("empty min distance = %d, want 8", d)
	}
}

func TestJccOpcodeSets(t *testing.T) {
	j8 := x86.Jcc8Opcodes()
	if len(j8) != 16 || j8[0] != 0x70 || j8[15] != 0x7F {
		t.Errorf("Jcc8Opcodes = % x", j8)
	}
	j32 := x86.Jcc32SecondOpcodes()
	if len(j32) != 16 || j32[0] != 0x80 || j32[15] != 0x8F {
		t.Errorf("Jcc32SecondOpcodes = % x", j32)
	}
	for _, b := range j8 {
		if !x86.IsJcc8Opcode(b) {
			t.Errorf("IsJcc8Opcode(%#02x) = false", b)
		}
	}
	if x86.IsJcc8Opcode(0x6F) || x86.IsJcc8Opcode(0x80) {
		t.Error("IsJcc8Opcode accepts out-of-range bytes")
	}
	if !x86.IsJcc32SecondOpcode(0x84) || x86.IsJcc32SecondOpcode(0x90) {
		t.Error("IsJcc32SecondOpcode boundary broken")
	}
}

func TestDangerousPair(t *testing.T) {
	// Every condition/negation pair in both blocks is dangerous.
	for cc := 0; cc < 16; cc += 2 {
		a, b := byte(0x70+cc), byte(0x70+cc+1)
		if !x86.DangerousPair(a, b) || !x86.DangerousPair(b, a) {
			t.Errorf("(%#02x, %#02x) should be dangerous", a, b)
		}
		a6, b6 := byte(0x80+cc), byte(0x80+cc+1)
		if !x86.DangerousPair(a6, b6) {
			t.Errorf("(0F %#02x, 0F %#02x) should be dangerous", a6, b6)
		}
	}
	// Same-direction neighbors (jb 0x72 vs je 0x74 etc.) are not
	// "dangerous pairs" in the negation sense.
	if x86.DangerousPair(0x72, 0x76) {
		t.Error("jb/jna differ by one bit but are not a negation pair... distance check failed")
	}
	if x86.DangerousPair(0x70, 0x74) {
		t.Error("jo/je are not a negation pair")
	}
	if x86.DangerousPair(0x50, 0x51) {
		t.Error("push eax/push ecx are not branches")
	}
}
