package x86_test

import (
	"testing"

	"faultsec/internal/x86"
)

// TestDecodeKnownEncodings pins the decoder against hand-assembled byte
// sequences (values cross-checked with the Intel SDM).
func TestDecodeKnownEncodings(t *testing.T) {
	tests := []struct {
		name  string
		bytes []byte
		op    x86.Op
		form  x86.Form
		w     uint8
		len   uint8
		check func(t *testing.T, in x86.Inst)
	}{
		{
			name: "push_eax", bytes: []byte{0x50},
			op: x86.OpPush, form: x86.FormReg, w: 4, len: 1,
			check: func(t *testing.T, in x86.Inst) {
				if in.Reg != x86.EAX {
					t.Errorf("reg = %d, want EAX", in.Reg)
				}
			},
		},
		{
			name: "push_ecx", bytes: []byte{0x51},
			op: x86.OpPush, form: x86.FormReg, w: 4, len: 1,
			check: func(t *testing.T, in x86.Inst) {
				if in.Reg != x86.ECX {
					t.Errorf("reg = %d, want ECX", in.Reg)
				}
			},
		},
		{
			name: "je_rel8", bytes: []byte{0x74, 0x06},
			op: x86.OpJcc, form: x86.FormRel, w: 4, len: 2,
			check: func(t *testing.T, in x86.Inst) {
				if in.Cond != x86.CondE || in.Rel != 6 {
					t.Errorf("cond=%d rel=%d, want E/6", in.Cond, in.Rel)
				}
			},
		},
		{
			name: "jne_rel8_negative", bytes: []byte{0x75, 0xFE},
			op: x86.OpJcc, form: x86.FormRel, w: 4, len: 2,
			check: func(t *testing.T, in x86.Inst) {
				if in.Cond != x86.CondNE || in.Rel != -2 {
					t.Errorf("cond=%d rel=%d, want NE/-2", in.Cond, in.Rel)
				}
			},
		},
		{
			name: "jge_rel32", bytes: []byte{0x0F, 0x8D, 0x10, 0x00, 0x00, 0x00},
			op: x86.OpJcc, form: x86.FormRel, w: 4, len: 6,
			check: func(t *testing.T, in x86.Inst) {
				if in.Cond != x86.CondGE || in.Rel != 16 {
					t.Errorf("cond=%d rel=%d, want GE/16", in.Cond, in.Rel)
				}
			},
		},
		{
			name: "test_eax_eax", bytes: []byte{0x85, 0xC0},
			op: x86.OpTest, form: x86.FormRMReg, w: 4, len: 2,
			check: func(t *testing.T, in x86.Inst) {
				if !in.RM.IsReg || in.RM.Reg != x86.EAX || in.Reg != x86.EAX {
					t.Errorf("operands not eax,eax: %+v", in)
				}
			},
		},
		{
			name: "xor_ebx_ebx", bytes: []byte{0x31, 0xDB},
			op: x86.OpXor, form: x86.FormRMReg, w: 4, len: 2,
			check: func(t *testing.T, in x86.Inst) {
				if !in.RM.IsReg || in.RM.Reg != x86.EBX || in.Reg != x86.EBX {
					t.Errorf("operands not ebx,ebx: %+v", in)
				}
			},
		},
		{
			name: "call_rel32", bytes: []byte{0xE8, 0x00, 0x10, 0x00, 0x00},
			op: x86.OpCall, form: x86.FormRel, w: 4, len: 5,
			check: func(t *testing.T, in x86.Inst) {
				if in.Rel != 0x1000 {
					t.Errorf("rel = %#x, want 0x1000", in.Rel)
				}
			},
		},
		{
			name: "add_esp_imm8", bytes: []byte{0x83, 0xC4, 0x08},
			op: x86.OpAdd, form: x86.FormRMImm, w: 4, len: 3,
			check: func(t *testing.T, in x86.Inst) {
				if !in.RM.IsReg || in.RM.Reg != x86.ESP || in.Imm != 8 {
					t.Errorf("not add esp,8: %+v", in)
				}
			},
		},
		{
			name: "mov_eax_imm32", bytes: []byte{0xB8, 0x78, 0x56, 0x34, 0x12},
			op: x86.OpMov, form: x86.FormRegImm, w: 4, len: 5,
			check: func(t *testing.T, in x86.Inst) {
				if in.Imm != 0x12345678 {
					t.Errorf("imm = %#x", in.Imm)
				}
			},
		},
		{
			name: "mov_mem_disp8", bytes: []byte{0x8B, 0x45, 0x08},
			op: x86.OpMov, form: x86.FormRegRM, w: 4, len: 3,
			check: func(t *testing.T, in x86.Inst) {
				// mov eax, [ebp+8]
				if in.Reg != x86.EAX || in.RM.IsReg || in.RM.Base != int8(x86.EBP) || in.RM.Disp != 8 {
					t.Errorf("not mov eax,[ebp+8]: %+v", in)
				}
			},
		},
		{
			name: "mov_sib_scaled", bytes: []byte{0x8B, 0x04, 0x8D, 0x00, 0x00, 0x00, 0x00},
			op: x86.OpMov, form: x86.FormRegRM, w: 4, len: 7,
			check: func(t *testing.T, in x86.Inst) {
				// mov eax, [ecx*4 + 0]
				if in.RM.Index != int8(x86.ECX) || in.RM.Scale != 4 || in.RM.Base != x86.NoReg {
					t.Errorf("not [ecx*4]: %+v", in.RM)
				}
			},
		},
		{
			name: "lea", bytes: []byte{0x8D, 0x44, 0x24, 0x10},
			op: x86.OpLea, form: x86.FormRegRM, w: 4, len: 4,
			check: func(t *testing.T, in x86.Inst) {
				// lea eax, [esp+0x10]
				if in.RM.Base != int8(x86.ESP) || in.RM.Disp != 0x10 {
					t.Errorf("not [esp+0x10]: %+v", in.RM)
				}
			},
		},
		{
			name: "ret", bytes: []byte{0xC3},
			op: x86.OpRet, form: x86.FormNone, w: 4, len: 1,
		},
		{
			name: "ret_imm16", bytes: []byte{0xC2, 0x0C, 0x00},
			op: x86.OpRet, form: x86.FormImm, w: 4, len: 3,
			check: func(t *testing.T, in x86.Inst) {
				if in.Imm != 12 {
					t.Errorf("imm = %d, want 12", in.Imm)
				}
			},
		},
		{
			name: "int_0x80", bytes: []byte{0xCD, 0x80},
			op: x86.OpIntN, form: x86.FormImm, w: 4, len: 2,
			check: func(t *testing.T, in x86.Inst) {
				if in.Imm != 0x80 {
					t.Errorf("imm = %#x", in.Imm)
				}
			},
		},
		{
			name: "leave", bytes: []byte{0xC9},
			op: x86.OpLeave, form: x86.FormNone, w: 4, len: 1,
		},
		{
			name: "movzx_byte", bytes: []byte{0x0F, 0xB6, 0x00},
			op: x86.OpMovZX, form: x86.FormRegRM, w: 1, len: 3,
		},
		{
			name: "idiv_ecx", bytes: []byte{0xF7, 0xF9},
			op: x86.OpIDiv, form: x86.FormRM, w: 4, len: 2,
		},
		{
			name: "imul_3op_imm8", bytes: []byte{0x6B, 0xC9, 0x04},
			op: x86.OpIMul, form: x86.FormRegRMImm, w: 4, len: 3,
			check: func(t *testing.T, in x86.Inst) {
				// imul ecx, ecx, 4
				if in.Reg != x86.ECX || in.Imm != 4 {
					t.Errorf("not imul ecx,ecx,4: %+v", in)
				}
			},
		},
		{
			name: "shl_eax_cl", bytes: []byte{0xD3, 0xE0},
			op: x86.OpShl, form: x86.FormRM, w: 4, len: 2,
		},
		{
			name: "sar_eax_imm", bytes: []byte{0xC1, 0xF8, 0x04},
			op: x86.OpSar, form: x86.FormRMImm, w: 4, len: 3,
		},
		{
			name: "operand_size_prefix", bytes: []byte{0x66, 0xB8, 0x34, 0x12},
			op: x86.OpMov, form: x86.FormRegImm, w: 2, len: 4,
			check: func(t *testing.T, in x86.Inst) {
				if in.Imm != 0x1234 {
					t.Errorf("imm = %#x", in.Imm)
				}
			},
		},
		{
			name: "rep_movsb", bytes: []byte{0xF3, 0xA4},
			op: x86.OpMovs, form: x86.FormNone, w: 1, len: 2,
			check: func(t *testing.T, in x86.Inst) {
				if in.Rep != 0xF3 {
					t.Errorf("rep = %#x", in.Rep)
				}
			},
		},
		{
			name: "pusha", bytes: []byte{0x60},
			op: x86.OpPushA, form: x86.FormNone, w: 4, len: 1,
		},
		{
			name: "popa", bytes: []byte{0x61},
			op: x86.OpPopA, form: x86.FormNone, w: 4, len: 1,
		},
		{
			name: "cmove", bytes: []byte{0x0F, 0x44, 0xC1},
			op: x86.OpCMov, form: x86.FormRegRM, w: 4, len: 3,
			check: func(t *testing.T, in x86.Inst) {
				if in.Cond != x86.CondE {
					t.Errorf("cond = %d", in.Cond)
				}
			},
		},
		{
			name: "sete", bytes: []byte{0x0F, 0x94, 0xC0},
			op: x86.OpSetcc, form: x86.FormRM, w: 1, len: 3,
		},
		{
			name: "grp5_call_reg", bytes: []byte{0xFF, 0xD0},
			op: x86.OpCall, form: x86.FormRM, w: 4, len: 2,
		},
		{
			name: "grp5_jmp_reg", bytes: []byte{0xFF, 0xE0},
			op: x86.OpJmp, form: x86.FormRM, w: 4, len: 2,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in, err := x86.Decode(tt.bytes)
			if err != nil {
				t.Fatalf("decode % x: %v", tt.bytes, err)
			}
			if in.Op != tt.op {
				t.Errorf("op = %v, want %v", in.Op, tt.op)
			}
			if in.Form != tt.form {
				t.Errorf("form = %v, want %v", in.Form, tt.form)
			}
			if in.W != tt.w {
				t.Errorf("w = %d, want %d", in.W, tt.w)
			}
			if in.Len != tt.len {
				t.Errorf("len = %d, want %d", in.Len, tt.len)
			}
			if tt.check != nil {
				tt.check(t, in)
			}
		})
	}
}

func TestDecodeUndefined(t *testing.T) {
	undefined := [][]byte{
		{0x0F, 0x0B},       // ud2
		{0x0F, 0xFF, 0xC0}, // reserved two-byte opcode
		{0xFE, 0xD0},       // grp4 reserved reg field
		{0xFF, 0xF8},       // grp5 reserved reg field
		{0xC6, 0x48, 0x01}, // grp11 reg field != 0
		{0x8D, 0xC0},       // lea with register operand
	}
	for _, b := range undefined {
		if _, err := x86.Decode(b); err == nil {
			t.Errorf("decode % x succeeded, want #UD", b)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	truncated := [][]byte{
		{0xB8},             // mov eax, imm32 cut short
		{0x0F},             // bare two-byte escape
		{0x81, 0xC0, 0x01}, // add eax, imm32 cut short
		{0x8B, 0x04},       // SIB byte missing
		{},                 // empty
	}
	for _, b := range truncated {
		_, err := x86.Decode(b)
		de, ok := err.(*x86.DecodeError)
		if !ok || !de.Truncated {
			t.Errorf("decode % x: err=%v, want truncated", b, err)
		}
	}
}

// TestDecodeEveryByteTerminates fuzzes the full one-byte opcode space with
// trailing zeros: decoding must never panic and always either decode or
// report a reasoned error.
func TestDecodeEveryByteTerminates(t *testing.T) {
	buf := make([]byte, x86.MaxInstLen)
	for b := 0; b < 256; b++ {
		buf[0] = byte(b)
		for i := 1; i < len(buf); i++ {
			buf[i] = 0
		}
		in, err := x86.Decode(buf)
		if err == nil && (in.Len == 0 || int(in.Len) > x86.MaxInstLen) {
			t.Errorf("opcode %#02x: bad length %d", b, in.Len)
		}
	}
	// And the two-byte map.
	buf[0] = 0x0F
	for b := 0; b < 256; b++ {
		buf[1] = byte(b)
		for i := 2; i < len(buf); i++ {
			buf[i] = 0
		}
		in, err := x86.Decode(buf)
		if err == nil && (in.Len < 2 || int(in.Len) > x86.MaxInstLen) {
			t.Errorf("opcode 0F %#02x: bad length %d", b, in.Len)
		}
	}
}

func TestEvalCond(t *testing.T) {
	tests := []struct {
		cond  uint8
		flags uint32
		want  bool
	}{
		{x86.CondE, x86.FlagZF, true},
		{x86.CondE, 0, false},
		{x86.CondNE, x86.FlagZF, false},
		{x86.CondNE, 0, true},
		{x86.CondB, x86.FlagCF, true},
		{x86.CondAE, x86.FlagCF, false},
		{x86.CondBE, x86.FlagZF, true},
		{x86.CondBE, x86.FlagCF, true},
		{x86.CondA, 0, true},
		{x86.CondA, x86.FlagZF, false},
		{x86.CondS, x86.FlagSF, true},
		{x86.CondL, x86.FlagSF, true},                // SF != OF
		{x86.CondL, x86.FlagSF | x86.FlagOF, false},  // SF == OF
		{x86.CondGE, x86.FlagSF | x86.FlagOF, true},  // SF == OF
		{x86.CondG, 0, true},                         // !ZF, SF==OF
		{x86.CondG, x86.FlagZF, false},               //
		{x86.CondLE, x86.FlagZF, true},               //
		{x86.CondLE, x86.FlagOF, true},               // SF != OF
		{x86.CondP, x86.FlagPF, true},                //
		{x86.CondNP, x86.FlagPF, false},              //
		{x86.CondO, x86.FlagOF, true},                //
		{x86.CondNO, x86.FlagOF, false},              //
		{x86.CondNS, x86.FlagSF, false},              //
		{x86.CondG, x86.FlagSF | x86.FlagOF, true},   //
		{x86.CondLE, x86.FlagSF | x86.FlagOF, false}, //
	}
	for _, tt := range tests {
		if got := x86.EvalCond(tt.cond, tt.flags); got != tt.want {
			t.Errorf("EvalCond(%s, %#x) = %v, want %v",
				x86.CondName(tt.cond), tt.flags, got, tt.want)
		}
	}
}

// TestEvalCondNegationPairs: each odd condition is the negation of the
// preceding even one — this is the encoding property the paper exploits.
func TestEvalCondNegationPairs(t *testing.T) {
	flagSets := []uint32{
		0, x86.FlagZF, x86.FlagCF, x86.FlagSF, x86.FlagOF, x86.FlagPF,
		x86.FlagZF | x86.FlagCF, x86.FlagSF | x86.FlagOF,
		x86.FlagZF | x86.FlagSF | x86.FlagOF | x86.FlagCF | x86.FlagPF,
	}
	for cc := uint8(0); cc < 16; cc += 2 {
		for _, f := range flagSets {
			if x86.EvalCond(cc, f) == x86.EvalCond(cc+1, f) {
				t.Errorf("cond %s and %s agree under flags %#x",
					x86.CondName(cc), x86.CondName(cc+1), f)
			}
		}
	}
}

func TestCondNumberAliases(t *testing.T) {
	tests := []struct {
		name string
		want uint8
	}{
		{"e", x86.CondE}, {"z", x86.CondE}, {"ne", x86.CondNE}, {"nz", x86.CondNE},
		{"c", x86.CondB}, {"nc", x86.CondAE}, {"l", x86.CondL}, {"nge", x86.CondL},
		{"g", x86.CondG}, {"nle", x86.CondG}, {"a", x86.CondA}, {"nbe", x86.CondA},
		{"pe", x86.CondP}, {"po", x86.CondNP},
	}
	for _, tt := range tests {
		got, ok := x86.CondNumber(tt.name)
		if !ok || got != tt.want {
			t.Errorf("CondNumber(%q) = %d,%v want %d", tt.name, got, ok, tt.want)
		}
	}
	if _, ok := x86.CondNumber("xyzzy"); ok {
		t.Error("CondNumber accepted a bogus name")
	}
}

func TestRegNames(t *testing.T) {
	if x86.RegName(x86.EAX, 4) != "eax" || x86.RegName(x86.EDI, 4) != "edi" {
		t.Error("bad 32-bit names")
	}
	if x86.RegName(0, 1) != "al" || x86.RegName(4, 1) != "ah" || x86.RegName(7, 1) != "bh" {
		t.Error("bad 8-bit names")
	}
	if x86.RegName(3, 2) != "bx" {
		t.Error("bad 16-bit names")
	}
	if r, ok := x86.RegNumber("esi"); !ok || r != x86.ESI {
		t.Error("RegNumber(esi) failed")
	}
	if _, ok := x86.RegNumber("xmm0"); ok {
		t.Error("RegNumber accepted xmm0")
	}
}
