package x86

// Width-masking and sign-extension helpers shared by the decoder, the
// micro-op binder, and the VM's execution and flag-computation layers.
// These used to be duplicated (as switch helpers in internal/vm/flags.go
// and as inline conversions in the executor); this file is the single
// home so every layer agrees on the arithmetic.

// WidthMask returns the value mask for an operand width in bytes
// (1, 2 or 4; any other width behaves as 4, matching the interpreter's
// historical defaulting).
func WidthMask(w uint8) uint32 {
	switch w {
	case 1:
		return 0xFF
	case 2:
		return 0xFFFF
	default:
		return 0xFFFFFFFF
	}
}

// SignBit returns the sign-bit mask for an operand width in bytes.
func SignBit(w uint8) uint32 {
	switch w {
	case 1:
		return 0x80
	case 2:
		return 0x8000
	default:
		return 0x80000000
	}
}

// SignExtend8 sign-extends the low byte of v to 32 bits.
func SignExtend8(v uint32) uint32 { return uint32(int32(int8(v))) }

// SignExtend16 sign-extends the low 16 bits of v to 32 bits.
func SignExtend16(v uint32) uint32 { return uint32(int32(int16(v))) }
