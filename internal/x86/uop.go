package x86

// This file defines the micro-op (uop) layer: every decoded Inst resolves
// once, at decode/cache-fill time, into a compact Uop whose H field indexes
// the VM's dense dispatch table of per-(Op,Form) handler funcs. The
// resolution folds away everything the legacy interpreter switch re-derived
// on every retirement: operand routing (which Form), operand width masks
// and sign bits, the shift/ string / bit-test sub-operation, the count
// source (immediate vs CL), and accumulator-implied register operands.
//
// The handler index space is owned here so the binder and the executor
// agree by construction; the VM registers one func per index and a
// completeness test asserts every (Op, Form) pair the decoder can emit is
// bound to a real handler.

// Uop is the bound micro-op form of a decoded Inst. It carries only what
// handlers read on the hot path; the originating Inst is kept alongside it
// in the VM's predecoded instruction cache for the NoUops ablation.
type Uop struct {
	// H indexes the VM's dispatch table (always < NumUopHandlers).
	H uint16
	// Aux disambiguates handlers shared by an operation family: the Op of
	// a shift/rotate, string or bit-test instruction.
	Aux  uint16
	W    uint8 // operand width in bytes: 1, 2 or 4
	Cond uint8 // condition code for Jcc/SETcc/CMOVcc
	Reg  uint8 // reg-field or opcode-embedded register operand
	Len  uint8 // total encoded length in bytes
	Rep  uint8 // 0, 0xF2 (repne) or 0xF3 (rep/repe)
	RM   RM
	Imm  int32  // immediate operand (sign-extended at decode)
	Rel  int32  // branch displacement (sign-extended at decode)
	Mask uint32 // WidthMask(W), precomputed
	Sign uint32 // SignBit(W), precomputed
}

// Handler indices. UInvalid (the zero value) marks an unbound slot; UUD is
// the bound but unhandled case and raises #UD exactly like the legacy
// switch's default arm. The ALU block is laid out in form order
// (RMReg, RegRM, RMImm) per operation so the binder can index it.
const (
	UInvalid uint16 = iota

	// ALU family: base+0 = r/m,reg; base+1 = reg,r/m; base+2 = r/m,imm.
	// Accumulator-immediate forms bind to base+2 with a synthesized
	// register RM (see aluH).
	UAddRMReg
	UAddRegRM
	UAddRMImm
	UOrRMReg
	UOrRegRM
	UOrRMImm
	UAdcRMReg
	UAdcRegRM
	UAdcRMImm
	USbbRMReg
	USbbRegRM
	USbbRMImm
	UAndRMReg
	UAndRegRM
	UAndRMImm
	USubRMReg
	USubRegRM
	USubRMImm
	UXorRMReg
	UXorRegRM
	UXorRMImm
	UCmpRMReg
	UCmpRegRM
	UCmpRMImm
	UTestRMReg
	UTestRegRM
	UTestRMImm

	UIncReg
	UIncRM
	UDecReg
	UDecRM
	UNot
	UNeg
	UShiftImm
	UShiftCL
	UShldImm
	UShldCL
	UShrdImm
	UShrdCL
	UBitTestReg
	UBitTestImm
	UXadd
	UCmpxchg

	UMovRMReg
	UMovRegRM
	UMovRMImm
	UMovRegImm
	UMovMoffsLoad
	UMovMoffsStore
	UMovZX
	UMovSX8
	UMovSX16
	ULea
	UXchgAcc
	UXchgRM
	UBswap
	USetcc
	UCMov
	UMovFromSeg
	UMovToSeg

	UPushReg
	UPushImm
	UPushRM
	UPopReg
	UPopRM
	UPopDiscard
	UPushA
	UPopA
	UPushF
	UPopF
	ULeave
	UEnter

	UJcc
	UJmpRel
	UJmpRM
	UJCXZ
	ULoop
	ULoopE
	ULoopNE
	UCallRel
	UCallRM
	URet
	UInt3
	UInto
	USyscall
	UBadInt
	UBound

	UMul
	UIMulRM
	UIMulReg
	UIMulImm
	UDiv
	UIDiv

	UNop
	UCbw
	UCwde
	UCwd
	UCdq
	UClc
	UStc
	UCmc
	UCld
	UStd
	USahf
	ULahf
	USalc
	UXlat
	UString
	URdtsc
	UCpuid
	UPrivileged
	UUD

	// NumUopHandlers sizes the VM's dispatch table.
	NumUopHandlers
)

// Bind resolves the decoded instruction into its micro-op. It never fails:
// pairs with no dedicated handler bind to UUD, which faults exactly like
// the legacy switch's default arm.
func (in *Inst) Bind(u *Uop) {
	*u = Uop{
		W:    in.W,
		Cond: in.Cond,
		Reg:  in.Reg,
		Len:  in.Len,
		Rep:  in.Rep,
		RM:   in.RM,
		Imm:  in.Imm,
		Rel:  in.Rel,
		Mask: WidthMask(in.W),
		Sign: SignBit(in.W),
	}
	u.H = bindHandler(in, u)
}

// aluH maps an ALU operand form onto its handler within the op's block.
// The accumulator-immediate form is folded into the r/m,imm handler by
// synthesizing the register RM the ModRM decoder would have produced for
// the accumulator, so no handler re-derives the implied operand.
func aluH(base uint16, in *Inst, u *Uop) uint16 {
	switch in.Form {
	case FormRMReg:
		return base
	case FormRegRM:
		return base + 1
	case FormRMImm:
		return base + 2
	case FormAccImm:
		u.RM = RM{IsReg: true, Reg: EAX, Base: NoReg, Index: NoReg, Scale: 1}
		return base + 2
	}
	return UUD
}

//nolint:gocyclo // the one-time (Op, Form) -> handler resolution is one flat switch
func bindHandler(in *Inst, u *Uop) uint16 {
	switch in.Op {
	case OpAdd:
		return aluH(UAddRMReg, in, u)
	case OpOr:
		return aluH(UOrRMReg, in, u)
	case OpAdc:
		return aluH(UAdcRMReg, in, u)
	case OpSbb:
		return aluH(USbbRMReg, in, u)
	case OpAnd:
		return aluH(UAndRMReg, in, u)
	case OpSub:
		return aluH(USubRMReg, in, u)
	case OpXor:
		return aluH(UXorRMReg, in, u)
	case OpCmp:
		return aluH(UCmpRMReg, in, u)
	case OpTest:
		return aluH(UTestRMReg, in, u)

	case OpMov:
		switch in.Form {
		case FormRMReg:
			return UMovRMReg
		case FormRegRM:
			return UMovRegRM
		case FormRMImm:
			return UMovRMImm
		case FormRegImm:
			return UMovRegImm
		case FormMoffsLoad:
			return UMovMoffsLoad
		case FormMoffsStore:
			return UMovMoffsStore
		}
	case OpMovZX:
		return UMovZX
	case OpMovSX:
		if in.W == 1 {
			return UMovSX8
		}
		return UMovSX16
	case OpLea:
		return ULea
	case OpXchg:
		if in.Form == FormReg {
			return UXchgAcc
		}
		return UXchgRM
	case OpBswap:
		return UBswap
	case OpSetcc:
		return USetcc
	case OpCMov:
		return UCMov
	case OpMovFromSeg:
		return UMovFromSeg
	case OpMovToSeg:
		return UMovToSeg

	case OpPush:
		switch in.Form {
		case FormReg:
			return UPushReg
		case FormImm:
			return UPushImm
		case FormRM:
			return UPushRM
		}
	case OpPop:
		switch in.Form {
		case FormReg:
			return UPopReg
		case FormRM:
			return UPopRM
		case FormNone:
			return UPopDiscard
		}
	case OpPushA:
		return UPushA
	case OpPopA:
		return UPopA
	case OpPushF:
		return UPushF
	case OpPopF:
		return UPopF
	case OpLeave:
		return ULeave
	case OpEnter:
		return UEnter

	case OpInc:
		if in.Form == FormReg {
			return UIncReg
		}
		return UIncRM
	case OpDec:
		if in.Form == FormReg {
			return UDecReg
		}
		return UDecRM
	case OpNot:
		return UNot
	case OpNeg:
		return UNeg
	case OpRol, OpRor, OpRcl, OpRcr, OpShl, OpShr, OpSar:
		u.Aux = uint16(in.Op)
		if in.Form == FormRM { // count in CL
			return UShiftCL
		}
		return UShiftImm
	case OpShld:
		if in.Imm == -1 { // marker: count in CL
			return UShldCL
		}
		return UShldImm
	case OpShrd:
		if in.Imm == -1 {
			return UShrdCL
		}
		return UShrdImm
	case OpBt, OpBts, OpBtr, OpBtc:
		u.Aux = uint16(in.Op)
		if in.Form == FormRMImm {
			return UBitTestImm
		}
		return UBitTestReg
	case OpXadd:
		return UXadd
	case OpCmpxchg:
		return UCmpxchg

	case OpJcc:
		return UJcc
	case OpJmp:
		if in.Form == FormRM {
			return UJmpRM
		}
		return UJmpRel
	case OpJCXZ:
		return UJCXZ
	case OpLoop:
		return ULoop
	case OpLoopE:
		return ULoopE
	case OpLoopNE:
		return ULoopNE
	case OpCall:
		if in.Form == FormRM {
			return UCallRM
		}
		return UCallRel
	case OpRet:
		// FormNone decodes with Imm == 0, so one handler covers both the
		// plain and the stack-adjusting return.
		return URet
	case OpIntN:
		if in.Imm == 0x80 {
			return USyscall
		}
		return UBadInt
	case OpInt3:
		return UInt3
	case OpInto:
		return UInto
	case OpBound:
		return UBound

	case OpMul:
		return UMul
	case OpIMul:
		switch in.Form {
		case FormRM:
			return UIMulRM
		case FormRegRM:
			return UIMulReg
		case FormRegRMImm:
			return UIMulImm
		}
	case OpDiv:
		return UDiv
	case OpIDiv:
		return UIDiv

	case OpNop, OpArpl:
		return UNop
	case OpCbw:
		if in.W == 2 { // cbw: ax = sext(al)
			return UCbw
		}
		return UCwde
	case OpCwd:
		if in.W == 2 { // cwd: dx = sign(ax)
			return UCwd
		}
		return UCdq
	case OpClc:
		return UClc
	case OpStc:
		return UStc
	case OpCmc:
		return UCmc
	case OpCld:
		return UCld
	case OpStd:
		return UStd
	case OpSahf:
		return USahf
	case OpLahf:
		return ULahf
	case OpSalc:
		return USalc
	case OpXlat:
		return UXlat
	case OpMovs, OpCmps, OpStos, OpLods, OpScas:
		u.Aux = uint16(in.Op)
		return UString
	case OpRdtsc:
		return URdtsc
	case OpCpuid:
		return UCpuid
	case OpHlt, OpPrivileged:
		return UPrivileged
	}
	return UUD
}
