package x86_test

import (
	"testing"

	"faultsec/internal/x86"
)

// BenchmarkDecode measures single-instruction decode latency across a
// representative instruction mix (allocation-free is the goal: decode runs
// on every retired instruction).
func BenchmarkDecode(b *testing.B) {
	insts := [][]byte{
		{0x50},
		{0x74, 0x06},
		{0x85, 0xC0},
		{0x8B, 0x45, 0x08},
		{0xE8, 0x00, 0x10, 0x00, 0x00},
		{0x0F, 0x84, 0x10, 0x00, 0x00, 0x00},
		{0x83, 0xC4, 0x08},
		{0xB8, 0x78, 0x56, 0x34, 0x12},
		{0x8B, 0x04, 0x8D, 0x00, 0x00, 0x00, 0x00},
		{0xC3},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x86.Decode(insts[i%len(insts)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeWorstCase measures decode of the longest supported form
// (prefix + two-byte opcode + SIB + disp32).
func BenchmarkDecodeWorstCase(b *testing.B) {
	inst := []byte{0x66, 0x0F, 0xB7, 0x84, 0x8D, 0x00, 0x01, 0x00, 0x00}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x86.Decode(inst); err != nil {
			b.Fatal(err)
		}
	}
}
