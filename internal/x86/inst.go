package x86

// Op identifies an operation. Start at one so the zero value is invalid
// (OpInvalid), per Go style.
type Op int

// Operations implemented by the interpreter. Real x86 opcodes that the
// study's programs never need but that a bit flip can produce are decoded
// either to one of these (if cheap to support) or to OpPrivileged /
// a decode error: both fault, exactly as SIGILL/SIGSEGV would on Linux.
const (
	OpInvalid Op = iota
	OpAdd
	OpOr
	OpAdc
	OpSbb
	OpAnd
	OpSub
	OpXor
	OpCmp
	OpTest
	OpMov
	OpMovZX
	OpMovSX
	OpLea
	OpXchg
	OpPush
	OpPop
	OpPushA
	OpPopA
	OpPushF
	OpPopF
	OpInc
	OpDec
	OpNot
	OpNeg
	OpMul
	OpIMul // one-, two- and three-operand forms
	OpDiv
	OpIDiv
	OpRol
	OpRor
	OpRcl
	OpRcr
	OpShl
	OpShr
	OpSar
	OpJcc
	OpSetcc
	OpJmp
	OpJCXZ
	OpLoop
	OpLoopE
	OpLoopNE
	OpCall
	OpRet  // optionally with immediate stack adjustment
	OpIntN // int imm8
	OpInt3
	OpLeave
	OpNop
	OpCbw // cwde with W=4, cbw with W=2
	OpCwd // cdq with W=4, cwd with W=2
	OpClc
	OpStc
	OpCmc
	OpCld
	OpStd
	OpSahf
	OpLahf
	OpXlat
	OpMovs
	OpCmps
	OpStos
	OpLods
	OpScas
	OpBound
	OpArpl
	OpHlt
	OpPrivileged // in/out/cli/sti and friends: #GP in user mode
	OpSalc
)

// Form describes the operand shape of a decoded instruction.
type Form int

// Operand forms.
const (
	FormNone     Form = iota // no operands (or operands implied by Op)
	FormRMReg                // op r/m, reg
	FormRegRM                // op reg, r/m
	FormRMImm                // op r/m, imm
	FormRM                   // op r/m
	FormReg                  // op reg (register encoded in opcode)
	FormRegImm               // op reg, imm (register encoded in opcode)
	FormAccImm               // op al/ax/eax, imm
	FormImm                  // op imm
	FormRel                  // op rel8/rel32 (branch displacement)
	FormRegRMImm             // op reg, r/m, imm (three-operand imul)
)

// RM is a decoded ModRM operand: either a register or a memory reference
// base + index*scale + disp.
type RM struct {
	IsReg bool
	Reg   uint8 // register number when IsReg
	Base  int8  // base register, -1 if absent
	Index int8  // index register, -1 if absent
	Scale uint8 // 1, 2, 4 or 8
	Disp  int32
}

// NoReg marks an absent base or index register in RM.
const NoReg = int8(-1)

// Inst is one decoded instruction.
type Inst struct {
	Op   Op
	Form Form
	W    uint8 // operand width in bytes: 1, 2 or 4
	Cond uint8 // condition code for Jcc/SETcc/LoopE-style ops
	Reg  uint8 // reg-field or opcode-embedded register operand
	RM   RM
	Imm  int32 // immediate operand (sign-extended as encoded)
	Rel  int32 // branch displacement (sign-extended)
	Len  uint8 // total encoded length in bytes
	Rep  uint8 // 0, 0xF2 (repne) or 0xF3 (rep/repe)
}

// MaxInstLen is the architectural maximum x86 instruction length.
const MaxInstLen = 15

// DecodeError describes why instruction decoding failed. Decoding failures
// correspond to #UD (illegal instruction) on hardware.
type DecodeError struct {
	// Offset is the byte offset within the instruction where decoding
	// stopped.
	Offset int
	// Reason is a short human-readable explanation.
	Reason string
	// Truncated reports that the byte buffer ended mid-instruction. The VM
	// translates this into a fetch fault at the page boundary.
	Truncated bool
}

// Error implements the error interface.
func (e *DecodeError) Error() string {
	return "x86 decode: " + e.Reason
}

func undef(off int, reason string) error {
	return &DecodeError{Offset: off, Reason: reason}
}

func truncated(off int) error {
	return &DecodeError{Offset: off, Reason: "truncated instruction", Truncated: true}
}
