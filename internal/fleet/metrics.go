package fleet

// Metrics is a point-in-time snapshot of a fleet campaign's internals:
// shard lease states, retry/speculation counters, and per-worker tallies.
// campaignd folds it into GET /campaigns/{id}/metrics.
type Metrics struct {
	ShardsTotal         int   `json:"shardsTotal"`
	ShardsDone          int   `json:"shardsDone"`
	Retries             int64 `json:"retries"`
	SpeculativeAttempts int64 `json:"speculativeAttempts"`
	DuplicateRuns       int64 `json:"duplicateRuns"`
	JournalAdopted      int64 `json:"journalAdopted"`
	// CacheHits counts runs the coordinator adopted from the
	// content-addressed result store before leasing; CacheMisses counts
	// runs leased because their target group had no usable entry.
	// CacheWrites counts entries persisted on shard settlement and
	// CacheInvalid entries rejected as corrupt or inconsistent.
	CacheHits    int64 `json:"cacheHits,omitempty"`
	CacheMisses  int64 `json:"cacheMisses,omitempty"`
	CacheWrites  int64 `json:"cacheWrites,omitempty"`
	CacheInvalid int64 `json:"cacheInvalid,omitempty"`
	// RunsTotal counts fresh (non-adopted) runs delivered and accepted.
	RunsTotal  int64   `json:"runsTotal"`
	RunsPerSec float64 `json:"runsPerSec"`

	WorkersTotal   int            `json:"workersTotal"`
	WorkersHealthy int            `json:"workersHealthy"`
	Workers        []WorkerStatus `json:"workers"`
	Shards         []ShardStatus  `json:"shards"`
}

// WorkerStatus is one worker's row in Metrics.
type WorkerStatus struct {
	Name       string `json:"name"`
	Healthy    bool   `json:"healthy"`
	ShardsDone int64  `json:"shardsDone"`
	Runs       int64  `json:"runs"`
}

// ShardStatus is one shard's row in Metrics.
type ShardStatus struct {
	ID      int `json:"id"`
	Start   int `json:"start"`
	End     int `json:"end"`
	Targets int `json:"targets"`
	// Done counts completed runs in the shard (journal-adopted + fresh).
	Done int `json:"done"`
	// State is "pending", "leased", or "done".
	State    string `json:"state"`
	Attempts int    `json:"attempts"`
	// Worker is the current (or last) worker executing the shard.
	Worker string `json:"worker,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Metrics snapshots the coordinator. Safe to call concurrently with Run.
func (c *Coordinator) Metrics() Metrics {
	m := Metrics{
		Retries:             c.retries.Load(),
		SpeculativeAttempts: c.speculative.Load(),
		DuplicateRuns:       c.duplicates.Load(),
		JournalAdopted:      c.adopted.Load(),
		RunsTotal:           c.freshRuns.Load(),
		WorkersTotal:        len(c.workers),
	}
	if sec := c.elapsed().Seconds(); sec > 0 {
		m.RunsPerSec = float64(m.RunsTotal) / sec
	}
	for _, ws := range c.workers {
		healthy := ws.healthy.Load()
		if healthy {
			m.WorkersHealthy++
		}
		m.Workers = append(m.Workers, WorkerStatus{
			Name:       ws.w.Name(),
			Healthy:    healthy,
			ShardsDone: ws.shardsDone.Load(),
			Runs:       ws.runs.Load(),
		})
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cv != nil {
		m.CacheHits, m.CacheMisses, m.CacheWrites, m.CacheInvalid = c.cv.Counters()
	}
	m.ShardsTotal = len(c.shards)
	m.ShardsDone = c.shardsOut
	for _, sh := range c.shards {
		st := ShardStatus{
			ID: sh.id, Start: sh.start, End: sh.end, Targets: sh.targets,
			Done: sh.adopted + sh.freshDone, Attempts: sh.attempts,
			Worker: sh.worker,
		}
		switch {
		case sh.done:
			st.State = "done"
		case sh.runners > 0:
			st.State = "leased"
		default:
			st.State = "pending"
		}
		if sh.lastErr != nil {
			st.Error = sh.lastErr.Error()
		}
		m.Shards = append(m.Shards, st)
	}
	return m
}

// compile-time interface checks.
var (
	_ Worker = (*HTTPWorker)(nil)
	_ Worker = (*Loopback)(nil)
)
