package fleet_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"faultsec/internal/campaign"
	"faultsec/internal/encoding"
	"faultsec/internal/fleet"
	"faultsec/internal/inject"
	"faultsec/internal/target"
)

// TestFleetSchemeIdentity: a fleet splitting a compile-time-hardened
// campaign over two loopback workers produces byte-identical Stats to one
// engine run — the scheme name travels in every shard spec, and each
// worker independently rebuilds the hardened image and re-derives the
// same enumeration over it.
func TestFleetSchemeIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	want, err := campaign.New(campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeDupCompare, KeepResults: true,
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	cfg := fleetConfig(app, sc,
		fleet.NewLoopback("w0", app), fleet.NewLoopback("w1", app))
	cfg.Campaign.Scheme = encoding.SchemeDupCompare
	got, err := fleet.New(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got)
	if name := encoding.SchemeName(got.Scheme); name != "dupcmp" {
		t.Errorf("fleet Stats.Scheme = %q, want dupcmp", name)
	}
}

// TestWorkerRefusesSchemeSkew pins the fleet's loud failure modes for a
// scheme-skewed deployment, mirroring the fault-model skew checks: a
// worker that does not know the spec's scheme refuses the shard with the
// registered list, and a worker whose hardened enumeration disagrees with
// the coordinator's Total reports version skew with the scheme named.
func TestWorkerRefusesSchemeSkew(t *testing.T) {
	app, sc := ftpClient1(t)
	lb := fleet.NewLoopback("w0", app)
	base := fleet.ShardSpec{
		App: app.Name, Scenario: sc.Name, Scheme: "x86",
		Total: 1, Indices: []int{0},
	}

	unknown := base
	unknown.Scheme = "tmr"
	err := lb.RunShard(context.Background(), unknown, func(int, *campaign.WireResult) {
		t.Error("refused shard emitted a result")
	})
	if err == nil || !strings.Contains(err.Error(), "unknown scheme") ||
		!strings.Contains(err.Error(), "dupcmp") {
		t.Errorf("unknown-scheme shard: err = %v, want refusal listing registered schemes", err)
	}

	// A registered scheme with another scheme's Total is version skew:
	// dupcmp's hardened image enumerates more branch targets than the
	// baseline the coordinator claimed.
	skew := base
	skew.Scheme = "dupcmp"
	err = lb.RunShard(context.Background(), skew, func(int, *campaign.WireResult) {
		t.Error("refused shard emitted a result")
	})
	if err == nil || !strings.Contains(err.Error(), "version skew") ||
		!strings.Contains(err.Error(), "dupcmp") {
		t.Errorf("scheme-skew shard: err = %v, want version-skew refusal naming the scheme", err)
	}

	// Over HTTP the unknown scheme surfaces as 400 before any stream bytes.
	srv := httptest.NewServer(fleet.NewWorkerServer(map[string]*target.App{app.Name: app}, nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL, "application/json",
		strings.NewReader(`{"app":"ftpd","scenario":"Client1","scheme":"tmr","total":1,"indices":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown-scheme spec over HTTP: status %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "unknown scheme") {
		t.Errorf("400 body %s does not name the unknown scheme", body)
	}
}

// TestShardSpecCarriesSchemeName pins the spec-building seam: the
// coordinator writes the scheme's registry name into every shard spec (a
// nil scheme is the x86 baseline), so schemes added later need no fleet
// protocol change.
func TestShardSpecCarriesSchemeName(t *testing.T) {
	app, sc := ftpClient1(t)
	hardened, err := app.ForScheme(encoding.SchemeEncodedBranch)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := inject.Targets(hardened)
	if err != nil {
		t.Fatal(err)
	}
	exps := inject.Enumerate(targets, encoding.SchemeEncodedBranch)

	lb := fleet.NewLoopback("w0", app)
	spec := fleet.ShardSpec{
		App: app.Name, Scenario: sc.Name, Scheme: "encbranch",
		Total: len(exps), Indices: []int{0, 1, 2},
	}
	n := 0
	if err := lb.RunShard(context.Background(), spec, func(int, *campaign.WireResult) { n++ }); err != nil {
		t.Fatalf("encbranch shard on a worker holding the baseline app: %v", err)
	}
	if n != len(spec.Indices) {
		t.Errorf("shard emitted %d results, want %d", n, len(spec.Indices))
	}
}
