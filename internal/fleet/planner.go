package fleet

import (
	"time"

	"faultsec/internal/inject"
)

// shardState is one planned shard and its lease-table entry. The planner
// fields (id..adopted) are immutable after planning; the lease fields are
// guarded by the coordinator mutex.
type shardState struct {
	id         int
	start, end int   // global index range [start, end), target-aligned
	targets    int   // distinct target addresses
	pending    []int // global indices needing execution (not journal-adopted)
	adopted    int   // journal-adopted runs inside [start, end)

	// Lease state (guarded by Coordinator.mu).
	done         bool
	runners      int  // attempts currently executing this shard
	speculated   bool // a straggler copy has been dispatched
	attempts     int  // failed attempts so far
	nextEligible time.Time
	startedAt    time.Time // current attempt start
	worker       string    // current/last worker name
	lastErr      error
	// lastFailWorker names the worker whose attempt failed most recently.
	// A multi-worker fleet never re-leases a shard to that worker first:
	// a crashed worker fails attempts instantly (connection refused), and
	// without this rule it could exhaust a shard's attempt budget before
	// the health loop notices it is gone and a live worker rescues the
	// shard.
	lastFailWorker string
	freshDone      int // fresh results delivered
}

// planShards partitions the enumeration into contiguous, target-aligned
// shards of roughly shardRuns experiments. Experiments sharing a target
// address share a prefix snapshot, so a shard never splits a target's
// bit-flips across workers — each worker's engine gets whole groups and
// full snapshot reuse. Shards tile [0, len(exps)) exactly; have marks
// journal-adopted experiments, which stay inside their shard (for global
// ordering) but are excluded from the dispatched pending set.
func planShards(exps []inject.Experiment, have []bool, shardRuns int) []*shardState {
	var shards []*shardState
	newShard := func(start int) *shardState {
		return &shardState{id: len(shards), start: start, end: start}
	}
	var cur *shardState
	for i := 0; i < len(exps); {
		// One target-address group: the contiguous run of exps at addr.
		j := i
		addr := exps[i].Target.Addr
		for j < len(exps) && exps[j].Target.Addr == addr {
			j++
		}
		if cur == nil {
			cur = newShard(i)
		}
		cur.end = j
		cur.targets++
		for k := i; k < j; k++ {
			if have != nil && have[k] {
				cur.adopted++
			} else {
				cur.pending = append(cur.pending, k)
			}
		}
		if cur.end-cur.start >= shardRuns {
			shards = append(shards, cur)
			cur = nil
		}
		i = j
	}
	if cur != nil {
		shards = append(shards, cur)
	}
	return shards
}

// defaultShardRuns sizes shards so each worker sees several per campaign
// (retry granularity and load balance) without shards degenerating into
// single experiments (per-shard golden-run overhead).
func defaultShardRuns(total, workers int) int {
	if workers < 1 {
		workers = 1
	}
	n := total / (8 * workers)
	if n < 32 {
		n = 32
	}
	return n
}
