package fleet

import (
	"testing"
	"time"

	"faultsec/internal/inject"
)

func fakeExps(targetBits ...int) []inject.Experiment {
	var exps []inject.Experiment
	for ti, bits := range targetBits {
		tgt := inject.Target{Addr: uint32(0x1000 + 16*ti)}
		for b := 0; b < bits; b++ {
			exps = append(exps, inject.Experiment{Target: tgt, Bit: b})
		}
	}
	return exps
}

func TestPlanShardsTilesAndAligns(t *testing.T) {
	exps := fakeExps(8, 8, 24, 8, 16, 8)
	shards := planShards(exps, nil, 16)

	next := 0
	for _, sh := range shards {
		if sh.start != next {
			t.Fatalf("shard %d starts at %d, want %d (shards must tile)", sh.id, sh.start, next)
		}
		if sh.end <= sh.start {
			t.Fatalf("shard %d is empty [%d,%d)", sh.id, sh.start, sh.end)
		}
		next = sh.end
		// Target alignment: a shard boundary never splits an address.
		if sh.end < len(exps) && exps[sh.end-1].Target.Addr == exps[sh.end].Target.Addr {
			t.Fatalf("shard %d ends at %d, splitting target %#x", sh.id, sh.end, exps[sh.end].Target.Addr)
		}
		if len(sh.pending) != sh.end-sh.start {
			t.Fatalf("shard %d: %d pending, want %d (nothing adopted)", sh.id, len(sh.pending), sh.end-sh.start)
		}
	}
	if next != len(exps) {
		t.Fatalf("shards cover [0,%d), want [0,%d)", next, len(exps))
	}
	if len(shards) < 2 {
		t.Fatalf("expected multiple shards for %d runs at shardRuns=16, got %d", len(exps), len(shards))
	}
}

func TestPlanShardsExcludesAdopted(t *testing.T) {
	exps := fakeExps(8, 8, 8, 8)
	have := make([]bool, len(exps))
	for i := 0; i < 8; i++ {
		have[i] = true // first target fully journaled
	}
	have[12] = true // one run of the second target

	shards := planShards(exps, have, 8)
	if shards[0].adopted != 8 || len(shards[0].pending) != 0 {
		t.Fatalf("shard 0: adopted=%d pending=%d, want 8/0", shards[0].adopted, len(shards[0].pending))
	}
	if shards[1].adopted != 1 || len(shards[1].pending) != 7 {
		t.Fatalf("shard 1: adopted=%d pending=%d, want 1/7", shards[1].adopted, len(shards[1].pending))
	}
	for _, idx := range shards[1].pending {
		if idx == 12 {
			t.Fatal("adopted index 12 must not be dispatched")
		}
	}
}

func TestBackoffCapped(t *testing.T) {
	cfg := Config{RetryBase: 100 * time.Millisecond, RetryMax: 500 * time.Millisecond}
	want := []time.Duration{
		100 * time.Millisecond, // after 1 failure
		200 * time.Millisecond,
		400 * time.Millisecond,
		500 * time.Millisecond, // capped
		500 * time.Millisecond,
	}
	for i, w := range want {
		if got := cfg.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestDefaultShardRuns(t *testing.T) {
	if got := defaultShardRuns(10000, 4); got != 312 {
		t.Errorf("defaultShardRuns(10000, 4) = %d, want 312", got)
	}
	if got := defaultShardRuns(100, 4); got != 32 {
		t.Errorf("small campaigns floor at 32, got %d", got)
	}
}
