package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"faultsec/internal/campaign"
	"faultsec/internal/castore"
	"faultsec/internal/encoding"
	"faultsec/internal/inject"
	"faultsec/internal/target"
)

// maxSpecBytes bounds a POST /shards body. Indices for even a whole-text
// random campaign fit comfortably.
const maxSpecBytes = 8 << 20

// shardLine is one NDJSON line of a shard response stream: a result line
// (Result set), the terminating success line (Done set, Runs the number
// of result lines streamed), or a terminal error line. A stream that ends
// without a Done or Error line was truncated — the worker died mid-shard
// — and the client reports an error so the coordinator re-leases.
type shardLine struct {
	Idx    int                  `json:"idx,omitempty"`
	Result *campaign.WireResult `json:"result,omitempty"`
	Done   bool                 `json:"done,omitempty"`
	Runs   int                  `json:"runs,omitempty"`
	Error  string               `json:"error,omitempty"`
}

// AppResolver resolves a shard spec's app name to a built application.
// Workers constructed over a fixed app set use a map lookup; campaignd
// resolves through the target registry so any registered app is buildable
// lazily on first lease.
type AppResolver func(name string) (*target.App, error)

// mapResolver adapts a fixed app set to an AppResolver.
func mapResolver(apps map[string]*target.App) AppResolver {
	return func(name string) (*target.App, error) {
		app, ok := apps[name]
		if !ok {
			return nil, fmt.Errorf("fleet: unknown app %q", name)
		}
		return app, nil
	}
}

// prepareShard resolves a spec against the worker's app resolver and
// returns the closure that executes it. Resolution errors (unknown app,
// scenario, scheme, an enumeration that does not match Total, an index
// out of range) surface here, before any result is produced, so the HTTP
// handler can still answer 400.
func prepareShard(resolve AppResolver, spec *ShardSpec,
	cache *castore.Store) (func(ctx context.Context, emit emitFunc) error, error) {
	app, err := resolve(spec.App)
	if err != nil {
		return nil, err
	}
	sc, ok := app.Scenario(spec.Scenario)
	if !ok {
		return nil, fmt.Errorf("fleet: app %s has no scenario %q", spec.App, spec.Scenario)
	}
	scheme, err := encoding.Parse(spec.Scheme)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	cacheMode, err := campaign.NormalizeCacheMode(spec.CacheMode)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	cfg := campaign.Config{
		App: app, Scenario: sc, Scheme: scheme, Model: spec.Model,
		Fuel: spec.Fuel, Parallelism: spec.Parallelism, Watchdog: spec.Watchdog,
		NoICache: spec.NoICache, NoUops: spec.NoUops, NoSnapshot: spec.NoSnapshot,
		NoDirtyTracking: spec.NoDirtyTracking, NoTraces: spec.NoTraces,
	}
	if cache != nil {
		cfg.CacheMode = cacheMode
		cfg.Cache = cache
	}
	// EnumerateConfig resolves spec.Model through the worker's own
	// faultmodel registry: a model this build does not know is refused
	// here (400 on the HTTP path), and a model whose enumeration size
	// disagrees with the coordinator's trips the Total check below — the
	// two loud failure modes for a model-skewed fleet.
	exps, err := campaign.EnumerateConfig(&cfg)
	if err != nil {
		return nil, err
	}
	if len(exps) != spec.Total {
		return nil, fmt.Errorf("fleet: enumeration mismatch for %s/%s/%s model=%s: worker has %d experiments, coordinator %d (version skew?)",
			spec.App, spec.Scenario, spec.Scheme, inject.ModelOf(exps), len(exps), spec.Total)
	}
	shard := make([]inject.Experiment, len(spec.Indices))
	globals := make([]int, len(spec.Indices))
	for i, idx := range spec.Indices {
		if idx < 0 || idx >= len(exps) {
			return nil, fmt.Errorf("fleet: shard index %d out of range [0,%d)", idx, len(exps))
		}
		shard[i] = exps[idx]
		globals[i] = idx
	}
	return func(ctx context.Context, emit emitFunc) error {
		return campaign.New(cfg).RunShard(ctx, shard, globals, resultEmit(emit))
	}, nil
}

// WorkerServer is the worker-side HTTP handler for PathShards: it accepts
// a ShardSpec, executes it on a fresh engine, and streams each completed
// run as an NDJSON line. Mount it on any campaignd-style mux to turn that
// process into a fleet worker.
type WorkerServer struct {
	resolve AppResolver
	// gate, when non-nil, is consulted before a shard starts; a non-nil
	// error refuses the lease with 503 (campaignd's drain gate).
	gate func() error
	// cache, when non-nil, is the worker-local result store; shards whose
	// spec carries a cache mode execute with it.
	cache *castore.Store

	shardsServed atomic.Int64
	runsServed   atomic.Int64
}

// SetCache installs a worker-local result store, honored by shard specs
// that carry a cache mode. Call before serving traffic.
func (ws *WorkerServer) SetCache(s *castore.Store) { ws.cache = s }

// NewWorkerServer builds a worker handler over the given apps. gate may
// be nil; otherwise a non-nil gate() error refuses new shards with 503
// Service Unavailable (the coordinator treats that as retryable and
// re-leases elsewhere).
func NewWorkerServer(apps map[string]*target.App, gate func() error) *WorkerServer {
	return &WorkerServer{resolve: mapResolver(apps), gate: gate}
}

// NewWorkerServerResolver builds a worker handler that resolves apps on
// demand through the given resolver (e.g. the target registry), so a
// shard lease for any registered app builds it lazily on first use.
func NewWorkerServerResolver(resolve AppResolver, gate func() error) *WorkerServer {
	return &WorkerServer{resolve: resolve, gate: gate}
}

// ShardsServed and RunsServed report how much work this worker has
// executed (completed shard streams may still have been discarded by the
// coordinator as duplicates; these count what was produced, not adopted).
func (ws *WorkerServer) ShardsServed() int64 { return ws.shardsServed.Load() }

// RunsServed reports the number of result lines streamed.
func (ws *WorkerServer) RunsServed() int64 { return ws.runsServed.Load() }

func writeJSONError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (ws *WorkerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	if ws.gate != nil {
		if err := ws.gate(); err != nil {
			writeJSONError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxSpecBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec ShardSpec
	if err := dec.Decode(&spec); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad shard spec: %v", err)
		return
	}
	run, err := prepareShard(ws.resolve, &spec, ws.cache)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "%v", err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var mu sync.Mutex // engine workers emit concurrently; the stream is one writer
	runs := 0
	writeLine := func(line *shardLine) {
		mu.Lock()
		defer mu.Unlock()
		_ = enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	ws.shardsServed.Add(1)
	err = run(r.Context(), func(idx int, res *campaign.WireResult) {
		mu.Lock()
		runs++
		_ = enc.Encode(&shardLine{Idx: idx, Result: res})
		if flusher != nil {
			flusher.Flush()
		}
		mu.Unlock()
		ws.runsServed.Add(1)
	})
	if err != nil {
		// The status line is long gone; a terminal error line tells the
		// client this stream is a failed attempt, not a truncated one —
		// either way the coordinator re-leases the shard.
		writeLine(&shardLine{Error: err.Error()})
		return
	}
	writeLine(&shardLine{Done: true, Runs: runs})
}

// Loopback is the in-process worker: shard execution without HTTP, used
// when a coordinator runs single-node (and by tests and benchmarks to
// isolate coordination overhead). Its results flow through the same spec
// resolution and wire conversion as remote workers, so the single-node
// fleet is the distributed code path, not a special case.
type Loopback struct {
	name    string
	resolve AppResolver
	cache   *castore.Store
}

// SetCache installs a worker-local result store, honored by shard specs
// that carry a cache mode.
func (l *Loopback) SetCache(s *castore.Store) { l.cache = s }

// NewLoopback builds an in-process worker serving the given apps.
func NewLoopback(name string, apps ...*target.App) *Loopback {
	m := make(map[string]*target.App, len(apps))
	for _, a := range apps {
		m[a.Name] = a
	}
	return &Loopback{name: name, resolve: mapResolver(m)}
}

// NewLoopbackResolver builds an in-process worker that resolves apps on
// demand through the given resolver.
func NewLoopbackResolver(name string, resolve AppResolver) *Loopback {
	return &Loopback{name: name, resolve: resolve}
}

// Name identifies the worker.
func (l *Loopback) Name() string { return l.name }

// Healthy always succeeds: the loopback worker lives in the coordinator's
// own process.
func (l *Loopback) Healthy(context.Context) error { return nil }

// RunShard executes the shard on an in-process engine.
func (l *Loopback) RunShard(ctx context.Context, spec ShardSpec, emit func(int, *campaign.WireResult)) error {
	run, err := prepareShard(l.resolve, &spec, l.cache)
	if err != nil {
		return err
	}
	return run(ctx, emit)
}
