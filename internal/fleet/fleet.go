// Package fleet distributes injection campaigns across processes: a
// coordinator splits a campaign's deterministic experiment enumeration
// into target-address shards and leases them to a pool of workers, each
// of which executes its shard with the snapshot campaign engine
// (internal/campaign) and streams per-run results back.
//
// The design leans on two properties the rest of the repo already
// guarantees:
//
//   - Every injection experiment is an independent, deterministic run:
//     the same (app, scenario, scheme, fuel, experiment index) produces
//     byte-identical results on any worker. Shards can therefore be
//     retried on worker crash, timeout, or 5xx — the coordinator verifies
//     that duplicate deliveries match and fails loudly on a determinism
//     violation instead of merging silently diverging data.
//
//   - The enumeration order is the campaign's global index space. The
//     coordinator keys results, the journal, and shard plans by global
//     index, so the merged inject.Stats is byte-identical to what a
//     single-process campaign.Engine produces, including the order of
//     CrashLatencies and per-run Results.
//
// The coordinator owns the authoritative journal (the same JSONL format
// and single-writer registry as the engine, via campaign.Journal), leases
// shards with per-attempt deadlines and capped exponential backoff,
// health-checks workers over GET /healthz, and speculatively re-dispatches
// straggler shards. An in-process loopback worker makes the single-node
// degenerate case behave exactly like running the engine directly.
package fleet

import (
	"context"
	"time"

	"faultsec/internal/campaign"
	"faultsec/internal/inject"
)

// Worker paths served by a worker node (any campaignd instance).
const (
	// PathShards accepts POST ShardSpec and streams NDJSON shard results.
	PathShards = "/shards"
	// PathHealthz is the liveness probe the coordinator heartbeats.
	PathHealthz = "/healthz"
)

// Worker executes shards. Implementations: HTTPWorker (a remote campaignd
// in worker mode) and Loopback (in-process).
type Worker interface {
	// Name identifies the worker in metrics and errors.
	Name() string
	// RunShard executes spec, calling emit for every completed run with
	// its campaign-global experiment index. emit may be called from
	// multiple goroutines. RunShard returns nil only after the whole
	// shard completed; a partial stream (crash, timeout, cancellation)
	// returns an error and the coordinator re-leases the shard.
	RunShard(ctx context.Context, spec ShardSpec, emit func(idx int, res *campaign.WireResult)) error
	// Healthy probes liveness; the coordinator stops leasing to (and
	// cancels the in-flight attempt of) a worker that fails twice in a
	// row, until it recovers.
	Healthy(ctx context.Context) error
}

// ShardSpec is the wire form of one shard lease: the campaign identity
// plus the global experiment indices to execute. The worker re-derives
// the enumeration from the identity and validates Total against it, so a
// coordinator and worker built from diverging trees fail loudly instead
// of mixing index spaces.
type ShardSpec struct {
	App      string `json:"app"`
	Scenario string `json:"scenario"`
	Scheme   string `json:"scheme"`
	// Model is the fault-model name; "" is the wire form of bitflip
	// (campaign.WireModel), matching the journal-header convention. A
	// worker that does not recognize the model refuses the shard loudly —
	// a model-skewed fleet must not mix index spaces.
	Model       string `json:"model,omitempty"`
	Fuel        uint64 `json:"fuel,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`
	Watchdog    bool   `json:"watchdog,omitempty"`
	NoICache    bool   `json:"noICache,omitempty"`
	NoUops      bool   `json:"noUops,omitempty"`
	NoSnapshot  bool   `json:"noSnapshot,omitempty"`

	NoDirtyTracking bool `json:"noDirtyTracking,omitempty"`
	NoTraces        bool `json:"noTraces,omitempty"`
	// CacheMode is the campaign's content-addressed cache mode ("",
	// "off", "read", "readwrite"). A worker honors it only when it has a
	// local result store configured; the coordinator consults its own
	// store before leasing either way.
	CacheMode string `json:"cacheMode,omitempty"`
	// Total is the size of the full campaign enumeration.
	Total int `json:"total"`
	// Shard is the coordinator's shard id (diagnostics only).
	Shard int `json:"shard"`
	// Indices are the campaign-global experiment indices to execute,
	// grouped by target address.
	Indices []int `json:"indices"`
}

// Config parameterizes one fleet campaign.
type Config struct {
	// Campaign is the campaign identity and knobs. Journal (if set) is
	// the coordinator's authoritative journal; Parallelism travels in the
	// shard spec and sizes each worker's engine pool; Progress and
	// OnResult fire on the coordinator as results arrive.
	Campaign campaign.Config
	// Workers is the worker pool. Empty means one in-process loopback
	// worker over Campaign.App — the single-node degenerate case.
	Workers []Worker
	// ShardRuns is the target number of experiments per shard; 0 derives
	// a default from the campaign size and worker count.
	ShardRuns int
	// LeaseTimeout bounds one shard attempt; an attempt that exceeds it
	// is abandoned and the shard re-leased. 0 means DefaultLeaseTimeout.
	LeaseTimeout time.Duration
	// StragglerAfter is how long a sole attempt may run before an idle
	// worker speculatively joins the shard (first completed attempt
	// wins; duplicates are verified byte-identical). 0 means
	// DefaultStragglerAfter.
	StragglerAfter time.Duration
	// MaxAttempts caps failed attempts per shard before the campaign
	// fails. 0 means DefaultMaxAttempts.
	MaxAttempts int
	// RetryBase and RetryMax shape the capped exponential backoff between
	// a shard's failed attempts. 0 means the defaults.
	RetryBase time.Duration
	RetryMax  time.Duration
	// HeartbeatEvery is the worker health-check cadence. 0 means
	// DefaultHeartbeatEvery.
	HeartbeatEvery time.Duration
}

// Tuning defaults.
const (
	DefaultLeaseTimeout   = 2 * time.Minute
	DefaultStragglerAfter = 20 * time.Second
	DefaultMaxAttempts    = 4
	DefaultRetryBase      = 100 * time.Millisecond
	DefaultRetryMax       = 5 * time.Second
	DefaultHeartbeatEvery = 2 * time.Second
)

func (c *Config) leaseTimeout() time.Duration {
	if c.LeaseTimeout <= 0 {
		return DefaultLeaseTimeout
	}
	return c.LeaseTimeout
}

func (c *Config) stragglerAfter() time.Duration {
	if c.StragglerAfter <= 0 {
		return DefaultStragglerAfter
	}
	return c.StragglerAfter
}

func (c *Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return c.MaxAttempts
}

func (c *Config) retryBase() time.Duration {
	if c.RetryBase <= 0 {
		return DefaultRetryBase
	}
	return c.RetryBase
}

func (c *Config) retryMax() time.Duration {
	if c.RetryMax <= 0 {
		return DefaultRetryMax
	}
	return c.RetryMax
}

func (c *Config) heartbeatEvery() time.Duration {
	if c.HeartbeatEvery <= 0 {
		return DefaultHeartbeatEvery
	}
	return c.HeartbeatEvery
}

// backoff returns the delay before a shard's next attempt: base doubled
// per prior failure, capped at max.
func (c *Config) backoff(attempts int) time.Duration {
	d := c.retryBase()
	for i := 1; i < attempts && d < c.retryMax(); i++ {
		d *= 2
	}
	if d > c.retryMax() {
		d = c.retryMax()
	}
	return d
}

// emitFunc is the result-delivery callback threaded through workers.
type emitFunc func(idx int, res *campaign.WireResult)

// resultEmit adapts an engine-side inject.Result callback to the wire
// form workers deliver.
func resultEmit(emit emitFunc) func(int, inject.Result) {
	return func(idx int, res inject.Result) { emit(idx, campaign.Wire(res)) }
}
