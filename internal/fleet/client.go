package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"faultsec/internal/campaign"
)

// HTTPWorker drives a remote worker node (any campaignd instance) over
// its PathShards and PathHealthz endpoints.
type HTTPWorker struct {
	base string
	hc   *http.Client
}

// NewHTTPWorker returns a worker client for the node at baseURL (e.g.
// "http://127.0.0.1:8081"). client may be nil for http.DefaultClient; the
// client must not set an overall timeout — per-attempt deadlines come
// from the coordinator's lease context.
func NewHTTPWorker(baseURL string, client *http.Client) *HTTPWorker {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPWorker{base: strings.TrimRight(baseURL, "/"), hc: client}
}

// Name is the worker's base URL.
func (w *HTTPWorker) Name() string { return w.base }

// Healthy probes GET /healthz; any non-200 answer (including the drain
// 503) or transport error marks the worker unhealthy.
func (w *HTTPWorker) Healthy(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+PathHealthz, nil)
	if err != nil {
		return err
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck // probe
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: %s healthz: status %d", w.base, resp.StatusCode)
	}
	return nil
}

// RunShard posts the spec and consumes the NDJSON result stream. It
// returns nil only after the terminating done-line arrives with a run
// count matching the lines seen; a truncated stream (worker crash), an
// error line (engine failure), a non-200 status, or a transport error all
// fail the attempt for the coordinator to retry.
func (w *HTTPWorker) RunShard(ctx context.Context, spec ShardSpec, emit func(int, *campaign.WireResult)) error {
	body, err := json.Marshal(&spec)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+PathShards, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", w.base, err)
	}
	defer resp.Body.Close() //nolint:errcheck // stream
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleet: %s shard %d: status %d: %s",
			w.base, spec.Shard, resp.StatusCode, bytes.TrimSpace(msg))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	runs := 0
	for sc.Scan() {
		var line shardLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("fleet: %s shard %d: corrupt stream line: %w", w.base, spec.Shard, err)
		}
		switch {
		case line.Error != "":
			return fmt.Errorf("fleet: %s shard %d: worker error: %s", w.base, spec.Shard, line.Error)
		case line.Done:
			if line.Runs != runs {
				return fmt.Errorf("fleet: %s shard %d: done-line counts %d runs, saw %d",
					w.base, spec.Shard, line.Runs, runs)
			}
			return nil
		case line.Result != nil:
			runs++
			emit(line.Idx, line.Result)
		default:
			return fmt.Errorf("fleet: %s shard %d: unrecognized stream line %q",
				w.base, spec.Shard, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("fleet: %s shard %d: stream: %w", w.base, spec.Shard, err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return errors.New("fleet: " + w.base + ": stream truncated before done-line (worker died mid-shard?)")
}
