package fleet_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"faultsec/internal/campaign"
	"faultsec/internal/encoding"
	"faultsec/internal/fleet"
	"faultsec/internal/inject"
	"faultsec/internal/target"
)

// engineModelStats is the single-process reference for a non-bitflip
// campaign (the engine itself is differentially tested against the naive
// path per model in internal/campaign).
func engineModelStats(t testing.TB, app *target.App, sc target.Scenario, model string) *inject.Stats {
	t.Helper()
	stats, err := campaign.New(campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, Model: model, KeepResults: true,
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestFleetModelIdentity: a fleet splitting a non-bitflip campaign over
// two loopback workers produces byte-identical Stats to one engine run —
// the model travels in every shard spec and each worker re-derives the
// same model-specific enumeration.
func TestFleetModelIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	for _, model := range []string{"instskip", "byteflip"} {
		t.Run(model, func(t *testing.T) {
			want := engineModelStats(t, app, sc, model)

			cfg := fleetConfig(app, sc,
				fleet.NewLoopback("w0", app), fleet.NewLoopback("w1", app))
			cfg.Campaign.Model = model
			cfg.ShardRuns = 8 // the small enumerations still get a multi-shard plan
			co := fleet.New(cfg)
			got, err := co.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, want, got)
			if got.Model != model {
				t.Errorf("fleet Stats.Model = %q, want %q", got.Model, model)
			}
		})
	}
}

// TestFleetHTTPModel runs a non-bitflip campaign through a real worker
// server and checks the model reaches the wire: every shard spec the
// worker receives names the model, and the merged Stats match the
// single-process engine.
func TestFleetHTTPModel(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	want := engineModelStats(t, app, sc, "instskip")

	apps := map[string]*target.App{app.Name: app}
	backend := fleet.NewWorkerServer(apps, nil)
	var specs atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc(fleet.PathShards, func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !strings.Contains(string(body), `"model":"instskip"`) {
			t.Errorf("shard spec %s does not carry the fault model", body)
		}
		specs.Add(1)
		r.Body = io.NopCloser(bytes.NewReader(body))
		backend.ServeHTTP(w, r)
	})
	mux.HandleFunc(fleet.PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cfg := fleetConfig(app, sc, fleet.NewHTTPWorker(srv.URL, srv.Client()))
	cfg.Campaign.Model = "instskip"
	cfg.ShardRuns = 8
	got, err := fleet.New(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got)
	if specs.Load() == 0 {
		t.Error("worker served no shard specs")
	}
}

// TestWorkerRefusesModelSkew pins the fleet's loud failure modes for a
// model-skewed deployment: a worker that does not know the spec's model
// refuses the shard before producing any result, and a worker whose
// enumeration size disagrees with the coordinator's reports the skew with
// the model named.
func TestWorkerRefusesModelSkew(t *testing.T) {
	app, sc := ftpClient1(t)
	lb := fleet.NewLoopback("w0", app)
	base := fleet.ShardSpec{
		App: app.Name, Scenario: sc.Name, Scheme: "x86",
		Total: 1, Indices: []int{0},
	}

	unknown := base
	unknown.Model = "nosuch"
	err := lb.RunShard(context.Background(), unknown, func(int, *campaign.WireResult) {
		t.Error("refused shard emitted a result")
	})
	if err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("unknown-model shard: err = %v, want unknown-model refusal", err)
	}

	// A known model with the wrong Total is version skew: the worker and
	// coordinator enumerate different index spaces.
	skew := base
	skew.Model = "instskip"
	skew.Total = 99999
	err = lb.RunShard(context.Background(), skew, func(int, *campaign.WireResult) {
		t.Error("refused shard emitted a result")
	})
	if err == nil || !strings.Contains(err.Error(), "version skew") ||
		!strings.Contains(err.Error(), "model=instskip") {
		t.Errorf("total-skew shard: err = %v, want version-skew refusal naming the model", err)
	}

	// Over HTTP both refusals surface as 400 before any stream bytes.
	srv := httptest.NewServer(fleet.NewWorkerServer(map[string]*target.App{app.Name: app}, nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL, "application/json",
		strings.NewReader(`{"app":"ftpd","scenario":"Client1","scheme":"x86","model":"nosuch","total":1,"indices":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown-model spec over HTTP: status %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "unknown model") {
		t.Errorf("400 body %s does not name the unknown model", body)
	}
}

// TestShardSpecModelWireForm pins the wire convention shared with journal
// headers: bitflip is the empty string (legacy compatibility), every
// other model its registry name.
func TestShardSpecModelWireForm(t *testing.T) {
	if got := campaign.WireModel(""); got != "" {
		t.Errorf(`WireModel("") = %q, want ""`, got)
	}
	if got := campaign.WireModel("bitflip"); got != "" {
		t.Errorf(`WireModel("bitflip") = %q, want ""`, got)
	}
	if got := campaign.WireModel("regflip"); got != "regflip" {
		t.Errorf(`WireModel("regflip") = %q, want "regflip"`, got)
	}
}
