package fleet

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"faultsec/internal/campaign"
	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/inject"
)

// Coordinator executes one fleet campaign: it plans shards, leases them
// to workers, journals every first-seen result, and merges the shard
// aggregates into the exact Stats a single-process engine produces. Its
// Progress and Metrics accessors are safe for concurrent use while the
// campaign runs (cmd/campaignd polls them from HTTP handlers).
type Coordinator struct {
	cfg     Config
	workers []*workerState

	mu        sync.Mutex
	shards    []*shardState
	shardsOut int // shards done
	exps      []inject.Experiment
	results   []inject.Result
	have      []bool
	jr        *campaign.Journal
	cv        *campaign.CacheView
	failErr   error
	cancelRun context.CancelFunc

	total        atomic.Int64
	done         atomic.Int64
	adopted      atomic.Int64
	cacheAdopted atomic.Int64
	counts      [6]atomic.Int64
	freshRuns   atomic.Int64
	retries     atomic.Int64
	speculative atomic.Int64
	duplicates  atomic.Int64
	startNanos  atomic.Int64
	endNanos    atomic.Int64
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	w       Worker
	healthy atomic.Bool

	shardsDone atomic.Int64
	runs       atomic.Int64

	// attemptCancel aborts the worker's in-flight shard attempt (set
	// under Coordinator.mu); the health loop fires it when the worker
	// stops answering, so a dead worker's lease frees before its
	// LeaseTimeout.
	attemptCancel context.CancelFunc
}

// New returns a coordinator for cfg. With no workers configured it runs
// single-node over an in-process loopback worker.
func New(cfg Config) *Coordinator {
	c := &Coordinator{cfg: cfg}
	ws := cfg.Workers
	if len(ws) == 0 && cfg.Campaign.App != nil {
		ws = []Worker{NewLoopback("loopback", cfg.Campaign.App)}
	}
	for _, w := range ws {
		st := &workerState{w: w}
		st.healthy.Store(true)
		c.workers = append(c.workers, st)
	}
	return c
}

// Run executes the full campaign across the fleet. An existing journal at
// cfg.Campaign.Journal is truncated; use Resume to continue one.
func (c *Coordinator) Run(ctx context.Context) (*inject.Stats, error) {
	return c.run(ctx, false)
}

// Resume continues the campaign recorded in cfg.Campaign.Journal:
// journaled results are adopted verbatim (excluded from every shard's
// dispatched set), the remainder is executed across the fleet, and the
// merged Stats is identical to an uninterrupted run. The journal format
// is the engine's, so a fleet coordinator resumes a single-process
// campaign's journal and vice versa.
func (c *Coordinator) Resume(ctx context.Context) (*inject.Stats, error) {
	return c.run(ctx, true)
}

func (c *Coordinator) run(ctx context.Context, resume bool) (*inject.Stats, error) {
	if len(c.workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	cc := &c.cfg.Campaign
	exps, err := campaign.EnumerateConfig(cc)
	if err != nil {
		return nil, err
	}
	total := len(exps)
	c.total.Store(int64(total))
	c.startNanos.Store(time.Now().UnixNano())
	defer func() { c.endNanos.Store(time.Now().UnixNano()) }()

	var jr *campaign.Journal
	var adopted map[int]inject.Result
	switch {
	case cc.Journal != "":
		if jr, err = campaign.OpenJournal(cc, total, !resume); err != nil {
			return nil, err
		}
		if resume {
			if adopted, err = campaign.ReplayJournal(cc, exps); err != nil {
				if aerr := jr.Abort(); aerr != nil {
					err = fmt.Errorf("%w (journal abort: %v)", err, aerr)
				}
				return nil, err
			}
		}
	case resume:
		return nil, errors.New("fleet: Resume needs cfg.Campaign.Journal")
	}

	// The cache view runs one fault-free golden session (its observables
	// are key material), so it is built before taking the lock.
	cv, err := campaign.NewCacheView(*cc, exps)
	if err != nil {
		if jr != nil {
			if aerr := jr.Abort(); aerr != nil {
				err = fmt.Errorf("%w (journal abort: %v)", err, aerr)
			}
		}
		return nil, err
	}

	c.mu.Lock()
	c.exps = exps
	c.results = make([]inject.Result, total)
	c.have = make([]bool, total)
	for idx, r := range adopted {
		c.results[idx] = r
		c.have[idx] = true
		c.counts[r.Outcome].Add(1)
	}
	c.adopted.Store(int64(len(adopted)))
	c.done.Store(int64(len(adopted)))
	c.jr = jr
	c.cv = cv

	// Cache adoption happens before planning: every hit is journaled and
	// marked have, so a shard whose experiments are all cached (or
	// journal-adopted) plans with an empty pending set and is never
	// leased — only the groups whose keyed context changed execute.
	type adoptedRun struct {
		idx int
		res inject.Result
		d   int
	}
	var cacheRuns []adoptedRun
	if cv != nil {
		for _, g := range addrGroups(exps, 0, total) {
			var pending []int
			for i := g.lo; i < g.hi; i++ {
				if !c.have[i] {
					pending = append(pending, i)
				}
			}
			if len(pending) == 0 {
				continue
			}
			res := cv.Adopt(g.addr, exps, pending)
			if len(res) == 0 {
				continue
			}
			for _, idx := range pending {
				r, hit := res[idx]
				if !hit {
					continue // class miss: stays pending, planned into a shard
				}
				c.results[idx] = r
				c.have[idx] = true
				c.counts[r.Outcome].Add(1)
				d := int(c.done.Add(1))
				c.cacheAdopted.Add(1)
				if jr != nil {
					if err := jr.Append(idx, r, d, c.countsMap()); err != nil {
						c.failLocked(fmt.Errorf("fleet: journal append: %w", err))
						break
					}
				}
				cacheRuns = append(cacheRuns, adoptedRun{idx: idx, res: r, d: d})
			}
			if c.failErr != nil {
				break
			}
		}
	}

	shardRuns := c.cfg.ShardRuns
	if shardRuns <= 0 {
		shardRuns = defaultShardRuns(total, len(c.workers))
	}
	c.shards = planShards(exps, c.have, shardRuns)
	for _, sh := range c.shards {
		if len(sh.pending) == 0 {
			sh.done = true
			c.shardsOut++
			// Backfill the store from shards completed without leasing
			// (journal-adopted resumes): their groups may predate the cache.
			c.storeShardGroupsLocked(sh)
		}
	}
	c.mu.Unlock()

	// Fire the progress/result hooks for cache-adopted runs outside the
	// lock, in adoption order — mirroring deliver for fresh runs.
	if progress, onResult := cc.Progress, cc.OnResult; progress != nil || onResult != nil {
		for _, ar := range cacheRuns {
			if progress != nil {
				progress(ar.d, total)
			}
			if onResult != nil {
				onResult(ar.idx, ar.res)
			}
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	c.mu.Lock()
	c.cancelRun = cancel
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, ws := range c.workers {
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			c.runner(runCtx, ws)
		}(ws)
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			c.healthLoop(runCtx, ws)
		}(ws)
	}

	// Runners exit when every shard is done, the campaign failed, or the
	// context is canceled; cancel unblocks the health loops afterwards.
	waitRunners := make(chan struct{})
	go func() {
		wg.Wait()
		close(waitRunners)
	}()
	<-c.runnersDone(runCtx)
	cancel()
	<-waitRunners

	c.mu.Lock()
	failErr := c.failErr
	doneRuns := int(c.done.Load())
	countsNow := c.countsMap()
	c.mu.Unlock()

	if jr != nil {
		if err := jr.Close(doneRuns, countsNow); err != nil && failErr == nil {
			failErr = fmt.Errorf("fleet: journal close: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		// Every journaled run is flushed and the final checkpoint written:
		// a canceled fleet campaign resumes cleanly (on a fleet or on a
		// single-process engine).
		return nil, &inject.CanceledError{Done: doneRuns, Total: total, Cause: err}
	}
	if failErr != nil {
		return nil, failErr
	}
	return c.assemble()
}

// runnersDone returns a channel closed once every shard is settled (done
// or failed) or the run context ends — the coordinator's own completion
// signal, independent of runner goroutine scheduling.
func (c *Coordinator) runnersDone(ctx context.Context) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		for {
			c.mu.Lock()
			finished := c.shardsOut == len(c.shards) || c.failErr != nil
			c.mu.Unlock()
			if finished || ctx.Err() != nil {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	return ch
}

// assemble merges the per-shard aggregates in plan order. Shards tile the
// enumeration, so the merge is byte-identical to a single pass of
// Stats.Add over all results — the same aggregate a single-process
// engine builds.
func (c *Coordinator) assemble() (*inject.Stats, error) {
	cc := &c.cfg.Campaign
	c.mu.Lock()
	defer c.mu.Unlock()
	model := inject.ModelOf(c.exps)
	stats := inject.NewStats(cc.App.Name, cc.Scenario.Name, cc.Scheme, model)
	for i, ok := range c.have {
		if !ok {
			return nil, fmt.Errorf("fleet: internal: experiment %d has no result after completion", i)
		}
	}
	for _, sh := range c.shards {
		ss := inject.NewStats(cc.App.Name, cc.Scenario.Name, cc.Scheme, model)
		for i := sh.start; i < sh.end; i++ {
			ss.Add(c.results[i])
		}
		if err := stats.Merge(ss); err != nil {
			return nil, err
		}
	}
	if cc.KeepResults {
		stats.Results = c.results
	}
	return stats, nil
}

// runner is one worker's dispatch loop: acquire a lease, execute the
// attempt under the lease deadline, settle the outcome, repeat.
func (c *Coordinator) runner(ctx context.Context, ws *workerState) {
	for {
		sh := c.acquire(ctx, ws)
		if sh == nil {
			return
		}
		spec := c.specFor(sh)
		actx, acancel := context.WithTimeout(ctx, c.cfg.leaseTimeout())
		c.setAttemptCancel(ws, acancel)
		err := ws.w.RunShard(actx, spec, func(idx int, wr *campaign.WireResult) {
			c.deliver(sh, ws, idx, wr)
		})
		c.setAttemptCancel(ws, nil)
		acancel()
		c.settle(ctx, sh, ws, err)
	}
}

// acquire leases the next shard for ws, blocking until one is eligible,
// every shard is settled, the campaign failed, or ctx ends (the last
// three return nil). Pending shards are served in plan order once their
// backoff window passes; with nothing pending, an idle worker joins the
// longest-running solo attempt past the straggler threshold. An unhealthy
// worker leases nothing — unless every worker is unhealthy, in which case
// leasing proceeds best-effort so a dead fleet fails by attempt
// exhaustion instead of hanging.
func (c *Coordinator) acquire(ctx context.Context, ws *workerState) *shardState {
	for {
		if ctx.Err() != nil {
			return nil
		}
		c.mu.Lock()
		if c.shardsOut == len(c.shards) || c.failErr != nil {
			c.mu.Unlock()
			return nil
		}
		if ws.healthy.Load() || c.allUnhealthy() {
			now := time.Now()
			var pick *shardState
			for _, sh := range c.shards {
				if sh.done || sh.runners != 0 || now.Before(sh.nextEligible) {
					continue
				}
				if len(c.workers) > 1 && sh.lastFailWorker == ws.w.Name() {
					continue // let a different worker rescue it
				}
				pick = sh
				break
			}
			if pick == nil {
				var oldest *shardState
				for _, sh := range c.shards {
					if sh.done || sh.runners != 1 || sh.speculated {
						continue
					}
					if now.Sub(sh.startedAt) <= c.cfg.stragglerAfter() {
						continue
					}
					if sh.worker == ws.w.Name() {
						continue // don't speculate against yourself
					}
					if oldest == nil || sh.startedAt.Before(oldest.startedAt) {
						oldest = sh
					}
				}
				if oldest != nil {
					oldest.speculated = true
					c.speculative.Add(1)
					pick = oldest
				}
			}
			if pick != nil {
				pick.runners++
				pick.worker = ws.w.Name()
				pick.startedAt = now
				c.mu.Unlock()
				return pick
			}
		}
		c.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
}

// allUnhealthy reports whether no worker currently passes health checks.
func (c *Coordinator) allUnhealthy() bool {
	for _, ws := range c.workers {
		if ws.healthy.Load() {
			return false
		}
	}
	return true
}

// deliver records one streamed result. The first delivery of an index
// wins and is journaled; later deliveries (speculative duplicates, or a
// retried shard re-covering runs a dead worker already streamed) are
// checked byte-identical against the winner — a mismatch means the
// determinism contract broke, and the campaign fails loudly rather than
// merge diverging data.
func (c *Coordinator) deliver(sh *shardState, ws *workerState, idx int, wr *campaign.WireResult) {
	if wr == nil {
		return
	}
	c.mu.Lock()
	if idx < sh.start || idx >= sh.end {
		c.failLocked(fmt.Errorf("fleet: worker %s delivered index %d outside shard %d [%d,%d)",
			ws.w.Name(), idx, sh.id, sh.start, sh.end))
		c.mu.Unlock()
		return
	}
	res := wr.ToResult(c.exps[idx])
	if c.have[idx] {
		c.duplicates.Add(1)
		if !reflect.DeepEqual(c.results[idx], res) {
			c.failLocked(fmt.Errorf("fleet: determinism violation: experiment %d from %s differs from the recorded result",
				idx, ws.w.Name()))
		}
		c.mu.Unlock()
		return
	}
	c.results[idx] = res
	c.have[idx] = true
	c.counts[res.Outcome].Add(1)
	d := int(c.done.Add(1))
	c.freshRuns.Add(1)
	sh.freshDone++
	ws.runs.Add(1)
	if c.jr != nil {
		if err := c.jr.Append(idx, res, d, c.countsMap()); err != nil {
			c.failLocked(fmt.Errorf("fleet: journal append: %w", err))
		}
	}
	progress := c.cfg.Campaign.Progress
	onResult := c.cfg.Campaign.OnResult
	total := int(c.total.Load())
	c.mu.Unlock()

	if progress != nil {
		progress(d, total)
	}
	if onResult != nil {
		onResult(idx, res)
	}
}

// settle closes out one attempt. Success marks the shard done (after
// checking the stream really covered every pending index); failure
// re-leases it with capped exponential backoff until MaxAttempts, unless
// another attempt already finished the shard or the campaign is shutting
// down.
func (c *Coordinator) settle(ctx context.Context, sh *shardState, ws *workerState, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh.runners--
	if err == nil {
		for _, idx := range sh.pending {
			if !c.have[idx] {
				err = fmt.Errorf("fleet: worker %s reported shard %d complete but experiment %d is missing",
					ws.w.Name(), sh.id, idx)
				break
			}
		}
	}
	if err == nil {
		if !sh.done {
			sh.done = true
			c.shardsOut++
			ws.shardsDone.Add(1)
			// Persist the shard's freshly executed target groups; a group
			// whose entry already exists (an adopted hit, or a concurrent
			// writer) is a verified no-op inside StoreGroup.
			c.storeShardGroupsLocked(sh)
		}
		return
	}
	if sh.done || c.failErr != nil || ctx.Err() != nil {
		return // superseded by a successful attempt, or shutting down
	}
	sh.attempts++
	sh.lastErr = err
	sh.lastFailWorker = ws.w.Name()
	c.retries.Add(1)
	if sh.attempts >= c.cfg.maxAttempts() {
		c.failLocked(fmt.Errorf("fleet: shard %d [%d,%d) failed %d attempts, last on %s: %w",
			sh.id, sh.start, sh.end, sh.attempts, ws.w.Name(), err))
		return
	}
	sh.nextEligible = time.Now().Add(c.cfg.backoff(sh.attempts))
}

// storeShardGroupsLocked writes every completed target group of sh to the
// result cache (readwrite mode only; no-op without a cache view). Callers
// hold c.mu. A write failure fails the campaign: a same-key content
// mismatch would mean the key derivation missed an input.
func (c *Coordinator) storeShardGroupsLocked(sh *shardState) {
	if c.cv == nil {
		return
	}
	for _, g := range addrGroups(c.exps, sh.start, sh.end) {
		if _, err := c.cv.StoreGroup(g.addr, c.exps, c.results, c.have); err != nil {
			c.failLocked(fmt.Errorf("fleet: cache write-back at %#x: %w", g.addr, err))
			return
		}
	}
}

// addrSpan is one contiguous target-address group of the enumeration.
type addrSpan struct {
	addr   uint32
	lo, hi int // global experiment index range [lo, hi)
}

// addrGroups splits exps[lo:hi) into its contiguous target-address groups
// (the enumeration is target-major, so each target's experiments are
// contiguous — the same property the shard planner leans on).
func addrGroups(exps []inject.Experiment, lo, hi int) []addrSpan {
	var out []addrSpan
	for i := lo; i < hi; {
		j := i + 1
		for j < hi && exps[j].Target.Addr == exps[i].Target.Addr {
			j++
		}
		out = append(out, addrSpan{addr: exps[i].Target.Addr, lo: i, hi: j})
		i = j
	}
	return out
}

// failLocked records the campaign's first error and cancels the run.
// Callers hold c.mu.
func (c *Coordinator) failLocked(err error) {
	if c.failErr == nil {
		c.failErr = err
	}
	if c.cancelRun != nil {
		c.cancelRun()
	}
}

// healthLoop heartbeats one worker. Two consecutive failures mark it
// unhealthy and cancel its in-flight attempt (freeing the lease well
// before LeaseTimeout); one success re-admits it.
func (c *Coordinator) healthLoop(ctx context.Context, ws *workerState) {
	t := time.NewTicker(c.cfg.heartbeatEvery())
	defer t.Stop()
	fails := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		hctx, cancel := context.WithTimeout(ctx, c.cfg.heartbeatEvery())
		err := ws.w.Healthy(hctx)
		cancel()
		if err != nil {
			fails++
			if fails >= 2 && ws.healthy.CompareAndSwap(true, false) {
				c.mu.Lock()
				if ws.attemptCancel != nil {
					ws.attemptCancel()
				}
				c.mu.Unlock()
			}
		} else {
			fails = 0
			ws.healthy.Store(true)
		}
	}
}

func (c *Coordinator) setAttemptCancel(ws *workerState, cancel context.CancelFunc) {
	c.mu.Lock()
	ws.attemptCancel = cancel
	c.mu.Unlock()
}

func (c *Coordinator) specFor(sh *shardState) ShardSpec {
	cc := &c.cfg.Campaign
	return ShardSpec{
		App: cc.App.Name, Scenario: cc.Scenario.Name, Scheme: encoding.SchemeName(cc.Scheme),
		Model: campaign.WireModel(cc.Model),
		Fuel:  cc.Fuel, Parallelism: cc.Parallelism, Watchdog: cc.Watchdog,
		NoICache: cc.NoICache, NoUops: cc.NoUops, NoSnapshot: cc.NoSnapshot,
		NoDirtyTracking: cc.NoDirtyTracking, NoTraces: cc.NoTraces,
		CacheMode: cc.CacheMode,
		Total:     len(c.exps), Shard: sh.id, Indices: sh.pending,
	}
}

func (c *Coordinator) countsMap() map[string]int {
	out := make(map[string]int, 5)
	for _, o := range classify.Outcomes() {
		if n := c.counts[o].Load(); n > 0 {
			out[o.String()] = int(n)
		}
	}
	return out
}

// Progress reports campaign progress in the engine's shape. Safe to call
// concurrently with Run.
func (c *Coordinator) Progress() campaign.Progress {
	p := campaign.Progress{
		Done:   int(c.done.Load()),
		Total:  int(c.total.Load()),
		Counts: c.countsMap(),
	}
	p.ElapsedSeconds = c.elapsed().Seconds()
	fresh := p.Done - int(c.adopted.Load()) - int(c.cacheAdopted.Load())
	if p.ElapsedSeconds > 0 && fresh > 0 {
		p.RunsPerSec = float64(fresh) / p.ElapsedSeconds
		if remaining := p.Total - p.Done; remaining > 0 {
			p.ETASeconds = float64(remaining) / p.RunsPerSec
		}
	}
	return p
}

func (c *Coordinator) elapsed() time.Duration {
	start := c.startNanos.Load()
	if start == 0 {
		return 0
	}
	end := c.endNanos.Load()
	if end == 0 {
		end = time.Now().UnixNano()
	}
	return time.Duration(end - start)
}
