package fleet_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"faultsec/internal/campaign"
	"faultsec/internal/encoding"
	"faultsec/internal/fleet"
	"faultsec/internal/target"
)

// BenchmarkEngineP1FTP is the single-process baseline for the fleet
// benchmarks: the full FTP Client1 campaign on one engine pinned to
// Parallelism=1, reported in runs/sec. The fleet benchmarks run each
// worker at Parallelism=1 too, so the comparison measures horizontal
// scaling plus coordination overhead, not goroutine-pool sizing.
func BenchmarkEngineP1FTP(b *testing.B) {
	app, sc := ftpClient1(b)
	var runs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := campaign.New(campaign.Config{
			App: app, Scenario: sc, Scheme: encoding.SchemeX86, Parallelism: 1,
		}).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		runs += int64(stats.Total)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(runs)/sec, "runs/sec")
	}
}

// benchFleet runs the same campaign across n HTTP worker servers (each a
// real NDJSON stream over localhost, each at Parallelism=1).
func benchFleet(b *testing.B, n int) {
	app, sc := ftpClient1(b)
	apps := map[string]*target.App{app.Name: app}
	var pool []fleet.Worker
	for i := 0; i < n; i++ {
		mux := http.NewServeMux()
		mux.Handle(fleet.PathShards, fleet.NewWorkerServer(apps, nil))
		mux.HandleFunc(fleet.PathHealthz, func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, `{"status":"ok"}`)
		})
		srv := httptest.NewServer(mux)
		b.Cleanup(srv.Close)
		pool = append(pool, fleet.NewHTTPWorker(srv.URL, srv.Client()))
	}

	var runs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := fleet.New(fleet.Config{
			Campaign: campaign.Config{
				App: app, Scenario: sc, Scheme: encoding.SchemeX86, Parallelism: 1,
			},
			Workers:   pool,
			ShardRuns: 256,
		}).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		runs += int64(stats.Total)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(runs)/sec, "runs/sec")
	}
}

func BenchmarkFleetFTP1Worker(b *testing.B)  { benchFleet(b, 1) }
func BenchmarkFleetFTP2Workers(b *testing.B) { benchFleet(b, 2) }
func BenchmarkFleetFTP4Workers(b *testing.B) { benchFleet(b, 4) }
