package fleet_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"faultsec/internal/campaign"
	"faultsec/internal/castore"
	"faultsec/internal/cc"
	"faultsec/internal/encoding"
	"faultsec/internal/fleet"
	"faultsec/internal/ftpd"
	"faultsec/internal/inject"
	"faultsec/internal/target"
)

func ftpClient1(t testing.TB) (*target.App, target.Scenario) {
	t.Helper()
	app, err := ftpd.Build()
	if err != nil {
		t.Fatalf("build ftpd: %v", err)
	}
	sc, ok := app.Scenario("Client1")
	if !ok {
		t.Fatal("ftpd has no Client1")
	}
	return app, sc
}

// engineStats is the single-process reference every fleet test compares
// against (the engine itself is differentially tested against the naive
// path in internal/campaign).
func engineStats(t testing.TB, app *target.App, sc target.Scenario) *inject.Stats {
	t.Helper()
	stats, err := campaign.New(campaign.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true,
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func fleetConfig(app *target.App, sc target.Scenario, workers ...fleet.Worker) fleet.Config {
	return fleet.Config{
		Campaign: campaign.Config{
			App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true,
		},
		Workers:   workers,
		ShardRuns: 64, // force a multi-shard plan on the FTP campaign
	}
}

func requireIdentical(t *testing.T, want, got *inject.Stats) {
	t.Helper()
	if got == nil {
		t.Fatal("fleet produced nil stats")
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("fleet stats differ from single-process engine\nwant total=%d counts=%v crashes=%d\ngot  total=%d counts=%v crashes=%d",
			want.Total, want.Counts, len(want.CrashLatencies),
			got.Total, got.Counts, len(got.CrashLatencies))
	}
}

// TestFleetLoopbackIdentity: two in-process workers splitting the FTP
// Client1 campaign produce byte-identical Stats to one engine run.
func TestFleetLoopbackIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	want := engineStats(t, app, sc)

	co := fleet.New(fleetConfig(app, sc,
		fleet.NewLoopback("w0", app), fleet.NewLoopback("w1", app)))
	got, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got)

	m := co.Metrics()
	if m.ShardsDone != m.ShardsTotal || m.ShardsTotal < 2 {
		t.Errorf("shards done %d/%d, want all of >=2", m.ShardsDone, m.ShardsTotal)
	}
	if m.RunsTotal != int64(want.Total) {
		t.Errorf("fresh runs %d, want %d", m.RunsTotal, want.Total)
	}
	var workerRuns int64
	for _, w := range m.Workers {
		workerRuns += w.Runs
	}
	if workerRuns != m.RunsTotal {
		t.Errorf("per-worker runs sum to %d, want %d", workerRuns, m.RunsTotal)
	}
}

// TestFleetHTTPIdentity: the same campaign over two worker processes'
// worth of HTTP servers (shard specs and NDJSON streams on the wire).
func TestFleetHTTPIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	want := engineStats(t, app, sc)

	apps := map[string]*target.App{app.Name: app}
	var workers []fleet.Worker
	for i := 0; i < 2; i++ {
		mux := http.NewServeMux()
		mux.Handle(fleet.PathShards, fleet.NewWorkerServer(apps, nil))
		mux.HandleFunc(fleet.PathHealthz, func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, `{"status":"ok"}`)
		})
		srv := httptest.NewServer(mux)
		defer srv.Close()
		workers = append(workers, fleet.NewHTTPWorker(srv.URL, srv.Client()))
	}

	co := fleet.New(fleetConfig(app, sc, workers...))
	got, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got)
}

// truncatingHandler serves PathShards like a real worker, but its first
// response stops after three result lines with no done-line — exactly
// what a coordinator sees when a worker process dies mid-shard. Every
// later request is served by the real WorkerServer.
type truncatingHandler struct {
	real    *fleet.WorkerServer
	local   *fleet.Loopback
	tripped atomic.Bool
}

func (h *truncatingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.tripped.Swap(true) {
		h.real.ServeHTTP(w, r)
		return
	}
	var spec fleet.ShardSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	type line struct {
		Idx    int                  `json:"idx"`
		Result *campaign.WireResult `json:"result"`
	}
	var mu sync.Mutex
	var lines []line
	err := h.local.RunShard(r.Context(), spec, func(idx int, res *campaign.WireResult) {
		mu.Lock()
		lines = append(lines, line{Idx: idx, Result: res})
		mu.Unlock()
	})
	if err != nil || len(lines) < 4 {
		http.Error(w, "shard too small to truncate", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, l := range lines[:3] {
		_ = enc.Encode(l)
	}
	// Return without a done-line: the chunked body ends early and the
	// client must treat the stream as a dead worker.
}

// TestFleetRetriesTruncatedStream: a worker that dies mid-shard (stream
// cut before the done-line) is retried, the duplicate deliveries of the
// already-streamed runs verify byte-identical, and the final Stats still
// match the single-process engine.
func TestFleetRetriesTruncatedStream(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	want := engineStats(t, app, sc)

	apps := map[string]*target.App{app.Name: app}
	h := &truncatingHandler{
		real:  fleet.NewWorkerServer(apps, nil),
		local: fleet.NewLoopback("truncator-local", app),
	}
	mux := http.NewServeMux()
	mux.Handle(fleet.PathShards, h)
	mux.HandleFunc(fleet.PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cfg := fleetConfig(app, sc, fleet.NewHTTPWorker(srv.URL, srv.Client()))
	cfg.RetryBase = time.Millisecond
	co := fleet.New(cfg)
	got, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got)

	m := co.Metrics()
	if m.Retries < 1 {
		t.Errorf("retries = %d, want >= 1 (first shard stream was truncated)", m.Retries)
	}
	if m.DuplicateRuns < 3 {
		t.Errorf("duplicate runs = %d, want >= 3 (truncated attempt streamed 3 results)", m.DuplicateRuns)
	}
	requireIdentical(t, want, got)
}

// stuckWorker leases a shard and hangs until canceled. It exercises the
// straggler path: the healthy worker drains the rest of the plan, then
// speculatively re-runs the stuck shard and wins.
type stuckWorker struct{ leased atomic.Int64 }

func (s *stuckWorker) Name() string                  { return "stuck" }
func (s *stuckWorker) Healthy(context.Context) error { return nil }
func (s *stuckWorker) RunShard(ctx context.Context, spec fleet.ShardSpec, emit func(int, *campaign.WireResult)) error {
	s.leased.Add(1)
	<-ctx.Done()
	return ctx.Err()
}

func TestFleetSpeculatesOnStraggler(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	want := engineStats(t, app, sc)

	stuck := &stuckWorker{}
	cfg := fleetConfig(app, sc, stuck, fleet.NewLoopback("fast", app))
	cfg.StragglerAfter = 20 * time.Millisecond
	co := fleet.New(cfg)
	got, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got)

	m := co.Metrics()
	if stuck.leased.Load() < 1 {
		t.Fatal("stuck worker never leased a shard; test exercised nothing")
	}
	if m.SpeculativeAttempts < 1 {
		t.Errorf("speculative attempts = %d, want >= 1", m.SpeculativeAttempts)
	}
}

// TestFleetDeadFleetFailsDeterministically: when every attempt fails
// (here: a worker whose shard endpoint always answers 503), the campaign
// fails by attempt exhaustion instead of hanging.
func TestFleetDeadFleetFailsDeterministically(t *testing.T) {
	app, sc := ftpClient1(t)

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	cfg := fleetConfig(app, sc, fleet.NewHTTPWorker(srv.URL, srv.Client()))
	cfg.RetryBase = time.Millisecond
	cfg.MaxAttempts = 2
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := fleet.New(cfg).Run(ctx)
	if err == nil {
		t.Fatal("expected failure, got success from a dead fleet")
	}
	if ctx.Err() != nil {
		t.Fatalf("campaign hung until the test deadline: %v", err)
	}
	if want := "failed 2 attempts"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

// TestFleetJournalCancelResume: a fleet campaign canceled mid-flight
// leaves a journal that (a) a fresh coordinator resumes to byte-identical
// Stats, and (b) crucially, is the same format the single-process engine
// writes — the engine resumes a fleet journal directly.
func TestFleetJournalCancelResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	want := engineStats(t, app, sc)

	for _, finisher := range []string{"fleet", "engine"} {
		finisher := finisher
		t.Run("finish="+finisher, func(t *testing.T) {
			journal := filepath.Join(t.TempDir(), "fleet.jsonl")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			var seen atomic.Int64
			cfg := fleetConfig(app, sc,
				fleet.NewLoopback("w0", app), fleet.NewLoopback("w1", app))
			cfg.Campaign.Journal = journal
			cfg.Campaign.OnResult = func(int, inject.Result) {
				if seen.Add(1) == 40 {
					cancel()
				}
			}
			_, err := fleet.New(cfg).Run(ctx)
			var canceled *inject.CanceledError
			if !errors.As(err, &canceled) {
				t.Fatalf("want CanceledError, got %v", err)
			}
			if canceled.Done == 0 || canceled.Done >= want.Total {
				t.Fatalf("canceled after %d/%d runs; need a genuine partial campaign", canceled.Done, want.Total)
			}

			var got *inject.Stats
			switch finisher {
			case "fleet":
				rcfg := fleetConfig(app, sc,
					fleet.NewLoopback("w0", app), fleet.NewLoopback("w1", app))
				rcfg.Campaign.Journal = journal
				co := fleet.New(rcfg)
				if got, err = co.Resume(context.Background()); err != nil {
					t.Fatal(err)
				}
				if m := co.Metrics(); m.JournalAdopted < int64(canceled.Done) {
					t.Errorf("resume adopted %d journaled runs, want >= %d", m.JournalAdopted, canceled.Done)
				}
			case "engine":
				got, err = campaign.New(campaign.Config{
					App: app, Scenario: sc, Scheme: encoding.SchemeX86,
					KeepResults: true, Journal: journal,
				}).Resume(context.Background())
				if err != nil {
					t.Fatal(err)
				}
			}
			requireIdentical(t, want, got)
		})
	}
}

func cacheStore(t testing.TB) *castore.Store {
	t.Helper()
	store, err := castore.Open(filepath.Join(t.TempDir(), "castore"))
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return store
}

// cachedFleetConfig wires one loopback worker and the shared result store
// into a readwrite fleet campaign over app.
func cachedFleetConfig(app *target.App, sc target.Scenario, store *castore.Store) fleet.Config {
	lb := fleet.NewLoopback("w0", app)
	lb.SetCache(store)
	cfg := fleetConfig(app, sc, lb)
	cfg.Campaign.Cache = store
	cfg.Campaign.CacheMode = campaign.CacheReadWrite
	return cfg
}

// TestFleetCacheWarmAdoptsEverything: a cold readwrite fleet run persists
// every target group; a warm rerun adopts all of them before leasing, so
// no shard executes, no worker runs, and the Stats stay byte-identical.
func TestFleetCacheWarmAdoptsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	want := engineStats(t, app, sc)
	store := cacheStore(t)

	co := fleet.New(cachedFleetConfig(app, sc, store))
	cold, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, cold)
	// The loopback worker and the coordinator share the store: the worker's
	// engine persists each group as it completes, and the coordinator's
	// settlement writes verify as duplicate no-ops — so the store must be
	// populated, whichever side got there first.
	keys, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Error("cold fleet run persisted no cache entries")
	}
	cm := co.Metrics()
	if cm.CacheMisses == 0 || cm.CacheHits != 0 {
		t.Errorf("cold fleet counters hits=%d misses=%d, want 0/>0", cm.CacheHits, cm.CacheMisses)
	}

	co2 := fleet.New(cachedFleetConfig(app, sc, store))
	warm, err := co2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, warm)
	wm := co2.Metrics()
	if wm.CacheHits != int64(want.Total) {
		t.Errorf("warm fleet adopted %d of %d runs", wm.CacheHits, want.Total)
	}
	if wm.RunsTotal != 0 {
		t.Errorf("warm fleet executed %d fresh runs, want 0", wm.RunsTotal)
	}
	for _, w := range wm.Workers {
		if w.Runs != 0 {
			t.Errorf("worker %s executed %d runs on a fully warm store", w.Name, w.Runs)
		}
	}
}

// TestFleetIncrementalRebuildIdentity is the fleet half of the FastFlip
// acceptance test: after a one-function rebuild (retr hardened — a
// function Client1's denied session never executes), a warm fleet
// resubmit adopts the function-keyed groups of unchanged functions from
// the base image's store, re-executes only the whole-text-keyed escaping
// groups, and merges to Stats byte-identical to a cold engine run of the
// rebuilt image.
func TestFleetIncrementalRebuildIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign differential is not short")
	}
	app, sc := ftpClient1(t)
	store := cacheStore(t)
	if _, err := fleet.New(cachedFleetConfig(app, sc, store)).Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	mod, err := app.ForCodegen(cc.Options{DupCompares: true, HardenFuncs: "retr"})
	if err != nil {
		t.Fatalf("rebuild with hardened retr: %v", err)
	}
	modSc, ok := mod.Scenario(sc.Name)
	if !ok {
		t.Fatalf("rebuilt app lost scenario %s", sc.Name)
	}
	want := engineStats(t, mod, modSc)

	co := fleet.New(cachedFleetConfig(mod, modSc, store))
	got, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got)
	m := co.Metrics()
	if m.CacheHits == 0 {
		t.Error("rebuilt-image fleet run adopted nothing from the base store")
	}
	if m.CacheMisses == 0 {
		t.Error("no run re-executed on the rebuilt image (expected the escaping groups to miss)")
	}
	if m.CacheHits+m.CacheMisses != int64(want.Total) {
		t.Errorf("hits+misses = %d, want total %d", m.CacheHits+m.CacheMisses, want.Total)
	}
	if m.RunsTotal == 0 {
		t.Error("warm incremental fleet run reports zero fresh runs despite misses")
	}
}

// TestFleetMetricsBeforeRunAreZero is the elapsed-time regression gate for
// the coordinator: before Run, rate fields must be zero, not computed
// against a zero start time.
func TestFleetMetricsBeforeRunAreZero(t *testing.T) {
	app, sc := ftpClient1(t)
	co := fleet.New(fleetConfig(app, sc, fleet.NewLoopback("w0", app)))
	if m := co.Metrics(); m.RunsPerSec != 0 {
		t.Errorf("metrics before Run: runsPerSec=%v, want 0", m.RunsPerSec)
	}
	p := co.Progress()
	if p.Done != 0 || p.ElapsedSeconds != 0 || p.RunsPerSec != 0 || p.ETASeconds != 0 {
		t.Errorf("progress before Run: %+v, want zeros", p)
	}
}
