// Package target defines the study's target-application bundle: a
// compiled server image together with the client access patterns
// ("scenarios") that drive it. It is the seam between the build side
// (internal/ftpd, internal/sshd compile MiniC sources into images) and the
// experiment side (internal/inject and internal/campaign run injection
// campaigns against App/Scenario pairs).
package target

import (
	"faultsec/internal/image"
)

// Client is the remote peer driving one server session. Implementations
// are deterministic state machines: the same sequence of server lines
// always produces the same client behaviour. Determinism is load-bearing —
// the campaign engine reconstructs a client mid-session by replaying the
// server lines it has seen (see internal/kernel's snapshot support).
type Client interface {
	// OnServerLine is invoked for every complete line the server writes to
	// the connection (line terminators stripped). It returns zero or more
	// lines for the client to send back; each is terminated with CRLF on
	// the wire.
	OnServerLine(line string) []string
	// Done reports that the client has finished its session script and
	// will send nothing further; a subsequent server read sees EOF.
	Done() bool
	// Granted reports whether the server awarded access during the
	// session — the study's break-in observable.
	Granted() bool
}

// Scenario is one client access pattern (a Table 1 column).
type Scenario struct {
	// Name is the paper's column label (Client1..Client4).
	Name string
	// Description summarizes the access pattern.
	Description string
	// ShouldGrant is whether a correct server awards access to this
	// client. Granted() != ShouldGrant on a fault-free run means the
	// scenario itself is broken.
	ShouldGrant bool
	// New builds a fresh client for one session.
	New func() Client
}

// App bundles one compiled target application.
type App struct {
	// Name identifies the application (ftpd, sshd).
	Name string
	// Image is the compiled, linked program (immutable; runs load fresh
	// copies).
	Image *image.Image
	// AuthFuncs names the authentication functions whose branch
	// instructions form the injection target set.
	AuthFuncs []string
	// Scenarios are the app's client access patterns, in Table 1 order.
	Scenarios []Scenario
}

// Scenario returns the named access pattern.
func (a *App) Scenario(name string) (Scenario, bool) {
	for _, sc := range a.Scenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
