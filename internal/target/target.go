// Package target defines the study's target-application bundle: a
// compiled server image together with the client access patterns
// ("scenarios") that drive it. It is the seam between the build side
// (internal/ftpd, internal/sshd compile MiniC sources into images) and the
// experiment side (internal/inject and internal/campaign run injection
// campaigns against App/Scenario pairs).
package target

import (
	"fmt"
	"sync"

	"faultsec/internal/cc"
	"faultsec/internal/encoding"
	"faultsec/internal/image"
)

// Client is the remote peer driving one server session. Implementations
// are deterministic state machines: the same sequence of server lines
// always produces the same client behaviour. Determinism is load-bearing —
// the campaign engine reconstructs a client mid-session by replaying the
// server lines it has seen (see internal/kernel's snapshot support).
type Client interface {
	// OnServerLine is invoked for every complete line the server writes to
	// the connection (line terminators stripped). It returns zero or more
	// lines for the client to send back; each is terminated with CRLF on
	// the wire.
	OnServerLine(line string) []string
	// Done reports that the client has finished its session script and
	// will send nothing further; a subsequent server read sees EOF.
	Done() bool
	// Granted reports whether the server awarded access during the
	// session — the study's break-in observable.
	Granted() bool
}

// Scenario is one client access pattern (a Table 1 column).
type Scenario struct {
	// Name is the paper's column label (Client1..Client4).
	Name string
	// Description summarizes the access pattern.
	Description string
	// ShouldGrant is whether a correct server awards access to this
	// client. Granted() != ShouldGrant on a fault-free run means the
	// scenario itself is broken.
	ShouldGrant bool
	// New builds a fresh client for one session.
	New func() Client
}

// App bundles one compiled target application.
type App struct {
	// Name identifies the application (ftpd, sshd).
	Name string
	// Image is the compiled, linked program (immutable; runs load fresh
	// copies).
	Image *image.Image
	// AuthFuncs names the authentication functions whose branch
	// instructions form the injection target set.
	AuthFuncs []string
	// Scenarios are the app's client access patterns, in Table 1 order.
	Scenarios []Scenario
	// Rebuild recompiles the application with the given code-generation
	// options — the hook compile-time hardening schemes use to obtain a
	// hardened image of the same program. Build packages (internal/ftpd,
	// internal/sshd) set it; a nil Rebuild means the app cannot be
	// re-codegenned (e.g. hand-assembled fixtures).
	Rebuild func(cc.Options) (*App, error)

	// codegen caches Rebuild results per option set, so repeated campaigns
	// against one hardened variant (engine waves, naive baselines, matrix
	// cells) compile once. Guarded by codegenMu.
	codegenMu sync.Mutex
	codegen   map[cc.Options]*App
}

// ForCodegen returns the app rebuilt with the given code-generation
// options, caching per option set. The zero Options is the app itself —
// the baseline image is already built.
func (a *App) ForCodegen(opts cc.Options) (*App, error) {
	if opts == (cc.Options{}) {
		return a, nil
	}
	a.codegenMu.Lock()
	defer a.codegenMu.Unlock()
	if app, ok := a.codegen[opts]; ok {
		return app, nil
	}
	if a.Rebuild == nil {
		return nil, fmt.Errorf("target: app %s cannot rebuild with codegen options %+v (no Rebuild hook)", a.Name, opts)
	}
	app, err := a.Rebuild(opts)
	if err != nil {
		return nil, fmt.Errorf("target: rebuild %s with %+v: %w", a.Name, opts, err)
	}
	if a.codegen == nil {
		a.codegen = make(map[cc.Options]*App)
	}
	a.codegen[opts] = app
	return app, nil
}

// ForScheme resolves the image a hardening scheme runs against: the app
// rebuilt with the scheme's code-generation options. Corruption-time
// schemes (nil, x86, parity) return the app unchanged.
func (a *App) ForScheme(s encoding.Scheme) (*App, error) {
	if s == nil {
		return a, nil
	}
	return a.ForCodegen(s.CCOptions())
}

// Scenario returns the named access pattern.
func (a *App) Scenario(name string) (Scenario, bool) {
	for _, sc := range a.Scenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
