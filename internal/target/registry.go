package target

import (
	"fmt"
	"sort"
	"strings"
)

// The app registry maps application names to their build functions, so
// every layer that resolves a target by wire name — CLI flags, campaignd
// submit bodies, fleet shard specs — shares one lookup instead of a
// hardcoded switch per binary. Build packages (internal/ftpd,
// internal/sshd, internal/httpd) self-register at init time; their Build
// functions memoize, so registry lookups never recompile.
var buildRegistry = make(map[string]func() (*App, error))

// Register adds an application build function under its wire name. It
// panics on a duplicate or empty name — apps register at package init
// time, and a collision is a programming error, not a runtime condition.
// Registration is init-time only; no lock guards the map.
func Register(name string, build func() (*App, error)) {
	if name == "" {
		panic("target: Register with empty name")
	}
	if build == nil {
		panic("target: Register " + name + " with nil build func")
	}
	if _, dup := buildRegistry[name]; dup {
		panic("target: duplicate app " + name)
	}
	buildRegistry[name] = build
}

// Build resolves an application by registry name and builds it. Build
// functions cache their compiled image, so repeated lookups share one
// immutable *App. Unknown names report the registered list.
func Build(name string) (*App, error) {
	build, ok := buildRegistry[name]
	if !ok {
		return nil, fmt.Errorf("target: unknown app %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return build()
}

// Names returns the registered application names, sorted.
func Names() []string {
	names := make([]string, 0, len(buildRegistry))
	for n := range buildRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BuildAll builds every registered application, in Names order.
func BuildAll() ([]*App, error) {
	apps := make([]*App, 0, len(buildRegistry))
	for _, n := range Names() {
		app, err := Build(n)
		if err != nil {
			return nil, err
		}
		apps = append(apps, app)
	}
	return apps, nil
}
