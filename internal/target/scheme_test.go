package target_test

import (
	"testing"

	"faultsec/internal/cc"
	"faultsec/internal/encoding"
	"faultsec/internal/ftpd"
	"faultsec/internal/httpd"
	"faultsec/internal/inject"
	"faultsec/internal/sshd"
	"faultsec/internal/target"
)

// TestForSchemeGoldenRuns proves every registered hardening scheme yields
// a functionally correct image for every target application: the resolved
// app passes a golden (fault-free) run for every scenario. GoldenRun
// itself fails when the client's access result deviates from the
// scenario's ShouldGrant, so a countermeasure that broke the program —
// e.g. a trap reachable without a fault — fails here.
func TestForSchemeGoldenRuns(t *testing.T) {
	apps := buildApps(t)
	for _, name := range encoding.Names() {
		scheme, err := encoding.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, base := range apps {
			t.Run(name+"/"+base.Name, func(t *testing.T) {
				app, err := base.ForScheme(scheme)
				if err != nil {
					t.Fatalf("ForScheme(%s): %v", name, err)
				}
				if scheme.CCOptions() == (cc.Options{}) && app != base {
					t.Fatalf("corruption-time scheme %s rebuilt the app", name)
				}
				for _, sc := range app.Scenarios {
					if _, err := inject.GoldenRun(app, sc, 0); err != nil {
						t.Errorf("golden run %s/%s under %s: %v", app.Name, sc.Name, name, err)
					}
				}
			})
		}
	}
}

// TestForCodegenCaches pins the rebuild cache: resolving the same scheme
// twice returns the identical *App (campaign waves, naive baselines, and
// matrix cells must share one compiled image), and distinct schemes get
// distinct images.
func TestForCodegenCaches(t *testing.T) {
	app, err := ftpd.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := app.ForScheme(encoding.SchemeDupCompare)
	if err != nil {
		t.Fatal(err)
	}
	b, err := app.ForScheme(encoding.SchemeDupCompare)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("ForScheme(dupcmp) did not cache: two calls returned distinct apps")
	}
	c, err := app.ForScheme(encoding.SchemeEncodedBranch)
	if err != nil {
		t.Fatal(err)
	}
	if c == a || c == app {
		t.Fatal("ForScheme(encbranch) shared an image with another scheme")
	}
	hardened, err := inject.Targets(a)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	if len(hardened) == len(baseline) {
		t.Fatalf("hardened image has the same target count as baseline (%d) — countermeasure not emitted", len(baseline))
	}
}

func buildApps(t *testing.T) []*target.App {
	t.Helper()
	f, err := ftpd.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sshd.Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := httpd.Build()
	if err != nil {
		t.Fatal(err)
	}
	return []*target.App{f, s, h}
}
