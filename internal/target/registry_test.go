package target_test

import (
	"strings"
	"testing"

	"faultsec/internal/encoding"
	"faultsec/internal/target"

	// Self-registering target applications — the same blank imports the
	// cmd binaries use to populate the registry.
	_ "faultsec/internal/ftpd"
	_ "faultsec/internal/httpd"
	_ "faultsec/internal/sshd"
)

// TestRegistryCompleteness is the CI gate a new target application must
// pass to ship: every registered name builds, carries at least one
// scenario and a non-empty AuthFuncs list, and rebuilds under every
// registered hardening scheme's CCOptions. An app that registers but
// can't serve campaigns across the scheme matrix fails here, not deep
// inside a matrix run.
func TestRegistryCompleteness(t *testing.T) {
	names := target.Names()
	if len(names) < 3 {
		t.Fatalf("registered apps = %v, want at least ftpd, httpd, sshd", names)
	}
	for _, want := range []string{"ftpd", "httpd", "sshd"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("registry is missing %q (have %v)", want, names)
		}
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			app, err := target.Build(name)
			if err != nil {
				t.Fatalf("Build(%q): %v", name, err)
			}
			if app.Name != name {
				t.Errorf("Build(%q) returned app named %q", name, app.Name)
			}
			if len(app.Scenarios) == 0 {
				t.Error("no scenarios")
			}
			if len(app.AuthFuncs) == 0 {
				t.Error("no AuthFuncs — nothing for the injector to target")
			}
			if app.Rebuild == nil {
				t.Error("no Rebuild hook — compile-time schemes cannot apply")
			}
			for _, sn := range encoding.Names() {
				scheme, err := encoding.Parse(sn)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := app.ForScheme(scheme); err != nil {
					t.Errorf("ForScheme(%s): %v", sn, err)
				}
			}
			again, err := target.Build(name)
			if err != nil {
				t.Fatal(err)
			}
			if again != app {
				t.Errorf("Build(%q) did not memoize: two calls returned distinct apps", name)
			}
		})
	}
}

// TestBuildUnknownNameListsRegistry pins the error shape campaignd's
// submit 400 relies on: an unknown name is rejected with every
// registered app named in the message.
func TestBuildUnknownNameListsRegistry(t *testing.T) {
	_, err := target.Build("gopherd")
	if err == nil {
		t.Fatal("Build of an unregistered app succeeded")
	}
	for _, want := range append([]string{"gopherd"}, target.Names()...) {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-app error %q does not mention %q", err, want)
		}
	}
}
