package sshd

import (
	"reflect"
	"testing"
)

func feed(c *client, lines ...string) []string {
	var sent []string
	for _, l := range lines {
		sent = append(sent, c.OnServerLine(l)...)
	}
	return sent
}

func TestClientFullAuthSequence(t *testing.T) {
	c := newClient("alice", "host.example.org", []string{"pw1", "pw2"})
	sent := feed(c,
		"SSH-1.99-minisshd_1.2.30",
		"WELCOME minisshd protocol ready",
		"AUTH_FAILED rhosts",
		"AUTH_FAILED rsa",
		"AUTH_FAILED password",
		"AUTH_FAILED password",
		"DISCONNECT Too many authentication failures.",
	)
	want := []string{
		"SSH-1.5-miniclient_1.0",
		"LOGIN alice host.example.org",
		"AUTH RSA 65537:0000000000000000",
		"AUTH PASSWORD pw1",
		"AUTH PASSWORD pw2",
	}
	if !reflect.DeepEqual(sent, want) {
		t.Errorf("sent %q, want %q", sent, want)
	}
	if c.Granted() {
		t.Error("denied client reports granted")
	}
	if !c.Done() {
		t.Error("client not done after disconnect")
	}
}

func TestClientSuccessRunsShellAndCloses(t *testing.T) {
	c := newClient("alice", "h.example.org", []string{"right"})
	sent := feed(c,
		"SSH-1.99-minisshd",
		"WELCOME ready",
		"AUTH_FAILED rhosts",
		"AUTH_FAILED rsa",
		"AUTH_SUCCESS password",
		"alice",
		"EXIT_STATUS 0",
		"BYE",
	)
	want := []string{
		"SSH-1.5-miniclient_1.0",
		"LOGIN alice h.example.org",
		"AUTH RSA 65537:0000000000000000",
		"AUTH PASSWORD right",
		"EXEC whoami",
		"CLOSE",
	}
	if !reflect.DeepEqual(sent, want) {
		t.Errorf("sent %q, want %q", sent, want)
	}
	if !c.Granted() || !c.Done() {
		t.Errorf("granted=%v done=%v", c.Granted(), c.Done())
	}
}

func TestClientImmediateRhostsSuccess(t *testing.T) {
	c := newClient("bob", "bastion.example.com", nil)
	sent := feed(c,
		"SSH-1.99-minisshd",
		"WELCOME ready",
		"AUTH_SUCCESS rhosts",
	)
	if sent[len(sent)-1] != "EXEC whoami" {
		t.Errorf("sent %q", sent)
	}
	if !c.Granted() {
		t.Error("rhosts success not recorded")
	}
}

func TestClientGivesUpWithoutCredentials(t *testing.T) {
	c := newClient("bob", "nowhere.example.org", nil)
	feed(c,
		"SSH-1.99-minisshd",
		"WELCOME ready",
		"AUTH_FAILED rhosts",
		"AUTH_FAILED rsa",
	)
	if !c.Done() {
		t.Error("client with no passwords should give up after RSA fails")
	}
	if c.Granted() {
		t.Error("granted without success")
	}
}

func TestClientWaitsThroughProtocolErrors(t *testing.T) {
	c := newClient("alice", "h.example.org", []string{"pw"})
	sent := feed(c,
		"SSH-1.99-minisshd",
		"PROTOCOL_ERROR something odd",
		"WELCOME ready",
	)
	want := []string{"SSH-1.5-miniclient_1.0", "LOGIN alice h.example.org"}
	if !reflect.DeepEqual(sent, want) {
		t.Errorf("sent %q, want %q", sent, want)
	}
}

func TestClientShellOutputMarksGrant(t *testing.T) {
	// Even if AUTH_SUCCESS was missed (e.g. garbled), whoami output naming
	// the user is proof of a shell.
	c := newClient("alice", "h.example.org", []string{"pw"})
	feed(c,
		"SSH-1.99-minisshd",
		"WELCOME ready",
		"AUTH_SUCCESS password",
	)
	c.granted = false // pretend the success line was not seen as such
	c.OnServerLine("alice")
	if !c.Granted() {
		t.Error("shell output did not mark grant")
	}
}
