package sshd

import (
	"strings"

	"faultsec/internal/target"
)

// clientState tracks the SSH client's position in its session script.
type clientState int

const (
	stateVersion clientState = iota + 1
	stateWelcome
	stateAuth
	stateExec
	stateClose
	stateFinished
)

// client is a deterministic SSH client. It tries RSA once (with a bogus
// response, as an attacker without the private key would), then its list
// of passwords in order. On AUTH_SUCCESS it runs "whoami" and closes.
type client struct {
	user, host string
	passwords  []string
	pwIdx      int
	rsaTried   bool
	state      clientState
	granted    bool
	finished   bool
	execSent   bool
}

var _ target.Client = (*client)(nil)

func newClient(user, host string, passwords []string) *client {
	return &client{user: user, host: host, passwords: passwords, state: stateVersion}
}

// Granted reports whether the server awarded access (any AUTH_SUCCESS or
// shell output).
func (c *client) Granted() bool { return c.granted }

// Done reports whether the session script has completed.
func (c *client) Done() bool { return c.finished }

// OnServerLine advances the state machine.
//
//nolint:gocyclo // protocol state machine
func (c *client) OnServerLine(line string) []string {
	switch {
	case strings.HasPrefix(line, "DISCONNECT"):
		c.finished = true
		return nil
	case strings.HasPrefix(line, "PROTOCOL_ERROR"):
		// keep waiting; the server decides whether to drop the session
		return nil
	}

	switch c.state {
	case stateVersion:
		if strings.HasPrefix(line, "SSH-") {
			c.state = stateWelcome
			return []string{"SSH-1.5-miniclient_1.0"}
		}
		return nil

	case stateWelcome:
		if strings.HasPrefix(line, "WELCOME") {
			c.state = stateAuth
			return []string{"LOGIN " + c.user + " " + c.host}
		}
		return nil

	case stateAuth:
		switch {
		case strings.HasPrefix(line, "AUTH_SUCCESS"):
			c.granted = true
			c.state = stateExec
			c.execSent = true
			return []string{"EXEC whoami"}
		case strings.HasPrefix(line, "AUTH_FAILED"):
			if !c.rsaTried {
				c.rsaTried = true
				return []string{"AUTH RSA 65537:0000000000000000"}
			}
			if c.pwIdx < len(c.passwords) {
				pw := c.passwords[c.pwIdx]
				c.pwIdx++
				return []string{"AUTH PASSWORD " + pw}
			}
			// Out of credentials: give up. The server observes EOF on its
			// next read (or sends DISCONNECT first if our failures
			// exhausted its budget).
			c.finished = true
			return nil
		}
		return nil

	case stateExec:
		switch {
		case strings.HasPrefix(line, "EXIT_STATUS"):
			c.state = stateClose
			return []string{"CLOSE"}
		case line == c.user:
			// whoami output: proof of a shell
			c.granted = true
			return nil
		}
		return nil

	case stateClose:
		if line == "BYE" {
			c.state = stateFinished
			c.finished = true
		}
		return nil
	}
	return nil
}

// NewClientForTest builds an SSH client with arbitrary credentials, for
// tests and examples beyond the paper's two scenarios.
func NewClientForTest(user, host string, passwords []string) target.Client {
	return newClient(user, host, passwords)
}
